// Contiguous 3-D array with (i, j, k) indexing: i along x (contiguous),
// j along y, k along z. Used for atmospheric fields and flame voxel grids.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/assert.h"

namespace wfire::util {

template <typename T>
class Array3D {
 public:
  Array3D() = default;

  Array3D(int nx, int ny, int nz, T fill = T{})
      : nx_(nx), ny_(ny), nz_(nz), data_(checked_size(nx, ny, nz), fill) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] bool contains(int i, int j, int k) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
  }

  T& operator()(int i, int j, int k) {
    WFIRE_ASSERT(contains(i, j, k), "Array3D index out of range");
    return data_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }
  const T& operator()(int i, int j, int k) const {
    WFIRE_ASSERT(contains(i, j, k), "Array3D index out of range");
    return data_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }

  [[nodiscard]] const T& at_clamped(int i, int j, int k) const {
    i = std::clamp(i, 0, nx_ - 1);
    j = std::clamp(j, 0, ny_ - 1);
    k = std::clamp(k, 0, nz_ - 1);
    return data_[(static_cast<std::size_t>(k) * ny_ + j) * nx_ + i];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] bool same_shape(const Array3D& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  static std::size_t checked_size(int nx, int ny, int nz) {
    if (nx < 0 || ny < 0 || nz < 0)
      throw std::invalid_argument("Array3D: negative dims");
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  int nx_ = 0;
  int ny_ = 0;
  int nz_ = 0;
  std::vector<T> data_;
};

template <typename T>
[[nodiscard]] T max_abs(const Array3D<T>& a) {
  T m = T{};
  for (const T& v : a) m = std::max(m, static_cast<T>(std::abs(v)));
  return m;
}

}  // namespace wfire::util
