// The "real data pool" of the paper's Fig. 2, realized as a twin experiment:
// a hidden truth fire model produces heat-flux images at scheduled times
// through the same observation function the ensemble uses, plus additive
// noise. This is exactly the methodology of the paper's Fig. 4 ("the
// reference solution is the simulated data").
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fire/model.h"
#include "util/rng.h"

namespace wfire::core {

struct ObservationImage {
  double time = 0;                  // observation validity time [s]
  util::Array2D<double> image;      // noisy heat-flux image [W/m^2]
  double noise_std = 0;             // the std of the added noise
};

struct DataPoolOptions {
  double dt = 0.5;            // truth-model time step [s]
  double noise_std = 2000.0;  // image noise std [W/m^2]
  double wind_u = 3.0;        // truth ambient wind [m/s]
  double wind_v = 0.0;
};

// Where observations come from. The twin-experiment DataPool below is one
// source; a live feed or a replayed archive is another. Producing the
// observation is the *data acquisition* side of the paper's Fig. 2 — it is
// never charged against the assimilation compute deadline (see
// core/realtime), which is also why the driver talks to this interface
// rather than to the truth model directly.
class ObservationSource {
 public:
  virtual ~ObservationSource() = default;

  // Produces the observation valid at `time` (advancing any internal truth
  // or replay state as needed).
  virtual ObservationImage observe_at(double time) = 0;

  // Noise-free reference psi for skill scoring, when the source has one
  // (twin experiments do; live data does not).
  [[nodiscard]] virtual const util::Array2D<double>* truth_psi() const {
    return nullptr;
  }

  // Noise-free reference ignition times, when the source has them: the
  // reference burn that risk::score validates burn-probability products
  // against (cells with tig <= horizon burned in truth).
  [[nodiscard]] virtual const util::Array2D<double>* truth_tig() const {
    return nullptr;
  }
};

class DataPool : public ObservationSource {
 public:
  // Takes ownership of the truth model (already ignited).
  DataPool(std::unique_ptr<fire::FireModel> truth, DataPoolOptions opt,
           util::Rng rng);

  // Advances the truth to `time` and returns the noisy observation image.
  ObservationImage observe_at(double time) override;

  // Noise-free truth access for skill scoring (never used by the filter).
  [[nodiscard]] const fire::FireModel& truth() const { return *truth_; }
  [[nodiscard]] const util::Array2D<double>* truth_psi() const override {
    return &truth_->state().psi;
  }
  [[nodiscard]] const util::Array2D<double>* truth_tig() const override {
    return &truth_->state().tig;
  }

 private:
  std::unique_ptr<fire::FireModel> truth_;
  DataPoolOptions opt_;
  util::Rng rng_;
};

}  // namespace wfire::core
