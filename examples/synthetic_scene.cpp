// The paper's Fig. 3 scenario: render the mid-wave (3-5 um) infrared image
// of a modeled grassfire as seen by a WASP-class airborne camera from about
// 3000 m, using the DIRSIG-substitute ray marcher, and validate the fire
// radiated energy against the published satellite-derived range.
//
// Run:  ./synthetic_scene [pixels=256] [altitude=3000] [minutes=10]
#include <cstdio>

#include "fire/model.h"
#include "scene/fre.h"
#include "scene/render.h"
#include "util/config.h"
#include "util/image_io.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int pixels = cfg.get_int("pixels", 256);
  const double altitude = cfg.get_double("altitude", 3000.0);
  const double minutes = cfg.get_double("minutes", 10.0);

  // Grow a wind-driven grassfire on a ~1 km domain.
  const grid::Grid2D grid(161, 161, 6.0, 6.0);
  fire::FireModel model(grid,
                        fire::uniform_fuel(grid.nx, grid.ny,
                                           fire::kFuelShortGrass),
                        fire::terrain_flat(grid));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{300.0, 480.0, 30.0, 0.0}}});
  const int steps = static_cast<int>(minutes * 60.0);
  for (int s = 0; s < steps; ++s) model.step_uniform_wind(1.0, 4.0, 0.5);

  // Scene inputs: double-exponential ground temperatures + voxelized flame.
  scene::GroundThermalModel thermal;  // 75 s / 250 s / 1075 K (paper values)
  util::Array2D<double> ground_T;
  thermal.temperature_map(model.state().tig, model.state().time, ground_T);
  util::Array2D<double> wu(grid.nx, grid.ny, 4.0), wv(grid.nx, grid.ny, 0.5);
  const scene::FlameVoxels flames = scene::build_flame_voxels(model, wu, wv);

  scene::Camera cam;
  cam.look_x = cam.look_y = 480.0;
  cam.altitude = altitude;
  cam.npx = cam.npy = pixels;
  cam.gsd = 1024.0 / pixels;
  scene::Renderer renderer;
  const scene::RenderedScene sc =
      renderer.render(cam, grid, ground_T, flames);

  std::printf("rendered %dx%d px MWIR scene from %.0f m AGL\n", pixels,
              pixels, altitude);
  std::printf("ground peak %.0f K (thermal model caps at %.0f K), flame up "
              "to %.2f m\n",
              util::max_value(ground_T), thermal.params().T_peak,
              flames.max_flame_length);
  std::printf("brightness temperature: min %.0f K, max %.0f K\n",
              util::min_value(sc.brightness), util::max_value(sc.brightness));

  scene::FreParams fp;
  fp.pixel_area = cam.pixel_area();
  const double frp_sb = scene::frp_stefan_boltzmann(sc.brightness, fp);
  const double frp_mir = scene::frp_mir_radiance(sc.radiance, sc.brightness, fp);
  std::printf("FRP: %.1f MW (Stefan-Boltzmann), %.1f MW (Wooster MIR); "
              "published wildfire range ~1 MW-1 GW\n",
              frp_sb / 1e6, frp_mir / 1e6);

  util::write_pgm("scene_brightness.pgm", sc.brightness, 280.0, 1100.0);
  util::write_false_color("scene_radiance.ppm", sc.radiance, 0.0,
                          util::max_value(sc.radiance));
  std::printf("wrote scene_brightness.pgm, scene_radiance.ppm\n");

  // Machine-readable summary for the golden-value smoke check.
  std::printf("SMOKE burned_area_ha=%.6f\n", model.burned_area() / 1e4);
  std::printf("SMOKE front_length_m=%.6f\n", model.front_length());
  std::printf("SMOKE peak_brightness_K=%.6f\n", util::max_value(sc.brightness));
  return 0;
}
