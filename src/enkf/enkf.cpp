#include "enkf/enkf.h"

#include <cmath>
#include <stdexcept>

#include "enkf/ensemble.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/svd.h"

namespace wfire::enkf {

namespace {

double rms(const la::Vector& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (const double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

// Observation-space path: factor S = HA HA^T/(N-1) + R once, solve for all
// innovation columns.
void analyze_obs_space(la::Matrix& X, const la::Matrix& A,
                       const la::Matrix& HA, const la::Matrix& Y,
                       const la::Vector& r_std) {
  const int N = X.cols();
  const int m = HA.rows();
  la::Matrix S(m, m, 0.0);
  la::gemm(false, true, 1.0 / (N - 1), HA, HA, 0.0, S);
  for (int i = 0; i < m; ++i) S(i, i) += r_std[i] * r_std[i];
  const la::CholeskyResult chol = la::cholesky(S);
  const la::Matrix Z = la::cholesky_solve(chol.L, Y);          // m x N
  const la::Matrix W = la::matmul(HA, Z, /*transA=*/true);     // N x N
  la::gemm(false, false, 1.0 / (N - 1), A, W, 1.0, X);         // X += A W/(N-1)
}

// Ensemble-space path: scale observations by R^{-1/2}, thin-SVD the scaled
// anomalies B = R^{-1/2} HA / sqrt(N-1) = U Sigma V^T, and use
// S~^{-1} y = U (Sigma^2+I)^{-1} U^T y + (y - U U^T y).
void analyze_ensemble_space(la::Matrix& X, const la::Matrix& A,
                            const la::Matrix& HA, const la::Matrix& Y,
                            const la::Vector& r_std, double rcond) {
  const int N = X.cols();
  const int m = HA.rows();
  const double inv_sqrtn1 = 1.0 / std::sqrt(static_cast<double>(N - 1));
  la::Matrix B(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i)
      B(i, k) = HA(i, k) * inv_sqrtn1 / r_std[i];
  const la::SvdResult s = la::svd(B);
  const int r = static_cast<int>(s.sigma.size());
  const double cutoff = s.sigma.empty() ? 0.0 : rcond * s.sigma[0];

  la::Matrix W(N, N, 0.0);  // columns: B^T Stilde^{-1} ytilde_k
  la::Vector yt(static_cast<std::size_t>(m));
  la::Vector p(static_cast<std::size_t>(r));
  la::Vector sy(static_cast<std::size_t>(m));
  for (int k = 0; k < N; ++k) {
    for (int i = 0; i < m; ++i) yt[i] = Y(i, k) / r_std[i];
    // p = U^T ytilde
    for (int j = 0; j < r; ++j) {
      double acc = 0;
      for (int i = 0; i < m; ++i) acc += s.U(i, j) * yt[i];
      p[j] = acc;
    }
    // Stilde^{-1} ytilde = ytilde + U ((1/(sigma^2+1) - 1) p)
    sy = yt;
    for (int j = 0; j < r; ++j) {
      const double sig = s.sigma[j] <= cutoff ? 0.0 : s.sigma[j];
      const double coef = (1.0 / (sig * sig + 1.0) - 1.0) * p[j];
      for (int i = 0; i < m; ++i) sy[i] += s.U(i, j) * coef;
    }
    // w = B^T (Stilde^{-1} ytilde)
    for (int c = 0; c < N; ++c) {
      double acc = 0;
      for (int i = 0; i < m; ++i) acc += B(i, c) * sy[i];
      W(c, k) = acc;
    }
  }
  la::gemm(false, false, inv_sqrtn1, A, W, 1.0, X);  // X += A W / sqrt(N-1)
}

}  // namespace

EnKFStats enkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        util::Rng& rng, const EnKFOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("enkf: HX column mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("enkf: obs size mismatch");
  if (N < 2) throw std::invalid_argument("enkf: need at least 2 members");
  for (const double r : r_std)
    if (r <= 0) throw std::invalid_argument("enkf: r_std must be positive");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;

  la::Matrix Xi = X;  // keep forecast for increment diagnostics
  inflate(X, opt.inflation);
  la::Matrix HXi = HX;
  inflate(HXi, opt.inflation);

  const la::Matrix A = anomalies(X);
  const la::Matrix HA = anomalies(HXi);

  // Innovations with perturbed observations: Y(:,k) = d + e_k - HX(:,k).
  la::Matrix Y(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i)
      Y(i, k) = d[i] + r_std[i] * rng.normal() - HXi(i, k);

  {
    const la::Vector hxm = ensemble_mean(HXi);
    la::Vector innov(d.size());
    for (int i = 0; i < m; ++i) innov[i] = d[i] - hxm[i];
    stats.innovation_rms = rms(innov);
  }

  SolverPath path = opt.path;
  if (path == SolverPath::kAuto)
    path = (m <= 2 * N) ? SolverPath::kObsSpace : SolverPath::kEnsembleSpace;
  stats.path_used = path;

  if (path == SolverPath::kObsSpace)
    analyze_obs_space(X, A, HA, Y, r_std);
  else
    analyze_ensemble_space(X, A, HA, Y, r_std, opt.svd_rcond);

  {
    const la::Vector ma = ensemble_mean(X);
    const la::Vector mf = ensemble_mean(Xi);
    la::Vector inc(ma.size());
    for (int i = 0; i < n; ++i) inc[i] = ma[i] - mf[i];
    stats.increment_rms = rms(inc);
  }
  return stats;
}

EnKFStats enkf_sequential(la::Matrix& X, la::Matrix& HX, const la::Vector& d,
                          const la::Vector& r_std, util::Rng& rng,
                          const SequentialOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("enkf_seq: HX mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("enkf_seq: obs size mismatch");
  if (N < 2) throw std::invalid_argument("enkf_seq: need >= 2 members");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;
  stats.path_used = SolverPath::kObsSpace;

  inflate(X, opt.inflation);
  inflate(HX, opt.inflation);

  {
    const la::Vector hxm = ensemble_mean(HX);
    la::Vector innov(d.size());
    for (int i = 0; i < m; ++i) innov[i] = d[i] - hxm[i];
    stats.innovation_rms = rms(innov);
  }
  const la::Vector mean_before = ensemble_mean(X);

  la::Vector ha(static_cast<std::size_t>(N));
  la::Vector px(static_cast<std::size_t>(n));
  la::Vector ph(static_cast<std::size_t>(m));
  for (int o = 0; o < m; ++o) {
    // Anomalies of the current obs coordinate.
    double hm = 0;
    for (int k = 0; k < N; ++k) hm += HX(o, k);
    hm /= N;
    double var = 0;
    for (int k = 0; k < N; ++k) {
      ha[k] = HX(o, k) - hm;
      var += ha[k] * ha[k];
    }
    var /= (N - 1);
    const double denom = var + r_std[o] * r_std[o];
    if (denom <= 0) continue;

    // Cross covariances state-obs and obs-obs.
    const la::Vector xm = ensemble_mean(X);
    const la::Vector hxm2 = ensemble_mean(HX);
    std::fill(px.begin(), px.end(), 0.0);
    std::fill(ph.begin(), ph.end(), 0.0);
    for (int k = 0; k < N; ++k) {
      const auto xc = X.col(k);
      for (int i = 0; i < n; ++i) px[i] += (xc[i] - xm[i]) * ha[k];
      const auto hc = HX.col(k);
      for (int i = 0; i < m; ++i) ph[i] += (hc[i] - hxm2[i]) * ha[k];
    }
    const double invn1 = 1.0 / (N - 1);
    for (double& v : px) v *= invn1;
    for (double& v : ph) v *= invn1;

    if (opt.state_obs_taper)
      for (int i = 0; i < n; ++i) px[i] *= opt.state_obs_taper(i, o, opt.taper_ctx);
    if (opt.obs_obs_taper)
      for (int i = 0; i < m; ++i) ph[i] *= opt.obs_obs_taper(i, o, opt.taper_ctx);

    // Update every member with its perturbed innovation.
    for (int k = 0; k < N; ++k) {
      const double innov = d[o] + r_std[o] * rng.normal() - HX(o, k);
      const double alpha = innov / denom;
      auto xc = X.col(k);
      for (int i = 0; i < n; ++i) xc[i] += alpha * px[i];
      auto hc = HX.col(k);
      for (int i = 0; i < m; ++i) hc[i] += alpha * ph[i];
    }
  }

  const la::Vector mean_after = ensemble_mean(X);
  la::Vector inc(mean_after.size());
  for (int i = 0; i < n; ++i) inc[i] = mean_after[i] - mean_before[i];
  stats.increment_rms = rms(inc);
  return stats;
}

}  // namespace wfire::enkf
