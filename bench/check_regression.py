#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares Google-Benchmark JSON output against a committed per-runner
baseline and fails (exit 1) when any gated benchmark is slower than
baseline * threshold. A benchmark listed in the baseline but missing from
the current results also fails — otherwise a rename or filter change would
silently drop the gate (the same trap the PASS_REGULAR_EXPRESSION guards in
tests/CMakeLists.txt exist for).

Usage:
  check_regression.py --baseline bench/ci_baseline_ubuntu.json \
      [--threshold 1.25] [--update] current1.json [current2.json ...]

The baseline format:
  { "meta": {...free-form provenance...},
    "threshold": 1.25,
    "benchmarks": { "<name>": {"real_time": <t>, "time_unit": "ms"}, ... } }

--update rewrites the baseline's benchmark times from the current results
(meta preserved, threshold kept): the refresh flow is to download the JSON
artifact from a green CI run on the target runner and re-commit. A baseline
captured on a different machine is only a tripwire until then.
"""
import argparse
import json
import sys
from pathlib import Path

# Everything is normalized to nanoseconds before comparing.
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_current(paths):
    out = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            out[b["name"]] = {
                "real_time": b["real_time"],
                "time_unit": b.get("time_unit", "ns"),
            }
    return out


def to_ns(entry):
    return entry["real_time"] * UNIT_NS[entry["time_unit"]]


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True, type=Path)
    ap.add_argument("--threshold", type=float, default=None,
                    help="slowdown ratio that fails (default: baseline file's "
                         "'threshold' field, else 1.25)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's times from the current "
                         "results instead of gating")
    ap.add_argument("current", nargs="+", type=Path)
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    current = load_current(args.current)

    if args.update:
        missing = [n for n in base["benchmarks"] if n not in current]
        if missing:
            print(f"refusing --update: current results lack {missing}")
            return 1
        for name in base["benchmarks"]:
            base["benchmarks"][name] = {
                "real_time": round(current[name]["real_time"], 3),
                "time_unit": current[name]["time_unit"],
            }
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} ({len(base['benchmarks'])} entries)")
        return 0

    threshold = args.threshold or base.get("threshold", 1.25)
    failures = []
    width = max((len(n) for n in base["benchmarks"]), default=20)
    print(f"{'benchmark':<{width}}  {'base':>10}  {'current':>10}  "
          f"{'ratio':>6}  gate<= {threshold:.2f}")
    for name, b in sorted(base["benchmarks"].items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current results")
            print(f"{name:<{width}}  {'-':>10}  {'MISSING':>10}")
            continue
        ratio = to_ns(cur) / to_ns(b)
        status = "ok" if ratio <= threshold else "FAIL"
        print(f"{name:<{width}}  {b['real_time']:>8.2f}{b['time_unit']}  "
              f"{cur['real_time']:>8.2f}{cur['time_unit']}  {ratio:>6.2f}  "
              f"{status}")
        if ratio > threshold:
            failures.append(f"{name}: {ratio:.2f}x baseline "
                            f"(limit {threshold:.2f}x)")
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for msg in failures:
            print(f"  - {msg}")
        print("\nIf this is an accepted change (or the runner hardware "
              "moved), refresh the baseline from this run's JSON artifact:\n"
              "  bench/check_regression.py --baseline "
              "bench/ci_baseline_ubuntu.json --update <artifact jsons>")
        return 1
    print(f"\nall {len(base['benchmarks'])} gated benchmarks within "
          f"{threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
