// Kernel backend selection for the dense LA layer. Two implementations of
// every hot kernel (gemm, syrk, ger, Cholesky) coexist:
//  - kBlocked: cache-blocked, panel-packed, OpenMP-threaded — the default;
//  - kReference: the original naive triple loops — kept as the ground truth
//    the blocked kernels are property-tested against.
// The process-wide default comes from the environment at first use
// (WFIRE_LA_BACKEND=blocked|reference, WFIRE_LA_BLOCK=<tile edge>) and can
// be overridden programmatically; tests use ScopedBackend.
#pragma once

namespace wfire::la {

enum class Backend { kBlocked, kReference };

// Process-wide backend for all dispatching kernels.
[[nodiscard]] Backend backend();
void set_backend(Backend b);

// Tile edge used by the blocked kernels (default 64, env WFIRE_LA_BLOCK).
// Values are clamped to [8, 1024].
[[nodiscard]] int block_size();
void set_block_size(int nb);

// RAII backend (and optionally block size) override for tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prev_(backend()) { set_backend(b); }
  ScopedBackend(Backend b, int nb)
      : prev_(backend()), prev_nb_(block_size()) {
    set_backend(b);
    set_block_size(nb);
  }
  ~ScopedBackend() {
    set_backend(prev_);
    if (prev_nb_ > 0) set_block_size(prev_nb_);
  }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend prev_;
  int prev_nb_ = 0;
};

}  // namespace wfire::la
