#include "serve/scenario_server.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <stdexcept>

#include "util/omp_compat.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace wfire::serve {

namespace {

constexpr double kCkptVersion = 2.0;  // v2 appended the fuel scales
constexpr std::size_t kMetaCount = 22;
constexpr std::size_t kIgnitionStride = 7;  // [type, 6 shape/time params]

long env_inline_threshold(long fallback) {
  const char* s = std::getenv("WFIRE_SERVE_INLINE");
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return (end != nullptr && *end == '\0' && v >= 0) ? v : fallback;
}

// Ignition <-> 7 doubles, for the checkpoint's "pending" section.
void pack_ignition(const levelset::Ignition& ign, double* out) {
  std::fill(out, out + kIgnitionStride, 0.0);
  if (const auto* c = std::get_if<levelset::CircleIgnition>(&ign)) {
    out[0] = 0;
    out[1] = c->cx;
    out[2] = c->cy;
    out[3] = c->r;
    out[4] = c->time;
  } else {
    const auto& l = std::get<levelset::LineIgnition>(ign);
    out[0] = 1;
    out[1] = l.x1;
    out[2] = l.y1;
    out[3] = l.x2;
    out[4] = l.y2;
    out[5] = l.w;
    out[6] = l.time;
  }
}

levelset::Ignition unpack_ignition(const double* in) {
  if (in[0] == 0.0)
    return levelset::CircleIgnition{in[1], in[2], in[3], in[4]};
  return levelset::LineIgnition{in[1], in[2], in[3], in[4], in[5], in[6]};
}

}  // namespace

ScenarioServer::ScenarioServer(ServerOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {
  opt_.inline_cell_steps = env_inline_threshold(opt_.inline_cell_steps);
  if (opt_.request_capacity < 1)
    throw std::invalid_argument("ScenarioServer: request_capacity < 1");
  if (!opt_.checkpoint_dir.empty())
    std::filesystem::create_directories(opt_.checkpoint_dir);
}

ScenarioServer::~ScenarioServer() { shutdown(); }

ScenarioServer::Scenario& ScenarioServer::at(ScenarioId id) const {
  std::lock_guard<std::mutex> lock(scenarios_mu_);
  if (id < 0 || id >= static_cast<int>(scenarios_.size()))
    throw std::out_of_range("ScenarioServer: no such scenario");
  return *scenarios_[static_cast<std::size_t>(id)];
}

ScenarioId ScenarioServer::admit(const ScenarioSpec& spec) {
  if (spec.dt <= 0) throw std::invalid_argument("ScenarioSpec: dt <= 0");
  if (!(spec.fuel_moisture_scale > 0) || !(spec.burn_time_scale > 0))
    throw std::invalid_argument("ScenarioSpec: fuel scales must be > 0");
  auto s = std::make_unique<Scenario>();
  s->spec = spec;
  s->grid = grid::Grid2D(spec.nx, spec.ny, spec.dx, spec.dy);
  fire::FuelMap fuel = fire::uniform_fuel(spec.nx, spec.ny, spec.fuel_category);
  if (spec.fuel_moisture_scale != 1.0 || spec.burn_time_scale != 1.0) {
    // Monte Carlo fuel perturbation: one multiplicative factor over the
    // whole catalog, so the perturbed scenario stays a pure function of its
    // spec (and round-trips through the checkpoint meta).
    for (fire::FuelCategory& c : fuel.catalog) {
      c.M *= spec.fuel_moisture_scale;
      c.tau *= spec.burn_time_scale;
    }
  }
  s->model = std::make_unique<fire::FireModel>(
      s->grid, std::move(fuel), fire::terrain_flat(s->grid), spec.fire);
  if (!spec.ignitions.empty()) s->model->ignite(spec.ignitions);
  // Carve the per-scenario arenas up front: flux outputs, the request ring,
  // and the checkpoint section buffers. Steady-state serving reuses these.
  s->out.sensible_flux = util::Array2D<double>(spec.nx, spec.ny);
  s->out.latent_flux = util::Array2D<double>(spec.nx, spec.ny);
  s->ring.resize(static_cast<std::size_t>(opt_.request_capacity));

  ScenarioId id = 0;
  {
    std::lock_guard<std::mutex> lock(scenarios_mu_);
    if (!accepting_.load())
      throw std::runtime_error("ScenarioServer: admit after shutdown");
    if (static_cast<int>(scenarios_.size()) >= opt_.max_scenarios)
      throw std::runtime_error("ScenarioServer: at max_scenarios capacity");
    id = static_cast<ScenarioId>(scenarios_.size());
    s->id = id;
    scenarios_.push_back(std::move(s));
  }
  Scenario& sc = at(id);
  if (!opt_.checkpoint_dir.empty()) {
    sc.ckpt_path =
        opt_.checkpoint_dir + "/scenario_" + std::to_string(id) + ".wfst";
    const std::size_t n = sc.model->state().psi.size();
    sc.ckpt_sections["meta"].resize(kMetaCount);
    sc.ckpt_sections["psi"].resize(n);
    sc.ckpt_sections["tig"].resize(n);
    sc.ckpt_sections["pending"];  // sized per write
  }
  sc.next_checkpoint = opt_.checkpoint_interval > 0
                           ? opt_.checkpoint_interval
                           : std::numeric_limits<double>::infinity();
  return id;
}

ScenarioId ScenarioServer::restore(const std::string& checkpoint_path) {
  const obs::Sections sec = obs::StateFile::read(checkpoint_path);
  const auto meta_it = sec.find("meta");
  const auto psi_it = sec.find("psi");
  const auto tig_it = sec.find("tig");
  if (meta_it == sec.end() || psi_it == sec.end() || tig_it == sec.end() ||
      meta_it->second.size() < kMetaCount)
    throw std::runtime_error("ScenarioServer: not a checkpoint: " +
                             checkpoint_path);
  const std::vector<double>& m = meta_it->second;
  if (m[0] != kCkptVersion)
    throw std::runtime_error("ScenarioServer: unsupported checkpoint version");

  ScenarioSpec spec;
  spec.nx = static_cast<int>(m[1]);
  spec.ny = static_cast<int>(m[2]);
  spec.dx = m[3];
  spec.dy = m[4];
  spec.dt = m[5];
  spec.fuel_category = static_cast<int>(m[6]);
  spec.wind_u = m[7];
  spec.wind_v = m[8];
  spec.wind_jitter = m[9];
  spec.seed = static_cast<std::uint64_t>(m[10]) |
              (static_cast<std::uint64_t>(m[11]) << 32);
  spec.realtime_speedup = m[12];
  spec.fuel_moisture_scale = m[20];
  spec.burn_time_scale = m[21];
  spec.fire.reinit_interval = static_cast<int>(m[16]);
  spec.fire.use_heun = m[17] != 0.0;
  spec.fire.min_fuel_frac = m[18];
  spec.fire.scheme = static_cast<levelset::UpwindScheme>(static_cast<int>(m[19]));

  const std::size_t n =
      static_cast<std::size_t>(spec.nx) * static_cast<std::size_t>(spec.ny);
  if (psi_it->second.size() != n || tig_it->second.size() != n)
    throw std::runtime_error("ScenarioServer: checkpoint field size mismatch");

  const ScenarioId id = admit(spec);
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  fire::FireState st;
  st.psi = util::Array2D<double>(spec.nx, spec.ny);
  st.tig = util::Array2D<double>(spec.nx, spec.ny);
  std::copy(psi_it->second.begin(), psi_it->second.end(), st.psi.begin());
  std::copy(tig_it->second.begin(), tig_it->second.end(), st.tig.begin());
  st.time = m[13];
  s.model->set_state(std::move(st));
  s.steps = static_cast<long>(m[14]);
  s.model->set_steps_since_reinit(static_cast<int>(m[15]));
  if (const auto pend_it = sec.find("pending"); pend_it != sec.end()) {
    const std::vector<double>& p = pend_it->second;
    std::vector<levelset::Ignition> pending;
    pending.reserve(p.size() / kIgnitionStride);
    for (std::size_t k = 0; k + kIgnitionStride <= p.size();
         k += kIgnitionStride)
      pending.push_back(unpack_ignition(&p[k]));
    s.model->set_pending_ignitions(std::move(pending));
  }
  if (opt_.checkpoint_interval > 0)
    s.next_checkpoint =
        (std::floor(st.time / opt_.checkpoint_interval) + 1.0) *
        opt_.checkpoint_interval;
  return id;
}

long ScenarioServer::estimate_cell_steps(const Scenario& s,
                                         double until) const {
  const double remaining = until - s.model->state().time;
  if (remaining <= 0) return 0;
  const double steps = std::ceil(remaining / s.spec.dt);
  return static_cast<long>(steps * s.spec.nx * s.spec.ny);
}

bool ScenarioServer::request_advance(ScenarioId id, double until) {
  Scenario& s = at(id);
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!accepting_.load())
      throw std::runtime_error("ScenarioServer: request after shutdown");
    if (s.ring_count == s.ring.size())
      throw std::runtime_error("ScenarioServer: request ring full");
    Request& r = s.ring[(s.ring_head + s.ring_count) % s.ring.size()];
    r.kind = Request::Kind::kAdvance;
    r.until = until;
    ++s.ring_count;
    if (s.running) return false;  // the in-flight job will pick it up
    s.running = true;
    // Admission control (SNIPPETS #3 threshold strategy): small jobs are
    // cheaper to serve on the caller thread than to dispatch.
    run_inline = estimate_cell_steps(s, until) <= opt_.inline_cell_steps;
    if (run_inline)
      ++s.inline_served;
    else
      ++s.pooled_served;
  }
  if (run_inline) {
    run_scenario(s, /*pooled=*/false);
    return true;
  }
  pool_.submit(par::Priority::kNormal,
               [this, &s] { run_scenario(s, /*pooled=*/true); });
  return false;
}

void ScenarioServer::request_ignite(ScenarioId id,
                                    const levelset::Ignition& ign) {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  if (!accepting_.load())
    throw std::runtime_error("ScenarioServer: request after shutdown");
  if (s.running || s.ring_count > 0) {
    if (s.ring_count == s.ring.size())
      throw std::runtime_error("ScenarioServer: request ring full");
    Request& r = s.ring[(s.ring_head + s.ring_count) % s.ring.size()];
    r.kind = Request::Kind::kIgnite;
    r.ignition = ign;
    ++s.ring_count;
    return;
  }
  // Idle scenario: apply directly so a lone ignition doesn't wedge wait().
  std::vector<levelset::Ignition> pending = s.model->pending_ignitions();
  pending.push_back(ign);
  s.model->set_pending_ignitions(std::move(pending));
}

void ScenarioServer::run_scenario(Scenario& s, bool pooled) {
  std::unique_lock<std::mutex> lock(s.mu);
  try {
    if (pooled) {
      util::ScopedOmpNumThreads narrow(opt_.pooled_omp_threads);
      drain_requests(s, lock);
    } else {
      drain_requests(s, lock);
    }
    // Ring drained: the scenario is about to go idle. The completion hook
    // runs under the lock (contract in the header: no server re-entry) and
    // before `running` flips, so wait() cannot return ahead of it; a
    // throwing hook takes the same failure path as a throwing advance.
    if (s.on_complete) s.on_complete(s.id, s.model->state());
  } catch (...) {
    if (s.error.empty()) {
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        s.error = e.what();
      } catch (...) {
        s.error = "unknown error";
      }
    }
    s.ring_count = 0;  // a failed scenario drops its queue rather than wedge
    s.running = false;
    s.idle_cv.notify_all();
    if (!pooled) throw;
    return;
  }
  s.running = false;
  s.idle_cv.notify_all();
}

void ScenarioServer::drain_requests(Scenario& s,
                                    std::unique_lock<std::mutex>& lock) {
  while (s.ring_count > 0) {
    const Request r = s.ring[s.ring_head];
    s.ring_head = (s.ring_head + 1) % s.ring.size();
    --s.ring_count;

    if (r.kind == Request::Kind::kIgnite) {
      std::vector<levelset::Ignition> pending = s.model->pending_ignitions();
      pending.push_back(r.ignition);
      s.model->set_pending_ignitions(std::move(pending));
      continue;
    }

    util::Stopwatch req_sw;
    const double t0 = s.model->state().time;
    while (s.model->state().time < r.until - 1e-9) {
      const double remaining = r.until - s.model->state().time;
      const double dt = std::min(s.spec.dt, remaining);
      double u = s.spec.wind_u, v = s.spec.wind_v;
      if (s.spec.wind_jitter > 0) {
        // Counter-based gust stream: a pure function of (seed, step), so the
        // trajectory is independent of pool width, admission route, and any
        // checkpoint/restore in between.
        util::Rng gust = util::Rng::stream(
            s.spec.seed, static_cast<std::uint64_t>(s.steps));
        u += s.spec.wind_jitter * gust.normal();
        v += s.spec.wind_jitter * gust.normal();
      }
      s.model->step_uniform_wind_into(dt, u, v, s.out);
      ++s.steps;
      if (s.model->state().time + 1e-9 >= s.next_checkpoint) {
        write_checkpoint_locked(s);
        s.next_checkpoint += opt_.checkpoint_interval;
      }
      // Yield between steps so status()/new requests interleave with a long
      // advance instead of blocking behind it.
      lock.unlock();
      lock.lock();
    }
    const double wall = req_sw.seconds();
    s.wall_seconds += wall;
    if (s.spec.realtime_speedup > 0 && r.until > t0) {
      const double budget = (r.until - t0) / s.spec.realtime_speedup;
      ++(wall <= budget ? s.deadlines_met : s.deadlines_missed);
    }
  }
}

void ScenarioServer::write_checkpoint_locked(Scenario& s) {
  if (s.ckpt_path.empty())
    throw std::runtime_error("ScenarioServer: no checkpoint_dir configured");
  const fire::FireState& st = s.model->state();
  std::vector<double>& meta = s.ckpt_sections["meta"];
  meta.resize(kMetaCount);
  meta[0] = kCkptVersion;
  meta[1] = s.spec.nx;
  meta[2] = s.spec.ny;
  meta[3] = s.spec.dx;
  meta[4] = s.spec.dy;
  meta[5] = s.spec.dt;
  meta[6] = s.spec.fuel_category;
  meta[7] = s.spec.wind_u;
  meta[8] = s.spec.wind_v;
  meta[9] = s.spec.wind_jitter;
  meta[10] = static_cast<double>(s.spec.seed & 0xffffffffULL);
  meta[11] = static_cast<double>(s.spec.seed >> 32);
  meta[12] = s.spec.realtime_speedup;
  meta[13] = st.time;
  meta[14] = static_cast<double>(s.steps);
  meta[15] = s.model->steps_since_reinit();
  meta[16] = s.spec.fire.reinit_interval;
  meta[17] = s.spec.fire.use_heun ? 1.0 : 0.0;
  meta[18] = s.spec.fire.min_fuel_frac;
  meta[19] = static_cast<double>(static_cast<int>(s.spec.fire.scheme));
  meta[20] = s.spec.fuel_moisture_scale;
  meta[21] = s.spec.burn_time_scale;
  s.ckpt_sections["psi"].assign(st.psi.begin(), st.psi.end());
  s.ckpt_sections["tig"].assign(st.tig.begin(), st.tig.end());
  const std::vector<levelset::Ignition>& pending = s.model->pending_ignitions();
  std::vector<double>& packed = s.ckpt_sections["pending"];
  packed.resize(pending.size() * kIgnitionStride);
  for (std::size_t k = 0; k < pending.size(); ++k)
    pack_ignition(pending[k], &packed[k * kIgnitionStride]);
  obs::StateFile::write(s.ckpt_path, s.ckpt_sections);
  ++s.checkpoints;
}

void ScenarioServer::set_completion_hook(ScenarioId id, CompletionHook hook) {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  s.on_complete = std::move(hook);
}

void ScenarioServer::checkpoint_now(ScenarioId id) {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  write_checkpoint_locked(s);
}

std::string ScenarioServer::checkpoint_path(ScenarioId id) const {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ckpt_path;
}

void ScenarioServer::wait(ScenarioId id) {
  Scenario& s = at(id);
  std::unique_lock<std::mutex> lock(s.mu);
  s.idle_cv.wait(lock, [&s] { return !s.running && s.ring_count == 0; });
}

void ScenarioServer::wait_all() {
  for (int id = 0; id < scenarios(); ++id) wait(id);
}

ScenarioStatus ScenarioServer::status(ScenarioId id) const {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  ScenarioStatus st;
  st.sim_time = s.model->state().time;
  st.steps = s.steps;
  st.burned_area = s.model->burned_area();
  st.wall_seconds = s.wall_seconds;
  st.inline_served = s.inline_served;
  st.pooled_served = s.pooled_served;
  st.checkpoints_written = s.checkpoints;
  st.deadlines_met = s.deadlines_met;
  st.deadlines_missed = s.deadlines_missed;
  st.queued_requests = static_cast<int>(s.ring_count);
  st.running = s.running;
  st.failed = !s.error.empty();
  return st;
}

const fire::FireState& ScenarioServer::state(ScenarioId id) const {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.model->state();
}

double ScenarioServer::front_length(ScenarioId id) const {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.model->front_length();
}

std::string ScenarioServer::error(ScenarioId id) const {
  Scenario& s = at(id);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.error;
}

int ScenarioServer::scenarios() const {
  std::lock_guard<std::mutex> lock(scenarios_mu_);
  return static_cast<int>(scenarios_.size());
}

long ScenarioServer::total_inline() const {
  long total = 0;
  for (int id = 0; id < scenarios(); ++id) {
    Scenario& s = at(id);
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.inline_served;
  }
  return total;
}

long ScenarioServer::total_pooled() const {
  long total = 0;
  for (int id = 0; id < scenarios(); ++id) {
    Scenario& s = at(id);
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.pooled_served;
  }
  return total;
}

void ScenarioServer::shutdown() {
  const bool first = accepting_.exchange(false);
  // Drain whatever is already queued — requests admitted before the flag
  // flipped still complete (graceful, not abortive).
  for (int id = 0; id < scenarios(); ++id) {
    Scenario& s = at(id);
    std::unique_lock<std::mutex> lock(s.mu);
    s.idle_cv.wait(lock, [&s] { return !s.running && s.ring_count == 0; });
  }
  if (first && !opt_.checkpoint_dir.empty()) {
    for (int id = 0; id < scenarios(); ++id) {
      Scenario& s = at(id);
      std::lock_guard<std::mutex> lock(s.mu);
      write_checkpoint_locked(s);
    }
  }
  pool_.shutdown(/*drain=*/true);
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    if (obs::StateFile::is_temp_path(p)) {
      // Stale temp from a crash mid-checkpoint: never a valid statefile
      // (the rename that would have published it did not happen) — reap it.
      std::filesystem::remove(entry.path(), ec);
      continue;
    }
    if (entry.path().extension() == ".wfst") out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wfire::serve
