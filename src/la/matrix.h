// Dense column-major matrix and vector types for the EnKF linear algebra
// (paper Fig. 2, "parallel linear algebra" box). Column-major so ensemble
// members (columns of the state matrix) are contiguous.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/assert.h"
#include "util/rng.h"

namespace wfire::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Matrix: negative dims");
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  double& operator()(int i, int j) {
    WFIRE_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "Matrix index");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  double operator()(int i, int j) const {
    WFIRE_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "Matrix index");
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  // Contiguous view of column j.
  [[nodiscard]] std::span<double> col(int j) {
    WFIRE_ASSERT(j >= 0 && j < cols_, "Matrix column index");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const double> col(int j) const {
    WFIRE_ASSERT(j >= 0 && j < cols_, "Matrix column index");
    return {data_.data() + static_cast<std::size_t>(j) * rows_,
            static_cast<std::size_t>(rows_)};
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  // Reshapes in place. Contents are unspecified afterwards; the backing
  // vector keeps its capacity, so shrinking and re-growing never reallocates
  // (the Workspace arena relies on this for allocation-free steady state).
  void resize(int rows, int cols) {
    if (rows < 0 || cols < 0)
      throw std::invalid_argument("Matrix::resize: negative dims");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
  }

  [[nodiscard]] static Matrix identity(int n);

  // Matrix with iid N(0,1) entries (used by tests and EnKF perturbations).
  [[nodiscard]] static Matrix random_normal(int rows, int cols,
                                            util::Rng& rng);

  [[nodiscard]] Matrix transposed() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace wfire::la
