// Deterministic ensemble transform Kalman filter (ETKF) — the square-root
// alternative to the paper's stochastic (perturbed-observations) EnKF. No
// observation noise is sampled; instead the analysis anomalies are a
// deterministic transform of the forecast anomalies whose sample covariance
// matches the Kalman posterior exactly:
//
//   Ptilde = (I + S^T S)^{-1},  S = R^{-1/2} HA / sqrt(N-1),
//   wbar   = Ptilde S^T R^{-1/2} (d - H xbar) / sqrt(N-1),
//   W      = sqrtm(Ptilde)  (symmetric square root),
//   Xa     = xbar 1^T + A (wbar 1^T + W).
//
// Provided as an extension: with 25 members (the paper's Fig. 4 size) the
// sampling noise of perturbed observations is noticeable, and the ETKF
// removes it at the cost of a dense N x N eigendecomposition.
#pragma once

#include "enkf/enkf.h"

namespace wfire::enkf {

struct EtkfOptions {
  double inflation = 1.0;  // multiplicative, pre-analysis
  // Scratch arena for the m-sized temporaries (inflated HX, scaled
  // anomalies, analysis ensemble); repeated analyses are allocation-free in
  // steady state apart from the N x N eigendecomposition, which is
  // negligible at ensemble sizes. A temporary arena is used when null.
  la::Workspace* workspace = nullptr;
};

// Deterministic analysis, in place on X. Arguments as enkf_analysis, minus
// the RNG (nothing is sampled).
EnKFStats etkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        const EtkfOptions& opt = {});

}  // namespace wfire::enkf
