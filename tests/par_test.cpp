// Thread pool and ensemble runner tests: correctness under concurrency,
// exception propagation, and phase timing.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "par/ensemble_runner.h"
#include "par/thread_pool.h"

using namespace wfire::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](int i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyConcurrentIncrements) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](int i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SubmitFutureCarriesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(EnsembleRunner, RecordsPhaseTimings) {
  EnsembleRunner runner(2);
  std::atomic<int> count{0};
  runner.run_phase("advance", 10, [&](int) { count.fetch_add(1); });
  runner.run_serial_phase("enkf", [&] { count.fetch_add(100); });
  EXPECT_EQ(count.load(), 110);
  ASSERT_EQ(runner.timings().size(), 2u);
  EXPECT_EQ(runner.timings()[0].name, "advance");
  EXPECT_EQ(runner.timings()[1].name, "enkf");
  EXPECT_GE(runner.total_seconds(), 0.0);
  runner.clear_timings();
  EXPECT_TRUE(runner.timings().empty());
}

TEST(EnsembleRunner, MemberTasksSeeTheirIndex) {
  EnsembleRunner runner(3);
  std::vector<int> seen(25, -1);
  runner.run_phase("advance", 25, [&](int k) { seen[k] = k; });
  for (int k = 0; k < 25; ++k) EXPECT_EQ(seen[k], k);
}
