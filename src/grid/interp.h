// Interpolation on node-centered grids. The paper's weather-station operator
// locates the containing cell "using linear interpolation of the location"
// and samples model fields with "biquadratic interpolation" (Sec. 3.1); both
// operations live here, together with the bilinear sampling used by the warp
// and the wind coupling.
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::grid {

// Location of a physical point within a grid: cell indices and unit-square
// fractions. Clamped to the valid interior so samples never read outside.
struct CellLocation {
  int i = 0, j = 0;       // lower-left node of the containing cell
  double tx = 0, ty = 0;  // fractions in [0, 1]
  bool inside = false;    // was (px, py) inside the grid before clamping?
};

[[nodiscard]] CellLocation locate(const Grid2D& g, double px, double py);

// Bilinear sample of a node field at a physical point (clamped extension).
[[nodiscard]] double bilinear(const Grid2D& g,
                              const util::Array2D<double>& field, double px,
                              double py);

// Biquadratic (3x3 Lagrange) sample; second-order-accurate node stencil
// centered on the node nearest to the sample point.
[[nodiscard]] double biquadratic(const Grid2D& g,
                                 const util::Array2D<double>& field, double px,
                                 double py);

// Bilinear sample using fractional index coordinates (fi, fj) directly;
// used by warps where the mapping is already in grid units.
[[nodiscard]] double bilinear_frac(const util::Array2D<double>& field,
                                   double fi, double fj);

}  // namespace wfire::grid
