#include "la/qr.h"

#include "la/blas.h"
#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::la {

namespace {

// Panel width of the compact-WY blocked path. Wider panels amortize the
// trailing gemm better but grow the O(rows * pb^2) T-factor build; 48 keeps
// that under a few percent of the update flops at EnKF shapes.
int panel_width(int n) { return std::min({block_size(), 48, n}); }

// --- reference path: the original serial column-by-column factorization ---

void qr_factor_reference(Matrix& R, Vector& beta) {
  const int m = R.rows();
  const int n = R.cols();
  for (int j = 0; j < n; ++j) {
    // Build the Householder reflector for column j.
    double norm = 0;
    for (int i = j; i < m; ++i) norm += R(i, j) * R(i, j);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[j] = 0.0;
      continue;
    }
    const double alpha = R(j, j) >= 0 ? -norm : norm;
    const double v0 = R(j, j) - alpha;
    beta[j] = -v0 / alpha;  // 2 / (v^T v) with v scaled so v[j] = 1
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < m; ++i) R(i, j) *= inv_v0;
    R(j, j) = alpha;
    // Apply the reflector to the trailing columns.
    for (int k = j + 1; k < n; ++k) {
      double s = R(j, k);
      for (int i = j + 1; i < m; ++i) s += R(i, j) * R(i, k);
      s *= beta[j];
      R(j, k) -= s;
      for (int i = j + 1; i < m; ++i) R(i, k) -= s * R(i, j);
    }
  }
}

// --- blocked path: compact-WY panels, trailing update through gemm ---

// Factors panel columns [j0, j0 + jb) in place, applying each reflector to
// the remaining *panel* columns only (the trailing matrix is updated once
// per panel via the WY form). The per-reflector application is threaded
// across panel columns when the panel is tall enough to pay for it.
void panel_factor(Matrix& A, Vector& beta, int j0, int jb) {
  const int m = A.rows();
  const int last = j0 + jb;
  for (int j = j0; j < last; ++j) {
    double norm = 0;
    for (int i = j; i < m; ++i) norm += A(i, j) * A(i, j);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[j] = 0.0;
      continue;
    }
    const double alpha = A(j, j) >= 0 ? -norm : norm;
    const double v0 = A(j, j) - alpha;
    beta[j] = -v0 / alpha;
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < m; ++i) A(i, j) *= inv_v0;
    A(j, j) = alpha;
    const double bj = beta[j];
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) \
                 if (static_cast<long>(m - j) * (last - j - 1) > 16384))
    for (int k = j + 1; k < last; ++k) {
      double s = A(j, k);
      for (int i = j + 1; i < m; ++i) s += A(i, j) * A(i, k);
      s *= bj;
      A(j, k) -= s;
      for (int i = j + 1; i < m; ++i) A(i, k) -= s * A(i, j);
    }
  }
}

// Unpacks the reflectors of panel [j0, j0 + jb) into explicit V
// ((m - j0) x jb, unit diagonal, zeros above) and builds the upper-
// triangular T of the compact-WY form H_{j0} ... H_{j0+jb-1} = I - V T V^T.
void build_wy(const Matrix& A, const Vector& beta, int j0, int jb, Matrix& V,
              Matrix& T) {
  const int m = A.rows();
  const int rows = m - j0;
  V.resize(rows, jb);
  T.resize(jb, jb);
  for (int jj = 0; jj < jb; ++jj) {
    const int j = j0 + jj;
    auto v = V.col(jj);
    for (int i = 0; i < jj; ++i) v[i] = 0.0;
    v[jj] = 1.0;
    for (int i = jj + 1; i < rows; ++i) v[i] = A(j0 + i, j);
  }
  // T(0:jj, jj) = -beta_jj * T(0:jj, 0:jj) * (V(:, 0:jj)^T v_jj). The whole
  // column is zeroed first: T may live in a reused arena buffer whose
  // previous shape leaves garbage below the diagonal, and the WY gemms read
  // the full matrix.
  for (int jj = 0; jj < jb; ++jj) {
    const double b = beta[j0 + jj];
    for (int i = 0; i < jb; ++i) T(i, jj) = 0.0;
    T(jj, jj) = b;
    if (b == 0.0) continue;
    const auto vj = V.col(jj);
    for (int p = 0; p < jj; ++p) {
      const auto vp = V.col(p);
      double s = 0;
      // v_p has zeros above its own diagonal; v_jj above jj — the product
      // only needs rows >= jj.
      for (int i = jj; i < rows; ++i) s += vp[i] * vj[i];
      T(p, jj) = s;
    }
    // In-place triangular multiply T(0:jj, jj) <- -b * T_prev * t: ascending
    // rows, since row i only reads the still-raw dots at positions >= i.
    for (int i = 0; i < jj; ++i) {
      double s = 0;
      for (int p = i; p < jj; ++p) s += T(i, p) * T(p, jj);
      T(i, jj) = -b * s;
    }
  }
}

// C(j0:m, cols) <- (I - V op(T) V^T) C(j0:m, cols), with C staged through
// workspace buffers so the three products run through the dispatched gemm.
// trans_t selects between Q (T) and Q^T (T^T) of the panel.
void apply_wy_panel(const Matrix& V, const Matrix& T, bool trans_t, Matrix& C,
                    int j0, Workspace& ws) {
  const int m = C.rows();
  const int nc = C.cols();
  const int rows = m - j0;
  const int jb = V.cols();
  Matrix& Csub = ws.mat("qr.Csub", rows, nc);
  for (int k = 0; k < nc; ++k) {
    const auto src = C.col(k);
    auto dst = Csub.col(k);
    for (int i = 0; i < rows; ++i) dst[i] = src[j0 + i];
  }
  Matrix& W = ws.mat("qr.W", jb, nc);
  gemm(true, false, 1.0, V, Csub, 0.0, W);       // W  = V^T C
  Matrix& W2 = ws.mat("qr.W2", jb, nc);
  gemm(trans_t, false, 1.0, T, W, 0.0, W2);      // W2 = op(T) W
  gemm(false, false, -1.0, V, W2, 1.0, Csub);    // C -= V W2
  for (int k = 0; k < nc; ++k) {
    const auto src = Csub.col(k);
    auto dst = C.col(k);
    for (int i = 0; i < rows; ++i) dst[j0 + i] = src[i];
  }
}

void qr_factor_blocked(Matrix& A, Vector& beta, Workspace& ws) {
  const int m = A.rows();
  const int n = A.cols();
  const int pb = panel_width(n);
  for (int j0 = 0; j0 < n; j0 += pb) {
    const int jb = std::min(pb, n - j0);
    panel_factor(A, beta, j0, jb);
    if (j0 + jb >= n) break;
    Matrix& V = ws.mat("qr.V", m - j0, jb);
    Matrix& T = ws.mat("qr.T", jb, jb);
    build_wy(A, beta, j0, jb, V, T);
    // Trailing columns as a contiguous block for the WY gemms.
    const int nc = n - j0 - jb;
    Matrix& Ct = ws.mat("qr.Ct", m, nc);
    for (int k = 0; k < nc; ++k) {
      const auto src = A.col(j0 + jb + k);
      auto dst = Ct.col(k);
      for (int i = 0; i < m; ++i) dst[i] = src[i];
    }
    apply_wy_panel(V, T, /*trans_t=*/true, Ct, j0, ws);
    for (int k = 0; k < nc; ++k) {
      const auto src = Ct.col(k);
      auto dst = A.col(j0 + jb + k);
      for (int i = j0; i < m; ++i) dst[i] = src[i];
    }
  }
}

// Reference application of a single reflector j to every column of C.
void apply_reflector_reference(const Matrix& qr, const Vector& beta, int j,
                               Matrix& C) {
  const int m = qr.rows();
  if (beta[j] == 0.0) return;
  for (int k = 0; k < C.cols(); ++k) {
    auto c = C.col(k);
    double s = c[j];
    for (int i = j + 1; i < m; ++i) s += qr(i, j) * c[i];
    s *= beta[j];
    c[j] -= s;
    for (int i = j + 1; i < m; ++i) c[i] -= s * qr(i, j);
  }
}

void apply_q_or_qt(const Matrix& qr, const Vector& beta, Matrix& C,
                   bool transpose, Workspace* ws) {
  const int m = qr.rows();
  const int n = qr.cols();
  if (C.rows() != m)
    throw std::invalid_argument("apply_q: row mismatch");
  if (static_cast<int>(beta.size()) != n)
    throw std::invalid_argument("apply_q: beta size mismatch");
  if (C.cols() == 0 || n == 0) return;
  if (backend() == Backend::kReference) {
    // Q^T = H_{n-1} ... H_0 applied left to right; Q right to left.
    if (transpose)
      for (int j = 0; j < n; ++j) apply_reflector_reference(qr, beta, j, C);
    else
      for (int j = n - 1; j >= 0; --j)
        apply_reflector_reference(qr, beta, j, C);
    return;
  }
  Workspace local;
  Workspace& arena = ws ? *ws : local;
  const int pb = panel_width(n);
  const int npanels = (n + pb - 1) / pb;
  for (int p = 0; p < npanels; ++p) {
    // Q^T consumes panels left to right (with T^T), Q right to left (with T).
    const int j0 = (transpose ? p : npanels - 1 - p) * pb;
    const int jb = std::min(pb, n - j0);
    Matrix& V = arena.mat("qr.V", m - j0, jb);
    Matrix& T = arena.mat("qr.T", jb, jb);
    build_wy(qr, beta, j0, jb, V, T);
    apply_wy_panel(V, T, /*trans_t=*/transpose, C, j0, arena);
  }
}

}  // namespace

void qr_factor_in_place(Matrix& A, Vector& beta, Workspace* ws) {
  const int m = A.rows();
  const int n = A.cols();
  if (m < n) throw std::invalid_argument("qr_factor: requires m >= n");
  beta.resize(static_cast<std::size_t>(n));
  std::fill(beta.begin(), beta.end(), 0.0);
  if (n == 0) return;
  if (backend() == Backend::kReference) {
    qr_factor_reference(A, beta);
    return;
  }
  Workspace local;
  qr_factor_blocked(A, beta, ws ? *ws : local);
}

QrFactor qr_factor(const Matrix& A) {
  QrFactor f{A, Vector()};
  qr_factor_in_place(f.qr, f.beta);
  return f;
}

void apply_qt(const QrFactor& f, Vector& v) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  if (static_cast<int>(v.size()) != m)
    throw std::invalid_argument("apply_qt: size mismatch");
  for (int j = 0; j < n; ++j) {
    if (f.beta[j] == 0.0) continue;
    double s = v[j];
    for (int i = j + 1; i < m; ++i) s += f.qr(i, j) * v[i];
    s *= f.beta[j];
    v[j] -= s;
    for (int i = j + 1; i < m; ++i) v[i] -= s * f.qr(i, j);
  }
}

void apply_qt_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                       Workspace* ws) {
  apply_q_or_qt(qr, beta, C, /*transpose=*/true, ws);
}

void apply_q_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                      Workspace* ws) {
  apply_q_or_qt(qr, beta, C, /*transpose=*/false, ws);
}

void r_solve_in_place(const Matrix& qr, Matrix& B) {
  const int n = qr.cols();
  if (qr.rows() < n || B.rows() != n)
    throw std::invalid_argument("r_solve: size mismatch");
  for (int i = 0; i < n; ++i)
    if (qr(i, i) == 0.0)
      throw std::runtime_error("r_solve: rank-deficient system");
  const int nrhs = B.cols();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nrhs > 1))
  for (int c = 0; c < nrhs; ++c) {
    auto b = B.col(c);
    for (int i = n - 1; i >= 0; --i) {
      double s = b[i];
      for (int p = i + 1; p < n; ++p) s -= qr(i, p) * b[p];
      b[i] = s / qr(i, i);
    }
  }
}

void rt_solve_in_place(const Matrix& qr, Matrix& B) {
  const int n = qr.cols();
  if (qr.rows() < n || B.rows() != n)
    throw std::invalid_argument("rt_solve: size mismatch");
  for (int i = 0; i < n; ++i)
    if (qr(i, i) == 0.0)
      throw std::runtime_error("rt_solve: rank-deficient system");
  const int nrhs = B.cols();
  const double* Rd = qr.data();
  const std::size_t ld = static_cast<std::size_t>(qr.rows());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nrhs > 1))
  for (int c = 0; c < nrhs; ++c) {
    auto b = B.col(c);
    // Column i of R above the diagonal is row i of R^T: contiguous walks.
    for (int i = 0; i < n; ++i) {
      const double* ri = Rd + static_cast<std::size_t>(i) * ld;
      double s = b[i];
      for (int p = 0; p < i; ++p) s -= ri[p] * b[p];
      b[i] = s / ri[i];
    }
  }
}

Vector least_squares(const Matrix& A, const Vector& b) {
  if (static_cast<int>(b.size()) != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  const QrFactor f = qr_factor(A);
  Vector y = b;
  apply_qt(f, y);
  const int n = A.cols();
  Vector x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    if (f.qr(i, i) == 0.0)
      throw std::runtime_error("least_squares: rank-deficient system");
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= f.qr(i, k) * x[k];
    x[i] = s / f.qr(i, i);
  }
  return x;
}

Matrix least_squares(const Matrix& A, const Matrix& B) {
  if (B.rows() != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  Workspace ws;
  Matrix QR = A;
  Vector beta;
  qr_factor_in_place(QR, beta, &ws);
  Matrix Y = B;
  apply_qt_in_place(QR, beta, Y, &ws);
  const int n = A.cols();
  Matrix X(n, B.cols());
  for (int j = 0; j < B.cols(); ++j) {
    const auto src = Y.col(j);
    auto dst = X.col(j);
    for (int i = 0; i < n; ++i) dst[i] = src[i];
  }
  r_solve_in_place(QR, X);
  return X;
}

Matrix economy_q(const QrFactor& f) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  Matrix Q(m, n, 0.0);
  Vector e(static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[j] = 1.0;
    // Q e_j = H_0 H_1 ... H_{n-1} e_j, apply reflectors in reverse.
    for (int p = n - 1; p >= 0; --p) {
      if (f.beta[p] == 0.0) continue;
      double s = e[p];
      for (int i = p + 1; i < m; ++i) s += f.qr(i, p) * e[i];
      s *= f.beta[p];
      e[p] -= s;
      for (int i = p + 1; i < m; ++i) e[i] -= s * f.qr(i, p);
    }
    for (int i = 0; i < m; ++i) Q(i, j) = e[i];
  }
  return Q;
}

Matrix economy_r(const QrFactor& f) {
  const int n = f.qr.cols();
  Matrix R(n, n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) R(i, j) = f.qr(i, j);
  return R;
}

}  // namespace wfire::la
