// Ray-marched mid-wave infrared renderer — the repo's stand-in for DIRSIG
// (see DESIGN.md). For each camera ray, the band radiance combines the three
// radiated-energy terms the paper lists (Sec. 3.2):
//
//  1. emission from the hot ground under and behind the fire front (the
//     double-exponential thermal history),
//  2. direct radiation from the 3-D voxelized flame, accumulated along the
//     ray with Beer-Lambert attenuation,
//  3. flame radiation *reflected from the nearby ground* — "most important
//     in the near and mid-wave infrared spectrum" — computed from a
//     precomputed flame-irradiance map and the ground's (1 - emissivity).
//
// A constant atmospheric band transmittance stands in for the path model.
#pragma once

#include "scene/camera.h"
#include "scene/flame.h"
#include "scene/planck.h"
#include "scene/thermal.h"
#include "util/array2d.h"

namespace wfire::scene {

struct RenderParams {
  double ground_emissivity = 0.95;   // burn-scar / soil emissivity (MWIR)
  double atmos_transmittance = 0.85; // 3000 m slant path, clear air
  double march_step = 0.5;           // ray-march step inside flames [m]
  int irradiance_stride = 2;         // voxel subsampling for the reflection map
  double background_temperature = 300.0;  // terrain outside the fire grid [K]
  double band_lo = kMidwaveLo;
  double band_hi = kMidwaveHi;
};

struct RenderedScene {
  util::Array2D<double> radiance;    // [W m^-2 sr^-1] band radiance
  util::Array2D<double> brightness;  // [K] band brightness temperature
};

class Renderer {
 public:
  explicit Renderer(RenderParams p = {});

  // Renders the camera view of a fire state: `ground_T` is the surface
  // temperature map on the fire grid, `flames` the voxelized flame.
  [[nodiscard]] RenderedScene render(const Camera& cam,
                                     const grid::Grid2D& fire_grid,
                                     const util::Array2D<double>& ground_T,
                                     const FlameVoxels& flames) const;

  // Flame irradiance map on the ground [W/m^2] (exposed for tests and the
  // reflection-term ablation).
  [[nodiscard]] util::Array2D<double> flame_irradiance(
      const grid::Grid2D& fire_grid, const FlameVoxels& flames) const;

  [[nodiscard]] const RenderParams& params() const { return p_; }

 private:
  RenderParams p_;
};

}  // namespace wfire::scene
