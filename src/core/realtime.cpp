#include "core/realtime.h"

#include <chrono>
#include <thread>

#include "util/stopwatch.h"

namespace wfire::core {

RealTimeDriver::RealTimeDriver(AssimilationCycle& cycle,
                               ObservationSource& source, RealTimeOptions opt)
    : cycle_(cycle), source_(source), opt_(opt) {}

std::vector<CycleRecord> RealTimeDriver::run() {
  std::vector<CycleRecord> records;
  records.reserve(static_cast<std::size_t>(opt_.cycles));
  double sim_time = 0;
  for (int c = 0; c < opt_.cycles; ++c) {
    sim_time += opt_.cycle_interval;

    // Data acquisition happens off the measured path: in the twin experiment
    // this advances the hidden truth and synthesizes noise, neither of which
    // the operational system would spend its compute budget on.
    util::Stopwatch obs_sw;
    const ObservationImage obs = source_.observe_at(sim_time);
    const double obs_seconds = obs_sw.seconds();

    util::Stopwatch sw;
    cycle_.advance_to(sim_time);
    CycleRecord rec;
    rec.analysis = cycle_.assimilate(obs);
    rec.wall_seconds = sw.seconds();
    rec.sim_time = sim_time;
    rec.obs_seconds = obs_seconds;
    rec.deadline_seconds = opt_.cycle_interval / opt_.speedup;
    rec.met_deadline = rec.wall_seconds <= rec.deadline_seconds;
    if (const util::Array2D<double>* truth = source_.truth_psi())
      rec.position_error = cycle_.mean_position_error(*truth);
    records.push_back(rec);

    if (opt_.pace && rec.wall_seconds < rec.deadline_seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          rec.deadline_seconds - rec.wall_seconds));
    }
  }
  return records;
}

}  // namespace wfire::core
