// Batched (structure-of-arrays) level set kernels for ensemble propagation.
//
// Layout contract: an ensemble field stores the N members' values for one
// grid node contiguously — value(cell, k) = data[cell * stride + k], with
// cell = j * nx + i (the Array2D cell order) and stride >= members rounded
// up so the inner member loop is unit-stride and vectorizable. Padding lanes
// (k >= members) must hold benign values (psi = +far, speed = 0): they run
// through the same arithmetic as real members and must not produce NaN/Inf
// that could trap. See core/ensemble_batch.h for the owning container.
//
// All kernels sweep a *band* — an explicit, sorted list of cell indices —
// rather than the whole grid; passing every cell reproduces the full-grid
// sweep bitwise (the per-node arithmetic is exactly godunov.cpp /
// integrator.cpp order, so batched-vs-per-member agreement is exact, not
// approximate). Scratch fields (gradients, the Heun predictor) are compact:
// indexed by band position b, value(b, k) = scratch[b * stride + k], with
// `band_pos` mapping cell -> band position (-1 outside the band) so stencil
// reads of compact fields can fall back to the frozen full-grid field.
#pragma once

#include "grid/grid2d.h"
#include "levelset/godunov.h"

namespace wfire::levelset {

// Shape of one SoA ensemble field (see layout contract above).
struct BatchLayout {
  int nx = 0, ny = 0;
  int stride = 0;  // padded member count; inner loops run k in [0, stride)

  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }
  [[nodiscard]] std::size_t size() const { return cells() * stride; }
};

// |grad psi| per member at each band cell, from the full-grid SoA field
// `psi`. Output `grad` is compact: grad[b * stride + k] for band cell b.
// Boundary handling matches gradient_magnitude (clamped reads).
void gradient_magnitude_batch(const grid::Grid2D& g, const BatchLayout& lay,
                              const double* psi, UpwindScheme scheme,
                              const int* band, int nband, double* grad);

// Same, but for a field defined compactly on the band (the Heun predictor):
// stencil reads at cells outside the band fall back to the full-grid
// `fallback` field (frozen there, since only band cells were advanced).
void gradient_magnitude_compact(const grid::Grid2D& g, const BatchLayout& lay,
                                const double* compact, const int* band_pos,
                                const double* fallback, UpwindScheme scheme,
                                const int* band, int nband, double* grad);

// One explicit Euler step on the band cells: psi -= dt * S .* |grad psi|.
// `speed` and scratch `k1` are compact (band-major); psi is full-grid SoA.
void step_euler_batch(const grid::Grid2D& g, const BatchLayout& lay,
                      const double* speed, double dt, UpwindScheme scheme,
                      const int* band, int nband, double* psi, double* k1);

// One Heun step on the band cells (integrator.cpp arithmetic, per node):
//   k1 = S |grad psi|, pred = psi - dt k1,
//   k2 = S |grad pred|, psi <- psi - dt (k1 + k2) / 2.
// `speed`, `pred`, `k1`, `k2` are compact; `band_pos` maps cell -> band
// position so the predictor gradient can read frozen psi outside the band.
void step_heun_batch(const grid::Grid2D& g, const BatchLayout& lay,
                     const double* speed, double dt, UpwindScheme scheme,
                     const int* band, int nband, const int* band_pos,
                     double* psi, double* pred, double* k1, double* k2);

}  // namespace wfire::levelset
