#include "core/ensemble_batch.h"

#include "levelset/fast_sweep.h"
#include "util/omp_compat.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace wfire::core {

namespace {

AdvanceMode advance_mode_from_env() {
  const char* s = std::getenv("WFIRE_ADVANCE");
  if (!s || std::strcmp(s, "batched") == 0) return AdvanceMode::kBatched;
  if (std::strcmp(s, "reference") == 0) return AdvanceMode::kReference;
  // A typo here would silently invalidate advance-path comparisons — say so.
  std::fprintf(stderr,
               "wfire: unrecognized WFIRE_ADVANCE='%s' "
               "(expected 'batched' or 'reference'); using batched\n",
               s);
  return AdvanceMode::kBatched;
}

std::atomic<AdvanceMode>& advance_flag() {
  static std::atomic<AdvanceMode> m{advance_mode_from_env()};
  return m;
}

int band_cells_from_env() {
  const char* s = std::getenv("WFIRE_BAND_CELLS");
  if (s) {
    const int n = std::atoi(s);
    if (n >= 0) return n;
  }
  return 8;
}

int round_up(int n, int pad) { return ((n + pad - 1) / pad) * pad; }

}  // namespace

AdvanceMode default_advance_mode() {
  return advance_flag().load(std::memory_order_relaxed);
}

void set_default_advance_mode(AdvanceMode m) {
  if (m == AdvanceMode::kAuto) m = advance_mode_from_env();
  advance_flag().store(m, std::memory_order_relaxed);
}

int default_band_cells() {
  static const int n = band_cells_from_env();
  return n;
}

EnsembleBatch::EnsembleBatch(const grid::Grid2D& g, const fire::FuelMap& fuel,
                             const util::Array2D<double>& terrain,
                             fire::FireModelOptions opt, int members,
                             EnsembleBatchOptions bopt)
    : grid_(g), opt_(opt), bopt_(bopt), members_(members) {
  if (members_ < 1)
    throw std::invalid_argument("EnsembleBatch: members < 1");
  if (fuel.index.nx() != g.nx || fuel.index.ny() != g.ny)
    throw std::invalid_argument("EnsembleBatch: fuel map does not match grid");
  if (terrain.nx() != g.nx || terrain.ny() != g.ny)
    throw std::invalid_argument("EnsembleBatch: terrain does not match grid");
  const int pad = std::max(1, bopt_.simd_pad);
  lay_ = levelset::BatchLayout{g.nx, g.ny, round_up(members_, pad)};

  tables_ = fire::SpreadTables::build(fuel);
  fire::terrain_gradient(grid_, terrain, dzdx_, dzdy_);

  const double far = g.width() + g.height();
  psi_.assign(lay_.size(), far);
  tig_.assign(lay_.size(), fire::kNotIgnited);
  fuel_.assign(lay_.size(), 0.0);  // padding lanes: no fuel -> speed 0
  wind_u_.assign(lay_.stride, 0.0);
  wind_v_.assign(lay_.stride, 0.0);
  pending_.assign(static_cast<std::size_t>(members_), {});
  band_pos_.assign(lay_.cells(), -1);

  if (bopt_.band_cells > 0) {
    const double h = std::max(g.dx, g.dy);
    band_width_m_ = std::max(bopt_.band_cells, 4) * h;
    // Rebuild before the front can get within ~2 cells of the band edge;
    // under the level set CFL bound a step travels at most one cell.
    rebuild_margin_m_ = band_width_m_ - 2.0 * h;
  }
  rebuild_band();
}

void EnsembleBatch::set_member_wind(int k, double u, double v) {
  if (k < 0 || k >= members_)
    throw std::invalid_argument("EnsembleBatch: wind member out of range");
  wind_u_[k] = u;
  wind_v_[k] = v;
}

void EnsembleBatch::load(
    const std::vector<std::unique_ptr<fire::FireModel>>& models) {
  std::vector<fire::FireModel*> raw(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) raw[k] = models[k].get();
  load(raw);
}

void EnsembleBatch::load(const std::vector<fire::FireModel*>& models) {
  if (static_cast<int>(models.size()) != members_)
    throw std::invalid_argument("EnsembleBatch: load with wrong member count");
  time_ = models.front()->state().time;
  steps_since_reinit_ = models.front()->steps_since_reinit();
  for (const auto* m : models) {
    if (std::abs(m->state().time - time_) > 1e-9)
      throw std::invalid_argument(
          "EnsembleBatch: members must share the model time");
    if (m->steps_since_reinit() != steps_since_reinit_)
      throw std::invalid_argument(
          "EnsembleBatch: members must share the reinit phase");
  }
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
  pending_.assign(static_cast<std::size_t>(members_), {});
  for (int k = 0; k < members_; ++k) {
    const double* ps = models[k]->state().psi.data();
    const double* tg = models[k]->state().tig.data();
    const double* ff = models[k]->fuel_fraction().data();
    for (std::size_t c = 0; c < cells; ++c) {
      psi_[c * stride + k] = ps[c];
      tig_[c * stride + k] = tg[c];
      fuel_[c * stride + k] = ff[c];
    }
    pending_[k] = models[k]->pending_ignitions();
  }
  travel_ = 0;
  travel_since_reinit_ = 0;
  rebuild_band();
}

// Applies each member's due delayed ignitions with the reference path's
// arithmetic (FireModel::apply_pending_ignitions): signed distance of the
// due union, min-merged into psi, then tig = now wherever psi < 0 and the
// node has not ignited. Returns true if any member's field changed (the
// band must then be rebuilt before the sweep).
bool EnsembleBatch::apply_due_ignitions() {
  bool any = false;
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
  for (int k = 0; k < members_; ++k) {
    auto& queue = pending_[k];
    if (queue.empty()) continue;
    std::vector<levelset::Ignition> due, later;
    for (const auto& ign : queue) {
      if (levelset::ignition_time(ign) <= time_)
        due.push_back(ign);
      else
        later.push_back(ign);
    }
    if (due.empty()) continue;
    queue = std::move(later);
    levelset::initialize_signed_distance(grid_, due, ignite_scratch_);
    const double* pn = ignite_scratch_.data();
    for (std::size_t c = 0; c < cells; ++c) {
      double& p = psi_[c * stride + k];
      if (pn[c] < p) p = pn[c];
      if (p < 0 && tig_[c * stride + k] == fire::kNotIgnited)
        tig_[c * stride + k] = time_;
    }
    any = true;
  }
  return any;
}

void EnsembleBatch::rebuild_band() {
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
  band_.clear();
  if (band_width_m_ <= 0) {
    band_.reserve(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      band_.push_back(static_cast<int>(c));
      band_pos_[c] = static_cast<int>(c);
    }
  } else {
    for (std::size_t c = 0; c < cells; ++c) {
      const double* row = &psi_[c * stride];
      double amin = std::abs(row[0]);
      for (int k = 1; k < members_; ++k)
        amin = std::min(amin, std::abs(row[k]));
      if (amin < band_width_m_) {
        band_pos_[c] = static_cast<int>(band_.size());
        band_.push_back(static_cast<int>(c));
      } else {
        band_pos_[c] = -1;
      }
    }
  }
  travel_ = 0;
  const std::size_t compact = band_.size() * static_cast<std::size_t>(stride);
  speed_.resize(compact);
  k1_.resize(compact);
  k2_.resize(compact);
  pred_.resize(compact);
  before_.resize(compact);
}

void EnsembleBatch::advance_to(double time, double dt) {
  if (dt <= 0) throw std::invalid_argument("EnsembleBatch: dt <= 0");
  while (time_ < time - 1e-9) {
    const double remaining = time - time_;
    step(std::min(dt, remaining));
  }
}

void EnsembleBatch::step(double dt) {
  advance_fields(dt, wind_u_.data(), wind_v_.data(), /*field_wind=*/false);
  maybe_reinit();
}

void EnsembleBatch::coupled_step(double dt, const double* wind_u_field,
                                 const double* wind_v_field,
                                 double* sensible_flux, double* latent_flux) {
  const double t_before = time_;
  advance_fields(dt, wind_u_field, wind_v_field, /*field_wind=*/true);
  accumulate_fluxes(t_before, dt, sensible_flux, latent_flux);
  maybe_reinit();
}

void EnsembleBatch::advance_fields(double dt, const double* wind_u,
                                   const double* wind_v, bool field_wind) {
  const int stride = lay_.stride;
  const double h = std::max(grid_.dx, grid_.dy);
  if (apply_due_ignitions() && band_width_m_ > 0) rebuild_band();
  if (band_width_m_ > 0 && travel_ + h >= rebuild_margin_m_) rebuild_band();
  const int nband = static_cast<int>(band_.size());
  const int* band = band_.data();

  const double smax =
      field_wind
          ? fire::spread_field_batch_field_wind(
                grid_, lay_, psi_.data(), fuel_.data(), wind_u, wind_v,
                tables_, dzdx_, dzdy_, opt_.min_fuel_frac, band, nband,
                speed_.data())
          : fire::spread_field_batch(grid_, lay_, psi_.data(), fuel_.data(),
                                     wind_u, wind_v, tables_, dzdx_, dzdy_,
                                     opt_.min_fuel_frac, band, nband,
                                     speed_.data());

  // Pre-step psi on the band (the ignition-time crossing reference).
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int b = 0; b < nband; ++b)
    std::memcpy(&before_[static_cast<std::size_t>(b) * stride],
                &psi_[static_cast<std::size_t>(band[b]) * stride],
                sizeof(double) * static_cast<std::size_t>(stride));

  if (opt_.use_heun) {
    levelset::step_heun_batch(grid_, lay_, speed_.data(), dt, opt_.scheme,
                              band, nband, band_pos_.data(), psi_.data(),
                              pred_.data(), k1_.data(), k2_.data());
  } else {
    levelset::step_euler_batch(grid_, lay_, speed_.data(), dt, opt_.scheme,
                               band, nband, psi_.data(), k1_.data());
  }

  const double t_before = time_;
  time_ += dt;

  // Ignition-time crossing + post-frontal fuel decay, fused over the band
  // (update_ignition_times / the flux loop in fire/model.cpp, per node). The
  // same pass measures the largest psi decrease of the step: band membership
  // is in psi units, and without redistancing |grad psi| can exceed 1, so
  // psi near the front drops faster than smax*dt meters — the travel
  // accounting must follow the actual drop or the front eats through the
  // band before the rebuild triggers.
  const double time_now = time_;
  double max_drop = 0.0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(max : max_drop))
  for (int b = 0; b < nband; ++b) {
    const std::size_t cell = static_cast<std::size_t>(band[b]);
    double* tg = &tig_[cell * stride];
    double* ff = &fuel_[cell * stride];
    const double* after = &psi_[cell * stride];
    const double* bef = &before_[static_cast<std::size_t>(b) * stride];
    const bool burnable = tables_.burnable[cell] != 0;
    const double tau = tables_.tau[cell];
    for (int k = 0; k < stride; ++k) {
      const double drop = bef[k] - after[k];
      if (drop > max_drop) max_drop = drop;
      if (tg[k] == fire::kNotIgnited && after[k] < 0) {
        const double frac =
            drop > 1e-300 ? std::clamp(bef[k] / drop, 0.0, 1.0) : 1.0;
        tg[k] = t_before + frac * dt;
      }
      if (burnable && tg[k] != fire::kNotIgnited && tg[k] <= time_now)
        ff[k] = std::exp(-(time_now - tg[k]) / tau);
    }
  }

  step_travel_ = std::max(smax * dt, max_drop);
  travel_ += step_travel_;
}

// The fluxes of FireModel::step_into's post-frontal heat-release loop as a
// full-grid cells x members sweep: identical per-lane arithmetic, reading
// only tig and the step times, and refreshing the fuel fraction everywhere a
// lane burns (the reference does this every step too).
void EnsembleBatch::accumulate_fluxes(double t_before, double dt,
                                      double* sensible, double* latent) {
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
  const double time_now = time_;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(cells); ++c) {
    double* so = sensible + static_cast<std::size_t>(c) * stride;
    double* lo = latent + static_cast<std::size_t>(c) * stride;
    if (!tables_.burnable[c]) {
      for (int k = 0; k < stride; ++k) {
        so[k] = 0.0;
        lo[k] = 0.0;
      }
      continue;
    }
    const double tau = tables_.tau[c], w0 = tables_.w0[c],
                 heat_c = tables_.h[c], lf = tables_.latent_fraction[c];
    const double* tg = &tig_[static_cast<std::size_t>(c) * stride];
    double* ff = &fuel_[static_cast<std::size_t>(c) * stride];
    for (int k = 0; k < stride; ++k) {
      const double ti = tg[k];
      if (ti == fire::kNotIgnited || ti > time_now) {
        so[k] = 0.0;
        lo[k] = 0.0;
        continue;
      }
      const double age_now = time_now - ti;
      const double age_before = std::max(t_before - ti, 0.0);
      const double f_before = std::exp(-age_before / tau);
      const double f_now = std::exp(-age_now / tau);
      ff[k] = f_now;
      const double burned_mass = w0 * (f_before - f_now);  // [kg/m^2]
      const double heat = burned_mass * heat_c / dt;       // [W/m^2]
      so[k] = heat * (1.0 - lf);
      lo[k] = heat * lf;
    }
  }
}

void EnsembleBatch::maybe_reinit() {
  if (opt_.reinit_interval <= 0) return;
  bool due = ++steps_since_reinit_ >= opt_.reinit_interval;
  if (band_width_m_ > 0 && bopt_.reinit_travel_frac > 0) {
    // Band cadence: also redistance once the front has eaten a set fraction
    // of the band width, so a front outrunning the step cadence cannot
    // stale the frozen far field no matter how reinit_interval was picked.
    travel_since_reinit_ += step_travel_;
    due = due ||
          travel_since_reinit_ >= bopt_.reinit_travel_frac * band_width_m_;
  }
  if (due) {
    reinitialize_members();
    steps_since_reinit_ = 0;
    travel_since_reinit_ = 0;
    if (band_width_m_ > 0) rebuild_band();
  }
}

void EnsembleBatch::reinitialize_members() {
  if (member_scratch_.size() != static_cast<std::size_t>(members_))
    member_scratch_.assign(static_cast<std::size_t>(members_),
                           util::Array2D<double>(grid_.nx, grid_.ny));
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < members_; ++k) {
    util::Array2D<double>& scratch = member_scratch_[k];
    double* s = scratch.data();
    for (std::size_t c = 0; c < cells; ++c) s[c] = psi_[c * stride + k];
    levelset::reinitialize(grid_, scratch);
    for (std::size_t c = 0; c < cells; ++c) psi_[c * stride + k] = s[c];
  }
}

void EnsembleBatch::store(
    std::vector<std::unique_ptr<fire::FireModel>>& models) const {
  std::vector<fire::FireModel*> raw(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) raw[k] = models[k].get();
  store(raw);
}

void EnsembleBatch::store(const std::vector<fire::FireModel*>& models) const {
  if (static_cast<int>(models.size()) != members_)
    throw std::invalid_argument("EnsembleBatch: store with wrong member count");
  const std::size_t cells = lay_.cells();
  const int stride = lay_.stride;
  for (int k = 0; k < members_; ++k) {
    fire::FireState s;
    s.psi = util::Array2D<double>(grid_.nx, grid_.ny);
    s.tig = util::Array2D<double>(grid_.nx, grid_.ny);
    s.time = time_;
    double* ps = s.psi.data();
    double* tg = s.tig.data();
    for (std::size_t c = 0; c < cells; ++c) {
      ps[c] = psi_[c * stride + k];
      tg[c] = tig_[c * stride + k];
    }
    models[k]->set_state(std::move(s));
    models[k]->set_steps_since_reinit(steps_since_reinit_);
    models[k]->set_pending_ignitions(pending_[k]);
  }
}

util::Array2D<double> EnsembleBatch::psi_of(int k) const {
  util::Array2D<double> out(grid_.nx, grid_.ny);
  const std::size_t cells = lay_.cells();
  for (std::size_t c = 0; c < cells; ++c) out.data()[c] = psi_[c * lay_.stride + k];
  return out;
}

util::Array2D<double> EnsembleBatch::tig_of(int k) const {
  util::Array2D<double> out(grid_.nx, grid_.ny);
  const std::size_t cells = lay_.cells();
  for (std::size_t c = 0; c < cells; ++c) out.data()[c] = tig_[c * lay_.stride + k];
  return out;
}

}  // namespace wfire::core
