#include "atmos/dynamics.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

namespace wfire::atmos {

namespace {

inline int wrap(int i, int n) { return (i + n) % n; }

// Upwind one-sided derivative picked by the sign of the advecting velocity.
inline double upwind(double vel, double backward, double forward) {
  return vel > 0 ? vel * backward : vel * forward;
}

}  // namespace

void compute_tendencies(const grid::Grid3D& g, const AmbientProfile& amb,
                        const DynamicsParams& p, const AtmosState& s,
                        const util::Array3D<double>* theta_src,
                        const util::Array3D<double>* qv_src, Tendencies& t) {
  compute_tendencies(
      g, amb, p, s, ForcingView{theta_src ? theta_src->data() : nullptr, 1},
      ForcingView{qv_src ? qv_src->data() : nullptr, 1}, t);
}

void compute_tendencies(const grid::Grid3D& g, const AmbientProfile& amb,
                        const DynamicsParams& p, const AtmosState& s,
                        ForcingView theta_src, ForcingView qv_src,
                        Tendencies& t) {
  const int nx = g.nx, ny = g.ny, nz = g.nz;
  if (t.du.empty() || t.du.nx() != nx) t = Tendencies(g);
  const double ihx = 1.0 / g.dx, ihy = 1.0 / g.dy, ihz = 1.0 / g.dz;
  const double nu = p.eddy_viscosity, kappa = p.eddy_diffusivity;
  const double sponge_z0 = p.sponge_start_frac * g.height();

  // ---- scalar advection in flux form + diffusion + sources ----
  auto scalar_tendency = [&](const util::Array3D<double>& f,
                             const ForcingView src,
                             util::Array3D<double>& out) {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          // Upwinded face fluxes; the x-face i carries u(i,j,k).
          auto fx = [&](int ii) {
            const double vel = s.u(ii, j, k);
            return vel * (vel > 0 ? f(wrap(ii - 1, nx), j, k) : f(ii, j, k));
          };
          auto fy = [&](int jj) {
            const double vel = s.v(i, jj, k);
            return vel * (vel > 0 ? f(i, wrap(jj - 1, ny), k) : f(i, jj, k));
          };
          auto fz = [&](int kk) {  // kk in [0, nz]; boundary faces carry 0
            if (kk == 0 || kk == nz) return 0.0;
            const double vel = s.w(i, j, kk);
            return vel * (vel > 0 ? f(i, j, kk - 1) : f(i, j, kk));
          };
          double adv = -(fx(wrap(i + 1, nx)) - fx(i)) * ihx -
                       (fy(wrap(j + 1, ny)) - fy(j)) * ihy -
                       (fz(k + 1) - fz(k)) * ihz;
          // Diffusion (clamped vertically: no-flux through bottom/top).
          const double c = f(i, j, k);
          const double lap =
              (f(wrap(i - 1, nx), j, k) - 2 * c + f(wrap(i + 1, nx), j, k)) *
                  ihx * ihx +
              (f(i, wrap(j - 1, ny), k) - 2 * c + f(i, wrap(j + 1, ny), k)) *
                  ihy * ihy +
              ((k > 0 ? f(i, j, k - 1) : c) - 2 * c +
               (k < nz - 1 ? f(i, j, k + 1) : c)) *
                  ihz * ihz;
          double val = adv + kappa * lap;
          if (src.base)
            val += src.base[((static_cast<std::size_t>(k) * ny + j) * nx + i) *
                            src.stride];
          // Sponge relaxes perturbations to zero aloft.
          const double z = g.zc(k);
          if (z > sponge_z0) {
            const double r = (z - sponge_z0) / (g.height() - sponge_z0);
            val -= p.sponge_coeff * r * r * c;
          }
          out(i, j, k) = val;
        }
      }
    }
  };
  scalar_tendency(s.theta, theta_src, t.dtheta);
  scalar_tendency(s.qv, qv_src, t.dqv);

  // ---- u momentum (x-faces) ----
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k) {
    const double z = g.zc(k);
    const double uamb = amb.wind_u * amb.wind_profile(z);
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double uu = s.u(i, j, k);
        // v and w averaged to the u-point (face between cells i-1 and i).
        const int im = wrap(i - 1, nx);
        const double vv = 0.25 * (s.v(i, j, k) + s.v(i, wrap(j + 1, ny), k) +
                                  s.v(im, j, k) + s.v(im, wrap(j + 1, ny), k));
        const double ww = 0.25 * (s.w(i, j, k) + s.w(i, j, k + 1) +
                                  s.w(im, j, k) + s.w(im, j, k + 1));
        const double dudx_b = (uu - s.u(im, j, k)) * ihx;
        const double dudx_f = (s.u(wrap(i + 1, nx), j, k) - uu) * ihx;
        const double dudy_b = (uu - s.u(i, wrap(j - 1, ny), k)) * ihy;
        const double dudy_f = (s.u(i, wrap(j + 1, ny), k) - uu) * ihy;
        const double dudz_b = k > 0 ? (uu - s.u(i, j, k - 1)) * ihz : 0.0;
        const double dudz_f = k < nz - 1 ? (s.u(i, j, k + 1) - uu) * ihz : 0.0;
        double adv = -(upwind(uu, dudx_b, dudx_f) + upwind(vv, dudy_b, dudy_f) +
                       upwind(ww, dudz_b, dudz_f));
        const double lap =
            (s.u(im, j, k) - 2 * uu + s.u(wrap(i + 1, nx), j, k)) * ihx * ihx +
            (s.u(i, wrap(j - 1, ny), k) - 2 * uu + s.u(i, wrap(j + 1, ny), k)) *
                ihy * ihy +
            ((k > 0 ? s.u(i, j, k - 1) : uu) - 2 * uu +
             (k < nz - 1 ? s.u(i, j, k + 1) : uu)) *
                ihz * ihz;
        double val = adv + nu * lap;
        // Bulk surface drag on the lowest level.
        if (k == 0) {
          const double speed = std::hypot(uu, vv);
          val -= p.drag_coeff * speed * uu * ihz;
        }
        // Sponge + weak nudge toward the ambient profile.
        double relax = p.nudge_coeff;
        if (z > sponge_z0) {
          const double r = (z - sponge_z0) / (g.height() - sponge_z0);
          relax += p.sponge_coeff * r * r;
        }
        val -= relax * (uu - uamb);
        t.du(i, j, k) = val;
      }
    }
  }

  // ---- v momentum (y-faces) ----
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k) {
    const double z = g.zc(k);
    const double vamb = amb.wind_v * amb.wind_profile(z);
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double vv = s.v(i, j, k);
        const int jm = wrap(j - 1, ny);
        const double uu = 0.25 * (s.u(i, j, k) + s.u(wrap(i + 1, nx), j, k) +
                                  s.u(i, jm, k) + s.u(wrap(i + 1, nx), jm, k));
        const double ww = 0.25 * (s.w(i, j, k) + s.w(i, j, k + 1) +
                                  s.w(i, jm, k) + s.w(i, jm, k + 1));
        const double dvdx_b = (vv - s.v(wrap(i - 1, nx), j, k)) * ihx;
        const double dvdx_f = (s.v(wrap(i + 1, nx), j, k) - vv) * ihx;
        const double dvdy_b = (vv - s.v(i, jm, k)) * ihy;
        const double dvdy_f = (s.v(i, wrap(j + 1, ny), k) - vv) * ihy;
        const double dvdz_b = k > 0 ? (vv - s.v(i, j, k - 1)) * ihz : 0.0;
        const double dvdz_f = k < nz - 1 ? (s.v(i, j, k + 1) - vv) * ihz : 0.0;
        double adv = -(upwind(uu, dvdx_b, dvdx_f) + upwind(vv, dvdy_b, dvdy_f) +
                       upwind(ww, dvdz_b, dvdz_f));
        const double lap =
            (s.v(wrap(i - 1, nx), j, k) - 2 * vv + s.v(wrap(i + 1, nx), j, k)) *
                ihx * ihx +
            (s.v(i, jm, k) - 2 * vv + s.v(i, wrap(j + 1, ny), k)) * ihy * ihy +
            ((k > 0 ? s.v(i, j, k - 1) : vv) - 2 * vv +
             (k < nz - 1 ? s.v(i, j, k + 1) : vv)) *
                ihz * ihz;
        double val = adv + nu * lap;
        if (k == 0) {
          const double speed = std::hypot(uu, vv);
          val -= p.drag_coeff * speed * vv * ihz;
        }
        double relax = p.nudge_coeff;
        if (z > sponge_z0) {
          const double r = (z - sponge_z0) / (g.height() - sponge_z0);
          relax += p.sponge_coeff * r * r;
        }
        val -= relax * (vv - vamb);
        t.dv(i, j, k) = val;
      }
    }
  }

  // ---- w momentum (z-faces, interior only) ----
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 1; k < nz; ++k) {
    const double zf = k * g.dz;  // face height
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double ww = s.w(i, j, k);
        const double uu =
            0.25 * (s.u(i, j, k - 1) + s.u(wrap(i + 1, nx), j, k - 1) +
                    s.u(i, j, k) + s.u(wrap(i + 1, nx), j, k));
        const double vv =
            0.25 * (s.v(i, j, k - 1) + s.v(i, wrap(j + 1, ny), k - 1) +
                    s.v(i, j, k) + s.v(i, wrap(j + 1, ny), k));
        const double dwdx_b = (ww - s.w(wrap(i - 1, nx), j, k)) * ihx;
        const double dwdx_f = (s.w(wrap(i + 1, nx), j, k) - ww) * ihx;
        const double dwdy_b = (ww - s.w(i, wrap(j - 1, ny), k)) * ihy;
        const double dwdy_f = (s.w(i, wrap(j + 1, ny), k) - ww) * ihy;
        const double dwdz_b = (ww - s.w(i, j, k - 1)) * ihz;
        const double dwdz_f = (s.w(i, j, k + 1) - ww) * ihz;
        double adv = -(upwind(uu, dwdx_b, dwdx_f) + upwind(vv, dwdy_b, dwdy_f) +
                       upwind(ww, dwdz_b, dwdz_f));
        const double lap =
            (s.w(wrap(i - 1, nx), j, k) - 2 * ww + s.w(wrap(i + 1, nx), j, k)) *
                ihx * ihx +
            (s.w(i, wrap(j - 1, ny), k) - 2 * ww + s.w(i, wrap(j + 1, ny), k)) *
                ihy * ihy +
            (s.w(i, j, k - 1) - 2 * ww + s.w(i, j, k + 1)) * ihz * ihz;
        // Buoyancy from theta' (and optionally qv') averaged to the face.
        double thp = 0.5 * (s.theta(i, j, k - 1) + s.theta(i, j, k));
        if (p.moisture_buoyancy)
          thp += 0.61 * amb.theta0 * 0.5 * (s.qv(i, j, k - 1) + s.qv(i, j, k));
        double val = adv + nu * lap + p.gravity * thp / amb.theta0;
        if (zf > sponge_z0) {
          const double r = (zf - sponge_z0) / (g.height() - sponge_z0);
          val -= p.sponge_coeff * r * r * ww;
        }
        t.dw(i, j, k) = val;
      }
    }
  }
  // Boundary w faces have zero tendency.
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      t.dw(i, j, 0) = 0.0;
      t.dw(i, j, nz) = 0.0;
    }
}

void apply_tendencies(const grid::Grid3D& g, const Tendencies& t, double dt,
                      AtmosState& s) {
  const auto add = [dt](const util::Array3D<double>& src,
                        util::Array3D<double>& dst) {
    const double* a = src.data();
    double* b = dst.data();
    const std::size_t n = dst.size();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i)
      b[i] += dt * a[i];
  };
  add(t.du, s.u);
  add(t.dv, s.v);
  add(t.dw, s.w);
  add(t.dtheta, s.theta);
  add(t.dqv, s.qv);
  // Pin the rigid-lid/bottom w faces.
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      s.w(i, j, 0) = 0.0;
      s.w(i, j, g.nz) = 0.0;
    }
}

}  // namespace wfire::atmos
