// Binary state files: the paper's ensemble "is maintained in disk files"
// and "the state is transferred using disk files. Individual subvectors
// corresponding to the most common variables are extracted or replaced in
// the files" (Sec. 3.1, Fig. 2). The format is a sequence of named
// double-precision sections:
//
//   magic "WFST" | u32 version | u32 nsections |
//   per section: u32 name_len | name bytes | u64 count | count f64 values
//
// `extract`/`replace` operate on one section without rewriting the file,
// which is what lets the model, the observation function and the EnKF run
// as separate executables against the same files.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

namespace wfire::obs {

using Sections = std::map<std::string, std::vector<double>>;

class StateFile {
 public:
  // Writes the whole file, crash-safely: the bytes go to a temp file in the
  // target directory (path + ".tmp"), are fsync'ed, and the temp is renamed
  // over `path` — a process killed mid-checkpoint can leave a stale temp but
  // never a truncated statefile. The previous file (if any) stays intact
  // until the rename commits.
  static void write(const std::string& path, const Sections& sections);

  // Whether `path` is an in-flight temp from write(); checkpoint discovery
  // must skip (and may reap) such leftovers.
  [[nodiscard]] static bool is_temp_path(const std::string& path);

  // Reads the whole file.
  [[nodiscard]] static Sections read(const std::string& path);

  // Lists section names and sizes without reading the payloads.
  [[nodiscard]] static std::vector<std::pair<std::string, std::size_t>>
  list_sections(const std::string& path);

  // Extracts one subvector; throws std::runtime_error if absent.
  [[nodiscard]] static std::vector<double> extract(const std::string& path,
                                                   const std::string& name);

  // Replaces one subvector in place; the size must match the stored section.
  static void replace(const std::string& path, const std::string& name,
                      std::span<const double> values);
};

}  // namespace wfire::obs
