#include "la/blas.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace wfire::la {

void axpy(double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

void scal(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y) {
  if (static_cast<int>(x.size()) != A.cols() ||
      static_cast<int>(y.size()) != A.rows())
    throw std::invalid_argument("gemv: size mismatch");
  for (double& v : y) v *= beta;
  // Column-major: accumulate column contributions for unit-stride access.
  for (int j = 0; j < A.cols(); ++j) {
    const double xj = alpha * x[j];
    const auto col = A.col(j);
    for (int i = 0; i < A.rows(); ++i) y[i] += col[i] * xj;
  }
}

void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y) {
  if (static_cast<int>(x.size()) != A.rows() ||
      static_cast<int>(y.size()) != A.cols())
    throw std::invalid_argument("gemv_t: size mismatch");
  for (int j = 0; j < A.cols(); ++j) {
    const auto col = A.col(j);
    double s = 0;
    for (int i = 0; i < A.rows(); ++i) s += col[i] * x[i];
    y[j] = beta * y[j] + alpha * s;
  }
}

namespace {

// Element accessor honoring the transpose flag (reference path only; the
// blocked path reads packed buffers instead).
inline double at(const Matrix& M, bool trans, int i, int j) {
  return trans ? M(j, i) : M(i, j);
}

// --- reference kernels (the original naive loops) ---

// `scale`, when non-null, weights the contraction dimension: the kernel
// computes op(A) diag(scale) op(B) (the fused-scaling variants; null means
// plain gemm/syrk).
void gemm_reference(bool transA, bool transB, double alpha, const Matrix& A,
                    const Matrix& B, double beta, Matrix& C, int m, int n,
                    int k, const double* scale) {
  constexpr int kBlock = 64;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j0 = 0; j0 < n; j0 += kBlock) {
    const int j1 = std::min(j0 + kBlock, n);
    for (int i0 = 0; i0 < m; i0 += kBlock) {
      const int i1 = std::min(i0 + kBlock, m);
      for (int j = j0; j < j1; ++j)
        for (int i = i0; i < i1; ++i) C(i, j) *= beta;
      for (int p0 = 0; p0 < k; p0 += kBlock) {
        const int p1 = std::min(p0 + kBlock, k);
        for (int j = j0; j < j1; ++j) {
          for (int p = p0; p < p1; ++p) {
            double bpj = alpha * at(B, transB, p, j);
            if (scale) bpj *= scale[p];
            if (bpj == 0.0) continue;
            for (int i = i0; i < i1; ++i) C(i, j) += at(A, transA, i, p) * bpj;
          }
        }
      }
    }
  }
}

void syrk_reference(bool transA, double alpha, const Matrix& A, double beta,
                    Matrix& C, int m, int k, const double* scale) {
  for (int j = 0; j < m; ++j) {
    for (int i = j; i < m; ++i) {
      double s = 0;
      for (int p = 0; p < k; ++p) {
        const double w = scale ? scale[p] : 1.0;
        s += at(A, transA, i, p) * at(A, transA, j, p) * w;
      }
      C(i, j) = beta * C(i, j) + alpha * s;
    }
  }
  for (int j = 1; j < m; ++j)
    for (int i = 0; i < j; ++i) C(i, j) = C(j, i);
}

void ger_reference(double alpha, const Vector& x, const Vector& y, Matrix& A) {
  for (int j = 0; j < A.cols(); ++j) {
    const double yj = alpha * y[j];
    for (int i = 0; i < A.rows(); ++i) A(i, j) += x[i] * yj;
  }
}

// --- blocked kernels ---
//
// Classic three-level panel scheme (after GotoBLAS): B panels of KC x NC and
// A panels of MC x KC are packed into contiguous scratch so the micro-kernel
// streams unit-stride regardless of the transpose flags, four C columns are
// kept live per pass for register reuse, and the MC tile-row loop is the
// OpenMP dimension. Scratch buffers are thread_local so repeated calls are
// allocation-free in steady state.

// Packs op(A)(i0:i0+mb, p0:p0+kb) column-major into dst (mb x kb). When
// `scale` is non-null, packed column p is multiplied by scale[p0 + p] — the
// pack-time per-column scale hook: a diagonal weighting of the contraction
// dimension rides along with the copy the pack already makes.
void pack_a(const Matrix& A, bool trans, int i0, int p0, int mb, int kb,
            const double* scale, double* dst) {
  const double* src = A.data();
  const std::size_t lda = static_cast<std::size_t>(A.rows());
  if (!trans) {
    for (int p = 0; p < kb; ++p) {
      const double* col = src + (p0 + p) * lda + i0;
      double* d = dst + static_cast<std::size_t>(p) * mb;
      if (scale) {
        const double w = scale[p0 + p];
        for (int i = 0; i < mb; ++i) d[i] = col[i] * w;
      } else {
        std::memcpy(d, col, sizeof(double) * mb);
      }
    }
  } else {
    // op(A)(i, p) = A(p, i): walk source columns (i) with unit stride in p.
    for (int i = 0; i < mb; ++i) {
      const double* col = src + (static_cast<std::size_t>(i0) + i) * lda + p0;
      if (scale) {
        for (int p = 0; p < kb; ++p)
          dst[static_cast<std::size_t>(p) * mb + i] = col[p] * scale[p0 + p];
      } else {
        for (int p = 0; p < kb; ++p)
          dst[static_cast<std::size_t>(p) * mb + i] = col[p];
      }
    }
  }
}

// Packs op(B)(p0:p0+kb, j0:j0+nb) column-major into dst (kb x nb).
void pack_b(const Matrix& B, bool trans, int p0, int j0, int kb, int nb,
            double* dst) {
  const double* src = B.data();
  const std::size_t ldb = static_cast<std::size_t>(B.rows());
  if (!trans) {
    for (int j = 0; j < nb; ++j)
      std::memcpy(dst + static_cast<std::size_t>(j) * kb,
                  src + (static_cast<std::size_t>(j0) + j) * ldb + p0,
                  sizeof(double) * kb);
  } else {
    // op(B)(p, j) = B(j, p): walk source columns (p) with unit stride in j.
    for (int p = 0; p < kb; ++p) {
      const double* col = src + (static_cast<std::size_t>(p0) + p) * ldb + j0;
      for (int j = 0; j < nb; ++j) dst[static_cast<std::size_t>(j) * kb + p] = col[j];
    }
  }
}

// C(0:mb, 0:nb) += alpha * Ap * Bp with Ap (mb x kb) and Bp (kb x nb) packed
// column-major; C points at the tile origin with leading dimension ldc.
void micro_kernel(int mb, int nb, int kb, double alpha, const double* Ap,
                  const double* Bp, double* C, std::size_t ldc) {
  int j = 0;
  for (; j + 4 <= nb; j += 4) {
    double* c0 = C + static_cast<std::size_t>(j + 0) * ldc;
    double* c1 = C + static_cast<std::size_t>(j + 1) * ldc;
    double* c2 = C + static_cast<std::size_t>(j + 2) * ldc;
    double* c3 = C + static_cast<std::size_t>(j + 3) * ldc;
    const double* b0 = Bp + static_cast<std::size_t>(j + 0) * kb;
    const double* b1 = Bp + static_cast<std::size_t>(j + 1) * kb;
    const double* b2 = Bp + static_cast<std::size_t>(j + 2) * kb;
    const double* b3 = Bp + static_cast<std::size_t>(j + 3) * kb;
    for (int p = 0; p < kb; ++p) {
      const double* ap = Ap + static_cast<std::size_t>(p) * mb;
      const double v0 = alpha * b0[p];
      const double v1 = alpha * b1[p];
      const double v2 = alpha * b2[p];
      const double v3 = alpha * b3[p];
      for (int i = 0; i < mb; ++i) {
        const double a = ap[i];
        c0[i] += a * v0;
        c1[i] += a * v1;
        c2[i] += a * v2;
        c3[i] += a * v3;
      }
    }
  }
  for (; j < nb; ++j) {
    double* cj = C + static_cast<std::size_t>(j) * ldc;
    const double* bj = Bp + static_cast<std::size_t>(j) * kb;
    for (int p = 0; p < kb; ++p) {
      const double v = alpha * bj[p];
      if (v == 0.0) continue;
      const double* ap = Ap + static_cast<std::size_t>(p) * mb;
      for (int i = 0; i < mb; ++i) cj[i] += ap[i] * v;
    }
  }
}

void scale_tile(double beta, double* C, std::size_t ldc, int mb, int nb) {
  if (beta == 1.0) return;
  for (int j = 0; j < nb; ++j) {
    double* cj = C + static_cast<std::size_t>(j) * ldc;
    if (beta == 0.0)
      std::memset(cj, 0, sizeof(double) * mb);
    else
      for (int i = 0; i < mb; ++i) cj[i] *= beta;
  }
}

void gemm_blocked(bool transA, bool transB, double alpha, const Matrix& A,
                  const Matrix& B, double beta, Matrix& C, int m, int n,
                  int k, const double* scale) {
  const int nb = block_size();
  const int MC = 2 * nb;
  const int KC = std::min(4 * nb, 512);
  const int NC = std::max(4 * nb, 256);
  double* Cd = C.data();
  const std::size_t ldc = static_cast<std::size_t>(m);

  if (k == 0 || alpha == 0.0) {
    scale_tile(beta, Cd, ldc, m, n);
    return;
  }

  // The packed-B panel is written by the calling thread and read by every
  // worker, so it must be shared across the parallel region — capture the
  // raw pointer, NOT the thread_local vector (each worker would otherwise
  // dereference its own, empty instance). The A panels are per-worker.
  static thread_local std::vector<double> bp_buf;
  bp_buf.resize(static_cast<std::size_t>(KC) * NC);
  double* const Bp = bp_buf.data();

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      pack_b(B, transB, pc, jc, kc, nc, Bp);
      const double tile_beta = pc == 0 ? beta : 1.0;
      const int n_ic = (m + MC - 1) / MC;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (n_ic > 1))
      for (int ib = 0; ib < n_ic; ++ib) {
        const int ic = ib * MC;
        const int mc = std::min(MC, m - ic);
        static thread_local std::vector<double> ap_buf;
        ap_buf.resize(static_cast<std::size_t>(MC) * KC);
        pack_a(A, transA, ic, pc, mc, kc, scale, ap_buf.data());
        double* Ct = Cd + static_cast<std::size_t>(jc) * ldc + ic;
        scale_tile(tile_beta, Ct, ldc, mc, nc);
        micro_kernel(mc, nc, kc, alpha, ap_buf.data(), Bp, Ct, ldc);
      }
    }
  }
}

void syrk_blocked(bool transA, double alpha, const Matrix& A, double beta,
                  Matrix& C, int m, int k, const double* scale) {
  const int nb = block_size();
  const int KC = std::min(4 * nb, 512);
  double* Cd = C.data();
  const std::size_t ldc = static_cast<std::size_t>(m);

  if (k == 0 || alpha == 0.0) {
    scale_tile(beta, Cd, ldc, m, m);
    return;
  }

  // Panel of op(A) columns: P(i, p) = op(A)(i, pc + p), m x kc column-major.
  // As in gemm_blocked: packed by the calling thread, read by all workers,
  // so the parallel region must use the shared raw pointer, not the
  // thread_local vector itself.
  static thread_local std::vector<double> panel;
  panel.resize(static_cast<std::size_t>(m) * KC);
  double* const P = panel.data();

  // Lower-triangle tile list, reused across the pc loop.
  std::vector<std::pair<int, int>> tiles;
  for (int j0 = 0; j0 < m; j0 += nb)
    for (int i0 = j0; i0 < m; i0 += nb) tiles.emplace_back(i0, j0);
  const int ntiles = static_cast<int>(tiles.size());

  for (int pc = 0; pc < k; pc += KC) {
    const int kc = std::min(KC, k - pc);
    // The panel stays unscaled; the weight enters once per contraction
    // column through `v` below (scaling the pack would apply it twice).
    pack_a(A, transA, 0, pc, m, kc, nullptr, P);
    const double tile_beta = pc == 0 ? beta : 1.0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(dynamic) if (ntiles > 1))
    for (int t = 0; t < ntiles; ++t) {
      const auto [i0, j0] = tiles[t];
      const int mb = std::min(nb, m - i0);
      const int nbj = std::min(nb, m - j0);
      const bool diag = i0 == j0;
      for (int j = 0; j < nbj; ++j) {
        double* cj = Cd + (static_cast<std::size_t>(j0) + j) * ldc + i0;
        const int istart = diag ? j : 0;  // lower triangle only
        if (tile_beta != 1.0)
          for (int i = istart; i < mb; ++i)
            cj[i] = tile_beta == 0.0 ? 0.0 : cj[i] * tile_beta;
        for (int p = 0; p < kc; ++p) {
          const double* col = P + static_cast<std::size_t>(p) * m;
          double v = alpha * col[j0 + j];
          if (scale) v *= scale[pc + p];
          if (v == 0.0) continue;
          const double* a = col + i0;
          for (int i = istart; i < mb; ++i) cj[i] += a[i] * v;
        }
      }
    }
  }
  // Mirror the strictly-upper triangle from the lower one.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (m > 256))
  for (int j = 1; j < m; ++j)
    for (int i = 0; i < j; ++i)
      Cd[static_cast<std::size_t>(j) * ldc + i] =
          Cd[static_cast<std::size_t>(i) * ldc + j];
}

void ger_blocked(double alpha, const Vector& x, const Vector& y, Matrix& A) {
  const int m = A.rows(), n = A.cols();
  double* Ad = A.data();
  const double* xd = x.data();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) \
                 if (static_cast<long>(m) * n > 65536))
  for (int j = 0; j < n; ++j) {
    const double yj = alpha * y[j];
    if (yj == 0.0) continue;
    double* cj = Ad + static_cast<std::size_t>(j) * m;
    for (int i = 0; i < m; ++i) cj[i] += xd[i] * yj;
  }
}

}  // namespace

namespace {

void gemm_dispatch(bool transA, bool transB, double alpha, const Matrix& A,
                   const Matrix& B, double beta, Matrix& C,
                   const double* scale) {
  const int m = transA ? A.cols() : A.rows();
  const int k = transA ? A.rows() : A.cols();
  const int kb = transB ? B.cols() : B.rows();
  const int n = transB ? B.rows() : B.cols();
  if (k != kb || C.rows() != m || C.cols() != n)
    throw std::invalid_argument("gemm: size mismatch");
  if (m == 0 || n == 0) return;
  if (backend() == Backend::kReference)
    gemm_reference(transA, transB, alpha, A, B, beta, C, m, n, k, scale);
  else
    gemm_blocked(transA, transB, alpha, A, B, beta, C, m, n, k, scale);
}

void syrk_dispatch(bool transA, double alpha, const Matrix& A, double beta,
                   Matrix& C, const double* scale) {
  const int m = transA ? A.cols() : A.rows();
  const int k = transA ? A.rows() : A.cols();
  if (C.rows() != m || C.cols() != m)
    throw std::invalid_argument("syrk: size mismatch");
  if (m == 0) return;
  if (backend() == Backend::kReference)
    syrk_reference(transA, alpha, A, beta, C, m, k, scale);
  else
    syrk_blocked(transA, alpha, A, beta, C, m, k, scale);
}

}  // namespace

void gemm(bool transA, bool transB, double alpha, const Matrix& A,
          const Matrix& B, double beta, Matrix& C) {
  gemm_dispatch(transA, transB, alpha, A, B, beta, C, nullptr);
}

void gemm_scaled(bool transA, bool transB, double alpha, const Matrix& A,
                 const Vector& w, const Matrix& B, double beta, Matrix& C) {
  const int k = transA ? A.rows() : A.cols();
  if (static_cast<int>(w.size()) != k)
    throw std::invalid_argument("gemm_scaled: weight size mismatch");
  gemm_dispatch(transA, transB, alpha, A, B, beta, C, w.data());
}

void syrk(bool transA, double alpha, const Matrix& A, double beta, Matrix& C) {
  syrk_dispatch(transA, alpha, A, beta, C, nullptr);
}

void syrk_scaled(bool transA, double alpha, const Matrix& A, const Vector& w,
                 double beta, Matrix& C) {
  const int k = transA ? A.rows() : A.cols();
  if (static_cast<int>(w.size()) != k)
    throw std::invalid_argument("syrk_scaled: weight size mismatch");
  syrk_dispatch(transA, alpha, A, beta, C, w.data());
}

void ger(double alpha, const Vector& x, const Vector& y, Matrix& A) {
  if (static_cast<int>(x.size()) != A.rows() ||
      static_cast<int>(y.size()) != A.cols())
    throw std::invalid_argument("ger: size mismatch");
  if (backend() == Backend::kReference)
    ger_reference(alpha, x, y, A);
  else
    ger_blocked(alpha, x, y, A);
}

Matrix matmul(const Matrix& A, const Matrix& B, bool transA, bool transB) {
  const int m = transA ? A.cols() : A.rows();
  const int n = transB ? B.rows() : B.cols();
  Matrix C(m, n, 0.0);
  gemm(transA, transB, 1.0, A, B, 0.0, C);
  return C;
}

double frobenius_norm(const Matrix& A) {
  double s = 0;
  for (int j = 0; j < A.cols(); ++j)
    for (int i = 0; i < A.rows(); ++i) s += A(i, j) * A(i, j);
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& A, const Matrix& B) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    throw std::invalid_argument("max_abs_diff: size mismatch");
  double m = 0;
  for (int j = 0; j < A.cols(); ++j)
    for (int i = 0; i < A.rows(); ++i)
      m = std::max(m, std::abs(A(i, j) - B(i, j)));
  return m;
}

}  // namespace wfire::la
