// 3-D flame structure (paper Sec. 3.2): "the 3D flame structure is estimated
// by using the heat release rate and experimental estimates of flame width
// and length and the flame is tilted based on wind speed. This 3D structure
// is represented by a 3D grid of voxels."
//
// Flame length comes from Byram's (1959) empirical relation
//   L = 0.0775 * I^0.46   [m],  I = fireline intensity [kW/m],
// with I estimated per cell from the sensible heat flux and the flaming
// depth (spread rate x mass-loss time scale). The flame column over each
// actively flaming cell is tilted downwind by the ratio of the wind speed to
// the buoyancy velocity sqrt(g L).
#pragma once

#include "fire/model.h"
#include "util/array3d.h"

namespace wfire::scene {

struct FlameParams {
  double T_flame = 1100.0;        // flame gas temperature [K]
  double absorption = 0.6;        // flame absorption coefficient kappa [1/m]
  double byram_a = 0.0775;        // L = a * I^b, I in kW/m
  double byram_b = 0.46;
  double voxel_dz = 1.0;          // vertical voxel size [m]
  double active_age = 60.0;       // cells flame while t - tig < active_age [s]
  double min_intensity = 5.0;     // ignore cells below this I [kW/m]
};

// Voxelized flame: temperature field over the fire-mesh footprint; 0 marks
// empty voxels. Horizontal voxel size equals the fire mesh spacing.
struct FlameVoxels {
  util::Array3D<double> temperature;  // [K], 0 = no flame
  double dx = 0, dy = 0, dz = 0;      // voxel size [m]
  double x0 = 0, y0 = 0;              // world position of voxel (0,0) center
  double absorption = 0.6;
  double max_flame_length = 0;        // diagnostic [m]
};

// Builds the voxel flame from the fire state. `wind_u/v` give the tilt;
// `spread` is the local spread rate field used in the fireline-intensity
// estimate (pass the model's last speed field or a recomputed one).
[[nodiscard]] FlameVoxels build_flame_voxels(
    const fire::FireModel& model, const util::Array2D<double>& wind_u,
    const util::Array2D<double>& wind_v, const FlameParams& p = {});

// Byram flame length for a fireline intensity I [kW/m].
[[nodiscard]] double byram_flame_length(double I_kw_per_m,
                                        const FlameParams& p = {});

}  // namespace wfire::scene
