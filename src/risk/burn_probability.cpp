#include "risk/burn_probability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wfire::risk {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

util::Array2D<double> BurnProbabilityGrid::arrival_quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0))
    throw std::invalid_argument("arrival_quantile: q outside [0, 1]");
  util::Array2D<double> out(nx, ny, kInf);
  std::vector<double> cell;  // finite arrivals of one cell, reused
  cell.reserve(static_cast<std::size_t>(members));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      cell.clear();
      const std::size_t base =
          (static_cast<std::size_t>(j) * nx + i) *
          static_cast<std::size_t>(members);
      for (int k = 0; k < members; ++k)
        if (std::isfinite(arrivals[base + static_cast<std::size_t>(k)]))
          cell.push_back(arrivals[base + static_cast<std::size_t>(k)]);
      if (cell.empty()) continue;
      std::sort(cell.begin(), cell.end());
      const auto idx = static_cast<std::size_t>(std::floor(
          q * static_cast<double>(cell.size() - 1) + 0.5));
      out(i, j) = cell[idx];
    }
  }
  return out;
}

double BurnProbabilityGrid::expected_burned_area() const {
  double p = 0;
  for (const double v : probability) p += v;
  return p * dx * dy;
}

BurnProbabilityAccumulator::BurnProbabilityAccumulator(int nx, int ny,
                                                       double dx, double dy,
                                                       int members,
                                                       double horizon) {
  if (nx < 1 || ny < 1)
    throw std::invalid_argument("BurnProbabilityAccumulator: empty grid");
  if (members < 1)
    throw std::invalid_argument("BurnProbabilityAccumulator: members < 1");
  grid_.nx = nx;
  grid_.ny = ny;
  grid_.dx = dx;
  grid_.dy = dy;
  grid_.horizon = horizon;
  grid_.members = members;
  grid_.burned_count = util::Array2D<int>(nx, ny, 0);
  grid_.probability = util::Array2D<double>(nx, ny, 0.0);
  grid_.arrivals.assign(static_cast<std::size_t>(nx) * ny *
                            static_cast<std::size_t>(members),
                        kInf);
  added_.assign(static_cast<std::size_t>(members), 0);
}

void BurnProbabilityAccumulator::add_member(int k,
                                            const util::Array2D<double>& tig) {
  std::lock_guard<std::mutex> lock(mu_);
  if (k < 0 || k >= grid_.members)
    throw std::out_of_range("add_member: member index out of range");
  if (added_[static_cast<std::size_t>(k)])
    throw std::logic_error("add_member: member already added");
  if (tig.nx() != grid_.nx || tig.ny() != grid_.ny)
    throw std::invalid_argument("add_member: tig shape mismatch");
  const std::size_t n = tig.size();
  const double* t = tig.data();
  int* count = grid_.burned_count.data();
  const auto members = static_cast<std::size_t>(grid_.members);
  for (std::size_t c = 0; c < n; ++c) {
    if (t[c] <= grid_.horizon) {
      ++count[c];
      grid_.arrivals[c * members + static_cast<std::size_t>(k)] = t[c];
    }
  }
  added_[static_cast<std::size_t>(k)] = 1;
  ++added_count_;
}

int BurnProbabilityAccumulator::members_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return added_count_;
}

BurnProbabilityGrid BurnProbabilityAccumulator::finalize() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (added_count_ != grid_.members)
    throw std::logic_error("finalize: " +
                           std::to_string(grid_.members - added_count_) +
                           " members missing");
  BurnProbabilityGrid out = grid_;
  const double inv = 1.0 / grid_.members;
  const int* count = out.burned_count.data();
  double* prob = out.probability.data();
  for (std::size_t c = 0; c < out.probability.size(); ++c)
    prob[c] = count[c] * inv;
  return out;
}

Scores score(const BurnProbabilityGrid& grid, double threshold,
             const util::Array2D<double>& ref_tig, double ref_horizon) {
  if (ref_tig.nx() != grid.nx || ref_tig.ny() != grid.ny)
    throw std::invalid_argument("score: reference shape mismatch");
  Scores s;
  const double* p = grid.probability.data();
  const double* t = ref_tig.data();
  for (std::size_t c = 0; c < ref_tig.size(); ++c) {
    const bool predicted = p[c] >= threshold;
    const bool burned = t[c] <= ref_horizon;
    if (predicted && burned)
      ++s.tp;
    else if (predicted)
      ++s.fp;
    else if (burned)
      ++s.fn;
    else
      ++s.tn;
  }
  if (s.tp + s.fp > 0) s.precision = static_cast<double>(s.tp) / (s.tp + s.fp);
  if (s.tp + s.fn > 0) s.recall = static_cast<double>(s.tp) / (s.tp + s.fn);
  if (s.precision + s.recall > 0)
    s.f1 = 2.0 * s.precision * s.recall / (s.precision + s.recall);
  return s;
}

}  // namespace wfire::risk
