// Batched (structure-of-arrays) geometric multigrid for ensembles of
// pressure Poisson problems: one V-cycle serves all M members per level,
// with the batched red-black smoother from poisson_batch plus batched
// 8-cell restriction and piecewise-constant prolongation. Layout matches
// poisson_batch: value(i, j, k, m) = data[cell * stride + m] with
// cell = (k * ny + j) * nx + i and stride >= members; padding lanes must
// hold zero rhs/phi (the all-zero problem is a fixed point of every
// component).
//
// Per member the arithmetic and operation order are exactly multigrid.cpp's,
// so solve() is bitwise-equal to running Multigrid::solve per member. The
// scalar solver stops cycling per problem as soon as its residual meets tol;
// members converging at different cycle counts are reproduced with a
// freeze mask: once a member measures converged, its finest-level updates
// (smoother and prolongation) are multiplied by 0.0 while the others keep
// cycling. Coarse-level buffers are per-cycle scratch (zeroed each descent)
// and every operation is lane-diagonal, so frozen lanes need no masking
// below the finest level — their coarse corrections are computed and then
// discarded by the masked prolongation.
#pragma once

#include <vector>

#include "atmos/multigrid.h"

namespace wfire::atmos {

class MultigridBatch {
 public:
  // stride >= members; normally members rounded up to the SIMD pad used by
  // the rest of the batched ensemble.
  MultigridBatch(const grid::Grid3D& fine, int members, int stride,
                 MultigridOptions opt = {});

  // Solves Laplacian(phi_m) = rhs_m for every member; phi holds the initial
  // guesses (warm starts) and the solutions. stats must have room for
  // `members` entries; each records that member's cycle count and final
  // residual exactly as the scalar solver would.
  void solve(const double* rhs, double* phi, SolveStats* stats);

  [[nodiscard]] int levels() const { return static_cast<int>(grids_.size()); }
  [[nodiscard]] int members() const { return members_; }
  [[nodiscard]] int stride() const { return stride_; }

 private:
  void vcycle(std::size_t level, const double* rhs, double* phi,
              const double* freeze_mask);

  MultigridOptions opt_;
  int members_ = 0;
  int stride_ = 0;
  std::vector<grid::Grid3D> grids_;  // [0] = finest
  // Per-level SoA scratch, each sized cells(level) * stride.
  std::vector<std::vector<double>> rhs_buf_, phi_buf_, res_buf_;
  std::vector<double> mask_;   // finest-level freeze mask, length stride
  std::vector<double> max_r_;  // per-lane residual max-norms, length stride
};

// Batched restriction / prolongation for cell-centered factor-2 coarsening
// (exposed for unit tests). Summation order per lane matches mg_restrict /
// mg_prolong_add. mg_prolong_add_batch skips lanes whose freeze_mask entry
// is 0.0 via the same multiply-by-mask trick as the batched smoother;
// freeze_mask may be nullptr.
void mg_restrict_batch(const grid::Grid3D& coarse_g, int stride,
                       const double* fine, double* coarse);
void mg_prolong_add_batch(const grid::Grid3D& fine_g, int stride,
                          const double* coarse, double* fine,
                          const double* freeze_mask);

}  // namespace wfire::atmos
