#include "la/qr.h"

#include "la/blas.h"
#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::la {

namespace {

// Panel width of the compact-WY blocked path. Wider panels amortize the
// trailing gemm better but grow the O(rows * pb^2) T-factor build; 48 keeps
// that under a few percent of the update flops at EnKF shapes.
int panel_width(int n) { return std::min({block_size(), 48, n}); }

// --- reference path: the original serial column-by-column factorization ---

void qr_factor_reference(Matrix& R, Vector& beta) {
  const int m = R.rows();
  const int n = R.cols();
  for (int j = 0; j < n; ++j) {
    // Build the Householder reflector for column j.
    double norm = 0;
    for (int i = j; i < m; ++i) norm += R(i, j) * R(i, j);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[j] = 0.0;
      continue;
    }
    const double alpha = R(j, j) >= 0 ? -norm : norm;
    const double v0 = R(j, j) - alpha;
    beta[j] = -v0 / alpha;  // 2 / (v^T v) with v scaled so v[j] = 1
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < m; ++i) R(i, j) *= inv_v0;
    R(j, j) = alpha;
    // Apply the reflector to the trailing columns.
    for (int k = j + 1; k < n; ++k) {
      double s = R(j, k);
      for (int i = j + 1; i < m; ++i) s += R(i, j) * R(i, k);
      s *= beta[j];
      R(j, k) -= s;
      for (int i = j + 1; i < m; ++i) R(i, k) -= s * R(i, j);
    }
  }
}

// --- blocked path: compact-WY panels, trailing update through gemm ---

// Factors panel columns [j0, j0 + jb) in place, applying each reflector to
// the remaining *panel* columns only (the trailing matrix is updated once
// per panel via the WY form). The per-reflector application is threaded
// across panel columns when the panel is tall enough to pay for it.
void panel_factor(Matrix& A, Vector& beta, int j0, int jb) {
  const int m = A.rows();
  const int last = j0 + jb;
  for (int j = j0; j < last; ++j) {
    double norm = 0;
    for (int i = j; i < m; ++i) norm += A(i, j) * A(i, j);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[j] = 0.0;
      continue;
    }
    const double alpha = A(j, j) >= 0 ? -norm : norm;
    const double v0 = A(j, j) - alpha;
    beta[j] = -v0 / alpha;
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < m; ++i) A(i, j) *= inv_v0;
    A(j, j) = alpha;
    const double bj = beta[j];
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) \
                 if (static_cast<long>(m - j) * (last - j - 1) > 16384))
    for (int k = j + 1; k < last; ++k) {
      double s = A(j, k);
      for (int i = j + 1; i < m; ++i) s += A(i, j) * A(i, k);
      s *= bj;
      A(j, k) -= s;
      for (int i = j + 1; i < m; ++i) A(i, k) -= s * A(i, j);
    }
  }
}

// Unpacks the reflectors of panel [j0, j0 + jb) into explicit V
// ((m - j0) x jb, unit diagonal, zeros above) and builds the upper-
// triangular T of the compact-WY form H_{j0} ... H_{j0+jb-1} = I - V T V^T.
void build_wy(const Matrix& A, const Vector& beta, int j0, int jb, Matrix& V,
              Matrix& T) {
  const int m = A.rows();
  const int rows = m - j0;
  V.resize(rows, jb);
  T.resize(jb, jb);
  for (int jj = 0; jj < jb; ++jj) {
    const int j = j0 + jj;
    auto v = V.col(jj);
    for (int i = 0; i < jj; ++i) v[i] = 0.0;
    v[jj] = 1.0;
    for (int i = jj + 1; i < rows; ++i) v[i] = A(j0 + i, j);
  }
  // T(0:jj, jj) = -beta_jj * T(0:jj, 0:jj) * (V(:, 0:jj)^T v_jj). The whole
  // column is zeroed first: T may live in a reused arena buffer whose
  // previous shape leaves garbage below the diagonal, and the WY gemms read
  // the full matrix.
  for (int jj = 0; jj < jb; ++jj) {
    const double b = beta[j0 + jj];
    for (int i = 0; i < jb; ++i) T(i, jj) = 0.0;
    T(jj, jj) = b;
    if (b == 0.0) continue;
    const auto vj = V.col(jj);
    for (int p = 0; p < jj; ++p) {
      const auto vp = V.col(p);
      double s = 0;
      // v_p has zeros above its own diagonal; v_jj above jj — the product
      // only needs rows >= jj.
      for (int i = jj; i < rows; ++i) s += vp[i] * vj[i];
      T(p, jj) = s;
    }
    // In-place triangular multiply T(0:jj, jj) <- -b * T_prev * t: ascending
    // rows, since row i only reads the still-raw dots at positions >= i.
    for (int i = 0; i < jj; ++i) {
      double s = 0;
      for (int p = i; p < jj; ++p) s += T(i, p) * T(p, jj);
      T(i, jj) = -b * s;
    }
  }
}

// C(j0:m, cols) <- (I - V op(T) V^T) C(j0:m, cols), with C staged through
// workspace buffers so the three products run through the dispatched gemm.
// trans_t selects between Q (T) and Q^T (T^T) of the panel.
void apply_wy_panel(const Matrix& V, const Matrix& T, bool trans_t, Matrix& C,
                    int j0, Workspace& ws) {
  const int m = C.rows();
  const int nc = C.cols();
  const int rows = m - j0;
  const int jb = V.cols();
  Matrix& Csub = ws.mat("qr.Csub", rows, nc);
  for (int k = 0; k < nc; ++k) {
    const auto src = C.col(k);
    auto dst = Csub.col(k);
    for (int i = 0; i < rows; ++i) dst[i] = src[j0 + i];
  }
  Matrix& W = ws.mat("qr.W", jb, nc);
  gemm(true, false, 1.0, V, Csub, 0.0, W);       // W  = V^T C
  Matrix& W2 = ws.mat("qr.W2", jb, nc);
  gemm(trans_t, false, 1.0, T, W, 0.0, W2);      // W2 = op(T) W
  gemm(false, false, -1.0, V, W2, 1.0, Csub);    // C -= V W2
  for (int k = 0; k < nc; ++k) {
    const auto src = Csub.col(k);
    auto dst = C.col(k);
    for (int i = 0; i < rows; ++i) dst[j0 + i] = src[i];
  }
}

void qr_factor_blocked(Matrix& A, Vector& beta, Workspace& ws) {
  const int m = A.rows();
  const int n = A.cols();
  const int pb = panel_width(n);
  for (int j0 = 0; j0 < n; j0 += pb) {
    const int jb = std::min(pb, n - j0);
    panel_factor(A, beta, j0, jb);
    if (j0 + jb >= n) break;
    Matrix& V = ws.mat("qr.V", m - j0, jb);
    Matrix& T = ws.mat("qr.T", jb, jb);
    build_wy(A, beta, j0, jb, V, T);
    // Trailing columns as a contiguous block for the WY gemms.
    const int nc = n - j0 - jb;
    Matrix& Ct = ws.mat("qr.Ct", m, nc);
    for (int k = 0; k < nc; ++k) {
      const auto src = A.col(j0 + jb + k);
      auto dst = Ct.col(k);
      for (int i = 0; i < m; ++i) dst[i] = src[i];
    }
    apply_wy_panel(V, T, /*trans_t=*/true, Ct, j0, ws);
    for (int k = 0; k < nc; ++k) {
      const auto src = Ct.col(k);
      auto dst = A.col(j0 + jb + k);
      for (int i = j0; i < m; ++i) dst[i] = src[i];
    }
  }
}

// --- TSQR scheme: row-block leaves + binary R-reduction tree ---

// Row-block height of the TSQR split. Shape-only (no thread count, no env)
// so the factorization is bitwise identical for every OMP_NUM_THREADS: the
// tree structure is part of the result, not a scheduling detail. 2n keeps a
// block's reflector chain within the panel's own cache footprint; the 128
// floor keeps blocks from degenerating into tree overhead for tiny n.
int tsqr_block_rows(int n) { return std::max(2 * n, 128); }

// Number of row blocks for an m x n panel (1 = no split, serial leaf).
int tsqr_nblocks(int m, int n) {
  const int br = tsqr_block_rows(n);
  return m >= 2 * br ? m / br : 1;
}

// Evenly distributed block row offsets (every block >= tsqr_block_rows >= n
// rows by construction of tsqr_nblocks).
void tsqr_offsets(int m, int nb, std::vector<int>& row0) {
  row0.resize(static_cast<std::size_t>(nb) + 1);
  const int base = m / nb;
  const int rem = m % nb;
  int r = 0;
  for (int b = 0; b < nb; ++b) {
    row0[static_cast<std::size_t>(b)] = r;
    r += base + (b < rem ? 1 : 0);
  }
  row0[static_cast<std::size_t>(nb)] = m;
}

// Serial Householder factorization of the rows x n block at `a` (column
// stride ld), reflectors scaled to unit diagonal, scalars into beta[0..n).
void factor_block(double* a, int ld, int rows, int n, double* beta) {
  for (int j = 0; j < n; ++j) {
    double* cj = a + static_cast<std::size_t>(j) * ld;
    double norm = 0;
    for (int i = j; i < rows; ++i) norm += cj[i] * cj[i];
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta[j] = 0.0;
      continue;
    }
    const double alpha = cj[j] >= 0 ? -norm : norm;
    const double v0 = cj[j] - alpha;
    beta[j] = -v0 / alpha;
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < rows; ++i) cj[i] *= inv_v0;
    cj[j] = alpha;
    for (int k = j + 1; k < n; ++k) {
      double* ck = a + static_cast<std::size_t>(k) * ld;
      double s = ck[j];
      for (int i = j + 1; i < rows; ++i) s += cj[i] * ck[i];
      s *= beta[j];
      ck[j] -= s;
      for (int i = j + 1; i < rows; ++i) ck[i] -= s * cj[i];
    }
  }
}

// Applies the reflectors of a factored block (a: rows x n, stride ld, unit
// diagonals implicit) to c (rows x k, stride ldc): Q^T when `transpose`
// (forward reflector order), Q otherwise (reverse order).
void apply_block(const double* a, int ld, const double* beta, int rows, int n,
                 double* c, int ldc, int k, bool transpose) {
  for (int jj = 0; jj < n; ++jj) {
    const int j = transpose ? jj : n - 1 - jj;
    const double bj = beta[j];
    if (bj == 0.0) continue;
    const double* vj = a + static_cast<std::size_t>(j) * ld;
    for (int col = 0; col < k; ++col) {
      double* cc = c + static_cast<std::size_t>(col) * ldc;
      double s = cc[j];
      for (int i = j + 1; i < rows; ++i) s += vj[i] * cc[i];
      s *= bj;
      cc[j] -= s;
      for (int i = j + 1; i < rows; ++i) cc[i] -= s * vj[i];
    }
  }
}

// Copies the upper triangle of the n x n block at `src` (stride lds) into
// `dst` (stride ldd), zero-filling below the diagonal (tree nodes read the
// full 2n x n stack, so stale subdiagonals must not leak through).
void copy_r_block(const double* src, int lds, double* dst, int ldd, int n) {
  for (int j = 0; j < n; ++j) {
    const double* s = src + static_cast<std::size_t>(j) * lds;
    double* d = dst + static_cast<std::size_t>(j) * ldd;
    for (int i = 0; i <= j; ++i) d[i] = s[i];
    for (int i = j + 1; i < n; ++i) d[i] = 0.0;
  }
}

// Shared core of the full and R-only TSQR factorizations. With `f` null the
// node factors are reduced through preallocated scratch and discarded.
void tsqr_core(Matrix& A, Workspace& ws, TsqrFactor* f) {
  const int m = A.rows();
  const int n = A.cols();
  if (m < n) throw std::invalid_argument("tsqr_factor: requires m >= n");
  const int nb = tsqr_nblocks(std::max(m, 1), std::max(n, 1));
  std::vector<int> local_row0;
  std::vector<int>& row0 = f ? f->row0 : local_row0;
  tsqr_offsets(m, nb, row0);
  if (f) {
    f->m = m;
    f->n = n;
    f->leaf_beta.resize(static_cast<std::size_t>(nb) * n);
    f->tree.resize(2 * n, n * (nb - 1));
    f->tree_beta.resize(static_cast<std::size_t>(n) * (nb - 1));
    f->level_count.clear();
    f->level_off.clear();
  }
  if (n == 0) return;
  Vector& lbeta =
      f ? f->leaf_beta
        : ws.vec("qr.tsqr.lbeta", static_cast<std::size_t>(nb) * n);

  // Leaf stage: factor every row block independently; R_b lands in the top
  // n rows of its block, reflectors below the block-local diagonal.
  double* Ad = A.data();
  const int ld = m;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nb > 1))
  for (int b = 0; b < nb; ++b)
    factor_block(Ad + row0[static_cast<std::size_t>(b)], ld,
                 row0[static_cast<std::size_t>(b) + 1] -
                     row0[static_cast<std::size_t>(b)],
                 n, lbeta.data() + static_cast<std::size_t>(b) * n);

  // Stack the leaf Rs into ping-pong buffers and reduce pairs level by
  // level. Writes go to the other buffer: pair p writes slot p while pair
  // p' reads slots 2p', 2p'+1, which alias in place once p >= 1.
  Matrix& S0 = ws.mat("qr.tsqr.S0", nb * n, n);
  Matrix& S1 = ws.mat("qr.tsqr.S1", ((nb + 1) / 2) * n, n);
  for (int b = 0; b < nb; ++b)
    copy_r_block(Ad + row0[static_cast<std::size_t>(b)], ld,
                 S0.data() + static_cast<std::size_t>(b) * n, S0.rows(), n);
  Matrix* nodebuf = nullptr;
  Vector* nbeta = nullptr;
  if (!f && nb > 1) {
    nodebuf = &ws.mat("qr.tsqr.node", 2 * n, n * (nb / 2));
    nbeta = &ws.vec("qr.tsqr.nbeta", static_cast<std::size_t>(n) * (nb / 2));
  }

  int c = nb;
  int node = 0;
  Matrix* src = &S0;
  Matrix* dst = &S1;
  while (c > 1) {
    const int pairs = c / 2;
    if (f) {
      f->level_count.push_back(c);
      f->level_off.push_back(node);
    }
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (pairs > 1))
    for (int p = 0; p < pairs; ++p) {
      double* nd;
      double* nbp;
      if (f) {
        nd = f->tree.data() +
             static_cast<std::size_t>(node + p) * n * (2 * n);
        nbp = f->tree_beta.data() + static_cast<std::size_t>(node + p) * n;
      } else {
        nd = nodebuf->data() + static_cast<std::size_t>(p) * n * (2 * n);
        nbp = nbeta->data() + static_cast<std::size_t>(p) * n;
      }
      // Stack [R_2p; R_2p+1] (2n x n, contiguous), factor, write R to slot p.
      const int lds = src->rows();
      for (int j = 0; j < n; ++j) {
        const double* s = src->data() + static_cast<std::size_t>(j) * lds;
        double* d = nd + static_cast<std::size_t>(j) * (2 * n);
        for (int i = 0; i < n; ++i) d[i] = s[2 * p * n + i];
        for (int i = 0; i < n; ++i) d[n + i] = s[(2 * p + 1) * n + i];
      }
      factor_block(nd, 2 * n, 2 * n, n, nbp);
      copy_r_block(nd, 2 * n, dst->data() + static_cast<std::size_t>(p) * n,
                   dst->rows(), n);
    }
    if (c & 1) {  // odd leftover passes through to the next level
      copy_r_block(src->data() + static_cast<std::size_t>(c - 1) * n,
                   src->rows(),
                   dst->data() + static_cast<std::size_t>(pairs) * n,
                   dst->rows(), n);
    }
    node += pairs;
    c = pairs + (c & 1);
    std::swap(src, dst);
  }

  // Final R into the top of A — upper triangle only, so the leaf-0
  // reflectors below the diagonal stay intact for apply-Q.
  for (int j = 0; j < n; ++j) {
    const double* s = src->data() + static_cast<std::size_t>(j) * src->rows();
    double* d = Ad + static_cast<std::size_t>(j) * ld;
    for (int i = 0; i <= j; ++i) d[i] = s[i];
  }
}

// Reference application of a single reflector j to every column of C.
void apply_reflector_reference(const Matrix& qr, const Vector& beta, int j,
                               Matrix& C) {
  const int m = qr.rows();
  if (beta[j] == 0.0) return;
  for (int k = 0; k < C.cols(); ++k) {
    auto c = C.col(k);
    double s = c[j];
    for (int i = j + 1; i < m; ++i) s += qr(i, j) * c[i];
    s *= beta[j];
    c[j] -= s;
    for (int i = j + 1; i < m; ++i) c[i] -= s * qr(i, j);
  }
}

void apply_q_or_qt(const Matrix& qr, const Vector& beta, Matrix& C,
                   bool transpose, Workspace* ws) {
  const int m = qr.rows();
  const int n = qr.cols();
  if (C.rows() != m)
    throw std::invalid_argument("apply_q: row mismatch");
  if (static_cast<int>(beta.size()) != n)
    throw std::invalid_argument("apply_q: beta size mismatch");
  if (C.cols() == 0 || n == 0) return;
  if (backend() == Backend::kReference) {
    // Q^T = H_{n-1} ... H_0 applied left to right; Q right to left.
    if (transpose)
      for (int j = 0; j < n; ++j) apply_reflector_reference(qr, beta, j, C);
    else
      for (int j = n - 1; j >= 0; --j)
        apply_reflector_reference(qr, beta, j, C);
    return;
  }
  Workspace local;
  Workspace& arena = ws ? *ws : local;
  const int pb = panel_width(n);
  const int npanels = (n + pb - 1) / pb;
  for (int p = 0; p < npanels; ++p) {
    // Q^T consumes panels left to right (with T^T), Q right to left (with T).
    const int j0 = (transpose ? p : npanels - 1 - p) * pb;
    const int jb = std::min(pb, n - j0);
    Matrix& V = arena.mat("qr.V", m - j0, jb);
    Matrix& T = arena.mat("qr.T", jb, jb);
    build_wy(qr, beta, j0, jb, V, T);
    apply_wy_panel(V, T, /*trans_t=*/transpose, C, j0, arena);
  }
}

}  // namespace

bool tsqr_selected(QrScheme s, int m, int n) {
  if (s == QrScheme::kAuto) s = default_qr_scheme();
  if (s == QrScheme::kBlocked) return false;
  if (n < 1 || m < n) return false;
  const bool splits = tsqr_nblocks(m, n) >= 2;
  if (s == QrScheme::kTsqr) return splits;
  return splits && m >= 8 * n;  // kAuto heuristic
}

void tsqr_factor_in_place(Matrix& A, TsqrFactor& f, Workspace* ws) {
  Workspace local;
  tsqr_core(A, ws ? *ws : local, &f);
}

void tsqr_factor_r_in_place(Matrix& A, Workspace* ws) {
  Workspace local;
  tsqr_core(A, ws ? *ws : local, nullptr);
}

void tsqr_apply_qt(const Matrix& A, const TsqrFactor& f, const Matrix& C,
                   Matrix& Y, Workspace* ws) {
  const int m = f.m;
  const int n = f.n;
  const int nb = f.nblocks();
  if (A.rows() != m || A.cols() != n)
    throw std::invalid_argument("tsqr_apply_qt: factor/matrix mismatch");
  if (C.rows() != m) throw std::invalid_argument("tsqr_apply_qt: C rows");
  const int k = C.cols();
  Y.resize(n, k);
  if (n == 0 || k == 0) return;
  Workspace local;
  Workspace& arena = ws ? *ws : local;

  // Leaf stage on a scratch copy of C (C stays const); the top n rows of
  // each block feed the tree.
  Matrix& W = arena.mat("qr.tsqr.aW", m, k);
  W = C;
  const double* Ad = A.data();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nb > 1))
  for (int b = 0; b < nb; ++b)
    apply_block(Ad + f.row0[static_cast<std::size_t>(b)], m,
                f.leaf_beta.data() + static_cast<std::size_t>(b) * n,
                f.row0[static_cast<std::size_t>(b) + 1] -
                    f.row0[static_cast<std::size_t>(b)],
                n, W.data() + f.row0[static_cast<std::size_t>(b)], m, k,
                /*transpose=*/true);

  Matrix& S0 = arena.mat("qr.tsqr.aS0", nb * n, k);
  Matrix& S1 = arena.mat("qr.tsqr.aS1", ((nb + 1) / 2) * n, k);
  for (int b = 0; b < nb; ++b)
    for (int j = 0; j < k; ++j) {
      const double* s = W.data() + static_cast<std::size_t>(j) * m +
                        f.row0[static_cast<std::size_t>(b)];
      double* d = S0.data() + static_cast<std::size_t>(j) * S0.rows() +
                  static_cast<std::size_t>(b) * n;
      for (int i = 0; i < n; ++i) d[i] = s[i];
    }

  Matrix* zbuf = nullptr;
  if (nb > 1) zbuf = &arena.mat("qr.tsqr.aZ", 2 * n, k * (nb / 2));
  Matrix* src = &S0;
  Matrix* dst = &S1;
  for (std::size_t l = 0; l < f.level_count.size(); ++l) {
    const int c = f.level_count[l];
    const int pairs = c / 2;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (pairs > 1))
    for (int p = 0; p < pairs; ++p) {
      const double* nd =
          f.tree.data() +
          static_cast<std::size_t>(f.level_off[l] + p) * n * (2 * n);
      const double* nbp =
          f.tree_beta.data() + static_cast<std::size_t>(f.level_off[l] + p) * n;
      double* z = zbuf->data() + static_cast<std::size_t>(p) * k * (2 * n);
      const int lds = src->rows();
      for (int j = 0; j < k; ++j) {
        const double* s = src->data() + static_cast<std::size_t>(j) * lds;
        double* zj = z + static_cast<std::size_t>(j) * (2 * n);
        for (int i = 0; i < n; ++i) zj[i] = s[2 * p * n + i];
        for (int i = 0; i < n; ++i) zj[n + i] = s[(2 * p + 1) * n + i];
      }
      apply_block(nd, 2 * n, nbp, 2 * n, n, z, 2 * n, k, /*transpose=*/true);
      const int ldd = dst->rows();
      for (int j = 0; j < k; ++j) {
        const double* zj = z + static_cast<std::size_t>(j) * (2 * n);
        double* d = dst->data() + static_cast<std::size_t>(j) * ldd +
                    static_cast<std::size_t>(p) * n;
        for (int i = 0; i < n; ++i) d[i] = zj[i];
      }
    }
    if (c & 1) {
      for (int j = 0; j < k; ++j) {
        const double* s = src->data() + static_cast<std::size_t>(j) * src->rows() +
                          static_cast<std::size_t>(c - 1) * n;
        double* d = dst->data() + static_cast<std::size_t>(j) * dst->rows() +
                    static_cast<std::size_t>(pairs) * n;
        for (int i = 0; i < n; ++i) d[i] = s[i];
      }
    }
    std::swap(src, dst);
  }
  for (int j = 0; j < k; ++j) {
    const double* s = src->data() + static_cast<std::size_t>(j) * src->rows();
    double* d = Y.data() + static_cast<std::size_t>(j) * n;
    for (int i = 0; i < n; ++i) d[i] = s[i];
  }
}

void tsqr_apply_q(const Matrix& A, const TsqrFactor& f, const Matrix& Yin,
                  Matrix& C, Workspace* ws) {
  const int m = f.m;
  const int n = f.n;
  const int nb = f.nblocks();
  if (A.rows() != m || A.cols() != n)
    throw std::invalid_argument("tsqr_apply_q: factor/matrix mismatch");
  if (Yin.rows() != n) throw std::invalid_argument("tsqr_apply_q: Y rows");
  const int k = Yin.cols();
  C.resize(m, k);
  if (k == 0) return;
  if (n == 0) {
    C.fill(0.0);
    return;
  }
  Workspace local;
  Workspace& arena = ws ? *ws : local;

  // Walk the tree top-down, expanding each node's coefficients into its two
  // children; the leaf stage then expands each block's n coefficients into
  // the block's rows of C.
  Matrix& S0 = arena.mat("qr.tsqr.aS0", nb * n, k);
  Matrix& S1 = arena.mat("qr.tsqr.aS1", ((nb + 1) / 2) * n, k);
  Matrix* src = (f.level_count.size() % 2 == 0) ? &S0 : &S1;
  Matrix* dst = nullptr;
  for (int j = 0; j < k; ++j) {
    const double* s = Yin.data() + static_cast<std::size_t>(j) * n;
    double* d = src->data() + static_cast<std::size_t>(j) * src->rows();
    for (int i = 0; i < n; ++i) d[i] = s[i];
  }
  Matrix* zbuf = nullptr;
  if (nb > 1) zbuf = &arena.mat("qr.tsqr.aZ", 2 * n, k * (nb / 2));
  for (std::size_t li = f.level_count.size(); li-- > 0;) {
    const int c = f.level_count[li];
    const int pairs = c / 2;
    dst = (src == &S0) ? &S1 : &S0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (pairs > 1))
    for (int p = 0; p < pairs; ++p) {
      const double* nd =
          f.tree.data() +
          static_cast<std::size_t>(f.level_off[li] + p) * n * (2 * n);
      const double* nbp =
          f.tree_beta.data() +
          static_cast<std::size_t>(f.level_off[li] + p) * n;
      double* z = zbuf->data() + static_cast<std::size_t>(p) * k * (2 * n);
      const int lds = src->rows();
      for (int j = 0; j < k; ++j) {
        const double* s = src->data() + static_cast<std::size_t>(j) * lds +
                          static_cast<std::size_t>(p) * n;
        double* zj = z + static_cast<std::size_t>(j) * (2 * n);
        for (int i = 0; i < n; ++i) zj[i] = s[i];
        for (int i = 0; i < n; ++i) zj[n + i] = 0.0;
      }
      apply_block(nd, 2 * n, nbp, 2 * n, n, z, 2 * n, k, /*transpose=*/false);
      const int ldd = dst->rows();
      for (int j = 0; j < k; ++j) {
        const double* zj = z + static_cast<std::size_t>(j) * (2 * n);
        double* d = dst->data() + static_cast<std::size_t>(j) * ldd;
        for (int i = 0; i < n; ++i) d[2 * p * n + i] = zj[i];
        for (int i = 0; i < n; ++i) d[(2 * p + 1) * n + i] = zj[n + i];
      }
    }
    if (c & 1) {
      for (int j = 0; j < k; ++j) {
        const double* s = src->data() + static_cast<std::size_t>(j) * src->rows() +
                          static_cast<std::size_t>(pairs) * n;
        double* d = dst->data() + static_cast<std::size_t>(j) * dst->rows() +
                    static_cast<std::size_t>(c - 1) * n;
        for (int i = 0; i < n; ++i) d[i] = s[i];
      }
    }
    src = dst;
  }

  const double* Ad = A.data();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nb > 1))
  for (int b = 0; b < nb; ++b) {
    const int r0 = f.row0[static_cast<std::size_t>(b)];
    const int rows = f.row0[static_cast<std::size_t>(b) + 1] - r0;
    for (int j = 0; j < k; ++j) {
      const double* s = src->data() + static_cast<std::size_t>(j) * src->rows() +
                        static_cast<std::size_t>(b) * n;
      double* d = C.data() + static_cast<std::size_t>(j) * m + r0;
      for (int i = 0; i < n; ++i) d[i] = s[i];
      for (int i = n; i < rows; ++i) d[i] = 0.0;
    }
    apply_block(Ad + r0, m,
                f.leaf_beta.data() + static_cast<std::size_t>(b) * n, rows, n,
                C.data() + r0, m, k, /*transpose=*/false);
  }
}

void qr_factor_in_place(Matrix& A, Vector& beta, Workspace* ws) {
  const int m = A.rows();
  const int n = A.cols();
  if (m < n) throw std::invalid_argument("qr_factor: requires m >= n");
  beta.resize(static_cast<std::size_t>(n));
  std::fill(beta.begin(), beta.end(), 0.0);
  if (n == 0) return;
  if (backend() == Backend::kReference) {
    qr_factor_reference(A, beta);
    return;
  }
  Workspace local;
  qr_factor_blocked(A, beta, ws ? *ws : local);
}

QrFactor qr_factor(const Matrix& A) {
  QrFactor f{A, Vector()};
  qr_factor_in_place(f.qr, f.beta);
  return f;
}

void apply_qt(const QrFactor& f, Vector& v) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  if (static_cast<int>(v.size()) != m)
    throw std::invalid_argument("apply_qt: size mismatch");
  for (int j = 0; j < n; ++j) {
    if (f.beta[j] == 0.0) continue;
    double s = v[j];
    for (int i = j + 1; i < m; ++i) s += f.qr(i, j) * v[i];
    s *= f.beta[j];
    v[j] -= s;
    for (int i = j + 1; i < m; ++i) v[i] -= s * f.qr(i, j);
  }
}

void apply_qt_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                       Workspace* ws) {
  apply_q_or_qt(qr, beta, C, /*transpose=*/true, ws);
}

void apply_q_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                      Workspace* ws) {
  apply_q_or_qt(qr, beta, C, /*transpose=*/false, ws);
}

void r_solve_in_place(const Matrix& qr, Matrix& B) {
  const int n = qr.cols();
  if (qr.rows() < n || B.rows() != n)
    throw std::invalid_argument("r_solve: size mismatch");
  for (int i = 0; i < n; ++i)
    if (qr(i, i) == 0.0)
      throw std::runtime_error("r_solve: rank-deficient system");
  const int nrhs = B.cols();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nrhs > 1))
  for (int c = 0; c < nrhs; ++c) {
    auto b = B.col(c);
    for (int i = n - 1; i >= 0; --i) {
      double s = b[i];
      for (int p = i + 1; p < n; ++p) s -= qr(i, p) * b[p];
      b[i] = s / qr(i, i);
    }
  }
}

void rt_solve_in_place(const Matrix& qr, Matrix& B) {
  const int n = qr.cols();
  if (qr.rows() < n || B.rows() != n)
    throw std::invalid_argument("rt_solve: size mismatch");
  for (int i = 0; i < n; ++i)
    if (qr(i, i) == 0.0)
      throw std::runtime_error("rt_solve: rank-deficient system");
  const int nrhs = B.cols();
  const double* Rd = qr.data();
  const std::size_t ld = static_cast<std::size_t>(qr.rows());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nrhs > 1))
  for (int c = 0; c < nrhs; ++c) {
    auto b = B.col(c);
    // Column i of R above the diagonal is row i of R^T: contiguous walks.
    for (int i = 0; i < n; ++i) {
      const double* ri = Rd + static_cast<std::size_t>(i) * ld;
      double s = b[i];
      for (int p = 0; p < i; ++p) s -= ri[p] * b[p];
      b[i] = s / ri[i];
    }
  }
}

Vector least_squares(const Matrix& A, const Vector& b) {
  if (static_cast<int>(b.size()) != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  const QrFactor f = qr_factor(A);
  Vector y = b;
  apply_qt(f, y);
  const int n = A.cols();
  Vector x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    if (f.qr(i, i) == 0.0)
      throw std::runtime_error("least_squares: rank-deficient system");
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= f.qr(i, k) * x[k];
    x[i] = s / f.qr(i, i);
  }
  return x;
}

Matrix least_squares(const Matrix& A, const Matrix& B) {
  if (B.rows() != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  Workspace ws;
  if (tsqr_selected(QrScheme::kAuto, A.rows(), A.cols())) {
    Matrix QR = A;
    TsqrFactor f;
    tsqr_factor_in_place(QR, f, &ws);
    Matrix X;
    tsqr_apply_qt(QR, f, B, X, &ws);
    r_solve_in_place(QR, X);
    return X;
  }
  Matrix QR = A;
  Vector beta;
  qr_factor_in_place(QR, beta, &ws);
  Matrix Y = B;
  apply_qt_in_place(QR, beta, Y, &ws);
  const int n = A.cols();
  Matrix X(n, B.cols());
  for (int j = 0; j < B.cols(); ++j) {
    const auto src = Y.col(j);
    auto dst = X.col(j);
    for (int i = 0; i < n; ++i) dst[i] = src[i];
  }
  r_solve_in_place(QR, X);
  return X;
}

Matrix economy_q(const QrFactor& f) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  Matrix Q(m, n, 0.0);
  Vector e(static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[j] = 1.0;
    // Q e_j = H_0 H_1 ... H_{n-1} e_j, apply reflectors in reverse.
    for (int p = n - 1; p >= 0; --p) {
      if (f.beta[p] == 0.0) continue;
      double s = e[p];
      for (int i = p + 1; i < m; ++i) s += f.qr(i, p) * e[i];
      s *= f.beta[p];
      e[p] -= s;
      for (int i = p + 1; i < m; ++i) e[i] -= s * f.qr(i, p);
    }
    for (int i = 0; i < m; ++i) Q(i, j) = e[i];
  }
  return Q;
}

Matrix economy_r(const QrFactor& f) {
  const int n = f.qr.cols();
  Matrix R(n, n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) R(i, j) = f.qr(i, j);
  return R;
}

}  // namespace wfire::la
