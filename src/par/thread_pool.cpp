#include "par/thread_pool.h"

namespace wfire::par {

ThreadPool::ThreadPool(int n) {
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 2;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  for (auto& f : futures) f.get();
}

}  // namespace wfire::par
