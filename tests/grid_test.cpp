// Grid geometry, interpolation exactness (bilinear on bilinear functions,
// biquadratic on quadratics — the paper's station sampling), and the
// fire<->atmos transfer operators (conservation).
#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid2d.h"
#include "grid/grid3d.h"
#include "grid/interp.h"
#include "grid/transfer.h"
#include "util/rng.h"

using namespace wfire::grid;
using wfire::util::Array2D;

namespace {

Array2D<double> sample(const Grid2D& g, double (*f)(double, double)) {
  Array2D<double> a(g.nx, g.ny);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) a(i, j) = f(g.x(i), g.y(j));
  return a;
}

}  // namespace

TEST(Grid2D, GeometryBasics) {
  const Grid2D g(11, 21, 2.0, 3.0, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(g.x(0), 10.0);
  EXPECT_DOUBLE_EQ(g.x(10), 30.0);
  EXPECT_DOUBLE_EQ(g.y(20), 80.0);
  EXPECT_DOUBLE_EQ(g.width(), 20.0);
  EXPECT_DOUBLE_EQ(g.height(), 60.0);
  EXPECT_TRUE(g.contains_point(15.0, 50.0));
  EXPECT_FALSE(g.contains_point(9.9, 50.0));
  EXPECT_FALSE(g.contains_point(15.0, 80.1));
}

TEST(Grid2D, RejectsBadConstruction) {
  EXPECT_THROW(Grid2D(1, 5, 1, 1), std::invalid_argument);
  EXPECT_THROW(Grid2D(5, 5, 0, 1), std::invalid_argument);
}

TEST(Grid3D, CellCenters) {
  const Grid3D g(4, 4, 2, 60.0, 60.0, 100.0);
  EXPECT_DOUBLE_EQ(g.xc(0), 30.0);
  EXPECT_DOUBLE_EQ(g.zc(1), 150.0);
  EXPECT_DOUBLE_EQ(g.height(), 200.0);
  EXPECT_EQ(g.cell_count(), 32u);
}

TEST(Locate, FindsCellAndFractions) {
  const Grid2D g(11, 11, 1.0, 1.0);
  const CellLocation c = locate(g, 3.25, 7.75);
  EXPECT_TRUE(c.inside);
  EXPECT_EQ(c.i, 3);
  EXPECT_EQ(c.j, 7);
  EXPECT_NEAR(c.tx, 0.25, 1e-12);
  EXPECT_NEAR(c.ty, 0.75, 1e-12);
}

TEST(Locate, ClampsOutsidePoints) {
  const Grid2D g(5, 5, 1.0, 1.0);
  const CellLocation c = locate(g, -3.0, 100.0);
  EXPECT_FALSE(c.inside);
  EXPECT_EQ(c.i, 0);
  EXPECT_EQ(c.j, 3);  // top cell
}

TEST(Bilinear, ExactOnBilinearFunctions) {
  const Grid2D g(9, 9, 0.5, 0.5);
  const auto f = [](double x, double y) { return 2.0 + 3.0 * x - y + 0.5 * x * y; };
  const Array2D<double> a = sample(g, +f);
  for (double x : {0.1, 1.23, 3.9})
    for (double y : {0.0, 2.17, 3.99})
      EXPECT_NEAR(bilinear(g, a, x, y), f(x, y), 1e-12);
}

TEST(Biquadratic, ExactOnQuadratics) {
  const Grid2D g(12, 12, 1.0, 1.0);
  const auto f = [](double x, double y) {
    return 1.0 + x + y + 0.5 * x * x - 0.25 * y * y + 0.1 * x * y;
  };
  const Array2D<double> a = sample(g, +f);
  for (double x : {1.3, 4.5, 9.7})
    for (double y : {2.2, 5.5, 8.8})
      EXPECT_NEAR(biquadratic(g, a, x, y), f(x, y), 1e-10);
}

TEST(Biquadratic, MoreAccurateThanBilinearOnSmoothField) {
  const Grid2D g(33, 33, 1.0 / 32, 1.0 / 32);
  const auto f = [](double x, double y) {
    return std::sin(3.0 * x) * std::cos(2.0 * y);
  };
  const Array2D<double> a = sample(g, +f);
  double err_bi = 0, err_q = 0;
  for (double x = 0.05; x < 0.95; x += 0.17)
    for (double y = 0.07; y < 0.95; y += 0.13) {
      err_bi = std::max(err_bi, std::abs(bilinear(g, a, x, y) - f(x, y)));
      err_q = std::max(err_q, std::abs(biquadratic(g, a, x, y) - f(x, y)));
    }
  EXPECT_LT(err_q, err_bi);
}

TEST(BilinearFrac, MatchesPhysicalSampling) {
  const Grid2D g(6, 6, 2.0, 2.0);
  const auto f = [](double x, double y) { return x + 10.0 * y; };
  const Array2D<double> a = sample(g, +f);
  EXPECT_NEAR(bilinear_frac(a, 1.5, 2.25), bilinear(g, a, 3.0, 4.5), 1e-12);
}

class TransferParam : public ::testing::TestWithParam<int> {};

TEST_P(TransferParam, RestrictionPreservesMeanFluxDensity) {
  const int ratio = GetParam();
  const int NX = 8, NY = 6;
  Array2D<double> fine(NX * ratio, NY * ratio);
  wfire::util::Rng rng(77);
  for (auto& v : fine) v = rng.uniform(0.0, 1000.0);
  Array2D<double> coarse(NX, NY);
  restrict_average(fine, ratio, coarse);
  // Mean preserved exactly.
  EXPECT_NEAR(wfire::util::sum(coarse) * ratio * ratio,
              wfire::util::sum(fine), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ratios, TransferParam, ::testing::Values(1, 2, 5, 10));

TEST(Transfer, ProlongReproducesLinearField) {
  const int ratio = 4;
  Array2D<double> coarse(6, 6);
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 6; ++i) coarse(i, j) = 2.0 * i - 3.0 * j;
  Array2D<double> fine(24, 24);
  prolong_bilinear(coarse, ratio, fine);
  for (int j = 0; j < 20; ++j)
    for (int i = 0; i < 20; ++i)
      EXPECT_NEAR(fine(i, j), 2.0 * i / ratio - 3.0 * j / ratio, 1e-12);
}

TEST(Transfer, RestrictThenProlongIsIdentityOnConstants) {
  Array2D<double> fine(40, 40, 3.14);
  Array2D<double> coarse(10, 10);
  restrict_average(fine, 4, coarse);
  Array2D<double> back(40, 40);
  prolong_bilinear(coarse, 4, back);
  for (const double v : back) EXPECT_NEAR(v, 3.14, 1e-12);
}

TEST(Transfer, RejectsMismatchedDims) {
  Array2D<double> fine(10, 10);
  Array2D<double> coarse(3, 3);
  EXPECT_THROW(restrict_average(fine, 4, coarse), std::invalid_argument);
}

TEST(Integrate, TrapezoidExactForLinear) {
  const Grid2D g(5, 5, 1.0, 1.0);
  Array2D<double> f(5, 5, 2.0);
  // Integral of constant 2 over a 4x4 m domain.
  EXPECT_NEAR(integrate(g, f), 2.0 * 16.0, 1e-12);
}
