#include "levelset/front.h"

#include "util/omp_compat.h"

#include <cmath>
#include <limits>

namespace wfire::levelset {

namespace {
// Zero crossing parameter on an edge from value a to value b (a*b < 0).
inline double crossing(double a, double b) { return a / (a - b); }
}  // namespace

std::vector<FrontSegment> extract_front(const grid::Grid2D& g,
                                        const util::Array2D<double>& psi) {
  std::vector<FrontSegment> segs;
  for (int j = 0; j < g.ny - 1; ++j) {
    for (int i = 0; i < g.nx - 1; ++i) {
      const double v00 = psi(i, j);
      const double v10 = psi(i + 1, j);
      const double v01 = psi(i, j + 1);
      const double v11 = psi(i + 1, j + 1);
      int caseid = 0;
      if (v00 < 0) caseid |= 1;
      if (v10 < 0) caseid |= 2;
      if (v11 < 0) caseid |= 4;
      if (v01 < 0) caseid |= 8;
      if (caseid == 0 || caseid == 15) continue;

      const double x = g.x(i), y = g.y(j);
      // Edge crossing points (valid only when the edge has a sign change).
      const double bx = x + crossing(v00, v10) * g.dx, by = y;           // bottom
      const double rx = x + g.dx, ry = y + crossing(v10, v11) * g.dy;    // right
      const double tx = x + crossing(v01, v11) * g.dx, ty = y + g.dy;    // top
      const double lx = x, ly = y + crossing(v00, v01) * g.dy;           // left

      auto add = [&](double ax, double ay, double cx, double cy) {
        segs.push_back({ax, ay, cx, cy});
      };
      switch (caseid) {
        case 1: case 14: add(lx, ly, bx, by); break;
        case 2: case 13: add(bx, by, rx, ry); break;
        case 3: case 12: add(lx, ly, rx, ry); break;
        case 4: case 11: add(rx, ry, tx, ty); break;
        case 6: case 9:  add(bx, by, tx, ty); break;
        case 7: case 8:  add(lx, ly, tx, ty); break;
        case 5: case 10: {
          // Saddle: disambiguate with the center average.
          const double center = 0.25 * (v00 + v10 + v01 + v11);
          const bool center_burning = center < 0;
          if ((caseid == 5) == center_burning) {
            add(lx, ly, ty == y + g.dy ? tx : tx, ty);  // left-top
            add(bx, by, rx, ry);                        // bottom-right
          } else {
            add(lx, ly, bx, by);
            add(rx, ry, tx, ty);
          }
          break;
        }
        default: break;
      }
    }
  }
  return segs;
}

double front_length(const std::vector<FrontSegment>& segs) {
  double len = 0;
  for (const auto& s : segs) len += std::hypot(s.x2 - s.x1, s.y2 - s.y1);
  return len;
}

double burned_area(const grid::Grid2D& g, const util::Array2D<double>& psi) {
  // Per cell: subdivide into a 2x2 sub-sample of the bilinear interpolant and
  // accumulate the negative fraction, which is second-order accurate and
  // smooth under front motion.
  double cells = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(+ : cells))
  for (int j = 0; j < g.ny - 1; ++j) {
    for (int i = 0; i < g.nx - 1; ++i) {
      const double v00 = psi(i, j), v10 = psi(i + 1, j);
      const double v01 = psi(i, j + 1), v11 = psi(i + 1, j + 1);
      if (v00 >= 0 && v10 >= 0 && v01 >= 0 && v11 >= 0) continue;
      if (v00 < 0 && v10 < 0 && v01 < 0 && v11 < 0) {
        cells += 1.0;
        continue;
      }
      // Mixed cell: 4x4 midpoint sampling of the bilinear interpolant.
      constexpr int kSub = 4;
      int below = 0;
      for (int b = 0; b < kSub; ++b) {
        const double ty = (b + 0.5) / kSub;
        for (int a = 0; a < kSub; ++a) {
          const double tx = (a + 0.5) / kSub;
          const double v = (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 +
                           (1 - tx) * ty * v01 + tx * ty * v11;
          if (v < 0) ++below;
        }
      }
      cells += static_cast<double>(below) / (kSub * kSub);
    }
  }
  return cells * g.dx * g.dy;
}

double rightmost_burning_x(const grid::Grid2D& g,
                           const util::Array2D<double>& psi) {
  double best = -std::numeric_limits<double>::infinity();
  for (int j = 0; j < g.ny; ++j) {
    for (int i = g.nx - 1; i >= 0; --i) {
      if (psi(i, j) <= 0) {
        double x = g.x(i);
        // Refine by the crossing on the edge to the right neighbor.
        if (i + 1 < g.nx && psi(i + 1, j) > 0)
          x += crossing(psi(i, j), psi(i + 1, j)) * g.dx;
        best = std::max(best, x);
        break;
      }
    }
  }
  return best;
}

}  // namespace wfire::levelset
