# Test driver for the example smoke runs: executes the example with its
# small-workload arguments, tees stdout to a log, and verifies the SMOKE
# summary lines against the committed golden values via smoke_check.
#
# cmake -DEXE=... -DARGS="a;b" -DCHECKER=... -DGOLDEN=... -DLOG=...
#       -DWORKDIR=... -P RunSmokeCheck.cmake
foreach(var EXE CHECKER GOLDEN LOG WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunSmokeCheck: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${EXE} ${ARGS}
  WORKING_DIRECTORY ${WORKDIR}
  OUTPUT_FILE ${LOG}
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  file(READ ${LOG} log_contents)
  message(FATAL_ERROR
    "smoke run failed (exit ${run_rc}): ${EXE}\n--- log ---\n${log_contents}")
endif()

execute_process(
  COMMAND ${CHECKER} ${GOLDEN} ${LOG}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "golden check failed:\n${check_err}")
endif()
