// Reaction-diffusion-convection fire model — the PDE substrate of the
// paper's own earlier assimilation work (Sec. 1: "a regularization approach
// to EnKF for wildfire [7] with a fire model by reaction-diffusion-
// convection partial differential equations [12]", Mandel et al. 2006).
//
//   dT/dt    = div(k grad T) - v . grad T + A beta r(T) - C (T - Ta)
//   dbeta/dt = -Cs beta r(T),     r(T) = exp(-B / (T - Ta))  for T > Ta,
//
// with T the fire-layer temperature [K] and beta the fuel supply fraction.
// The model admits traveling combustion waves whose speed grows with the
// reaction strength A and falls with the activation parameter B; wind
// advects the front. It complements the level set model (Sec. 2) as the
// second fire representation this project line assimilates into.
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::fire {

struct RdFireParams {
  double k = 2.0;        // thermal diffusivity [m^2/s]
  double A = 180.0;      // heating strength [K/s] at full fuel, full rate
  double B = 250.0;      // activation temperature scale [K]
  double C = 0.06;       // Newtonian cooling rate to ambient [1/s]
  double Cs = 0.12;      // fuel consumption rate [1/s] at full rate
  double Ta = 300.0;     // ambient temperature [K]
};

struct RdFireState {
  util::Array2D<double> T;     // temperature [K]
  util::Array2D<double> beta;  // fuel supply fraction in [0, 1]
  double time = 0;
};

class RdFireModel {
 public:
  RdFireModel(const grid::Grid2D& g, RdFireParams p = {});

  // Sets a hot spot: T = T_hot inside the circle, ambient elsewhere;
  // beta = 1 everywhere (fresh fuel).
  void ignite(double cx, double cy, double radius, double T_hot = 800.0);

  // One explicit step with uniform wind (vx, vy) [m/s]: upwind advection,
  // 5-point diffusion, pointwise reaction/cooling. Throws if dt violates
  // the diffusive stability bound.
  void step(double dt, double vx, double vy);

  [[nodiscard]] const grid::Grid2D& grid() const { return grid_; }
  [[nodiscard]] const RdFireState& state() const { return state_; }
  [[nodiscard]] RdFireState& state() { return state_; }
  [[nodiscard]] const RdFireParams& params() const { return p_; }

  // Reaction rate r(T) (exposed for tests).
  [[nodiscard]] double reaction_rate(double T) const;

  // Largest dt satisfying the explicit diffusion bound dt <= h^2 / (4k)
  // (advection is typically less restrictive at fire-scale winds).
  [[nodiscard]] double stable_dt() const;

  // --- diagnostics ---
  // Rightmost x where T exceeds the threshold (front tracking); -inf if none.
  [[nodiscard]] double front_position_x(double T_threshold = 400.0) const;
  // Domain-mean fuel fraction remaining.
  [[nodiscard]] double mean_fuel() const;
  [[nodiscard]] double max_temperature() const;

 private:
  grid::Grid2D grid_;
  RdFireParams p_;
  RdFireState state_;
  util::Array2D<double> T_new_, beta_new_;  // scratch
};

}  // namespace wfire::fire
