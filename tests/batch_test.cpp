// Batched SoA forward-model tests: the batched ensemble advance against the
// per-member reference path (bitwise with the band disabled, front/ignition
// agreement with the narrow band on), degenerate ensemble shapes, the
// counter-based RNG streams, thread-count invariance of the assimilation
// cycle, and the batched RD / Poisson kernels against their scalar
// counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "atmos/poisson.h"
#include "atmos/poisson_batch.h"
#include "core/cycle.h"
#include "core/ensemble_batch.h"
#include "fire/rd_batch.h"
#include "fire/reaction_diffusion.h"
#include "fire/terrain.h"
#include "util/rng.h"

using namespace wfire;
using namespace wfire::core;

namespace {

grid::Grid2D small_grid() { return grid::Grid2D(41, 41, 6.0, 6.0); }

std::vector<std::unique_ptr<fire::FireModel>> make_members(
    const grid::Grid2D& g, const std::vector<std::pair<double, double>>& at,
    fire::FireModelOptions opt, double radius = 20.0) {
  std::vector<std::unique_ptr<fire::FireModel>> models;
  for (const auto& [cx, cy] : at) {
    auto m = std::make_unique<fire::FireModel>(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), opt);
    m->ignite({levelset::Ignition{levelset::CircleIgnition{cx, cy, radius,
                                                           0.0}}});
    models.push_back(std::move(m));
  }
  return models;
}

// Advances the scalar reference members in lockstep.
void advance_reference(std::vector<std::unique_ptr<fire::FireModel>>& models,
                       const std::vector<std::pair<double, double>>& wind,
                       double time, double dt) {
  for (std::size_t k = 0; k < models.size(); ++k) {
    fire::FireModel& m = *models[k];
    while (m.state().time < time - 1e-9) {
      const double remaining = time - m.state().time;
      m.step_uniform_wind(std::min(dt, remaining), wind[k].first,
                          wind[k].second);
    }
  }
}

int count_burned(const util::Array2D<double>& tig) {
  int n = 0;
  for (double v : tig)
    if (v != fire::kNotIgnited) ++n;
  return n;
}

// Snapshot of a cycle's ensemble states (cycles own thread pools and are
// not movable, so tests copy the fields out).
struct CycleStates {
  std::vector<util::Array2D<double>> psi, tig;
  bool batched = false;
};

CycleStates snapshot(const AssimilationCycle& cycle) {
  CycleStates s;
  s.batched = cycle.last_advance_batched();
  for (int k = 0; k < cycle.members(); ++k) {
    s.psi.push_back(cycle.member(k).state().psi);
    s.tig.push_back(cycle.member(k).state().tig);
  }
  return s;
}

}  // namespace

// --- batched vs reference: full-grid sweeps are bitwise-equal ---

TEST(BatchVsReference, BitwiseEqualWithBandDisabled) {
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  fopt.reinit_interval = 10;  // cross a redistancing boundary in 30 steps
  // 5 members: not a multiple of the SIMD pad, so padding lanes are live.
  const std::vector<std::pair<double, double>> centers = {
      {120, 120}, {90, 120}, {150, 100}, {120, 150}, {100, 100}};
  const std::vector<std::pair<double, double>> wind = {
      {3, 0}, {2.5, 0.5}, {3.5, -0.5}, {3, 0.3}, {2.8, 0}};

  auto ref = make_members(g, centers, fopt);
  auto bat = make_members(g, centers, fopt);

  EnsembleBatchOptions bopt;
  bopt.band_cells = 0;  // full-grid sweeps
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt,
                      static_cast<int>(centers.size()), bopt);
  for (int k = 0; k < batch.members(); ++k)
    batch.set_member_wind(k, wind[k].first, wind[k].second);

  advance_reference(ref, wind, 15.0, 0.5);
  batch.load(bat);
  batch.advance_to(15.0, 0.5);
  batch.store(bat);

  for (std::size_t k = 0; k < ref.size(); ++k) {
    const auto& pr = ref[k]->state().psi;
    const auto& pb = bat[k]->state().psi;
    const auto& tr = ref[k]->state().tig;
    const auto& tb = bat[k]->state().tig;
    for (std::size_t c = 0; c < pr.size(); ++c) {
      ASSERT_EQ(pr.data()[c], pb.data()[c]) << "psi member " << k;
      ASSERT_EQ(tr.data()[c], tb.data()[c]) << "tig member " << k;
    }
    // set_state refreshed the fuel fraction from tig: identical too.
    for (std::size_t c = 0; c < pr.size(); ++c)
      ASSERT_EQ(ref[k]->fuel_fraction().data()[c],
                bat[k]->fuel_fraction().data()[c]);
  }
}

TEST(BatchVsReference, SingleMemberBitwise) {
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  auto ref = make_members(g, {{120, 120}}, fopt);
  auto bat = make_members(g, {{120, 120}}, fopt);

  EnsembleBatchOptions bopt;
  bopt.band_cells = 0;
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt, 1, bopt);
  batch.set_member_wind(0, 3.0, 0.0);

  advance_reference(ref, {{3.0, 0.0}}, 10.0, 0.5);
  batch.load(bat);
  batch.advance_to(10.0, 0.5);
  batch.store(bat);

  for (std::size_t c = 0; c < ref[0]->state().psi.size(); ++c)
    ASSERT_EQ(ref[0]->state().psi.data()[c], bat[0]->state().psi.data()[c]);
}

// --- narrow band: front and ignition times agree with the reference ---

TEST(BatchVsReference, NarrowBandMatchesIgnitionTimes) {
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  fopt.reinit_interval = 10;
  const std::vector<std::pair<double, double>> centers = {
      {120, 120}, {100, 130}, {140, 110}};
  const std::vector<std::pair<double, double>> wind = {
      {3, 0}, {2.5, 0.5}, {3.5, -0.5}};

  auto ref = make_members(g, centers, fopt);
  auto bat = make_members(g, centers, fopt);

  EnsembleBatchOptions bopt;
  bopt.band_cells = 8;
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt,
                      static_cast<int>(centers.size()), bopt);
  for (int k = 0; k < batch.members(); ++k)
    batch.set_member_wind(k, wind[k].first, wind[k].second);

  advance_reference(ref, wind, 30.0, 0.5);
  batch.load(bat);
  EXPECT_LT(batch.band_size(), g.nx * g.ny);  // the band is actually narrow
  batch.advance_to(30.0, 0.5);
  batch.store(bat);

  for (std::size_t k = 0; k < ref.size(); ++k) {
    const auto& tr = ref[k]->state().tig;
    const auto& tb = bat[k]->state().tig;
    int disagree = 0;
    for (std::size_t c = 0; c < tr.size(); ++c) {
      const bool br = tr.data()[c] != fire::kNotIgnited;
      const bool bb = tb.data()[c] != fire::kNotIgnited;
      if (br != bb) {
        ++disagree;
        continue;
      }
      if (br) {
        EXPECT_NEAR(tr.data()[c], tb.data()[c], 1e-4);
      }
    }
    // The burned sets may differ by at most a rounding sliver of cells.
    EXPECT_LE(disagree, 2) << "member " << k;
  }
}

TEST(BatchVsReference, BandTouchingDomainEdge) {
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  fopt.reinit_interval = 10;  // keep the band in its valid cadence regime
  // Ignition hugging the boundary: the band clips against the domain edge.
  auto ref = make_members(g, {{10, 10}, {230, 120}}, fopt);
  auto bat = make_members(g, {{10, 10}, {230, 120}}, fopt);

  EnsembleBatchOptions bopt;
  bopt.band_cells = 6;
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt, 2, bopt);
  batch.set_member_wind(0, 3.0, 1.0);
  batch.set_member_wind(1, -2.0, 0.0);

  advance_reference(ref, {{3.0, 1.0}, {-2.0, 0.0}}, 20.0, 0.5);
  batch.load(bat);
  batch.advance_to(20.0, 0.5);
  batch.store(bat);

  for (std::size_t k = 0; k < ref.size(); ++k) {
    const int nr = count_burned(ref[k]->state().tig);
    const int nb = count_burned(bat[k]->state().tig);
    EXPECT_GT(nb, 0);
    EXPECT_NEAR(nr, nb, 3) << "member " << k;
  }
}

TEST(BatchVsReference, FullyBurnedMemberIsStable) {
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  // Member 0: the whole domain already burned (psi < 0 everywhere).
  // Member 1: a normal fire.
  auto ref = make_members(g, {{120, 120}, {120, 120}}, fopt, 20.0);
  ref[0]->ignite({levelset::Ignition{
      levelset::CircleIgnition{120.0, 120.0, 500.0, 0.0}}});
  auto bat = make_members(g, {{120, 120}, {120, 120}}, fopt, 20.0);
  bat[0]->ignite({levelset::Ignition{
      levelset::CircleIgnition{120.0, 120.0, 500.0, 0.0}}});

  EnsembleBatchOptions bopt;
  bopt.band_cells = 8;
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt, 2, bopt);
  batch.set_member_wind(0, 3.0, 0.0);
  batch.set_member_wind(1, 3.0, 0.0);

  advance_reference(ref, {{3.0, 0.0}, {3.0, 0.0}}, 10.0, 0.5);
  batch.load(bat);
  batch.advance_to(10.0, 0.5);
  batch.store(bat);

  // The fully-burned member stays fully burned in both paths.
  EXPECT_EQ(count_burned(ref[0]->state().tig), g.nx * g.ny);
  EXPECT_EQ(count_burned(bat[0]->state().tig), g.nx * g.ny);
  // The normal member agrees across paths.
  EXPECT_NEAR(count_burned(ref[1]->state().tig),
              count_burned(bat[1]->state().tig), 3);
}

TEST(BatchVsReference, DelayedIgnitionsApplyInBatchBitwise) {
  // A member carries a delayed ignition through load(): the batch applies
  // it mid-advance with the reference path's min-merge arithmetic, and any
  // leftover queue survives store(). Band off -> bitwise agreement.
  const grid::Grid2D g = small_grid();
  fire::FireModelOptions fopt;
  const std::vector<levelset::Ignition> shapes = {
      levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}},
      levelset::Ignition{levelset::CircleIgnition{60.0, 60.0, 15.0, 4.0}},
      levelset::Ignition{levelset::CircleIgnition{180.0, 60.0, 15.0, 1e9}}};
  auto ref = make_members(g, {{120, 120}, {100, 130}}, fopt);
  auto bat = make_members(g, {{120, 120}, {100, 130}}, fopt);
  ref[0]->ignite(shapes);
  bat[0]->ignite(shapes);
  ASSERT_TRUE(bat[0]->has_pending_ignitions());

  EnsembleBatchOptions bopt;
  bopt.band_cells = 0;
  EnsembleBatch batch(g, ref[0]->fuel(), ref[0]->terrain(), fopt, 2, bopt);
  batch.set_member_wind(0, 3.0, 0.0);
  batch.set_member_wind(1, 2.5, 0.5);

  advance_reference(ref, {{3.0, 0.0}, {2.5, 0.5}}, 10.0, 0.5);
  batch.load(bat);
  batch.advance_to(10.0, 0.5);
  batch.store(bat);

  for (std::size_t k = 0; k < ref.size(); ++k) {
    const auto& pr = ref[k]->state().psi;
    const auto& pb = bat[k]->state().psi;
    for (std::size_t c = 0; c < pr.size(); ++c) {
      ASSERT_EQ(pr.data()[c], pb.data()[c]) << "member " << k;
      ASSERT_EQ(ref[k]->state().tig.data()[c], bat[k]->state().tig.data()[c]);
    }
  }
  // The far-future shape is still pending on both paths after store().
  EXPECT_TRUE(ref[0]->has_pending_ignitions());
  EXPECT_TRUE(bat[0]->has_pending_ignitions());
  EXPECT_FALSE(bat[1]->has_pending_ignitions());
}

// --- the cycle dispatch: batched path matches the reference path ---

TEST(CycleBatch, FullCycleBitwiseWithBandDisabled) {
  const grid::Grid2D g = small_grid();
  auto run = [&](AdvanceMode mode) {
    CycleOptions opt;
    opt.members = 5;
    opt.threads = 2;
    opt.ignition_jitter = 20.0;
    opt.advance = mode;
    opt.band_cells = 0;
    AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), {}, opt, 21);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
    cycle.advance_to(12.0);
    return snapshot(cycle);
  };
  // Two separately built cycles so no state leaks between the runs.
  const CycleStates batched = run(AdvanceMode::kBatched);
  const CycleStates reference = run(AdvanceMode::kReference);
  EXPECT_TRUE(batched.batched);
  EXPECT_FALSE(reference.batched);
  ASSERT_EQ(batched.psi.size(), reference.psi.size());
  for (std::size_t k = 0; k < batched.psi.size(); ++k) {
    for (std::size_t c = 0; c < batched.psi[k].size(); ++c) {
      ASSERT_EQ(batched.psi[k].data()[c], reference.psi[k].data()[c])
          << "psi member " << k;
      ASSERT_EQ(batched.tig[k].data()[c], reference.tig[k].data()[c])
          << "tig member " << k;
    }
  }
}

TEST(CycleBatch, DelayedIgnitionsDoNotForceFallback) {
  // Delayed ignitions used to silently drop the cycle onto the reference
  // path; the batch now carries them, so a full multi-phase advance must
  // batch every time with the fallback counter staying at zero — and the
  // two paths must still agree bitwise with the band disabled.
  const grid::Grid2D g = small_grid();
  const std::vector<levelset::Ignition> base = {
      levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}},
      levelset::Ignition{levelset::CircleIgnition{60.0, 180.0, 15.0, 5.0}}};
  auto run = [&](AdvanceMode mode) {
    CycleOptions opt;
    opt.members = 5;
    opt.threads = 2;
    opt.ignition_jitter = 20.0;
    opt.advance = mode;
    opt.band_cells = 0;
    AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), {}, opt, 21);
    cycle.initialize(base);
    cycle.advance_to(3.0);  // the delayed shape is still pending here
    cycle.advance_to(12.0);
    if (mode == AdvanceMode::kBatched) {
      EXPECT_TRUE(cycle.last_advance_batched());
      EXPECT_EQ(cycle.last_fallback_reason(), FallbackReason::kNone);
      EXPECT_EQ(cycle.fallback_count(), 0);
    } else {
      EXPECT_EQ(cycle.last_fallback_reason(), FallbackReason::kModeReference);
      EXPECT_EQ(cycle.fallback_count(), 0);
    }
    return snapshot(cycle);
  };
  const CycleStates batched = run(AdvanceMode::kBatched);
  const CycleStates reference = run(AdvanceMode::kReference);
  EXPECT_TRUE(batched.batched);
  ASSERT_EQ(batched.psi.size(), reference.psi.size());
  for (std::size_t k = 0; k < batched.psi.size(); ++k)
    for (std::size_t c = 0; c < batched.psi[k].size(); ++c) {
      ASSERT_EQ(batched.psi[k].data()[c], reference.psi[k].data()[c])
          << "psi member " << k;
      ASSERT_EQ(batched.tig[k].data()[c], reference.tig[k].data()[c])
          << "tig member " << k;
    }
}

TEST(CycleBatch, NarrowBandCycleTracksReference) {
  const grid::Grid2D g = small_grid();
  auto run = [&](AdvanceMode mode, int band) {
    CycleOptions opt;
    opt.members = 4;
    opt.threads = 2;
    opt.ignition_jitter = 15.0;
    opt.advance = mode;
    opt.band_cells = band;
    // Frequent redistancing keeps the narrow band in its agreement regime
    // (see the cadence caveat in core/ensemble_batch.h).
    fire::FireModelOptions fopt;
    fopt.reinit_interval = 10;
    AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), fopt, opt, 22);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
    cycle.advance_to(20.0);
    return snapshot(cycle);
  };
  const CycleStates batched = run(AdvanceMode::kBatched, 8);
  const CycleStates reference = run(AdvanceMode::kReference, 8);
  for (std::size_t k = 0; k < batched.tig.size(); ++k) {
    const int nb = count_burned(batched.tig[k]);
    const int nr = count_burned(reference.tig[k]);
    EXPECT_GT(nb, 0);
    EXPECT_NEAR(nb, nr, 3) << "member " << k;
  }
}

// --- counter-based RNG streams ---

TEST(RngStream, PureFunctionOfSeedAndId) {
  util::Rng a = util::Rng::stream(42, 7);
  // Interleave unrelated draws; the stream must not care.
  util::Rng noise(99);
  noise.normal();
  noise.normal();
  util::Rng b = util::Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, DistinctIdsDecorrelated) {
  util::Rng a = util::Rng::stream(42, 1);
  util::Rng b = util::Rng::stream(42, 2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
  // Sample means of each stream are near 0 (sanity, not a statistics test).
  util::Rng c = util::Rng::stream(7, 3);
  double mean = 0;
  for (int i = 0; i < 4096; ++i) mean += c.normal();
  EXPECT_LT(std::abs(mean / 4096.0), 0.1);
}

// --- thread-count invariance of the ensemble states ---

TEST(ThreadInvariance, InitializeAndAdvanceIdenticalAcrossPoolSizes) {
  const grid::Grid2D g = small_grid();
  auto run = [&](int threads) {
    CycleOptions opt;
    opt.members = 5;
    opt.threads = threads;
    opt.ignition_jitter = 20.0;
    AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), {}, opt, 33);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
    cycle.advance_to(10.0);
    return snapshot(cycle);
  };
  // This binary is additionally run with OMP_NUM_THREADS=4 forced (see
  // tests/CMakeLists.txt), so the comparison covers OpenMP widths too.
  const CycleStates one = run(1);
  const CycleStates four = run(4);
  for (std::size_t k = 0; k < one.psi.size(); ++k) {
    for (std::size_t c = 0; c < one.psi[k].size(); ++c) {
      ASSERT_EQ(one.psi[k].data()[c], four.psi[k].data()[c])
          << "psi member " << k;
      ASSERT_EQ(one.tig[k].data()[c], four.tig[k].data()[c])
          << "tig member " << k;
    }
  }
}

TEST(ThreadInvariance, ReferencePathAlsoInvariant) {
  const grid::Grid2D g = small_grid();
  auto run = [&](int threads) {
    CycleOptions opt;
    opt.members = 4;
    opt.threads = threads;
    opt.ignition_jitter = 20.0;
    opt.advance = AdvanceMode::kReference;
    AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), {}, opt, 34);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
    cycle.advance_to(10.0);
    return snapshot(cycle);
  };
  const CycleStates one = run(1);
  const CycleStates four = run(4);
  for (std::size_t k = 0; k < one.psi.size(); ++k)
    for (std::size_t c = 0; c < one.psi[k].size(); ++c)
      ASSERT_EQ(one.psi[k].data()[c], four.psi[k].data()[c])
          << "psi member " << k;
}

// --- batched reaction-diffusion ensemble ---

TEST(RdBatch, BitwiseMatchesScalarModels) {
  const grid::Grid2D g(33, 33, 10.0, 10.0);
  fire::RdFireParams p;
  const std::vector<std::pair<double, double>> winds = {
      {1.0, 0.0}, {-0.5, 0.8}, {0.0, 0.0}};
  const std::vector<std::pair<double, double>> hot = {
      {160, 160}, {120, 180}, {200, 140}};

  std::vector<fire::RdFireModel> scalar;
  fire::RdFireBatch batch(g, p, 3);
  for (int k = 0; k < 3; ++k) {
    scalar.emplace_back(g, p);
    scalar[k].ignite(hot[k].first, hot[k].second, 30.0);
    batch.ignite_member(k, hot[k].first, hot[k].second, 30.0);
    batch.set_member_wind(k, winds[k].first, winds[k].second);
  }
  const double dt = 0.9 * scalar[0].stable_dt();
  for (int s = 0; s < 25; ++s) {
    for (int k = 0; k < 3; ++k)
      scalar[k].step(dt, winds[k].first, winds[k].second);
    batch.step(dt);
  }
  for (int k = 0; k < 3; ++k) {
    const util::Array2D<double> T = batch.T_of(k);
    const util::Array2D<double> beta = batch.beta_of(k);
    for (std::size_t c = 0; c < T.size(); ++c) {
      ASSERT_EQ(scalar[k].state().T.data()[c], T.data()[c]) << "member " << k;
      ASSERT_EQ(scalar[k].state().beta.data()[c], beta.data()[c]);
    }
    // The wave actually moved (the test isn't comparing two frozen fields).
    EXPECT_GT(scalar[k].max_temperature(), 500.0);
  }
}

TEST(RdBatch, RejectsUnstableDt) {
  const grid::Grid2D g(17, 17, 10.0, 10.0);
  fire::RdFireBatch batch(g, {}, 2);
  EXPECT_THROW(batch.step(batch.stable_dt() * 2.0), std::invalid_argument);
}

// --- batched Poisson smoother / residual / solver ---

namespace {

// Fills per-member rhs with decorrelated zero-mean fields.
void fill_rhs(const wfire::grid::Grid3D& g, int members, int stride,
              std::vector<double>& rhs) {
  rhs.assign(static_cast<std::size_t>(g.nx) * g.ny * g.nz * stride, 0.0);
  for (int m = 0; m < members; ++m) {
    util::Rng rng = util::Rng::stream(77, static_cast<std::uint64_t>(m));
    double mean = 0;
    const std::size_t cells = rhs.size() / stride;
    std::vector<double> f(cells);
    for (auto& v : f) {
      v = rng.normal();
      mean += v;
    }
    mean /= static_cast<double>(cells);
    for (std::size_t c = 0; c < cells; ++c) rhs[c * stride + m] = f[c] - mean;
  }
}

}  // namespace

TEST(PoissonBatch, SweepBitwiseMatchesScalar) {
  const wfire::grid::Grid3D g(12, 10, 6, 60.0, 60.0, 100.0);
  const int members = 3, stride = 4;
  std::vector<double> rhs;
  fill_rhs(g, members, stride, rhs);
  std::vector<double> phi(rhs.size(), 0.0);

  for (int it = 0; it < 10; ++it)
    atmos::rbgs_sweep_batch(g, stride, rhs.data(), phi.data(), 1.7);

  for (int m = 0; m < members; ++m) {
    atmos::Field3 srhs(g.nx, g.ny, g.nz), sphi(g.nx, g.ny, g.nz, 0.0);
    for (int k = 0; k < g.nz; ++k)
      for (int j = 0; j < g.ny; ++j)
        for (int i = 0; i < g.nx; ++i)
          srhs(i, j, k) =
              rhs[((static_cast<std::size_t>(k) * g.ny + j) * g.nx + i) *
                      stride +
                  m];
    for (int it = 0; it < 10; ++it) atmos::rbgs_sweep(g, srhs, sphi, 1.7);
    for (int k = 0; k < g.nz; ++k)
      for (int j = 0; j < g.ny; ++j)
        for (int i = 0; i < g.nx; ++i)
          ASSERT_EQ(sphi(i, j, k),
                    phi[((static_cast<std::size_t>(k) * g.ny + j) * g.nx + i) *
                            stride +
                        m])
              << "member " << m;
  }
}

TEST(PoissonBatch, SolveConvergesPerMember) {
  const wfire::grid::Grid3D g(12, 10, 6, 60.0, 60.0, 100.0);
  const int members = 3, stride = 4;
  std::vector<double> rhs;
  fill_rhs(g, members, stride, rhs);
  std::vector<double> phi(rhs.size(), 0.0);

  atmos::SorOptions opt;
  opt.tol = 1e-7;
  const std::vector<atmos::SolveStats> stats =
      atmos::solve_sor_batch(g, members, stride, rhs.data(), phi.data(), opt);
  ASSERT_EQ(stats.size(), 3u);
  std::vector<double> r(rhs.size()), max_r(stride);
  atmos::residual_batch(g, stride, phi.data(), rhs.data(), r.data(),
                        max_r.data());
  for (int m = 0; m < members; ++m) {
    EXPECT_TRUE(stats[m].converged) << "member " << m;
    EXPECT_LT(max_r[m], opt.tol * 1.01) << "member " << m;
    // Zero-mean subspace per member.
    double mean = 0;
    const std::size_t cells = rhs.size() / stride;
    for (std::size_t c = 0; c < cells; ++c) mean += phi[c * stride + m];
    EXPECT_LT(std::abs(mean / static_cast<double>(cells)), 1e-10);
  }
  // Padding lane untouched and finite.
  for (std::size_t c = 0; c < rhs.size() / stride; ++c)
    ASSERT_EQ(phi[c * stride + members], 0.0);
}
