// Core module tests: state packing, position diagnostics, the twin-
// experiment data pool, and the real-time driver bookkeeping.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "core/cycle.h"
#include "core/data_pool.h"
#include "core/model_state.h"
#include "core/realtime.h"
#include "obs/obs_function.h"

using namespace wfire;
using namespace wfire::core;

namespace {

grid::Grid2D small_grid() { return grid::Grid2D(41, 41, 6.0, 6.0); }

std::unique_ptr<fire::FireModel> ignited_model(double cx, double cy) {
  const grid::Grid2D g = small_grid();
  auto m = std::make_unique<fire::FireModel>(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g));
  m->ignite({levelset::Ignition{levelset::CircleIgnition{cx, cy, 20.0, 0.0}}});
  return m;
}

}  // namespace

TEST(ModelState, PackUnpackRoundTrip) {
  fire::FireState s;
  s.psi = util::Array2D<double>(4, 3, 2.5);
  s.tig = util::Array2D<double>(4, 3, fire::kNotIgnited);
  s.psi(1, 1) = -3.0;
  s.tig(1, 1) = 17.0;
  s.time = 99.0;

  const la::Vector v = pack_state(s);
  ASSERT_EQ(v.size(), 24u);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  // +inf mapped to the finite cap.
  EXPECT_DOUBLE_EQ(v[12], kTigCap);

  fire::FireState r;
  unpack_state(v, 4, 3, 99.0, r);
  EXPECT_TRUE(r.psi == s.psi);
  EXPECT_DOUBLE_EQ(r.tig(1, 1), 17.0);
  EXPECT_TRUE(std::isinf(r.tig(0, 0)));
  EXPECT_THROW(unpack_state(la::Vector(7), 4, 3, 0.0, r),
               std::invalid_argument);
}

TEST(ModelState, CentroidOfCircularFire) {
  const grid::Grid2D g = small_grid();
  auto m = ignited_model(120.0, 90.0);
  double cx, cy;
  ASSERT_TRUE(burning_centroid(g, m->state().psi, cx, cy));
  EXPECT_NEAR(cx, 120.0, 3.0);
  EXPECT_NEAR(cy, 90.0, 3.0);

  util::Array2D<double> cold(g.nx, g.ny, 1.0);
  EXPECT_FALSE(burning_centroid(g, cold, cx, cy));
}

TEST(ModelState, CentroidDistanceMeasuresDisplacement) {
  const grid::Grid2D g = small_grid();
  auto a = ignited_model(90.0, 120.0);
  auto b = ignited_model(150.0, 120.0);
  const double d = centroid_distance(g, a->state().psi, b->state().psi);
  EXPECT_NEAR(d, 60.0, 5.0);
  util::Array2D<double> cold(g.nx, g.ny, 1.0);
  EXPECT_TRUE(std::isinf(centroid_distance(g, a->state().psi, cold)));
}

TEST(ModelState, SymmetricDifferenceOfIdenticalIsZero) {
  const grid::Grid2D g = small_grid();
  auto a = ignited_model(120.0, 120.0);
  EXPECT_DOUBLE_EQ(
      symmetric_difference_area(g, a->state().psi, a->state().psi), 0.0);
  auto b = ignited_model(150.0, 120.0);
  EXPECT_GT(symmetric_difference_area(g, a->state().psi, b->state().psi),
            1000.0);
}

TEST(DataPool, ObservationsTrackTruthAndAddNoise) {
  DataPoolOptions opt;
  opt.noise_std = 100.0;
  opt.wind_u = 2.0;
  DataPool pool(ignited_model(120.0, 120.0), opt, util::Rng(3));
  const ObservationImage obs = pool.observe_at(30.0);
  EXPECT_NEAR(obs.time, 30.0, 1e-6);
  EXPECT_NEAR(pool.truth().state().time, 30.0, 1e-6);
  EXPECT_DOUBLE_EQ(obs.noise_std, 100.0);

  // The noisy image differs from the clean one but correlates with it.
  const util::Array2D<double> clean = wfire::obs::heat_flux_image(
      pool.truth().fuel(), pool.truth().state().tig,
      pool.truth().state().time);
  double diff = 0, signal = 0;
  for (int j = 0; j < clean.ny(); ++j)
    for (int i = 0; i < clean.nx(); ++i) {
      diff += std::abs(obs.image(i, j) - clean(i, j));
      signal += std::abs(clean(i, j));
    }
  EXPECT_GT(diff, 0.0);
  EXPECT_GT(signal, 0.0);
}

TEST(DataPool, SequentialObservationsAdvanceMonotonically) {
  DataPool pool(ignited_model(120.0, 120.0), {}, util::Rng(4));
  pool.observe_at(10.0);
  const ObservationImage o2 = pool.observe_at(20.0);
  EXPECT_NEAR(o2.time, 20.0, 1e-6);
  EXPECT_THROW(DataPool(nullptr, {}, util::Rng(0)), std::invalid_argument);
}

TEST(Cycle, InitializeCreatesPerturbedMembers) {
  const grid::Grid2D g = small_grid();
  CycleOptions opt;
  opt.members = 6;
  opt.ignition_jitter = 30.0;
  opt.threads = 2;
  AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                          fire::terrain_flat(g), {}, opt, 11);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
  ASSERT_EQ(cycle.members(), 6);
  // Members start at distinct positions (jitter) but all have fire.
  double cx0, cy0, cx1, cy1;
  ASSERT_TRUE(burning_centroid(g, cycle.member(0).state().psi, cx0, cy0));
  ASSERT_TRUE(burning_centroid(g, cycle.member(1).state().psi, cx1, cy1));
  EXPECT_GT(std::hypot(cx1 - cx0, cy1 - cy0), 1.0);
  EXPECT_GT(cycle.state_spread(), 0.0);
}

TEST(Cycle, AdvanceToMovesAllMembers) {
  const grid::Grid2D g = small_grid();
  CycleOptions opt;
  opt.members = 4;
  opt.threads = 2;
  AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                          fire::terrain_flat(g), {}, opt, 12);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
  cycle.advance_to(15.0);
  for (int k = 0; k < cycle.members(); ++k)
    EXPECT_NEAR(cycle.member(k).state().time, 15.0, 1e-9);
  // Phase timings recorded (initialize first, then the advance).
  ASSERT_FALSE(cycle.runner().timings().empty());
  bool has_advance = false;
  for (const auto& t : cycle.runner().timings())
    if (t.name == "advance") has_advance = true;
  EXPECT_TRUE(has_advance);
}

TEST(Cycle, AssimilationReducesPositionError) {
  // Small end-to-end twin experiment: ensemble ignited 90 m off the truth;
  // one morphing analysis must cut the mean position error.
  const grid::Grid2D g = small_grid();
  DataPoolOptions dopt;
  dopt.noise_std = 1000.0;
  DataPool pool(ignited_model(150.0, 120.0), dopt, util::Rng(5));

  CycleOptions opt;
  opt.members = 8;
  opt.ignition_jitter = 12.0;
  opt.threads = 2;
  opt.filter = FilterKind::kMorphingEnKF;
  opt.morph.sigma_r = 50.0;
  opt.morph.sigma_T = 0.5;
  AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                          fire::terrain_flat(g), {}, opt, 13);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{60.0, 120.0, 20.0, 0.0}}});  // 90 m west

  const ObservationImage obs = pool.observe_at(20.0);
  cycle.advance_to(20.0);
  const double err_before =
      cycle.mean_position_error(pool.truth().state().psi);
  cycle.assimilate(obs);
  const double err_after = cycle.mean_position_error(pool.truth().state().psi);
  EXPECT_LT(err_after, 0.8 * err_before);
}

TEST(Cycle, FileExchangeMatchesInMemory) {
  // The Fig. 2 disk-file pipeline must not change the results: run two
  // identical cycles (same seeds), one exchanging state through files.
  const grid::Grid2D g = small_grid();
  const auto run = [&](bool file_exchange) {
    CycleOptions opt;
    opt.members = 4;
    opt.threads = 2;
    opt.file_exchange = file_exchange;
    opt.exchange_dir = "/tmp/wfire_cycle_test";
    AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                            fire::terrain_flat(g), {}, opt, 14);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
    cycle.advance_to(10.0);
    la::Vector all;
    for (int k = 0; k < cycle.members(); ++k) {
      const la::Vector v = pack_state(cycle.member(k).state());
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const la::Vector mem = run(false);
  const la::Vector file = run(true);
  ASSERT_EQ(mem.size(), file.size());
  for (std::size_t i = 0; i < mem.size(); ++i)
    EXPECT_DOUBLE_EQ(mem[i], file[i]);
  std::filesystem::remove_all("/tmp/wfire_cycle_test");
}

TEST(RealTime, DriverRecordsCyclesAndDeadlines) {
  const grid::Grid2D g = small_grid();
  DataPool pool(ignited_model(120.0, 120.0), {}, util::Rng(6));
  CycleOptions opt;
  opt.members = 4;
  opt.threads = 2;
  opt.morph.sigma_r = 50.0;
  // Keep the 4-member ensemble clustered: with the default 60 m jitter a
  // member can land outside this 240 m domain and the analysis consensus
  // collapses — the test exercises driver bookkeeping, not filter skill.
  opt.ignition_jitter = 20.0;
  AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                          fire::terrain_flat(g), {}, opt, 15);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{100.0, 120.0, 20.0, 0.0}}});

  RealTimeOptions ropt;
  ropt.cycle_interval = 10.0;
  ropt.cycles = 3;
  ropt.speedup = 1e6;  // deadlines intentionally impossible
  ropt.pace = false;
  RealTimeDriver driver(cycle, pool, ropt);
  const std::vector<CycleRecord> records = driver.run();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_NEAR(records.back().sim_time, 30.0, 1e-9);
  for (const auto& r : records) {
    EXPECT_GT(r.wall_seconds, 0.0);
    EXPECT_FALSE(r.met_deadline);  // 10 us budget is not attainable
    EXPECT_TRUE(std::isfinite(r.position_error));
  }
}

namespace {

// A deliberately slow data source: observation production that must never be
// charged against the assimilation deadline. Delegates to a DataPool so the
// driver still gets real images and a truth to score against.
class SlowSource : public ObservationSource {
 public:
  SlowSource(DataPool& inner, double delay_s)
      : inner_(inner), delay_s_(delay_s) {}
  ObservationImage observe_at(double time) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s_));
    return inner_.observe_at(time);
  }
  [[nodiscard]] const util::Array2D<double>* truth_psi() const override {
    return inner_.truth_psi();
  }

 private:
  DataPool& inner_;
  double delay_s_;
};

}  // namespace

// Pins the accounting contract: only advance_to + assimilate count toward
// wall_seconds/met_deadline; the data source's time lands in obs_seconds.
// Before the fix, the stopwatch started ahead of observe_at, so a slow feed
// (here: 0.4 s of synthetic delay per cycle) blew every deadline even when
// the computation itself was far faster than real time.
TEST(RealTime, ObservationGenerationNotChargedToDeadline) {
  const grid::Grid2D g = small_grid();
  DataPool pool(ignited_model(120.0, 120.0), {}, util::Rng(7));
  SlowSource slow(pool, 0.4);
  CycleOptions opt;
  opt.members = 2;
  opt.threads = 1;
  opt.ignition_jitter = 20.0;
  // The cheap pixelwise filter: the cycle must finish far inside 0.4 s so
  // the wall/obs comparison below is unambiguous.
  opt.filter = FilterKind::kStandardEnKF;
  AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                          fire::terrain_flat(g), {}, opt, 16);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{110.0, 120.0, 20.0, 0.0}}});

  RealTimeOptions ropt;
  ropt.cycle_interval = 5.0;
  ropt.cycles = 2;
  ropt.speedup = 1.0;  // 5 s budget per cycle: generous for this config...
  ropt.pace = false;
  RealTimeDriver driver(cycle, slow, ropt);
  const std::vector<CycleRecord> records = driver.run();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    // ...so the deadline only holds if the 0.4 s source delay stayed off the
    // measured path.
    EXPECT_GE(r.obs_seconds, 0.4);
    EXPECT_LT(r.wall_seconds, r.obs_seconds);
    EXPECT_TRUE(r.met_deadline);
    EXPECT_TRUE(std::isfinite(r.position_error));
  }
}
