// The assimilation cycle of the paper's Fig. 2: ensemble members are
// advanced in time independently (member-parallel), the observation function
// produces synthetic data for each member, and the (morphing) EnKF adjusts
// the member states by comparing synthetic with real data. State optionally
// round-trips through disk files between the stages, matching the paper's
// separate-executable pipeline ("the model, the observation function, and
// the EnKF are in separate executables"); the in-memory path is bitwise
// equivalent (tested) and faster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/data_pool.h"
#include "core/ensemble_batch.h"
#include "core/model_state.h"
#include "la/workspace.h"
#include "morphing/menkf.h"
#include "par/ensemble_runner.h"

namespace wfire::core {

enum class FilterKind { kStandardEnKF, kMorphingEnKF };

// Why an advance_to() used the per-member reference path instead of the
// batched SoA advance. kNone = it batched; kModeReference = reference mode
// was selected (not a fallback); the rest are genuine fallbacks — the
// batched path was requested but a precondition failed.
enum class FallbackReason {
  kNone,           // batched advance ran
  kModeReference,  // reference path selected by mode, not a fallback
  kEmpty,          // initialize() has not built an ensemble yet
  kTimeSkew,       // members out of time lockstep
  kReinitSkew,     // members in different redistancing phases
};

[[nodiscard]] const char* to_string(FallbackReason r);

struct CycleOptions {
  int members = 25;              // the paper's Fig. 4 ensemble size
  double dt = 0.5;               // model step [s] (paper Sec. 2.3)
  FilterKind filter = FilterKind::kMorphingEnKF;
  // The morphing filter registers on the signed distance to the actively
  // burning band of the heat-flux image (front_distance_field): thin flux
  // rings alias away in registration pyramids, their distance transform is
  // smooth and large-scale — the image-space analogue of the level set
  // function. Morphing observation errors are therefore in meters. The
  // standard-EnKF baseline assimilates the raw flux image pixelwise, which
  // is the paper's Fig. 4(c) configuration (and what diverges there).
  double front_flux_threshold = 5000.0;  // [W/m^2] active-band cut
  morphing::MorphingEnKFOptions morph{.reg = {},
                                      .sigma_r = 50.0,   // [m]
                                      .sigma_T = 0.5,    // [fire cells]
                                      .t_weight = 1.0,
                                      .inflation = 1.0,
                                      .path = enkf::SolverPath::kAuto};
  double standard_sigma_obs = 2000.0;  // [W/m^2], raw-image baseline
  double standard_inflation = 1.0;
  // Member forcing: ambient wind plus per-member jitter (ensemble spread in
  // the driving weather).
  double wind_u = 3.0, wind_v = 0.0;
  double wind_jitter = 0.5;      // std [m/s]
  // Initial ensemble: ignition locations displaced per member.
  double ignition_jitter = 60.0; // std of the center offset [m]
  // Disk-file exchange (Fig. 2 pipeline).
  bool file_exchange = false;
  std::string exchange_dir = "/tmp/wfire_exchange";
  int threads = 0;               // 0 = hardware concurrency
  // Forward-model path: kAuto follows WFIRE_ADVANCE (default batched). The
  // batched SoA advance falls back to the per-member reference path when
  // members are out of lockstep or hold delayed ignitions.
  AdvanceMode advance = AdvanceMode::kAuto;
  // Narrow-band half width in cells for the batched path; < 0 follows
  // WFIRE_BAND_CELLS (default 8), 0 disables the band.
  int band_cells = -1;
  // Dense-LA scratch arena for the analysis. When null the cycle owns one,
  // so a cycling driver is allocation-free in steady state either way; pass
  // a pointer to share one arena across several cycles/filters.
  la::Workspace* la_workspace = nullptr;
};

struct AnalysisResult {
  enkf::EnKFStats enkf;
  double mean_registration_residual = 0;  // morphing only
  double max_mapping_norm = 0;            // morphing only
};

class AssimilationCycle {
 public:
  AssimilationCycle(const grid::Grid2D& g, fire::FuelMap fuel,
                    util::Array2D<double> terrain,
                    fire::FireModelOptions fire_opt, CycleOptions opt,
                    std::uint64_t seed);

  // Builds the ensemble from base ignitions: each member's shapes are
  // displaced by an iid N(0, ignition_jitter^2) offset (the paper's
  // "random perturbation of the comparison solution").
  void initialize(const std::vector<levelset::Ignition>& base);

  // Advances all members to `time` (member-parallel).
  void advance_to(double time);

  // One analysis with the given observation image.
  AnalysisResult assimilate(const ObservationImage& obs);

  // --- diagnostics ---
  [[nodiscard]] int members() const { return static_cast<int>(models_.size()); }
  [[nodiscard]] const fire::FireModel& member(int k) const { return *models_[k]; }
  [[nodiscard]] const grid::Grid2D& grid() const { return grid_; }
  [[nodiscard]] par::EnsembleRunner& runner() { return runner_; }
  // Whether the last advance_to() took the batched SoA path (diagnostics).
  [[nodiscard]] bool last_advance_batched() const {
    return last_advance_batched_;
  }
  // Why the last advance_to() did not batch (kNone when it did). A silent
  // fallback looks identical to the batched path from the outside — these
  // make it observable so drivers/tests can assert the fast path actually
  // ran.
  [[nodiscard]] FallbackReason last_fallback_reason() const {
    return last_fallback_reason_;
  }
  // Number of advances where the batched path was requested but a
  // precondition failed (excludes reference-by-mode runs).
  [[nodiscard]] long fallback_count() const { return fallback_count_; }

  // Mean over members of the burning-centroid distance to a reference psi.
  [[nodiscard]] double mean_position_error(
      const util::Array2D<double>& truth_psi) const;

  // Mean symmetric-difference burned area against a reference psi [m^2].
  [[nodiscard]] double mean_shape_error(
      const util::Array2D<double>& truth_psi) const;

  // Ensemble spread of the packed state (psi + capped tig).
  [[nodiscard]] double state_spread() const;

 private:
  std::vector<morphing::MorphMember> gather_fields(bool distance_observable);
  void scatter_fields(const std::vector<morphing::MorphMember>& fields,
                      double time);
  void roundtrip_through_files();
  // First failed precondition of the batched advance (kNone = batchable).
  // Delayed ignitions are no longer a blocker: EnsembleBatch carries each
  // member's queue in-batch and applies it as it comes due.
  [[nodiscard]] FallbackReason batch_blocker() const;

  grid::Grid2D grid_;
  fire::FuelMap fuel_;
  util::Array2D<double> terrain_;
  fire::FireModelOptions fire_opt_;
  CycleOptions opt_;
  std::uint64_t seed_;
  util::Rng rng_;
  par::EnsembleRunner runner_;
  std::vector<std::unique_ptr<fire::FireModel>> models_;
  std::vector<std::pair<double, double>> member_wind_;
  std::vector<fire::FireOutputs> out_scratch_;  // reference-path flux reuse
  std::unique_ptr<EnsembleBatch> batch_;        // lazily built SoA advance
  bool last_advance_batched_ = false;
  FallbackReason last_fallback_reason_ = FallbackReason::kNone;
  long fallback_count_ = 0;
  morphing::MorphingEnKF menkf_;
  la::Workspace la_ws_;  // analysis scratch when opt_.la_workspace is null
};

}  // namespace wfire::core
