#include "grid/interp.h"

#include <algorithm>
#include <cmath>

namespace wfire::grid {

CellLocation locate(const Grid2D& g, double px, double py) {
  CellLocation loc;
  loc.inside = g.contains_point(px, py);
  double fi = g.fx(px);
  double fj = g.fy(py);
  fi = std::clamp(fi, 0.0, static_cast<double>(g.nx - 1));
  fj = std::clamp(fj, 0.0, static_cast<double>(g.ny - 1));
  loc.i = std::min(static_cast<int>(fi), g.nx - 2);
  loc.j = std::min(static_cast<int>(fj), g.ny - 2);
  loc.tx = fi - loc.i;
  loc.ty = fj - loc.j;
  return loc;
}

double bilinear(const Grid2D& g, const util::Array2D<double>& field, double px,
                double py) {
  const CellLocation c = locate(g, px, py);
  const double f00 = field(c.i, c.j);
  const double f10 = field(c.i + 1, c.j);
  const double f01 = field(c.i, c.j + 1);
  const double f11 = field(c.i + 1, c.j + 1);
  return (1 - c.tx) * (1 - c.ty) * f00 + c.tx * (1 - c.ty) * f10 +
         (1 - c.tx) * c.ty * f01 + c.tx * c.ty * f11;
}

double bilinear_frac(const util::Array2D<double>& field, double fi,
                     double fj) {
  fi = std::clamp(fi, 0.0, static_cast<double>(field.nx() - 1));
  fj = std::clamp(fj, 0.0, static_cast<double>(field.ny() - 1));
  const int i = std::min(static_cast<int>(fi), field.nx() - 2);
  const int j = std::min(static_cast<int>(fj), field.ny() - 2);
  const double tx = fi - i;
  const double ty = fj - j;
  return (1 - tx) * (1 - ty) * field(i, j) + tx * (1 - ty) * field(i + 1, j) +
         (1 - tx) * ty * field(i, j + 1) + tx * ty * field(i + 1, j + 1);
}

namespace {
// 1-D quadratic Lagrange weights for offset t in [-1, 1] relative to the
// center node of a 3-point stencil.
inline void quad_weights(double t, double w[3]) {
  w[0] = 0.5 * t * (t - 1.0);
  w[1] = 1.0 - t * t;
  w[2] = 0.5 * t * (t + 1.0);
}
}  // namespace

double biquadratic(const Grid2D& g, const util::Array2D<double>& field,
                   double px, double py) {
  // Center the 3x3 stencil on the nearest node, clamped one off the border.
  double fi = std::clamp(g.fx(px), 0.0, static_cast<double>(g.nx - 1));
  double fj = std::clamp(g.fy(py), 0.0, static_cast<double>(g.ny - 1));
  const int ic = std::clamp(static_cast<int>(std::lround(fi)), 1, g.nx - 2);
  const int jc = std::clamp(static_cast<int>(std::lround(fj)), 1, g.ny - 2);
  const double tx = fi - ic;  // in [-1, 1] after clamping
  const double ty = fj - jc;
  double wx[3], wy[3];
  quad_weights(tx, wx);
  quad_weights(ty, wy);
  double s = 0;
  for (int b = -1; b <= 1; ++b)
    for (int a = -1; a <= 1; ++a)
      s += wx[a + 1] * wy[b + 1] * field(ic + a, jc + b);
  return s;
}

}  // namespace wfire::grid
