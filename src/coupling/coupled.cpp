#include "coupling/coupled.h"

namespace wfire::coupling {

namespace {
fire::FuelMap uniform_fuel_for(const MeshPairing& pair, int category) {
  return fire::uniform_fuel(pair.fire.nx, pair.fire.ny, category);
}
}  // namespace

CoupledModel::CoupledModel(const grid::Grid3D& atmos_grid,
                           const atmos::AmbientProfile& ambient,
                           int fuel_category, CoupledOptions opt)
    : CoupledModel(atmos_grid, ambient,
                   uniform_fuel_for(make_pairing(atmos_grid, opt.refine),
                                    fuel_category),
                   util::Array2D<double>(atmos_grid.nx * opt.refine,
                                         atmos_grid.ny * opt.refine, 0.0),
                   opt) {}

CoupledModel::CoupledModel(const grid::Grid3D& atmos_grid,
                           const atmos::AmbientProfile& ambient,
                           fire::FuelMap fuel, util::Array2D<double> terrain,
                           CoupledOptions opt)
    : pair_(make_pairing(atmos_grid, opt.refine)),
      atmos_(atmos_grid, ambient, opt.atmos_opt),
      fire_(pair_.fire, std::move(fuel), std::move(terrain), opt.fire_opt),
      inserter_(atmos_grid, opt.flux),
      two_way_(opt.two_way),
      wind_u_(pair_.fire.nx, pair_.fire.ny, 0.0),
      wind_v_(pair_.fire.nx, pair_.fire.ny, 0.0),
      sens_coarse_(atmos_grid.nx, atmos_grid.ny, 0.0),
      lat_coarse_(atmos_grid.nx, atmos_grid.ny, 0.0),
      theta_src_(atmos_grid.nx, atmos_grid.ny, atmos_grid.nz, 0.0),
      qv_src_(atmos_grid.nx, atmos_grid.ny, atmos_grid.nz, 0.0) {}

void CoupledModel::ignite(const std::vector<levelset::Ignition>& ignitions) {
  fire_.ignite(ignitions);
}

CoupledStepInfo CoupledModel::step(double dt) {
  CoupledStepInfo info;
  step(dt, info);
  return info;
}

void CoupledModel::step(double dt, CoupledStepInfo& info) {
  // 1. Atmosphere -> fire: sample near-ground wind on the fire mesh.
  sample_ground_wind(atmos_.grid(), atmos_.state(), pair_, wind_u_, wind_v_);

  // 2. Advance the fire with those winds.
  fire_.step_into(dt, wind_u_, wind_v_, info.fire);
  info.fire_cfl = info.fire.step.cfl;

  // 3. Fire -> atmosphere: aggregate fluxes and build decay-profile sources.
  if (two_way_) {
    aggregate_flux(pair_, info.fire.sensible_flux, sens_coarse_);
    aggregate_flux(pair_, info.fire.latent_flux, lat_coarse_);
    inserter_.insert(sens_coarse_, lat_coarse_, theta_src_, qv_src_);
    atmos_.set_forcing(&theta_src_, &qv_src_);
  } else {
    atmos_.set_forcing(nullptr, nullptr);
  }

  // 4. Advance the atmosphere.
  info.atmos = atmos_.step(dt);
}

}  // namespace wfire::coupling
