// Atmosphere (WrfLite) tests: Poisson solvers against manufactured
// solutions, multigrid components, projection to divergence-free, buoyant
// plume response to heat forcing, and CFL diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "atmos/dynamics.h"
#include "atmos/model.h"
#include "atmos/multigrid.h"
#include "atmos/poisson.h"

using namespace wfire::atmos;
using wfire::grid::Grid3D;

namespace {

// Manufactured periodic-x/y, Neumann-z solution:
//   phi = cos(2 pi i / nx) * cos(2 pi j / ny) * cos(pi (k + 0.5) / nz)
// has d(phi)/dz = 0 at the z boundaries and zero mean.
Field3 manufactured_phi(const Grid3D& g) {
  Field3 phi(g.nx, g.ny, g.nz);
  for (int k = 0; k < g.nz; ++k)
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i)
        phi(i, j, k) = std::cos(2 * M_PI * i / g.nx) *
                       std::cos(2 * M_PI * j / g.ny) *
                       std::cos(M_PI * (k + 0.5) / g.nz);
  return phi;
}

}  // namespace

TEST(Poisson, LaplacianOfConstantIsZero) {
  const Grid3D g(8, 8, 8, 50.0, 50.0, 50.0);
  Field3 phi(8, 8, 8, 3.0), out;
  apply_laplacian(g, phi, out);
  EXPECT_LT(wfire::util::max_abs(out), 1e-12);
}

TEST(Poisson, SorSolvesManufactured) {
  const Grid3D g(16, 16, 8, 60.0, 60.0, 100.0);
  const Field3 phi_exact = manufactured_phi(g);
  Field3 rhs;
  apply_laplacian(g, phi_exact, rhs);
  Field3 phi(g.nx, g.ny, g.nz, 0.0);
  SorOptions opt;
  opt.tol = 1e-10;
  opt.max_iters = 20000;
  const SolveStats st = solve_sor(g, rhs, phi, opt);
  EXPECT_TRUE(st.converged);
  // Compare up to the (removed) mean.
  double mean_exact = 0;
  for (const double v : phi_exact) mean_exact += v;
  mean_exact /= static_cast<double>(phi_exact.size());
  double max_err = 0;
  for (int k = 0; k < g.nz; ++k)
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i)
        max_err = std::max(max_err, std::abs(phi(i, j, k) -
                                             (phi_exact(i, j, k) - mean_exact)));
  EXPECT_LT(max_err, 1e-5);
}

TEST(Multigrid, RestrictionAveragesProlongationInjects) {
  Field3 fine(4, 4, 4);
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) fine(i, j, k) = i + 10 * j + 100 * k;
  Field3 coarse(2, 2, 2);
  mg_restrict(fine, coarse);
  EXPECT_NEAR(coarse(0, 0, 0), (0 + 1 + 10 + 11 + 100 + 101 + 110 + 111) / 8.0,
              1e-12);
  Field3 back(4, 4, 4, 0.0);
  mg_prolong_add(coarse, back);
  EXPECT_NEAR(back(0, 0, 0), coarse(0, 0, 0), 1e-12);
  EXPECT_NEAR(back(1, 1, 1), coarse(0, 0, 0), 1e-12);
}

TEST(Multigrid, SolvesManufacturedFasterThanSor) {
  const Grid3D g(32, 32, 16, 60.0, 60.0, 100.0);
  const Field3 phi_exact = manufactured_phi(g);
  Field3 rhs;
  apply_laplacian(g, phi_exact, rhs);

  Multigrid mg(g);
  EXPECT_GE(mg.levels(), 3);
  Field3 phi(g.nx, g.ny, g.nz, 0.0);
  const SolveStats st = mg.solve(rhs, phi);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.iterations, 30);  // V-cycles, vs thousands of SOR sweeps

  Field3 r(g.nx, g.ny, g.nz);
  EXPECT_LT(residual(g, phi, rhs, r), 1e-7);
}

TEST(Multigrid, HandlesNonCoarsenableGrid) {
  const Grid3D g(12, 12, 6, 60.0, 60.0, 100.0);  // coarsens once (6,6,3->odd)
  Multigrid mg(g);
  EXPECT_GE(mg.levels(), 1);
  Field3 rhs(g.nx, g.ny, g.nz, 0.0);
  rhs(3, 3, 2) = 1.0;
  rhs(8, 8, 3) = -1.0;
  Field3 phi;
  const SolveStats st = mg.solve(rhs, phi);
  EXPECT_TRUE(st.converged);
}

TEST(State, AmbientInitializationDivergenceFree) {
  const Grid3D g(16, 16, 8, 60.0, 60.0, 100.0);
  AmbientProfile amb;
  amb.wind_u = 5.0;
  AtmosState s;
  initialize_ambient(g, amb, s);
  EXPECT_LT(max_divergence(g, s), 1e-12);
  // Log profile: wind increases with height up to the reference level.
  EXPECT_LT(s.u(0, 0, 0), s.u(0, 0, 5));
}

TEST(State, CflScalesWithWind) {
  const Grid3D g(8, 8, 8, 60.0, 60.0, 60.0);
  AmbientProfile amb;
  amb.wind_u = 6.0;
  AtmosState s;
  initialize_ambient(g, amb, s);
  const double c1 = advective_cfl(g, s, 0.5);
  const double c2 = advective_cfl(g, s, 1.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-12);
  EXPECT_LE(c1, 6.0 * 0.5 / 60.0 + 1e-12);
}

TEST(WrfLite, ProjectionEnforcesDivergenceFree) {
  const Grid3D g(16, 16, 8, 60.0, 60.0, 100.0);
  AmbientProfile amb;
  WrfLite model(g, amb);
  // Inject a divergent velocity bump.
  model.state().u(8, 8, 2) += 3.0;
  model.state().w(8, 8, 3) += 1.0;
  EXPECT_GT(max_divergence(g, model.state()), 1e-3);
  model.project();
  EXPECT_LT(max_divergence(g, model.state()), 1e-6);
}

TEST(WrfLite, AmbientFlowIsSteady) {
  const Grid3D g(16, 16, 8, 60.0, 60.0, 100.0);
  AmbientProfile amb;
  amb.wind_u = 3.0;
  WrfLiteOptions opt;
  WrfLite model(g, amb, opt);
  const double u_before = model.state().u(8, 8, 4);
  for (int s = 0; s < 10; ++s) model.step(0.5);
  // No forcing: the ambient log profile stays put (small numerical drift).
  EXPECT_NEAR(model.state().u(8, 8, 4), u_before, 0.15);
  EXPECT_LT(wfire::util::max_abs(model.state().w), 0.05);
  EXPECT_NEAR(model.time(), 5.0, 1e-9);
}

TEST(WrfLite, HeatForcingDrivesUpdraft) {
  // The paper's coupling mechanism: surface heating must create a plume
  // (updraft above the heat source and near-surface convergence).
  const Grid3D g(16, 16, 8, 60.0, 60.0, 60.0);
  AmbientProfile amb;
  WrfLite model(g, amb);

  wfire::util::Array3D<double> theta_src(g.nx, g.ny, g.nz, 0.0);
  // 0.5 K/s heating in a 2x2 column near the surface (strong fire).
  for (int k = 0; k < 2; ++k)
    for (int j = 7; j <= 8; ++j)
      for (int i = 7; i <= 8; ++i) theta_src(i, j, k) = 0.5;
  model.set_forcing(&theta_src, nullptr);
  for (int s = 0; s < 60; ++s) model.step(0.5);

  // Updraft above the heated column.
  double wmax_center = 0;
  for (int k = 1; k < g.nz; ++k)
    wmax_center = std::max(wmax_center, model.state().w(8, 8, k));
  EXPECT_GT(wmax_center, 0.3);

  // Near-surface convergence: flow toward the column at the lowest level.
  const double u_left = model.state().u(6, 8, 0);   // west of column
  const double u_right = model.state().u(11, 8, 0); // east of column
  EXPECT_GT(u_left, 0.0);
  EXPECT_LT(u_right, 0.0);

  // theta' grew where heated.
  EXPECT_GT(model.state().theta(8, 8, 0), 1.0);
}

TEST(WrfLite, MoistureForcingRaisesQv) {
  const Grid3D g(8, 8, 8, 60.0, 60.0, 60.0);
  AmbientProfile amb;
  WrfLite model(g, amb);
  wfire::util::Array3D<double> qv_src(g.nx, g.ny, g.nz, 0.0);
  qv_src(4, 4, 0) = 1e-5;
  model.set_forcing(nullptr, &qv_src);
  for (int s = 0; s < 20; ++s) model.step(0.5);
  EXPECT_GT(model.state().qv(4, 4, 0), 1e-5);
}

TEST(WrfLite, StepInfoReportsDiagnostics) {
  const Grid3D g(8, 8, 8, 60.0, 60.0, 60.0);
  AmbientProfile amb;
  amb.wind_u = 3.0;
  WrfLite model(g, amb);
  const WrfLiteStepInfo info = model.step(0.5);
  EXPECT_GT(info.cfl, 0.0);
  EXPECT_LT(info.cfl, 1.0);
  EXPECT_LT(info.max_div_after, 1e-5);
  EXPECT_GT(info.mg_cycles, 0);
}

TEST(Dynamics, ScalarAdvectionConservesIntegral) {
  // Flux-form upwind advection in a periodic divergence-free flow conserves
  // the scalar integral (no sources, no diffusion loss through walls).
  const Grid3D g(16, 16, 8, 50.0, 50.0, 50.0);
  AmbientProfile amb;
  amb.wind_u = 4.0;
  amb.roughness_z0 = 1e-9;  // near-uniform profile
  DynamicsParams p;
  p.eddy_diffusivity = 0.0;
  p.eddy_viscosity = 0.0;
  p.drag_coeff = 0.0;
  p.sponge_coeff = 0.0;
  p.nudge_coeff = 0.0;

  AtmosState s;
  initialize_ambient(g, amb, s);
  s.theta(8, 8, 4) = 5.0;  // blob
  double before = 0;
  for (const double v : s.theta) before += v;

  Tendencies t(g);
  for (int step = 0; step < 40; ++step) {
    compute_tendencies(g, amb, p, s, nullptr, nullptr, t);
    apply_tendencies(g, t, 0.5, s);
  }
  double after = 0;
  for (const double v : s.theta) after += v;
  EXPECT_NEAR(after, before, 1e-8 * std::abs(before) + 1e-8);
}
