// Monte Carlo scenario sweep over the scenario server: K Gaussian
// perturbations of one base ScenarioSpec (current observation as the mean,
// configurable variance — the Adhikari et al. transformation, SNIPPETS.md
// #3), admitted as a fleet to one serve::ScenarioServer and reduced into a
// BurnProbabilityGrid as members finish.
//
// Reproducibility contract: the whole sweep is a pure function of
// (base, perturbation) — member k's spec comes from the counter-based
// util::Rng::stream(pert.seed, k), its trajectory from the server's own
// pure-function-of-spec contract, and the reduction is arrival-order-free.
// The same sweep on any pool width, admission threshold, or thread count
// produces a bitwise-identical product; product_key() therefore hashes only
// the fields that determine the product, never the execution knobs.
//
// Threading: run() owns a private server fleet for its duration; member
// reductions happen on serving threads via completion hooks. A SweepDriver
// is single-use-at-a-time (run() is not reentrant); the returned grid is an
// immutable value.
#pragma once

#include <cstdint>

#include "risk/burn_probability.h"
#include "serve/scenario_server.h"

namespace wfire::risk {

// Gaussian perturbation widths around the base spec. Wind perturbs in
// speed/direction space (speed additive in m/s, clamped at 0; direction in
// radians); the fuel scales are lognormal (exp(sigma * z), median 1, always
// positive); ignition centers jitter by an isotropic offset per shape.
struct PerturbationSpec {
  double wind_speed_sigma = 0;  // [m/s]
  double wind_dir_sigma = 0;    // [rad]
  double moisture_sigma = 0;    // lognormal sigma on fuel_moisture_scale
  double burn_time_sigma = 0;   // lognormal sigma on burn_time_scale
  double ignition_jitter = 0;   // [m] std of each shape's center offset
  std::uint64_t seed = 0;       // sweep seed (member k = stream(seed, k))
};

struct SweepOptions {
  int members = 64;             // K, the Monte Carlo sample size
  double horizon = 120.0;       // forecast horizon [s] (advance target)
  // Execution knobs — bitwise-irrelevant to the product (see contract):
  int threads = 0;              // server pool width (<= 0: hardware)
  long inline_cell_steps = -1;  // < 0: server default / WFIRE_SERVE_INLINE
};

// Member k's perturbed spec: a pure function of (base, pert, k). The draw
// order is fixed and independent of which sigmas are zero, so narrowing one
// perturbation axis never reshuffles the others. The member's gust seed is
// derived from the same stream (xor-folded with base.seed), decorrelating
// in-run gusts across members.
[[nodiscard]] serve::ScenarioSpec perturb_member(
    const serve::ScenarioSpec& base, const PerturbationSpec& pert, int k);

// Content hash of everything that determines the product bitwise: the base
// spec's trajectory fields (grid, winds, seed, fuel, ignitions, fire
// options), the perturbation, K and the horizon. Execution knobs (threads,
// admission threshold, realtime pacing) are deliberately excluded.
[[nodiscard]] std::uint64_t product_key(const serve::ScenarioSpec& base,
                                        const PerturbationSpec& pert,
                                        const SweepOptions& opt);

class SweepDriver {
 public:
  SweepDriver(serve::ScenarioSpec base, PerturbationSpec pert,
              SweepOptions opt = {});

  // Admits the K perturbed scenarios to a private server, advances them all
  // to the horizon, folds each finished member into the accumulator from
  // its completion hook, and returns the finalized product (key set).
  // Throws if any member scenario fails.
  [[nodiscard]] BurnProbabilityGrid run();

  // Admission split of the last run() (how the fleet was served).
  [[nodiscard]] long last_inline() const { return last_inline_; }
  [[nodiscard]] long last_pooled() const { return last_pooled_; }

 private:
  serve::ScenarioSpec base_;
  PerturbationSpec pert_;
  SweepOptions opt_;
  long last_inline_ = 0, last_pooled_ = 0;
};

}  // namespace wfire::risk
