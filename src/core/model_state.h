// Helpers tying the assimilable fire state (psi, tig — paper Sec. 3.3) to
// flat vectors, images, and position diagnostics used by the assimilation
// cycle and its benches.
#pragma once

#include "fire/model.h"
#include "la/matrix.h"

namespace wfire::core {

// Flattens (psi, tig) into one vector [psi..., tig...]. The unburned marker
// +inf in tig is mapped to `tig_cap` (a large finite sentinel) so the EnKF
// linear algebra stays finite; unpack restores +inf above 0.5 * tig_cap.
inline constexpr double kTigCap = 1.0e6;

[[nodiscard]] la::Vector pack_state(const fire::FireState& s,
                                    double tig_cap = kTigCap);

void unpack_state(const la::Vector& v, int nx, int ny, double time,
                  fire::FireState& out, double tig_cap = kTigCap);

// Centroid (x, y) of the burning region {psi < 0}, area-weighted on nodes;
// returns false if nothing burns. The Fig. 4 position-error metric.
bool burning_centroid(const grid::Grid2D& g, const util::Array2D<double>& psi,
                      double& cx, double& cy);

// Position error between two states: distance between burning centroids
// [m]; +inf when either has no fire.
[[nodiscard]] double centroid_distance(const grid::Grid2D& g,
                                       const util::Array2D<double>& psi_a,
                                       const util::Array2D<double>& psi_b);

// Symmetric-difference area between burned regions [m^2] (a stricter shape
// metric than the centroid distance).
[[nodiscard]] double symmetric_difference_area(
    const grid::Grid2D& g, const util::Array2D<double>& psi_a,
    const util::Array2D<double>& psi_b);

}  // namespace wfire::core
