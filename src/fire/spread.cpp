#include "fire/spread.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::fire {

double spread_rate(const FuelCategory& fuel, double vn, double slope_n) {
  const double wind_term = vn > 0 ? fuel.a * std::pow(vn, fuel.b) : 0.0;
  const double s = fuel.R0 + wind_term + fuel.d * slope_n;
  return std::clamp(s, 0.0, fuel.Smax);
}

void spread_field(const grid::Grid2D& g, const util::Array2D<double>& psi,
                  const FuelMap& fuel, const SpreadInputs& in,
                  const util::Array2D<double>& fuel_frac,
                  double min_fuel_frac, util::Array2D<double>& speed) {
  SpreadScratch scratch;
  spread_field(g, psi, fuel, in, fuel_frac, min_fuel_frac, speed, scratch);
}

void spread_field(const grid::Grid2D& g, const util::Array2D<double>& psi,
                  const FuelMap& fuel, const SpreadInputs& in,
                  const util::Array2D<double>& fuel_frac,
                  double min_fuel_frac, util::Array2D<double>& speed,
                  SpreadScratch& scratch) {
  if (!in.wind_u || !in.wind_v)
    throw std::invalid_argument("spread_field: wind fields required");
  if (!in.wind_u->same_shape(psi) || !in.wind_v->same_shape(psi))
    throw std::invalid_argument("spread_field: wind shape mismatch");
  if (!speed.same_shape(psi))
    speed = util::Array2D<double>(psi.nx(), psi.ny());

  util::Array2D<double>& nx_f = scratch.nx_f;
  util::Array2D<double>& ny_f = scratch.ny_f;
  levelset::normals(g, psi, nx_f, ny_f);

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      const FuelCategory* cat = fuel.at(i, j);
      if (cat == nullptr || fuel_frac(i, j) <= min_fuel_frac) {
        speed(i, j) = 0.0;
        continue;
      }
      const double nx = nx_f(i, j), ny = ny_f(i, j);
      const double vn = (*in.wind_u)(i, j) * nx + (*in.wind_v)(i, j) * ny;
      double slope_n = 0.0;
      if (in.dzdx && in.dzdy)
        slope_n = (*in.dzdx)(i, j) * nx + (*in.dzdy)(i, j) * ny;
      speed(i, j) = spread_rate(*cat, vn, slope_n);
    }
  }
}

}  // namespace wfire::fire
