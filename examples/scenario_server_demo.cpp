// The multi-fire scenario server under load: one in-process service stepping
// many independent fire scenarios concurrently on a thread pool. Small
// advance requests are served inline on the caller thread (admission
// control), big ones queue to the pool; a runtime ignition request lights a
// second fire mid-run; and a crash-recovery checkpoint taken halfway is
// restored and advanced to the end, reproducing the uninterrupted scenario
// bitwise.
//
// Run:  ./scenario_server_demo [scenarios=32] [minutes=6] [threads=4]
//                              [ckpt_dir=serve_ckpt]
#include <cmath>
#include <cstdio>
#include <vector>

#include "serve/scenario_server.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int n_scenarios = cfg.get_int("scenarios", 32);
  const double minutes = cfg.get_double("minutes", 6.0);
  const double t_half = minutes * 30.0, t_end = minutes * 60.0;

  serve::ServerOptions sopt;
  sopt.threads = cfg.get_int("threads", 4);
  sopt.checkpoint_dir = cfg.get_string("ckpt_dir", "serve_ckpt");
  serve::ScenarioServer server(sopt);

  // A mixed fleet: three grid sizes so the default admission threshold
  // routes the small fires inline and the large ones to the pool.
  std::vector<serve::ScenarioId> ids;
  for (int k = 0; k < n_scenarios; ++k) {
    serve::ScenarioSpec spec;
    spec.nx = spec.ny = 41 + 20 * (k % 3);
    spec.dx = spec.dy = 6.0;
    spec.wind_u = 2.0 + 0.1 * (k % 5);
    spec.wind_v = 0.5;
    spec.wind_jitter = 0.6;
    spec.seed = 1000 + static_cast<std::uint64_t>(k);
    const double cx = 0.3 * (spec.nx - 1) * spec.dx;
    const double cy = 0.5 * (spec.ny - 1) * spec.dy;
    spec.ignitions = {
        levelset::Ignition{levelset::CircleIgnition{cx, cy, 15.0, 0.0}}};
    ids.push_back(server.admit(spec));
  }
  std::printf("admitted %d scenarios on %d pool threads "
              "(inline threshold %ld cell-steps)\n",
              server.scenarios(), sopt.threads > 0 ? sopt.threads : 0,
              server.options().inline_cell_steps);

  // Phase 1: everyone to the halfway mark. request_advance() returns true
  // when admission control served the request on this thread.
  int served_inline = 0;
  for (const serve::ScenarioId id : ids)
    if (server.request_advance(id, t_half)) ++served_inline;
  server.wait_all();
  std::printf("phase 1: all at t=%.0f s (%d of %d requests served inline)\n",
              t_half, served_inline, n_scenarios);

  // Crash-recovery point for scenario 0, then a runtime ignition request: a
  // second fire that lights itself a little into phase 2.
  server.checkpoint_now(ids[0]);
  const std::string ckpt = server.checkpoint_path(ids[0]);
  server.request_ignite(
      ids[0], levelset::Ignition{levelset::CircleIgnition{
                  180.0, 60.0, 10.0, t_half + 10.0}});

  // Phase 2: everyone to the end.
  for (const serve::ScenarioId id : ids) server.request_advance(id, t_end);
  server.wait_all();

  std::printf("%4s %6s %8s %10s %14s %8s\n", "id", "grid", "steps",
              "burned[ha]", "route(in/pool)", "queued");
  double total_ha = 0;
  for (const serve::ScenarioId id : ids) {
    const serve::ScenarioStatus st = server.status(id);
    total_ha += st.burned_area / 1e4;
    std::printf("%4d %3dx%-3d %7ld %10.3f %8ld/%-5ld %8d\n", id,
                41 + 20 * (id % 3), 41 + 20 * (id % 3), st.steps,
                st.burned_area / 1e4, st.inline_served, st.pooled_served,
                st.queued_requests);
  }

  // Kill/restore: resume scenario 0 from the halfway checkpoint, replay the
  // same ignition request, advance to the end, and compare bitwise.
  const serve::ScenarioId rid = server.restore(ckpt);
  server.request_ignite(
      rid, levelset::Ignition{levelset::CircleIgnition{
               180.0, 60.0, 10.0, t_half + 10.0}});
  server.request_advance(rid, t_end);
  server.wait(rid);
  const fire::FireState& a = server.state(ids[0]);
  const fire::FireState& b = server.state(rid);
  double max_diff = 0;
  for (std::size_t i = 0; i < a.psi.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(a.psi.data()[i] - b.psi.data()[i]));
  std::printf("restored scenario %d from %s: advanced %.0f -> %.0f s, "
              "max |psi - psi_uninterrupted| = %.3g m\n",
              rid, ckpt.c_str(), t_half, t_end, max_diff);

  // Machine-readable summary for the golden-value smoke check. Admission
  // routes and the restore comparison are deterministic; wall times are not
  // and stay out of the golden file.
  std::printf("SMOKE scenarios=%d\n", server.scenarios());
  std::printf("SMOKE inline_phase1=%d\n", served_inline);
  std::printf("SMOKE total_burned_ha=%.6f\n", total_ha);
  std::printf("SMOKE burned0_ha=%.6f\n",
              server.status(ids[0]).burned_area / 1e4);
  std::printf("SMOKE restore_max_diff_m=%.9f\n", max_diff);
  return 0;
}
