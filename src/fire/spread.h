// The semi-empirical spread law (paper Sec. 2.1):
//   S = R0 + a (v . n)^b + d (grad z . n),   clipped to 0 <= S <= Smax,
// where n is the outward fireline normal from the level set function.
// The wind term uses max(v . n, 0): backing fire is carried by R0 alone
// (a negative fractional power would be undefined).
#pragma once

#include "fire/fuel.h"
#include "levelset/godunov.h"

namespace wfire::fire {

// Pointwise law; vn = v . n [m/s], slope_n = grad z . n (dimensionless).
[[nodiscard]] double spread_rate(const FuelCategory& fuel, double vn,
                                 double slope_n);

// Inputs for the field evaluation; all arrays are node fields on `g`.
struct SpreadInputs {
  const util::Array2D<double>* wind_u = nullptr;  // [m/s]
  const util::Array2D<double>* wind_v = nullptr;  // [m/s]
  const util::Array2D<double>* dzdx = nullptr;    // terrain gradient
  const util::Array2D<double>* dzdy = nullptr;
};

// Normal-field buffers reused across spread_field calls; shaped on first
// use. Callers on an allocation-free stepping path hold one per model.
struct SpreadScratch {
  util::Array2D<double> nx_f, ny_f;
};

// Evaluates S at every node from psi-derived normals. Nodes with no fuel
// (index < 0) or exhausted fuel (fuel_frac <= min_fuel_frac) get S = 0,
// so firebreaks and burned-out regions stop the front.
void spread_field(const grid::Grid2D& g, const util::Array2D<double>& psi,
                  const FuelMap& fuel, const SpreadInputs& in,
                  const util::Array2D<double>& fuel_frac,
                  double min_fuel_frac, util::Array2D<double>& speed);

// Same evaluation with caller-held normal buffers: allocation-free once the
// scratch is shaped.
void spread_field(const grid::Grid2D& g, const util::Array2D<double>& psi,
                  const FuelMap& fuel, const SpreadInputs& in,
                  const util::Array2D<double>& fuel_frac,
                  double min_fuel_frac, util::Array2D<double>& speed,
                  SpreadScratch& scratch);

}  // namespace wfire::fire
