#include "scene/flame.h"

#include <algorithm>
#include <cmath>

namespace wfire::scene {

double byram_flame_length(double I_kw_per_m, const FlameParams& p) {
  if (I_kw_per_m <= 0) return 0.0;
  return p.byram_a * std::pow(I_kw_per_m, p.byram_b);
}

FlameVoxels build_flame_voxels(const fire::FireModel& model,
                               const util::Array2D<double>& wind_u,
                               const util::Array2D<double>& wind_v,
                               const FlameParams& p) {
  const grid::Grid2D& g = model.grid();
  const fire::FireState& st = model.state();

  // First pass: flame length per cell, to size the voxel grid.
  util::Array2D<double> flame_len(g.nx, g.ny, 0.0);
  double max_len = 0;
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      const double ti = st.tig(i, j);
      if (ti == fire::kNotIgnited) continue;
      const double age = st.time - ti;
      if (age < 0 || age > p.active_age) continue;
      const fire::FuelCategory* cat = model.fuel().at(i, j);
      if (cat == nullptr) continue;
      // Fireline intensity: heat release per unit area times flaming depth.
      // Depth ~ spread rate x mass-loss time; spread rate ~ R0 + wind term
      // evaluated in the wind direction (head-fire estimate).
      const double wind_speed = std::hypot(wind_u(i, j), wind_v(i, j));
      const double ros = fire::spread_rate(*cat, wind_speed, 0.0);
      const double depth = std::max(ros * cat->tau, g.dx);
      // Area heat release rate at this age [W/m^2].
      const double q = cat->w0 * cat->h * std::exp(-age / cat->tau) / cat->tau;
      const double intensity_kw = q * depth / 1000.0;  // [kW/m]
      if (intensity_kw < p.min_intensity) continue;
      flame_len(i, j) = byram_flame_length(intensity_kw, p);
      max_len = std::max(max_len, flame_len(i, j));
    }
  }

  FlameVoxels fv;
  fv.dx = g.dx;
  fv.dy = g.dy;
  fv.dz = p.voxel_dz;
  fv.x0 = g.x0;
  fv.y0 = g.y0;
  fv.absorption = p.absorption;
  fv.max_flame_length = max_len;
  const int nz = std::max(1, static_cast<int>(std::ceil(
                                 1.5 * max_len / p.voxel_dz)));  // tilt room
  fv.temperature = util::Array3D<double>(g.nx, g.ny, nz, 0.0);
  if (max_len == 0) return fv;

  // Second pass: fill tilted flame columns.
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      const double L = flame_len(i, j);
      if (L <= 0) continue;
      const double uw = wind_u(i, j), vw = wind_v(i, j);
      const double buoy = std::sqrt(9.81 * L);
      // Tilt: horizontal displacement per unit height, capped at 60 degrees.
      const double tx = std::clamp(uw / buoy, -1.7, 1.7);
      const double ty = std::clamp(vw / buoy, -1.7, 1.7);
      const int ksteps = std::max(1, static_cast<int>(std::ceil(L / fv.dz)));
      for (int k = 0; k < ksteps && k < fv.temperature.nz(); ++k) {
        const double z = (k + 0.5) * fv.dz;
        if (z > L) break;
        const int ii = i + static_cast<int>(std::lround(tx * z / g.dx));
        const int jj = j + static_cast<int>(std::lround(ty * z / g.dy));
        if (!fv.temperature.contains(ii, jj, k)) continue;
        // Slight cooling with height along the flame.
        const double T = p.T_flame * (1.0 - 0.25 * z / std::max(L, 1e-9));
        fv.temperature(ii, jj, k) = std::max(fv.temperature(ii, jj, k), T);
      }
    }
  }
  return fv;
}

}  // namespace wfire::scene
