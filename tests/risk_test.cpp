// Risk-layer tests: the order-free burn-probability reduction, sweep
// determinism across pool widths (the product is a pure function of
// (base, perturbation) — execution knobs are bitwise-irrelevant), the
// single-flight product cache, and risk::score() on hand-constructed grids
// with known confusion matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/data_pool.h"
#include "fire/terrain.h"
#include "risk/product_cache.h"
#include "risk/sweep.h"

using namespace wfire;
using namespace wfire::risk;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

serve::ScenarioSpec sweep_base(std::uint64_t seed = 7) {
  serve::ScenarioSpec spec;
  spec.nx = 21;
  spec.ny = 21;
  spec.dx = 6.0;
  spec.dy = 6.0;
  spec.dt = 0.5;
  spec.wind_u = 2.0;
  spec.wind_v = 0.5;
  spec.wind_jitter = 0.5;  // gust streams active, so seeds matter
  spec.seed = seed;
  spec.fire.reinit_interval = 8;
  spec.ignitions = {
      levelset::Ignition{levelset::CircleIgnition{60.0, 60.0, 15.0, 0.0}}};
  return spec;
}

PerturbationSpec sweep_pert() {
  PerturbationSpec pert;
  pert.wind_speed_sigma = 0.6;
  pert.wind_dir_sigma = 0.25;
  pert.moisture_sigma = 0.2;
  pert.burn_time_sigma = 0.2;
  pert.ignition_jitter = 5.0;
  pert.seed = 1234;
  return pert;
}

}  // namespace

// ---------------------------------------------------------------------------
// score() on hand-constructed grids: every confusion-matrix cell exercised
// with counts small enough to verify by hand.

TEST(Score, HandConstructedGridHasKnownF1) {
  BurnProbabilityGrid grid;
  grid.nx = 2;
  grid.ny = 2;
  grid.dx = grid.dy = 6.0;
  grid.horizon = 100.0;
  grid.members = 1;
  grid.probability = util::Array2D<double>(2, 2, 0.0);
  grid.probability(0, 0) = 1.0;  // burned in truth -> tp
  grid.probability(1, 0) = 1.0;  // unburned in truth -> fp
  // (0,1) predicted cold but burned -> fn; (1,1) cold both -> tn.

  util::Array2D<double> ref(2, 2, kInf);
  ref(0, 0) = 0.0;
  ref(0, 1) = 10.0;

  const Scores s = score(grid, 0.5, ref, 100.0);
  EXPECT_EQ(s.tp, 1);
  EXPECT_EQ(s.fp, 1);
  EXPECT_EQ(s.fn, 1);
  EXPECT_EQ(s.tn, 1);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(Score, PerfectPredictionScoresOne) {
  BurnProbabilityGrid grid;
  grid.nx = 3;
  grid.ny = 1;
  grid.members = 1;
  grid.probability = util::Array2D<double>(3, 1, 0.0);
  grid.probability(0, 0) = 1.0;
  grid.probability(2, 0) = 0.9;

  util::Array2D<double> ref(3, 1, kInf);
  ref(0, 0) = 5.0;
  ref(2, 0) = 40.0;

  const Scores s = score(grid, 0.5, ref, 60.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(Score, EmptyPredictionIsZeroNotNaN) {
  BurnProbabilityGrid grid;
  grid.nx = 2;
  grid.ny = 1;
  grid.members = 1;
  grid.probability = util::Array2D<double>(2, 1, 0.0);
  util::Array2D<double> ref(2, 1, 0.0);  // everything burned in truth

  const Scores s = score(grid, 0.5, ref, 10.0);
  EXPECT_EQ(s.tp, 0);
  EXPECT_EQ(s.fn, 2);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(Score, ReferenceShapeMismatchThrows) {
  BurnProbabilityGrid grid;
  grid.nx = 2;
  grid.ny = 2;
  grid.probability = util::Array2D<double>(2, 2, 0.0);
  util::Array2D<double> ref(3, 2, kInf);
  EXPECT_THROW((void)score(grid, 0.5, ref, 10.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The streaming reduction: integer counts, member-indexed arrival slots,
// exact quantiles.

TEST(Accumulator, ReductionCountsArrivalsAndQuantiles) {
  BurnProbabilityAccumulator acc(2, 1, 6.0, 6.0, 3, 100.0);

  util::Array2D<double> m0(2, 1, kInf), m1(2, 1, kInf), m2(2, 1, kInf);
  m0(0, 0) = 10.0;
  m1(0, 0) = 20.0;
  m1(1, 0) = 50.0;
  m2(0, 0) = 30.0;
  m2(1, 0) = 200.0;  // past the horizon: not burned at the forecast time

  // Arrival order is arbitrary by contract.
  acc.add_member(2, m2);
  acc.add_member(0, m0);
  EXPECT_EQ(acc.members_added(), 2);
  acc.add_member(1, m1);

  const BurnProbabilityGrid grid = acc.finalize();
  EXPECT_EQ(grid.burned_count(0, 0), 3);
  EXPECT_EQ(grid.burned_count(1, 0), 1);
  EXPECT_DOUBLE_EQ(grid.probability(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grid.probability(1, 0), 1.0 / 3.0);

  EXPECT_DOUBLE_EQ(grid.arrival(0, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(grid.arrival(0, 0, 1), 20.0);
  EXPECT_DOUBLE_EQ(grid.arrival(0, 0, 2), 30.0);
  EXPECT_DOUBLE_EQ(grid.arrival(1, 0, 1), 50.0);
  EXPECT_TRUE(std::isinf(grid.arrival(1, 0, 0)));
  EXPECT_TRUE(std::isinf(grid.arrival(1, 0, 2)));

  EXPECT_DOUBLE_EQ(grid.arrival_quantile(0.0)(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(grid.arrival_quantile(0.5)(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(grid.arrival_quantile(1.0)(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(grid.arrival_quantile(0.5)(1, 0), 50.0);

  EXPECT_NEAR(grid.expected_burned_area(), (1.0 + 1.0 / 3.0) * 36.0, 1e-12);
}

TEST(Accumulator, GuardsRejectBadFolds) {
  BurnProbabilityAccumulator acc(2, 2, 6.0, 6.0, 2, 50.0);
  util::Array2D<double> tig(2, 2, kInf);

  EXPECT_THROW(acc.add_member(-1, tig), std::out_of_range);
  EXPECT_THROW(acc.add_member(2, tig), std::out_of_range);
  EXPECT_THROW(acc.finalize(), std::logic_error);  // nothing added yet

  acc.add_member(0, tig);
  EXPECT_THROW(acc.add_member(0, tig), std::logic_error);  // already added
  EXPECT_THROW(acc.finalize(), std::logic_error);          // one missing

  util::Array2D<double> wrong(3, 2, kInf);
  EXPECT_THROW(acc.add_member(1, wrong), std::invalid_argument);

  acc.add_member(1, tig);
  EXPECT_NO_THROW((void)acc.finalize());
  EXPECT_THROW(BurnProbabilityAccumulator(0, 2, 6.0, 6.0, 2, 50.0),
               std::invalid_argument);
  EXPECT_THROW(BurnProbabilityAccumulator(2, 2, 6.0, 6.0, 0, 50.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// perturb_member: a pure function of (base, pert, k) with a fixed draw order.

TEST(Sweep, PerturbMemberIsPure) {
  const serve::ScenarioSpec base = sweep_base();
  const PerturbationSpec pert = sweep_pert();

  const serve::ScenarioSpec a = perturb_member(base, pert, 3);
  const serve::ScenarioSpec b = perturb_member(base, pert, 3);
  EXPECT_EQ(a.wind_u, b.wind_u);
  EXPECT_EQ(a.wind_v, b.wind_v);
  EXPECT_EQ(a.fuel_moisture_scale, b.fuel_moisture_scale);
  EXPECT_EQ(a.burn_time_scale, b.burn_time_scale);
  EXPECT_EQ(a.seed, b.seed);
  const auto& ca = std::get<levelset::CircleIgnition>(a.ignitions[0]);
  const auto& cb = std::get<levelset::CircleIgnition>(b.ignitions[0]);
  EXPECT_EQ(ca.cx, cb.cx);
  EXPECT_EQ(ca.cy, cb.cy);

  const serve::ScenarioSpec c = perturb_member(base, pert, 4);
  EXPECT_NE(a.wind_u, c.wind_u);
  EXPECT_NE(a.seed, c.seed);

  EXPECT_THROW(perturb_member(base, pert, -1), std::invalid_argument);
}

TEST(Sweep, ZeroSigmasLeaveTheBaseUntouched) {
  const serve::ScenarioSpec base = sweep_base();
  PerturbationSpec none;  // all sigmas zero
  none.seed = 99;

  const serve::ScenarioSpec spec = perturb_member(base, none, 0);
  // Wind round-trips through speed/direction space: equal up to rounding.
  EXPECT_NEAR(spec.wind_u, base.wind_u, 1e-12);
  EXPECT_NEAR(spec.wind_v, base.wind_v, 1e-12);
  EXPECT_EQ(spec.fuel_moisture_scale, base.fuel_moisture_scale);
  EXPECT_EQ(spec.burn_time_scale, base.burn_time_scale);
  const auto& c = std::get<levelset::CircleIgnition>(spec.ignitions[0]);
  const auto& c0 = std::get<levelset::CircleIgnition>(base.ignitions[0]);
  EXPECT_EQ(c.cx, c0.cx);
  EXPECT_EQ(c.cy, c0.cy);
  // The gust seed is still re-derived (members must decorrelate even with
  // no spec perturbation at all).
  EXPECT_NE(spec.seed, base.seed);
}

TEST(Sweep, ZeroingOneAxisLeavesTheOthersDraws) {
  // The draw order is fixed and independent of which sigmas are zero:
  // turning off the moisture axis must not reshuffle wind or burn time.
  const serve::ScenarioSpec base = sweep_base();
  const PerturbationSpec full = sweep_pert();
  PerturbationSpec no_moist = full;
  no_moist.moisture_sigma = 0;

  const serve::ScenarioSpec a = perturb_member(base, full, 5);
  const serve::ScenarioSpec b = perturb_member(base, no_moist, 5);
  EXPECT_EQ(a.wind_u, b.wind_u);
  EXPECT_EQ(a.wind_v, b.wind_v);
  EXPECT_EQ(a.burn_time_scale, b.burn_time_scale);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_NE(a.fuel_moisture_scale, b.fuel_moisture_scale);
  EXPECT_EQ(b.fuel_moisture_scale, base.fuel_moisture_scale);
}

TEST(Sweep, ProductKeyTracksProductNotExecution) {
  const serve::ScenarioSpec base = sweep_base();
  const PerturbationSpec pert = sweep_pert();
  SweepOptions opt;
  opt.members = 16;
  opt.horizon = 30.0;

  const std::uint64_t key = product_key(base, pert, opt);
  EXPECT_EQ(product_key(base, pert, opt), key);

  // Execution knobs are excluded by contract.
  SweepOptions exec = opt;
  exec.threads = 7;
  exec.inline_cell_steps = 0;
  EXPECT_EQ(product_key(base, pert, exec), key);

  SweepOptions more = opt;
  more.members = 17;
  EXPECT_NE(product_key(base, pert, more), key);
  SweepOptions longer = opt;
  longer.horizon = 31.0;
  EXPECT_NE(product_key(base, pert, longer), key);

  PerturbationSpec reseeded = pert;
  reseeded.seed ^= 1;
  EXPECT_NE(product_key(base, reseeded, opt), key);

  serve::ScenarioSpec windier = base;
  windier.wind_u += 0.25;
  EXPECT_NE(product_key(windier, pert, opt), key);
}

TEST(Sweep, DriverRejectsDegenerateOptions) {
  SweepOptions opt;
  opt.members = 0;
  EXPECT_THROW(SweepDriver(sweep_base(), sweep_pert(), opt),
               std::invalid_argument);
  opt.members = 4;
  opt.horizon = 0;
  EXPECT_THROW(SweepDriver(sweep_base(), sweep_pert(), opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The sweep determinism pin from the acceptance criteria: a K=64 sweep is
// bitwise-reproducible across pool widths and admission routing.

TEST(Sweep, BitwiseReproducibleAcrossPoolWidths) {
  const serve::ScenarioSpec base = sweep_base(42);
  const PerturbationSpec pert = sweep_pert();

  SweepOptions solo;
  solo.members = 64;
  solo.horizon = 10.0;
  solo.threads = 1;
  solo.inline_cell_steps = 1L << 40;  // everything inline, one thread

  SweepOptions wide = solo;
  wide.threads = 4;
  wide.inline_cell_steps = 0;  // everything pooled, four threads

  SweepDriver a(base, pert, solo);
  const BurnProbabilityGrid ga = a.run();
  EXPECT_EQ(a.last_inline(), 64);
  EXPECT_EQ(a.last_pooled(), 0);

  SweepDriver b(base, pert, wide);
  const BurnProbabilityGrid gb = b.run();
  EXPECT_EQ(b.last_inline(), 0);
  EXPECT_EQ(b.last_pooled(), 64);

  EXPECT_EQ(ga.key, gb.key);
  EXPECT_TRUE(ga.burned_count == gb.burned_count);
  EXPECT_TRUE(ga.probability == gb.probability);
  EXPECT_TRUE(ga.arrivals == gb.arrivals);

  // The sweep did something: the union burn is wider than any single run.
  EXPECT_GT(ga.expected_burned_area(), 0.0);
  int fractional = 0;
  for (const double p : ga.probability)
    if (p > 0.0 && p < 1.0) ++fractional;
  EXPECT_GT(fractional, 0) << "perturbations produced no spread in outcomes";
}

// ---------------------------------------------------------------------------
// The product cache: repeats are served without re-simulation, concurrent
// first requests share one sweep, capacity evicts least-recently-fetched.

TEST(Cache, ServesRepeatsWithoutResimulation) {
  const serve::ScenarioSpec base = sweep_base();
  const PerturbationSpec pert = sweep_pert();
  SweepOptions opt;
  opt.members = 8;
  opt.horizon = 4.0;

  ProductCache cache(2);
  const auto g1 = cache.fetch(base, pert, opt);
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.sweeps_run(), 1);

  const auto g2 = cache.fetch(base, pert, opt);
  EXPECT_EQ(g2.get(), g1.get());  // the very same product object
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.sweeps_run(), 1);

  // Execution knobs don't key: a different pool width is still a hit.
  SweepOptions exec = opt;
  exec.threads = 3;
  EXPECT_EQ(cache.fetch(base, pert, exec).get(), g1.get());
  EXPECT_EQ(cache.sweeps_run(), 1);

  // Two more products through a capacity-2 cache: A(refreshed), B, C.
  SweepOptions hb = opt, hc = opt;
  hb.horizon = 5.0;
  hc.horizon = 6.0;
  (void)cache.fetch(base, pert, hb);
  EXPECT_EQ(cache.size(), 2);
  (void)cache.fetch(base, pert, opt);  // refresh A's recency
  (void)cache.fetch(base, pert, hc);   // evicts B (least recently fetched)
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.sweeps_run(), 3);

  (void)cache.fetch(base, pert, opt);  // A survived the eviction
  EXPECT_EQ(cache.sweeps_run(), 3);
  (void)cache.fetch(base, pert, hb);  // B was evicted: re-simulated
  EXPECT_EQ(cache.sweeps_run(), 4);

  // An evicted-but-held product stays alive for its clients.
  EXPECT_GE(g1->members, 8);
}

TEST(Cache, SingleFlightDeduplicatesConcurrentMisses) {
  const serve::ScenarioSpec base = sweep_base(11);
  const PerturbationSpec pert = sweep_pert();
  SweepOptions opt;
  opt.members = 8;
  opt.horizon = 4.0;

  ProductCache cache(4);
  std::vector<std::shared_ptr<const BurnProbabilityGrid>> got(4);
  std::vector<std::thread> clients;
  clients.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    clients.emplace_back(
        [&, i] { got[i] = cache.fetch(base, pert, opt); });
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(cache.sweeps_run(), 1) << "concurrent misses must share one sweep";
  EXPECT_EQ(cache.misses(), 4);
  for (const auto& g : got) {
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g.get(), got[0].get());
  }
}

TEST(Cache, EnvCapacityOverride) {
  ASSERT_EQ(setenv("WFIRE_RISK_CACHE", "5", 1), 0);
  EXPECT_EQ(ProductCache::env_capacity(), 5);
  ASSERT_EQ(setenv("WFIRE_RISK_CACHE", "0", 1), 0);
  EXPECT_EQ(ProductCache::env_capacity(), 1);  // clamped
  ASSERT_EQ(setenv("WFIRE_RISK_CACHE", "nonsense", 1), 0);
  EXPECT_EQ(ProductCache::env_capacity(), 32);  // default on parse failure
  ASSERT_EQ(unsetenv("WFIRE_RISK_CACHE"), 0);
  EXPECT_EQ(ProductCache::env_capacity(), 32);
}

// ---------------------------------------------------------------------------
// End-to-end skill: a sweep around a slightly-biased base spec reproduces a
// twin-experiment reference burn (the validation regime of the examples
// demo, here with a pass bar rather than golden pins).

TEST(Risk, SweepReproducesTwinTruthBurn) {
  // Hidden truth: the DataPool's fire advanced to the forecast horizon.
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  auto truth = std::make_unique<fire::FireModel>(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g));
  truth->ignite(
      {levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
  core::DataPoolOptions dopt;
  dopt.wind_u = 2.0;
  dopt.wind_v = 0.5;
  core::DataPool pool(std::move(truth), dopt, util::Rng(3));
  const double horizon = 60.0;
  (void)pool.observe_at(horizon);
  const util::Array2D<double>* ref = pool.truth_tig();
  ASSERT_NE(ref, nullptr);

  // Forecast: the analyst's spec has a wind bias; the sweep's spread covers
  // the truth anyway.
  serve::ScenarioSpec base;
  base.nx = 41;
  base.ny = 41;
  base.dx = base.dy = 6.0;
  base.dt = 0.5;
  base.wind_u = 2.3;  // biased vs the true 2.0
  base.wind_v = 0.3;  // biased vs the true 0.5
  base.ignitions = {
      levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}};

  PerturbationSpec pert;
  pert.wind_speed_sigma = 0.4;
  pert.wind_dir_sigma = 0.15;
  pert.ignition_jitter = 3.0;
  pert.seed = 2026;

  SweepOptions opt;
  opt.members = 16;
  opt.horizon = horizon;
  SweepDriver driver(base, pert, opt);
  const BurnProbabilityGrid grid = driver.run();

  const Scores s = score(grid, 0.5, *ref, horizon);
  EXPECT_GE(s.f1, 0.8) << "precision " << s.precision << " recall "
                       << s.recall;
}
