// The morphing ensemble Kalman filter (paper Sec. 3.3, after Beezley &
// Mandel 2008): ensemble members are transformed into extended states
// [r, T] relative to a common reference field, the (standard, stochastic)
// EnKF runs on the extended states — so its linear combinations become
// morphs that move the fire — and the result is transformed back.
//
// Members carry one *registration field* (the observable, e.g. the heat
// flux image) plus any number of companion state fields (psi, ignition
// time); all fields of a member share the member's mapping T, so a position
// correction moves the whole fire state coherently.
//
// The data image enters in the same representation: it is registered
// against the same reference, and the observation operator on extended
// states is the (linear!) selection of the [r_obs, T] block — this is how
// morphing converts the wildly non-Gaussian "fire in the wrong place"
// problem into one the EnKF can solve.
#pragma once

#include <vector>

#include "enkf/enkf.h"
#include "morphing/morph.h"

namespace wfire::morphing {

struct MorphingEnKFOptions {
  RegistrationOptions reg;
  double sigma_r = 1.0;       // obs error std on the amplitude residual
  double sigma_T = 1.0;       // obs error std on the mapping [grid units]
  double t_weight = 1.0;      // relative weight of T vs r in the state
  double inflation = 1.0;
  enkf::SolverPath path = enkf::SolverPath::kAuto;
  // Factorization of the inner ensemble-space analysis (image observations
  // put the morphing filter squarely in the m >> N regime); kDefault follows
  // WFIRE_ENKF_FACTORIZATION.
  enkf::Factorization factorization = enkf::Factorization::kDefault;
  // Panel scheme of the inner QR square-root factorization: the extended
  // state has m = 3 npix observations, so the stacked panel is exactly the
  // tall-skinny shape TSQR parallelizes. kAuto follows WFIRE_QR_SCHEME.
  la::QrScheme qr_scheme = la::QrScheme::kAuto;
};

// One ensemble member in field form: fields[0] is the registration /
// observable field; fields[1..] are companion state fields.
struct MorphMember {
  std::vector<util::Array2D<double>> fields;
};

struct MorphingStats {
  enkf::EnKFStats enkf;
  double mean_registration_residual = 0;  // mean data term across members
  double data_registration_residual = 0;
  double max_mapping_norm = 0;            // largest |T| seen [grid units]
};

class MorphingEnKF {
 public:
  explicit MorphingEnKF(MorphingEnKFOptions opt = {}) : opt_(opt) {}

  // Analysis step, in place on `members`. `data` is the observed image
  // (same shape as fields[0]). The reference u0 is the ensemble mean of
  // each field (a common, self-consistent choice; the companion references
  // use the same member weights). The extended-state matrices and the inner
  // EnKF scratch live in `ws` when given (else in a filter-owned arena), so
  // repeated analyses allocate nothing once warm.
  MorphingStats analyze(std::vector<MorphMember>& members,
                        const util::Array2D<double>& data, util::Rng& rng,
                        la::Workspace* ws = nullptr);

  [[nodiscard]] const MorphingEnKFOptions& options() const { return opt_; }

 private:
  MorphingEnKFOptions opt_;
  la::Workspace ws_;  // fallback arena when the caller does not supply one
};

// Standard-EnKF baseline on raw fields (what Fig. 4(c) does): stacks the
// member fields directly into state vectors and assimilates the data image
// pixelwise. Provided here so the Fig. 4 bench can compare both filters
// through one interface. `ws` as in MorphingEnKF::analyze.
enkf::EnKFStats standard_enkf_on_fields(std::vector<MorphMember>& members,
                                        const util::Array2D<double>& data,
                                        double sigma_obs, double inflation,
                                        util::Rng& rng,
                                        la::Workspace* ws = nullptr);

}  // namespace wfire::morphing
