#include "atmos/poisson_batch.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wfire::atmos {

namespace {
inline int wrap(int i, int n) { return (i + n) % n; }

inline std::size_t cell_of(int i, int j, int k, int nx, int ny) {
  return (static_cast<std::size_t>(k) * ny + j) * nx + i;
}
}  // namespace

void rbgs_sweep_batch(const grid::Grid3D& g, int stride, const double* rhs,
                      double* phi, double omega, const double* freeze_mask) {
  const int nx = g.nx, ny = g.ny, nz = g.nz;
  const double cx = 1.0 / (g.dx * g.dx);
  const double cy = 1.0 / (g.dy * g.dy);
  const double cz = 1.0 / (g.dz * g.dz);
  for (int color = 0; color < 2; ++color) {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          if (((i + j + k) & 1) != color) continue;
          const double* xl =
              phi + cell_of(wrap(i - 1, nx), j, k, nx, ny) * stride;
          const double* xr =
              phi + cell_of(wrap(i + 1, nx), j, k, nx, ny) * stride;
          const double* yl =
              phi + cell_of(i, wrap(j - 1, ny), k, nx, ny) * stride;
          const double* yr =
              phi + cell_of(i, wrap(j + 1, ny), k, nx, ny) * stride;
          const double* zl =
              k > 0 ? phi + cell_of(i, j, k - 1, nx, ny) * stride : nullptr;
          const double* zr = k < nz - 1
                                 ? phi + cell_of(i, j, k + 1, nx, ny) * stride
                                 : nullptr;
          const double* b = rhs + cell_of(i, j, k, nx, ny) * stride;
          double* p = phi + cell_of(i, j, k, nx, ny) * stride;
          // Neumann in z: the missing neighbor contributes neither to the
          // off-diagonal sum nor to the diagonal (poisson.cpp arithmetic).
          double diag = 2 * cx + 2 * cy;
          if (zl) diag += cz;
          if (zr) diag += cz;
          if (freeze_mask) {
            WFIRE_PRAGMA_OMP(omp simd)
            for (int m = 0; m < stride; ++m) {
              double off = cx * (xl[m] + xr[m]) + cy * (yl[m] + yr[m]);
              if (zl) off += cz * zl[m];
              if (zr) off += cz * zr[m];
              const double gs = (off - b[m]) / diag;
              p[m] += freeze_mask[m] * (omega * (gs - p[m]));
            }
          } else {
            WFIRE_PRAGMA_OMP(omp simd)
            for (int m = 0; m < stride; ++m) {
              double off = cx * (xl[m] + xr[m]) + cy * (yl[m] + yr[m]);
              if (zl) off += cz * zl[m];
              if (zr) off += cz * zr[m];
              const double gs = (off - b[m]) / diag;
              p[m] += omega * (gs - p[m]);
            }
          }
        }
      }
    }
  }
}

void residual_batch(const grid::Grid3D& g, int stride, const double* phi,
                    const double* rhs, double* r, double* max_r) {
  const int nx = g.nx, ny = g.ny, nz = g.nz;
  const double cx = 1.0 / (g.dx * g.dx);
  const double cy = 1.0 / (g.dy * g.dy);
  const double cz = 1.0 / (g.dz * g.dz);
  for (int m = 0; m < stride; ++m) max_r[m] = 0.0;
  // Per-plane partial maxima merged serially afterwards (array reductions
  // are awkward across OpenMP versions).
  std::vector<double> plane_max(static_cast<std::size_t>(nz) * stride, 0.0);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k) {
    double* pmax = plane_max.data() + static_cast<std::size_t>(k) * stride;
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double* c = phi + cell_of(i, j, k, nx, ny) * stride;
        const double* xl =
            phi + cell_of(wrap(i - 1, nx), j, k, nx, ny) * stride;
        const double* xr =
            phi + cell_of(wrap(i + 1, nx), j, k, nx, ny) * stride;
        const double* yl =
            phi + cell_of(i, wrap(j - 1, ny), k, nx, ny) * stride;
        const double* yr =
            phi + cell_of(i, wrap(j + 1, ny), k, nx, ny) * stride;
        const double* zl =
            k > 0 ? phi + cell_of(i, j, k - 1, nx, ny) * stride : nullptr;
        const double* zr = k < nz - 1
                               ? phi + cell_of(i, j, k + 1, nx, ny) * stride
                               : nullptr;
        const double* b = rhs + cell_of(i, j, k, nx, ny) * stride;
        double* out = r + cell_of(i, j, k, nx, ny) * stride;
        WFIRE_PRAGMA_OMP(omp simd)
        for (int m = 0; m < stride; ++m) {
          // Neumann mirror ghost in z equals the interior value.
          const double vzl = zl ? zl[m] : c[m];
          const double vzr = zr ? zr[m] : c[m];
          const double lap = cx * (xl[m] - 2 * c[m] + xr[m]) +
                             cy * (yl[m] - 2 * c[m] + yr[m]) +
                             cz * (vzl - 2 * c[m] + vzr);
          out[m] = b[m] - lap;
          pmax[m] = std::max(pmax[m], std::abs(out[m]));
        }
      }
    }
  }
  for (int k = 0; k < nz; ++k)
    for (int m = 0; m < stride; ++m)
      max_r[m] = std::max(
          max_r[m], plane_max[static_cast<std::size_t>(k) * stride + m]);
}

std::vector<SolveStats> solve_sor_batch(const grid::Grid3D& g, int members,
                                        int stride, const double* rhs,
                                        double* phi, const SorOptions& opt) {
  const std::size_t n =
      static_cast<std::size_t>(g.nx) * g.ny * g.nz * stride;
  std::vector<double> r(n);
  std::vector<double> max_r(stride, 0.0);
  std::vector<SolveStats> stats(members);
  for (int it = 0; it < opt.max_iters; ++it) {
    rbgs_sweep_batch(g, stride, rhs, phi, opt.omega);
    // Check the residual every few sweeps; it is as costly as a sweep.
    if (it % 5 == 4 || it == opt.max_iters - 1) {
      residual_batch(g, stride, phi, rhs, r.data(), max_r.data());
      bool all = true;
      for (int m = 0; m < members; ++m) {
        stats[m].final_residual = max_r[m];
        if (max_r[m] < opt.tol) {
          if (!stats[m].converged) {
            stats[m].converged = true;
            stats[m].iterations = it + 1;
          }
        } else {
          stats[m].iterations = it + 1;
          all = false;
        }
      }
      if (all) break;
    }
  }
  // Project each member onto the zero-mean subspace (remove_mean per lane).
  const std::size_t cells = n / stride;
  for (int m = 0; m < members; ++m) {
    double mean = 0;
    for (std::size_t c = 0; c < cells; ++c) mean += phi[c * stride + m];
    mean /= static_cast<double>(cells);
    for (std::size_t c = 0; c < cells; ++c) phi[c * stride + m] -= mean;
  }
  return stats;
}

}  // namespace wfire::atmos
