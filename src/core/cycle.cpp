#include "core/cycle.h"

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "enkf/ensemble.h"
#include "obs/obs_function.h"

namespace wfire::core {

namespace {

// Shifts every ignition shape by (dx, dy).
levelset::Ignition shifted(const levelset::Ignition& ign, double dx,
                           double dy) {
  levelset::Ignition out = ign;
  std::visit(
      [&](auto& shape) {
        using T = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<T, levelset::CircleIgnition>) {
          shape.cx += dx;
          shape.cy += dy;
        } else {
          shape.x1 += dx;
          shape.y1 += dy;
          shape.x2 += dx;
          shape.y2 += dy;
        }
      },
      out);
  return out;
}

// Caps tig for filtering; the morphing warp needs finite fields.
util::Array2D<double> capped_tig(const util::Array2D<double>& tig) {
  util::Array2D<double> out = tig;
  for (double& v : out)
    if (!std::isfinite(v) || v > kTigCap) v = kTigCap;
  return out;
}

}  // namespace

AssimilationCycle::AssimilationCycle(const grid::Grid2D& g, fire::FuelMap fuel,
                                     util::Array2D<double> terrain,
                                     fire::FireModelOptions fire_opt,
                                     CycleOptions opt, std::uint64_t seed)
    : grid_(g),
      fuel_(std::move(fuel)),
      terrain_(std::move(terrain)),
      fire_opt_(fire_opt),
      opt_(opt),
      seed_(seed),
      rng_(seed),
      runner_(opt.threads),
      menkf_(opt.morph) {
  if (opt_.members < 2)
    throw std::invalid_argument("AssimilationCycle: members < 2");
}

void AssimilationCycle::initialize(
    const std::vector<levelset::Ignition>& base) {
  models_.clear();
  member_wind_.clear();
  out_scratch_.clear();
  batch_.reset();
  models_.resize(opt_.members);
  member_wind_.resize(opt_.members);
  out_scratch_.resize(opt_.members);
  // Member k's perturbations come from its own counter-based stream, so the
  // ensemble is identical no matter how many threads build or advance it
  // (and no matter what else was drawn from the shared rng_).
  runner_.run_phase("initialize", opt_.members, [&](int k) {
    util::Rng mrng =
        util::Rng::stream(seed_, static_cast<std::uint64_t>(k) + 1);
    auto model = std::make_unique<fire::FireModel>(grid_, fuel_, terrain_,
                                                   fire_opt_);
    const double dx = opt_.ignition_jitter * mrng.normal();
    const double dy = opt_.ignition_jitter * mrng.normal();
    std::vector<levelset::Ignition> perturbed;
    perturbed.reserve(base.size());
    for (const auto& ign : base) perturbed.push_back(shifted(ign, dx, dy));
    model->ignite(perturbed);
    models_[k] = std::move(model);
    member_wind_[k] = {opt_.wind_u + opt_.wind_jitter * mrng.normal(),
                       opt_.wind_v + opt_.wind_jitter * mrng.normal()};
  });
}

const char* to_string(FallbackReason r) {
  switch (r) {
    case FallbackReason::kNone: return "none";
    case FallbackReason::kModeReference: return "mode_reference";
    case FallbackReason::kEmpty: return "empty";
    case FallbackReason::kTimeSkew: return "time_skew";
    case FallbackReason::kReinitSkew: return "reinit_skew";
  }
  return "unknown";
}

FallbackReason AssimilationCycle::batch_blocker() const {
  if (models_.empty()) return FallbackReason::kEmpty;
  const double t0 = models_.front()->state().time;
  const int r0 = models_.front()->steps_since_reinit();
  for (const auto& m : models_) {
    if (std::abs(m->state().time - t0) > 1e-9)
      return FallbackReason::kTimeSkew;
    if (m->steps_since_reinit() != r0) return FallbackReason::kReinitSkew;
  }
  return FallbackReason::kNone;
}

void AssimilationCycle::advance_to(double time) {
  const AdvanceMode mode = opt_.advance == AdvanceMode::kAuto
                               ? default_advance_mode()
                               : opt_.advance;
  bool batched = false;
  if (mode == AdvanceMode::kBatched) {
    const FallbackReason blocker = batch_blocker();
    batched = blocker == FallbackReason::kNone;
    last_fallback_reason_ = blocker;
    if (!batched) ++fallback_count_;
  } else {
    last_fallback_reason_ = FallbackReason::kModeReference;
  }
  last_advance_batched_ = batched;
  if (batched) {
    runner_.run_batch_phase("advance", [&] {
      if (!batch_) {
        EnsembleBatchOptions bopt;
        if (opt_.band_cells >= 0)
          bopt.band_cells = opt_.band_cells;
        else
          bopt.band_cells = default_band_cells();
        batch_ = std::make_unique<EnsembleBatch>(grid_, fuel_, terrain_,
                                                 fire_opt_, members(), bopt);
      }
      for (int k = 0; k < members(); ++k)
        batch_->set_member_wind(k, member_wind_[k].first,
                                member_wind_[k].second);
      batch_->load(models_);
      batch_->advance_to(time, opt_.dt);
      batch_->store(models_);
    });
  } else {
    runner_.run_phase("advance", members(), [&](int k) {
      fire::FireModel& m = *models_[k];
      const auto [wu, wv] = member_wind_[k];
      while (m.state().time < time - 1e-9) {
        const double remaining = time - m.state().time;
        m.step_uniform_wind_into(std::min(opt_.dt, remaining), wu, wv,
                                 out_scratch_[k]);
      }
    });
  }
  if (opt_.file_exchange) roundtrip_through_files();
}

std::vector<morphing::MorphMember> AssimilationCycle::gather_fields(
    bool distance_observable) {
  std::vector<morphing::MorphMember> fields(models_.size());
  runner_.run_phase("obs_function", members(), [&](int k) {
    const fire::FireState& s = models_[k]->state();
    morphing::MorphMember m;
    m.fields.resize(3);
    m.fields[0] = obs::heat_flux_image(fuel_, s.tig, s.time);
    if (distance_observable)
      m.fields[0] = obs::front_distance_field(m.fields[0], grid_,
                                              opt_.front_flux_threshold);
    m.fields[1] = s.psi;
    m.fields[2] = capped_tig(s.tig);
    fields[k] = std::move(m);
  });
  return fields;
}

void AssimilationCycle::scatter_fields(
    const std::vector<morphing::MorphMember>& fields, double time) {
  runner_.run_phase("state_update", members(), [&](int k) {
    fire::FireState s;
    s.psi = fields[k].fields[1];
    s.tig = fields[k].fields[2];
    s.time = time;
    // Consistency: the burning region is exactly {psi < 0}; inside it the
    // ignition time cannot exceed the current time, outside it is unset.
    for (int j = 0; j < grid_.ny; ++j)
      for (int i = 0; i < grid_.nx; ++i) {
        if (s.psi(i, j) < 0) {
          if (s.tig(i, j) > time) s.tig(i, j) = time;
        } else {
          s.tig(i, j) = fire::kNotIgnited;
        }
      }
    models_[k]->set_state(std::move(s));
  });
}

void AssimilationCycle::roundtrip_through_files() {
  namespace fs = std::filesystem;
  fs::create_directories(opt_.exchange_dir);
  runner_.run_phase("file_write", members(), [&](int k) {
    obs::write_fire_state(
        opt_.exchange_dir + "/member_" + std::to_string(k) + ".wfst",
        models_[k]->state());
  });
  runner_.run_phase("file_read", members(), [&](int k) {
    const fire::FireState s = obs::read_fire_state(
        opt_.exchange_dir + "/member_" + std::to_string(k) + ".wfst", grid_.nx,
        grid_.ny);
    models_[k]->set_state(s);
  });
}

AnalysisResult AssimilationCycle::assimilate(const ObservationImage& obs) {
  if (models_.empty())
    throw std::runtime_error("AssimilationCycle: initialize() first");
  const double time = models_.front()->state().time;
  const bool morphing_filter = opt_.filter == FilterKind::kMorphingEnKF;
  std::vector<morphing::MorphMember> fields = gather_fields(morphing_filter);

  AnalysisResult result;
  la::Workspace* ws = opt_.la_workspace ? opt_.la_workspace : &la_ws_;
  runner_.run_serial_phase("enkf", [&] {
    if (morphing_filter) {
      // The observed image goes through the same observable transform as
      // the members (synthetic and real data compared like-for-like).
      const util::Array2D<double> data_field = obs::front_distance_field(
          obs.image, grid_, opt_.front_flux_threshold);
      const morphing::MorphingStats stats =
          menkf_.analyze(fields, data_field, rng_, ws);
      result.enkf = stats.enkf;
      result.mean_registration_residual = stats.mean_registration_residual;
      result.max_mapping_norm = stats.max_mapping_norm;
    } else {
      // Paper Fig. 4(c): the standard EnKF compares raw images pixelwise.
      result.enkf = morphing::standard_enkf_on_fields(
          fields, obs.image, opt_.standard_sigma_obs, opt_.standard_inflation,
          rng_, ws);
    }
  });

  scatter_fields(fields, time);
  if (opt_.file_exchange) roundtrip_through_files();
  return result;
}

double AssimilationCycle::mean_position_error(
    const util::Array2D<double>& truth_psi) const {
  double total = 0;
  int counted = 0;
  for (const auto& m : models_) {
    const double d = centroid_distance(grid_, m->state().psi, truth_psi);
    if (std::isfinite(d)) {
      total += d;
      ++counted;
    }
  }
  return counted > 0 ? total / counted
                     : std::numeric_limits<double>::infinity();
}

double AssimilationCycle::mean_shape_error(
    const util::Array2D<double>& truth_psi) const {
  double total = 0;
  for (const auto& m : models_)
    total += symmetric_difference_area(grid_, m->state().psi, truth_psi);
  return total / static_cast<double>(models_.size());
}

double AssimilationCycle::state_spread() const {
  const int n = static_cast<int>(pack_state(models_.front()->state()).size());
  la::Matrix X(n, members());
  for (int k = 0; k < members(); ++k) {
    const la::Vector v = pack_state(models_[k]->state());
    auto col = X.col(k);
    std::copy(v.begin(), v.end(), col.begin());
  }
  return enkf::spread(X);
}

}  // namespace wfire::core
