#include "grid/transfer.h"

#include "util/omp_compat.h"

#include <stdexcept>

#include "grid/interp.h"

namespace wfire::grid {

void restrict_average(const util::Array2D<double>& fine, int ratio,
                      util::Array2D<double>& coarse) {
  if (ratio < 1) throw std::invalid_argument("restrict_average: ratio < 1");
  if (fine.nx() != coarse.nx() * ratio || fine.ny() != coarse.ny() * ratio)
    throw std::invalid_argument("restrict_average: dims mismatch");
  const double inv = 1.0 / (ratio * ratio);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int J = 0; J < coarse.ny(); ++J) {
    for (int I = 0; I < coarse.nx(); ++I) {
      double s = 0;
      for (int b = 0; b < ratio; ++b)
        for (int a = 0; a < ratio; ++a) s += fine(I * ratio + a, J * ratio + b);
      coarse(I, J) = s * inv;
    }
  }
}

void prolong_bilinear(const util::Array2D<double>& coarse, int ratio,
                      util::Array2D<double>& fine) {
  if (ratio < 1) throw std::invalid_argument("prolong_bilinear: ratio < 1");
  const double inv = 1.0 / ratio;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < fine.ny(); ++j) {
    for (int i = 0; i < fine.nx(); ++i) {
      const double fi = i * inv;
      const double fj = j * inv;
      fine(i, j) = bilinear_frac(coarse, fi, fj);
    }
  }
}

double integrate(const Grid2D& g, const util::Array2D<double>& field) {
  if (field.nx() != g.nx || field.ny() != g.ny)
    throw std::invalid_argument("integrate: field does not match grid");
  double s = 0;
  for (int j = 0; j < g.ny; ++j) {
    const double wy = (j == 0 || j == g.ny - 1) ? 0.5 : 1.0;
    for (int i = 0; i < g.nx; ++i) {
      const double wx = (i == 0 || i == g.nx - 1) ? 0.5 : 1.0;
      s += wx * wy * field(i, j);
    }
  }
  return s * g.dx * g.dy;
}

}  // namespace wfire::grid
