#include "enkf/etkf.h"

#include <cmath>
#include <stdexcept>

#include "enkf/ensemble.h"
#include "la/blas.h"
#include "la/eigen_sym.h"

namespace wfire::enkf {

EnKFStats etkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        const EtkfOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("etkf: HX column mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("etkf: obs size mismatch");
  if (N < 2) throw std::invalid_argument("etkf: need at least 2 members");
  for (const double r : r_std)
    if (r <= 0) throw std::invalid_argument("etkf: r_std must be positive");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;
  stats.path_used = SolverPath::kEnsembleSpace;

  la::Workspace local_ws;
  la::Workspace& ws = opt.workspace ? *opt.workspace : local_ws;

  inflate(X, opt.inflation);
  la::Matrix& HXi = ws.mat("etkf.HX", m, N);
  HXi = HX;  // vector copy-assign reuses capacity: allocation-free when warm
  inflate(HXi, opt.inflation);

  la::Vector& xbar = ws.vec("etkf.xbar", static_cast<std::size_t>(n));
  ensemble_mean(X, xbar);
  la::Vector& hbar = ws.vec("etkf.hbar", static_cast<std::size_t>(m));
  ensemble_mean(HXi, hbar);
  la::Matrix& A = ws.mat("etkf.A", n, N);
  anomalies(X, xbar, A);
  const double inv_sqrtn1 = 1.0 / std::sqrt(static_cast<double>(N - 1));

  // Observation anomalies, unscaled: the R^{-1/2}/sqrt(N-1) weighting that
  // used to be baked into an m x N matrix S is fused into the rank-k
  // product below via its pack-time scale hook, so S never exists.
  la::Matrix& HAnom = ws.mat("etkf.HAn", m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HAnom(i, k) = HXi(i, k) - hbar[i];
  la::Vector& w2 = ws.vec("etkf.w2", static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) w2[i] = 1.0 / (r_std[i] * r_std[i]);
  // ytw = R^{-1} (d - hbar): the innovation with both R^{-1/2} factors of
  // S^T ytilde applied up front.
  la::Vector& ytw = ws.vec("etkf.ytw", static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) ytw[i] = (d[i] - hbar[i]) * w2[i];
  {
    double s = 0;
    for (int i = 0; i < m; ++i) s += (d[i] - hbar[i]) * (d[i] - hbar[i]);
    stats.innovation_rms = std::sqrt(s / std::max(m, 1));
  }

  // Ptilde = (I + S^T S)^{-1} via the symmetric eigendecomposition of the
  // N x N system. S^T S = HA^T R^{-1} HA / (N-1) is built with the scaled
  // rank-k kernel (half the flops of the gemm it replaces — the only
  // O(m N^2) work in this filter). The square-root transform needs the
  // *symmetric* square root of Ptilde, so the N x N factorization stays an
  // eigendecomposition rather than a QR (see enkf.cpp for the QR
  // square-root of the stochastic filter).
  la::Matrix& StS = ws.mat("etkf.StS", N, N);
  const double invn1 = inv_sqrtn1 * inv_sqrtn1;
  la::syrk_scaled(/*transA=*/true, invn1, HAnom, w2, 0.0, StS);
  for (int i = 0; i < N; ++i) StS(i, i) += 1.0;
  const la::EigenSymResult eig = la::eigen_sym(StS);

  // wbar = Ptilde S^T ytilde / sqrt(N-1); S^T ytilde = HA^T ytw / sqrt(N-1).
  la::Vector& Sty = ws.vec("etkf.Sty", static_cast<std::size_t>(N));
  la::gemv_t(inv_sqrtn1, HAnom, ytw, 0.0, Sty);
  // Apply Ptilde = V diag(1/lambda) V^T.
  la::Vector& tmp = ws.vec("etkf.tmp", static_cast<std::size_t>(N));
  la::gemv_t(1.0, eig.vectors, Sty, 0.0, tmp);
  for (int i = 0; i < N; ++i) tmp[i] /= eig.values[i];
  la::Vector& wbar = ws.vec("etkf.wbar", static_cast<std::size_t>(N));
  la::gemv(inv_sqrtn1, eig.vectors, tmp, 0.0, wbar);

  // W = sqrtm(Ptilde) = V diag(lambda^{-1/2}) V^T, built in arena buffers
  // (V scaled by f(lambda) columnwise, then one small gemm).
  la::Matrix& scaled = ws.mat("etkf.Vs", N, N);
  for (int j = 0; j < N; ++j) {
    const double fl = 1.0 / std::sqrt(std::max(eig.values[j], 1e-12));
    for (int i = 0; i < N; ++i) scaled(i, j) = eig.vectors(i, j) * fl;
  }
  la::Matrix& coeffs = ws.mat("etkf.W", N, N);
  la::gemm(false, true, 1.0, scaled, eig.vectors, 0.0, coeffs);

  // Xa = xbar 1^T + A (wbar 1^T + W).
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < N; ++i) coeffs(i, k) += wbar[i];
  la::Matrix& Xa = ws.mat("etkf.Xa", n, N);
  la::gemm(false, false, 1.0, A, coeffs, 0.0, Xa);
  for (int k = 0; k < N; ++k) {
    auto col = Xa.col(k);
    for (int i = 0; i < n; ++i) col[i] += xbar[i];
  }

  {
    la::Vector& ma = ws.vec("etkf.ma", static_cast<std::size_t>(n));
    ensemble_mean(Xa, ma);
    double s = 0;
    for (int i = 0; i < n; ++i) s += (ma[i] - xbar[i]) * (ma[i] - xbar[i]);
    stats.increment_rms = std::sqrt(s / std::max(n, 1));
  }
  X = Xa;
  return stats;
}

}  // namespace wfire::enkf
