// Coupling tests: exponential-decay flux insertion (energy conservation,
// profile shape), wind sampling onto the fire mesh, flux aggregation
// conservation, and the coupled model's two-way feedback.
#include <gtest/gtest.h>

#include <cmath>

#include "coupling/coupled.h"
#include "coupling/flux_insertion.h"
#include "coupling/wind_sample.h"

using namespace wfire;
using namespace wfire::coupling;
using wfire::grid::Grid3D;

TEST(FluxInsertion, WeightsAreNormalizedAndDecay) {
  const Grid3D g(4, 4, 12, 60.0, 60.0, 50.0);
  FluxInserter ins(g);
  const auto& w = ins.weights();
  ASSERT_EQ(w.size(), 12u);
  double sum = 0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    sum += w[k] * g.dz;
    if (k > 0) {
      EXPECT_LT(w[k], w[k - 1]);  // monotone decay with height
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // e-folding: w(z + h) / w(z) = exp(-dz/h).
  EXPECT_NEAR(w[1] / w[0], std::exp(-g.dz / ins.params().decay_height), 1e-12);
}

TEST(FluxInsertion, ColumnEnergyMatchesSurfaceFlux) {
  const Grid3D g(4, 4, 10, 60.0, 60.0, 50.0);
  const FluxInsertionParams p;
  FluxInserter ins(g, p);
  util::Array2D<double> sens(4, 4, 0.0), lat(4, 4, 0.0);
  sens(2, 2) = 50000.0;  // 50 kW/m^2
  lat(2, 2) = 10000.0;
  util::Array3D<double> th, qv;
  ins.insert(sens, lat, th, qv);
  // Column integral of rho cp dtheta/dt dz equals the surface flux.
  double col = 0, colq = 0;
  for (int k = 0; k < g.nz; ++k) {
    col += p.rho * p.cp * th(2, 2, k) * g.dz;
    colq += p.rho * p.Lv * qv(2, 2, k) * g.dz;
  }
  EXPECT_NEAR(col, 50000.0, 1e-6);
  EXPECT_NEAR(colq, 10000.0, 1e-8);
  // Unheated columns stay zero.
  EXPECT_DOUBLE_EQ(th(0, 0, 0), 0.0);
}

TEST(FluxInsertion, SingleCellPutsAllEnergyInLowestCell) {
  const Grid3D g(4, 4, 10, 60.0, 60.0, 50.0);
  const FluxInsertionParams p;
  util::Array2D<double> sens(4, 4, 20000.0), lat(4, 4, 0.0);
  util::Array3D<double> th, qv;
  insert_single_cell(g, p, sens, lat, th, qv);
  EXPECT_NEAR(p.rho * p.cp * th(1, 1, 0) * g.dz, 20000.0, 1e-8);
  EXPECT_DOUBLE_EQ(th(1, 1, 1), 0.0);
}

TEST(FluxInsertion, RejectsBadShapes) {
  const Grid3D g(4, 4, 10, 60.0, 60.0, 50.0);
  FluxInserter ins(g);
  util::Array2D<double> wrong(3, 4, 0.0), lat(4, 4, 0.0);
  util::Array3D<double> th, qv;
  EXPECT_THROW(ins.insert(wrong, lat, th, qv), std::invalid_argument);
  EXPECT_THROW(FluxInserter(g, FluxInsertionParams{.decay_height = -1}),
               std::invalid_argument);
}

TEST(MeshPairing, GeometryMatchesPaperRatio) {
  const Grid3D g(8, 8, 6, 60.0, 60.0, 60.0);
  const MeshPairing pair = make_pairing(g, 10);
  EXPECT_EQ(pair.fire.nx, 80);
  EXPECT_DOUBLE_EQ(pair.fire.dx, 6.0);  // the paper's 6 m fire mesh
  EXPECT_DOUBLE_EQ(pair.atmos_hor.dx, 60.0);
  // Fire node (0,0) sits at the first atmos cell center.
  EXPECT_DOUBLE_EQ(pair.fire.x0, 30.0);
  EXPECT_THROW((void)make_pairing(g, 0), std::invalid_argument);
}

TEST(WindSample, UniformWindSamplesExactly) {
  const Grid3D g(8, 8, 6, 60.0, 60.0, 60.0);
  atmos::AmbientProfile amb;
  amb.wind_u = 4.0;
  amb.wind_v = -2.0;
  atmos::AtmosState s;
  atmos::initialize_ambient(g, amb, s);
  const MeshPairing pair = make_pairing(g, 10);
  util::Array2D<double> fu, fv;
  sample_ground_wind(g, s, pair, fu, fv);
  const double prof = amb.wind_profile(g.zc(0));
  for (int j = 0; j < pair.fire.ny; j += 17)
    for (int i = 0; i < pair.fire.nx; i += 17) {
      EXPECT_NEAR(fu(i, j), 4.0 * prof, 1e-12);
      EXPECT_NEAR(fv(i, j), -2.0 * prof, 1e-12);
    }
}

TEST(AggregateFlux, ConservesTotalPower) {
  const Grid3D g(8, 8, 6, 60.0, 60.0, 60.0);
  const MeshPairing pair = make_pairing(g, 10);
  util::Array2D<double> fine(pair.fire.nx, pair.fire.ny, 0.0);
  util::Rng rng(3);
  for (auto& v : fine) v = rng.uniform(0.0, 1e5);
  util::Array2D<double> coarse(g.nx, g.ny);
  aggregate_flux(pair, fine, coarse);
  // Block average conserves the mean flux density -> same total power.
  EXPECT_NEAR(util::sum(coarse) * 60.0 * 60.0, util::sum(fine) * 6.0 * 6.0,
              1.0);
}

TEST(CoupledModel, RunsStablyAtPaperConfiguration) {
  // Small version of the paper's reference setup: dt = 0.5 s, 60 m / 6 m.
  const Grid3D g(12, 12, 6, 60.0, 60.0, 60.0);
  atmos::AmbientProfile amb;
  amb.wind_u = 3.0;
  CoupledOptions opt;
  opt.refine = 10;
  CoupledModel model(g, amb, fire::kFuelShortGrass, opt);
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{360.0, 360.0, 30.0, 0.0}}});

  double burned_prev = model.fire_model().burned_area();
  for (int s = 0; s < 60; ++s) {
    const CoupledStepInfo info = model.step(0.5);
    EXPECT_LT(info.fire_cfl, 1.0);
    EXPECT_LT(info.atmos.cfl, 1.0);
    EXPECT_LT(info.atmos.max_div_after, 1e-4);
  }
  EXPECT_GT(model.fire_model().burned_area(), burned_prev);
  // The fire has created an updraft somewhere.
  EXPECT_GT(util::max_abs(model.atmosphere().state().w), 0.05);
}

TEST(CoupledModel, TwoWayCouplingChangesFireBehavior) {
  // Fig. 1's qualitative claim, in miniature: with two-way coupling the
  // fire-induced indraft modifies the near-fire wind, so the burned area
  // differs from the one-way run with identical setup.
  const Grid3D g(12, 12, 6, 60.0, 60.0, 60.0);
  atmos::AmbientProfile amb;
  amb.wind_u = 3.0;

  CoupledOptions two_way;
  two_way.two_way = true;
  CoupledOptions one_way = two_way;
  one_way.two_way = false;

  CoupledModel m2(g, amb, fire::kFuelShortGrass, two_way);
  CoupledModel m1(g, amb, fire::kFuelShortGrass, one_way);
  const std::vector<levelset::Ignition> ign{
      levelset::Ignition{levelset::CircleIgnition{300.0, 360.0, 30.0, 0.0}}};
  m2.ignite(ign);
  m1.ignite(ign);
  for (int s = 0; s < 120; ++s) {
    m2.step(0.5);
    m1.step(0.5);
  }
  // The coupled atmosphere responded (updraft), the uncoupled one did not.
  EXPECT_GT(util::max_abs(m2.atmosphere().state().w), 0.1);
  EXPECT_LT(util::max_abs(m1.atmosphere().state().w), 0.02);
  // And the fire wind fields differ.
  double max_wind_diff = 0;
  for (int j = 0; j < m2.fire_wind_u().ny(); ++j)
    for (int i = 0; i < m2.fire_wind_u().nx(); ++i)
      max_wind_diff = std::max(
          max_wind_diff, std::abs(m2.fire_wind_u()(i, j) - m1.fire_wind_u()(i, j)));
  EXPECT_GT(max_wind_diff, 0.05);
}
