#include "par/ensemble_runner.h"

#include "util/omp_compat.h"
#include "util/stopwatch.h"

#include <algorithm>

namespace wfire::par {

void EnsembleRunner::run_phase(const std::string& name, int members,
                               const std::function<void(int)>& task) {
  util::Stopwatch sw;
  // Member-level parallelism owns the cores in this phase: split the OpenMP
  // width across the concurrently running members so their nested
  // cell-level regions don't multiply into members x max_threads threads.
  const int active = std::max(1, std::min(members, pool_.size()));
  const int inner = std::max(1, pool_.size() / active);
  pool_.parallel_for(members, [&](int k) {
    util::ScopedOmpNumThreads scoped(inner);
    task(k);
  });
  timings_.push_back({name, sw.seconds()});
}

void EnsembleRunner::run_serial_phase(const std::string& name,
                                      const std::function<void()>& task) {
  util::Stopwatch sw;
  task();
  timings_.push_back({name, sw.seconds()});
}

void EnsembleRunner::run_batch_phase(const std::string& name,
                                     const std::function<void()>& task) {
  util::Stopwatch sw;
  util::ScopedOmpNumThreads scoped(pool_.size());
  task();
  timings_.push_back({name, sw.seconds()});
}

double EnsembleRunner::total_seconds() const {
  double total = 0;
  for (const auto& t : timings_) total += t.seconds;
  return total;
}

}  // namespace wfire::par
