// Backend plumbing tests: env/override selection, the workspace arena, and
// the solve/jitter behaviors that are not shape sweeps. The blocked-vs-
// reference kernel agreement across randomized degenerate / odd / tile-
// straddling / rank-deficient shapes lives in la_property_test.cpp (which
// replaced the hand-enumerated shape lists that used to sit here).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "la/backend.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/workspace.h"
#include "util/rng.h"

using namespace wfire::la;
using wfire::util::Rng;

namespace {

// Relative max-abs error against the Frobenius scale of the reference.
double rel_err(const Matrix& got, const Matrix& want) {
  const double scale = std::max(frobenius_norm(want), 1.0);
  return max_abs_diff(got, want) / scale;
}

Matrix random_spd(int n, Rng& rng) {
  const Matrix A = Matrix::random_normal(n, n, rng);
  Matrix S = matmul(A, A, false, true);
  for (int i = 0; i < n; ++i) S(i, i) += n;  // well-conditioned
  return S;
}

}  // namespace

TEST(Backend, EnvDefaultAndOverride) {
  const Backend initial = backend();
  {
    ScopedBackend ref(Backend::kReference);
    EXPECT_EQ(backend(), Backend::kReference);
    {
      ScopedBackend blk(Backend::kBlocked, 32);
      EXPECT_EQ(backend(), Backend::kBlocked);
      EXPECT_EQ(block_size(), 32);
    }
    EXPECT_EQ(backend(), Backend::kReference);
  }
  EXPECT_EQ(backend(), initial);
  set_block_size(3);  // clamped to the minimum tile edge
  EXPECT_EQ(block_size(), 8);
  set_block_size(64);
}

TEST(BackendGer, MatchesReference) {
  Rng rng(106);
  for (const int m : {1, 5, 63, 130}) {
    for (const int n : {1, 4, 65}) {
      Vector x(static_cast<std::size_t>(m)), y(static_cast<std::size_t>(n));
      for (auto& v : x) v = rng.normal();
      for (auto& v : y) v = rng.normal();
      Matrix A0 = Matrix::random_normal(m, n, rng);
      Matrix A1 = A0;
      {
        ScopedBackend be(Backend::kReference);
        ger(1.3, x, y, A0);
      }
      {
        ScopedBackend be(Backend::kBlocked);
        ger(1.3, x, y, A1);
      }
      EXPECT_LE(rel_err(A1, A0), 1e-10) << "m " << m << " n " << n;
    }
  }
}

TEST(BackendCholesky, JitterAgreesAcrossBackends) {
  // Rank-1 matrix: positive semidefinite, needs the same diagonal boosts on
  // both paths.
  Matrix S(5, 5);
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) S(i, j) = (i + 1.0) * (j + 1.0);
  Matrix L_ref, L_blk;
  int jr, jb;
  {
    ScopedBackend be(Backend::kReference);
    jr = cholesky_factor(S, L_ref);
  }
  {
    ScopedBackend be(Backend::kBlocked);
    jb = cholesky_factor(S, L_blk);
  }
  EXPECT_GT(jr, 0);
  EXPECT_EQ(jr, jb);
}

TEST(BackendCholesky, MultiRhsSolveMatchesScalarSolve) {
  Rng rng(301);
  for (const int n : {1, 5, 63, 130}) {
    for (const int nrhs : {1, 3, 25}) {
      const Matrix S = random_spd(n, rng);
      const CholeskyResult f = cholesky(S);
      const Matrix B = Matrix::random_normal(n, nrhs, rng);
      Matrix X = B;
      cholesky_solve_in_place(f.L, X);
      for (int c = 0; c < nrhs; ++c) {
        Vector b(B.col(c).begin(), B.col(c).end());
        cholesky_solve(f.L, b);
        for (int i = 0; i < n; ++i)
          EXPECT_NEAR(X(i, c), b[i], 1e-10 * std::max(1.0, std::abs(b[i])))
              << "n " << n << " rhs " << c;
      }
    }
  }
}

TEST(Workspace, ReusesBuffersAcrossReshapes) {
  Workspace ws;
  Matrix& a = ws.mat("a", 100, 50);
  const double* data0 = a.data();
  a.fill(1.0);
  // Shrink then regrow within capacity: same allocation.
  Matrix& a2 = ws.mat("a", 10, 5);
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.data(), data0);
  Matrix& a3 = ws.mat("a", 50, 100);
  EXPECT_EQ(a3.data(), data0);
  EXPECT_EQ(a3.rows(), 50);
  EXPECT_EQ(a3.cols(), 100);

  Vector& v = ws.vec("v", 1000);
  const double* vd = v.data();
  Vector& v2 = ws.vec("v", 10);
  EXPECT_EQ(v2.data(), vd);

  EXPECT_EQ(ws.held_doubles(), 50u * 100u + 10u);
  ws.clear();
  EXPECT_EQ(ws.held_doubles(), 0u);
}

TEST(Workspace, DistinctKeysDistinctBuffers) {
  Workspace ws;
  Matrix& a = ws.mat("a", 4, 4);
  Matrix& b = ws.mat("b", 4, 4);
  EXPECT_NE(a.data(), b.data());
  a.fill(1.0);
  b.fill(2.0);
  EXPECT_DOUBLE_EQ(ws.mat("a", 4, 4)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ws.mat("b", 4, 4)(0, 0), 2.0);
}

TEST(MatrixResize, KeepsColumnPrefix) {
  // The sequential-EnKF batch flush relies on resize preserving the leading
  // columns of a column-major matrix.
  Matrix A(3, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 3; ++i) A(i, j) = 10.0 * j + i;
  A.resize(3, 2);
  EXPECT_DOUBLE_EQ(A(2, 1), 12.0);
  A.resize(3, 4);
  EXPECT_DOUBLE_EQ(A(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(A(2, 1), 12.0);
}
