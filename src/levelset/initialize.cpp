#include "levelset/initialize.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wfire::levelset {

namespace {
double circle_sdf(const CircleIgnition& c, double px, double py) {
  return std::hypot(px - c.cx, py - c.cy) - c.r;
}

double line_sdf(const LineIgnition& l, double px, double py) {
  // Distance to segment, minus the half-width (capsule SDF).
  const double vx = l.x2 - l.x1, vy = l.y2 - l.y1;
  const double wx = px - l.x1, wy = py - l.y1;
  const double len2 = vx * vx + vy * vy;
  const double t = len2 > 0 ? std::clamp((wx * vx + wy * vy) / len2, 0.0, 1.0)
                            : 0.0;
  const double dx = wx - t * vx, dy = wy - t * vy;
  return std::hypot(dx, dy) - l.w;
}
}  // namespace

double signed_distance(const Ignition& ign, double px, double py) {
  return std::visit(
      [&](const auto& shape) -> double {
        using T = std::decay_t<decltype(shape)>;
        if constexpr (std::is_same_v<T, CircleIgnition>)
          return circle_sdf(shape, px, py);
        else
          return line_sdf(shape, px, py);
      },
      ign);
}

double ignition_time(const Ignition& ign) {
  return std::visit([](const auto& shape) { return shape.time; }, ign);
}

void initialize_signed_distance(const grid::Grid2D& g,
                                const std::vector<Ignition>& ignitions,
                                util::Array2D<double>& psi) {
  psi = util::Array2D<double>(g.nx, g.ny);
  const double far = std::max(g.width(), g.height()) + g.dx;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      double d = far;
      for (const Ignition& ign : ignitions)
        d = std::min(d, signed_distance(ign, g.x(i), g.y(j)));
      psi(i, j) = d;
    }
  }
}

}  // namespace wfire::levelset
