// Thread pool and ensemble runner tests: correctness under concurrency,
// exception propagation, and phase timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>

#include "par/ensemble_runner.h"
#include "par/thread_pool.h"

using namespace wfire::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](int i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyConcurrentIncrements) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](int i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SubmitFutureCarriesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

// The exception contract that makes parallel_for safe to call with a lambda
// on the caller's stack: every task — started or still queued — runs (or is
// executed to completion) before the first exception is rethrown. An early
// exit here is a use-after-free: queued tasks hold references into the
// caller's frame.
TEST(ThreadPool, ParallelForWaitsForAllTasksOnException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](int i) {
                          if (i == 0) throw std::runtime_error("first");
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(20));
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // When parallel_for returns, every non-throwing task has finished.
  EXPECT_EQ(completed.load(), 7);
}

namespace {

// Occupies a pool worker until `gate` opens, and lets the test wait until
// the task has actually been dequeued (so later submissions really queue).
struct Blocker {
  std::promise<void> gate;
  std::atomic<bool> started{false};
  std::future<void> fut;

  explicit Blocker(ThreadPool& pool) {
    std::shared_future<void> opened = gate.get_future().share();
    fut = pool.submit([this, opened] {
      started.store(true);
      opened.wait();
    });
    while (!started.load()) std::this_thread::yield();
  }
  void release() {
    gate.set_value();
    fut.get();
  }
};

}  // namespace

TEST(ThreadPool, CancelPendingFailsFuturesCleanly) {
  ThreadPool pool(1);
  Blocker blocker(pool);
  // With the lone worker blocked, these stay queued.
  auto f1 = pool.submit([] { return 1; });
  auto f2 = pool.submit([] { return 2; });
  EXPECT_EQ(pool.cancel_pending(), 2u);
  blocker.release();
  EXPECT_THROW(f1.get(), std::future_error);
  EXPECT_THROW(f2.get(), std::future_error);
  // The pool stays usable after a cancellation.
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, HigherPriorityOvertakesQueuedWork) {
  ThreadPool pool(1);
  Blocker blocker(pool);
  std::vector<int> order;
  std::mutex mu;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  };
  auto lo = pool.submit(Priority::kLow, [&] { record(2); });
  auto mid = pool.submit(Priority::kNormal, [&] { record(1); });
  auto hi = pool.submit(Priority::kHigh, [&] { record(0); });
  blocker.release();
  hi.get();
  mid.get();
  lo.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPool, ShutdownDrainRunsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    Blocker blocker(pool);
    for (int i = 0; i < 4; ++i) pool.submit([&] { ran.fetch_add(1); });
    blocker.gate.set_value();
    pool.shutdown(/*drain=*/true);
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ShutdownDiscardDropsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  Blocker blocker(pool);
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 4; ++i)
    queued.push_back(pool.submit([&] { ran.fetch_add(1); }));
  // shutdown(discard) empties the queue before joining; only release the
  // blocked worker once the discard is visible, so nothing queued can slip
  // through in the gap.
  std::thread closer([&] { pool.shutdown(/*drain=*/false); });
  while (pool.pending() != 0) std::this_thread::yield();
  blocker.gate.set_value();
  closer.join();
  EXPECT_EQ(ran.load(), 0);
  for (auto& f : queued) EXPECT_THROW(f.get(), std::future_error);
  blocker.fut.get();  // the running task was never abandoned
}

// Stress for the TSan job: concurrent submitters racing a throwing
// parallel_for and a cancel — the shutdown/exception paths the serial tests
// above exercise one at a time.
TEST(ThreadPool, ConcurrentSubmitAndThrowingParallelForStress) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    std::thread submitter([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          pool.submit(i % 2 ? Priority::kHigh : Priority::kLow,
                      [&sum, i] { sum.fetch_add(i); });
        } catch (const std::runtime_error&) {
          break;  // pool already stopping
        }
      }
    });
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](int i) {
                                     if (i % 17 == 3)
                                       throw std::runtime_error("boom");
                                     sum.fetch_add(1);
                                   }),
                 std::runtime_error);
    pool.cancel_pending();
    submitter.join();
    pool.shutdown(/*drain=*/true);
  }
}

TEST(EnsembleRunner, RecordsPhaseTimings) {
  EnsembleRunner runner(2);
  std::atomic<int> count{0};
  runner.run_phase("advance", 10, [&](int) { count.fetch_add(1); });
  runner.run_serial_phase("enkf", [&] { count.fetch_add(100); });
  EXPECT_EQ(count.load(), 110);
  ASSERT_EQ(runner.timings().size(), 2u);
  EXPECT_EQ(runner.timings()[0].name, "advance");
  EXPECT_EQ(runner.timings()[1].name, "enkf");
  EXPECT_GE(runner.total_seconds(), 0.0);
  runner.clear_timings();
  EXPECT_TRUE(runner.timings().empty());
}

TEST(EnsembleRunner, MemberTasksSeeTheirIndex) {
  EnsembleRunner runner(3);
  std::vector<int> seen(25, -1);
  runner.run_phase("advance", 25, [&](int k) { seen[k] = k; });
  for (int k = 0; k < 25; ++k) EXPECT_EQ(seen[k], k);
}
