#include "la/qr.h"

#include <cmath>
#include <stdexcept>

namespace wfire::la {

QrFactor qr_factor(const Matrix& A) {
  const int m = A.rows();
  const int n = A.cols();
  if (m < n) throw std::invalid_argument("qr_factor: requires m >= n");
  QrFactor f{A, Vector(static_cast<std::size_t>(n), 0.0)};
  Matrix& R = f.qr;
  for (int j = 0; j < n; ++j) {
    // Build the Householder reflector for column j.
    double norm = 0;
    for (int i = j; i < m; ++i) norm += R(i, j) * R(i, j);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      f.beta[j] = 0.0;
      continue;
    }
    const double alpha = R(j, j) >= 0 ? -norm : norm;
    const double v0 = R(j, j) - alpha;
    f.beta[j] = -v0 / alpha;  // 2 / (v^T v) with v scaled so v[j] = 1
    const double inv_v0 = 1.0 / v0;
    for (int i = j + 1; i < m; ++i) R(i, j) *= inv_v0;
    R(j, j) = alpha;
    // Apply the reflector to the trailing columns.
    for (int k = j + 1; k < n; ++k) {
      double s = R(j, k);
      for (int i = j + 1; i < m; ++i) s += R(i, j) * R(i, k);
      s *= f.beta[j];
      R(j, k) -= s;
      for (int i = j + 1; i < m; ++i) R(i, k) -= s * R(i, j);
    }
  }
  return f;
}

void apply_qt(const QrFactor& f, Vector& v) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  if (static_cast<int>(v.size()) != m)
    throw std::invalid_argument("apply_qt: size mismatch");
  for (int j = 0; j < n; ++j) {
    if (f.beta[j] == 0.0) continue;
    double s = v[j];
    for (int i = j + 1; i < m; ++i) s += f.qr(i, j) * v[i];
    s *= f.beta[j];
    v[j] -= s;
    for (int i = j + 1; i < m; ++i) v[i] -= s * f.qr(i, j);
  }
}

Vector least_squares(const Matrix& A, const Vector& b) {
  if (static_cast<int>(b.size()) != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  const QrFactor f = qr_factor(A);
  Vector y = b;
  apply_qt(f, y);
  const int n = A.cols();
  Vector x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    if (f.qr(i, i) == 0.0)
      throw std::runtime_error("least_squares: rank-deficient system");
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= f.qr(i, k) * x[k];
    x[i] = s / f.qr(i, i);
  }
  return x;
}

Matrix least_squares(const Matrix& A, const Matrix& B) {
  if (B.rows() != A.rows())
    throw std::invalid_argument("least_squares: size mismatch");
  const QrFactor f = qr_factor(A);
  const int n = A.cols();
  Matrix X(n, B.cols());
  Vector y(static_cast<std::size_t>(A.rows()));
  for (int j = 0; j < B.cols(); ++j) {
    const auto src = B.col(j);
    y.assign(src.begin(), src.end());
    apply_qt(f, y);
    for (int i = n - 1; i >= 0; --i) {
      if (f.qr(i, i) == 0.0)
        throw std::runtime_error("least_squares: rank-deficient system");
      double s = y[i];
      for (int k = i + 1; k < n; ++k) s -= f.qr(i, k) * X(k, j);
      X(i, j) = s / f.qr(i, i);
    }
  }
  return X;
}

Matrix economy_q(const QrFactor& f) {
  const int m = f.qr.rows();
  const int n = f.qr.cols();
  Matrix Q(m, n, 0.0);
  Vector e(static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[j] = 1.0;
    // Q e_j = H_0 H_1 ... H_{n-1} e_j, apply reflectors in reverse.
    for (int p = n - 1; p >= 0; --p) {
      if (f.beta[p] == 0.0) continue;
      double s = e[p];
      for (int i = p + 1; i < m; ++i) s += f.qr(i, p) * e[i];
      s *= f.beta[p];
      e[p] -= s;
      for (int i = p + 1; i < m; ++i) e[i] -= s * f.qr(i, p);
    }
    for (int i = 0; i < m; ++i) Q(i, j) = e[i];
  }
  return Q;
}

Matrix economy_r(const QrFactor& f) {
  const int n = f.qr.cols();
  Matrix R(n, n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) R(i, j) = f.qr(i, j);
  return R;
}

}  // namespace wfire::la
