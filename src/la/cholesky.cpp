#include "la/cholesky.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wfire::la {

namespace {
// Attempts the factorization; returns false on a non-positive pivot.
bool try_factor(const Matrix& A, Matrix& L) {
  const int n = A.rows();
  L = Matrix(n, n, 0.0);
  for (int j = 0; j < n; ++j) {
    double d = A(j, j);
    for (int p = 0; p < j; ++p) d -= L(j, p) * L(j, p);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    L(j, j) = std::sqrt(d);
    const double inv = 1.0 / L(j, j);
    for (int i = j + 1; i < n; ++i) {
      double s = A(i, j);
      for (int p = 0; p < j; ++p) s -= L(i, p) * L(j, p);
      L(i, j) = s * inv;
    }
  }
  return true;
}
}  // namespace

CholeskyResult cholesky(const Matrix& A, int max_jitter_tries) {
  if (A.rows() != A.cols())
    throw std::invalid_argument("cholesky: matrix not square");
  const int n = A.rows();
  double trace = 0;
  for (int i = 0; i < n; ++i) trace += A(i, i);
  const double base =
      std::numeric_limits<double>::epsilon() * std::max(trace / n, 1.0);

  Matrix L;
  if (try_factor(A, L)) return {std::move(L), 0};
  Matrix Aj = A;
  double shift = base;
  for (int t = 1; t <= max_jitter_tries; ++t) {
    shift *= 100.0;
    for (int i = 0; i < n; ++i) Aj(i, i) = A(i, i) + shift;
    if (try_factor(Aj, L)) return {std::move(L), t};
  }
  throw std::runtime_error("cholesky: matrix not SPD (jitter exhausted)");
}

void cholesky_solve(const Matrix& L, Vector& b) {
  const int n = L.rows();
  if (static_cast<int>(b.size()) != n)
    throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward substitution L y = b.
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int p = 0; p < i; ++p) s -= L(i, p) * b[p];
    b[i] = s / L(i, i);
  }
  // Back substitution L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int p = i + 1; p < n; ++p) s -= L(p, i) * b[p];
    b[i] = s / L(i, i);
  }
}

Matrix cholesky_solve(const Matrix& L, const Matrix& B) {
  Matrix X = B;
  Vector col(static_cast<std::size_t>(B.rows()));
  for (int j = 0; j < B.cols(); ++j) {
    const auto src = X.col(j);
    col.assign(src.begin(), src.end());
    cholesky_solve(L, col);
    auto dst = X.col(j);
    std::copy(col.begin(), col.end(), dst.begin());
  }
  return X;
}

double cholesky_logdet(const Matrix& L) {
  double s = 0;
  for (int i = 0; i < L.rows(); ++i) s += std::log(L(i, i));
  return 2.0 * s;
}

}  // namespace wfire::la
