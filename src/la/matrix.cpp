#include "la/matrix.h"

namespace wfire::la {

Matrix Matrix::identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random_normal(int rows, int cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) m(i, j) = rng.normal();
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int j = 0; j < cols_; ++j)
    for (int i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  return t;
}

}  // namespace wfire::la
