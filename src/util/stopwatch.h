// Wall-clock stopwatch used by the real-time driver and bench harnesses.
#pragma once

#include <chrono>

namespace wfire::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace wfire::util
