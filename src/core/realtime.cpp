#include "core/realtime.h"

#include <chrono>
#include <thread>

#include "util/stopwatch.h"

namespace wfire::core {

RealTimeDriver::RealTimeDriver(AssimilationCycle& cycle, DataPool& pool,
                               RealTimeOptions opt)
    : cycle_(cycle), pool_(pool), opt_(opt) {}

std::vector<CycleRecord> RealTimeDriver::run() {
  std::vector<CycleRecord> records;
  records.reserve(static_cast<std::size_t>(opt_.cycles));
  double sim_time = 0;
  for (int c = 0; c < opt_.cycles; ++c) {
    sim_time += opt_.cycle_interval;
    util::Stopwatch sw;

    const ObservationImage obs = pool_.observe_at(sim_time);
    cycle_.advance_to(sim_time);
    CycleRecord rec;
    rec.analysis = cycle_.assimilate(obs);
    rec.sim_time = sim_time;
    rec.wall_seconds = sw.seconds();
    rec.deadline_seconds = opt_.cycle_interval / opt_.speedup;
    rec.met_deadline = rec.wall_seconds <= rec.deadline_seconds;
    rec.position_error =
        cycle_.mean_position_error(pool_.truth().state().psi);
    records.push_back(rec);

    if (opt_.pace && rec.wall_seconds < rec.deadline_seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          rec.deadline_seconds - rec.wall_seconds));
    }
  }
  return records;
}

}  // namespace wfire::core
