#include "enkf/etkf.h"

#include <cmath>
#include <stdexcept>

#include "enkf/ensemble.h"
#include "la/blas.h"
#include "la/eigen_sym.h"

namespace wfire::enkf {

EnKFStats etkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        const EtkfOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("etkf: HX column mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("etkf: obs size mismatch");
  if (N < 2) throw std::invalid_argument("etkf: need at least 2 members");
  for (const double r : r_std)
    if (r <= 0) throw std::invalid_argument("etkf: r_std must be positive");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;
  stats.path_used = SolverPath::kEnsembleSpace;

  inflate(X, opt.inflation);
  la::Matrix HXi = HX;
  inflate(HXi, opt.inflation);

  const la::Vector xbar = ensemble_mean(X);
  const la::Vector hbar = ensemble_mean(HXi);
  const la::Matrix A = anomalies(X);
  const double inv_sqrtn1 = 1.0 / std::sqrt(static_cast<double>(N - 1));

  // S = R^{-1/2} HA / sqrt(N-1) and the scaled innovation.
  la::Matrix S(m, N);
  la::Vector ytilde(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) ytilde[i] = (d[i] - hbar[i]) / r_std[i];
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i)
      S(i, k) = (HXi(i, k) - hbar[i]) * inv_sqrtn1 / r_std[i];
  {
    double s = 0;
    for (int i = 0; i < m; ++i) s += (d[i] - hbar[i]) * (d[i] - hbar[i]);
    stats.innovation_rms = std::sqrt(s / std::max(m, 1));
  }

  // Ptilde = (I + S^T S)^{-1} via the symmetric eigendecomposition.
  la::Matrix StS = la::matmul(S, S, /*transA=*/true, /*transB=*/false);
  for (int i = 0; i < N; ++i) StS(i, i) += 1.0;
  const la::EigenSymResult eig = la::eigen_sym(StS);

  // wbar = Ptilde S^T ytilde / sqrt(N-1).
  la::Vector Sty(static_cast<std::size_t>(N), 0.0);
  la::gemv_t(1.0, S, ytilde, 0.0, Sty);
  // Apply Ptilde = V diag(1/lambda) V^T.
  la::Vector tmp(static_cast<std::size_t>(N), 0.0);
  la::gemv_t(1.0, eig.vectors, Sty, 0.0, tmp);
  for (int i = 0; i < N; ++i) tmp[i] /= eig.values[i];
  la::Vector wbar(static_cast<std::size_t>(N), 0.0);
  la::gemv(inv_sqrtn1, eig.vectors, tmp, 0.0, wbar);

  // W = sqrtm(Ptilde) = V diag(lambda^{-1/2}) V^T.
  const la::Matrix W = la::matrix_function(
      eig, [](double x) { return 1.0 / std::sqrt(x); }, 1e-12);

  // Xa = xbar 1^T + A (wbar 1^T + W).
  la::Matrix coeffs = W;  // N x N
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < N; ++i) coeffs(i, k) += wbar[i];
  la::Matrix Xa(n, N, 0.0);
  la::gemm(false, false, 1.0, A, coeffs, 0.0, Xa);
  for (int k = 0; k < N; ++k) {
    auto col = Xa.col(k);
    for (int i = 0; i < n; ++i) col[i] += xbar[i];
  }

  {
    const la::Vector ma = ensemble_mean(Xa);
    double s = 0;
    for (int i = 0; i < n; ++i) s += (ma[i] - xbar[i]) * (ma[i] - xbar[i]);
    stats.increment_rms = std::sqrt(s / std::max(n, 1));
  }
  X = std::move(Xa);
  return stats;
}

}  // namespace wfire::enkf
