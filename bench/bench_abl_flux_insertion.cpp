// Ablation (Sec. 2.3 scheme): why the heat flux is inserted "over a depth
// of many cells, with exponential decay away from the boundary" instead of
// into the surface cell alone.
//
// The harness drives WrfLite with a fixed 50 kW/m^2 fire patch using
// different decay depths plus the single-cell scheme and reports the plume
// response and the extremity of the temperature perturbation. Expected
// shape: the single-cell insertion concentrates all heating in one layer,
// producing a much larger (resolution-dependent) theta spike and harsher
// vertical gradients; the exponential profile produces comparable updrafts
// with bounded perturbations, and the updraft weakens as the decay depth
// exceeds the boundary-layer scale.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "atmos/model.h"
#include "coupling/flux_insertion.h"

using namespace wfire;

namespace {

const grid::Grid3D kGrid(16, 16, 12, 60.0, 60.0, 50.0);

struct PlumeResult {
  double max_w = 0;
  double max_theta = 0;
  bool stable = true;
};

PlumeResult run_plume(double decay_height, bool single_cell) {
  atmos::AmbientProfile amb;
  atmos::WrfLite model(kGrid, amb);

  util::Array2D<double> sens(kGrid.nx, kGrid.ny, 0.0);
  util::Array2D<double> lat(kGrid.nx, kGrid.ny, 0.0);
  for (int j = 7; j <= 9; ++j)
    for (int i = 7; i <= 9; ++i) {
      sens(i, j) = 50000.0;  // strong grass fire patch
      lat(i, j) = 10000.0;
    }
  util::Array3D<double> th, qv;
  if (single_cell) {
    coupling::insert_single_cell(kGrid, {}, sens, lat, th, qv);
  } else {
    coupling::FluxInsertionParams p;
    p.decay_height = decay_height;
    coupling::FluxInserter ins(kGrid, p);
    ins.insert(sens, lat, th, qv);
  }
  model.set_forcing(&th, &qv);

  PlumeResult r;
  for (int s = 0; s < 120; ++s) {
    const atmos::WrfLiteStepInfo info = model.step(0.5);
    r.max_w = std::max(r.max_w, info.max_w);
    if (!std::isfinite(info.max_w) || info.max_w > 100.0) {
      r.stable = false;
      break;
    }
  }
  r.max_theta = util::max_abs(model.state().theta);
  return r;
}

void print_flux_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Ablation: heat flux insertion profile (Sec. 2.3) ===\n");
  std::printf("50 kW/m^2 patch, 60 s of plume spin-up\n");
  std::printf("%16s %12s %14s %8s\n", "scheme", "max_w[m/s]", "max_theta[K]",
              "stable");
  for (const double h : {30.0, 120.0, 300.0}) {
    const PlumeResult r = run_plume(h, false);
    std::printf("%13.0f m %12.2f %14.2f %8s\n", h, r.max_w, r.max_theta,
                r.stable ? "yes" : "NO");
  }
  const PlumeResult sc = run_plume(0.0, true);
  std::printf("%16s %12.2f %14.2f %8s\n", "single cell", sc.max_w,
              sc.max_theta, sc.stable ? "yes" : "NO");
  const PlumeResult ref = run_plume(120.0, false);
  std::printf("paper shape check: single-cell max theta' %.1fx the "
              "decay-profile value (%s concentration artifact)\n\n",
              sc.max_theta / ref.max_theta,
              sc.max_theta > 1.5 * ref.max_theta ? "REPRODUCES"
                                                 : "does NOT reproduce");
}

}  // namespace

static void BM_Flux_InsertDecayProfile(benchmark::State& state) {
  print_flux_table();
  coupling::FluxInserter ins(kGrid, {});
  util::Array2D<double> sens(kGrid.nx, kGrid.ny, 20000.0);
  util::Array2D<double> lat(kGrid.nx, kGrid.ny, 4000.0);
  util::Array3D<double> th, qv;
  for (auto _ : state) {
    ins.insert(sens, lat, th, qv);
    benchmark::DoNotOptimize(th.data());
  }
}
BENCHMARK(BM_Flux_InsertDecayProfile)->Unit(benchmark::kMicrosecond);

static void BM_Flux_PlumeSpinup(benchmark::State& state) {
  const double h = static_cast<double>(state.range(0));
  double w_max = 0, theta_max = 0;
  for (auto _ : state) {
    const PlumeResult r = run_plume(h, false);
    w_max = r.max_w;
    theta_max = r.max_theta;
    benchmark::DoNotOptimize(w_max);
  }
  state.counters["w_max"] = w_max;
  state.counters["theta_max"] = theta_max;
}
BENCHMARK(BM_Flux_PlumeSpinup)
    ->Unit(benchmark::kSecond)
    ->Arg(30)
    ->Arg(120)
    ->Arg(300)
    ->Iterations(1);

BENCHMARK_MAIN();
