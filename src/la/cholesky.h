// Cholesky factorization and SPD solves. The EnKF analysis solves
// (H A (H A)^T/(N-1) + R) x = b with an SPD system matrix; Cholesky is the
// workhorse. `jitter` retries with a scaled diagonal shift for matrices that
// are SPD only up to roundoff (ensemble covariances are often rank-deficient).
//
// The factorization dispatches on la::backend(): blocked right-looking
// (panel factor + column-oriented trsm + tiled, OpenMP-threaded trailing
// update) by default, the original unblocked loop as reference.
#pragma once

#include <optional>

#include "la/backend.h"
#include "la/matrix.h"

namespace wfire::la {

struct CholeskyResult {
  Matrix L;          // lower-triangular factor, A = L L^T
  int jitter_tries;  // how many diagonal boosts were needed (0 = clean)
};

// Factors SPD matrix A. Throws std::runtime_error if the matrix is not SPD
// even after `max_jitter_tries` diagonal boosts of (10^k * eps * trace/n).
[[nodiscard]] CholeskyResult cholesky(const Matrix& A,
                                      int max_jitter_tries = 3);

// Same, but factors into a caller-owned L (reshaped in place, so a Workspace
// buffer makes repeated factorizations allocation-free). Returns the number
// of jitter tries used.
int cholesky_factor(const Matrix& A, Matrix& L, int max_jitter_tries = 3);

// Solves L L^T x = b in place given the factor.
void cholesky_solve(const Matrix& L, Vector& b);

// Solves L L^T X = B for all columns of B in place (column-oriented
// substitution, OpenMP-parallel across the right-hand sides).
void cholesky_solve_in_place(const Matrix& L, Matrix& B);

// Solves A X = B; returns X (copy of B, then in-place solve).
[[nodiscard]] Matrix cholesky_solve(const Matrix& L, const Matrix& B);

// log(det(A)) from the factor (used by likelihood diagnostics).
[[nodiscard]] double cholesky_logdet(const Matrix& L);

}  // namespace wfire::la
