// Fire -> atmosphere forcing. WRF (and WrfLite) has no flux boundary
// condition, so the paper inserts the fire's sensible and latent heat flux
// "by modifying the temperature and water vapor concentration over a depth
// of many cells, with exponential decay away from the boundary" (Sec. 2.3).
//
// Given a surface flux density Q [W/m^2] on the atmosphere's horizontal
// mesh, the potential-temperature tendency in cell (i, j, k) is
//
//   dtheta/dt(i,j,k) = Q(i,j) * W(z_k),   W(z) = exp(-z/h) / normalization,
//
// with the normalization chosen so the column integral of rho * cp * dtheta/dt
// equals Q exactly (the inserted energy matches the fire's heat release).
// Latent flux likewise with rho * Lv.
#pragma once

#include "grid/grid3d.h"
#include "util/array2d.h"
#include "util/array3d.h"

namespace wfire::coupling {

struct FluxInsertionParams {
  double decay_height = 120.0;  // e-folding depth h [m]
  double rho = 1.1;             // air density [kg/m^3]
  double cp = 1005.0;           // specific heat of air [J/(kg K)]
  double Lv = 2.5e6;            // latent heat of vaporization [J/kg]
};

class FluxInserter {
 public:
  FluxInserter(const grid::Grid3D& g, FluxInsertionParams p = {});

  // Converts surface flux maps (on the atmos horizontal mesh, W/m^2) into
  // volumetric tendencies. Outputs are sized (nx, ny, nz).
  void insert(const util::Array2D<double>& sensible,
              const util::Array2D<double>& latent,
              util::Array3D<double>& theta_src,
              util::Array3D<double>& qv_src) const;

  // Member-contiguous path for batched ensembles: inputs are SoA surface
  // maps (value(i, j, m) = data[(j * nx + i) * stride + m]), outputs SoA
  // volumetric tendencies (((k * ny + j) * nx + i) * stride + m), sized by
  // the caller. Per lane the arithmetic is exactly insert()'s.
  void insert_batch(int stride, const double* sensible, const double* latent,
                    double* theta_src, double* qv_src) const;

  // Column weights W(z_k) [1/m]; sum_k W(z_k) * dz = 1. Exposed for tests
  // and for the flux-insertion ablation bench.
  [[nodiscard]] const std::vector<double>& weights() const { return w_; }

  [[nodiscard]] const FluxInsertionParams& params() const { return p_; }

 private:
  grid::Grid3D g_;
  FluxInsertionParams p_;
  std::vector<double> w_;
};

// Single-cell insertion (all heat in the lowest cell) used by the ablation
// bench to show why the paper spreads the flux over many cells.
void insert_single_cell(const grid::Grid3D& g, const FluxInsertionParams& p,
                        const util::Array2D<double>& sensible,
                        const util::Array2D<double>& latent,
                        util::Array3D<double>& theta_src,
                        util::Array3D<double>& qv_src);

}  // namespace wfire::coupling
