// Monte Carlo burn-probability products: the per-cell burned fraction of a
// fleet of perturbed scenario runs at a forecast horizon, plus arrival-time
// quantiles — the probability surface of the Adhikari et al. risk platform
// (SNIPPETS.md #3), validated the way Beezley et al. validate forecast
// surfaces against reference burns (F1 / precision / recall).
//
// Ownership and threading contract:
//  - BurnProbabilityGrid is a plain value: immutable once finalized, safe to
//    share read-only across any number of serving threads (the product cache
//    hands out shared_ptr<const BurnProbabilityGrid>).
//  - BurnProbabilityAccumulator is the streaming reduction point: members
//    are folded in as their scenarios finish, from whichever serving thread
//    the completion hook fires on (one internal mutex; completions are rare
//    events, so contention is nil). The reduction is independent of arrival
//    order — and therefore of pool width and admission routing — because
//    burned counts are integer sums and arrival times land in member-indexed
//    slots; finalize() derives the float surface in fixed cell order.
//  - Allocation: the accumulator carves everything at construction; per
//    member, add_member() writes in place. arrival_quantile() allocates its
//    result (a product query, not a serving-path call).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/array2d.h"

namespace wfire::risk {

// The served product. `arrivals` stores every member's ignition time per
// cell, member-contiguous (`[cell * members + k]`, +inf where member k never
// burned the cell), which is what makes the reduction order-free and the
// quantile queries exact rather than streamed approximations.
struct BurnProbabilityGrid {
  int nx = 0, ny = 0;
  double dx = 0, dy = 0;          // spacing [m]
  double horizon = 0;             // forecast horizon [s]
  int members = 0;                // K, the Monte Carlo sample size
  std::uint64_t key = 0;          // product key (risk::product_key)
  util::Array2D<int> burned_count;    // members with tig <= horizon
  util::Array2D<double> probability;  // burned_count / members
  std::vector<double> arrivals;       // [cell * members + k]

  [[nodiscard]] double arrival(int i, int j, int k) const {
    return arrivals[(static_cast<std::size_t>(j) * nx + i) *
                        static_cast<std::size_t>(members) +
                    static_cast<std::size_t>(k)];
  }

  // Nearest-rank q-quantile (q in [0,1]) of the arrival times among the
  // members that burned each cell; +inf where no member did. q=0 is the
  // earliest plausible arrival, q=1 the latest.
  [[nodiscard]] util::Array2D<double> arrival_quantile(double q) const;

  // Expected burned area [m^2]: sum of probability * cell area.
  [[nodiscard]] double expected_burned_area() const;
};

// Streaming/incremental reduction: construct for K members, fold each
// finished member's ignition-time field in (any order, any thread), then
// finalize once all K have arrived.
class BurnProbabilityAccumulator {
 public:
  BurnProbabilityAccumulator(int nx, int ny, double dx, double dy,
                             int members, double horizon);

  // Folds member k (0-based) in. Throws if k is out of range, already
  // added, or `tig` has the wrong shape. Thread-safe.
  void add_member(int k, const util::Array2D<double>& tig);

  [[nodiscard]] int members_added() const;

  // The finished product (copies the reduction state; the accumulator can
  // keep serving). Throws unless every member has been added.
  [[nodiscard]] BurnProbabilityGrid finalize() const;

 private:
  BurnProbabilityGrid grid_;
  std::vector<char> added_;  // per-member slot guard
  int added_count_ = 0;
  mutable std::mutex mu_;
};

// Skill of the thresholded probability surface against a reference burn
// (cells with ref_tig <= ref_horizon), the validation regime of the paper's
// Fig. 2 twin experiments: predicted = probability >= threshold.
struct Scores {
  double precision = 0;  // tp / (tp + fp); 0 when nothing is predicted
  double recall = 0;     // tp / (tp + fn); 0 when nothing is burned
  double f1 = 0;         // harmonic mean; 0 when precision + recall == 0
  long tp = 0, fp = 0, fn = 0, tn = 0;
};

[[nodiscard]] Scores score(const BurnProbabilityGrid& grid, double threshold,
                           const util::Array2D<double>& ref_tig,
                           double ref_horizon);

}  // namespace wfire::risk
