// BLAS-like kernels on Vector/Matrix. gemm is blocked and OpenMP-parallel;
// everything else is simple loops (the EnKF sizes are modest, clarity first).
#pragma once

#include "la/matrix.h"

namespace wfire::la {

// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

[[nodiscard]] double dot(const Vector& x, const Vector& y);
[[nodiscard]] double nrm2(const Vector& x);
void scal(double alpha, Vector& x);

// y = alpha * A * x + beta * y  (A: m x n, x: n, y: m)
void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y);

// y = alpha * A^T * x + beta * y
void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y);

// C = alpha * op(A) * op(B) + beta * C with op in {identity, transpose}.
// Blocked over columns/rows, OpenMP across the outer block loop.
void gemm(bool transA, bool transB, double alpha, const Matrix& A,
          const Matrix& B, double beta, Matrix& C);

// Convenience: returns op(A)*op(B).
[[nodiscard]] Matrix matmul(const Matrix& A, const Matrix& B,
                            bool transA = false, bool transB = false);

// Frobenius norm and max-abs difference (test helpers).
[[nodiscard]] double frobenius_norm(const Matrix& A);
[[nodiscard]] double max_abs_diff(const Matrix& A, const Matrix& B);

}  // namespace wfire::la
