// Fire physics tests: the spread law (clipping, wind/slope response), fuel
// catalog sanity, terrain gradients, mass-loss/heat-flux accounting in the
// FireModel, and ignition-time tracking.
#include <gtest/gtest.h>

#include <cmath>

#include "fire/fuel.h"
#include "fire/model.h"
#include "fire/spread.h"
#include "fire/terrain.h"

using namespace wfire::fire;
using wfire::grid::Grid2D;
using wfire::levelset::CircleIgnition;
using wfire::levelset::Ignition;
using wfire::util::Array2D;

namespace {
Grid2D fire_grid() { return Grid2D(81, 81, 6.0, 6.0); }  // 480 m, paper's 6 m
}  // namespace

TEST(Fuel, CatalogHasThirteenValidCategories) {
  const auto& cat = fuel_catalog();
  ASSERT_EQ(cat.size(), 13u);
  for (const auto& f : cat) {
    EXPECT_GT(f.R0, 0.0) << f.name;
    EXPECT_GT(f.a, 0.0) << f.name;
    EXPECT_GE(f.b, 1.0) << f.name;
    EXPECT_GT(f.Smax, f.R0) << f.name;
    EXPECT_GT(f.w0, 0.0) << f.name;
    EXPECT_GT(f.tau, 0.0) << f.name;
    EXPECT_GT(f.h, 1.0e7) << f.name;
    EXPECT_GT(f.latent_fraction, 0.0) << f.name;
    EXPECT_LT(f.latent_fraction, 1.0) << f.name;
  }
}

TEST(Fuel, GrassBurnsFasterThanTimber) {
  const FuelCategory& grass = fuel_catalog()[kFuelShortGrass];
  const FuelCategory& timber = fuel_catalog()[kFuelClosedTimberLitter];
  EXPECT_LT(grass.tau, timber.tau);   // "rapid mass loss in grass"
  EXPECT_GT(spread_rate(grass, 5.0, 0.0), spread_rate(timber, 5.0, 0.0));
}

TEST(Fuel, LookupByName) {
  EXPECT_EQ(fuel_by_name("short_grass").name, "short_grass");
  EXPECT_THROW((void)fuel_by_name("unobtainium"), std::invalid_argument);
}

TEST(Fuel, UniformMapCoversGrid) {
  const FuelMap m = uniform_fuel(10, 12, kFuelBrush);
  EXPECT_EQ(m.index.nx(), 10);
  EXPECT_EQ(m.index.ny(), 12);
  EXPECT_EQ(m.at(5, 5)->name, "brush");
  EXPECT_THROW(uniform_fuel(4, 4, 99), std::invalid_argument);
}

// Property sweep across the full catalog: every fuel category obeys the
// spread law's structural invariants.
class FuelCategoryParam : public ::testing::TestWithParam<int> {};

TEST_P(FuelCategoryParam, SpreadLawInvariants) {
  const FuelCategory& f = fuel_catalog()[GetParam()];
  // Base rate with no forcing.
  EXPECT_DOUBLE_EQ(spread_rate(f, 0.0, 0.0), f.R0);
  // Monotone in wind, clipped at Smax, never negative.
  double prev = 0;
  for (double v = 0; v <= 40.0; v += 2.0) {
    const double s = spread_rate(f, v, 0.0);
    EXPECT_GE(s, prev) << f.name;
    EXPECT_LE(s, f.Smax) << f.name;
    prev = s;
  }
  EXPECT_DOUBLE_EQ(spread_rate(f, 1000.0, 0.0), f.Smax);
  EXPECT_GE(spread_rate(f, 0.0, -100.0), 0.0);
  // Upslope >= flat >= downslope at fixed wind.
  EXPECT_GE(spread_rate(f, 2.0, 0.4), spread_rate(f, 2.0, 0.0));
  EXPECT_GE(spread_rate(f, 2.0, 0.0), spread_rate(f, 2.0, -0.4));
}

TEST_P(FuelCategoryParam, HeatFluxAccountingPerCategory) {
  // One burning node releases w0*h in total; the split between sensible and
  // latent matches the category's latent fraction at every step.
  const FuelCategory& f = fuel_catalog()[GetParam()];
  const Grid2D g(11, 11, 6.0, 6.0);
  FireModel model(g, uniform_fuel(g.nx, g.ny, GetParam()), terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{30.0, 30.0, 10.0, 0.0}}});
  const FireOutputs out = model.step_uniform_wind(0.5, 0.0, 0.0);
  ASSERT_GT(out.total_sensible_power, 0.0) << f.name;
  const double ratio =
      out.total_latent_power /
      (out.total_latent_power + out.total_sensible_power);
  EXPECT_NEAR(ratio, f.latent_fraction, 1e-9) << f.name;
}

INSTANTIATE_TEST_SUITE_P(AllCategories, FuelCategoryParam,
                         ::testing::Range(0, 13));

TEST(Spread, NoWindNoSlopeGivesR0) {
  const FuelCategory& f = fuel_catalog()[kFuelShortGrass];
  EXPECT_DOUBLE_EQ(spread_rate(f, 0.0, 0.0), f.R0);
}

TEST(Spread, HeadFireFasterThanBacking) {
  const FuelCategory& f = fuel_catalog()[kFuelShortGrass];
  const double head = spread_rate(f, 5.0, 0.0);
  const double backing = spread_rate(f, -5.0, 0.0);
  EXPECT_GT(head, backing);
  EXPECT_DOUBLE_EQ(backing, f.R0);  // wind term clipped at zero
}

TEST(Spread, MonotoneInWind) {
  const FuelCategory& f = fuel_catalog()[kFuelTallGrass];
  double prev = 0;
  for (double v = 0; v <= 10.0; v += 1.0) {
    const double s = spread_rate(f, v, 0.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(Spread, ClippedAtSmax) {
  const FuelCategory& f = fuel_catalog()[kFuelShortGrass];
  EXPECT_DOUBLE_EQ(spread_rate(f, 100.0, 0.0), f.Smax);
}

TEST(Spread, UpslopeFasterThanDownslope) {
  const FuelCategory& f = fuel_catalog()[kFuelChaparral];
  EXPECT_GT(spread_rate(f, 0.0, 0.3), spread_rate(f, 0.0, -0.3));
}

TEST(Spread, NeverNegative) {
  const FuelCategory& f = fuel_catalog()[kFuelClosedTimberLitter];
  EXPECT_GE(spread_rate(f, 0.0, -10.0), 0.0);
}

TEST(SpreadField, FirebreakStopsSpread) {
  const Grid2D g = fire_grid();
  FuelMap fuel = uniform_fuel(g.nx, g.ny, kFuelShortGrass);
  for (int j = 0; j < g.ny; ++j) fuel.index(40, j) = -1;  // firebreak column

  Array2D<double> psi;
  wfire::levelset::initialize_signed_distance(
      g, {Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}}, psi);
  Array2D<double> wind_u(g.nx, g.ny, 0.0), wind_v(g.nx, g.ny, 0.0);
  Array2D<double> frac(g.nx, g.ny, 1.0), speed;
  SpreadInputs in;
  in.wind_u = &wind_u;
  in.wind_v = &wind_v;
  spread_field(g, psi, fuel, in, frac, 0.02, speed);
  for (int j = 0; j < g.ny; ++j) EXPECT_DOUBLE_EQ(speed(40, j), 0.0);
  EXPECT_GT(speed(41, 40), 0.0);
}

TEST(Terrain, SlopeGradientExact) {
  const Grid2D g = fire_grid();
  const Array2D<double> z = terrain_slope(g, 0.1, -0.05);
  Array2D<double> dzdx, dzdy;
  terrain_gradient(g, z, dzdx, dzdy);
  for (int j = 0; j < g.ny; j += 13)
    for (int i = 0; i < g.nx; i += 13) {
      EXPECT_NEAR(dzdx(i, j), 0.1, 1e-10);
      EXPECT_NEAR(dzdy(i, j), -0.05, 1e-10);
    }
}

TEST(Terrain, HillPeaksAtCenter) {
  const Grid2D g = fire_grid();
  const Array2D<double> z = terrain_hill(g, 240.0, 240.0, 50.0, 100.0);
  EXPECT_NEAR(z(40, 40), 50.0, 1e-9);
  EXPECT_LT(z(0, 0), 5.0);
}

TEST(Terrain, RandomIsReproducible) {
  const Grid2D g = fire_grid();
  wfire::util::Rng r1(5), r2(5);
  const Array2D<double> z1 = terrain_random(g, 4, 30.0, 80.0, r1);
  const Array2D<double> z2 = terrain_random(g, 4, 30.0, 80.0, r2);
  EXPECT_TRUE(z1 == z2);
}

TEST(FireModel, IgnitionSetsStateAndBurnsOutward) {
  const Grid2D g = fire_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}});
  const double area0 = model.burned_area();
  EXPECT_NEAR(area0, M_PI * 900.0, 150.0);

  for (int s = 0; s < 60; ++s) model.step_uniform_wind(0.5, 3.0, 0.0);
  EXPECT_GT(model.burned_area(), area0);
  EXPECT_NEAR(model.state().time, 30.0, 1e-9);
}

TEST(FireModel, IgnitionTimesAreMonotoneOutward) {
  const Grid2D g = fire_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}});
  // Wind pushes the downwind front well past the initial circle.
  for (int s = 0; s < 200; ++s) model.step_uniform_wind(0.5, 5.0, 0.0);

  // Along the +x ray downwind of the initial circle, tig increases.
  double prev = -1;
  for (int i = 46; i < g.nx; ++i) {
    const double ti = model.state().tig(i, 40);
    if (ti == kNotIgnited) break;
    EXPECT_GE(ti, prev);
    prev = ti;
  }
  EXPECT_GT(prev, 0.0);  // the front did reach new nodes
}

TEST(FireModel, HeatFluxOnlyWhereBurning) {
  const Grid2D g = fire_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}});
  const FireOutputs out = model.step_uniform_wind(0.5, 0.0, 0.0);
  EXPECT_GT(out.total_sensible_power, 0.0);
  EXPECT_GT(out.total_latent_power, 0.0);
  // Far corner never burned: zero flux.
  EXPECT_DOUBLE_EQ(out.sensible_flux(0, 0), 0.0);
  // Flux at the original ignition center is positive (still burning).
  EXPECT_GT(out.sensible_flux(40, 40), 0.0);
}

TEST(FireModel, EnergyConservedAgainstFuelLoad) {
  // Total energy released over a long run approaches w0 * h * burned area
  // (for cells that burned early and completed their mass loss).
  const Grid2D g(41, 41, 6.0, 6.0);
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  const FuelCategory& f = fuel_catalog()[kFuelShortGrass];
  model.ignite({Ignition{CircleIgnition{120.0, 120.0, 40.0, 0.0}}});

  double released = 0;  // [J]
  const double dt = 0.5;
  // No wind, R0 only: front moves slowly; most energy comes from the
  // initial disc, which has fully burned after ~10 tau.
  for (int s = 0; s < 400; ++s) {
    const FireOutputs out = model.step_uniform_wind(dt, 0.0, 0.0);
    released += (out.total_sensible_power + out.total_latent_power) * dt;
  }
  const double burned = model.burned_area();
  const double expected_cap = burned * f.w0 * f.h;
  EXPECT_LT(released, expected_cap * 1.05);
  EXPECT_GT(released, expected_cap * 0.5);
}

TEST(FireModel, DelayedIgnitionActivatesOnTime) {
  const Grid2D g = fire_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{120.0, 120.0, 20.0, 0.0}},
                Ignition{CircleIgnition{360.0, 360.0, 20.0, 10.0}}});
  // Before t=10 only the first circle burns.
  for (int s = 0; s < 10; ++s) model.step_uniform_wind(0.5, 0.0, 0.0);
  EXPECT_GT(model.state().psi(60, 60), 0.0);
  for (int s = 0; s < 12; ++s) model.step_uniform_wind(0.5, 0.0, 0.0);
  EXPECT_LT(model.state().psi(60, 60), 0.0);
  EXPECT_GE(model.state().tig(60, 60), 10.0);
}

TEST(FireModel, WindAdvancesDownwindFrontFaster) {
  const Grid2D g = fire_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}});
  for (int s = 0; s < 120; ++s) model.step_uniform_wind(0.5, 5.0, 0.0);
  const auto& psi = model.state().psi;
  // Downwind (+x) extent exceeds upwind extent.
  double right = 0, left = 0;
  for (int i = 40; i < g.nx; ++i)
    if (psi(i, 40) < 0) right = g.x(i) - 240.0;
  for (int i = 40; i >= 0; --i)
    if (psi(i, 40) < 0) left = 240.0 - g.x(i);
  EXPECT_GT(right, left * 1.5);
}

TEST(FireModel, SetStateRecomputesFuelFraction) {
  const Grid2D g(21, 21, 6.0, 6.0);
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  FireState s;
  s.psi = wfire::util::Array2D<double>(g.nx, g.ny, 10.0);
  s.tig = wfire::util::Array2D<double>(g.nx, g.ny, kNotIgnited);
  s.time = 100.0;
  s.psi(10, 10) = -5.0;
  s.tig(10, 10) = 0.0;  // burned since t = 0
  model.set_state(s);
  const FuelCategory& f = fuel_catalog()[kFuelShortGrass];
  EXPECT_NEAR(model.fuel_fraction()(10, 10), std::exp(-100.0 / f.tau), 1e-12);
  EXPECT_DOUBLE_EQ(model.fuel_fraction()(0, 0), 1.0);
}

TEST(FireModel, RejectsBadInputs) {
  const Grid2D g(21, 21, 6.0, 6.0);
  EXPECT_THROW(FireModel(g, uniform_fuel(10, 10, 0), terrain_flat(g)),
               std::invalid_argument);
  FireModel model(g, uniform_fuel(g.nx, g.ny, 0), terrain_flat(g));
  EXPECT_THROW(model.step_uniform_wind(-1.0, 0, 0), std::invalid_argument);
}

TEST(FireModel, EulerOptionUnderburnsVsHeun) {
  // End-to-end version of the paper's Sec. 2.2 claim through FireModel.
  const Grid2D g = fire_grid();
  FireModelOptions heun_opt, euler_opt;
  euler_opt.use_heun = false;
  FireModel heun(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                 terrain_flat(g), heun_opt);
  FireModel euler(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g), euler_opt);
  const std::vector<Ignition> ign{
      Ignition{CircleIgnition{240.0, 240.0, 30.0, 0.0}}};
  heun.ignite(ign);
  euler.ignite(ign);
  // Strong wind pushes the CFL toward its limit where the Euler bias shows.
  for (int s = 0; s < 150; ++s) {
    heun.step_uniform_wind(1.5, 8.0, 0.0);
    euler.step_uniform_wind(1.5, 8.0, 0.0);
  }
  EXPECT_LT(euler.burned_area(), heun.burned_area());
}
