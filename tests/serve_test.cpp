// Scenario-server tests: admission control, concurrent-vs-solo bitwise
// reproducibility, crash-safe checkpoint kill/restore round trips, the
// zero-allocation steady-state serving path, and graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>

#include "serve/scenario_server.h"

using namespace wfire;
using namespace wfire::serve;

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-steady-state-allocation pin. The
// thread_local flag scopes counting to the test thread (the inline serving
// path runs on it), so idle pool workers and the OpenMP runtime don't show
// up as noise. Disabled under sanitizers, which own the allocator.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WFIRE_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define WFIRE_ALLOC_COUNTING 0
#else
#define WFIRE_ALLOC_COUNTING 1
#endif
#else
#define WFIRE_ALLOC_COUNTING 1
#endif

#if WFIRE_ALLOC_COUNTING
namespace {
thread_local bool t_count_allocs = false;
thread_local long t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace {

const char* kTmp = "/tmp/wfire_serve_test";

struct TmpDir {
  TmpDir() {
    std::filesystem::remove_all(kTmp);
    std::filesystem::create_directories(kTmp);
  }
  ~TmpDir() { std::filesystem::remove_all(kTmp); }
};

ScenarioSpec small_spec(std::uint64_t seed, double cx = 60.0,
                        double cy = 60.0) {
  ScenarioSpec spec;
  spec.nx = 21;
  spec.ny = 21;
  spec.dx = 6.0;
  spec.dy = 6.0;
  spec.dt = 0.5;
  spec.wind_u = 2.0;
  spec.wind_v = 0.5;
  spec.wind_jitter = 0.8;
  spec.seed = seed;
  spec.fire.reinit_interval = 8;  // several redistancing phases per test
  spec.ignitions = {
      levelset::Ignition{levelset::CircleIgnition{cx, cy, 15.0, 0.0}}};
  return spec;
}

// Reference trajectory: the same spec served alone, inline, on a one-thread
// server. The reproducibility contract says everything else must match this
// bitwise.
fire::FireState solo_state(const ScenarioSpec& spec, double until) {
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;  // everything inline
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(spec);
  EXPECT_TRUE(server.request_advance(id, until));
  server.wait(id);
  return server.state(id);
}

}  // namespace

TEST(ScenarioServer, AdmissionRoutesSmallJobsInlineAndBigToPool) {
  ServerOptions opt;
  opt.threads = 2;
  // 21x21 nodes -> 441 cell-steps per step: 10 steps fit, 11 don't.
  opt.inline_cell_steps = 441 * 10;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(1));

  EXPECT_TRUE(server.request_advance(id, 5.0));  // 10 steps: inline
  server.wait(id);
  EXPECT_FALSE(server.request_advance(id, 30.0));  // 50 more steps: pooled
  server.wait(id);

  const ScenarioStatus st = server.status(id);
  EXPECT_EQ(st.inline_served, 1);
  EXPECT_EQ(st.pooled_served, 1);
  EXPECT_NEAR(st.sim_time, 30.0, 1e-9);
  EXPECT_EQ(st.steps, 60);
  EXPECT_FALSE(st.failed);
}

TEST(ScenarioServer, InlineThresholdEnvOverride) {
  ASSERT_EQ(setenv("WFIRE_SERVE_INLINE", "777", 1), 0);
  ScenarioServer server{ServerOptions{}};
  unsetenv("WFIRE_SERVE_INLINE");
  EXPECT_EQ(server.options().inline_cell_steps, 777);
}

TEST(ScenarioServer, ConcurrentScenariosBitwiseMatchSoloRuns) {
  constexpr int kScenarios = 6;
  ServerOptions opt;
  opt.threads = 4;
  opt.inline_cell_steps = 0;  // force every advance through the pool
  ScenarioServer server(opt);

  std::vector<ScenarioSpec> specs;
  std::vector<ScenarioId> ids;
  for (int k = 0; k < kScenarios; ++k) {
    specs.push_back(small_spec(100 + static_cast<std::uint64_t>(k),
                               45.0 + 6.0 * k, 60.0));
    ids.push_back(server.admit(specs.back()));
  }
  // Two advance chunks per scenario, queued while others run.
  for (const ScenarioId id : ids) server.request_advance(id, 8.0);
  for (const ScenarioId id : ids) server.request_advance(id, 16.0);
  server.wait_all();
  // Counters tally dispatched jobs, not requests: a follow-up request that
  // lands while its scenario is running drains into the in-flight job. With
  // the threshold at zero, every dispatch went through the pool.
  EXPECT_GE(server.total_pooled(), kScenarios);
  EXPECT_EQ(server.total_inline(), 0);

  for (int k = 0; k < kScenarios; ++k) {
    SCOPED_TRACE("scenario " + std::to_string(k));
    const fire::FireState solo = solo_state(specs[static_cast<size_t>(k)], 16.0);
    const fire::FireState& got = server.state(ids[static_cast<size_t>(k)]);
    EXPECT_TRUE(got.psi == solo.psi);   // bitwise
    EXPECT_TRUE(got.tig == solo.tig);   // bitwise
    EXPECT_DOUBLE_EQ(got.time, solo.time);
    EXPECT_FALSE(server.status(ids[static_cast<size_t>(k)]).failed);
  }
}

TEST(ScenarioServer, GustStreamsDecorrelatedButReproducible) {
  ServerOptions opt;
  opt.threads = 2;
  ScenarioServer server(opt);
  const ScenarioId a = server.admit(small_spec(11));
  const ScenarioId b = server.admit(small_spec(22));  // different seed
  const ScenarioId c = server.admit(small_spec(11));  // same seed as a
  for (const ScenarioId id : {a, b, c}) server.request_advance(id, 12.0);
  server.wait_all();
  EXPECT_FALSE(server.state(a).psi == server.state(b).psi);  // decorrelated
  EXPECT_TRUE(server.state(a).psi == server.state(c).psi);   // reproducible
  EXPECT_TRUE(server.state(a).tig == server.state(c).tig);
}

TEST(ScenarioServer, CheckpointKillRestoreRoundTripIsBitwise) {
  TmpDir tmp;
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;
  opt.checkpoint_dir = kTmp;
  ScenarioSpec spec = small_spec(42);
  // A delayed ignition still pending at checkpoint time: the queue must
  // survive the round trip and light at the same sim time.
  spec.ignitions.push_back(
      levelset::Ignition{levelset::CircleIgnition{90.0, 90.0, 10.0, 20.0}});

  const std::string frozen = std::string(kTmp) + "/frozen.wfst";
  fire::FireState at_kill;
  {
    ScenarioServer server(opt);
    const ScenarioId id = server.admit(spec);
    server.request_advance(id, 15.0);
    server.wait(id);
    server.checkpoint_now(id);
    // "Kill": freeze a copy of the checkpoint, then let this server die.
    std::filesystem::copy_file(server.checkpoint_path(id), frozen);
    server.request_advance(id, 30.0);  // uninterrupted reference continues
    server.wait(id);
    at_kill = server.state(id);
  }

  ScenarioServer server(opt);
  const ScenarioId rid = server.restore(frozen);
  ScenarioStatus st = server.status(rid);
  EXPECT_NEAR(st.sim_time, 15.0, 1e-12);
  EXPECT_EQ(st.steps, 30);
  server.request_advance(rid, 30.0);  // crosses the pending ignition at t=20
  server.wait(rid);
  const fire::FireState& resumed = server.state(rid);
  EXPECT_TRUE(resumed.psi == at_kill.psi);  // bitwise
  EXPECT_TRUE(resumed.tig == at_kill.tig);  // bitwise
  EXPECT_DOUBLE_EQ(resumed.time, at_kill.time);
  // The delayed ignition did light after the restore.
  EXPECT_GT(server.status(rid).burned_area, 0.0);
}

TEST(ScenarioServer, PeriodicCheckpointsFollowTheCadence) {
  TmpDir tmp;
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;
  opt.checkpoint_dir = kTmp;
  opt.checkpoint_interval = 5.0;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(3));
  server.request_advance(id, 12.0);
  server.wait(id);
  EXPECT_EQ(server.status(id).checkpoints_written, 2);  // t = 5, 10
  const ScenarioId rid = server.restore(server.checkpoint_path(id));
  EXPECT_NEAR(server.status(rid).sim_time, 10.0, 1e-12);
}

TEST(ScenarioServer, StaleTempFromCrashIsSkippedAndReaped) {
  TmpDir tmp;
  ServerOptions opt;
  opt.threads = 1;
  opt.checkpoint_dir = kTmp;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(4));
  server.request_advance(id, 2.0);
  server.wait(id);
  server.checkpoint_now(id);
  const std::string good = server.checkpoint_path(id);
  const std::string stale = good + ".tmp";
  {
    std::ofstream garbage(stale, std::ios::binary);
    garbage << "killed mid-checkpoint";
  }
  const std::vector<std::string> found = list_checkpoints(kTmp);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], good);
  EXPECT_FALSE(std::filesystem::exists(stale));  // reaped
  EXPECT_NO_THROW(server.restore(good));         // the published file is whole
}

TEST(ScenarioServer, TruncatedCheckpointFailsCleanly) {
  TmpDir tmp;
  ServerOptions opt;
  opt.threads = 1;
  opt.checkpoint_dir = kTmp;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(5));
  server.request_advance(id, 2.0);
  server.wait(id);
  server.checkpoint_now(id);
  const std::string path = server.checkpoint_path(id);
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) * 3 / 5);
  EXPECT_THROW(server.restore(path), std::runtime_error);
}

TEST(ScenarioServer, IgniteRequestMatchesSpecIgnition) {
  // A second fire requested at runtime lands bitwise where the same shape
  // declared up front in the spec would: the request path introduces no
  // divergence as long as it's enqueued before its ignition time.
  const levelset::Ignition late{
      levelset::CircleIgnition{90.0, 40.0, 10.0, 10.0}};
  ScenarioSpec spec_with = small_spec(6);
  spec_with.ignitions.push_back(late);
  const fire::FireState want = solo_state(spec_with, 24.0);

  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(6));
  server.request_ignite(id, late);
  server.request_advance(id, 24.0);
  server.wait(id);
  EXPECT_TRUE(server.state(id).psi == want.psi);
  EXPECT_TRUE(server.state(id).tig == want.tig);
}

TEST(ScenarioServer, LoadManyConcurrentScenarios) {
  constexpr int kScenarios = 32;
  ServerOptions opt;
  opt.threads = 4;
  // 21x21, dt 0.5: a 4 s advance (8 steps) stays inline, the 16 s one pools.
  opt.inline_cell_steps = 441 * 10;
  ScenarioServer server(opt);
  std::vector<ScenarioId> ids;
  for (int k = 0; k < kScenarios; ++k)
    ids.push_back(server.admit(
        small_spec(static_cast<std::uint64_t>(1000 + k), 40.0 + k, 55.0)));
  for (const ScenarioId id : ids) {
    server.request_advance(id, 4.0);
    server.request_advance(id, 20.0);
  }
  server.wait_all();
  EXPECT_GT(server.total_inline(), 0);
  EXPECT_GT(server.total_pooled(), 0);
  EXPECT_EQ(server.total_inline() + server.total_pooled(), 2L * kScenarios);
  for (const ScenarioId id : ids) {
    const ScenarioStatus st = server.status(id);
    EXPECT_NEAR(st.sim_time, 20.0, 1e-9);
    EXPECT_EQ(st.steps, 40);
    EXPECT_FALSE(st.failed) << server.error(id);
    EXPECT_GT(st.burned_area, 0.0);
  }
}

TEST(ScenarioServer, SteadyStateServingAllocatesNothing) {
#if !WFIRE_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;  // measure the inline serving path
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(7));
  // Warm-up: cross a redistancing boundary (reinit_interval = 8 steps) so
  // every lazily-shaped scratch buffer exists before we start counting.
  server.request_advance(id, 6.0);  // 12 steps
  server.wait(id);

  t_alloc_count = 0;
  t_count_allocs = true;
  server.request_advance(id, 12.0);  // 12 more steps, reinits included
  server.wait(id);
  t_count_allocs = false;
  EXPECT_EQ(t_alloc_count, 0)
      << "steady-state serving path touched the heap";
#endif
}

TEST(ScenarioServer, GracefulShutdownDrainsAndRefusesNewWork) {
  TmpDir tmp;
  ServerOptions opt;
  opt.threads = 2;
  opt.inline_cell_steps = 0;  // pooled, so work is in flight at shutdown
  opt.checkpoint_dir = kTmp;
  ScenarioServer server(opt);
  const ScenarioId a = server.admit(small_spec(8));
  const ScenarioId b = server.admit(small_spec(9));
  server.request_advance(a, 10.0);
  server.request_advance(b, 10.0);
  server.shutdown();
  EXPECT_NEAR(server.status(a).sim_time, 10.0, 1e-9);  // drained, not dropped
  EXPECT_NEAR(server.status(b).sim_time, 10.0, 1e-9);
  EXPECT_THROW(server.request_advance(a, 20.0), std::runtime_error);
  EXPECT_THROW(server.admit(small_spec(10)), std::runtime_error);
  // Shutdown left one final checkpoint per scenario.
  EXPECT_EQ(list_checkpoints(kTmp).size(), 2u);
}

TEST(ScenarioServer, RequestRingOverflowIsDiagnosed) {
  ServerOptions opt;
  opt.threads = 1;
  opt.request_capacity = 2;
  opt.inline_cell_steps = 0;
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(12));
  // Hold the lone worker busy so requests pile up in the ring.
  for (int tries = 0; tries < 64; ++tries) {
    try {
      server.request_advance(id, 1000.0 + tries);
    } catch (const std::runtime_error&) {
      server.wait(id);
      SUCCEED();
      return;
    }
  }
  FAIL() << "ring never reported overflow";
}

TEST(ScenarioServer, CompletionHookFiresOnEachRingDrain) {
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 1L << 40;  // inline: the hook runs on this thread
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(31));

  int fired = 0;
  double hook_time = -1.0;
  server.set_completion_hook(id, [&](ScenarioId hid,
                                     const fire::FireState& st) {
    EXPECT_EQ(hid, id);
    ++fired;
    hook_time = st.time;
  });

  server.request_advance(id, 5.0);
  server.wait(id);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(hook_time, 5.0, 1e-9);  // post-advance state, pre-idle

  server.request_advance(id, 10.0);
  server.wait(id);
  EXPECT_EQ(fired, 2);
  EXPECT_NEAR(hook_time, 10.0, 1e-9);

  // Clearing the hook stops the callbacks.
  server.set_completion_hook(id, {});
  server.request_advance(id, 15.0);
  server.wait(id);
  EXPECT_EQ(fired, 2);
}

TEST(ScenarioServer, ThrowingHookFailsTheScenario) {
  ServerOptions opt;
  opt.threads = 1;
  opt.inline_cell_steps = 0;  // pooled: the failure path, like an advance
  ScenarioServer server(opt);
  const ScenarioId id = server.admit(small_spec(32));
  server.set_completion_hook(id, [](ScenarioId, const fire::FireState&) {
    throw std::runtime_error("reduction exploded");
  });
  server.request_advance(id, 5.0);
  server.wait(id);
  EXPECT_TRUE(server.status(id).failed);
  EXPECT_NE(server.error(id).find("reduction exploded"), std::string::npos);
}

TEST(ScenarioServer, FuelScalesPerturbTheTrajectory) {
  // burn_time_scale shrinks every category's mass-loss e-folding time, so
  // cells behind the front exhaust (fuel_frac <= min_fuel_frac) much sooner
  // and stop spreading fire — the trajectory, not just the fluxes, changes.
  ScenarioSpec fast = small_spec(33);
  fast.wind_jitter = 0;  // isolate the fuel effect from the gust stream
  ScenarioSpec slow = fast;
  fast.burn_time_scale = 0.05;

  const fire::FireState a = solo_state(fast, 30.0);
  const fire::FireState b = solo_state(slow, 30.0);
  EXPECT_FALSE(a.psi == b.psi);

  // Invalid scales are rejected at admission.
  ScenarioSpec bad = small_spec(34);
  bad.fuel_moisture_scale = 0.0;
  ScenarioServer server;
  EXPECT_THROW(server.admit(bad), std::invalid_argument);
  bad.fuel_moisture_scale = 1.0;
  bad.burn_time_scale = -2.0;
  EXPECT_THROW(server.admit(bad), std::invalid_argument);
}

TEST(ScenarioServer, FuelScalesRoundTripThroughCheckpoints) {
  TmpDir tmp;
  ScenarioSpec spec = small_spec(35);
  spec.fuel_moisture_scale = 1.3;
  spec.burn_time_scale = 0.6;

  ServerOptions opt;
  opt.threads = 1;
  opt.checkpoint_dir = kTmp;
  std::string path;
  {
    ScenarioServer server(opt);
    const ScenarioId id = server.admit(spec);
    server.request_advance(id, 15.0);
    server.wait(id);
    server.checkpoint_now(id);
    path = server.checkpoint_path(id);
  }

  // Resume from the checkpoint and continue; a second server runs the same
  // spec uninterrupted. If the scales were dropped from the checkpoint
  // metadata, the restored fuel catalog would differ and the trajectories
  // would diverge.
  ScenarioServer resumed(opt);
  const ScenarioId rid = resumed.restore(path);
  resumed.request_advance(rid, 30.0);
  resumed.wait(rid);

  const fire::FireState ref = solo_state(spec, 30.0);
  EXPECT_TRUE(resumed.state(rid).psi == ref.psi);
  EXPECT_TRUE(resumed.state(rid).tig == ref.tig);
}
