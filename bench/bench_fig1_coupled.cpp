// Figure 1 reproduction: coupled fire-atmosphere simulation with two line
// ignitions and one circle ignition merging under an ambient wind.
//
// Paper claim: "The fire front on the right ... is slowed down because of
// air being pulled up by the heat created by the fire. This kind of fire
// behavior cannot be modeled by empirical spread models alone."
//
// The harness runs the same scenario twice — two-way coupled and one-way
// (empirical spread under the ambient wind only) — and prints the downwind
// ("right") front position over time. Expected shape: the coupled front
// lags the uncoupled front, increasingly with time. The google-benchmark
// timings measure the cost of one coupled step at the paper's dt = 0.5 s,
// 60 m / 6 m configuration.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "coupling/coupled.h"
#include "coupling/coupled_batch.h"
#include "levelset/front.h"
#include "util/rng.h"

using namespace wfire;

namespace {

struct Fig1Config {
  int atmos_n = 16;       // 16 x 16 x 8 cells at 60 m -> ~1 km domain
  int atmos_nz = 8;
  double dx = 60.0;
  int refine = 10;        // 6 m fire mesh (paper Sec. 2.3)
  double dt = 0.5;
  double wind = 3.0;      // ambient wind [m/s], +x
  double duration = 360.0;
};

std::vector<levelset::Ignition> fig1_ignitions(double domain) {
  // Two line ignitions and one circle ignition, arranged to merge (Fig. 1).
  const double cx = 0.35 * domain;
  return {
      levelset::Ignition{levelset::LineIgnition{cx - 80, 0.38 * domain,
                                                cx + 40, 0.38 * domain, 8.0,
                                                0.0}},
      levelset::Ignition{levelset::LineIgnition{cx - 80, 0.62 * domain,
                                                cx + 40, 0.62 * domain, 8.0,
                                                0.0}},
      levelset::Ignition{
          levelset::CircleIgnition{cx, 0.5 * domain, 25.0, 0.0}},
  };
}

std::unique_ptr<coupling::CoupledModel> make_model(const Fig1Config& cfg,
                                                   bool two_way) {
  const grid::Grid3D g(cfg.atmos_n, cfg.atmos_n, cfg.atmos_nz, cfg.dx, cfg.dx,
                       cfg.dx);
  atmos::AmbientProfile amb;
  amb.wind_u = cfg.wind;
  coupling::CoupledOptions opt;
  opt.refine = cfg.refine;
  opt.two_way = two_way;
  auto model = std::make_unique<coupling::CoupledModel>(
      g, amb, fire::kFuelShortGrass, opt);
  model->ignite(fig1_ignitions(cfg.atmos_n * cfg.dx));
  return model;
}

// Runs the scenario once and prints the paper-shaped series. Cached so the
// table appears once regardless of benchmark iteration counts.
void print_fig1_series() {
  static bool done = false;
  if (done) return;
  done = true;

  const Fig1Config cfg;
  auto coupled = make_model(cfg, true);
  auto uncoupled = make_model(cfg, false);

  std::printf("\n=== Fig. 1: merging ignitions, coupled vs uncoupled ===\n");
  std::printf("%8s %14s %14s %10s %10s %10s\n", "t[s]", "front_cpl[m]",
              "front_unc[m]", "lag[m]", "max_w[m/s]", "burn[ha]");
  const int steps = static_cast<int>(cfg.duration / cfg.dt);
  const int report_every = static_cast<int>(30.0 / cfg.dt);
  double max_w = 0;
  for (int s = 1; s <= steps; ++s) {
    const coupling::CoupledStepInfo ic = coupled->step(cfg.dt);
    uncoupled->step(cfg.dt);
    max_w = std::max(max_w, ic.atmos.max_w);
    if (s % report_every == 0) {
      const double fc = levelset::rightmost_burning_x(
          coupled->fire_model().grid(), coupled->fire_model().state().psi);
      const double fu = levelset::rightmost_burning_x(
          uncoupled->fire_model().grid(), uncoupled->fire_model().state().psi);
      std::printf("%8.0f %14.1f %14.1f %10.1f %10.2f %10.2f\n", s * cfg.dt,
                  fc, fu, fu - fc, ic.atmos.max_w,
                  coupled->fire_model().burned_area() / 1e4);
    }
  }
  const double fc = levelset::rightmost_burning_x(
      coupled->fire_model().grid(), coupled->fire_model().state().psi);
  const double fu = levelset::rightmost_burning_x(
      uncoupled->fire_model().grid(), uncoupled->fire_model().state().psi);
  std::printf("paper shape check: coupled front lags uncoupled by %.1f m "
              "(%s); fire-induced max updraft %.2f m/s\n\n",
              fu - fc, fu - fc > 0 ? "REPRODUCED" : "NOT reproduced", max_w);
}

}  // namespace

static void BM_Fig1_CoupledStep(benchmark::State& state) {
  print_fig1_series();
  const Fig1Config cfg;
  auto model = make_model(cfg, true);
  double cfl = 0;
  for (auto _ : state) {
    const coupling::CoupledStepInfo info = model->step(cfg.dt);
    cfl = std::max(cfl, std::max(info.fire_cfl, info.atmos.cfl));
    benchmark::DoNotOptimize(info.fire.total_sensible_power);
  }
  state.counters["max_cfl"] = cfl;
  state.counters["fire_nodes"] =
      static_cast<double>(model->fire_model().grid().nx) *
      model->fire_model().grid().ny;
}
BENCHMARK(BM_Fig1_CoupledStep)->Unit(benchmark::kMillisecond);

static void BM_Fig1_UncoupledStep(benchmark::State& state) {
  const Fig1Config cfg;
  auto model = make_model(cfg, false);
  for (auto _ : state) {
    const coupling::CoupledStepInfo info = model->step(cfg.dt);
    benchmark::DoNotOptimize(info.fire.total_sensible_power);
  }
}
BENCHMARK(BM_Fig1_UncoupledStep)->Unit(benchmark::kMillisecond);

static void BM_Fig1_FireStepOnly(benchmark::State& state) {
  const Fig1Config cfg;
  const grid::Grid2D g(cfg.atmos_n * cfg.refine, cfg.atmos_n * cfg.refine,
                       cfg.dx / cfg.refine, cfg.dx / cfg.refine);
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g));
  model.ignite(fig1_ignitions(cfg.atmos_n * cfg.dx));
  for (auto _ : state) {
    const fire::FireOutputs out = model.step_uniform_wind(cfg.dt, cfg.wind, 0);
    benchmark::DoNotOptimize(out.total_sensible_power);
  }
}
BENCHMARK(BM_Fig1_FireStepOnly)->Unit(benchmark::kMillisecond);

// Ensemble coupled advance: one assimilation window of N members' coupled
// fire-atmosphere steps, per-member CoupledModel loop vs the batched
// coupling::CoupledEnsembleBatch path. Arguments:
// (members, band_cells, two_way, batched); band_cells only affects the
// batched path (the reference has no band), so the reference row doubles as
// the baseline for every batched row at the same (members, two_way). The
// {16, 8, 1, *} pair is the speedup axis the CI gate tracks.
static void BM_Coupled_Advance(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const int band_cells = static_cast<int>(state.range(1));
  const bool two_way = state.range(2) != 0;
  const bool batched = state.range(3) != 0;
  const Fig1Config cfg;
  const double window = 5.0;  // simulated seconds per iteration

  const grid::Grid3D g(cfg.atmos_n, cfg.atmos_n, cfg.atmos_nz, cfg.dx,
                       cfg.dx, cfg.dx);
  atmos::AmbientProfile amb;
  amb.wind_u = cfg.wind;
  coupling::CoupledOptions copt;
  copt.refine = cfg.refine;
  copt.two_way = two_way;
  const double domain = cfg.atmos_n * cfg.dx;
  const int fn = cfg.atmos_n * cfg.refine;
  const fire::FuelMap fuel =
      fire::uniform_fuel(fn, fn, fire::kFuelShortGrass);

  std::vector<std::unique_ptr<coupling::CoupledModel>> models;
  util::Rng rng(31);
  for (int k = 0; k < members; ++k) {
    auto m = std::make_unique<coupling::CoupledModel>(
        g, amb, fuel, util::Array2D<double>(fn, fn, 0.0), copt);
    m->ignite({levelset::Ignition{levelset::CircleIgnition{
        0.35 * domain + rng.normal(0.0, 20.0),
        0.5 * domain + rng.normal(0.0, 20.0), 25.0, 0.0}}});
    models.push_back(std::move(m));
  }

  if (batched) {
    coupling::CoupledBatchOptions bopt;
    bopt.coupled = copt;
    bopt.batch.band_cells = band_cells;
    coupling::CoupledEnsembleBatch batch(
        g, amb, fuel, util::Array2D<double>(fn, fn, 0.0), members, bopt);
    batch.load(models);
    double t = 0;
    for (auto _ : state) {
      t += window;
      batch.advance_to(t, cfg.dt);
    }
    state.counters["band_size"] = batch.fire().band_size();
  } else {
    coupling::CoupledStepInfo info;
    double t = 0;
    for (auto _ : state) {
      t += window;
      while (models[0]->time() < t - 1e-9)
        for (auto& m : models) m->step(cfg.dt, info);
    }
  }
  state.counters["members"] = members;
  state.counters["band_cells"] = band_cells;
  state.counters["two_way"] = two_way ? 1 : 0;
  state.counters["batched"] = batched ? 1 : 0;
}
BENCHMARK(BM_Coupled_Advance)
    ->Unit(benchmark::kMillisecond)
    ->Args({16, 8, 1, 0})   // reference baseline for the gate pair
    ->Args({16, 8, 1, 1})   // batched, narrow band
    ->Args({16, 0, 1, 1})   // batched, full-grid sweeps
    ->Args({16, 8, 0, 1})   // batched, one-way (no flux feedback)
    ->Args({4, 8, 1, 1})    // small ensemble
    ->Iterations(1);

BENCHMARK_MAIN();
