#include "scene/planck.h"

#include <cmath>
#include <stdexcept>

namespace wfire::scene {

namespace {
constexpr double kH = 6.62607015e-34;   // Planck [J s]
constexpr double kC = 2.99792458e8;     // speed of light [m/s]
constexpr double kKb = 1.380649e-23;    // Boltzmann [J/K]
}  // namespace

double planck_spectral_radiance(double lambda_m, double T) {
  if (lambda_m <= 0) throw std::invalid_argument("planck: lambda <= 0");
  if (T <= 0) return 0.0;
  const double c1 = 2.0 * kH * kC * kC;                  // [W m^2]
  const double x = kH * kC / (lambda_m * kKb * T);
  if (x > 700.0) return 0.0;  // underflow guard
  const double l5 = lambda_m * lambda_m * lambda_m * lambda_m * lambda_m;
  return c1 / (l5 * (std::exp(x) - 1.0));
}

double band_radiance(double T, double lo, double hi, int n) {
  if (hi <= lo || n < 1) throw std::invalid_argument("band_radiance: bad band");
  const double dl = (hi - lo) / n;
  double s = 0;
  for (int i = 0; i < n; ++i)
    s += planck_spectral_radiance(lo + (i + 0.5) * dl, T);
  return s * dl;
}

double brightness_temperature(double radiance, double lo, double hi) {
  if (radiance <= 0) return 0.0;
  double tlo = 1.0, thi = 4000.0;
  if (radiance >= band_radiance(thi, lo, hi)) return thi;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (tlo + thi);
    if (band_radiance(mid, lo, hi) < radiance)
      tlo = mid;
    else
      thi = mid;
  }
  return 0.5 * (tlo + thi);
}

double stefan_boltzmann_exitance(double T) {
  return kStefanBoltzmann * T * T * T * T;
}

}  // namespace wfire::scene
