// The morphing transform (paper Sec. 3.3, Eq. (1) with the lead term
// corrected to u0; see DESIGN.md): given a reference field u0 and a
// registration mapping T with u ~= u0 o (I + T), the registration residual
//
//     r = u o (I + T)^{-1} - u0
//
// turns u into the additive representation [r, T], and intermediate states
// along the morphing path are
//
//     u_lambda = (u0 + lambda r) o (I + lambda T),   0 <= lambda <= 1,
//
// with u_0 = u0 and u_1 = u (up to interpolation error). The morphing EnKF
// makes *linear combinations* of [r, T] representations meaningful: they
// move the fire, not just scale it.
#pragma once

#include "morphing/registration.h"
#include "morphing/warp.h"

namespace wfire::morphing {

// A field in morphing representation relative to some reference u0.
struct MorphRep {
  util::Array2D<double> r;  // amplitude residual
  Mapping T;                // position mapping
};

// Computes r = u o (I+T)^{-1} - u0 for a given registration mapping.
[[nodiscard]] util::Array2D<double> morph_residual(
    const util::Array2D<double>& u, const util::Array2D<double>& u0,
    const Mapping& T);

// Full encode: register u against u0, then compute the residual.
[[nodiscard]] MorphRep morph_encode(const util::Array2D<double>& u,
                                    const util::Array2D<double>& u0,
                                    const RegistrationOptions& opt = {});

// Decode: u = (u0 + r) o (I + T).
[[nodiscard]] util::Array2D<double> morph_decode(
    const util::Array2D<double>& u0, const MorphRep& rep);

// Intermediate state u_lambda = (u0 + lambda r) o (I + lambda T).
[[nodiscard]] util::Array2D<double> morph_lambda(
    const util::Array2D<double>& u0, const MorphRep& rep, double lambda);

}  // namespace wfire::morphing
