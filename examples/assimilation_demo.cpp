// The paper's Fig. 4 scenario as a runnable demo: a 25-member ensemble is
// ignited at an intentionally incorrect location, advanced 15 minutes, and
// corrected by the morphing EnKF (or the standard EnKF for comparison)
// against a simulated heat-flux image.
//
// Run:  ./assimilation_demo [filter=morphing|standard] [members=25]
//                           [minutes=15] [offset=150]
#include <cstdio>
#include <memory>

#include "core/cycle.h"
#include "obs/obs_function.h"
#include "util/config.h"
#include "util/image_io.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const std::string filter = cfg.get_string("filter", "morphing");
  const int members = cfg.get_int("members", 25);
  const double minutes = cfg.get_double("minutes", 15.0);
  const double offset = cfg.get_double("offset", 150.0);

  const grid::Grid2D grid(121, 121, 6.0, 6.0);

  // Truth ("reference solution is the simulated data").
  auto truth = std::make_unique<fire::FireModel>(
      grid, fire::uniform_fuel(grid.nx, grid.ny, fire::kFuelShortGrass),
      fire::terrain_flat(grid));
  truth->ignite({levelset::Ignition{
      levelset::CircleIgnition{430.0, 360.0, 25.0, 0.0}}});
  core::DataPoolOptions dopt;
  dopt.dt = 1.0;
  dopt.noise_std = 1500.0;
  dopt.wind_u = 0.3;
  core::DataPool pool(std::move(truth), dopt, util::Rng(1234));

  // Ensemble ignited `offset` meters west of the truth.
  core::CycleOptions opt;
  opt.members = members;
  opt.dt = 1.0;
  opt.filter = filter == "standard" ? core::FilterKind::kStandardEnKF
                                    : core::FilterKind::kMorphingEnKF;
  opt.wind_u = 0.3;
  opt.ignition_jitter = 15.0;
  opt.morph.sigma_r = 50.0;
  opt.morph.sigma_T = 0.5;
  opt.standard_sigma_obs = 2000.0;
  core::AssimilationCycle cycle(
      grid, fire::uniform_fuel(grid.nx, grid.ny, fire::kFuelShortGrass),
      fire::terrain_flat(grid), {}, opt, 77);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{430.0 - offset, 360.0, 25.0, 0.0}}});

  std::printf("filter: %s EnKF, %d members, analysis after %.0f min, "
              "ignition offset %.0f m\n",
              filter.c_str(), members, minutes, offset);

  const double t = minutes * 60.0;
  const core::ObservationImage obs = pool.observe_at(t);
  cycle.advance_to(t);

  const auto& truth_psi = pool.truth().state().psi;
  std::printf("before analysis: position error %.1f m, shape error %.2f ha, "
              "spread %.1f\n",
              cycle.mean_position_error(truth_psi),
              cycle.mean_shape_error(truth_psi) / 1e4, cycle.state_spread());

  const core::AnalysisResult res = cycle.assimilate(obs);
  std::printf("after analysis:  position error %.1f m, shape error %.2f ha, "
              "spread %.1f\n",
              cycle.mean_position_error(truth_psi),
              cycle.mean_shape_error(truth_psi) / 1e4, cycle.state_spread());
  std::printf("EnKF: %d obs, %d state dims, innovation rms %.1f, increment "
              "rms %.1f\n",
              res.enkf.m, res.enkf.n, res.enkf.innovation_rms,
              res.enkf.increment_rms);

  // Images: data vs the first member's heat flux after analysis.
  util::write_false_color("assim_data.ppm", obs.image, 0.0, 60000.0);
  const fire::FireModel& m0 = cycle.member(0);
  const util::Array2D<double> synth = wfire::obs::heat_flux_image(
      m0.fuel(), m0.state().tig, m0.state().time);
  util::write_false_color("assim_member0.ppm", synth, 0.0, 60000.0);
  std::printf("wrote assim_data.ppm, assim_member0.ppm\n");

  // Machine-readable summary for the golden-value smoke check: the
  // post-analysis ensemble position error against the truth front, and the
  // burned area of member 0.
  std::printf("SMOKE front_position_rms_m=%.6f\n",
              cycle.mean_position_error(truth_psi));
  std::printf("SMOKE burned_area_ha=%.6f\n", m0.burned_area() / 1e4);
  return 0;
}
