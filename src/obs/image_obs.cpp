#include "obs/image_obs.h"

#include <cmath>
#include <stdexcept>

namespace wfire::obs {

ImageObsVector image_to_obs(const util::Array2D<double>& img,
                            const ImageObsOptions& opt) {
  if (opt.stride < 1) throw std::invalid_argument("image_to_obs: stride < 1");
  if (opt.error_floor <= 0)
    throw std::invalid_argument("image_to_obs: error_floor <= 0");
  ImageObsVector out;
  const std::size_t estimate =
      (static_cast<std::size_t>(img.nx() / opt.stride) + 1) *
      (static_cast<std::size_t>(img.ny() / opt.stride) + 1);
  out.values.reserve(estimate);
  out.errors.reserve(estimate);
  for (int j = 0; j < img.ny(); j += opt.stride)
    for (int i = 0; i < img.nx(); i += opt.stride) {
      const double v = img(i, j);
      out.values.push_back(v);
      out.errors.push_back(opt.error_floor + opt.rel_error * std::abs(v));
      out.pixel_i.push_back(i);
      out.pixel_j.push_back(j);
    }
  return out;
}

std::vector<double> sample_like(const util::Array2D<double>& synthetic,
                                const ImageObsVector& pattern) {
  std::vector<double> out;
  out.reserve(pattern.values.size());
  for (std::size_t k = 0; k < pattern.values.size(); ++k) {
    const int i = pattern.pixel_i[k];
    const int j = pattern.pixel_j[k];
    if (!synthetic.contains(i, j))
      throw std::invalid_argument("sample_like: image shape mismatch");
    out.push_back(synthetic(i, j));
  }
  return out;
}

}  // namespace wfire::obs
