#include "atmos/model.h"

#include "util/omp_compat.h"

#include <cmath>

namespace wfire::atmos {

namespace {
inline int wrap(int i, int n) { return (i + n) % n; }
}  // namespace

WrfLite::WrfLite(const grid::Grid3D& g, const AmbientProfile& amb,
                 WrfLiteOptions opt)
    : grid_(g), amb_(amb), opt_(opt) {
  opt_.mg.tol = opt_.projection_tol;
  initialize_ambient(grid_, amb_, state_);
  mg_ = std::make_unique<Multigrid>(grid_, opt_.mg);
  rhs_ = Field3(g.nx, g.ny, g.nz, 0.0);
  phi_ = Field3(g.nx, g.ny, g.nz, 0.0);
  predictor_ = AtmosState(g);
}

void WrfLite::set_forcing(const util::Array3D<double>* theta_src,
                          const util::Array3D<double>* qv_src) {
  theta_src_ = theta_src;
  qv_src_ = qv_src;
}

SolveStats WrfLite::project() {
  const int nx = grid_.nx, ny = grid_.ny, nz = grid_.nz;
  // rhs = div(u*) ; the dt factor is absorbed into phi.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        rhs_(i, j, k) = cell_divergence(grid_, state_, i, j, k);
  remove_mean(rhs_);
  const SolveStats stats = mg_->solve(rhs_, phi_);
  // u -= grad(phi): x-face i sits between cells i-1 and i.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        state_.u(i, j, k) -=
            (phi_(i, j, k) - phi_(wrap(i - 1, nx), j, k)) / grid_.dx;
        state_.v(i, j, k) -=
            (phi_(i, j, k) - phi_(i, wrap(j - 1, ny), k)) / grid_.dy;
      }
    }
  }
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 1; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        state_.w(i, j, k) -= (phi_(i, j, k) - phi_(i, j, k - 1)) / grid_.dz;
  return stats;
}

WrfLiteStepInfo WrfLite::step(double dt) {
  WrfLiteStepInfo info;
  info.cfl = advective_cfl(grid_, state_, dt);

  compute_tendencies(grid_, amb_, opt_.dynamics, state_, theta_src_, qv_src_,
                     tend1_);
  if (opt_.use_rk2) {
    // Predictor: full step, project, re-evaluate tendencies, then average.
    predictor_ = state_;
    apply_tendencies(grid_, tend1_, dt, predictor_);
    std::swap(predictor_, state_);
    project();
    std::swap(predictor_, state_);
    compute_tendencies(grid_, amb_, opt_.dynamics, predictor_, theta_src_,
                       qv_src_, tend2_);
    // Corrector on the original state with averaged tendencies.
    apply_tendencies(grid_, tend1_, 0.5 * dt, state_);
    apply_tendencies(grid_, tend2_, 0.5 * dt, state_);
  } else {
    apply_tendencies(grid_, tend1_, dt, state_);
  }
  last_proj_ = project();
  time_ += dt;

  info.mg_cycles = last_proj_.iterations;
  info.max_div_after = max_divergence(grid_, state_);
  info.max_w = util::max_abs(state_.w);
  return info;
}

}  // namespace wfire::atmos
