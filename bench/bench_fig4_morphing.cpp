// Figure 4 reproduction: the morphing EnKF against the standard EnKF on a
// fire ignited at an intentionally incorrect location, 25 members, applied
// after 15 minutes of simulation.
//
// Paper claim: "The standard EnKF ensembles diverges from the data, while
// the morphing EnKF ensemble keeps closer to the data."
//
// The harness runs the identical twin experiment once per filter (same
// seeds) and prints position error and shape error before/after the
// analysis. Expected shape: morphing analysis error << standard analysis
// error, and the standard filter's "correction" distorts the fire shape
// (large symmetric-difference area) because linear combinations of
// misplaced fires are bimodal, not moved.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/cycle.h"

using namespace wfire;

namespace {

constexpr int kGridN = 121;         // 720 m at 6 m
constexpr double kAssimTime = 900;  // the paper's 15 minutes
constexpr int kMembers = 25;        // the paper's ensemble size
constexpr double kDt = 1.0;

struct TwinResult {
  double err_before = 0, err_after = 0;
  double shape_before = 0, shape_after = 0;
  double spread_before = 0, spread_after = 0;
};

std::unique_ptr<core::DataPool> make_pool() {
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  auto truth = std::make_unique<fire::FireModel>(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g));
  // Truth ignition at the "correct" location.
  truth->ignite({levelset::Ignition{
      levelset::CircleIgnition{430.0, 360.0, 25.0, 0.0}}});
  core::DataPoolOptions dopt;
  dopt.dt = kDt;
  dopt.noise_std = 1500.0;
  dopt.wind_u = 0.3;
  return std::make_unique<core::DataPool>(std::move(truth), dopt,
                                          util::Rng(1234));
}

TwinResult run_twin(core::FilterKind kind) {
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  auto pool = make_pool();

  core::CycleOptions opt;
  opt.members = kMembers;
  opt.dt = kDt;
  opt.threads = 2;
  opt.filter = kind;
  opt.wind_u = 0.3;
  opt.wind_jitter = 0.1;
  opt.ignition_jitter = 15.0;
  opt.morph.sigma_r = 50.0;
  opt.morph.sigma_T = 0.5;
  opt.standard_sigma_obs = 2000.0;
  core::AssimilationCycle cycle(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g), {}, opt, 77);
  // "fire ignited at an intentionally incorrect location": 150 m west.
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{280.0, 360.0, 25.0, 0.0}}});

  const core::ObservationImage obs = pool->observe_at(kAssimTime);
  cycle.advance_to(kAssimTime);

  TwinResult r;
  const auto& truth_psi = pool->truth().state().psi;
  r.err_before = cycle.mean_position_error(truth_psi);
  r.shape_before = cycle.mean_shape_error(truth_psi);
  r.spread_before = cycle.state_spread();
  cycle.assimilate(obs);
  r.err_after = cycle.mean_position_error(truth_psi);
  r.shape_after = cycle.mean_shape_error(truth_psi);
  r.spread_after = cycle.state_spread();
  return r;
}

void print_fig4_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Fig. 4: morphing vs standard EnKF, %d members, "
              "analysis after %.0f min ===\n",
              kMembers, kAssimTime / 60.0);
  const TwinResult m = run_twin(core::FilterKind::kMorphingEnKF);
  const TwinResult s = run_twin(core::FilterKind::kStandardEnKF);
  std::printf("%-16s %14s %14s %16s %16s\n", "filter", "pos_err_f[m]",
              "pos_err_a[m]", "shape_err_f[m2]", "shape_err_a[m2]");
  std::printf("%-16s %14.1f %14.1f %16.0f %16.0f\n", "morphing EnKF",
              m.err_before, m.err_after, m.shape_before, m.shape_after);
  std::printf("%-16s %14.1f %14.1f %16.0f %16.0f\n", "standard EnKF",
              s.err_before, s.err_after, s.shape_before, s.shape_after);
  std::printf("paper shape check: morphing analysis position error %.1f m "
              "vs standard %.1f m (%s)\n\n",
              m.err_after, s.err_after,
              m.err_after < s.err_after ? "REPRODUCED" : "NOT reproduced");
}

}  // namespace

static void BM_Fig4_MorphingAnalysis(benchmark::State& state) {
  print_fig4_table();
  for (auto _ : state) {
    const TwinResult r = run_twin(core::FilterKind::kMorphingEnKF);
    benchmark::DoNotOptimize(r.err_after);
  }
}
BENCHMARK(BM_Fig4_MorphingAnalysis)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

static void BM_Fig4_StandardAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    const TwinResult r = run_twin(core::FilterKind::kStandardEnKF);
    benchmark::DoNotOptimize(r.err_after);
  }
}
BENCHMARK(BM_Fig4_StandardAnalysis)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

BENCHMARK_MAIN();
