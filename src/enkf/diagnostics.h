// Assimilation skill diagnostics: RMSE against truth, ensemble spread,
// rank (Talagrand) histograms and CRPS. These generate the "standard EnKF
// diverges / morphing EnKF stays close" comparison of the paper's Fig. 4 in
// quantitative form.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace wfire::enkf {

// RMSE between the ensemble mean and the truth vector.
[[nodiscard]] double rmse_mean_vs_truth(const la::Matrix& X,
                                        const la::Vector& truth);

// RMSE between two vectors.
[[nodiscard]] double rmse(const la::Vector& a, const la::Vector& b);

// Rank histogram: for each sampled coordinate, the rank of the truth within
// the sorted member values (N+1 bins). A flat histogram indicates a
// statistically calibrated ensemble. `stride` subsamples coordinates.
[[nodiscard]] std::vector<int> rank_histogram(const la::Matrix& X,
                                              const la::Vector& truth,
                                              int stride = 1);

// Chi-square statistic of a histogram against uniformity (small = flat).
[[nodiscard]] double histogram_chi2(const std::vector<int>& hist);

// Continuous ranked probability score of the ensemble {x_k} for scalar y:
//   CRPS = mean_k |x_k - y| - (1/2) mean_{k,l} |x_k - x_l|.
// Averaged over coordinates (subsampled by stride).
[[nodiscard]] double crps(const la::Matrix& X, const la::Vector& truth,
                          int stride = 1);

}  // namespace wfire::enkf
