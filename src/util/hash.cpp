#include "util/hash.h"

#include <cstring>

namespace wfire::util {

namespace {
constexpr std::uint64_t kPrime = 1099511628211ULL;
}

void Fnv1a::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state_ ^= p[i];
    state_ *= kPrime;
  }
}

void Fnv1a::u64(std::uint64_t v) {
  // Explicit little-endian serialization: the key must not depend on host
  // byte order.
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  bytes(buf, sizeof buf);
}

void Fnv1a::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Fnv1a::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

}  // namespace wfire::util
