#include "atmos/multigrid.h"

#include "util/omp_compat.h"

#include <cmath>

namespace wfire::atmos {

namespace {
bool can_coarsen(const grid::Grid3D& g) {
  return g.nx % 2 == 0 && g.ny % 2 == 0 && g.nz % 2 == 0 && g.nx >= 4 &&
         g.ny >= 4 && g.nz >= 4;
}
}  // namespace

void mg_restrict(const Field3& fine, Field3& coarse) {
  const int nx = coarse.nx(), ny = coarse.ny(), nz = coarse.nz();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        double s = 0;
        for (int c = 0; c < 2; ++c)
          for (int b = 0; b < 2; ++b)
            for (int a = 0; a < 2; ++a)
              s += fine(2 * i + a, 2 * j + b, 2 * k + c);
        coarse(i, j, k) = 0.125 * s;
      }
}

void mg_prolong_add(const Field3& coarse, Field3& fine) {
  const int nx = fine.nx(), ny = fine.ny(), nz = fine.nz();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        // Piecewise-constant injection; smoothing sweeps immediately follow,
        // which restores the usual V-cycle convergence at lower cost.
        fine(i, j, k) += coarse(i / 2, j / 2, k / 2);
}

Multigrid::Multigrid(const grid::Grid3D& fine, MultigridOptions opt)
    : opt_(opt) {
  grids_.push_back(fine);
  while (can_coarsen(grids_.back())) {
    const grid::Grid3D& g = grids_.back();
    grids_.emplace_back(g.nx / 2, g.ny / 2, g.nz / 2, g.dx * 2, g.dy * 2,
                        g.dz * 2);
  }
  for (const auto& g : grids_) {
    rhs_buf_.emplace_back(g.nx, g.ny, g.nz);
    phi_buf_.emplace_back(g.nx, g.ny, g.nz);
    res_buf_.emplace_back(g.nx, g.ny, g.nz);
  }
}

void Multigrid::vcycle(std::size_t level, const Field3& rhs, Field3& phi) {
  const grid::Grid3D& g = grids_[level];
  if (level + 1 == grids_.size()) {
    for (int it = 0; it < opt_.coarse_iters; ++it)
      rbgs_sweep(g, rhs, phi, 1.2);
    return;
  }
  for (int s = 0; s < opt_.pre_smooth; ++s) rbgs_sweep(g, rhs, phi, opt_.omega);

  residual(g, phi, rhs, res_buf_[level]);
  mg_restrict(res_buf_[level], rhs_buf_[level + 1]);
  phi_buf_[level + 1].fill(0.0);
  vcycle(level + 1, rhs_buf_[level + 1], phi_buf_[level + 1]);
  mg_prolong_add(phi_buf_[level + 1], phi);

  for (int s = 0; s < opt_.post_smooth; ++s)
    rbgs_sweep(g, rhs, phi, opt_.omega);
}

SolveStats Multigrid::solve(const Field3& rhs, Field3& phi) {
  const grid::Grid3D& g = grids_.front();
  if (!phi.same_shape(rhs)) phi = Field3(g.nx, g.ny, g.nz, 0.0);
  SolveStats stats;
  Field3& r = res_buf_.front();
  for (int cycle = 0; cycle < opt_.max_cycles; ++cycle) {
    vcycle(0, rhs, phi);
    stats.iterations = cycle + 1;
    stats.final_residual = residual(g, phi, rhs, r);
    if (stats.final_residual < opt_.tol) {
      stats.converged = true;
      break;
    }
  }
  remove_mean(phi);
  return stats;
}

}  // namespace wfire::atmos
