// Level set initialization. The paper initializes psi to the signed distance
// from the fireline; ignitions in the experiments are circles and line
// segments (Fig. 1: "two line ignitions and one circle ignition").
#pragma once

#include <variant>
#include <vector>

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::levelset {

// Circular ignition: burning disc of radius r centered at (cx, cy).
struct CircleIgnition {
  double cx = 0, cy = 0, r = 0;
  double time = 0;  // ignition start time [s]
};

// Line ignition: segment from (x1,y1) to (x2,y2) with half-width w
// (a burning "capsule", matching how drip-torch lines are modeled).
struct LineIgnition {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0, w = 0;
  double time = 0;
};

using Ignition = std::variant<CircleIgnition, LineIgnition>;

// Signed distance from a point to the boundary of one ignition shape
// (negative inside = burning).
[[nodiscard]] double signed_distance(const Ignition& ign, double px,
                                     double py);

// psi(x) = min over shapes of the signed distance (union of burning areas).
// With no shapes, returns +large everywhere (nothing burning).
void initialize_signed_distance(const grid::Grid2D& g,
                                const std::vector<Ignition>& ignitions,
                                util::Array2D<double>& psi);

// Ignition time of each shape, or +inf where no shape covers the domain;
// used to stage delayed ignitions.
[[nodiscard]] double ignition_time(const Ignition& ign);

}  // namespace wfire::levelset
