// Key=value configuration with typed getters and defaults. Examples and
// benches accept `key=value` command-line tokens or a config file, so every
// experiment parameter in DESIGN.md's index is overridable without recompile.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace wfire::util {

class Config {
 public:
  Config() = default;

  // Parses `key=value` tokens; tokens without '=' raise invalid_argument.
  static Config from_args(int argc, const char* const* argv);

  // Parses a file of `key = value` lines. '#' starts a comment.
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;

  // Typed getters: return the default when the key is absent; throw
  // invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] int get_int(const std::string& key, int def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace wfire::util
