// Deterministic non-cryptographic hashing (64-bit FNV-1a) for content keys:
// the risk layer keys its burn-probability product cache on a hash of the
// scenario + perturbation specs, so equal requests served to any number of
// clients resolve to the same cached product. Floating-point fields fold in
// bitwise (two specs hash equal iff their trajectories are bitwise equal),
// and every fold is fixed-width little-endian so keys are stable across
// platforms with the same double format.
#pragma once

#include <cstdint>
#include <string_view>

namespace wfire::util {

class Fnv1a {
 public:
  // Raw bytes, folded one at a time (FNV-1a: xor then multiply).
  void bytes(const void* data, std::size_t n);

  // Fixed-width scalar folds. Integers fold as 8 little-endian bytes;
  // doubles fold their IEEE-754 bit pattern (so -0.0 != 0.0 and every NaN
  // payload is distinct — bitwise-equal inputs, bitwise-equal products).
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void b(bool v) { u64(v ? 1 : 0); }
  void f64(double v);

  // Length-prefixed, so {"ab","c"} and {"a","bc"} hash differently.
  void str(std::string_view s);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 14695981039346656037ULL;  // FNV offset basis
};

}  // namespace wfire::util
