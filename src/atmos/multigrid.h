// Geometric multigrid V-cycle for the pressure Poisson equation. Standard
// components: red-black Gauss-Seidel smoothing, 8-cell averaging restriction
// (cell-centered factor-2 coarsening), trilinear-ish prolongation, SOR on the
// coarsest level. Coarsening stops when any dimension is odd or < 4.
//
// For the 60 m / 6 m reference configuration one projection converges in a
// handful of V-cycles; bench_sub_poisson compares against plain SOR.
#pragma once

#include <vector>

#include "atmos/poisson.h"

namespace wfire::atmos {

struct MultigridOptions {
  int pre_smooth = 2;    // RB-GS sweeps before coarse correction
  int post_smooth = 2;   // sweeps after
  int max_cycles = 50;
  double tol = 1e-8;     // max-norm residual target
  double omega = 1.15;   // smoother relaxation
  int coarse_iters = 60; // SOR sweeps on the coarsest level
};

class Multigrid {
 public:
  explicit Multigrid(const grid::Grid3D& fine, MultigridOptions opt = {});

  // Solves Laplacian(phi) = rhs; phi is initial guess and result.
  SolveStats solve(const Field3& rhs, Field3& phi);

  [[nodiscard]] int levels() const { return static_cast<int>(grids_.size()); }

 private:
  void vcycle(std::size_t level, const Field3& rhs, Field3& phi);

  MultigridOptions opt_;
  std::vector<grid::Grid3D> grids_;          // [0] = finest
  std::vector<Field3> rhs_buf_, phi_buf_, res_buf_;
};

// Restriction / prolongation for cell-centered factor-2 coarsening
// (exposed for unit tests).
void mg_restrict(const Field3& fine, Field3& coarse);
void mg_prolong_add(const Field3& coarse, Field3& fine);

}  // namespace wfire::atmos
