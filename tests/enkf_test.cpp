// EnKF tests: ensemble statistics, both solver paths against each other and
// against the exact Kalman filter in the linear-Gaussian limit, sequential
// filter with localization, inflation, and skill diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "enkf/diagnostics.h"
#include "enkf/enkf.h"
#include "enkf/ensemble.h"
#include "enkf/etkf.h"
#include "enkf/kalman.h"
#include "enkf/localization.h"
#include "la/backend.h"
#include "la/blas.h"
#include "la/workspace.h"

using namespace wfire::enkf;
using namespace wfire::la;
using wfire::util::Rng;

namespace {

// Draws an ensemble from N(mean, var I).
Matrix gaussian_ensemble(const Vector& mean, double std_dev, int N, Rng& rng) {
  const int n = static_cast<int>(mean.size());
  Matrix X(n, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < n; ++i) X(i, k) = mean[i] + std_dev * rng.normal();
  return X;
}

}  // namespace

TEST(Ensemble, MeanAndAnomalies) {
  Matrix X(2, 3);
  X(0, 0) = 1; X(0, 1) = 2; X(0, 2) = 3;
  X(1, 0) = 4; X(1, 1) = 4; X(1, 2) = 4;
  const Vector m = ensemble_mean(X);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  const Matrix A = anomalies(X);
  EXPECT_DOUBLE_EQ(A(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(A(1, 2), 0.0);
}

TEST(Ensemble, InflationPreservesMeanScalesSpread) {
  Rng rng(1);
  Matrix X = gaussian_ensemble(Vector{1.0, 2.0}, 1.0, 50, rng);
  const Vector m0 = ensemble_mean(X);
  const double s0 = spread(X);
  inflate(X, 1.5);
  const Vector m1 = ensemble_mean(X);
  EXPECT_NEAR(m1[0], m0[0], 1e-12);
  EXPECT_NEAR(spread(X), 1.5 * s0, 1e-9);
}

TEST(Ensemble, CovarianceActionMatchesExplicit) {
  Rng rng(2);
  const Matrix X = gaussian_ensemble(Vector(4, 0.0), 2.0, 30, rng);
  const Matrix A = anomalies(X);
  Vector v{1, -1, 2, 0.5};
  const Vector cv = covariance_action(A, v);
  const Matrix P = matmul(A, A, false, true);
  Vector expected(4, 0.0);
  gemv(1.0 / 29.0, P, v, 0.0, expected);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(cv[i], expected[i], 1e-10);
}

TEST(Ensemble, PerturbedEnsembleStatistics) {
  Rng rng(3);
  const Vector base{5.0, -3.0};
  const Matrix X = perturbed_ensemble(base, 2000, 0.7, rng);
  const Vector m = ensemble_mean(X);
  EXPECT_NEAR(m[0], 5.0, 0.06);
  EXPECT_NEAR(spread(X), 0.7, 0.03);
}

TEST(Kalman, ScalarUpdateMatchesClosedForm) {
  // Prior N(0, 4), obs y = 2 with R = 1 -> posterior mean 1.6, var 0.8.
  KalmanState prior{Vector{0.0}, Matrix(1, 1)};
  prior.cov(0, 0) = 4.0;
  Matrix H = Matrix::identity(1);
  const KalmanState post = kalman_update(prior, H, Vector{2.0}, Vector{1.0});
  EXPECT_NEAR(post.mean[0], 1.6, 1e-12);
  EXPECT_NEAR(post.cov(0, 0), 0.8, 1e-12);
}

TEST(Kalman, ForecastPropagatesCovariance) {
  KalmanState s{Vector{1.0, 0.0}, Matrix::identity(2)};
  Matrix M(2, 2, 0.0);
  M(0, 0) = 2.0;
  M(1, 1) = 0.5;
  const KalmanState f = kalman_forecast(s, M, Matrix(2, 2, 0.0));
  EXPECT_DOUBLE_EQ(f.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(f.cov(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(f.cov(1, 1), 0.25);
}

class EnKFPathParam : public ::testing::TestWithParam<SolverPath> {};

TEST_P(EnKFPathParam, ConvergesToKalmanInLinearGaussianLimit) {
  // Large ensemble from a known Gaussian prior, identity obs on part of the
  // state: the EnKF analysis mean must approach the exact KF posterior.
  Rng rng(42);
  const int n = 4;
  const int N = 4000;
  const Vector prior_mean{1.0, 2.0, -1.0, 0.0};
  const double prior_std = 2.0;
  Matrix X = gaussian_ensemble(prior_mean, prior_std, N, rng);

  // Observe coordinates 0 and 2.
  const int m = 2;
  Matrix H(m, n, 0.0);
  H(0, 0) = 1.0;
  H(1, 2) = 1.0;
  const Vector d{3.0, 1.0};
  const Vector r_std{0.5, 0.5};

  Matrix HX(m, N);
  for (int k = 0; k < N; ++k) {
    HX(0, k) = X(0, k);
    HX(1, k) = X(2, k);
  }

  EnKFOptions opt;
  opt.path = GetParam();
  const EnKFStats stats = enkf_analysis(X, HX, d, r_std, rng, opt);
  EXPECT_EQ(stats.path_used, GetParam());

  KalmanState prior{prior_mean, Matrix::identity(n)};
  for (int i = 0; i < n; ++i) prior.cov(i, i) = prior_std * prior_std;
  const KalmanState post = kalman_update(prior, H, d, r_std);

  const Vector mean = ensemble_mean(X);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(mean[i], post.mean[i], 0.12);
}

INSTANTIATE_TEST_SUITE_P(Paths, EnKFPathParam,
                         ::testing::Values(SolverPath::kObsSpace,
                                           SolverPath::kEnsembleSpace));

TEST(EnKF, BothPathsProduceSameAnalysis) {
  // With identical inputs and the same noise stream, the two algebraically
  // equivalent solver paths must give nearly identical analyses.
  const int n = 20, N = 15, m = 8;
  Rng rng_init(7);
  const Matrix X0 = gaussian_ensemble(Vector(n, 1.0), 1.0, N, rng_init);
  Matrix HX(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HX(i, k) = X0(i, k);
  const Vector d(m, 2.0);
  const Vector r_std(m, 0.5);

  Matrix X1 = X0, X2 = X0;
  Rng r1(99), r2(99);
  EnKFOptions o1, o2;
  o1.path = SolverPath::kObsSpace;
  o2.path = SolverPath::kEnsembleSpace;
  enkf_analysis(X1, HX, d, r_std, r1, o1);
  enkf_analysis(X2, HX, d, r_std, r2, o2);
  EXPECT_LT(max_abs_diff(X1, X2), 1e-8);
}

TEST(EnKF, AnalysisMovesTowardObservations) {
  Rng rng(8);
  const int n = 6, N = 40;
  Matrix X = gaussian_ensemble(Vector(n, 0.0), 1.0, N, rng);
  Matrix HX = X;
  const Vector d(n, 5.0);
  const Vector r_std(n, 0.1);  // trust the data
  const EnKFStats stats = enkf_analysis(X, HX, d, r_std, rng);
  const Vector mean = ensemble_mean(X);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(mean[i], 5.0, 0.6);
  EXPECT_GT(stats.innovation_rms, 4.0);
  EXPECT_GT(stats.increment_rms, 4.0);
}

TEST(EnKF, AnalysisShrinksSpread) {
  Rng rng(9);
  const int n = 4, N = 60;
  Matrix X = gaussian_ensemble(Vector(n, 0.0), 2.0, N, rng);
  Matrix HX = X;
  const double s0 = spread(X);
  enkf_analysis(X, HX, Vector(n, 0.0), Vector(n, 0.5), rng);
  EXPECT_LT(spread(X), s0);
}

TEST(EnKF, InputValidation) {
  Rng rng(10);
  Matrix X(4, 5), HX(2, 5);
  EXPECT_THROW(enkf_analysis(X, Matrix(2, 4), Vector(2), Vector(2), rng),
               std::invalid_argument);
  EXPECT_THROW(enkf_analysis(X, HX, Vector(3), Vector(2), rng),
               std::invalid_argument);
  EXPECT_THROW(enkf_analysis(X, HX, Vector(2), Vector(2, -1.0), rng),
               std::invalid_argument);
  Matrix X1(4, 1), HX1(2, 1);
  EXPECT_THROW(enkf_analysis(X1, HX1, Vector(2), Vector(2, 1.0), rng),
               std::invalid_argument);
}

TEST(EnKF, AutoPathSwitchesOnObsCount) {
  Rng rng(11);
  const int N = 10;
  Matrix Xs = gaussian_ensemble(Vector(5, 0.0), 1.0, N, rng);
  Matrix HXs = Xs;
  EnKFStats s1 = enkf_analysis(Xs, HXs, Vector(5, 0.0), Vector(5, 1.0), rng);
  EXPECT_EQ(s1.path_used, SolverPath::kObsSpace);  // m = 5 <= 2N
  Matrix Xl = gaussian_ensemble(Vector(50, 0.0), 1.0, N, rng);
  Matrix HXl = Xl;
  EnKFStats s2 = enkf_analysis(Xl, HXl, Vector(50, 0.0), Vector(50, 1.0), rng);
  EXPECT_EQ(s2.path_used, SolverPath::kEnsembleSpace);  // m = 50 > 2N
}

TEST(EnKFSequential, MatchesBatchOnSingleObservation) {
  Rng rng(12);
  const int n = 5, N = 400;
  const Matrix X0 = gaussian_ensemble(Vector(n, 0.0), 1.5, N, rng);
  Matrix Xb = X0, Xs = X0;
  Matrix HXb(1, N), HXs(1, N);
  for (int k = 0; k < N; ++k) HXb(0, k) = HXs(0, k) = X0(2, k);
  const Vector d{2.0};
  const Vector r_std{0.5};
  Rng r1(5), r2(5);
  enkf_analysis(Xb, HXb, d, r_std, r1);
  enkf_sequential(Xs, HXs, d, r_std, r2);
  EXPECT_LT(max_abs_diff(Xb, Xs), 1e-8);
}

namespace {
// Taper context for the localization test: coordinates on a line, obs at
// positions 10 and 40, radius 5 -> distant state entries must not move.
struct LineTaper {
  static double state_obs(int i, int o, const void*) {
    const double obs_pos = o == 0 ? 10.0 : 40.0;
    return gaspari_cohn(std::abs(i - obs_pos), 5.0);
  }
  static double obs_obs(int o1, int o2, const void*) {
    const double p1 = o1 == 0 ? 10.0 : 40.0;
    const double p2 = o2 == 0 ? 10.0 : 40.0;
    return gaspari_cohn(std::abs(p1 - p2), 5.0);
  }
};
}  // namespace

TEST(EnKFSequential, LocalizationConfinesIncrements) {
  Rng rng(13);
  const int n = 50, N = 20;
  const Matrix X0 = gaussian_ensemble(Vector(n, 0.0), 1.0, N, rng);
  Matrix X = X0;
  Matrix HX(2, N);
  for (int k = 0; k < N; ++k) {
    HX(0, k) = X0(10, k);
    HX(1, k) = X0(40, k);
  }
  SequentialOptions opt;
  opt.state_obs_taper = &LineTaper::state_obs;
  opt.obs_obs_taper = &LineTaper::obs_obs;
  enkf_sequential(X, HX, Vector{3.0, -3.0}, Vector{0.3, 0.3}, rng, opt);

  const Vector m0 = ensemble_mean(X0);
  const Vector m1 = ensemble_mean(X);
  // Far from both observations (beyond 2c = 10): no change.
  for (int i : {22, 25, 28}) EXPECT_NEAR(m1[i], m0[i], 1e-10);
  // At the observations: pulled toward the data.
  EXPECT_GT(m1[10] - m0[10], 0.5);
  EXPECT_LT(m1[40] - m0[40], -0.5);
}

TEST(Localization, GaspariCohnShape) {
  EXPECT_NEAR(gaspari_cohn(0.0, 10.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(gaspari_cohn(20.0, 10.0), 0.0);  // r = 2c -> 0
  EXPECT_DOUBLE_EQ(gaspari_cohn(25.0, 10.0), 0.0);
  double prev = 1.0;
  for (double r = 0.5; r < 20.0; r += 0.5) {
    const double v = gaspari_cohn(r, 10.0);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, -1e-12);
    prev = v;
  }
  EXPECT_NEAR(gaspari_cohn(10.0 - 1e-9, 10.0), gaspari_cohn(10.0 + 1e-9, 10.0),
              1e-6);
}

TEST(Diagnostics, RmseAndRankHistogram) {
  Rng rng(14);
  const int n = 2000, N = 10;
  const Vector zero(n, 0.0);
  const Matrix X = gaussian_ensemble(zero, 1.0, N, rng);
  EXPECT_NEAR(rmse_mean_vs_truth(X, zero), 1.0 / std::sqrt(N), 0.05);

  // Rank uniformity holds when the truth is exchangeable with the members:
  // draw it from the same N(0,1) per coordinate.
  Vector truth(n);
  for (auto& v : truth) v = rng.normal();
  const auto hist = rank_histogram(X, truth);
  ASSERT_EQ(hist.size(), static_cast<std::size_t>(N + 1));
  EXPECT_LT(histogram_chi2(hist), 3.0 * N);

  // Biased ensemble: truth always below members -> all mass in bin 0.
  Matrix Xb = X;
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < n; ++i) Xb(i, k) += 10.0;
  const auto hist_b = rank_histogram(Xb, truth);
  EXPECT_EQ(hist_b[0], n);
  EXPECT_GT(histogram_chi2(hist_b), 100.0 * N);
}

TEST(Etkf, MatchesKalmanMeanAndCovariance) {
  // The deterministic transform should match the exact KF posterior not
  // just in the large-N limit of the mean, but in the *sample covariance*
  // at any N (square-root property) — modulo prior sampling error.
  Rng rng(40);
  const int n = 3, N = 200;  // N^3 Jacobi eigensolve: keep the test quick
  const Vector prior_mean{0.0, 1.0, -2.0};
  Matrix X = gaussian_ensemble(prior_mean, 1.5, N, rng);
  Matrix HX(1, N);
  for (int k = 0; k < N; ++k) HX(0, k) = X(1, k);
  const Vector d{3.0};
  const Vector r_std{0.5};

  const EnKFStats stats = etkf_analysis(X, HX, d, r_std);
  EXPECT_EQ(stats.m, 1);

  Matrix H(1, n, 0.0);
  H(0, 1) = 1.0;
  KalmanState prior{prior_mean, Matrix::identity(n)};
  for (int i = 0; i < n; ++i) prior.cov(i, i) = 1.5 * 1.5;
  const KalmanState post = kalman_update(prior, H, d, r_std);

  const Vector mean = ensemble_mean(X);
  // Unobserved coordinates move only through spurious sample correlations
  // of the prior (O(1/sqrt(N))), so their tolerance is looser.
  EXPECT_NEAR(mean[1], post.mean[1], 0.1);
  EXPECT_NEAR(mean[0], post.mean[0], 0.4);
  EXPECT_NEAR(mean[2], post.mean[2], 0.4);
  // Sample variance of the observed coordinate matches the KF posterior.
  double var = 0;
  for (int k = 0; k < N; ++k) var += (X(1, k) - mean[1]) * (X(1, k) - mean[1]);
  var /= (N - 1);
  EXPECT_NEAR(var, post.cov(1, 1), 0.08);
}

TEST(Etkf, DeterministicGivenInputs) {
  Rng rng(41);
  const int n = 10, N = 12, m = 4;
  const Matrix X0 = gaussian_ensemble(Vector(n, 0.0), 1.0, N, rng);
  Matrix HX(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HX(i, k) = X0(i, k);
  const Vector d(m, 1.0), r_std(m, 0.5);
  Matrix X1 = X0, X2 = X0;
  etkf_analysis(X1, HX, d, r_std);
  etkf_analysis(X2, HX, d, r_std);
  EXPECT_LT(max_abs_diff(X1, X2), 1e-15);  // no sampling anywhere
}

TEST(Etkf, LessNoisyThanStochasticAtSmallN) {
  // With few members the perturbed-observation EnKF adds sampling noise to
  // the analysis mean; the ETKF does not. Measure the spread of analysis
  // means across repetitions with different obs-noise seeds.
  Rng rng(42);
  const int n = 2, N = 8, m = 2;
  const Matrix X0 = gaussian_ensemble(Vector(n, 0.0), 1.0, N, rng);
  Matrix HX0(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HX0(i, k) = X0(i, k);
  const Vector d(m, 2.0), r_std(m, 0.5);

  // ETKF: a single deterministic answer.
  Matrix Xe = X0;
  etkf_analysis(Xe, HX0, d, r_std);
  const Vector etkf_mean = ensemble_mean(Xe);

  double scatter = 0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    Matrix Xs = X0;
    Rng r(1000 + rep);
    enkf_analysis(Xs, HX0, d, r_std, r);
    const Vector msd = ensemble_mean(Xs);
    scatter += (msd[0] - etkf_mean[0]) * (msd[0] - etkf_mean[0]);
  }
  scatter = std::sqrt(scatter / reps);
  // The stochastic means scatter around the deterministic one.
  EXPECT_GT(scatter, 1e-4);
  EXPECT_LT(scatter, 0.5);
}

TEST(Etkf, ShrinksSpreadLikeAnAnalysisShould) {
  Rng rng(43);
  const int n = 6, N = 20;
  Matrix X = gaussian_ensemble(Vector(n, 0.0), 2.0, N, rng);
  Matrix HX = X;
  const double s0 = spread(X);
  etkf_analysis(X, HX, Vector(n, 0.0), Vector(n, 0.5));
  EXPECT_LT(spread(X), s0);
  EXPECT_GT(spread(X), 0.0);
}

TEST(Etkf, InputValidation) {
  Matrix X(4, 5), HX(2, 5);
  EXPECT_THROW(etkf_analysis(X, Matrix(2, 4), Vector(2), Vector(2)),
               std::invalid_argument);
  EXPECT_THROW(etkf_analysis(X, HX, Vector(2), Vector(2, -1.0)),
               std::invalid_argument);
}

TEST(Diagnostics, CrpsRewardsSharpCalibratedEnsembles) {
  Rng rng(15);
  const int n = 500;
  const Vector truth(n, 0.0);
  const Matrix sharp = gaussian_ensemble(truth, 0.5, 20, rng);
  const Matrix wide = gaussian_ensemble(truth, 3.0, 20, rng);
  EXPECT_LT(crps(sharp, truth), crps(wide, truth));
}

// --- LA backend cross-checks: the analysis must not depend on which kernel
// backend runs it, and the two solver paths must agree on both backends. ---

namespace {

struct BackendProblem {
  Matrix X0, HX;
  Vector d, r_std;
};

BackendProblem backend_problem(int n, int m, int N, unsigned seed) {
  Rng rng(seed);
  BackendProblem p;
  p.X0 = gaussian_ensemble(Vector(n, 1.0), 1.0, N, rng);
  p.HX = Matrix(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) p.HX(i, k) = p.X0(i % n, k);
  p.d = Vector(static_cast<std::size_t>(m), 2.0);
  p.r_std = Vector(static_cast<std::size_t>(m), 0.5);
  return p;
}

Matrix run_analysis(const BackendProblem& p, SolverPath path,
                    wfire::la::Backend be, wfire::la::Workspace* ws = nullptr) {
  wfire::la::ScopedBackend scope(be);
  Matrix X = p.X0;
  Rng rng(321);
  EnKFOptions opt;
  opt.path = path;
  opt.workspace = ws;
  enkf_analysis(X, p.HX, p.d, p.r_std, rng, opt);
  return X;
}

}  // namespace

TEST(EnKFBackend, AnalysisAgreesAcrossBackends) {
  // Sizes straddle the blocked kernels' tile edge in both m and N.
  for (const auto& [n, m, N] : {std::tuple{40, 8, 15}, std::tuple{130, 70, 20},
                                std::tuple{65, 129, 10}}) {
    const BackendProblem p = backend_problem(n, m, N, 77);
    for (const SolverPath path :
         {SolverPath::kObsSpace, SolverPath::kEnsembleSpace}) {
      const Matrix Xb = run_analysis(p, path, wfire::la::Backend::kBlocked);
      const Matrix Xr = run_analysis(p, path, wfire::la::Backend::kReference);
      const double scale = std::max(frobenius_norm(Xr), 1.0);
      EXPECT_LE(max_abs_diff(Xb, Xr) / scale, 1e-10)
          << "n " << n << " m " << m << " N " << N;
    }
  }
}

TEST(EnKFBackend, SolverPathsAgreeOnBothBackends) {
  const BackendProblem p = backend_problem(30, 12, 18, 5);
  for (const auto be :
       {wfire::la::Backend::kBlocked, wfire::la::Backend::kReference}) {
    const Matrix X_obs = run_analysis(p, SolverPath::kObsSpace, be);
    const Matrix X_ens = run_analysis(p, SolverPath::kEnsembleSpace, be);
    EXPECT_LT(max_abs_diff(X_obs, X_ens), 1e-8);
  }
}

TEST(EnKFBackend, WorkspaceReuseGivesIdenticalResults) {
  // Same workspace across repeated analyses of different shapes: results
  // must be bitwise identical to fresh-allocation runs.
  wfire::la::Workspace ws;
  const BackendProblem p1 = backend_problem(50, 10, 12, 31);
  const BackendProblem p2 = backend_problem(24, 40, 8, 32);
  // Warm the arena with the larger problem, then run the smaller one.
  (void)run_analysis(p1, SolverPath::kObsSpace, wfire::la::Backend::kBlocked,
                     &ws);
  const Matrix with_ws = run_analysis(p2, SolverPath::kEnsembleSpace,
                                      wfire::la::Backend::kBlocked, &ws);
  const Matrix without =
      run_analysis(p2, SolverPath::kEnsembleSpace, wfire::la::Backend::kBlocked);
  EXPECT_EQ(max_abs_diff(with_ws, without), 0.0);
}

TEST(EnKFBackend, SequentialAgreesAcrossBackends) {
  Rng rng(60);
  const int n = 70, N = 15, m = 40;  // m > batch size exercises the flush
  const Matrix X0 = gaussian_ensemble(Vector(n, 0.0), 1.0, N, rng);
  Matrix HX0(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HX0(i, k) = X0(i % n, k);
  const Vector d(m, 1.0), r_std(m, 0.7);

  Matrix Xb = X0, HXb = HX0, Xr = X0, HXr = HX0;
  {
    wfire::la::ScopedBackend be(wfire::la::Backend::kBlocked);
    Rng r(9);
    enkf_sequential(Xb, HXb, d, r_std, r);
  }
  {
    wfire::la::ScopedBackend be(wfire::la::Backend::kReference);
    Rng r(9);
    enkf_sequential(Xr, HXr, d, r_std, r);
  }
  const double scale = std::max(frobenius_norm(Xr), 1.0);
  EXPECT_LE(max_abs_diff(Xb, Xr) / scale, 1e-10);
  EXPECT_LE(max_abs_diff(HXb, HXr) / scale, 1e-10);
}

namespace {

// Committed golden mean increment for the Fig. 2 image-regime ensemble-space
// analysis below (n = 60, m = 400, N = 12, seeds 4242/321), produced by the
// SVD factorization on the reference backend when the QR square-root path
// landed. Pins the full analysis end to end — anomalies, innovation draws,
// factorization, solve, update — not just the kernels; any combination of
// backend x factorization must reproduce it.
constexpr double kGoldenIncrementRms = 0.26916308926474586;
constexpr double kGoldenIncrement[60] = {
    -0.083778640138027133, 0.51818798228387564, -0.084693832259294249,
    0.35294993143109965, 0.21211254123030815, 0.27337071531650614,
    -0.088855648431599099, -0.47334425859603863, -0.2139760313357093,
    -0.20776751723687353, -0.44985496896572086, 0.34543700576721464,
    -0.13725696108357396, -0.11517730155282502, 0.46605989997990638,
    -0.11358204001075206, -0.15676392407740802, 0.46478937699563605,
    -0.011982505471240246, 0.099314776228547855, 0.20678895060299701,
    0.16795638166332794, -0.18208142512350189, 0.22613863784123528,
    0.0075753796717322741, 0.50480831136033788, 0.12469666741210053,
    0.015527664511309575, 0.016335864518790655, 0.20606613469128804,
    0.30223446882182242, 0.44051752839306124, -0.2363670628342775,
    0.26760818174314027, -0.22078918171557227, -0.033723108799013635,
    0.09927023598644158, 0.25919875717244029, -0.21151489213594254,
    -0.032814510764777566, -0.26941245319384588, -0.47574519194360659,
    -0.10494086147823764, 0.27620090042487377, 0.075860858580130697,
    0.26161354444811646, 0.023652169330544523, 0.66038429013037803,
    -0.24250374828559901, 0.55841078686088785, -0.44063859750625389,
    -0.043363917705992475, 0.062718645690130317, -0.073205305204638971,
    -0.064787026811078507, 0.036765374095607761, 0.24489093355507419,
    0.24571379571433472, -0.10307580362092778, 0.025047083554149391};

}  // namespace

TEST(EnKFGolden, EnsembleSpaceIncrementMatchesCommittedVector) {
  const int n = 60, m = 400, N = 12;
  Rng gen(4242);
  Matrix X0(n, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < n; ++i) X0(i, k) = gen.normal();
  Matrix HX(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) HX(i, k) = X0(i % n, k) + 0.1 * gen.normal();
  Vector d(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) d[i] = 1.0 + 0.5 * std::sin(0.05 * i);
  const Vector r_std(static_cast<std::size_t>(m), 0.5);
  const Vector mb = ensemble_mean(X0);

  // rtol with a small atol floor: near-zero components of the increment
  // carry rounding noise from the factorization differences.
  const double rtol = 1e-6, atol = 1e-9;
  for (const Backend be : {Backend::kReference, Backend::kBlocked}) {
    for (const Factorization fact : {Factorization::kSvd, Factorization::kQr}) {
      ScopedBackend scope(be);
      Matrix X = X0;
      Rng rng(321);
      EnKFOptions opt;
      opt.path = SolverPath::kEnsembleSpace;
      opt.factorization = fact;
      const EnKFStats s = enkf_analysis(X, HX, d, r_std, rng, opt);
      EXPECT_EQ(s.factorization_used, fact);
      EXPECT_NEAR(s.increment_rms, kGoldenIncrementRms,
                  rtol * kGoldenIncrementRms);
      const Vector ma = ensemble_mean(X);
      for (int i = 0; i < n; ++i)
        EXPECT_NEAR(ma[i] - mb[i], kGoldenIncrement[i],
                    rtol * std::abs(kGoldenIncrement[i]) + atol)
            << "component " << i << " backend "
            << (be == Backend::kBlocked ? "blocked" : "reference")
            << " factorization "
            << (fact == Factorization::kQr ? "qr" : "svd");
    }
  }
}
