#!/usr/bin/env python3
"""Docs-consistency check for docs/CONFIG.md.

Fails (exit 1) on drift in either direction:
  - an environment knob read via getenv("WFIRE_*") anywhere under src/, or a
    CMake option(WFIRE_*) in the top-level CMakeLists.txt, that docs/CONFIG.md
    does not mention;
  - a WFIRE_* token mentioned in docs/CONFIG.md that no longer exists in
    src/, the top-level CMakeLists.txt, or CMakePresets.json.

Run from anywhere: paths resolve relative to the repo root (the parent of
this script's directory). No dependencies beyond the standard library.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
GETENV = re.compile(r'getenv\(\s*"(WFIRE_[A-Z0-9_]+)"')
OPTION = re.compile(r"^option\((WFIRE_[A-Z0-9_]+)", re.MULTILINE)
TOKEN = re.compile(r"\b(WFIRE_[A-Z0-9_]+)\b")


def main() -> int:
    src_files = sorted((ROOT / "src").rglob("*.cpp")) + sorted(
        (ROOT / "src").rglob("*.h"))
    src_text = "\n".join(f.read_text() for f in src_files)
    cmake_text = (ROOT / "CMakeLists.txt").read_text()
    presets_text = (ROOT / "CMakePresets.json").read_text()

    env_knobs = set(GETENV.findall(src_text))
    cmake_opts = set(OPTION.findall(cmake_text))

    doc_path = ROOT / "docs" / "CONFIG.md"
    doc_tokens = set(TOKEN.findall(doc_path.read_text()))

    # Everything a documented token may legitimately refer to: env knobs,
    # build options, and code identifiers like the WFIRE_PRAGMA_OMP shim.
    known = set(TOKEN.findall(src_text + cmake_text + presets_text))

    errors = []
    for k in sorted(env_knobs - doc_tokens):
        errors.append(
            f"{k}: read via getenv() under src/ but not documented in "
            f"docs/CONFIG.md")
    for k in sorted(cmake_opts - doc_tokens):
        errors.append(
            f"{k}: declared as a CMake option but not documented in "
            f"docs/CONFIG.md")
    for k in sorted(doc_tokens - known):
        errors.append(
            f"{k}: documented in docs/CONFIG.md but absent from src/, "
            f"CMakeLists.txt and CMakePresets.json")

    if errors:
        print("docs/CONFIG.md is out of sync with the sources:",
              file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1

    print(f"docs/CONFIG.md consistent: {len(env_knobs)} env knobs, "
          f"{len(cmake_opts)} CMake options, "
          f"{len(doc_tokens)} documented tokens.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
