// Substrate benchmark: the two EnKF solver paths. The analysis cost is the
// serial fraction of the paper's Fig. 2 pipeline, so its scaling with the
// observation count m and ensemble size N decides how much data (image
// pixels) can be assimilated per cycle.
//
// Expected shape: the observation-space path (Cholesky of an m x m matrix)
// scales ~m^3 and wins for few observations; the ensemble-space path (thin
// SVD of an m x N matrix) scales ~m N^2 and wins once m >> N — the image
// assimilation regime.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "backend_args.h"
#include "enkf/enkf.h"
#include "enkf/ensemble.h"
#include "la/backend.h"
#include "la/workspace.h"

using namespace wfire;
using wfire::bench::arg_backend;
using wfire::bench::backend_name;
using wfire::enkf::Factorization;

namespace {

using namespace wfire::enkf;
using namespace wfire::la;

struct Problem {
  Matrix X, HX;
  Vector d, r_std;
};

Problem make_problem(int n, int m, int N, util::Rng& rng) {
  Problem p;
  p.X = Matrix(n, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < n; ++i) p.X(i, k) = rng.normal();
  p.HX = Matrix(m, N);
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) p.HX(i, k) = p.X(i % n, k) + 0.1 * rng.normal();
  p.d = Vector(static_cast<std::size_t>(m), 1.0);
  p.r_std = Vector(static_cast<std::size_t>(m), 0.5);
  return p;
}

void print_crossover_note() {
  static bool done = false;
  if (done) return;
  done = true;
  std::printf("\n=== Substrate: EnKF solver paths (N = 25 members) ===\n");
  std::printf("obs-space Cholesky ~ O(m^3); ensemble-space SVD ~ O(m N^2).\n");
  std::printf("auto path switches at m = 2N; timings below show the "
              "crossover.\n\n");
}

}  // namespace

static void BM_EnKF_ObsSpace(benchmark::State& state) {
  print_crossover_note();
  const int m = static_cast<int>(state.range(0));
  const int N = 25;
  const int n = 4096;
  util::Rng rng(3);
  const Problem base = make_problem(n, m, N, rng);
  EnKFOptions opt;
  opt.path = SolverPath::kObsSpace;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(7);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.counters["m"] = m;
}
BENCHMARK(BM_EnKF_ObsSpace)
    ->Unit(benchmark::kMillisecond)
    ->Arg(25)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1000);

static void BM_EnKF_EnsembleSpace(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int N = 25;
  const int n = 4096;
  util::Rng rng(3);
  const Problem base = make_problem(n, m, N, rng);
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(7);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.counters["m"] = m;
}
BENCHMARK(BM_EnKF_EnsembleSpace)
    ->Unit(benchmark::kMillisecond)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(40000);

static void BM_EnKF_EnsembleSize(benchmark::State& state) {
  // Cost vs ensemble size at image-scale m (the Fig. 4 regime).
  const int N = static_cast<int>(state.range(0));
  const int m = 10000;
  const int n = 4096;
  util::Rng rng(5);
  const Problem base = make_problem(n, m, N, rng);
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(9);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.counters["N"] = N;
}
BENCHMARK(BM_EnKF_EnsembleSize)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50);

// The acceptance shape for the blocked backend: a state of n >= 20k (image
// assimilation scale) with the paper's N = 25 members, per backend, with a
// reused workspace so steady-state analyses are allocation-free. The
// blocked/reference ratio of these timings is the headline number in
// BENCH_pr3.json.
static void BM_EnKF_LargeStateObsSpace(benchmark::State& state) {
  const std::int64_t be = state.range(0);
  const int n = 20000, m = 1000, N = 25;
  util::Rng rng(17);
  const Problem base = make_problem(n, m, N, rng);
  ScopedBackend scope(arg_backend(be));
  Workspace ws;
  EnKFOptions opt;
  opt.path = SolverPath::kObsSpace;
  opt.workspace = &ws;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(7);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.SetLabel(backend_name(be));
}
BENCHMARK(BM_EnKF_LargeStateObsSpace)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

static void BM_EnKF_LargeStateEnsembleSpace(benchmark::State& state) {
  const std::int64_t be = state.range(0);
  const int n = 20000, m = 10000, N = 25;
  util::Rng rng(19);
  const Problem base = make_problem(n, m, N, rng);
  ScopedBackend scope(arg_backend(be));
  Workspace ws;
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  opt.workspace = &ws;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(7);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.SetLabel(backend_name(be));
}
BENCHMARK(BM_EnKF_LargeStateEnsembleSpace)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

// The PR 4 headline: the full ensemble-space analysis with the QR
// square-root factorization against the Jacobi-SVD path it replaced, at the
// paper's N = 25 with image-scale observation counts. arg 0 is m, arg 1
// selects the factorization (0 = qr, 1 = svd); both run the blocked kernel
// backend with a reused workspace, so the difference is the factorization
// itself.
static void BM_EnKF_EnsembleSpaceFactorization(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const bool use_svd = state.range(1) != 0;
  const int n = 20000, N = 25;
  util::Rng rng(29);
  const Problem base = make_problem(n, m, N, rng);
  Workspace ws;
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  opt.factorization = use_svd ? Factorization::kSvd : Factorization::kQr;
  opt.workspace = &ws;
  for (auto _ : state) {
    Matrix X = base.X;
    util::Rng r(7);
    const EnKFStats s = enkf_analysis(X, base.HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.SetLabel(use_svd ? "svd" : "qr");
  state.counters["m"] = m;
}
BENCHMARK(BM_EnKF_EnsembleSpaceFactorization)
    ->Unit(benchmark::kMillisecond)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

static void BM_EnKF_LargeStateSequential(benchmark::State& state) {
  const std::int64_t be = state.range(0);
  const int n = 20000, m = 100, N = 25;
  util::Rng rng(23);
  const Problem base = make_problem(n, m, N, rng);
  ScopedBackend scope(arg_backend(be));
  Workspace ws;
  SequentialOptions opt;
  opt.workspace = &ws;
  for (auto _ : state) {
    Matrix X = base.X;
    Matrix HX = base.HX;
    util::Rng r(13);
    const EnKFStats s = enkf_sequential(X, HX, base.d, base.r_std, r, opt);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.SetLabel(backend_name(be));
}
BENCHMARK(BM_EnKF_LargeStateSequential)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

static void BM_EnKF_Sequential(benchmark::State& state) {
  // Sequential filter cost per observation (the localized path).
  const int m = static_cast<int>(state.range(0));
  const int N = 25;
  const int n = 4096;
  util::Rng rng(11);
  const Problem base = make_problem(n, m, N, rng);
  for (auto _ : state) {
    Matrix X = base.X;
    Matrix HX = base.HX;
    util::Rng r(13);
    const EnKFStats s = enkf_sequential(X, HX, base.d, base.r_std, r);
    benchmark::DoNotOptimize(s.increment_rms);
  }
  state.counters["m"] = m;
}
BENCHMARK(BM_EnKF_Sequential)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200);

BENCHMARK_MAIN();
