// Kernel backend selection for the dense LA layer. Two implementations of
// every hot kernel (gemm, syrk, ger, Cholesky) coexist:
//  - kBlocked: cache-blocked, panel-packed, OpenMP-threaded — the default;
//  - kReference: the original naive triple loops — kept as the ground truth
//    the blocked kernels are property-tested against.
// The process-wide default comes from the environment at first use
// (WFIRE_LA_BACKEND=blocked|reference, WFIRE_LA_BLOCK=<tile edge>) and can
// be overridden programmatically; tests use ScopedBackend.
//
// Two further runtime knobs live here with the backend:
//  - QrScheme picks the tall-skinny panel factorization used by the
//    square-root analysis (WFIRE_QR_SCHEME=tsqr|blocked; see la/qr.h for
//    the TSQR row-block reduction tree and the kAuto resolution rule);
//  - the gemm/syrk pack step exposes a per-column scale hook (gemm_scaled /
//    syrk_scaled in la/blas.h): a diagonal weight along the contraction
//    dimension is applied while panels are packed, so diagonal row/column
//    scalings (the EnKF's R^{-1/2} observation weighting) fuse into the
//    product instead of costing separate m x N sweeps.
#pragma once

namespace wfire::la {

enum class Backend { kBlocked, kReference };

// Panel factorization scheme for tall-skinny QR systems (see la/qr.h):
//  - kBlocked: the compact-WY blocked Householder chain;
//  - kTsqr: communication-avoiding TSQR (independent row blocks + binary
//    R-reduction tree — the m-sized work parallelizes across blocks);
//  - kAuto: follow the process default (WFIRE_QR_SCHEME); when that is also
//    unset, use tsqr for panels with m >= 8 n that split into at least two
//    row blocks, blocked otherwise.
enum class QrScheme { kAuto, kBlocked, kTsqr };

// Process-wide QR scheme (env WFIRE_QR_SCHEME at first use; kAuto when
// unset). set_default_qr_scheme overrides it; tests use ScopedQrScheme.
[[nodiscard]] QrScheme default_qr_scheme();
void set_default_qr_scheme(QrScheme s);

// Process-wide backend for all dispatching kernels.
[[nodiscard]] Backend backend();
void set_backend(Backend b);

// Tile edge used by the blocked kernels (default 64, env WFIRE_LA_BLOCK).
// Values are clamped to [8, 1024].
[[nodiscard]] int block_size();
void set_block_size(int nb);

// RAII backend (and optionally block size) override for tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prev_(backend()) { set_backend(b); }
  ScopedBackend(Backend b, int nb)
      : prev_(backend()), prev_nb_(block_size()) {
    set_backend(b);
    set_block_size(nb);
  }
  ~ScopedBackend() {
    set_backend(prev_);
    if (prev_nb_ > 0) set_block_size(prev_nb_);
  }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend prev_;
  int prev_nb_ = 0;
};

// RAII QR-scheme override for tests.
class ScopedQrScheme {
 public:
  explicit ScopedQrScheme(QrScheme s) : prev_(default_qr_scheme()) {
    set_default_qr_scheme(s);
  }
  ~ScopedQrScheme() { set_default_qr_scheme(prev_); }
  ScopedQrScheme(const ScopedQrScheme&) = delete;
  ScopedQrScheme& operator=(const ScopedQrScheme&) = delete;

 private:
  QrScheme prev_;
};

}  // namespace wfire::la
