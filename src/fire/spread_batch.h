// Batched spread-rate evaluation for SoA ensembles (see levelset/batch.h for
// the layout contract). The per-cell fuel lookup is flattened once into
// plain coefficient arrays so the fused cells x members sweep does no
// pointer chasing; the per-node arithmetic is exactly spread.cpp /
// godunov.cpp normals order, so batched-vs-per-member agreement is bitwise.
#pragma once

#include <vector>

#include "fire/fuel.h"
#include "levelset/batch.h"

namespace wfire::fire {

// Per-cell spread-law coefficients flattened from a FuelMap (shared by all
// members — the ensemble perturbs state and forcing, not the fuel map).
struct SpreadTables {
  std::vector<double> R0, a, b, d, Smax;
  std::vector<double> tau;  // mass-loss e-folding time, for the fuel decay
  // Fuel-bed load / heat content / latent split, for the batched heat-flux
  // pass of the coupled ensemble (FireModel::step_into flux arithmetic).
  std::vector<double> w0, h, latent_fraction;
  std::vector<unsigned char> burnable;  // 0 where the fuel index is -1

  [[nodiscard]] static SpreadTables build(const FuelMap& fuel);
};

// Evaluates S per member at each band cell from psi-derived normals and
// per-member uniform winds (wind_u/wind_v are member rows of length
// lay.stride — the ensemble-cycle forcing; padding lanes must be 0).
// Output `speed` is compact (band-major); cells with no fuel or exhausted
// fuel (fuel_frac <= min_fuel_frac) get S = 0. Returns the max S over the
// band — the CFL / band-travel bound for this step.
double spread_field_batch(const grid::Grid2D& g,
                          const levelset::BatchLayout& lay, const double* psi,
                          const double* fuel_frac, const double* wind_u,
                          const double* wind_v, const SpreadTables& tables,
                          const util::Array2D<double>& dzdx,
                          const util::Array2D<double>& dzdy,
                          double min_fuel_frac, const int* band, int nband,
                          double* speed);

// Same evaluation with per-member wind *fields* in the SoA layout
// (wind_u/wind_v indexed cell * stride + member, like psi) — the coupled
// path, where each member samples its own atmosphere onto the fire mesh.
// Per lane the arithmetic is identical to spread_field_batch with that
// member's wind values, hence to the scalar spread_field.
double spread_field_batch_field_wind(
    const grid::Grid2D& g, const levelset::BatchLayout& lay, const double* psi,
    const double* fuel_frac, const double* wind_u, const double* wind_v,
    const SpreadTables& tables, const util::Array2D<double>& dzdx,
    const util::Array2D<double>& dzdy, double min_fuel_frac, const int* band,
    int nband, double* speed);

}  // namespace wfire::fire
