#include "obs/obs_function.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "levelset/fast_sweep.h"

namespace wfire::obs {

util::Array2D<double> heat_flux_image(const fire::FuelMap& fuel,
                                      const util::Array2D<double>& tig,
                                      double time) {
  util::Array2D<double> flux(tig.nx(), tig.ny(), 0.0);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < tig.ny(); ++j)
    for (int i = 0; i < tig.nx(); ++i) {
      const double ti = tig(i, j);
      if (ti == fire::kNotIgnited || ti > time) continue;
      const fire::FuelCategory* cat = fuel.at(i, j);
      if (cat == nullptr) continue;
      // Burn rate of the exponential fuel decay at age (time - tig):
      // dF/dt = exp(-age/tau)/tau; flux = w0 h (1 - latent) dF/dt.
      const double age = time - ti;
      const double rate = std::exp(-age / cat->tau) / cat->tau;
      flux(i, j) = cat->w0 * cat->h * (1.0 - cat->latent_fraction) * rate;
    }
  return flux;
}

util::Array2D<double> median3x3(const util::Array2D<double>& f) {
  util::Array2D<double> out(f.nx(), f.ny());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < f.ny(); ++j) {
    double window[9];
    for (int i = 0; i < f.nx(); ++i) {
      int n = 0;
      for (int b = -1; b <= 1; ++b)
        for (int a = -1; a <= 1; ++a)
          window[n++] = f.at_clamped(i + a, j + b);
      std::nth_element(window, window + 4, window + 9);
      out(i, j) = window[4];
    }
  }
  return out;
}

util::Array2D<double> front_distance_field(
    const util::Array2D<double>& flux, const grid::Grid2D& g,
    double threshold, bool denoise) {
  if (flux.nx() != g.nx || flux.ny() != g.ny)
    throw std::invalid_argument("front_distance_field: shape mismatch");
  const util::Array2D<double>& img = denoise ? median3x3(flux) : flux;
  const double far = g.width() + g.height();
  util::Array2D<double> dist(g.nx, g.ny, far);
  bool any = false;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      if (img(i, j) > threshold) {
        dist(i, j) = -far;
        any = true;
      }
  if (!any) return dist;
  levelset::reinitialize(g, dist, 3);
  return dist;
}

void write_fire_state(const std::string& path, const fire::FireState& s) {
  Sections sections;
  sections["psi"].assign(s.psi.span().begin(), s.psi.span().end());
  sections["tig"].assign(s.tig.span().begin(), s.tig.span().end());
  sections["time"] = {s.time};
  sections["dims"] = {static_cast<double>(s.psi.nx()),
                      static_cast<double>(s.psi.ny())};
  StateFile::write(path, sections);
}

fire::FireState read_fire_state(const std::string& path, int nx, int ny) {
  const Sections sections = StateFile::read(path);
  const auto need = [&](const char* name) -> const std::vector<double>& {
    const auto it = sections.find(name);
    if (it == sections.end())
      throw std::runtime_error(std::string("read_fire_state: missing ") +
                               name + " in " + path);
    return it->second;
  };
  const auto& psi = need("psi");
  const auto& tig = need("tig");
  const auto& time = need("time");
  if (psi.size() != static_cast<std::size_t>(nx) * ny || psi.size() != tig.size())
    throw std::runtime_error("read_fire_state: size mismatch in " + path);
  fire::FireState s;
  s.psi = util::Array2D<double>(nx, ny);
  s.tig = util::Array2D<double>(nx, ny);
  std::copy(psi.begin(), psi.end(), s.psi.span().begin());
  std::copy(tig.begin(), tig.end(), s.tig.span().begin());
  s.time = time.at(0);
  return s;
}

util::Array2D<double> observation_function_file(const std::string& state_path,
                                                const std::string& synth_path,
                                                const fire::FuelMap& fuel,
                                                int nx, int ny) {
  const fire::FireState s = read_fire_state(state_path, nx, ny);
  util::Array2D<double> img = heat_flux_image(fuel, s.tig, s.time);
  Sections sections;
  sections["heat_flux"].assign(img.span().begin(), img.span().end());
  sections["dims"] = {static_cast<double>(nx), static_cast<double>(ny)};
  sections["time"] = {s.time};
  StateFile::write(synth_path, sections);
  return img;
}

}  // namespace wfire::obs
