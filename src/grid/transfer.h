// Transfer operators between the fine fire mesh and the coarse atmosphere
// mesh (paper Sec. 2.3: 6 m fire mesh inside a 60 m atmosphere mesh, 10:1).
// Restriction conserves integrals (block averaging of fluxes); prolongation
// is bilinear (winds are smooth fields).
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::grid {

// Averages `ratio x ratio` blocks of fine node values onto a coarse field.
// fine dims must be coarse dims * ratio (node-per-cell convention). Because
// it averages, restricting a flux density preserves the mean flux density.
void restrict_average(const util::Array2D<double>& fine, int ratio,
                      util::Array2D<double>& coarse);

// Bilinear prolongation of a coarse field onto a fine field with the given
// refinement ratio; fine(i,j) samples coarse at (i/ratio, j/ratio).
void prolong_bilinear(const util::Array2D<double>& coarse, int ratio,
                      util::Array2D<double>& fine);

// Integral of a node field times the cell area (trapezoid weights at edges):
// used to verify flux conservation across the transfer.
[[nodiscard]] double integrate(const Grid2D& g,
                               const util::Array2D<double>& field);

}  // namespace wfire::grid
