// Covariance localization: the Gaspari & Cohn (1999) 5th-order piecewise
// rational taper, the standard compactly supported correlation function used
// with EnKFs to suppress spurious long-range sample covariances from small
// ensembles. An extension beyond the paper (which uses 25 members and would
// benefit); exercised by the ablation tests and the sequential filter.
#pragma once

namespace wfire::enkf {

// Gaspari-Cohn taper: 1 at r = 0, exactly 0 for r >= 2c, where r is the
// distance and c the localization half-radius.
[[nodiscard]] double gaspari_cohn(double r, double c);

// Convenience for grid fields: taper between two 2-D points.
[[nodiscard]] double gaspari_cohn_2d(double x1, double y1, double x2,
                                     double y2, double c);

}  // namespace wfire::enkf
