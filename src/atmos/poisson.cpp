#include "atmos/poisson.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

namespace wfire::atmos {

namespace {
// Periodic wrap for x/y indices.
inline int wrap(int i, int n) { return (i + n) % n; }
}  // namespace

void apply_laplacian(const grid::Grid3D& g, const Field3& phi, Field3& out) {
  const int nx = g.nx, ny = g.ny, nz = g.nz;
  if (!out.same_shape(phi)) out = Field3(nx, ny, nz);
  const double cx = 1.0 / (g.dx * g.dx);
  const double cy = 1.0 / (g.dy * g.dy);
  const double cz = 1.0 / (g.dz * g.dz);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double c = phi(i, j, k);
        const double xl = phi(wrap(i - 1, nx), j, k);
        const double xr = phi(wrap(i + 1, nx), j, k);
        const double yl = phi(i, wrap(j - 1, ny), k);
        const double yr = phi(i, wrap(j + 1, ny), k);
        // Neumann in z: mirror ghost equals the interior value.
        const double zl = k > 0 ? phi(i, j, k - 1) : c;
        const double zr = k < nz - 1 ? phi(i, j, k + 1) : c;
        out(i, j, k) = cx * (xl - 2 * c + xr) + cy * (yl - 2 * c + yr) +
                       cz * (zl - 2 * c + zr);
      }
    }
  }
}

double residual(const grid::Grid3D& g, const Field3& phi, const Field3& rhs,
                Field3& r) {
  apply_laplacian(g, phi, r);
  double worst = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(max : worst))
  for (int k = 0; k < g.nz; ++k)
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i) {
        r(i, j, k) = rhs(i, j, k) - r(i, j, k);
        worst = std::max(worst, std::abs(r(i, j, k)));
      }
  return worst;
}

void remove_mean(Field3& f) {
  double mean = 0;
  for (const double v : f) mean += v;
  mean /= static_cast<double>(f.size());
  for (double& v : f) v -= mean;
}

void rbgs_sweep(const grid::Grid3D& g, const Field3& rhs, Field3& phi,
                double omega) {
  const int nx = g.nx, ny = g.ny, nz = g.nz;
  const double cx = 1.0 / (g.dx * g.dx);
  const double cy = 1.0 / (g.dy * g.dy);
  const double cz = 1.0 / (g.dz * g.dz);
  for (int color = 0; color < 2; ++color) {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          if (((i + j + k) & 1) != color) continue;
          const double xl = phi(wrap(i - 1, nx), j, k);
          const double xr = phi(wrap(i + 1, nx), j, k);
          const double yl = phi(i, wrap(j - 1, ny), k);
          const double yr = phi(i, wrap(j + 1, ny), k);
          // Neumann in z: the missing neighbor contributes neither to the
          // off-diagonal sum nor to the diagonal.
          double diag = 2 * cx + 2 * cy;
          double off = cx * (xl + xr) + cy * (yl + yr);
          if (k > 0) {
            off += cz * phi(i, j, k - 1);
            diag += cz;
          }
          if (k < nz - 1) {
            off += cz * phi(i, j, k + 1);
            diag += cz;
          }
          const double gs = (off - rhs(i, j, k)) / diag;
          phi(i, j, k) += omega * (gs - phi(i, j, k));
        }
      }
    }
  }
}

SolveStats solve_sor(const grid::Grid3D& g, const Field3& rhs, Field3& phi,
                     const SorOptions& opt) {
  if (!phi.same_shape(rhs)) phi = Field3(g.nx, g.ny, g.nz, 0.0);
  Field3 r(g.nx, g.ny, g.nz);
  SolveStats stats;
  for (int it = 0; it < opt.max_iters; ++it) {
    rbgs_sweep(g, rhs, phi, opt.omega);
    // Check the residual every few sweeps; it is as costly as a sweep.
    if (it % 5 == 4 || it == opt.max_iters - 1) {
      stats.final_residual = residual(g, phi, rhs, r);
      stats.iterations = it + 1;
      if (stats.final_residual < opt.tol) {
        stats.converged = true;
        break;
      }
    }
  }
  remove_mean(phi);
  return stats;
}

}  // namespace wfire::atmos
