// Level set solver tests against analytic solutions: signed distance
// initialization, Godunov upwinding (the paper's rule), Euler vs Heun bias
// (the paper's conservation claim), front extraction, and fast-sweeping
// reinitialization.
#include <gtest/gtest.h>

#include <cmath>

#include "levelset/fast_sweep.h"
#include "levelset/front.h"
#include "levelset/godunov.h"
#include "levelset/initialize.h"
#include "levelset/integrator.h"

using namespace wfire::levelset;
using wfire::grid::Grid2D;
using wfire::util::Array2D;

namespace {

// 200 m x 200 m domain with 2 m spacing.
Grid2D test_grid() { return Grid2D(101, 101, 2.0, 2.0); }

Array2D<double> circle_psi(const Grid2D& g, double cx, double cy, double r) {
  Array2D<double> psi;
  initialize_signed_distance(g, {CircleIgnition{cx, cy, r, 0.0}}, psi);
  return psi;
}

}  // namespace

TEST(Initialize, CircleSignedDistanceExact) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  for (int j = 0; j < g.ny; j += 10)
    for (int i = 0; i < g.nx; i += 10) {
      const double d = std::hypot(g.x(i) - 100.0, g.y(j) - 100.0) - 30.0;
      EXPECT_NEAR(psi(i, j), d, 1e-12);
    }
}

TEST(Initialize, LineCapsuleDistance) {
  const Grid2D g = test_grid();
  Array2D<double> psi;
  initialize_signed_distance(
      g, {LineIgnition{50.0, 100.0, 150.0, 100.0, 5.0, 0.0}}, psi);
  // On the segment: -w; at distance 10 beside the midpoint: 10 - w.
  EXPECT_NEAR(psi(50, 50), -5.0, 1e-12);
  const double d = std::hypot(0.0, 10.0) - 5.0;
  EXPECT_NEAR(psi(50, 55), d, 1e-12);
  // Beyond an endpoint.
  EXPECT_NEAR(psi(80, 50), std::hypot(160.0 - 150.0, 0.0) - 5.0, 1e-12);
}

TEST(Initialize, UnionTakesMinimum) {
  const Grid2D g = test_grid();
  Array2D<double> psi;
  initialize_signed_distance(g,
                             {CircleIgnition{60.0, 100.0, 10.0, 0.0},
                              CircleIgnition{140.0, 100.0, 10.0, 0.0}},
                             psi);
  EXPECT_LT(psi(30, 50), 0.0);
  EXPECT_LT(psi(70, 50), 0.0);
  EXPECT_GT(psi(50, 50), 0.0);  // midpoint between the circles
}

TEST(Initialize, EmptyIgnitionsGiveNoFire) {
  const Grid2D g = test_grid();
  Array2D<double> psi;
  initialize_signed_distance(g, {}, psi);
  EXPECT_GT(wfire::util::min_value(psi), 0.0);
}

TEST(Godunov, GradientOfSignedDistanceIsOne) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  Array2D<double> grad;
  gradient_magnitude(g, psi, UpwindScheme::kPaperRule, grad);
  // Away from the center kink and boundary, |grad psi| = 1 up to the
  // first-order upwind truncation error on a curved front (~h/r).
  for (int j = 20; j < 80; ++j)
    for (int i = 20; i < 80; ++i) {
      const double r = std::hypot(g.x(i) - 100.0, g.y(j) - 100.0);
      if (r > 10.0) {
        EXPECT_NEAR(grad(i, j), 1.0, 0.1);
      }
    }
}

TEST(Godunov, SchemesAgreeOnSmoothExpandingFront) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  Array2D<double> g1, g2;
  gradient_magnitude(g, psi, UpwindScheme::kPaperRule, g1);
  gradient_magnitude(g, psi, UpwindScheme::kStandardGodunov, g2);
  double max_diff = 0;
  for (int j = 30; j < 70; ++j)
    for (int i = 30; i < 70; ++i) {
      const double r = std::hypot(g.x(i) - 100.0, g.y(j) - 100.0);
      if (r > 10.0) max_diff = std::max(max_diff, std::abs(g1(i, j) - g2(i, j)));
    }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(Normals, PointOutwardFromCircle) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  Array2D<double> nx, ny;
  normals(g, psi, nx, ny);
  // At (130+, 100): outward normal is +x.
  EXPECT_NEAR(nx(70, 50), 1.0, 1e-6);
  EXPECT_NEAR(ny(70, 50), 0.0, 1e-6);
  // Unit length everywhere away from the center.
  for (int j = 20; j < 80; j += 7)
    for (int i = 20; i < 80; i += 7) {
      const double r = std::hypot(g.x(i) - 100.0, g.y(j) - 100.0);
      if (r > 10.0) {
        EXPECT_NEAR(std::hypot(nx(i, j), ny(i, j)), 1.0, 1e-9);
      }
    }
}

// The fundamental analytic check: a circular front expanding at constant
// speed S stays a circle with radius r0 + S t.
class ExpansionParam
    : public ::testing::TestWithParam<std::pair<UpwindScheme, bool>> {};

TEST_P(ExpansionParam, CircleExpandsAtSpeedS) {
  const auto [scheme, use_heun] = GetParam();
  const Grid2D g = test_grid();
  Array2D<double> psi = circle_psi(g, 100.0, 100.0, 20.0);
  Array2D<double> speed(g.nx, g.ny, 1.0);  // S = 1 m/s
  const double dt = 0.5;                   // CFL = 0.25
  const double T = 30.0;
  for (double t = 0; t < T - 1e-9; t += dt) {
    if (use_heun)
      step_heun(g, speed, dt, scheme, psi);
    else
      step_euler(g, speed, dt, scheme, psi);
  }
  const double expected_r = 20.0 + T;
  const double area = burned_area(g, psi);
  const double r_eff = std::sqrt(area / M_PI);
  EXPECT_NEAR(r_eff, expected_r, 1.5);  // within one cell
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ExpansionParam,
    ::testing::Values(std::pair{UpwindScheme::kPaperRule, true},
                      std::pair{UpwindScheme::kStandardGodunov, true},
                      std::pair{UpwindScheme::kPaperRule, false}));

TEST(Integrator, EulerAndHeunAgreeOnSmoothConstantSpeed) {
  // For constant S and a signed-distance psi, |grad psi| stays ~1 and the
  // Euler time-stepping bias the paper describes cancels: both integrators
  // track the analytic solution. (The systematic Euler under-burn appears
  // once the speed couples back to psi through normals and fuel depletion —
  // see FireModel.EulerOptionUnderburnsVsHeun and bench_abl_integrator.)
  const Grid2D g = test_grid();
  Array2D<double> psi_e = circle_psi(g, 100.0, 100.0, 20.0);
  Array2D<double> psi_h = psi_e;
  Array2D<double> speed(g.nx, g.ny, 1.0);
  const double dt = 1.6;  // CFL = 0.8
  for (int s = 0; s < 25; ++s) {
    step_euler(g, speed, dt, UpwindScheme::kPaperRule, psi_e);
    step_heun(g, speed, dt, UpwindScheme::kPaperRule, psi_h);
  }
  const double area_e = burned_area(g, psi_e);
  const double area_h = burned_area(g, psi_h);
  const double exact = M_PI * std::pow(20.0 + 25 * dt, 2);
  EXPECT_LT(std::abs(area_h - exact) / exact, 0.08);
  EXPECT_LT(std::abs(area_e - area_h) / exact, 0.02);
}

TEST(Integrator, StableDtScalesInverselyWithSpeed) {
  const Grid2D g = test_grid();
  Array2D<double> s1(g.nx, g.ny, 1.0), s2(g.nx, g.ny, 4.0);
  EXPECT_NEAR(stable_dt(g, s1, 0.9) / stable_dt(g, s2, 0.9), 4.0, 1e-12);
}

TEST(Integrator, StepStatsReportCfl) {
  const Grid2D g = test_grid();
  Array2D<double> psi = circle_psi(g, 100.0, 100.0, 20.0);
  Array2D<double> speed(g.nx, g.ny, 2.0);
  const StepStats st = step_heun(g, speed, 0.5, UpwindScheme::kPaperRule, psi);
  EXPECT_DOUBLE_EQ(st.max_speed, 2.0);
  EXPECT_NEAR(st.cfl, 2.0 * 0.5 / 2.0, 1e-12);
}

TEST(Front, ExtractedLengthMatchesCircle) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  const auto segs = extract_front(g, psi);
  EXPECT_GT(segs.size(), 20u);
  EXPECT_NEAR(front_length(segs), 2.0 * M_PI * 30.0, 4.0);
}

TEST(Front, BurnedAreaMatchesCircle) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  EXPECT_NEAR(burned_area(g, psi), M_PI * 900.0, 30.0);
}

TEST(Front, RightmostBurningX) {
  const Grid2D g = test_grid();
  const Array2D<double> psi = circle_psi(g, 100.0, 100.0, 30.0);
  EXPECT_NEAR(rightmost_burning_x(g, psi), 130.0, 0.5);
  Array2D<double> none(g.nx, g.ny, 1.0);
  EXPECT_TRUE(std::isinf(rightmost_burning_x(g, none)));
}

TEST(Front, NoSegmentsWhenUniformSign) {
  const Grid2D g = test_grid();
  Array2D<double> psi(g.nx, g.ny, 5.0);
  EXPECT_TRUE(extract_front(g, psi).empty());
  EXPECT_DOUBLE_EQ(burned_area(g, psi), 0.0);
}

TEST(FastSweep, RebuildsSignedDistance) {
  const Grid2D g = test_grid();
  // Distort a signed distance field without moving the zero contour:
  // psi -> psi^3 / 100 keeps the sign but wrecks |grad psi|.
  Array2D<double> psi = circle_psi(g, 100.0, 100.0, 40.0);
  Array2D<double> distorted = psi;
  for (double& v : distorted) v = v * v * v / 100.0;

  reinitialize(g, distorted, 3);
  // |grad| ~ 1 near the front again.
  EXPECT_LT(eikonal_residual(g, distorted, 20.0), 0.15);
  // Zero contour preserved: burned area unchanged within a cell.
  EXPECT_NEAR(burned_area(g, distorted), burned_area(g, psi), 60.0);
}

TEST(FastSweep, NoInterfaceIsANoop) {
  const Grid2D g = test_grid();
  Array2D<double> psi(g.nx, g.ny, 7.0);
  Array2D<double> copy = psi;
  reinitialize(g, psi);
  EXPECT_TRUE(psi == copy);
}

TEST(FastSweep, DistancesMatchExactCircle) {
  const Grid2D g = test_grid();
  Array2D<double> psi = circle_psi(g, 100.0, 100.0, 40.0);
  // Replace with +-1 sign field: reinit must recover distances.
  Array2D<double> sign(g.nx, g.ny);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) sign(i, j) = psi(i, j) < 0 ? -1.0 : 1.0;
  reinitialize(g, sign, 3);
  // Compare near the front where first-order distance is accurate.
  for (int j = 10; j < 90; j += 5)
    for (int i = 10; i < 90; i += 5)
      if (std::abs(psi(i, j)) < 20.0) {
        EXPECT_NEAR(sign(i, j), psi(i, j), 3.0);
      }
}

TEST(Ignition, DelayedShapeHasItsTime) {
  const CircleIgnition c{0, 0, 5, 120.0};
  EXPECT_DOUBLE_EQ(ignition_time(Ignition{c}), 120.0);
}
