// Deterministic random number generation: xoshiro256** seeded via SplitMix64,
// with uniform/normal draws. Every stochastic component of wfire (ensemble
// perturbations, observation noise, synthetic terrain) takes an explicit Rng
// so experiments are reproducible bit-for-bit given a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace wfire::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via the Marsaglia polar method (cached second deviate).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  // Vector of iid standard normals.
  std::vector<double> normal_vector(std::size_t n);

  // Derive an independent stream (e.g. one per ensemble member). Streams
  // seeded from distinct jumps of SplitMix64 are statistically independent.
  // Note spawn() advances *this*: the child depends on how many draws
  // preceded it. For order-independent derivation use stream().
  [[nodiscard]] Rng spawn();

  // Counter-based stream derivation: the sub-seed is a pure function of
  // (seed, stream_id), so stream k's draws are identical no matter how many
  // threads run, in what order streams are created, or what else was drawn
  // from other streams. This is what makes per-member ensemble forcing
  // reproducible across OMP_NUM_THREADS / pool sizes.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace wfire::util
