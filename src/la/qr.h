// Householder QR with least-squares solve and the square-root kernels of the
// QR-based EnKF ensemble-space analysis. The EnKF replaces the ensemble by
// linear combinations "with the coefficients obtained by solving a least
// squares problem" (paper Sec. 3.3); this is that solver, also used by the
// registration smoothness fits and tested against the normal equations.
//
// The factorization dispatches on la::backend() (see la/backend.h):
//  - blocked: compact-WY panel QR — each panel is factored unblocked (with
//    the reflector application across panel columns OpenMP-threaded when
//    tall), then the trailing matrix is updated with three gemm calls
//    through the blocked kernel backend;
//  - reference: the original serial column-by-column loop, kept as the
//    ground truth the blocked path is property-tested against.
// Scratch for the blocked path is drawn from a caller-supplied la::Workspace
// (keys "qr.*") so repeated factorizations are allocation-free in steady
// state; a local arena is used when none is given.
#pragma once

#include "la/backend.h"
#include "la/matrix.h"
#include "la/workspace.h"

namespace wfire::la {

struct QrFactor {
  // Householder vectors stored below the diagonal of `qr`, R on/above it.
  Matrix qr;
  Vector beta;  // Householder scalars
};

// Factors A (m x n, m >= n) in place: R on/above the diagonal, Householder
// vectors (scaled so v[j] = 1) below it, scalars in `beta` (resized to n).
// Throws on m < n.
void qr_factor_in_place(Matrix& A, Vector& beta, Workspace* ws = nullptr);

// Factors A (m x n, m >= n). Throws on m < n.
[[nodiscard]] QrFactor qr_factor(const Matrix& A);

// Applies Q^T to a vector (in place, size m) given the factor.
void apply_qt(const QrFactor& f, Vector& v);

// Applies Q^T to every column of C (in place, C has m rows) given the
// packed factor + scalars. Blocked backend: compact-WY panels and gemm;
// reference backend: one reflector at a time.
void apply_qt_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                       Workspace* ws = nullptr);

// Applies Q (not Q^T) to every column of C (in place), reflectors in
// reverse order. Same backend split as apply_qt_in_place.
void apply_q_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                      Workspace* ws = nullptr);

// Triangular solves with the n x n upper-triangular R stored in the top of
// the packed factor `qr` (n = qr.cols()); B has n rows and is overwritten
// column by column (OpenMP-parallel across right-hand sides). Throws
// std::runtime_error on a zero diagonal (rank-deficient R).
void r_solve_in_place(const Matrix& qr, Matrix& B);   // R X = B
void rt_solve_in_place(const Matrix& qr, Matrix& B);  // R^T X = B

// Minimizes ||A x - b||_2; returns x (size n). Rank deficiency is reported
// via std::runtime_error (zero diagonal in R).
[[nodiscard]] Vector least_squares(const Matrix& A, const Vector& b);

// Multi-RHS variant: returns X with columns solving each column of B.
[[nodiscard]] Matrix least_squares(const Matrix& A, const Matrix& B);

// Extracts the economy Q (m x n) by applying Householder reflectors to the
// first n columns of the identity.
[[nodiscard]] Matrix economy_q(const QrFactor& f);

// Extracts the n x n upper-triangular R.
[[nodiscard]] Matrix economy_r(const QrFactor& f);

}  // namespace wfire::la
