// Atmospheric state on an Arakawa-C staggered grid (WrfLite, the repo's WRF
// substitute; see DESIGN.md for the substitution rationale).
//
// Prognostic fields (periodic laterally, non-redundant face storage):
//   u : x-velocity, dims (nx, ny, nz); u(i,j,k) lives on the LEFT x-face of
//       cell i (at x = i*dx). The right face of cell nx-1 is u(0,...) by
//       periodicity.
//   v : y-velocity, dims (nx, ny, nz); v(i,j,k) on the FRONT y-face of cell j.
//   w : z-velocity, dims (nx, ny, nz+1); w(i,j,0) = w(i,j,nz) = 0 (rigid
//       bottom, rigid lid with sponge below it).
//   theta : potential temperature *perturbation* from the ambient profile [K]
//   qv    : water vapor mixing ratio perturbation [kg/kg]
// Scalars are cell-centered with dims (nx, ny, nz).
//
// The ambient (base) state is horizontally uniform: theta_amb(z) with a
// stable lapse and a logarithmic wind profile. Perturbation form keeps the
// numerics well-conditioned and makes the fire forcing explicit.
#pragma once

#include "grid/grid3d.h"
#include "util/array3d.h"

namespace wfire::atmos {

struct AmbientProfile {
  double theta0 = 300.0;       // surface potential temperature [K]
  double lapse = 0.003;        // d(theta)/dz [K/m] (stable stratification)
  double wind_u = 0.0;         // reference wind at/above 100 m [m/s]
  double wind_v = 0.0;
  double roughness_z0 = 0.5;   // log-profile roughness length [m]

  // Ambient theta at height z.
  [[nodiscard]] double theta(double z) const { return theta0 + lapse * z; }

  // Log-profile shape factor in [0, 1]: u(z) = wind_u * wind_profile(z).
  [[nodiscard]] double wind_profile(double z) const;
};

struct AtmosState {
  util::Array3D<double> u, v, w, theta, qv;

  AtmosState() = default;
  explicit AtmosState(const grid::Grid3D& g)
      : u(g.nx, g.ny, g.nz, 0.0),
        v(g.nx, g.ny + 0, g.nz, 0.0),
        w(g.nx, g.ny, g.nz + 1, 0.0),
        theta(g.nx, g.ny, g.nz, 0.0),
        qv(g.nx, g.ny, g.nz, 0.0) {}
};

// Initializes u, v to the ambient log profile, zero w and perturbations;
// a horizontally uniform wind is discretely divergence-free.
void initialize_ambient(const grid::Grid3D& g, const AmbientProfile& amb,
                        AtmosState& s);

// Divergence of the staggered velocity at cell (i, j, k).
[[nodiscard]] double cell_divergence(const grid::Grid3D& g,
                                     const AtmosState& s, int i, int j, int k);

// Maximum |div u| over cells (projection quality diagnostic).
[[nodiscard]] double max_divergence(const grid::Grid3D& g,
                                    const AtmosState& s);

// Advective CFL number (|u|/dx + |v|/dy + |w|/dz)_max * dt.
[[nodiscard]] double advective_cfl(const grid::Grid3D& g, const AtmosState& s,
                                   double dt);

// Horizontal wind (u, v) destaggered to the center of cell (i, j, k).
void cell_center_wind(const grid::Grid3D& g, const AtmosState& s, int i,
                      int j, int k, double& uc, double& vc);

}  // namespace wfire::atmos
