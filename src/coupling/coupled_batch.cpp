#include "coupling/coupled_batch.h"

#include "util/omp_compat.h"

#include <stdexcept>

#include "grid/interp.h"

namespace wfire::coupling {

namespace {

inline int wrap(int i, int n) { return (i + n) % n; }

inline std::size_t cell3(int nx, int ny, int i, int j, int k) {
  return (static_cast<std::size_t>(k) * ny + j) * nx + i;
}

int padded_stride(int members, const core::EnsembleBatchOptions& bopt) {
  const int pad = std::max(1, bopt.simd_pad);
  return (members + pad - 1) / pad * pad;
}

// WrfLite overrides the multigrid tolerance with the projection tolerance;
// the batched solver must do the same to reproduce its cycle counts.
atmos::MultigridOptions projection_mg(const CoupledBatchOptions& opt) {
  atmos::MultigridOptions mg = opt.coupled.atmos_opt.mg;
  mg.tol = opt.coupled.atmos_opt.projection_tol;
  return mg;
}

}  // namespace

CoupledEnsembleBatch::CoupledEnsembleBatch(const grid::Grid3D& atmos_grid,
                                           const atmos::AmbientProfile& ambient,
                                           fire::FuelMap fuel,
                                           util::Array2D<double> terrain,
                                           int members, CoupledBatchOptions opt)
    : pair_(make_pairing(atmos_grid, opt.coupled.refine)),
      agrid_(atmos_grid),
      amb_(ambient),
      opt_(opt),
      members_(members),
      stride_(padded_stride(members, opt.batch)),
      fire_(pair_.fire, fuel, terrain, opt.coupled.fire_opt, members,
            opt.batch),
      inserter_(atmos_grid, opt.coupled.flux),
      mg_(atmos_grid, members, stride_, projection_mg(opt)) {
  if (members_ < 1)
    throw std::invalid_argument("CoupledEnsembleBatch: members < 1");
  astate_.resize(static_cast<std::size_t>(members_));
  for (auto& s : astate_) {
    s = atmos::AtmosState(agrid_);
    atmos::initialize_ambient(agrid_, amb_, s);
  }
  pred_.assign(static_cast<std::size_t>(members_),
               atmos::AtmosState(agrid_));
  tend1_.assign(static_cast<std::size_t>(members_),
                atmos::Tendencies(agrid_));
  tend2_.assign(static_cast<std::size_t>(members_),
                atmos::Tendencies(agrid_));
  proj_stats_.assign(static_cast<std::size_t>(members_), {});
  info_.assign(static_cast<std::size_t>(members_), {});

  const std::size_t hor =
      static_cast<std::size_t>(agrid_.nx) * agrid_.ny * stride_;
  const std::size_t fnodes =
      static_cast<std::size_t>(pair_.fire.nx) * pair_.fire.ny * stride_;
  const std::size_t vol =
      static_cast<std::size_t>(agrid_.nx) * agrid_.ny * agrid_.nz * stride_;
  uc_.assign(hor, 0.0);
  vc_.assign(hor, 0.0);
  wind_u_f_.assign(fnodes, 0.0);
  wind_v_f_.assign(fnodes, 0.0);
  sens_f_.assign(fnodes, 0.0);
  lat_f_.assign(fnodes, 0.0);
  sens_c_.assign(hor, 0.0);
  lat_c_.assign(hor, 0.0);
  theta_src_.assign(vol, 0.0);
  qv_src_.assign(vol, 0.0);
  rhs_soa_.assign(vol, 0.0);
  phi_soa_.assign(vol, 0.0);
}

void CoupledEnsembleBatch::load(
    const std::vector<std::unique_ptr<CoupledModel>>& models) {
  if (static_cast<int>(models.size()) != members_)
    throw std::invalid_argument("CoupledEnsembleBatch::load: member count");
  std::vector<fire::FireModel*> fms;
  fms.reserve(models.size());
  for (const auto& m : models) fms.push_back(&m->fire_model());
  fire_.load(fms);
  time_ = fire_.time();

  const std::size_t cells =
      static_cast<std::size_t>(agrid_.nx) * agrid_.ny * agrid_.nz;
  for (int m = 0; m < members_; ++m) {
    const atmos::WrfLite& a = models[static_cast<std::size_t>(m)]->atmosphere();
    astate_[static_cast<std::size_t>(m)] = a.state();
    const double* phi = a.projection_potential().data();
    for (std::size_t c = 0; c < cells; ++c)
      phi_soa_[c * stride_ + m] = phi[c];
  }
}

void CoupledEnsembleBatch::store(
    const std::vector<std::unique_ptr<CoupledModel>>& models) const {
  if (static_cast<int>(models.size()) != members_)
    throw std::invalid_argument("CoupledEnsembleBatch::store: member count");
  std::vector<fire::FireModel*> fms;
  fms.reserve(models.size());
  for (const auto& m : models) fms.push_back(&m->fire_model());
  fire_.store(fms);

  const std::size_t cells =
      static_cast<std::size_t>(agrid_.nx) * agrid_.ny * agrid_.nz;
  atmos::Field3 phi(agrid_.nx, agrid_.ny, agrid_.nz, 0.0);
  for (int m = 0; m < members_; ++m) {
    atmos::WrfLite& a = models[static_cast<std::size_t>(m)]->atmosphere();
    a.state() = astate_[static_cast<std::size_t>(m)];
    for (std::size_t c = 0; c < cells; ++c)
      phi.data()[c] = phi_soa_[c * stride_ + m];
    a.set_projection_potential(phi);
    a.set_time(time_);
  }
}

void CoupledEnsembleBatch::step(double dt) {
  // 1. Atmosphere -> fire: near-ground winds on the fire mesh, all members.
  sample_winds_batch();

  // 2. Fire advance + member-contiguous heat-flux pass.
  fire_.coupled_step(dt, wind_u_f_.data(), wind_v_f_.data(), sens_f_.data(),
                     lat_f_.data());

  // 3. Fire -> atmosphere: aggregate and build decay-profile sources.
  const bool forcing = opt_.coupled.two_way;
  if (forcing) {
    aggregate_flux_batch(sens_f_, sens_c_);
    aggregate_flux_batch(lat_f_, lat_c_);
    inserter_.insert_batch(stride_, sens_c_.data(), lat_c_.data(),
                           theta_src_.data(), qv_src_.data());
  }

  // 4. Advance all atmospheres with batched projections.
  advance_atmosphere(dt, forcing);
  time_ += dt;
}

void CoupledEnsembleBatch::advance_to(double time, double dt) {
  while (time_ < time - 1e-9) {
    const double step_dt = std::min(dt, time - time_);
    step(step_dt);
  }
}

void CoupledEnsembleBatch::sample_winds_batch() {
  const int nxa = agrid_.nx, nya = agrid_.ny;
  // Destagger the lowest level to cell centers, member-contiguous.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < nya; ++j) {
    for (int i = 0; i < nxa; ++i) {
      const std::size_t base =
          (static_cast<std::size_t>(j) * nxa + i) * stride_;
      for (int m = 0; m < members_; ++m) {
        double u0, v0;
        atmos::cell_center_wind(agrid_, astate_[static_cast<std::size_t>(m)],
                                i, j, 0, u0, v0);
        uc_[base + m] = u0;
        vc_[base + m] = v0;
      }
    }
  }
  // Bilinear onto the fire nodes: the weights depend only on geometry, so
  // one locate() per node feeds every member lane. The weighted sum keeps
  // grid::bilinear's association exactly.
  const int fnx = pair_.fire.nx, fny = pair_.fire.ny;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < fny; ++j) {
    for (int i = 0; i < fnx; ++i) {
      const double px = pair_.fire.x(i);
      const double py = pair_.fire.y(j);
      const grid::CellLocation c = grid::locate(pair_.atmos_hor, px, py);
      const double w00 = (1 - c.tx) * (1 - c.ty);
      const double w10 = c.tx * (1 - c.ty);
      const double w01 = (1 - c.tx) * c.ty;
      const double w11 = c.tx * c.ty;
      const std::size_t c00 =
          (static_cast<std::size_t>(c.j) * nxa + c.i) * stride_;
      const std::size_t c10 = c00 + static_cast<std::size_t>(stride_);
      const std::size_t c01 =
          c00 + static_cast<std::size_t>(nxa) * stride_;
      const std::size_t c11 = c01 + static_cast<std::size_t>(stride_);
      double* fu = &wind_u_f_[(static_cast<std::size_t>(j) * fnx + i) * stride_];
      double* fv = &wind_v_f_[(static_cast<std::size_t>(j) * fnx + i) * stride_];
      WFIRE_PRAGMA_OMP(omp simd)
      for (int m = 0; m < stride_; ++m) {
        fu[m] = w00 * uc_[c00 + m] + w10 * uc_[c10 + m] +
                w01 * uc_[c01 + m] + w11 * uc_[c11 + m];
        fv[m] = w00 * vc_[c00 + m] + w10 * vc_[c10 + m] +
                w01 * vc_[c01 + m] + w11 * vc_[c11 + m];
      }
    }
  }
}

void CoupledEnsembleBatch::aggregate_flux_batch(const std::vector<double>& fine,
                                                std::vector<double>& coarse) {
  // grid::restrict_average per lane: sum the refine x refine block in
  // (b, a) order, then scale once.
  const int r = pair_.refine;
  const double inv = 1.0 / (static_cast<double>(r) * r);
  const int cnx = pair_.atmos_hor.nx, cny = pair_.atmos_hor.ny;
  const int fnx = pair_.fire.nx;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int J = 0; J < cny; ++J) {
    for (int I = 0; I < cnx; ++I) {
      double* out = &coarse[(static_cast<std::size_t>(J) * cnx + I) * stride_];
      for (int m = 0; m < stride_; ++m) out[m] = 0.0;
      for (int b = 0; b < r; ++b) {
        for (int a = 0; a < r; ++a) {
          const double* f =
              &fine[(static_cast<std::size_t>(J * r + b) * fnx + I * r + a) *
                    stride_];
          WFIRE_PRAGMA_OMP(omp simd)
          for (int m = 0; m < stride_; ++m) out[m] += f[m];
        }
      }
      WFIRE_PRAGMA_OMP(omp simd)
      for (int m = 0; m < stride_; ++m) out[m] *= inv;
    }
  }
}

void CoupledEnsembleBatch::advance_atmosphere(double dt, bool forcing) {
  const atmos::WrfLiteOptions& aopt = opt_.coupled.atmos_opt;
  // Member loops are parallel at the member level; everything inside is
  // independent per member, so the result is thread-count invariant.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int m = 0; m < members_; ++m) {
    const std::size_t k = static_cast<std::size_t>(m);
    info_[k] = {};
    info_[k].cfl = atmos::advective_cfl(agrid_, astate_[k], dt);
    const atmos::ForcingView th =
        forcing ? atmos::ForcingView{theta_src_.data() + m, stride_}
                : atmos::ForcingView{};
    const atmos::ForcingView qv =
        forcing ? atmos::ForcingView{qv_src_.data() + m, stride_}
                : atmos::ForcingView{};
    atmos::compute_tendencies(agrid_, amb_, aopt.dynamics, astate_[k], th, qv,
                              tend1_[k]);
    if (aopt.use_rk2) {
      pred_[k] = astate_[k];
      atmos::apply_tendencies(agrid_, tend1_[k], dt, pred_[k]);
    }
  }
  if (aopt.use_rk2) {
    project_batch(pred_);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int m = 0; m < members_; ++m) {
      const std::size_t k = static_cast<std::size_t>(m);
      const atmos::ForcingView th =
          forcing ? atmos::ForcingView{theta_src_.data() + m, stride_}
                  : atmos::ForcingView{};
      const atmos::ForcingView qv =
          forcing ? atmos::ForcingView{qv_src_.data() + m, stride_}
                  : atmos::ForcingView{};
      atmos::compute_tendencies(agrid_, amb_, aopt.dynamics, pred_[k], th, qv,
                                tend2_[k]);
      atmos::apply_tendencies(agrid_, tend1_[k], 0.5 * dt, astate_[k]);
      atmos::apply_tendencies(agrid_, tend2_[k], 0.5 * dt, astate_[k]);
    }
  } else {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int m = 0; m < members_; ++m) {
      const std::size_t k = static_cast<std::size_t>(m);
      atmos::apply_tendencies(agrid_, tend1_[k], dt, astate_[k]);
    }
  }
  project_batch(astate_);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int m = 0; m < members_; ++m) {
    const std::size_t k = static_cast<std::size_t>(m);
    info_[k].mg_cycles = proj_stats_[k].iterations;
    info_[k].max_div_after = atmos::max_divergence(agrid_, astate_[k]);
    info_[k].max_w = util::max_abs(astate_[k].w);
  }
}

void CoupledEnsembleBatch::project_batch(
    std::vector<atmos::AtmosState>& states) {
  const int nx = agrid_.nx, ny = agrid_.ny, nz = agrid_.nz;
  const std::size_t cells = static_cast<std::size_t>(nx) * ny * nz;
  // rhs = div(u*) per lane, then remove_mean per lane in the scalar
  // solver's linear cell order.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int m = 0; m < members_; ++m) {
    const atmos::AtmosState& s = states[static_cast<std::size_t>(m)];
    std::size_t c = 0;
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ny; ++j)
        for (int i = 0; i < nx; ++i, ++c)
          rhs_soa_[c * stride_ + m] = atmos::cell_divergence(agrid_, s, i, j, k);
    double mean = 0;
    for (c = 0; c < cells; ++c) mean += rhs_soa_[c * stride_ + m];
    mean /= static_cast<double>(cells);
    for (c = 0; c < cells; ++c) rhs_soa_[c * stride_ + m] -= mean;
  }

  mg_.solve(rhs_soa_.data(), phi_soa_.data(), proj_stats_.data());

  // u -= grad(phi), per member from its lane of the potential.
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int m = 0; m < members_; ++m) {
    atmos::AtmosState& s = states[static_cast<std::size_t>(m)];
    const double* phi = phi_soa_.data();
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
          const double pc = phi[cell3(nx, ny, i, j, k) * stride_ + m];
          s.u(i, j, k) -=
              (pc - phi[cell3(nx, ny, wrap(i - 1, nx), j, k) * stride_ + m]) /
              agrid_.dx;
          s.v(i, j, k) -=
              (pc - phi[cell3(nx, ny, i, wrap(j - 1, ny), k) * stride_ + m]) /
              agrid_.dy;
        }
      }
    }
    for (int k = 1; k < nz; ++k)
      for (int j = 0; j < ny; ++j)
        for (int i = 0; i < nx; ++i)
          s.w(i, j, k) -= (phi[cell3(nx, ny, i, j, k) * stride_ + m] -
                           phi[cell3(nx, ny, i, j, k - 1) * stride_ + m]) /
                          agrid_.dz;
  }
}

}  // namespace wfire::coupling
