#include "fire/terrain.h"

#include <cmath>

namespace wfire::fire {

util::Array2D<double> terrain_flat(const grid::Grid2D& g) {
  return util::Array2D<double>(g.nx, g.ny, 0.0);
}

util::Array2D<double> terrain_slope(const grid::Grid2D& g, double sx,
                                    double sy) {
  util::Array2D<double> z(g.nx, g.ny);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) z(i, j) = sx * g.x(i) + sy * g.y(j);
  return z;
}

util::Array2D<double> terrain_hill(const grid::Grid2D& g, double cx, double cy,
                                   double height, double radius) {
  util::Array2D<double> z(g.nx, g.ny);
  const double inv2r2 = 1.0 / (2.0 * radius * radius);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      const double dx = g.x(i) - cx, dy = g.y(j) - cy;
      z(i, j) = height * std::exp(-(dx * dx + dy * dy) * inv2r2);
    }
  return z;
}

util::Array2D<double> terrain_ridge(const grid::Grid2D& g, double cx,
                                    double height, double halfwidth) {
  util::Array2D<double> z(g.nx, g.ny);
  const double inv2w2 = 1.0 / (2.0 * halfwidth * halfwidth);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      const double dx = g.x(i) - cx;
      z(i, j) = height * std::exp(-dx * dx * inv2w2);
    }
  return z;
}

util::Array2D<double> terrain_random(const grid::Grid2D& g, int n,
                                     double height, double radius,
                                     util::Rng& rng) {
  util::Array2D<double> z(g.nx, g.ny, 0.0);
  for (int b = 0; b < n; ++b) {
    const double cx = rng.uniform(g.x0, g.x0 + g.width());
    const double cy = rng.uniform(g.y0, g.y0 + g.height());
    const double h = rng.uniform(0.3, 1.0) * height;
    const double r = rng.uniform(0.5, 1.5) * radius;
    const double inv2r2 = 1.0 / (2.0 * r * r);
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i) {
        const double dx = g.x(i) - cx, dy = g.y(j) - cy;
        z(i, j) += h * std::exp(-(dx * dx + dy * dy) * inv2r2);
      }
  }
  return z;
}

void terrain_gradient(const grid::Grid2D& g, const util::Array2D<double>& z,
                      util::Array2D<double>& dzdx,
                      util::Array2D<double>& dzdy) {
  if (!dzdx.same_shape(z)) dzdx = util::Array2D<double>(z.nx(), z.ny());
  if (!dzdy.same_shape(z)) dzdy = util::Array2D<double>(z.nx(), z.ny());
  const double ihx = 0.5 / g.dx, ihy = 0.5 / g.dy;
  for (int j = 0; j < z.ny(); ++j)
    for (int i = 0; i < z.nx(); ++i) {
      // One-sided at boundaries via clamped reads (half-weight there).
      const double xl = z.at_clamped(i - 1, j), xr = z.at_clamped(i + 1, j);
      const double yl = z.at_clamped(i, j - 1), yr = z.at_clamped(i, j + 1);
      const double wx = (i == 0 || i == z.nx() - 1) ? 2.0 : 1.0;
      const double wy = (j == 0 || j == z.ny() - 1) ? 2.0 : 1.0;
      dzdx(i, j) = (xr - xl) * ihx * wx;
      dzdy(i, j) = (yr - yl) * ihy * wy;
    }
}

}  // namespace wfire::fire
