#include "scene/thermal.h"

#include "util/omp_compat.h"

#include <cmath>
#include <stdexcept>

namespace wfire::scene {

GroundThermalModel::GroundThermalModel(GroundThermalParams p) : p_(p) {
  if (p_.tau_rise <= 0 || p_.tau_cool <= p_.tau_rise)
    throw std::invalid_argument(
        "GroundThermalModel: need 0 < tau_rise < tau_cool");
  t_peak_ = std::log(p_.tau_cool / p_.tau_rise) /
            (1.0 / p_.tau_rise - 1.0 / p_.tau_cool);
  norm_ = std::exp(-t_peak_ / p_.tau_cool) - std::exp(-t_peak_ / p_.tau_rise);
}

double GroundThermalModel::temperature(double age) const {
  if (age <= 0) return p_.T_ambient;
  const double s = std::exp(-age / p_.tau_cool) - std::exp(-age / p_.tau_rise);
  return p_.T_ambient + (p_.T_peak - p_.T_ambient) * s / norm_;
}

void GroundThermalModel::temperature_map(const util::Array2D<double>& tig,
                                         double t,
                                         util::Array2D<double>& T_out) const {
  if (!T_out.same_shape(tig))
    T_out = util::Array2D<double>(tig.nx(), tig.ny());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < tig.ny(); ++j)
    for (int i = 0; i < tig.nx(); ++i) {
      const double ti = tig(i, j);
      T_out(i, j) = (ti == fire::kNotIgnited) ? p_.T_ambient
                                              : temperature(t - ti);
    }
}

}  // namespace wfire::scene
