// Spatial mappings for the morphing EnKF (paper Sec. 3.3). A Mapping T is a
// displacement field on grid nodes, stored in grid-index units; (I + T)
// sends node (i, j) to the fractional position (i + tx(i,j), j + ty(i,j)).
// Warping composes a field with (I + T) by bilinear sampling (clamped at the
// domain edge, which is the natural extension for signed-distance-like
// fields).
#pragma once

#include "util/array2d.h"

namespace wfire::morphing {

struct Mapping {
  util::Array2D<double> tx, ty;

  Mapping() = default;
  Mapping(int nx, int ny) : tx(nx, ny, 0.0), ty(nx, ny, 0.0) {}

  [[nodiscard]] int nx() const { return tx.nx(); }
  [[nodiscard]] int ny() const { return tx.ny(); }
  [[nodiscard]] bool same_shape(const Mapping& o) const {
    return tx.same_shape(o.tx) && ty.same_shape(o.ty);
  }

  void scale(double s) {
    for (double& v : tx) v *= s;
    for (double& v : ty) v *= s;
  }

  // Max displacement magnitude [grid units].
  [[nodiscard]] double max_norm() const;
};

// out(i,j) = u(i + tx(i,j), j + ty(i,j))  — i.e. out = u o (I + T).
void warp(const util::Array2D<double>& u, const Mapping& T,
          util::Array2D<double>& out);

// Composition: returns S with (I + S) = (I + T1) o (I + T2), i.e.
// S(x) = T2(x) + T1(x + T2(x)).
[[nodiscard]] Mapping compose(const Mapping& T1, const Mapping& T2);

// Approximate inverse of (I + T) by under-relaxed fixed-point iteration
// X <- (1-w) X + w (-T(x + X)); the relaxation keeps the iteration
// contractive up to ||grad T|| ~ 1 (the registration's smoothness penalty
// keeps mappings near that regime, but ensemble linear combinations can
// push them to the edge).
[[nodiscard]] Mapping invert(const Mapping& T, int iters = 30,
                             double relax = 0.6);

// Max norm of (I+T) o (I+Tinv) - I over the grid [grid units]: how far the
// claimed inverse is from a true inverse (diagnostic).
[[nodiscard]] double inverse_error(const Mapping& T, const Mapping& Tinv);

}  // namespace wfire::morphing
