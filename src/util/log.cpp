#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace wfire::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[wfire %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace wfire::util
