// Scenario-server load test: N independent fire scenarios served
// concurrently by one in-process server. Measures end-to-end serving
// throughput (cell-steps/s across the fleet) and how admission control
// splits the request stream between the caller thread and the pool.
//
// Expected shape: throughput scales with pool threads until the fleet's
// aggregate stencil work saturates the cores; the inline fraction depends
// only on the threshold and grid sizes, not on load. Steady-state serving
// performs no heap allocation, so per-request overhead stays flat as the
// fleet grows.
//
// Benchmark arguments: (scenarios, threads).
#include <benchmark/benchmark.h>

#include <vector>

#include "serve/scenario_server.h"

using namespace wfire;

static void BM_Serve_Load(benchmark::State& state) {
  const int n_scenarios = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr double kAdvance = 30.0;  // sim seconds per request

  long long cell_steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::ServerOptions sopt;
    sopt.threads = threads;
    serve::ScenarioServer server(sopt);
    std::vector<serve::ScenarioId> ids;
    for (int k = 0; k < n_scenarios; ++k) {
      serve::ScenarioSpec spec;
      spec.nx = spec.ny = 41 + 20 * (k % 3);
      spec.wind_jitter = 0.6;
      spec.seed = 4000 + static_cast<std::uint64_t>(k);
      const double cx = 0.3 * (spec.nx - 1) * spec.dx;
      const double cy = 0.5 * (spec.ny - 1) * spec.dy;
      spec.ignitions = {
          levelset::Ignition{levelset::CircleIgnition{cx, cy, 15.0, 0.0}}};
      ids.push_back(server.admit(spec));
      cell_steps += static_cast<long long>(kAdvance / spec.dt) * spec.nx *
                    spec.ny;
    }
    state.ResumeTiming();

    for (const serve::ScenarioId id : ids)
      server.request_advance(id, kAdvance);
    server.wait_all();

    state.PauseTiming();
    state.counters["inline_jobs"] =
        static_cast<double>(server.total_inline());
    state.counters["pooled_jobs"] =
        static_cast<double>(server.total_pooled());
    server.shutdown();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(cell_steps);
}
BENCHMARK(BM_Serve_Load)
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({32, 4})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
