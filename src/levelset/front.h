// Fireline geometry extracted from the level set function: the zero contour
// (marching squares), its length, and the burned area {psi < 0} with
// sub-cell accuracy. Used for diagnostics, Fig. 1-style front tracking, and
// the analytic-solution tests.
#pragma once

#include <vector>

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::levelset {

struct FrontSegment {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
};

// Marching-squares extraction of the psi = 0 contour (linear interpolation
// along cell edges; the ambiguous saddle cases are split by the cell-center
// average sign).
[[nodiscard]] std::vector<FrontSegment> extract_front(
    const grid::Grid2D& g, const util::Array2D<double>& psi);

// Total fireline length [m].
[[nodiscard]] double front_length(const std::vector<FrontSegment>& segs);

// Burned area [m^2] of {psi < 0}: per cell, the fraction below zero is
// estimated from the four node values (exact for linear psi).
[[nodiscard]] double burned_area(const grid::Grid2D& g,
                                 const util::Array2D<double>& psi);

// Largest x such that some point with psi <= 0 has that x (rightmost extent
// of the burning region); -inf when nothing burns. Used by the Fig. 1 bench
// to track the downwind ("right") front position over time.
[[nodiscard]] double rightmost_burning_x(const grid::Grid2D& g,
                                         const util::Array2D<double>& psi);

}  // namespace wfire::levelset
