// Substrate benchmark: the pressure Poisson solvers behind the anelastic
// projection (multigrid V-cycles vs red-black SOR). One projection runs
// twice per atmosphere step, so this solve dominates WrfLite's cost.
//
// Expected shape: multigrid converges in O(10) V-cycles independent of grid
// size (O(N) total), while SOR iterations grow with the grid dimension —
// the classic crossover that makes multigrid the default.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "atmos/multigrid.h"
#include "util/rng.h"
#include "atmos/poisson.h"

using namespace wfire;
using namespace wfire::atmos;

namespace {

grid::Grid3D make_grid(int n) {
  return grid::Grid3D(n, n, n / 2, 60.0, 60.0, 60.0);
}

Field3 manufactured_rhs(const grid::Grid3D& g) {
  Field3 phi(g.nx, g.ny, g.nz);
  for (int k = 0; k < g.nz; ++k)
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i)
        phi(i, j, k) = std::cos(2 * M_PI * i / g.nx) *
                       std::cos(4 * M_PI * j / g.ny) *
                       std::cos(M_PI * (k + 0.5) / g.nz);
  Field3 rhs;
  apply_laplacian(g, phi, rhs);
  return rhs;
}

// Full-spectrum RHS (zero-mean white noise): the realistic projection load,
// where low-frequency error modes expose SOR's O(n^2) iteration growth.
Field3 random_rhs(const grid::Grid3D& g) {
  wfire::util::Rng rng(g.nx * 1000 + g.nz);
  Field3 rhs(g.nx, g.ny, g.nz);
  for (double& v : rhs) v = rng.normal();
  remove_mean(rhs);
  return rhs;
}

void print_solver_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Substrate: Poisson solver comparison (white-noise rhs) "
              "===\n");
  std::printf("%10s %12s %12s %14s %14s\n", "grid", "mg_cycles", "sor_iters",
              "mg_resid", "sor_resid");
  for (const int n : {16, 32, 48}) {
    const grid::Grid3D g = make_grid(n);
    const Field3 rhs = random_rhs(g);

    Multigrid mg(g);
    Field3 phi_mg(g.nx, g.ny, g.nz, 0.0);
    const SolveStats ms = mg.solve(rhs, phi_mg);

    Field3 phi_sor(g.nx, g.ny, g.nz, 0.0);
    SorOptions sopt;
    sopt.tol = 1e-8;
    sopt.max_iters = 20000;
    const SolveStats ss = solve_sor(g, rhs, phi_sor, sopt);

    std::printf("%7dx%d %12d %12d %14.3g %14.3g\n", n, n / 2, ms.iterations,
                ss.iterations, ms.final_residual, ss.final_residual);
  }
  std::printf("expected shape: MG cycle count flat in n, SOR grows ~n^2\n\n");
}

}  // namespace

static void BM_Poisson_Multigrid(benchmark::State& state) {
  print_solver_table();
  const int n = static_cast<int>(state.range(0));
  const grid::Grid3D g = make_grid(n);
  const Field3 rhs = manufactured_rhs(g);
  Multigrid mg(g);
  Field3 phi(g.nx, g.ny, g.nz, 0.0);
  for (auto _ : state) {
    phi.fill(0.0);
    const SolveStats s = mg.solve(rhs, phi);
    benchmark::DoNotOptimize(s.final_residual);
  }
  state.counters["cells"] = static_cast<double>(g.cell_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.cell_count()));
}
BENCHMARK(BM_Poisson_Multigrid)
    ->Unit(benchmark::kMillisecond)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48);

static void BM_Poisson_Sor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Grid3D g = make_grid(n);
  const Field3 rhs = manufactured_rhs(g);
  Field3 phi(g.nx, g.ny, g.nz, 0.0);
  SorOptions opt;
  opt.tol = 1e-8;
  opt.max_iters = 20000;
  for (auto _ : state) {
    phi.fill(0.0);
    const SolveStats s = solve_sor(g, rhs, phi, opt);
    benchmark::DoNotOptimize(s.final_residual);
  }
  state.counters["cells"] = static_cast<double>(g.cell_count());
}
BENCHMARK(BM_Poisson_Sor)
    ->Unit(benchmark::kMillisecond)
    ->Arg(16)
    ->Arg(32);

static void BM_Poisson_SingleSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const grid::Grid3D g = make_grid(n);
  const Field3 rhs = manufactured_rhs(g);
  Field3 phi(g.nx, g.ny, g.nz, 0.0);
  for (auto _ : state) {
    rbgs_sweep(g, rhs, phi, 1.2);
    benchmark::DoNotOptimize(phi.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.cell_count()));
}
BENCHMARK(BM_Poisson_SingleSweep)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48);

BENCHMARK_MAIN();
