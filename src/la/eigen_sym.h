// Symmetric eigendecomposition by cyclic Jacobi rotations. Used by the
// deterministic (square-root) EnKF variant and covariance diagnostics.
#pragma once

#include "la/matrix.h"

namespace wfire::la {

struct EigenSymResult {
  Vector values;  // ascending
  Matrix vectors; // columns are the corresponding orthonormal eigenvectors
};

// A must be symmetric (enforced up to 1e-10 * ||A||_F, else throws).
[[nodiscard]] EigenSymResult eigen_sym(const Matrix& A, int max_sweeps = 60);

// Computes f(A) = V f(D) V^T for an SPD-compatible scalar function
// (e.g. inverse square root for the ETKF transform). Eigenvalues below
// `floor` are clamped before applying f.
[[nodiscard]] Matrix matrix_function(const EigenSymResult& e,
                                     double (*f)(double), double floor = 0.0);

}  // namespace wfire::la
