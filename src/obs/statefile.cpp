#include "obs/statefile.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace wfire::obs {

namespace {

constexpr char kMagic[4] = {'W', 'F', 'S', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr char kTempSuffix[] = ".tmp";

// Flushes a just-written file (and, for the rename to be durable, its
// directory) to stable storage. Best effort: fsync failures surface as a
// throw from the caller only when the data write itself failed.
void sync_path(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}
std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("StateFile: truncated file");
  return v;
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("StateFile: truncated file");
  return v;
}

void check_header(std::istream& in, const std::string& path) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("StateFile: bad magic in " + path);
  const std::uint32_t version = read_u32(in);
  if (version != kVersion)
    throw std::runtime_error("StateFile: unsupported version in " + path);
}

}  // namespace

void StateFile::write(const std::string& path, const Sections& sections) {
  // Crash safety: build the file next to its destination, sync it, then
  // atomically rename over the target. Readers only ever see either the old
  // complete file or the new complete file; a kill mid-write leaves only a
  // *.tmp that discovery skips.
  const std::string tmp = path + kTempSuffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("StateFile: cannot open " + tmp);
    out.write(kMagic, 4);
    write_u32(out, kVersion);
    write_u32(out, static_cast<std::uint32_t>(sections.size()));
    for (const auto& [name, values] : sections) {
      write_u32(out, static_cast<std::uint32_t>(name.size()));
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
      write_u64(out, values.size());
      out.write(reinterpret_cast<const char*>(values.data()),
                static_cast<std::streamsize>(values.size() * sizeof(double)));
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("StateFile: write failed for " + tmp);
    }
  }
  sync_path(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("StateFile: cannot publish " + path);
  }
  sync_parent_dir(path);
}

bool StateFile::is_temp_path(const std::string& path) {
  const std::size_t n = sizeof(kTempSuffix) - 1;
  return path.size() >= n && path.compare(path.size() - n, n, kTempSuffix) == 0;
}

Sections StateFile::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("StateFile: cannot open " + path);
  check_header(in, path);
  const std::uint32_t n = read_u32(in);
  Sections out;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t len = read_u32(in);
    std::string name(len, '\0');
    in.read(name.data(), len);
    const std::uint64_t count = read_u64(in);
    std::vector<double> values(count);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    if (!in) throw std::runtime_error("StateFile: truncated section " + name);
    out.emplace(std::move(name), std::move(values));
  }
  return out;
}

std::vector<std::pair<std::string, std::size_t>> StateFile::list_sections(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("StateFile: cannot open " + path);
  check_header(in, path);
  const std::uint32_t n = read_u32(in);
  std::vector<std::pair<std::string, std::size_t>> out;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t len = read_u32(in);
    std::string name(len, '\0');
    in.read(name.data(), len);
    const std::uint64_t count = read_u64(in);
    in.seekg(static_cast<std::streamoff>(count * sizeof(double)),
             std::ios::cur);
    if (!in) throw std::runtime_error("StateFile: truncated file " + path);
    out.emplace_back(std::move(name), static_cast<std::size_t>(count));
  }
  return out;
}

std::vector<double> StateFile::extract(const std::string& path,
                                       const std::string& name) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("StateFile: cannot open " + path);
  check_header(in, path);
  const std::uint32_t n = read_u32(in);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t len = read_u32(in);
    std::string sname(len, '\0');
    in.read(sname.data(), len);
    const std::uint64_t count = read_u64(in);
    if (sname == name) {
      std::vector<double> values(count);
      in.read(reinterpret_cast<char*>(values.data()),
              static_cast<std::streamsize>(count * sizeof(double)));
      if (!in) throw std::runtime_error("StateFile: truncated section " + name);
      return values;
    }
    in.seekg(static_cast<std::streamoff>(count * sizeof(double)),
             std::ios::cur);
  }
  throw std::runtime_error("StateFile: section not found: " + name);
}

void StateFile::replace(const std::string& path, const std::string& name,
                        std::span<const double> values) {
  std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!io) throw std::runtime_error("StateFile: cannot open " + path);
  check_header(io, path);
  const std::uint32_t n = read_u32(io);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t len = read_u32(io);
    std::string sname(len, '\0');
    io.read(sname.data(), len);
    const std::uint64_t count = read_u64(io);
    if (sname == name) {
      if (count != values.size())
        throw std::runtime_error("StateFile: size mismatch replacing " + name);
      io.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(double)));
      if (!io) throw std::runtime_error("StateFile: replace failed: " + name);
      return;
    }
    io.seekg(static_cast<std::streamoff>(count * sizeof(double)),
             std::ios::cur);
  }
  throw std::runtime_error("StateFile: section not found: " + name);
}

}  // namespace wfire::obs
