// Automatic image registration (paper Sec. 3.3): find the mapping T so that
// u ~= u0 o (I + T) by approximately solving
//
//   || u - u0 o (I+T) ||^2 + c1 ||T||^2 + c2 ||grad T||^2  ->  min.
//
// The optimizer is coarse-to-fine iterative warping: the images are
// box-downsampled into a pyramid; at each level a damped Gauss-Newton
// (Lucas-Kanade style) pointwise update cancels the linearized residual,
// followed by diffusion smoothing of T (the ||grad T||^2 term, c2 acting as
// the diffusion weight) and a slight shrinkage toward zero (the ||T||^2
// term). The pyramid captures displacements far larger than one pixel —
// the "fire in a different location" case the morphing EnKF exists for.
#pragma once

#include "morphing/warp.h"

namespace wfire::morphing {

struct RegistrationOptions {
  int max_levels = 6;          // pyramid depth cap (min level size 16)
  int iters_per_level = 60;    // Gauss-Newton sweeps per level
  double c1 = 1e-4;            // ||T||^2 weight (per-sweep shrink 1/(1+c1))
  double c2 = 0.25;            // ||grad T||^2 weight (diffusion, capped 0.45)
  double presmooth_sigma = 1.0;// Gaussian presmoothing per level [px]
  double initial_step = 1.0;   // per-sweep displacement cap [px]
  double tol = 1e-7;           // relative objective decrease stop
};

struct RegistrationResult {
  Mapping T;
  double objective = 0;     // final value of the full objective at level 0
  double data_term = 0;     // ||u - u0 o (I+T)||^2 / npix
  int levels = 0;
  int iterations = 0;       // total over all levels
};

// Registers u against the reference u0 (both same shape).
[[nodiscard]] RegistrationResult register_fields(
    const util::Array2D<double>& u, const util::Array2D<double>& u0,
    const RegistrationOptions& opt = {});

// Pyramid helpers (exposed for tests).
[[nodiscard]] util::Array2D<double> downsample2(
    const util::Array2D<double>& u);
[[nodiscard]] util::Array2D<double> gaussian_smooth(
    const util::Array2D<double>& u, double sigma);

}  // namespace wfire::morphing
