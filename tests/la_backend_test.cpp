// Backend property tests: the blocked, panel-packed kernels (gemm, syrk,
// ger, Cholesky) must reproduce the naive reference implementation to tight
// relative tolerance across shapes chosen to stress the tiling — degenerate
// (1 x N, N x 1), odd, rectangular, and sizes straddling the block edge.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "la/backend.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/workspace.h"
#include "util/rng.h"

using namespace wfire::la;
using wfire::util::Rng;

namespace {

// Relative max-abs error against the Frobenius scale of the reference.
double rel_err(const Matrix& got, const Matrix& want) {
  const double scale = std::max(frobenius_norm(want), 1.0);
  return max_abs_diff(got, want) / scale;
}

Matrix random_spd(int n, Rng& rng) {
  const Matrix A = Matrix::random_normal(n, n, rng);
  Matrix S = matmul(A, A, false, true);
  for (int i = 0; i < n; ++i) S(i, i) += n;  // well-conditioned
  return S;
}

struct GemmShape {
  int m, n, k;
};

// Degenerate, odd, rectangular, and block-edge-straddling shapes (blocked
// kernels tile at block_size() = 64 by default; 63/64/65/129 cross every
// tile boundary case).
const std::vector<GemmShape> kShapes = {
    {1, 1, 1},  {1, 7, 3},    {7, 1, 3},    {3, 5, 1},    {5, 4, 9},
    {17, 3, 29}, {63, 65, 64}, {64, 64, 64}, {65, 63, 66}, {129, 67, 70},
    {40, 200, 12}, {200, 40, 12}};

}  // namespace

TEST(Backend, EnvDefaultAndOverride) {
  const Backend initial = backend();
  {
    ScopedBackend ref(Backend::kReference);
    EXPECT_EQ(backend(), Backend::kReference);
    {
      ScopedBackend blk(Backend::kBlocked, 32);
      EXPECT_EQ(backend(), Backend::kBlocked);
      EXPECT_EQ(block_size(), 32);
    }
    EXPECT_EQ(backend(), Backend::kReference);
  }
  EXPECT_EQ(backend(), initial);
  set_block_size(3);  // clamped to the minimum tile edge
  EXPECT_EQ(block_size(), 8);
  set_block_size(64);
}

TEST(BackendGemm, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(101);
  for (const auto& [m, n, k] : kShapes) {
    const Matrix A = Matrix::random_normal(m, k, rng);
    const Matrix B = Matrix::random_normal(k, n, rng);
    for (const double beta : {0.0, 1.0, -0.5}) {
      Matrix C0 = Matrix::random_normal(m, n, rng);
      Matrix C1 = C0;
      {
        ScopedBackend be(Backend::kReference);
        gemm(false, false, 1.7, A, B, beta, C0);
      }
      {
        ScopedBackend be(Backend::kBlocked);
        gemm(false, false, 1.7, A, B, beta, C1);
      }
      EXPECT_LE(rel_err(C1, C0), 1e-10)
          << "shape " << m << "x" << n << "x" << k << " beta " << beta;
    }
  }
}

TEST(BackendGemm, TransposeVariantsMatchReference) {
  Rng rng(102);
  for (const auto& [m, n, k] : kShapes) {
    for (const bool tA : {false, true}) {
      for (const bool tB : {false, true}) {
        const Matrix A = tA ? Matrix::random_normal(k, m, rng)
                            : Matrix::random_normal(m, k, rng);
        const Matrix B = tB ? Matrix::random_normal(n, k, rng)
                            : Matrix::random_normal(k, n, rng);
        Matrix C0(m, n, 0.5), C1(m, n, 0.5);
        {
          ScopedBackend be(Backend::kReference);
          gemm(tA, tB, -0.3, A, B, 1.0, C0);
        }
        {
          ScopedBackend be(Backend::kBlocked);
          gemm(tA, tB, -0.3, A, B, 1.0, C1);
        }
        EXPECT_LE(rel_err(C1, C0), 1e-10)
            << "shape " << m << "x" << n << "x" << k << " tA " << tA << " tB "
            << tB;
      }
    }
  }
}

TEST(BackendGemm, SmallBlockSizeStillCorrect) {
  // Force many partial tiles: block edge 8 against odd shapes.
  Rng rng(103);
  ScopedBackend be(Backend::kBlocked, 8);
  const Matrix A = Matrix::random_normal(37, 23, rng);
  const Matrix B = Matrix::random_normal(23, 41, rng);
  Matrix C0(37, 41, 0.0), C1 = C0;
  {
    ScopedBackend ref(Backend::kReference);
    gemm(false, false, 1.0, A, B, 0.0, C0);
  }
  gemm(false, false, 1.0, A, B, 0.0, C1);
  EXPECT_LE(rel_err(C1, C0), 1e-10);
}

TEST(BackendSyrk, MatchesReferenceAndGemm) {
  Rng rng(104);
  for (const auto& [m, n, k] : kShapes) {
    (void)n;
    for (const bool tA : {false, true}) {
      const Matrix A = tA ? Matrix::random_normal(k, m, rng)
                          : Matrix::random_normal(m, k, rng);
      Matrix C0(m, m, 0.0), C1(m, m, 0.0);
      {
        ScopedBackend be(Backend::kReference);
        syrk(tA, 2.1, A, 0.0, C0);
      }
      {
        ScopedBackend be(Backend::kBlocked);
        syrk(tA, 2.1, A, 0.0, C1);
      }
      EXPECT_LE(rel_err(C1, C0), 1e-10)
          << "m " << m << " k " << k << " tA " << tA;
      // And both equal the gemm formulation.
      Matrix G(m, m, 0.0);
      gemm(tA, !tA, 2.1, A, A, 0.0, G);
      EXPECT_LE(rel_err(C1, G), 1e-10);
      // Exact symmetry (mirrored, not recomputed).
      for (int j = 0; j < m; ++j)
        for (int i = 0; i < j; ++i) EXPECT_EQ(C1(i, j), C1(j, i));
    }
  }
}

TEST(BackendSyrk, AccumulatesIntoSymmetricC) {
  Rng rng(105);
  const int m = 67, k = 21;
  const Matrix A = Matrix::random_normal(m, k, rng);
  Matrix C = random_spd(m, rng);  // symmetric start, as the contract requires
  Matrix C0 = C, C1 = C;
  {
    ScopedBackend be(Backend::kReference);
    syrk(false, 1.0, A, 0.5, C0);
  }
  {
    ScopedBackend be(Backend::kBlocked);
    syrk(false, 1.0, A, 0.5, C1);
  }
  EXPECT_LE(rel_err(C1, C0), 1e-10);
}

TEST(BackendGer, MatchesReference) {
  Rng rng(106);
  for (const int m : {1, 5, 63, 130}) {
    for (const int n : {1, 4, 65}) {
      Vector x(static_cast<std::size_t>(m)), y(static_cast<std::size_t>(n));
      for (auto& v : x) v = rng.normal();
      for (auto& v : y) v = rng.normal();
      Matrix A0 = Matrix::random_normal(m, n, rng);
      Matrix A1 = A0;
      {
        ScopedBackend be(Backend::kReference);
        ger(1.3, x, y, A0);
      }
      {
        ScopedBackend be(Backend::kBlocked);
        ger(1.3, x, y, A1);
      }
      EXPECT_LE(rel_err(A1, A0), 1e-10) << "m " << m << " n " << n;
    }
  }
}

class BackendCholeskyParam : public ::testing::TestWithParam<int> {};

TEST_P(BackendCholeskyParam, BlockedFactorMatchesReference) {
  const int n = GetParam();
  Rng rng(200 + n);
  const Matrix S = random_spd(n, rng);
  Matrix L_ref, L_blk;
  int jit_ref = 0, jit_blk = 0;
  {
    ScopedBackend be(Backend::kReference);
    jit_ref = cholesky_factor(S, L_ref);
  }
  {
    ScopedBackend be(Backend::kBlocked);
    jit_blk = cholesky_factor(S, L_blk);
  }
  EXPECT_EQ(jit_ref, 0);
  EXPECT_EQ(jit_blk, 0);
  EXPECT_LE(rel_err(L_blk, L_ref), 1e-10) << "n " << n;
  // Both reconstruct A.
  const Matrix R = matmul(L_blk, L_blk, false, true);
  EXPECT_LE(rel_err(R, S), 1e-10);
  // Strict upper triangle is exactly zero.
  for (int j = 1; j < n; ++j)
    for (int i = 0; i < j; ++i) EXPECT_EQ(L_blk(i, j), 0.0);
}

// 1 and 2 degenerate, 63/64/65/129 straddle the default block edge.
INSTANTIATE_TEST_SUITE_P(Sizes, BackendCholeskyParam,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 129, 200));

TEST(BackendCholesky, JitterAgreesAcrossBackends) {
  // Rank-1 matrix: positive semidefinite, needs the same diagonal boosts on
  // both paths.
  Matrix S(5, 5);
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) S(i, j) = (i + 1.0) * (j + 1.0);
  Matrix L_ref, L_blk;
  int jr, jb;
  {
    ScopedBackend be(Backend::kReference);
    jr = cholesky_factor(S, L_ref);
  }
  {
    ScopedBackend be(Backend::kBlocked);
    jb = cholesky_factor(S, L_blk);
  }
  EXPECT_GT(jr, 0);
  EXPECT_EQ(jr, jb);
}

TEST(BackendCholesky, MultiRhsSolveMatchesScalarSolve) {
  Rng rng(301);
  for (const int n : {1, 5, 63, 130}) {
    for (const int nrhs : {1, 3, 25}) {
      const Matrix S = random_spd(n, rng);
      const CholeskyResult f = cholesky(S);
      const Matrix B = Matrix::random_normal(n, nrhs, rng);
      Matrix X = B;
      cholesky_solve_in_place(f.L, X);
      for (int c = 0; c < nrhs; ++c) {
        Vector b(B.col(c).begin(), B.col(c).end());
        cholesky_solve(f.L, b);
        for (int i = 0; i < n; ++i)
          EXPECT_NEAR(X(i, c), b[i], 1e-10 * std::max(1.0, std::abs(b[i])))
              << "n " << n << " rhs " << c;
      }
    }
  }
}

TEST(Workspace, ReusesBuffersAcrossReshapes) {
  Workspace ws;
  Matrix& a = ws.mat("a", 100, 50);
  const double* data0 = a.data();
  a.fill(1.0);
  // Shrink then regrow within capacity: same allocation.
  Matrix& a2 = ws.mat("a", 10, 5);
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.data(), data0);
  Matrix& a3 = ws.mat("a", 50, 100);
  EXPECT_EQ(a3.data(), data0);
  EXPECT_EQ(a3.rows(), 50);
  EXPECT_EQ(a3.cols(), 100);

  Vector& v = ws.vec("v", 1000);
  const double* vd = v.data();
  Vector& v2 = ws.vec("v", 10);
  EXPECT_EQ(v2.data(), vd);

  EXPECT_EQ(ws.held_doubles(), 50u * 100u + 10u);
  ws.clear();
  EXPECT_EQ(ws.held_doubles(), 0u);
}

TEST(Workspace, DistinctKeysDistinctBuffers) {
  Workspace ws;
  Matrix& a = ws.mat("a", 4, 4);
  Matrix& b = ws.mat("b", 4, 4);
  EXPECT_NE(a.data(), b.data());
  a.fill(1.0);
  b.fill(2.0);
  EXPECT_DOUBLE_EQ(ws.mat("a", 4, 4)(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ws.mat("b", 4, 4)(0, 0), 2.0);
}

TEST(MatrixResize, KeepsColumnPrefix) {
  // The sequential-EnKF batch flush relies on resize preserving the leading
  // columns of a column-major matrix.
  Matrix A(3, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 3; ++i) A(i, j) = 10.0 * j + i;
  A.resize(3, 2);
  EXPECT_DOUBLE_EQ(A(2, 1), 12.0);
  A.resize(3, 4);
  EXPECT_DOUBLE_EQ(A(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(A(2, 1), 12.0);
}
