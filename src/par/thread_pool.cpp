#include "par/thread_pool.h"

namespace wfire::par {

ThreadPool::ThreadPool(int n) {
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 2;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(/*drain=*/true); }

void ThreadPool::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    if (!drain) discard_queues_locked();
    if (joined_) return;
    joined_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::discard_queues_locked() {
  std::size_t discarded = 0;
  for (auto& q : queues_) {
    discarded += q.size();
    // Destroying the type-erased closures destroys their packaged_tasks;
    // outstanding futures observe broken_promise, a clean cancellation
    // signal that cannot be confused with a task-thrown exception.
    q.clear();
  }
  return discarded;
}

std::size_t ThreadPool::cancel_pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  return discard_queues_locked();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& q : queues_)
          if (!q.empty()) return true;
        return false;
      });
      auto next = [this]() -> std::deque<std::function<void()>>* {
        for (auto& q : queues_)
          if (!q.empty()) return &q;
        return nullptr;
      }();
      if (next == nullptr) {
        if (stopping_) return;
        continue;  // spurious wakeup with empty queues
      }
      task = std::move(next->front());
      next->pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  // Every future is drained before the first exception propagates: the tasks
  // capture fn (and whatever the caller's lambda references) by reference,
  // so returning while siblings are still queued or running would leave them
  // with dangling references — the shutdown/exception-hygiene bug class this
  // loop exists to prevent.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace wfire::par
