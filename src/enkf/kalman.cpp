#include "enkf/kalman.h"

#include <stdexcept>

#include "la/blas.h"
#include "la/cholesky.h"

namespace wfire::enkf {

KalmanState kalman_update(const KalmanState& prior, const la::Matrix& H,
                          const la::Vector& d, const la::Vector& r_std) {
  const int n = static_cast<int>(prior.mean.size());
  const int m = H.rows();
  if (H.cols() != n || static_cast<int>(d.size()) != m ||
      static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("kalman_update: size mismatch");

  // S = H P H^T + R, PHt = P H^T.
  const la::Matrix PHt = la::matmul(prior.cov, H, false, true);  // n x m
  la::Matrix S = la::matmul(H, PHt);                             // m x m
  for (int i = 0; i < m; ++i) S(i, i) += r_std[i] * r_std[i];
  const la::CholeskyResult chol = la::cholesky(S);

  // K^T = S^{-1} (PHt)^T  ->  K = PHt S^{-1} (S symmetric).
  const la::Matrix Kt = la::cholesky_solve(chol.L, PHt.transposed());  // m x n
  const la::Matrix K = Kt.transposed();                                // n x m

  KalmanState post;
  post.mean = prior.mean;
  la::Vector innov(d);
  la::Vector hm(static_cast<std::size_t>(m));
  la::gemv(1.0, H, prior.mean, 0.0, hm);
  for (int i = 0; i < m; ++i) innov[i] = d[i] - hm[i];
  la::gemv(1.0, K, innov, 1.0, post.mean);

  // P_a = (I - K H) P.
  la::Matrix KH = la::matmul(K, H);  // n x n
  la::Matrix ImKH = la::Matrix::identity(n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) ImKH(i, j) -= KH(i, j);
  post.cov = la::matmul(ImKH, prior.cov);
  return post;
}

KalmanState kalman_forecast(const KalmanState& state, const la::Matrix& M,
                            const la::Matrix& Q) {
  const int n = static_cast<int>(state.mean.size());
  if (M.rows() != n || M.cols() != n || Q.rows() != n || Q.cols() != n)
    throw std::invalid_argument("kalman_forecast: size mismatch");
  KalmanState out;
  out.mean.assign(static_cast<std::size_t>(n), 0.0);
  la::gemv(1.0, M, state.mean, 0.0, out.mean);
  const la::Matrix MP = la::matmul(M, state.cov);
  out.cov = la::matmul(MP, M, false, true);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) out.cov(i, j) += Q(i, j);
  return out;
}

}  // namespace wfire::enkf
