// Time integration of d(psi)/dt + S ||grad psi|| = 0.
//
// The paper uses Heun's method (RK2) "not for accuracy but conservation":
// explicit Euler systematically overestimates psi and slows or stops the
// fire. Both steppers are provided; bench_abl_integrator reproduces that
// claim quantitatively.
#pragma once

#include "levelset/godunov.h"

namespace wfire::levelset {

struct StepStats {
  double max_speed = 0;  // max S over the grid [m/s]
  double cfl = 0;        // max S * dt / min(dx, dy)
};

// Reusable per-step work arrays. Callers that step in a loop (every fire
// model instance, every serving scenario) hold one of these so steady-state
// stepping performs no heap allocation; the scratch-free overloads below
// construct a transient one per call.
struct StepScratch {
  util::Array2D<double> k1, k2, predictor;
};

// One explicit Euler step: psi -= dt * S .* |grad psi|.
StepStats step_euler(const grid::Grid2D& g, const util::Array2D<double>& speed,
                     double dt, UpwindScheme scheme,
                     util::Array2D<double>& psi);
StepStats step_euler(const grid::Grid2D& g, const util::Array2D<double>& speed,
                     double dt, UpwindScheme scheme, util::Array2D<double>& psi,
                     StepScratch& scratch);

// One Heun (RK2 / trapezoidal predictor-corrector) step:
//   k1 = S|grad psi|, psi* = psi - dt k1,
//   k2 = S|grad psi*|, psi <- psi - dt (k1 + k2) / 2.
StepStats step_heun(const grid::Grid2D& g, const util::Array2D<double>& speed,
                    double dt, UpwindScheme scheme,
                    util::Array2D<double>& psi);
StepStats step_heun(const grid::Grid2D& g, const util::Array2D<double>& speed,
                    double dt, UpwindScheme scheme, util::Array2D<double>& psi,
                    StepScratch& scratch);

// Largest stable time step for a speed field at the given CFL number.
[[nodiscard]] double stable_dt(const grid::Grid2D& g,
                               const util::Array2D<double>& speed,
                               double cfl = 0.9);

}  // namespace wfire::levelset
