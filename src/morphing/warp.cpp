#include "morphing/warp.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

#include "grid/interp.h"

namespace wfire::morphing {

double Mapping::max_norm() const {
  double m = 0;
  for (int j = 0; j < ty.ny(); ++j)
    for (int i = 0; i < tx.nx(); ++i)
      m = std::max(m, std::hypot(tx(i, j), ty(i, j)));
  return m;
}

void warp(const util::Array2D<double>& u, const Mapping& T,
          util::Array2D<double>& out) {
  if (!out.same_shape(u)) out = util::Array2D<double>(u.nx(), u.ny());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < u.ny(); ++j)
    for (int i = 0; i < u.nx(); ++i)
      out(i, j) = grid::bilinear_frac(u, i + T.tx(i, j), j + T.ty(i, j));
}

Mapping compose(const Mapping& T1, const Mapping& T2) {
  Mapping S(T1.nx(), T1.ny());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < S.ny(); ++j)
    for (int i = 0; i < S.nx(); ++i) {
      const double xi = i + T2.tx(i, j);
      const double yj = j + T2.ty(i, j);
      S.tx(i, j) = T2.tx(i, j) + grid::bilinear_frac(T1.tx, xi, yj);
      S.ty(i, j) = T2.ty(i, j) + grid::bilinear_frac(T1.ty, xi, yj);
    }
  return S;
}

Mapping invert(const Mapping& T, int iters, double relax) {
  Mapping inv(T.nx(), T.ny());
  Mapping next(T.nx(), T.ny());
  for (int it = 0; it < iters; ++it) {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int j = 0; j < T.ny(); ++j)
      for (int i = 0; i < T.nx(); ++i) {
        const double xi = i + inv.tx(i, j);
        const double yj = j + inv.ty(i, j);
        next.tx(i, j) = (1.0 - relax) * inv.tx(i, j) -
                        relax * grid::bilinear_frac(T.tx, xi, yj);
        next.ty(i, j) = (1.0 - relax) * inv.ty(i, j) -
                        relax * grid::bilinear_frac(T.ty, xi, yj);
      }
    std::swap(inv, next);
  }
  return inv;
}

double inverse_error(const Mapping& T, const Mapping& Tinv) {
  return compose(T, Tinv).max_norm();
}

}  // namespace wfire::morphing
