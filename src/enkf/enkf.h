// The ensemble Kalman filter (paper Sec. 3.3, after Evensen 2003): the
// stochastic (perturbed-observations) analysis replacing the forecast
// ensemble by linear combinations whose coefficients solve a least-squares
// balance between the change in state and the distance to the data.
//
//   X_a = X_f + (1/(N-1)) A (HA)^T S^{-1} (D - HX),
//   S = (HA)(HA)^T/(N-1) + R,   D = d 1^T + E,  E_k ~ N(0, R),
//
// where A and HA are state and observation anomalies. Two algebraically
// equivalent solver paths are provided:
//  - observation space: Cholesky of the m x m matrix S (best when m is
//    small, e.g. weather stations);
//  - ensemble space: an N x N square-root system derived from
//    B = R^{-1/2} HA / sqrt(N-1), cost O(m N^2) (best when m >> N, e.g.
//    infrared image observations). Two factorizations of that system are
//    kept: the default QR square-root form (one Householder QR of the
//    stacked (m+N) x N matrix [B; I], then two N x N triangular solves —
//    never forms B^T B, so no condition-number squaring) and the original
//    thin Jacobi SVD of B, retained as the property-tested reference
//    (WFIRE_ENKF_FACTORIZATION=qr|svd, or Factorization below).
//
// The QR path's panel factorization scheme is itself selectable
// (WFIRE_QR_SCHEME=tsqr|blocked, or EnKFOptions::qr_scheme): the TSQR
// scheme splits the tall stacked panel into row blocks factored in
// parallel (see la/qr.h). The R^{-1/2} scaling of the anomalies and
// innovations is fused into the stacked-panel build and the pack step of
// the coefficient gemm (gemm_scaled), so the m-sized part of the analysis
// is one parallel sweep plus the factorization — no separate B / Ytilde
// scaling passes.
#pragma once

#include <string>

#include "la/matrix.h"
#include "la/qr.h"
#include "la/workspace.h"
#include "util/rng.h"

namespace wfire::enkf {

enum class SolverPath { kAuto, kObsSpace, kEnsembleSpace };

// Factorization of the ensemble-space system. kDefault resolves to the
// process-wide default (env WFIRE_ENKF_FACTORIZATION=qr|svd, qr when unset).
enum class Factorization { kDefault, kQr, kSvd };

// The process-wide default read from the environment at first use.
[[nodiscard]] Factorization default_factorization();

struct EnKFOptions {
  double inflation = 1.0;        // multiplicative, applied pre-analysis
  SolverPath path = SolverPath::kAuto;
  Factorization factorization = Factorization::kDefault;  // ensemble path
  // Panel scheme of the QR square-root factorization; kAuto follows
  // WFIRE_QR_SCHEME (and its m >= 8n heuristic when that is unset too).
  la::QrScheme qr_scheme = la::QrScheme::kAuto;
  double svd_rcond = 1e-10;      // pseudo-inverse cutoff (svd factorization)
  // Scratch arena reused across calls; the analysis is allocation-free in
  // steady state when one is supplied (a temporary arena is used otherwise).
  la::Workspace* workspace = nullptr;
};

struct EnKFStats {
  SolverPath path_used = SolverPath::kObsSpace;
  // Resolved factorization when the ensemble-space path ran (kDefault when
  // the observation-space path was taken instead).
  Factorization factorization_used = Factorization::kDefault;
  // Panel scheme the QR factorization resolved to (kAuto when the QR
  // ensemble-space path did not run).
  la::QrScheme qr_scheme_used = la::QrScheme::kAuto;
  int n = 0, m = 0, N = 0;
  double innovation_rms = 0;  // RMS of d - H(mean) before analysis
  double increment_rms = 0;   // RMS change of the ensemble mean
};

// Stochastic EnKF analysis, in place on X.
//   X  : n x N forecast ensemble (overwritten with the analysis)
//   HX : m x N observed ensemble (observation function of each member)
//   d  : m observations
//   r_std : m observation error standard deviations (R = diag(r_std^2))
EnKFStats enkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        util::Rng& rng, const EnKFOptions& opt = {});

// Sequential (one observation at a time) stochastic EnKF with optional
// Gaspari-Cohn covariance localization. `state_obs_taper(i, o)` returns the
// taper for state coordinate i against observation o (1.0 = no taper), and
// `obs_obs_taper(o1, o2)` likewise between observations (needed to keep HX
// consistent while sweeping). Pass nullptrs for no localization.
using TaperFn = double (*)(int, int, const void* ctx);

struct SequentialOptions {
  double inflation = 1.0;
  TaperFn state_obs_taper = nullptr;
  TaperFn obs_obs_taper = nullptr;
  const void* taper_ctx = nullptr;
  la::Workspace* workspace = nullptr;  // as in EnKFOptions
};

EnKFStats enkf_sequential(la::Matrix& X, la::Matrix& HX, const la::Vector& d,
                          const la::Vector& r_std, util::Rng& rng,
                          const SequentialOptions& opt = {});

}  // namespace wfire::enkf
