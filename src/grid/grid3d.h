// Uniform cell-centered 3-D grid for the atmospheric core: cells of size
// (dx, dy, dz); scalar values live at cell centers, velocity components on
// the staggered faces (see atmos/state.h).
#pragma once

#include <stdexcept>

namespace wfire::grid {

struct Grid3D {
  int nx = 0, ny = 0, nz = 0;    // number of cells
  double dx = 1, dy = 1, dz = 1; // cell size [m]

  Grid3D() = default;
  Grid3D(int nx_, int ny_, int nz_, double dx_, double dy_, double dz_)
      : nx(nx_), ny(ny_), nz(nz_), dx(dx_), dy(dy_), dz(dz_) {
    if (nx_ < 1 || ny_ < 1 || nz_ < 1 || dx_ <= 0 || dy_ <= 0 || dz_ <= 0)
      throw std::invalid_argument("Grid3D: invalid dims/spacing");
  }

  // Cell-center coordinates.
  [[nodiscard]] double xc(int i) const { return (i + 0.5) * dx; }
  [[nodiscard]] double yc(int j) const { return (j + 0.5) * dy; }
  [[nodiscard]] double zc(int k) const { return (k + 0.5) * dz; }

  [[nodiscard]] double width() const { return nx * dx; }
  [[nodiscard]] double depth() const { return ny * dy; }
  [[nodiscard]] double height() const { return nz * dz; }

  [[nodiscard]] std::size_t cell_count() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }
};

}  // namespace wfire::grid
