#include "par/ensemble_runner.h"

#include "util/stopwatch.h"

namespace wfire::par {

void EnsembleRunner::run_phase(const std::string& name, int members,
                               const std::function<void(int)>& task) {
  util::Stopwatch sw;
  pool_.parallel_for(members, task);
  timings_.push_back({name, sw.seconds()});
}

void EnsembleRunner::run_serial_phase(const std::string& name,
                                      const std::function<void()>& task) {
  util::Stopwatch sw;
  task();
  timings_.push_back({name, sw.seconds()});
}

double EnsembleRunner::total_seconds() const {
  double total = 0;
  for (const auto& t : timings_) total += t.seconds;
  return total;
}

}  // namespace wfire::par
