#include "risk/sweep.h"

#include <cmath>
#include <stdexcept>
#include <variant>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"

namespace wfire::risk {

serve::ScenarioSpec perturb_member(const serve::ScenarioSpec& base,
                                   const PerturbationSpec& pert, int k) {
  if (k < 0) throw std::invalid_argument("perturb_member: k < 0");
  util::Rng rng =
      util::Rng::stream(pert.seed, static_cast<std::uint64_t>(k));
  serve::ScenarioSpec spec = base;

  // Fixed draw order: speed, direction, moisture, burn time, then two
  // offsets per ignition shape, then the gust seed. Every draw happens even
  // at sigma = 0 so zeroing one axis leaves the others' draws unchanged.
  const double z_speed = rng.normal();
  const double z_dir = rng.normal();
  const double z_moist = rng.normal();
  const double z_tau = rng.normal();

  const double speed = std::hypot(base.wind_u, base.wind_v);
  const double dir = std::atan2(base.wind_v, base.wind_u);
  const double speed_k =
      std::max(0.0, speed + pert.wind_speed_sigma * z_speed);
  const double dir_k = dir + pert.wind_dir_sigma * z_dir;
  spec.wind_u = speed_k * std::cos(dir_k);
  spec.wind_v = speed_k * std::sin(dir_k);

  spec.fuel_moisture_scale =
      base.fuel_moisture_scale * std::exp(pert.moisture_sigma * z_moist);
  spec.burn_time_scale =
      base.burn_time_scale * std::exp(pert.burn_time_sigma * z_tau);

  for (levelset::Ignition& ign : spec.ignitions) {
    const double jx = pert.ignition_jitter * rng.normal();
    const double jy = pert.ignition_jitter * rng.normal();
    if (auto* c = std::get_if<levelset::CircleIgnition>(&ign)) {
      c->cx += jx;
      c->cy += jy;
    } else {
      auto& l = std::get<levelset::LineIgnition>(ign);
      l.x1 += jx;
      l.y1 += jy;
      l.x2 += jx;
      l.y2 += jy;
    }
  }

  spec.seed = base.seed ^ rng.next_u64();
  return spec;
}

namespace {

void hash_ignition(util::Fnv1a& h, const levelset::Ignition& ign) {
  if (const auto* c = std::get_if<levelset::CircleIgnition>(&ign)) {
    h.i32(0);
    h.f64(c->cx);
    h.f64(c->cy);
    h.f64(c->r);
    h.f64(c->time);
  } else {
    const auto& l = std::get<levelset::LineIgnition>(ign);
    h.i32(1);
    h.f64(l.x1);
    h.f64(l.y1);
    h.f64(l.x2);
    h.f64(l.y2);
    h.f64(l.w);
    h.f64(l.time);
  }
}

}  // namespace

std::uint64_t product_key(const serve::ScenarioSpec& base,
                          const PerturbationSpec& pert,
                          const SweepOptions& opt) {
  util::Fnv1a h;
  h.str("wfire.burn_probability.v1");
  h.i32(base.nx);
  h.i32(base.ny);
  h.f64(base.dx);
  h.f64(base.dy);
  h.f64(base.dt);
  h.i32(base.fuel_category);
  h.f64(base.wind_u);
  h.f64(base.wind_v);
  h.f64(base.wind_jitter);
  h.u64(base.seed);
  h.f64(base.fuel_moisture_scale);
  h.f64(base.burn_time_scale);
  h.u64(base.ignitions.size());
  for (const levelset::Ignition& ign : base.ignitions) hash_ignition(h, ign);
  h.i32(static_cast<int>(base.fire.scheme));
  h.b(base.fire.use_heun);
  h.i32(base.fire.reinit_interval);
  h.f64(base.fire.min_fuel_frac);
  h.f64(pert.wind_speed_sigma);
  h.f64(pert.wind_dir_sigma);
  h.f64(pert.moisture_sigma);
  h.f64(pert.burn_time_sigma);
  h.f64(pert.ignition_jitter);
  h.u64(pert.seed);
  h.i32(opt.members);
  h.f64(opt.horizon);
  return h.digest();
}

SweepDriver::SweepDriver(serve::ScenarioSpec base, PerturbationSpec pert,
                         SweepOptions opt)
    : base_(std::move(base)), pert_(pert), opt_(opt) {
  if (opt_.members < 1)
    throw std::invalid_argument("SweepDriver: members < 1");
  if (opt_.horizon <= 0)
    throw std::invalid_argument("SweepDriver: horizon <= 0");
}

BurnProbabilityGrid SweepDriver::run() {
  serve::ServerOptions sopt;
  sopt.threads = opt_.threads;
  if (opt_.inline_cell_steps >= 0)
    sopt.inline_cell_steps = opt_.inline_cell_steps;
  sopt.max_scenarios = opt_.members;
  serve::ScenarioServer server(sopt);

  BurnProbabilityAccumulator acc(base_.nx, base_.ny, base_.dx, base_.dy,
                                 opt_.members, opt_.horizon);

  // Sweep admission: every member's hook is installed before its first
  // request, so the reduction can never miss a completion.
  std::vector<serve::ScenarioId> ids;
  ids.reserve(static_cast<std::size_t>(opt_.members));
  for (int k = 0; k < opt_.members; ++k) {
    const serve::ScenarioId id = server.admit(perturb_member(base_, pert_, k));
    server.set_completion_hook(
        id, [&acc, k](serve::ScenarioId, const fire::FireState& st) {
          acc.add_member(k, st.tig);
        });
    ids.push_back(id);
  }
  for (const serve::ScenarioId id : ids)
    server.request_advance(id, opt_.horizon);
  server.wait_all();
  for (const serve::ScenarioId id : ids)
    if (server.status(id).failed)
      throw std::runtime_error("SweepDriver: member " + std::to_string(id) +
                               " failed: " + server.error(id));
  last_inline_ = server.total_inline();
  last_pooled_ = server.total_pooled();

  BurnProbabilityGrid grid = acc.finalize();
  grid.key = product_key(base_, pert_, opt_);
  return grid;
}

}  // namespace wfire::risk
