// The serving layer of the risk product: a bounded LRU cache of finished
// burn-probability grids keyed by product_key(). What a million users
// actually request is the same product for the same fire over and over —
// repeated fetches are served from the cached grid without re-simulation,
// and concurrent first requests for one product are deduplicated
// (single-flight: one sweep runs, every waiter shares its result).
//
// Ownership and threading contract:
//  - fetch() is safe from any number of threads. Products are handed out as
//    shared_ptr<const BurnProbabilityGrid>: immutable, and they outlive
//    eviction for as long as any client holds the pointer.
//  - The cache lock is never held while a sweep runs; only the map/LRU
//    bookkeeping is under it. A failing sweep propagates its exception to
//    the leader and every waiter, and leaves no cache entry behind.
//  - Capacity is in products (default 32, env override WFIRE_RISK_CACHE,
//    clamped to >= 1); least-recently-fetched products evict first.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "risk/sweep.h"

namespace wfire::risk {

class ProductCache {
 public:
  explicit ProductCache(int capacity = env_capacity());

  // The product for (base, pert, opt): served from cache when present,
  // computed by one SweepDriver run otherwise (concurrent misses for the
  // same key share that one run). Execution knobs in `opt` (threads,
  // inline threshold) do not participate in the key — the product is
  // bitwise-independent of them.
  [[nodiscard]] std::shared_ptr<const BurnProbabilityGrid> fetch(
      const serve::ScenarioSpec& base, const PerturbationSpec& pert,
      const SweepOptions& opt);

  [[nodiscard]] long hits() const;        // served from a finished grid
  [[nodiscard]] long misses() const;      // had to compute or join a compute
  [[nodiscard]] long sweeps_run() const;  // actual simulations (<= misses)
  [[nodiscard]] int size() const;
  [[nodiscard]] int capacity() const { return capacity_; }

  // WFIRE_RISK_CACHE, default 32, clamped to >= 1.
  [[nodiscard]] static int env_capacity();

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const BurnProbabilityGrid> grid;
  };
  using Product = std::shared_ptr<const BurnProbabilityGrid>;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently fetched
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::unordered_map<std::uint64_t, std::shared_future<Product>> inflight_;
  int capacity_;
  long hits_ = 0, misses_ = 0, sweeps_ = 0;
};

}  // namespace wfire::risk
