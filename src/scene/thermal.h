// Ground thermal history (paper Sec. 3.2): "the 2D fire front and cooling
// are estimated with a double exponential. The time constants are 75 seconds
// and 250 seconds and the peak temperature at the fire front is constrained
// to 1075 K."
//
// The surface temperature at time t after front arrival is
//
//   T(t) = T_amb + (T_peak - T_amb) * s(t) / s(t*),
//   s(t) = exp(-t / tau_cool) - exp(-t / tau_rise),
//
// which rises on the tau_rise scale, peaks at
// t* = ln(tau_cool/tau_rise) / (1/tau_rise - 1/tau_cool), and cools on the
// tau_cool scale — the double exponential of the paper with its peak pinned
// at T_peak.
#pragma once

#include "fire/model.h"
#include "util/array2d.h"

namespace wfire::scene {

struct GroundThermalParams {
  double tau_rise = 75.0;    // [s]
  double tau_cool = 250.0;   // [s]
  double T_peak = 1075.0;    // [K]
  double T_ambient = 300.0;  // [K]
};

class GroundThermalModel {
 public:
  explicit GroundThermalModel(GroundThermalParams p = {});

  // Temperature a time `age` after front arrival (age < 0 -> ambient).
  [[nodiscard]] double temperature(double age) const;

  // Time after arrival at which temperature peaks.
  [[nodiscard]] double peak_time() const { return t_peak_; }

  [[nodiscard]] const GroundThermalParams& params() const { return p_; }

  // Ground temperature map from the fire model's ignition-time field at
  // model time `t`.
  void temperature_map(const util::Array2D<double>& tig, double t,
                       util::Array2D<double>& T_out) const;

 private:
  GroundThermalParams p_;
  double t_peak_ = 0;
  double norm_ = 1;  // s(t_peak)
};

}  // namespace wfire::scene
