#include "coupling/flux_insertion.h"

#include "util/omp_compat.h"

#include <cmath>
#include <stdexcept>

namespace wfire::coupling {

FluxInserter::FluxInserter(const grid::Grid3D& g, FluxInsertionParams p)
    : g_(g), p_(p) {
  if (p_.decay_height <= 0)
    throw std::invalid_argument("FluxInserter: decay_height <= 0");
  // Normalized exponential column weights: sum w_k * dz = 1.
  w_.resize(static_cast<std::size_t>(g.nz));
  double sum = 0;
  for (int k = 0; k < g.nz; ++k) {
    w_[k] = std::exp(-g.zc(k) / p_.decay_height);
    sum += w_[k] * g.dz;
  }
  for (double& w : w_) w /= sum;
}

void FluxInserter::insert(const util::Array2D<double>& sensible,
                          const util::Array2D<double>& latent,
                          util::Array3D<double>& theta_src,
                          util::Array3D<double>& qv_src) const {
  if (sensible.nx() != g_.nx || sensible.ny() != g_.ny)
    throw std::invalid_argument("FluxInserter: flux map shape mismatch");
  if (!latent.same_shape(sensible))
    throw std::invalid_argument("FluxInserter: latent shape mismatch");
  if (theta_src.nx() != g_.nx || theta_src.ny() != g_.ny ||
      theta_src.nz() != g_.nz)
    theta_src = util::Array3D<double>(g_.nx, g_.ny, g_.nz, 0.0);
  if (!qv_src.same_shape(theta_src))
    qv_src = util::Array3D<double>(g_.nx, g_.ny, g_.nz, 0.0);

  const double inv_rhocp = 1.0 / (p_.rho * p_.cp);
  const double inv_rholv = 1.0 / (p_.rho * p_.Lv);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < g_.nz; ++k) {
    const double wk = w_[k];
    for (int j = 0; j < g_.ny; ++j)
      for (int i = 0; i < g_.nx; ++i) {
        theta_src(i, j, k) = sensible(i, j) * wk * inv_rhocp;
        qv_src(i, j, k) = latent(i, j) * wk * inv_rholv;
      }
  }
}

void FluxInserter::insert_batch(int stride, const double* sensible,
                                const double* latent, double* theta_src,
                                double* qv_src) const {
  const double inv_rhocp = 1.0 / (p_.rho * p_.cp);
  const double inv_rholv = 1.0 / (p_.rho * p_.Lv);
  const int nx = g_.nx, ny = g_.ny;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < g_.nz; ++k) {
    const double wk = w_[k];
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        const std::size_t col =
            (static_cast<std::size_t>(j) * nx + i) * stride;
        const std::size_t cell =
            ((static_cast<std::size_t>(k) * ny + j) * nx + i) * stride;
        const double* se = sensible + col;
        const double* la = latent + col;
        double* th = theta_src + cell;
        double* qv = qv_src + cell;
        WFIRE_PRAGMA_OMP(omp simd)
        for (int m = 0; m < stride; ++m) {
          th[m] = se[m] * wk * inv_rhocp;
          qv[m] = la[m] * wk * inv_rholv;
        }
      }
  }
}

void insert_single_cell(const grid::Grid3D& g, const FluxInsertionParams& p,
                        const util::Array2D<double>& sensible,
                        const util::Array2D<double>& latent,
                        util::Array3D<double>& theta_src,
                        util::Array3D<double>& qv_src) {
  if (theta_src.nx() != g.nx || theta_src.ny() != g.ny || theta_src.nz() != g.nz)
    theta_src = util::Array3D<double>(g.nx, g.ny, g.nz, 0.0);
  if (!qv_src.same_shape(theta_src))
    qv_src = util::Array3D<double>(g.nx, g.ny, g.nz, 0.0);
  theta_src.fill(0.0);
  qv_src.fill(0.0);
  // All energy deposited in the lowest cell: weight 1/dz.
  const double wk = 1.0 / g.dz;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      theta_src(i, j, 0) = sensible(i, j) * wk / (p.rho * p.cp);
      qv_src(i, j, 0) = latent(i, j) * wk / (p.rho * p.Lv);
    }
}

}  // namespace wfire::coupling
