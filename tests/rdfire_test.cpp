// Reaction-diffusion-convection fire model tests (the paper's ref [12]
// substrate): traveling combustion waves, fuel consumption, wind advection,
// parameter monotonicity, and stability guards.
#include <gtest/gtest.h>

#include <cmath>

#include "fire/reaction_diffusion.h"

using namespace wfire::fire;
using wfire::grid::Grid2D;

namespace {

Grid2D rd_grid() { return Grid2D(121, 41, 2.0, 2.0); }  // 240 x 80 m strip

RdFireModel ignited(const Grid2D& g, RdFireParams p = {}) {
  RdFireModel model(g, p);
  model.ignite(30.0, 40.0, 10.0);
  return model;
}

// Front speed from two position samples after the wave develops.
double front_speed(RdFireModel& model, double dt, double vx = 0.0) {
  const int warmup = static_cast<int>(20.0 / dt);
  for (int s = 0; s < warmup; ++s) model.step(dt, vx, 0.0);
  const double x0 = model.front_position_x();
  const double t0 = model.state().time;
  const int run = static_cast<int>(40.0 / dt);
  for (int s = 0; s < run; ++s) model.step(dt, vx, 0.0);
  const double x1 = model.front_position_x();
  return (x1 - x0) / (model.state().time - t0);
}

}  // namespace

TEST(RdFire, AmbientStateIsSteady) {
  const Grid2D g = rd_grid();
  RdFireModel model(g);
  const double dt = 0.9 * model.stable_dt();
  for (int s = 0; s < 50; ++s) model.step(dt, 1.0, 0.0);
  EXPECT_NEAR(model.max_temperature(), 300.0, 1e-9);
  EXPECT_NEAR(model.mean_fuel(), 1.0, 1e-12);
}

TEST(RdFire, ReactionRateIsArrheniusLike) {
  const Grid2D g = rd_grid();
  RdFireModel model(g);
  EXPECT_DOUBLE_EQ(model.reaction_rate(300.0), 0.0);  // at ambient
  EXPECT_DOUBLE_EQ(model.reaction_rate(250.0), 0.0);  // below ambient
  EXPECT_GT(model.reaction_rate(600.0), model.reaction_rate(400.0));
  EXPECT_LT(model.reaction_rate(600.0), 1.0);
}

TEST(RdFire, IgnitionLaunchesTravelingWave) {
  const Grid2D g = rd_grid();
  RdFireModel model = ignited(g);
  const double dt = 0.9 * model.stable_dt();
  const double speed = front_speed(model, dt);
  EXPECT_GT(speed, 0.05);  // the wave moves
  EXPECT_LT(speed, 5.0);   // at a physical fire pace
  // Combustion sustains itself: temperature stays far above ambient.
  EXPECT_GT(model.max_temperature(), 500.0);
}

TEST(RdFire, FuelConsumedBehindFront) {
  const Grid2D g = rd_grid();
  RdFireModel model = ignited(g);
  const double dt = 0.9 * model.stable_dt();
  for (int s = 0; s < static_cast<int>(60.0 / dt); ++s) model.step(dt, 0, 0);
  // Fuel at the ignition point is depleted; fuel far ahead is untouched.
  EXPECT_LT(model.state().beta(15, 20), 0.5);
  EXPECT_NEAR(model.state().beta(110, 20), 1.0, 1e-6);
  EXPECT_LT(model.mean_fuel(), 1.0);
}

TEST(RdFire, WindAdvectsTheFront) {
  const Grid2D g = rd_grid();
  RdFireModel calm = ignited(g);
  RdFireModel windy = ignited(g);
  const double dt = 0.45 * calm.stable_dt();
  const double s_calm = front_speed(calm, dt, 0.0);
  const double s_windy = front_speed(windy, dt, 0.5);
  EXPECT_GT(s_windy, s_calm + 0.1);
}

TEST(RdFire, StrongerReactionFasterWave) {
  const Grid2D g = rd_grid();
  RdFireParams weak, strong;
  weak.A = 120.0;
  strong.A = 260.0;
  RdFireModel mw = ignited(g, weak);
  RdFireModel ms = ignited(g, strong);
  const double dt = 0.9 * mw.stable_dt();
  EXPECT_GT(front_speed(ms, dt), front_speed(mw, dt));
}

TEST(RdFire, HigherActivationSlowerWave) {
  const Grid2D g = rd_grid();
  RdFireParams low, high;
  low.B = 200.0;
  high.B = 350.0;
  RdFireModel ml = ignited(g, low);
  RdFireModel mh = ignited(g, high);
  const double dt = 0.9 * ml.stable_dt();
  EXPECT_GT(front_speed(ml, dt), front_speed(mh, dt));
}

TEST(RdFire, CoolingExtinguishesWeakFires) {
  const Grid2D g = rd_grid();
  RdFireParams p;
  p.A = 20.0;   // too little heating
  p.C = 0.3;    // strong cooling
  RdFireModel model = ignited(g, p);
  const double dt = 0.9 * model.stable_dt();
  for (int s = 0; s < static_cast<int>(120.0 / dt); ++s) model.step(dt, 0, 0);
  EXPECT_LT(model.max_temperature(), 320.0);  // died out
  EXPECT_TRUE(std::isinf(model.front_position_x()));
}

TEST(RdFire, RejectsUnstableDt) {
  const Grid2D g = rd_grid();
  RdFireModel model(g);
  EXPECT_THROW(model.step(10.0 * model.stable_dt(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(model.step(-1.0, 0, 0), std::invalid_argument);
  EXPECT_THROW(RdFireModel(g, RdFireParams{.k = -1.0}),
               std::invalid_argument);
}

TEST(RdFire, FrontPositionTracksThreshold) {
  const Grid2D g = rd_grid();
  RdFireModel model = ignited(g);
  // Fresh ignition: front at the right edge of the hot disc.
  EXPECT_NEAR(model.front_position_x(), 40.0, 3.0);
}
