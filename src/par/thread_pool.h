// Fixed-size thread pool. The paper's parallel structure (Fig. 2) assigns
// ensemble members to subsets of processors; at laptop scale the same
// decomposition is expressed as member tasks on a pool. Stencil-level
// parallelism inside each member uses OpenMP instead (see DESIGN.md).
//
// The pool is also the execution substrate of the scenario server
// (serve/scenario_server): long-lived, with three priority classes so
// interactive work overtakes bulk work, cooperative cancellation of not-yet-
// started tasks, and an explicit two-mode shutdown (drain vs discard).
#pragma once

#include <array>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wfire::par {

// Scheduling class of a submitted task. Workers always pop the highest
// nonempty class, so kHigh tasks overtake queued kNormal/kLow work (they do
// not preempt tasks already running).
enum class Priority : int { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr int kPriorityLevels = 3;

class ThreadPool {
 public:
  // n <= 0 selects hardware_concurrency().
  explicit ThreadPool(int n = 0);
  ~ThreadPool();  // == shutdown(/*drain=*/true)

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    return submit(Priority::kNormal, std::forward<F>(f));
  }

  template <typename F>
  auto submit(Priority p, F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queues_[static_cast<std::size_t>(p)].emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Waits for *every* task — started or queued — before returning, then
  // rethrows the first exception encountered (tasks reference fn and the
  // caller's frame, so an early exit would leave live tasks with dangling
  // references).
  void parallel_for(int n, const std::function<void(int)>& fn);

  // Discards every queued-but-unstarted task; their futures fail with
  // std::future_error (broken_promise). Running tasks are unaffected and the
  // pool stays usable. Returns the number of tasks discarded.
  std::size_t cancel_pending();

  // Stops accepting work and joins the workers. drain=true (the destructor's
  // mode) runs everything already queued first; drain=false discards the
  // queue as cancel_pending() does. Idempotent; concurrent submits that lose
  // the race throw.
  void shutdown(bool drain = true);

  // Queued-but-unstarted task count across all priority classes (snapshot).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();
  std::size_t discard_queues_locked();

  std::vector<std::thread> workers_;
  std::array<std::deque<std::function<void()>>, kPriorityLevels> queues_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool joined_ = false;
};

}  // namespace wfire::par
