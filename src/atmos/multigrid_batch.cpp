#include "atmos/multigrid_batch.h"

#include "atmos/poisson_batch.h"
#include "util/omp_compat.h"

#include <algorithm>

namespace wfire::atmos {

namespace {
// Same coarsening rule as multigrid.cpp (kept private there).
bool can_coarsen(const grid::Grid3D& g) {
  return g.nx % 2 == 0 && g.ny % 2 == 0 && g.nz % 2 == 0 && g.nx >= 4 &&
         g.ny >= 4 && g.nz >= 4;
}

inline std::size_t cell_of(int i, int j, int k, int nx, int ny) {
  return (static_cast<std::size_t>(k) * ny + j) * nx + i;
}
}  // namespace

void mg_restrict_batch(const grid::Grid3D& coarse_g, int stride,
                       const double* fine, double* coarse) {
  const int nx = coarse_g.nx, ny = coarse_g.ny, nz = coarse_g.nz;
  const int fnx = 2 * nx, fny = 2 * ny;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        double* out = coarse + cell_of(i, j, k, nx, ny) * stride;
        for (int m = 0; m < stride; ++m) out[m] = 0.0;
        // Same 8-cell summation order as mg_restrict (a innermost).
        for (int c = 0; c < 2; ++c)
          for (int b = 0; b < 2; ++b)
            for (int a = 0; a < 2; ++a) {
              const double* f =
                  fine +
                  cell_of(2 * i + a, 2 * j + b, 2 * k + c, fnx, fny) * stride;
              WFIRE_PRAGMA_OMP(omp simd)
              for (int m = 0; m < stride; ++m) out[m] += f[m];
            }
        WFIRE_PRAGMA_OMP(omp simd)
        for (int m = 0; m < stride; ++m) out[m] = 0.125 * out[m];
      }
}

void mg_prolong_add_batch(const grid::Grid3D& fine_g, int stride,
                          const double* coarse, double* fine,
                          const double* freeze_mask) {
  const int nx = fine_g.nx, ny = fine_g.ny, nz = fine_g.nz;
  const int cnx = nx / 2, cny = ny / 2;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        double* f = fine + cell_of(i, j, k, nx, ny) * stride;
        const double* c =
            coarse + cell_of(i / 2, j / 2, k / 2, cnx, cny) * stride;
        if (freeze_mask) {
          WFIRE_PRAGMA_OMP(omp simd)
          for (int m = 0; m < stride; ++m) f[m] += freeze_mask[m] * c[m];
        } else {
          WFIRE_PRAGMA_OMP(omp simd)
          for (int m = 0; m < stride; ++m) f[m] += c[m];
        }
      }
}

MultigridBatch::MultigridBatch(const grid::Grid3D& fine, int members,
                               int stride, MultigridOptions opt)
    : opt_(opt), members_(members), stride_(stride) {
  grids_.push_back(fine);
  while (can_coarsen(grids_.back())) {
    const grid::Grid3D& g = grids_.back();
    grids_.emplace_back(g.nx / 2, g.ny / 2, g.nz / 2, g.dx * 2, g.dy * 2,
                        g.dz * 2);
  }
  for (const auto& g : grids_) {
    const std::size_t n =
        static_cast<std::size_t>(g.nx) * g.ny * g.nz * stride_;
    rhs_buf_.emplace_back(n, 0.0);
    phi_buf_.emplace_back(n, 0.0);
    res_buf_.emplace_back(n, 0.0);
  }
  mask_.assign(static_cast<std::size_t>(stride_), 0.0);
  max_r_.assign(static_cast<std::size_t>(stride_), 0.0);
}

void MultigridBatch::vcycle(std::size_t level, const double* rhs, double* phi,
                            const double* freeze_mask) {
  const grid::Grid3D& g = grids_[level];
  if (level + 1 == grids_.size()) {
    for (int it = 0; it < opt_.coarse_iters; ++it)
      rbgs_sweep_batch(g, stride_, rhs, phi, 1.2, freeze_mask);
    return;
  }
  for (int s = 0; s < opt_.pre_smooth; ++s)
    rbgs_sweep_batch(g, stride_, rhs, phi, opt_.omega, freeze_mask);

  residual_batch(g, stride_, phi, rhs, res_buf_[level].data(), max_r_.data());
  mg_restrict_batch(grids_[level + 1], stride_, res_buf_[level].data(),
                    rhs_buf_[level + 1].data());
  std::fill(phi_buf_[level + 1].begin(), phi_buf_[level + 1].end(), 0.0);
  // Coarse levels run unmasked: their buffers are fresh scratch and frozen
  // lanes' corrections are dropped by the masked prolongation below.
  vcycle(level + 1, rhs_buf_[level + 1].data(), phi_buf_[level + 1].data(),
         nullptr);
  mg_prolong_add_batch(g, stride_, phi_buf_[level + 1].data(), phi,
                       freeze_mask);

  for (int s = 0; s < opt_.post_smooth; ++s)
    rbgs_sweep_batch(g, stride_, rhs, phi, opt_.omega, freeze_mask);
}

void MultigridBatch::solve(const double* rhs, double* phi, SolveStats* stats) {
  const grid::Grid3D& g = grids_.front();
  for (int m = 0; m < members_; ++m) stats[m] = SolveStats{};
  // Padding lanes start frozen; their zero problem is already converged.
  for (int m = 0; m < stride_; ++m) mask_[m] = m < members_ ? 1.0 : 0.0;
  int remaining = members_;
  for (int cycle = 0; cycle < opt_.max_cycles && remaining > 0; ++cycle) {
    vcycle(0, rhs, phi, mask_.data());
    residual_batch(g, stride_, phi, rhs, res_buf_.front().data(),
                   max_r_.data());
    for (int m = 0; m < members_; ++m) {
      if (mask_[m] == 0.0) continue;
      stats[m].iterations = cycle + 1;
      stats[m].final_residual = max_r_[m];
      if (max_r_[m] < opt_.tol) {
        stats[m].converged = true;
        mask_[m] = 0.0;
        --remaining;
      }
    }
  }
  // remove_mean per lane, in the scalar solver's linear cell order.
  const std::size_t cells = static_cast<std::size_t>(g.nx) * g.ny * g.nz;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int m = 0; m < members_; ++m) {
    double mean = 0;
    for (std::size_t c = 0; c < cells; ++c) mean += phi[c * stride_ + m];
    mean /= static_cast<double>(cells);
    for (std::size_t c = 0; c < cells; ++c) phi[c * stride_ + m] -= mean;
  }
}

}  // namespace wfire::atmos
