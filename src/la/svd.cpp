#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/blas.h"

namespace wfire::la {

namespace {

// One-sided Jacobi on A (m x n, m >= n): orthogonalizes columns of A by
// plane rotations accumulated into V. On exit A = U * diag(sigma).
SvdResult svd_tall(Matrix A, int max_sweeps) {
  const int m = A.rows();
  const int n = A.cols();
  Matrix V = Matrix::identity(n);
  const double eps = 1e-15;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        double app = 0, aqq = 0, apq = 0;
        for (int i = 0; i < m; ++i) {
          app += A(i, p) * A(i, p);
          aqq += A(i, q) * A(i, q);
          apq += A(i, p) * A(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq)) continue;
        off = std::max(off, std::abs(apq) / std::sqrt(app * aqq + 1e-300));
        // Jacobi rotation zeroing the (p,q) entry of A^T A.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < m; ++i) {
          const double aip = A(i, p), aiq = A(i, q);
          A(i, p) = c * aip - s * aiq;
          A(i, q) = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = V(i, p), viq = V(i, q);
          V(i, p) = c * vip - s * viq;
          V(i, q) = s * vip + c * viq;
        }
      }
    }
    if (off < 1e-14) break;
  }

  // Column norms are the singular values; normalize to get U.
  SvdResult r{Matrix(m, n), Vector(static_cast<std::size_t>(n)), std::move(V)};
  std::vector<int> order(n);
  Vector sig(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    double s = 0;
    for (int i = 0; i < m; ++i) s += A(i, j) * A(i, j);
    sig[j] = std::sqrt(s);
  }
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return sig[a] > sig[b]; });
  Matrix Vs(n, n);
  for (int jj = 0; jj < n; ++jj) {
    const int j = order[jj];
    r.sigma[jj] = sig[j];
    const double inv = sig[j] > 0 ? 1.0 / sig[j] : 0.0;
    for (int i = 0; i < m; ++i) r.U(i, jj) = A(i, j) * inv;
    for (int i = 0; i < n; ++i) Vs(i, jj) = r.V(i, j);
  }
  r.V = std::move(Vs);
  return r;
}

}  // namespace

SvdResult svd(const Matrix& A, int max_sweeps) {
  if (A.rows() == 0 || A.cols() == 0)
    throw std::invalid_argument("svd: empty matrix");
  if (A.rows() >= A.cols()) return svd_tall(A, max_sweeps);
  // Wide matrix: factor the transpose and swap U <-> V.
  SvdResult t = svd_tall(A.transposed(), max_sweeps);
  return SvdResult{std::move(t.V), std::move(t.sigma), std::move(t.U)};
}

Vector svd_solve(const SvdResult& s, const Vector& b, double rcond) {
  if (static_cast<int>(b.size()) != s.U.rows())
    throw std::invalid_argument("svd_solve: size mismatch");
  const int r = static_cast<int>(s.sigma.size());
  const double cutoff = s.sigma.empty() ? 0.0 : rcond * s.sigma[0];
  Vector y(static_cast<std::size_t>(r), 0.0);
  for (int j = 0; j < r; ++j) {
    if (s.sigma[j] <= cutoff) continue;
    double uj_b = 0;
    for (int i = 0; i < s.U.rows(); ++i) uj_b += s.U(i, j) * b[i];
    y[j] = uj_b / s.sigma[j];
  }
  Vector x(static_cast<std::size_t>(s.V.rows()), 0.0);
  for (int j = 0; j < r; ++j)
    for (int i = 0; i < s.V.rows(); ++i) x[i] += s.V(i, j) * y[j];
  return x;
}

}  // namespace wfire::la
