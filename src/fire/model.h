// The surface fire model: level set propagation + ignition-time tracking +
// post-frontal fuel consumption + heat flux output. This is the "fire" half
// of the paper's coupled model and the model advanced by every ensemble
// member in the assimilation experiments.
//
// State (paper Sec. 3.3): the level set function psi and the ignition time
// tig, "both given as arrays of values associated with grid nodes" — exactly
// the two arrays assimilated by the (morphing) EnKF.
#pragma once

#include <limits>
#include <vector>

#include "fire/fuel.h"
#include "fire/spread.h"
#include "fire/terrain.h"
#include "levelset/fast_sweep.h"
#include "levelset/front.h"
#include "levelset/initialize.h"
#include "levelset/integrator.h"

namespace wfire::fire {

inline constexpr double kNotIgnited = std::numeric_limits<double>::infinity();

// The assimilable state.
struct FireState {
  util::Array2D<double> psi;  // level set function [m] (signed distance-ish)
  util::Array2D<double> tig;  // ignition time [s], +inf where unburned
  double time = 0;            // model time [s]
};

struct FireModelOptions {
  levelset::UpwindScheme scheme = levelset::UpwindScheme::kPaperRule;
  bool use_heun = true;          // paper default; false = Euler (ablation)
  int reinit_interval = 50;      // redistance psi every N steps (0 = never)
  double min_fuel_frac = 0.02;   // below this the cell no longer spreads fire
};

struct FireOutputs {
  util::Array2D<double> sensible_flux;  // [W/m^2] into the atmosphere
  util::Array2D<double> latent_flux;    // [W/m^2]
  double total_sensible_power = 0;      // domain integral [W]
  double total_latent_power = 0;        // [W]
  levelset::StepStats step;             // CFL diagnostics of the last step
};

class FireModel {
 public:
  FireModel(const grid::Grid2D& g, FuelMap fuel, util::Array2D<double> terrain,
            FireModelOptions opt = {});

  // Sets psi to the signed distance of the ignition union and clears tig.
  // Shapes with time > 0 ignite later: they are excluded from psi until
  // their time arrives (handled in step()).
  void ignite(const std::vector<levelset::Ignition>& ignitions);

  // Advances one step of size dt with the given node winds; returns fluxes.
  // Winds must be node fields on the fire grid [m/s].
  FireOutputs step(double dt, const util::Array2D<double>& wind_u,
                   const util::Array2D<double>& wind_v);

  // Same step, but writes the fluxes into `out`, reusing its arrays when
  // already shaped — the steady-state stepping path allocates nothing
  // (per-step flux allocations used to dominate member-advance profiles).
  void step_into(double dt, const util::Array2D<double>& wind_u,
                 const util::Array2D<double>& wind_v, FireOutputs& out);

  // Convenience: constant ambient wind.
  FireOutputs step_uniform_wind(double dt, double u, double v);
  void step_uniform_wind_into(double dt, double u, double v, FireOutputs& out);

  [[nodiscard]] const grid::Grid2D& grid() const { return grid_; }
  [[nodiscard]] const FireState& state() const { return state_; }
  [[nodiscard]] FireState& state() { return state_; }
  [[nodiscard]] const util::Array2D<double>& fuel_fraction() const {
    return fuel_frac_;
  }
  [[nodiscard]] const FuelMap& fuel() const { return fuel_; }
  [[nodiscard]] const util::Array2D<double>& terrain() const { return terrain_; }
  [[nodiscard]] const FireModelOptions& options() const { return opt_; }

  // Replaces the assimilable state (used by the EnKF update); recomputes the
  // fuel fraction from tig so fluxes stay consistent with the new state.
  void set_state(FireState s);

  // Diagnostics.
  [[nodiscard]] double burned_area() const;
  [[nodiscard]] double front_length() const;

  // Redistancing phase, exposed so a batched advance (core/ensemble_batch)
  // can stay in lockstep with the per-member path across load/store
  // round-trips.
  [[nodiscard]] int steps_since_reinit() const { return steps_since_reinit_; }
  void set_steps_since_reinit(int n) { steps_since_reinit_ = n; }
  // True while delayed ignitions are still queued (time > 0 shapes). The
  // batched path (core/ensemble_batch) carries the queue in-batch, so the
  // assimilation cycle no longer needs a reference fallback for it; the
  // accessors below are the load/store round-trip for that queue.
  [[nodiscard]] bool has_pending_ignitions() const { return !pending_.empty(); }
  [[nodiscard]] const std::vector<levelset::Ignition>& pending_ignitions()
      const {
    return pending_;
  }
  void set_pending_ignitions(std::vector<levelset::Ignition> p) {
    pending_ = std::move(p);
  }

 private:
  void refresh_fuel_fraction();
  void update_ignition_times(const util::Array2D<double>& psi_before,
                             double t_before, double dt);
  void apply_pending_ignitions();

  grid::Grid2D grid_;
  FuelMap fuel_;
  util::Array2D<double> terrain_, dzdx_, dzdy_;
  FireModelOptions opt_;
  FireState state_;
  util::Array2D<double> fuel_frac_;  // remaining fuel mass fraction in [0,1]
  std::vector<levelset::Ignition> pending_;  // delayed ignitions
  int steps_since_reinit_ = 0;
  // Scratch buffers reused across steps: the whole steady-state stepping
  // path (spread field, RK2 stage arrays, periodic redistancing, fluxes via
  // step_into) allocates nothing, which is what lets a serving process step
  // many long-lived scenarios without touching the heap.
  util::Array2D<double> speed_, uniform_u_, uniform_v_, psi_before_;
  SpreadScratch spread_scratch_;
  levelset::StepScratch step_scratch_;
  util::Array2D<double> reinit_scratch_;
};

}  // namespace wfire::fire
