// Multi-fire scenario server: the long-lived in-process simulation service
// the ROADMAP grows out of core/realtime + par/thread_pool. One process
// serves many *independent* fire scenarios concurrently:
//
//  - Admission control (the threshold strategy of the Spark wildfire-risk
//    platform, SNIPPETS.md #3): an advance request whose estimated cost in
//    cell-steps is at or below ServerOptions::inline_cell_steps is served
//    inline on the caller's thread; bigger requests queue to the pool.
//  - Per-scenario arenas: everything a scenario needs in steady state — the
//    fire model's stepping scratch, the flux output arrays, the request
//    ring, the checkpoint section buffers — is allocated at admit(), so the
//    serving path (request_advance/step/status) performs no heap allocation.
//  - Crash-recovery checkpoints: periodic (or on-demand) statefiles written
//    through obs::StateFile's atomic temp-file + fsync + rename, so a
//    scenario killed mid-checkpoint never leaves a truncated file; restore()
//    resumes a scenario bitwise-exactly (state, pending ignitions, step
//    counter, redistancing phase all round-trip).
//  - Request API: ignition and advance requests are accepted while a
//    scenario is running and batched through a fixed-capacity per-scenario
//    ring; queries (status) snapshot a running scenario between steps.
//
// Reproducibility contract: a scenario's trajectory is a pure function of
// its spec. Per-step wind gusts come from counter-based streams
// (util::Rng::stream(seed, step)), so N scenarios served concurrently on any
// pool width produce trajectories bitwise-identical to running each alone —
// decorrelated across seeds, reproducible within one.
//
// Ownership and threading contract:
//  - The server owns every scenario it admits for its whole lifetime; ids
//    are dense ints and never invalidated (there is no remove()). References
//    returned by state() stay valid until the server is destroyed but may
//    only be read while the scenario is idle (wait() first).
//  - Each scenario has one mutex; at most one thread (caller or pool worker)
//    advances a scenario at a time. Distinct scenarios never contend.
//  - Completion hooks (set_completion_hook) fire on the serving thread —
//    the caller's for inline jobs, a pool worker's for pooled ones — with
//    the scenario lock held, each time its request ring drains. A hook must
//    not call back into the server (the lock is held); it is the streaming
//    reduction point for fleet workloads (risk::SweepDriver folds finished
//    members into a burn-probability grid here). A throwing hook marks the
//    scenario failed, like a throwing advance.
//  - Allocation: everything a scenario needs in steady state is carved at
//    admit(); the serving path (request_advance/step/status) touches the
//    heap only through a user-supplied completion hook, never itself.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fire/model.h"
#include "levelset/initialize.h"
#include "obs/statefile.h"
#include "par/thread_pool.h"

namespace wfire::serve {

using ScenarioId = int;

// Everything that defines a scenario's trajectory. Kept deliberately flat so
// it round-trips through a checkpoint's numeric sections.
struct ScenarioSpec {
  int nx = 101, ny = 101;        // fire-mesh nodes
  double dx = 6.0, dy = 6.0;     // spacing [m] (paper: 6 m)
  double dt = 0.5;               // step [s]
  int fuel_category = 0;         // uniform fuel (fire::kFuelShortGrass...)
  double wind_u = 3.0, wind_v = 0.0;  // ambient wind [m/s]
  double wind_jitter = 0.0;      // per-step gust std [m/s], 0 = steady wind
  std::uint64_t seed = 0;        // gust stream seed (util::Rng::stream)
  // Monte Carlo fuel perturbations (risk::SweepDriver): the whole fuel
  // catalog's moisture M resp. mass-loss e-folding time tau is scaled at
  // admit(). Must be > 0; 1 = the catalog as published.
  double fuel_moisture_scale = 1.0;
  double burn_time_scale = 1.0;
  double realtime_speedup = 0;   // > 0: score advances against sim/speedup
  std::vector<levelset::Ignition> ignitions;  // applied at admit()
  fire::FireModelOptions fire;
};

struct ServerOptions {
  int threads = 0;               // pool width (<= 0: hardware concurrency)
  // Admission threshold in cell-steps (grid nodes x remaining steps): at or
  // below runs inline on the caller thread, above queues to the pool.
  // Env override: WFIRE_SERVE_INLINE.
  long inline_cell_steps = 250000;
  int max_scenarios = 4096;
  int request_capacity = 64;     // per-scenario request ring slots
  // OpenMP width inside pooled jobs. Scenario-level concurrency owns the
  // cores; 1 keeps P pooled scenarios from fanning into P x omp threads.
  int pooled_omp_threads = 1;
  std::string checkpoint_dir;    // empty: checkpointing off
  double checkpoint_interval = 0;  // sim seconds between periodic writes
};

// Allocation-free snapshot of one scenario (safe to call while it runs; the
// reader interleaves between steps).
struct ScenarioStatus {
  double sim_time = 0;
  long steps = 0;
  double burned_area = 0;        // [m^2]
  double wall_seconds = 0;       // compute time spent serving this scenario
  long inline_served = 0;        // advance requests served on caller threads
  long pooled_served = 0;        // advance requests served by the pool
  long checkpoints_written = 0;
  long deadlines_met = 0;        // advances within sim/speedup wall budget
  long deadlines_missed = 0;     // (realtime_speedup > 0 only)
  int queued_requests = 0;
  bool running = false;          // a worker currently owns the model
  bool failed = false;           // a pooled job threw; see status text below
};

class ScenarioServer {
 public:
  explicit ScenarioServer(ServerOptions opt = {});
  ~ScenarioServer();  // == shutdown(): graceful, drains in-flight work

  ScenarioServer(const ScenarioServer&) = delete;
  ScenarioServer& operator=(const ScenarioServer&) = delete;

  // Creates a scenario (allocating all of its steady-state arenas) and
  // applies the spec's ignitions. Throws when at max_scenarios capacity.
  ScenarioId admit(const ScenarioSpec& spec);

  // Recreates a scenario from a checkpoint written by this server. The spec
  // is stored in the file; the resumed trajectory is bitwise-identical to
  // one that was never interrupted.
  ScenarioId restore(const std::string& checkpoint_path);

  // Requests an advance to absolute sim time `until`. Returns true when the
  // request was served inline on this thread (admission control), false when
  // it was queued (to the pool, or behind an already-running job). Throws if
  // the scenario's request ring is full.
  bool request_advance(ScenarioId id, double until);

  // Queues an ignition; it lights at its own ignition time once the
  // scenario's clock reaches it. Deterministic (solo-equivalent) whenever
  // the request is enqueued before the scenario reaches that time.
  void request_ignite(ScenarioId id, const levelset::Ignition& ign);

  // Called each time the scenario's request ring drains (it is about to go
  // idle), on the serving thread, with the scenario lock held and the state
  // at its post-advance value. See the threading contract above: the hook
  // must not call back into the server; a throwing hook fails the scenario.
  // Replaces any previously set hook; an empty function clears it.
  using CompletionHook = std::function<void(ScenarioId, const fire::FireState&)>;
  void set_completion_hook(ScenarioId id, CompletionHook hook);

  // Blocks until the scenario (resp. every scenario) is idle with an empty
  // request ring.
  void wait(ScenarioId id);
  void wait_all();

  [[nodiscard]] ScenarioStatus status(ScenarioId id) const;
  // Direct read of the scenario's state arrays (bitwise comparisons,
  // snapshotting). Call only while the scenario is idle — wait() first.
  [[nodiscard]] const fire::FireState& state(ScenarioId id) const;
  // Diagnostics that walk the front (allocates; not on the serving path).
  [[nodiscard]] double front_length(ScenarioId id) const;
  [[nodiscard]] std::string error(ScenarioId id) const;

  // Synchronous atomic checkpoint of one scenario (requires checkpoint_dir).
  void checkpoint_now(ScenarioId id);
  [[nodiscard]] std::string checkpoint_path(ScenarioId id) const;

  // Stops accepting requests, drains everything queued, and (when a
  // checkpoint_dir is configured) writes a final checkpoint per scenario.
  // Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] int scenarios() const;
  [[nodiscard]] long total_inline() const;
  [[nodiscard]] long total_pooled() const;
  [[nodiscard]] const ServerOptions& options() const { return opt_; }

 private:
  struct Request {
    enum class Kind { kAdvance, kIgnite };
    Kind kind = Kind::kAdvance;
    double until = 0;
    levelset::Ignition ignition;
  };

  struct Scenario {
    ScenarioId id = -1;
    ScenarioSpec spec;
    grid::Grid2D grid;
    std::unique_ptr<fire::FireModel> model;
    fire::FireOutputs out;             // reused flux arrays
    long steps = 0;                    // lifetime step counter (gust streams)
    double wall_seconds = 0;
    double next_checkpoint = 0;
    long inline_served = 0, pooled_served = 0, checkpoints = 0;
    long deadlines_met = 0, deadlines_missed = 0;
    std::string ckpt_path;             // fixed target; rename commits to it
    obs::Sections ckpt_sections;       // preallocated section buffers
    std::string error;                 // first pooled-job failure
    CompletionHook on_complete;        // fires when the ring drains
    // Fixed-capacity FIFO request ring (no allocation on enqueue/dequeue).
    std::vector<Request> ring;
    std::size_t ring_head = 0, ring_count = 0;
    bool running = false;
    mutable std::mutex mu;
    std::condition_variable idle_cv;
  };

  Scenario& at(ScenarioId id) const;
  void run_scenario(Scenario& s, bool pooled);
  void drain_requests(Scenario& s, std::unique_lock<std::mutex>& lock);
  void write_checkpoint_locked(Scenario& s);
  [[nodiscard]] long estimate_cell_steps(const Scenario& s,
                                         double until) const;

  ServerOptions opt_;
  par::ThreadPool pool_;
  mutable std::mutex scenarios_mu_;  // guards the vector, not the scenarios
  std::vector<std::unique_ptr<Scenario>> scenarios_;
  std::atomic<bool> accepting_{true};
};

// Checkpoint files in `dir` (*.wfst), skipping — and unlinking — stale
// StateFile temp files left by a crash mid-write. Sorted by name.
[[nodiscard]] std::vector<std::string> list_checkpoints(
    const std::string& dir);

}  // namespace wfire::serve
