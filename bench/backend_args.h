// Shared mapping between a Google-Benchmark integer argument and the LA
// kernel backend it selects, so every bench encodes backends the same way
// (0 = blocked, 1 = reference) and labels rows consistently.
#pragma once

#include <cstdint>

#include "la/backend.h"

namespace wfire::bench {

inline la::Backend arg_backend(std::int64_t v) {
  return v == 0 ? la::Backend::kBlocked : la::Backend::kReference;
}

inline const char* backend_name(std::int64_t v) {
  return v == 0 ? "blocked" : "reference";
}

}  // namespace wfire::bench
