// The paper's Sec. 3.1 weather-station data path: stations report location,
// timestamp, temperature, wind and humidity; the operator locates the
// containing cell, samples the model biquadratically, checks whether a
// fireline is nearby, and nudges the model temperature toward the report.
//
// Run:  ./weather_station_demo [stations=5] [minutes=5]
#include <cstdio>

#include "fire/model.h"
#include "obs/weather_station.h"
#include "scene/thermal.h"
#include "util/config.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int stations = cfg.get_int("stations", 5);
  const double minutes = cfg.get_double("minutes", 5.0);

  // A burning fire providing the "model" fields.
  const grid::Grid2D grid(101, 101, 6.0, 6.0);
  fire::FireModel model(grid,
                        fire::uniform_fuel(grid.nx, grid.ny,
                                           fire::kFuelShortGrass),
                        fire::terrain_flat(grid));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{300.0, 300.0, 30.0, 0.0}}});
  const int steps = static_cast<int>(minutes * 60.0 / 0.5);
  for (int s = 0; s < steps; ++s) model.step_uniform_wind(0.5, 3.0, 0.0);

  // Model fields the stations observe.
  scene::GroundThermalModel thermal;
  util::Array2D<double> temperature;
  thermal.temperature_map(model.state().tig, model.state().time, temperature);
  util::Array2D<double> wind_u(grid.nx, grid.ny, 3.0);
  util::Array2D<double> wind_v(grid.nx, grid.ny, 0.0);
  util::Array2D<double> humidity(grid.nx, grid.ny, 0.35);

  obs::WeatherStationOperator op(grid);
  util::Rng rng(42);

  std::printf("%10s %10s %10s %12s %12s %8s\n", "x[m]", "y[m]", "obs_T[K]",
              "model_T[K]", "innov[K]", "fire?");
  for (int s = 0; s < stations; ++s) {
    obs::StationReport rep;
    rep.x = rng.uniform(30.0, 570.0);
    rep.y = rng.uniform(30.0, 570.0);
    rep.time = model.state().time;
    rep.wind_u = 3.2;
    rep.wind_v = 0.1;
    rep.humidity = 0.33;
    // Station thermometer: truth-ish reading with sensor noise.
    const obs::StationComparison probe =
        op.compare(rep, temperature, wind_u, wind_v, humidity,
                   model.state().psi);
    rep.temperature = probe.model_temperature + rng.normal(0.0, 2.0) + 5.0;

    const obs::StationComparison cmp = op.compare(
        rep, temperature, wind_u, wind_v, humidity, model.state().psi);
    std::printf("%10.1f %10.1f %10.1f %12.1f %12.1f %8s\n", rep.x, rep.y,
                rep.temperature, cmp.model_temperature, cmp.d_temperature,
                cmp.fireline_nearby ? "yes" : "no");

    // The paper's current data path: "the state vector is updated for the
    // temperature and returned for further processing".
    op.nudge_temperature(rep, cmp, 0.5, temperature);
    const obs::StationComparison after = op.compare(
        rep, temperature, wind_u, wind_v, humidity, model.state().psi);
    std::printf("%10s %10s %10s %12.1f %12.1f   (after nudge)\n", "", "", "",
                after.model_temperature, after.d_temperature);
  }

  // Machine-readable summary for the golden-value smoke check.
  std::printf("SMOKE burned_area_ha=%.6f\n", model.burned_area() / 1e4);
  std::printf("SMOKE front_length_m=%.6f\n", model.front_length());
  return 0;
}
