// Pressure Poisson problem for the anelastic projection:
//   Laplacian(phi) = rhs   on a cell-centered grid,
// periodic in x and y, homogeneous Neumann in z (w is pinned at bottom/top).
// The operator has a constant null space; solvers work in the zero-mean
// subspace. This header defines the operator and a red-black SOR solver;
// multigrid.h builds a V-cycle on top of the same operator.
#pragma once

#include "grid/grid3d.h"
#include "util/array3d.h"

namespace wfire::atmos {

using Field3 = util::Array3D<double>;

// out = Laplacian(phi) with the BCs above.
void apply_laplacian(const grid::Grid3D& g, const Field3& phi, Field3& out);

// r = rhs - Laplacian(phi); returns max-norm of r.
double residual(const grid::Grid3D& g, const Field3& phi, const Field3& rhs,
                Field3& r);

// Subtracts the mean so the field lies in the operator's range/complement.
void remove_mean(Field3& f);

struct SorOptions {
  double omega = 1.7;   // over-relaxation factor
  double tol = 1e-8;    // max-norm residual target (absolute)
  int max_iters = 5000;
};

struct SolveStats {
  int iterations = 0;
  double final_residual = 0;
  bool converged = false;
};

// Red-black SOR. phi is both the initial guess and the solution.
SolveStats solve_sor(const grid::Grid3D& g, const Field3& rhs, Field3& phi,
                     const SorOptions& opt = {});

// One red-black Gauss-Seidel sweep with relaxation omega (multigrid
// smoother; exposed for tests).
void rbgs_sweep(const grid::Grid3D& g, const Field3& rhs, Field3& phi,
                double omega);

}  // namespace wfire::atmos
