// Ablation (Sec. 2.2 claim): "The explicit Euler method systematically
// overestimates psi and thus slows down fire propagation or even stops it
// altogether while Heun's method behaves reasonably well."
//
// The harness runs the full fire model (where the spread rate feeds back on
// psi through the front normals and fuel depletion) with both integrators
// across time steps and prints the burned areas. Expected shape: Euler
// under-burns, increasingly with dt, while Heun stays consistent across dt;
// at an aggressive dt the Euler fire falls far behind.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fire/model.h"

using namespace wfire;

namespace {

constexpr int kGridN = 121;
constexpr double kWind = 8.0;
constexpr double kDuration = 240.0;

double burned_after_run(bool use_heun, double dt,
                        levelset::UpwindScheme scheme =
                            levelset::UpwindScheme::kPaperRule) {
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  fire::FireModelOptions opt;
  opt.use_heun = use_heun;
  opt.scheme = scheme;
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g), opt);
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{180.0, 360.0, 25.0, 0.0}}});
  const int steps = static_cast<int>(kDuration / dt);
  for (int s = 0; s < steps; ++s) model.step_uniform_wind(dt, kWind, 0.0);
  return model.burned_area();
}

void print_integrator_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Ablation: Euler vs Heun (Sec. 2.2 conservation claim) "
              "===\n");
  std::printf("wind %.0f m/s, %.0f s simulated, grass fuel\n", kWind,
              kDuration);
  std::printf("%8s %14s %14s %14s\n", "dt[s]", "euler[m2]", "heun[m2]",
              "deficit[%]");
  bool euler_under = true;
  // Sweep within the CFL-stable regime (Smax dt / h < ~0.8); at the
  // stability edge both integrators degrade and the comparison is moot.
  for (const double dt : {0.25, 0.5, 1.0, 1.5}) {
    const double ae = burned_after_run(false, dt);
    const double ah = burned_after_run(true, dt);
    std::printf("%8.2f %14.0f %14.0f %14.2f\n", dt, ae, ah,
                100.0 * (ah - ae) / ah);
    if (ae > ah) euler_under = false;
  }
  std::printf("paper shape check: Euler under-burns at every stable dt "
              "(%s)\n\n",
              euler_under ? "REPRODUCED" : "NOT reproduced");
}

}  // namespace

static void BM_Integrator_HeunStep(benchmark::State& state) {
  print_integrator_table();
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{180.0, 360.0, 25.0, 0.0}}});
  for (auto _ : state) {
    const fire::FireOutputs out = model.step_uniform_wind(0.5, kWind, 0.0);
    benchmark::DoNotOptimize(out.total_sensible_power);
  }
}
BENCHMARK(BM_Integrator_HeunStep)->Unit(benchmark::kMillisecond);

static void BM_Integrator_EulerStep(benchmark::State& state) {
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  fire::FireModelOptions opt;
  opt.use_heun = false;
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g), opt);
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{180.0, 360.0, 25.0, 0.0}}});
  for (auto _ : state) {
    const fire::FireOutputs out = model.step_uniform_wind(0.5, kWind, 0.0);
    benchmark::DoNotOptimize(out.total_sensible_power);
  }
}
BENCHMARK(BM_Integrator_EulerStep)->Unit(benchmark::kMillisecond);

// Upwind scheme comparison (paper rule vs classical Godunov): same physics,
// nearly identical results, similar cost.
static void BM_Integrator_SchemeComparison(benchmark::State& state) {
  const bool paper_rule = state.range(0) != 0;
  const auto scheme = paper_rule ? levelset::UpwindScheme::kPaperRule
                                 : levelset::UpwindScheme::kStandardGodunov;
  double area = 0;
  for (auto _ : state) {
    area = burned_after_run(true, 1.0, scheme);
    benchmark::DoNotOptimize(area);
  }
  state.counters["burned_m2"] = area;
}
BENCHMARK(BM_Integrator_SchemeComparison)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(0)
    ->Iterations(1);

BENCHMARK_MAIN();
