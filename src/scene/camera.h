// Airborne frame camera (the paper's scenes are rendered "as it would be
// observed with RIT's WASP airborne infrared camera system flying about
// 3000 m above ground"). Pinhole geometry: the camera hovers at `altitude`
// above the look-at point and images a square ground footprint with `npx`
// pixels of ground sample distance `gsd`.
#pragma once

#include <cmath>
#include <stdexcept>

namespace wfire::scene {

struct Ray {
  // Origin and normalized direction in world coordinates (z up, ground z=0).
  double ox, oy, oz;
  double dx, dy, dz;
};

struct Camera {
  double look_x = 0, look_y = 0;  // ground point under the camera [m]
  double altitude = 3000.0;       // height above ground [m]
  int npx = 256, npy = 256;       // image size [pixels]
  double gsd = 4.0;               // ground sample distance at nadir [m]

  // Ray through the center of pixel (i, j); pixel (0,0) is the lower-left.
  [[nodiscard]] Ray pixel_ray(int i, int j) const {
    if (i < 0 || i >= npx || j < 0 || j >= npy)
      throw std::out_of_range("Camera::pixel_ray: pixel out of range");
    const double gx = look_x + (i - 0.5 * (npx - 1)) * gsd;
    const double gy = look_y + (j - 0.5 * (npy - 1)) * gsd;
    const double vx = gx - look_x, vy = gy - look_y, vz = -altitude;
    const double norm = std::sqrt(vx * vx + vy * vy + vz * vz);
    return Ray{look_x, look_y, altitude, vx / norm, vy / norm, vz / norm};
  }

  // Ground footprint area of one pixel at nadir [m^2].
  [[nodiscard]] double pixel_area() const { return gsd * gsd; }
};

}  // namespace wfire::scene
