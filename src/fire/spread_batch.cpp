#include "fire/spread_batch.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::fire {

SpreadTables SpreadTables::build(const FuelMap& fuel) {
  const std::size_t n = fuel.index.size();
  SpreadTables t;
  t.R0.resize(n);
  t.a.resize(n);
  t.b.resize(n);
  t.d.resize(n);
  t.Smax.resize(n);
  t.tau.resize(n);
  t.w0.resize(n);
  t.h.resize(n);
  t.latent_fraction.resize(n);
  t.burnable.resize(n);
  const int nx = fuel.index.nx(), ny = fuel.index.ny();
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const std::size_t c = static_cast<std::size_t>(j) * nx + i;
      const FuelCategory* cat = fuel.at(i, j);
      if (cat == nullptr) {
        t.burnable[c] = 0;
        t.R0[c] = t.a[c] = t.b[c] = t.d[c] = t.Smax[c] = 0.0;
        t.w0[c] = t.h[c] = t.latent_fraction[c] = 0.0;
        t.tau[c] = 1.0;
        continue;
      }
      t.burnable[c] = 1;
      t.R0[c] = cat->R0;
      t.a[c] = cat->a;
      t.b[c] = cat->b;
      t.d[c] = cat->d;
      t.Smax[c] = cat->Smax;
      t.tau[c] = cat->tau;
      t.w0[c] = cat->w0;
      t.h[c] = cat->h;
      t.latent_fraction[c] = cat->latent_fraction;
    }
  return t;
}

namespace {

// Shared cells x members sweep; kFieldWind selects whether wind_u/wind_v are
// member rows (length stride) or full SoA fields (cell * stride + member).
template <bool kFieldWind>
double spread_field_batch_impl(const grid::Grid2D& g,
                               const levelset::BatchLayout& lay,
                               const double* psi, const double* fuel_frac,
                               const double* wind_u, const double* wind_v,
                               const SpreadTables& tables,
                               const util::Array2D<double>& dzdx,
                               const util::Array2D<double>& dzdy,
                               double min_fuel_frac, const int* band,
                               int nband, double* speed) {
  if (tables.R0.size() != lay.cells())
    throw std::invalid_argument("spread_field_batch: tables/layout mismatch");
  const int nx = lay.nx, ny = lay.ny, stride = lay.stride;
  const double ihx = 0.5 / g.dx, ihy = 0.5 / g.dy;
  double smax_band = 0.0;

WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(max : smax_band))
  for (int bi = 0; bi < nband; ++bi) {
    const int cell = band[bi];
    const int i = cell % nx;
    const int j = cell / nx;
    double* out = speed + static_cast<std::size_t>(bi) * stride;
    if (!tables.burnable[cell]) {
      for (int k = 0; k < stride; ++k) out[k] = 0.0;
      continue;
    }
    const int xl = i > 0 ? cell - 1 : cell;
    const int xr = i < nx - 1 ? cell + 1 : cell;
    const int yl = j > 0 ? cell - nx : cell;
    const int yr = j < ny - 1 ? cell + nx : cell;
    const double* pxl = psi + static_cast<std::size_t>(xl) * stride;
    const double* pxr = psi + static_cast<std::size_t>(xr) * stride;
    const double* pyl = psi + static_cast<std::size_t>(yl) * stride;
    const double* pyr = psi + static_cast<std::size_t>(yr) * stride;
    const double* ff = fuel_frac + static_cast<std::size_t>(cell) * stride;
    const double* wu =
        kFieldWind ? wind_u + static_cast<std::size_t>(cell) * stride : wind_u;
    const double* wv =
        kFieldWind ? wind_v + static_cast<std::size_t>(cell) * stride : wind_v;
    const double R0 = tables.R0[cell], a = tables.a[cell], b = tables.b[cell],
                 d = tables.d[cell], Smax = tables.Smax[cell];
    const double zx = dzdx(i, j), zy = dzdy(i, j);
    double smax_cell = 0.0;
    for (int k = 0; k < stride; ++k) {
      if (ff[k] <= min_fuel_frac) {
        out[k] = 0.0;
        continue;
      }
      // Central-difference normal, exactly levelset::normals arithmetic.
      const double gx = (pxr[k] - pxl[k]) * ihx;
      const double gy = (pyr[k] - pyl[k]) * ihy;
      const double mag = std::hypot(gx, gy);
      double nxv = 0.0, nyv = 0.0;
      if (mag > 1e-12) {
        nxv = gx / mag;
        nyv = gy / mag;
      }
      const double vn = wu[k] * nxv + wv[k] * nyv;
      const double wind_term = vn > 0 ? a * std::pow(vn, b) : 0.0;
      const double slope_n = zx * nxv + zy * nyv;
      const double s = std::clamp(R0 + wind_term + d * slope_n, 0.0, Smax);
      out[k] = s;
      smax_cell = std::max(smax_cell, s);
    }
    smax_band = std::max(smax_band, smax_cell);
  }
  (void)ny;
  return smax_band;
}

}  // namespace

double spread_field_batch(const grid::Grid2D& g,
                          const levelset::BatchLayout& lay, const double* psi,
                          const double* fuel_frac, const double* wind_u,
                          const double* wind_v, const SpreadTables& tables,
                          const util::Array2D<double>& dzdx,
                          const util::Array2D<double>& dzdy,
                          double min_fuel_frac, const int* band, int nband,
                          double* speed) {
  return spread_field_batch_impl<false>(g, lay, psi, fuel_frac, wind_u,
                                        wind_v, tables, dzdx, dzdy,
                                        min_fuel_frac, band, nband, speed);
}

double spread_field_batch_field_wind(
    const grid::Grid2D& g, const levelset::BatchLayout& lay, const double* psi,
    const double* fuel_frac, const double* wind_u, const double* wind_v,
    const SpreadTables& tables, const util::Array2D<double>& dzdx,
    const util::Array2D<double>& dzdy, double min_fuel_frac, const int* band,
    int nband, double* speed) {
  return spread_field_batch_impl<true>(g, lay, psi, fuel_frac, wind_u, wind_v,
                                       tables, dzdx, dzdy, min_fuel_frac, band,
                                       nband, speed);
}

}  // namespace wfire::fire
