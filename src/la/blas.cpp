#include "la/blas.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::la {

void axpy(double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double nrm2(const Vector& x) { return std::sqrt(dot(x, x)); }

void scal(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y) {
  if (static_cast<int>(x.size()) != A.cols() ||
      static_cast<int>(y.size()) != A.rows())
    throw std::invalid_argument("gemv: size mismatch");
  for (double& v : y) v *= beta;
  // Column-major: accumulate column contributions for unit-stride access.
  for (int j = 0; j < A.cols(); ++j) {
    const double xj = alpha * x[j];
    const auto col = A.col(j);
    for (int i = 0; i < A.rows(); ++i) y[i] += col[i] * xj;
  }
}

void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y) {
  if (static_cast<int>(x.size()) != A.rows() ||
      static_cast<int>(y.size()) != A.cols())
    throw std::invalid_argument("gemv_t: size mismatch");
  for (int j = 0; j < A.cols(); ++j) {
    const auto col = A.col(j);
    double s = 0;
    for (int i = 0; i < A.rows(); ++i) s += col[i] * x[i];
    y[j] = beta * y[j] + alpha * s;
  }
}

namespace {
// Element accessor honoring the transpose flag.
inline double at(const Matrix& M, bool trans, int i, int j) {
  return trans ? M(j, i) : M(i, j);
}
}  // namespace

void gemm(bool transA, bool transB, double alpha, const Matrix& A,
          const Matrix& B, double beta, Matrix& C) {
  const int m = transA ? A.cols() : A.rows();
  const int k = transA ? A.rows() : A.cols();
  const int kb = transB ? B.cols() : B.rows();
  const int n = transB ? B.rows() : B.cols();
  if (k != kb || C.rows() != m || C.cols() != n)
    throw std::invalid_argument("gemm: size mismatch");

  constexpr int kBlock = 64;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j0 = 0; j0 < n; j0 += kBlock) {
    const int j1 = std::min(j0 + kBlock, n);
    for (int i0 = 0; i0 < m; i0 += kBlock) {
      const int i1 = std::min(i0 + kBlock, m);
      for (int j = j0; j < j1; ++j)
        for (int i = i0; i < i1; ++i) C(i, j) *= beta;
      for (int p0 = 0; p0 < k; p0 += kBlock) {
        const int p1 = std::min(p0 + kBlock, k);
        for (int j = j0; j < j1; ++j) {
          for (int p = p0; p < p1; ++p) {
            const double bpj = alpha * at(B, transB, p, j);
            if (bpj == 0.0) continue;
            for (int i = i0; i < i1; ++i) C(i, j) += at(A, transA, i, p) * bpj;
          }
        }
      }
    }
  }
}

Matrix matmul(const Matrix& A, const Matrix& B, bool transA, bool transB) {
  const int m = transA ? A.cols() : A.rows();
  const int n = transB ? B.rows() : B.cols();
  Matrix C(m, n, 0.0);
  gemm(transA, transB, 1.0, A, B, 0.0, C);
  return C;
}

double frobenius_norm(const Matrix& A) {
  double s = 0;
  for (int j = 0; j < A.cols(); ++j)
    for (int i = 0; i < A.rows(); ++i) s += A(i, j) * A(i, j);
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& A, const Matrix& B) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    throw std::invalid_argument("max_abs_diff: size mismatch");
  double m = 0;
  for (int j = 0; j < A.cols(); ++j)
    for (int i = 0; i < A.rows(); ++i)
      m = std::max(m, std::abs(A(i, j) - B(i, j)));
  return m;
}

}  // namespace wfire::la
