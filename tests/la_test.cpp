// Linear algebra tests: BLAS kernels, Cholesky, QR least squares, SVD and
// symmetric eigensolver, including property-style sweeps on random matrices
// of varying shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/eigen_sym.h"
#include "la/matrix.h"
#include "la/qr.h"
#include "la/svd.h"
#include "util/rng.h"

using namespace wfire::la;
using wfire::util::Rng;

namespace {

Matrix random_spd(int n, Rng& rng) {
  const Matrix A = Matrix::random_normal(n, n, rng);
  Matrix S = matmul(A, A, false, true);
  for (int i = 0; i < n; ++i) S(i, i) += n;  // well-conditioned
  return S;
}

}  // namespace

TEST(Blas, DotAxpyNorm) {
  Vector x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(nrm2(Vector{3, 4}), 5.0);
  EXPECT_THROW((void)dot(x, Vector{1.0}), std::invalid_argument);
}

TEST(Blas, GemvMatchesManual) {
  Matrix A(2, 3);
  A(0, 0) = 1; A(0, 1) = 2; A(0, 2) = 3;
  A(1, 0) = 4; A(1, 1) = 5; A(1, 2) = 6;
  Vector x{1, 1, 1}, y{0, 0};
  gemv(1.0, A, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vector z{0, 0, 0};
  gemv_t(1.0, A, Vector{1, 1}, 0.0, z);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Blas, GemmIdentity) {
  Rng rng(1);
  const Matrix A = Matrix::random_normal(7, 5, rng);
  const Matrix I = Matrix::identity(5);
  const Matrix B = matmul(A, I);
  EXPECT_LT(max_abs_diff(A, B), 1e-14);
}

TEST(Blas, GemmTransposeVariantsAgree) {
  Rng rng(2);
  const Matrix A = Matrix::random_normal(6, 4, rng);
  const Matrix B = Matrix::random_normal(4, 3, rng);
  const Matrix C1 = matmul(A, B);
  const Matrix C2 = matmul(A.transposed(), B, true, false);
  EXPECT_LT(max_abs_diff(C1, C2), 1e-12);
  const Matrix C3 = matmul(A, B.transposed(), false, true);
  EXPECT_LT(max_abs_diff(C1, C3), 1e-12);
}

TEST(Blas, GemmAccumulatesWithBeta) {
  Matrix A = Matrix::identity(3);
  Matrix C(3, 3, 1.0);
  gemm(false, false, 2.0, A, A, 3.0, C);
  EXPECT_DOUBLE_EQ(C(0, 0), 5.0);   // 3*1 + 2*1
  EXPECT_DOUBLE_EQ(C(0, 1), 3.0);   // 3*1 + 0
}

class CholeskyParam : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyParam, FactorReconstructsAndSolves) {
  Rng rng(GetParam());
  const int n = GetParam();
  const Matrix S = random_spd(n, rng);
  const CholeskyResult f = cholesky(S);
  EXPECT_EQ(f.jitter_tries, 0);
  const Matrix R = matmul(f.L, f.L, false, true);
  EXPECT_LT(max_abs_diff(S, R), 1e-9 * n);

  Vector x_true(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x_true[i] = std::sin(i + 1.0);
  Vector b(static_cast<std::size_t>(n), 0.0);
  gemv(1.0, S, x_true, 0.0, b);
  cholesky_solve(f.L, b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyParam,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60));

TEST(Cholesky, JitterRecoversSemidefinite) {
  // Rank-1 matrix: positive semidefinite, needs a jitter boost.
  Matrix S(3, 3);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 3; ++i) S(i, j) = (i + 1.0) * (j + 1.0);
  const CholeskyResult f = cholesky(S);
  EXPECT_GT(f.jitter_tries, 0);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  Matrix S = Matrix::identity(3);
  S(2, 2) = -5.0;
  EXPECT_THROW(cholesky(S, 1), std::runtime_error);
}

TEST(Cholesky, LogDetMatches) {
  Matrix S = Matrix::identity(3);
  S(0, 0) = 2.0;
  S(1, 1) = 4.0;
  const CholeskyResult f = cholesky(S);
  EXPECT_NEAR(cholesky_logdet(f.L), std::log(8.0), 1e-12);
}

class QrParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrParam, LeastSquaresMatchesNormalEquations) {
  const auto [m, n] = GetParam();
  Rng rng(m * 100 + n);
  const Matrix A = Matrix::random_normal(m, n, rng);
  Vector b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.normal();

  const Vector x = least_squares(A, b);

  // Normal equations solution.
  const Matrix AtA = matmul(A, A, true, false);
  Vector Atb(static_cast<std::size_t>(n), 0.0);
  gemv_t(1.0, A, b, 0.0, Atb);
  const CholeskyResult f = cholesky(AtA);
  cholesky_solve(f.L, Atb);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], Atb[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrParam,
    ::testing::Values(std::pair{5, 5}, std::pair{10, 3}, std::pair{50, 10},
                      std::pair{100, 25}, std::pair{30, 30}));

TEST(Qr, EconomyQROrthonormalAndReconstructs) {
  Rng rng(9);
  const Matrix A = Matrix::random_normal(12, 5, rng);
  const QrFactor f = qr_factor(A);
  const Matrix Q = economy_q(f);
  const Matrix R = economy_r(f);
  const Matrix QtQ = matmul(Q, Q, true, false);
  EXPECT_LT(max_abs_diff(QtQ, Matrix::identity(5)), 1e-12);
  const Matrix QR = matmul(Q, R);
  EXPECT_LT(max_abs_diff(QR, A), 1e-12);
}

TEST(Qr, MultiRhsMatchesSingle) {
  Rng rng(10);
  const Matrix A = Matrix::random_normal(20, 6, rng);
  const Matrix B = Matrix::random_normal(20, 3, rng);
  const Matrix X = least_squares(A, B);
  for (int j = 0; j < 3; ++j) {
    Vector b(B.col(j).begin(), B.col(j).end());
    const Vector x = least_squares(A, b);
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(X(i, j), x[i], 1e-10);
  }
}

TEST(Qr, ThrowsOnWide) {
  Rng rng(11);
  const Matrix A = Matrix::random_normal(3, 5, rng);
  EXPECT_THROW(qr_factor(A), std::invalid_argument);
}

class SvdParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdParam, ReconstructsAndOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  const Matrix A = Matrix::random_normal(m, n, rng);
  const SvdResult s = svd(A);
  const int r = std::min(m, n);
  ASSERT_EQ(static_cast<int>(s.sigma.size()), r);

  // Singular values descending and nonnegative.
  for (int i = 1; i < r; ++i) EXPECT_LE(s.sigma[i], s.sigma[i - 1] + 1e-12);
  EXPECT_GE(s.sigma[r - 1], 0.0);

  // U^T U = I, V^T V = I.
  EXPECT_LT(max_abs_diff(matmul(s.U, s.U, true, false), Matrix::identity(r)),
            1e-9);
  EXPECT_LT(max_abs_diff(matmul(s.V, s.V, true, false), Matrix::identity(r)),
            1e-9);

  // A = U S V^T.
  Matrix US = s.U;
  for (int j = 0; j < r; ++j)
    for (int i = 0; i < m; ++i) US(i, j) *= s.sigma[j];
  EXPECT_LT(max_abs_diff(matmul(US, s.V, false, true), A), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdParam,
    ::testing::Values(std::pair{5, 5}, std::pair{20, 4}, std::pair{4, 20},
                      std::pair{50, 8}, std::pair{8, 50}, std::pair{1, 6},
                      std::pair{6, 1}));

TEST(Svd, SolveMatchesQrOnFullRank) {
  Rng rng(12);
  const Matrix A = Matrix::random_normal(30, 6, rng);
  Vector b(30);
  for (auto& v : b) v = rng.normal();
  const SvdResult s = svd(A);
  const Vector x_svd = svd_solve(s, b);
  const Vector x_qr = least_squares(A, b);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(x_svd[i], x_qr[i], 1e-8);
}

TEST(Svd, PseudoInverseHandlesRankDeficiency) {
  // Duplicate columns -> rank 1; the pseudo-inverse solution is still finite.
  Matrix A(4, 2);
  for (int i = 0; i < 4; ++i) {
    A(i, 0) = i + 1.0;
    A(i, 1) = i + 1.0;
  }
  Vector b{1, 2, 3, 4};
  const SvdResult s = svd(A);
  EXPECT_NEAR(s.sigma[1], 0.0, 1e-10);
  const Vector x = svd_solve(s, b);
  EXPECT_TRUE(std::isfinite(x[0]));
  // Minimum-norm solution splits the weight evenly.
  EXPECT_NEAR(x[0], x[1], 1e-10);
}

TEST(EigenSym, DiagonalizesKnownMatrix) {
  Matrix A(2, 2);
  A(0, 0) = 2;
  A(0, 1) = A(1, 0) = 1;
  A(1, 1) = 2;
  const EigenSymResult e = eigen_sym(A);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(EigenSym, ReconstructsRandomSymmetric) {
  Rng rng(14);
  const int n = 12;
  Matrix A = Matrix::random_normal(n, n, rng);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < j; ++i) A(i, j) = A(j, i);
  const EigenSymResult e = eigen_sym(A);
  Matrix VD = e.vectors;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) VD(i, j) *= e.values[j];
  EXPECT_LT(max_abs_diff(matmul(VD, e.vectors, false, true), A), 1e-8);
}

TEST(EigenSym, MatrixFunctionInverseSqrt) {
  Rng rng(15);
  const Matrix S = random_spd(6, rng);
  const EigenSymResult e = eigen_sym(S);
  const Matrix Si = matrix_function(e, [](double x) { return 1.0 / x; });
  EXPECT_LT(max_abs_diff(matmul(S, Si), Matrix::identity(6)), 1e-8);
}

TEST(EigenSym, RejectsAsymmetric) {
  Matrix A(2, 2, 0.0);
  A(0, 1) = 1.0;
  EXPECT_THROW(eigen_sym(A), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(16);
  const Matrix A = Matrix::random_normal(5, 9, rng);
  EXPECT_LT(max_abs_diff(A.transposed().transposed(), A), 1e-15);
}

TEST(Matrix, ColSpanIsContiguousColumn) {
  Matrix A(3, 2, 0.0);
  auto c1 = A.col(1);
  c1[0] = 7.0;
  EXPECT_DOUBLE_EQ(A(0, 1), 7.0);
}
