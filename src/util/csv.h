// Tiny CSV writer used by benches and examples to emit paper-style series
// (front position vs time, error vs cycle, ...) alongside stdout tables.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace wfire::util {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  // Appends one row; must match the header width.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace wfire::util
