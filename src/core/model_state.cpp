#include "core/model_state.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wfire::core {

la::Vector pack_state(const fire::FireState& s, double tig_cap) {
  const std::size_t n = s.psi.size();
  la::Vector v(2 * n);
  const auto psi = s.psi.span();
  const auto tig = s.tig.span();
  for (std::size_t i = 0; i < n; ++i) v[i] = psi[i];
  for (std::size_t i = 0; i < n; ++i)
    v[n + i] = std::isfinite(tig[i]) ? std::min(tig[i], tig_cap) : tig_cap;
  return v;
}

void unpack_state(const la::Vector& v, int nx, int ny, double time,
                  fire::FireState& out, double tig_cap) {
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  if (v.size() != 2 * n)
    throw std::invalid_argument("unpack_state: size mismatch");
  out.psi = util::Array2D<double>(nx, ny);
  out.tig = util::Array2D<double>(nx, ny);
  out.time = time;
  auto psi = out.psi.span();
  auto tig = out.tig.span();
  for (std::size_t i = 0; i < n; ++i) psi[i] = v[i];
  for (std::size_t i = 0; i < n; ++i)
    tig[i] = v[n + i] > 0.5 * tig_cap ? fire::kNotIgnited : v[n + i];
}

bool burning_centroid(const grid::Grid2D& g, const util::Array2D<double>& psi,
                      double& cx, double& cy) {
  double sx = 0, sy = 0, count = 0;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      if (psi(i, j) < 0) {
        sx += g.x(i);
        sy += g.y(j);
        count += 1;
      }
  if (count == 0) return false;
  cx = sx / count;
  cy = sy / count;
  return true;
}

double centroid_distance(const grid::Grid2D& g,
                         const util::Array2D<double>& psi_a,
                         const util::Array2D<double>& psi_b) {
  double ax, ay, bx, by;
  if (!burning_centroid(g, psi_a, ax, ay) ||
      !burning_centroid(g, psi_b, bx, by))
    return std::numeric_limits<double>::infinity();
  return std::hypot(ax - bx, ay - by);
}

double symmetric_difference_area(const grid::Grid2D& g,
                                 const util::Array2D<double>& psi_a,
                                 const util::Array2D<double>& psi_b) {
  double cells = 0;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      if ((psi_a(i, j) < 0) != (psi_b(i, j) < 0)) cells += 1;
  return cells * g.dx * g.dy;
}

}  // namespace wfire::core
