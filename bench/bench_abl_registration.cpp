// Ablation (Sec. 3.3): cost and accuracy of the automatic registration
// problem  ||u - u0 o (I+T)|| + ||T|| + ||grad T|| -> min  that underlies
// the morphing EnKF.
//
// Expected shapes: cost scales ~linearly with pixels (multiscale); recovery
// error stays subpixel-to-pixel for displacements up to a third of the
// domain; removing pyramid levels breaks large-displacement recovery.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "morphing/morph.h"
#include "morphing/registration.h"

using namespace wfire;
using namespace wfire::morphing;

namespace {

util::Array2D<double> fire_like_blob(int n, double cx, double cy) {
  // An elongated anisotropic "fireline" feature, harder than a disc.
  util::Array2D<double> u(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      const double dx = (i - cx) / (0.12 * n);
      const double dy = (j - cy) / (0.05 * n);
      u(i, j) = 1e4 * std::exp(-0.5 * (dx * dx + dy * dy));
    }
  return u;
}

struct RecoveryRow {
  double shift;
  double err;
  double data_term;
  int iterations;
};

RecoveryRow recovery_at_shift(int n, double shift, int max_levels) {
  const util::Array2D<double> u0 = fire_like_blob(n, n / 2.0, n / 2.0);
  const util::Array2D<double> u =
      fire_like_blob(n, n / 2.0 - shift, n / 2.0 - 0.4 * shift);
  RegistrationOptions opt;
  opt.max_levels = max_levels;
  const RegistrationResult res = register_fields(u, u0, opt);
  // Gradient-weighted displacement estimate over the feature support.
  double wx = 0, wy = 0, wsum = 0;
  for (int j = 1; j < n - 1; ++j)
    for (int i = 1; i < n - 1; ++i) {
      const double g = std::abs(u(i + 1, j) - u(i - 1, j)) +
                       std::abs(u(i, j + 1) - u(i, j - 1));
      wx += g * res.T.tx(i, j);
      wy += g * res.T.ty(i, j);
      wsum += g;
    }
  RecoveryRow row;
  row.shift = shift;
  row.err = wsum > 0 ? std::hypot(wx / wsum - shift, wy / wsum - 0.4 * shift)
                     : 1e9;
  row.data_term = res.data_term;
  row.iterations = res.iterations;
  return row;
}

void print_registration_table() {
  static bool done = false;
  if (done) return;
  done = true;

  const int n = 128;
  std::printf("\n=== Ablation: registration recovery (%dx%d fireline "
              "feature) ===\n", n, n);
  std::printf("%10s %12s %14s %8s\n", "shift[px]", "err[px]", "data_term",
              "iters");
  for (const double s : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const RecoveryRow row = recovery_at_shift(n, s, 6);
    std::printf("%10.1f %12.2f %14.4g %8d\n", row.shift, row.err,
                row.data_term, row.iterations);
  }
  // The coarse-level exhaustive shift search anchors large displacements;
  // the pyramid then refines at a fraction of the single-level search cost
  // (the search is O(range^2 * pixels), so running it at the coarsest level
  // is ~256x cheaper than at full resolution for the same physical range).
  const RecoveryRow multi = recovery_at_shift(n, 20.0, 6);
  const RecoveryRow single = recovery_at_shift(n, 20.0, 1);
  std::printf("20 px recovery, multiscale %.2f px vs single-level %.2f px\n\n",
              multi.err, single.err);
}

}  // namespace

static void BM_Registration_GridSize(benchmark::State& state) {
  print_registration_table();
  const int n = static_cast<int>(state.range(0));
  const util::Array2D<double> u0 = fire_like_blob(n, n / 2.0, n / 2.0);
  const util::Array2D<double> u = fire_like_blob(n, n / 2.0 - 0.1 * n,
                                                 n / 2.0 - 0.05 * n);
  for (auto _ : state) {
    const RegistrationResult res = register_fields(u, u0, {});
    benchmark::DoNotOptimize(res.objective);
  }
  state.counters["pixels"] = static_cast<double>(n) * n;
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * n);
}
BENCHMARK(BM_Registration_GridSize)
    ->Unit(benchmark::kMillisecond)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

static void BM_Registration_MorphEncodeDecode(benchmark::State& state) {
  const int n = 128;
  const util::Array2D<double> u0 = fire_like_blob(n, n / 2.0, n / 2.0);
  const util::Array2D<double> u =
      fire_like_blob(n, n / 2.0 - 12.0, n / 2.0 - 5.0);
  for (auto _ : state) {
    const MorphRep rep = morph_encode(u, u0, {});
    const util::Array2D<double> back = morph_decode(u0, rep);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_Registration_MorphEncodeDecode)->Unit(benchmark::kMillisecond);

static void BM_Registration_Invert(benchmark::State& state) {
  const int n = 128;
  Mapping T(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      T.tx(i, j) = 6.0 * std::sin(2 * M_PI * j / n);
      T.ty(i, j) = 4.0 * std::cos(2 * M_PI * i / n);
    }
  for (auto _ : state) {
    const Mapping inv = invert(T);
    benchmark::DoNotOptimize(inv.tx.data());
  }
  state.counters["inverse_err_px"] = inverse_error(T, invert(T));
}
BENCHMARK(BM_Registration_Invert)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
