#include "fire/reaction_diffusion.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wfire::fire {

RdFireModel::RdFireModel(const grid::Grid2D& g, RdFireParams p)
    : grid_(g), p_(p) {
  if (p_.k <= 0 || p_.A < 0 || p_.B <= 0 || p_.C < 0 || p_.Cs < 0)
    throw std::invalid_argument("RdFireModel: invalid parameters");
  state_.T = util::Array2D<double>(g.nx, g.ny, p_.Ta);
  state_.beta = util::Array2D<double>(g.nx, g.ny, 1.0);
  T_new_ = state_.T;
  beta_new_ = state_.beta;
}

void RdFireModel::ignite(double cx, double cy, double radius, double T_hot) {
  for (int j = 0; j < grid_.ny; ++j)
    for (int i = 0; i < grid_.nx; ++i) {
      const double d = std::hypot(grid_.x(i) - cx, grid_.y(j) - cy);
      if (d <= radius) state_.T(i, j) = T_hot;
    }
}

double RdFireModel::reaction_rate(double T) const {
  const double dT = T - p_.Ta;
  if (dT <= 0) return 0.0;
  return std::exp(-p_.B / dT);
}

double RdFireModel::stable_dt() const {
  const double h2 = std::min(grid_.dx * grid_.dx, grid_.dy * grid_.dy);
  return h2 / (4.0 * p_.k);
}

void RdFireModel::step(double dt, double vx, double vy) {
  if (dt <= 0) throw std::invalid_argument("RdFireModel::step: dt <= 0");
  if (dt > stable_dt() * (1.0 + 1e-9))
    throw std::invalid_argument(
        "RdFireModel::step: dt exceeds the diffusive stability bound");
  const double ihx = 1.0 / grid_.dx, ihy = 1.0 / grid_.dy;
  const double ihx2 = ihx * ihx, ihy2 = ihy * ihy;

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < grid_.ny; ++j) {
    for (int i = 0; i < grid_.nx; ++i) {
      const double Tc = state_.T(i, j);
      const double Txm = state_.T.at_clamped(i - 1, j);
      const double Txp = state_.T.at_clamped(i + 1, j);
      const double Tym = state_.T.at_clamped(i, j - 1);
      const double Typ = state_.T.at_clamped(i, j + 1);

      const double diff =
          p_.k * ((Txm - 2 * Tc + Txp) * ihx2 + (Tym - 2 * Tc + Typ) * ihy2);
      const double adv = (vx > 0 ? vx * (Tc - Txm) * ihx
                                 : vx * (Txp - Tc) * ihx) +
                         (vy > 0 ? vy * (Tc - Tym) * ihy
                                 : vy * (Typ - Tc) * ihy);
      const double r = reaction_rate(Tc);
      const double beta = state_.beta(i, j);
      const double dTdt = diff - adv + p_.A * beta * r - p_.C * (Tc - p_.Ta);
      T_new_(i, j) = std::max(Tc + dt * dTdt, p_.Ta * 0.5);
      beta_new_(i, j) = std::clamp(beta - dt * p_.Cs * beta * r, 0.0, 1.0);
    }
  }
  std::swap(state_.T, T_new_);
  std::swap(state_.beta, beta_new_);
  state_.time += dt;
}

double RdFireModel::front_position_x(double T_threshold) const {
  double best = -std::numeric_limits<double>::infinity();
  for (int j = 0; j < grid_.ny; ++j)
    for (int i = grid_.nx - 1; i >= 0; --i)
      if (state_.T(i, j) > T_threshold) {
        best = std::max(best, grid_.x(i));
        break;
      }
  return best;
}

double RdFireModel::mean_fuel() const {
  return util::sum(state_.beta) / static_cast<double>(state_.beta.size());
}

double RdFireModel::max_temperature() const {
  return util::max_value(state_.T);
}

}  // namespace wfire::fire
