// BLAS-like kernels on Vector/Matrix. The matrix kernels (gemm, syrk, ger)
// dispatch on la::backend(): the blocked path packs panels into contiguous
// buffers and threads the tile loop with OpenMP; the reference path is the
// original naive triple loop kept as ground truth (see la/backend.h).
#pragma once

#include "la/backend.h"
#include "la/matrix.h"

namespace wfire::la {

// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

[[nodiscard]] double dot(const Vector& x, const Vector& y);
[[nodiscard]] double nrm2(const Vector& x);
void scal(double alpha, Vector& x);

// y = alpha * A * x + beta * y  (A: m x n, x: n, y: m)
void gemv(double alpha, const Matrix& A, const Vector& x, double beta,
          Vector& y);

// y = alpha * A^T * x + beta * y
void gemv_t(double alpha, const Matrix& A, const Vector& x, double beta,
            Vector& y);

// C = alpha * op(A) * op(B) + beta * C with op in {identity, transpose}.
void gemm(bool transA, bool transB, double alpha, const Matrix& A,
          const Matrix& B, double beta, Matrix& C);

// C = alpha * op(A) * diag(w) * op(B) + beta * C, w of length k (the
// contraction dimension). The blocked path applies w while packing the A
// panel (the pack-time per-column scale hook — see la/backend.h), so a
// diagonal scaling of the contraction costs nothing beyond the pack it
// already pays; the EnKF uses it to fold the R^{-1/2} observation weighting
// into its products instead of materializing scaled copies.
void gemm_scaled(bool transA, bool transB, double alpha, const Matrix& A,
                 const Vector& w, const Matrix& B, double beta, Matrix& C);

// Symmetric rank-k update: C = alpha * op(A) * op(A)^T + beta * C with C
// m x m. Only one triangle is computed (half the flops of the equivalent
// gemm) and mirrored, so when beta != 0 the incoming C must be symmetric.
void syrk(bool transA, double alpha, const Matrix& A, double beta, Matrix& C);

// C = alpha * op(A) * diag(w) * op(A)^T + beta * C, w of length k. Same
// triangle/mirror contract as syrk; the weight is applied once per
// contraction column from the unscaled packed panel (not by scaling the
// panel itself, which would square it).
void syrk_scaled(bool transA, double alpha, const Matrix& A, const Vector& w,
                 double beta, Matrix& C);

// Rank-1 update A += alpha * x * y^T  (A: m x n, x: m, y: n).
void ger(double alpha, const Vector& x, const Vector& y, Matrix& A);

// Convenience: returns op(A)*op(B).
[[nodiscard]] Matrix matmul(const Matrix& A, const Matrix& B,
                            bool transA = false, bool transB = false);

// Frobenius norm and max-abs difference (test helpers).
[[nodiscard]] double frobenius_norm(const Matrix& A);
[[nodiscard]] double max_abs_diff(const Matrix& A, const Matrix& B);

}  // namespace wfire::la
