// The "towards real-time" driver (paper title and Sec. 1): runs assimilation
// cycles against the wall clock. Each cycle advances the ensemble to the
// next observation time and assimilates; the driver records whether the
// computation kept up with the (scaled) real-time clock — the operational
// requirement the paper's project is building toward.
#pragma once

#include <vector>

#include "core/cycle.h"

namespace wfire::core {

struct RealTimeOptions {
  double cycle_interval = 60.0;  // simulated seconds between observations
  double speedup = 60.0;         // sim seconds per wall second (>= 1)
  int cycles = 5;
  bool pace = false;  // sleep to hold the schedule when running ahead
};

struct CycleRecord {
  double sim_time = 0;        // time at the end of the cycle [s]
  double wall_seconds = 0;    // compute time of the cycle
  double deadline_seconds = 0;// wall budget implied by the speedup
  bool met_deadline = false;
  AnalysisResult analysis;
  double position_error = 0;  // vs truth after analysis [m]
};

class RealTimeDriver {
 public:
  RealTimeDriver(AssimilationCycle& cycle, DataPool& pool,
                 RealTimeOptions opt);

  // Runs the configured number of cycles and returns one record per cycle.
  [[nodiscard]] std::vector<CycleRecord> run();

 private:
  AssimilationCycle& cycle_;
  DataPool& pool_;
  RealTimeOptions opt_;
};

}  // namespace wfire::core
