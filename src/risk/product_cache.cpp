#include "risk/product_cache.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace wfire::risk {

int ProductCache::env_capacity() {
  constexpr int kDefault = 32;
  const char* s = std::getenv("WFIRE_RISK_CACHE");
  if (s == nullptr || *s == '\0') return kDefault;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0') return kDefault;
  return v >= 1 ? static_cast<int>(v) : 1;
}

ProductCache::ProductCache(int capacity)
    : capacity_(capacity >= 1 ? capacity : 1) {}

std::shared_ptr<const BurnProbabilityGrid> ProductCache::fetch(
    const serve::ScenarioSpec& base, const PerturbationSpec& pert,
    const SweepOptions& opt) {
  const std::uint64_t key = product_key(base, pert, opt);

  std::shared_future<Product> fut;
  std::promise<Product> prom;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = index_.find(key); it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      return it->second->grid;
    }
    ++misses_;
    if (const auto fit = inflight_.find(key); fit != inflight_.end()) {
      fut = fit->second;  // join the in-flight compute
    } else {
      leader = true;
      ++sweeps_;
      fut = prom.get_future().share();
      inflight_.emplace(key, fut);
    }
  }

  if (!leader) return fut.get();  // rethrows the leader's failure

  Product grid;
  try {
    SweepDriver driver(base, pert, opt);
    grid = std::make_shared<const BurnProbabilityGrid>(driver.run());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    prom.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    lru_.push_front(Entry{key, grid});
    index_[key] = lru_.begin();
    while (static_cast<int>(lru_.size()) > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();  // clients holding the pointer keep the grid alive
    }
  }
  prom.set_value(grid);
  return grid;
}

long ProductCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

long ProductCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

long ProductCache::sweeps_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sweeps_;
}

int ProductCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(lru_.size());
}

}  // namespace wfire::risk
