#include "enkf/ensemble.h"

#include <cmath>
#include <stdexcept>

namespace wfire::enkf {

void ensemble_mean(const la::Matrix& X, la::Vector& mean) {
  const int n = X.rows(), N = X.cols();
  if (N == 0) throw std::invalid_argument("ensemble_mean: empty ensemble");
  mean.assign(static_cast<std::size_t>(n), 0.0);
  for (int k = 0; k < N; ++k) {
    const auto col = X.col(k);
    for (int i = 0; i < n; ++i) mean[i] += col[i];
  }
  const double inv = 1.0 / N;
  for (double& m : mean) m *= inv;
}

la::Vector ensemble_mean(const la::Matrix& X) {
  la::Vector mean;
  ensemble_mean(X, mean);
  return mean;
}

void anomalies(const la::Matrix& X, const la::Vector& mean, la::Matrix& A) {
  const int n = X.rows(), N = X.cols();
  if (static_cast<int>(mean.size()) != n)
    throw std::invalid_argument("anomalies: mean size mismatch");
  A.resize(n, N);
  for (int k = 0; k < N; ++k) {
    const auto src = X.col(k);
    auto dst = A.col(k);
    for (int i = 0; i < n; ++i) dst[i] = src[i] - mean[i];
  }
}

void anomalies(const la::Matrix& X, la::Matrix& A) {
  la::Vector mean;
  ensemble_mean(X, mean);
  anomalies(X, mean, A);
}

la::Matrix anomalies(const la::Matrix& X) {
  la::Matrix A;
  anomalies(X, A);
  return A;
}

void inflate(la::Matrix& X, double factor) {
  if (factor == 1.0) return;
  const la::Vector mean = ensemble_mean(X);
  for (int k = 0; k < X.cols(); ++k) {
    auto col = X.col(k);
    for (int i = 0; i < X.rows(); ++i)
      col[i] = mean[i] + factor * (col[i] - mean[i]);
  }
}

double spread(const la::Matrix& X) {
  const int n = X.rows(), N = X.cols();
  if (N < 2) return 0.0;
  const la::Vector mean = ensemble_mean(X);
  double total = 0;
  for (int k = 0; k < N; ++k) {
    const auto col = X.col(k);
    for (int i = 0; i < n; ++i) {
      const double d = col[i] - mean[i];
      total += d * d;
    }
  }
  return std::sqrt(total / (static_cast<double>(n) * (N - 1)));
}

la::Vector covariance_action(const la::Matrix& A, const la::Vector& v) {
  const int N = A.cols();
  if (N < 2) throw std::invalid_argument("covariance_action: N < 2");
  la::Vector t(static_cast<std::size_t>(N));
  la::gemv_t(1.0, A, v, 0.0, t);
  la::Vector out(static_cast<std::size_t>(A.rows()));
  la::gemv(1.0 / (N - 1), A, t, 0.0, out);
  return out;
}

la::Matrix perturbed_ensemble(const la::Vector& base, int N, double stddev,
                              util::Rng& rng) {
  const int n = static_cast<int>(base.size());
  la::Matrix X(n, N);
  for (int k = 0; k < N; ++k) {
    auto col = X.col(k);
    for (int i = 0; i < n; ++i) col[i] = base[i] + stddev * rng.normal();
  }
  return X;
}

}  // namespace wfire::enkf
