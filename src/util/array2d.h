// Contiguous row-major 2-D array. Index convention: (i, j) with i along x
// (fastest-varying, contiguous) and j along y. All grid fields in wfire
// (level set function, ignition time, heat flux, images) use this container.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/assert.h"

namespace wfire::util {

template <typename T>
class Array2D {
 public:
  Array2D() = default;

  Array2D(int nx, int ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(checked_size(nx, ny), fill) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] bool contains(int i, int j) const {
    return i >= 0 && i < nx_ && j >= 0 && j < ny_;
  }

  T& operator()(int i, int j) {
    WFIRE_ASSERT(contains(i, j), "Array2D index out of range");
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }
  const T& operator()(int i, int j) const {
    WFIRE_ASSERT(contains(i, j), "Array2D index out of range");
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }

  // Clamped access: reads the nearest in-range sample. Used by stencils and
  // interpolation near boundaries.
  [[nodiscard]] const T& at_clamped(int i, int j) const {
    i = std::clamp(i, 0, nx_ - 1);
    j = std::clamp(j, 0, ny_ - 1);
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const T> span() const {
    return {data_.data(), data_.size()};
  }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] bool same_shape(const Array2D& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  friend bool operator==(const Array2D& a, const Array2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  static std::size_t checked_size(int nx, int ny) {
    if (nx < 0 || ny < 0) throw std::invalid_argument("Array2D: negative dims");
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }

  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

// Elementwise reductions used throughout diagnostics.
template <typename T>
[[nodiscard]] T min_value(const Array2D<T>& a) {
  WFIRE_ASSERT(!a.empty(), "min_value of empty array");
  return *std::min_element(a.begin(), a.end());
}

template <typename T>
[[nodiscard]] T max_value(const Array2D<T>& a) {
  WFIRE_ASSERT(!a.empty(), "max_value of empty array");
  return *std::max_element(a.begin(), a.end());
}

template <typename T>
[[nodiscard]] double sum(const Array2D<T>& a) {
  double s = 0;
  for (const T& v : a) s += static_cast<double>(v);
  return s;
}

}  // namespace wfire::util
