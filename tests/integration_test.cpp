// Cross-module integration tests: the full coupled model + scene + filter
// stack exercised end to end on small configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/cycle.h"
#include "core/realtime.h"
#include "coupling/coupled.h"
#include "obs/obs_function.h"
#include "obs/weather_station.h"
#include "scene/fre.h"
#include "scene/render.h"

using namespace wfire;

TEST(Integration, CoupledFireScenePipeline) {
  // Coupled run -> ground thermal map -> flame voxels -> rendered IR image
  // -> FRP, all from one model state: the paper's full forward chain.
  const grid::Grid3D g(8, 8, 6, 60.0, 60.0, 60.0);
  atmos::AmbientProfile amb;
  amb.wind_u = 3.0;
  coupling::CoupledOptions copt;
  copt.refine = 10;
  coupling::CoupledModel model(g, amb, fire::kFuelShortGrass, copt);
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{240.0, 240.0, 25.0, 0.0}}});
  for (int s = 0; s < 120; ++s) model.step(0.5);

  const fire::FireModel& fm = model.fire_model();
  scene::GroundThermalModel thermal;
  util::Array2D<double> ground_T;
  thermal.temperature_map(fm.state().tig, fm.state().time, ground_T);
  EXPECT_GT(util::max_value(ground_T), 600.0);  // hot ground behind front

  const scene::FlameVoxels fv = scene::build_flame_voxels(
      fm, model.fire_wind_u(), model.fire_wind_v());
  EXPECT_GT(fv.max_flame_length, 0.2);

  scene::Camera cam;
  cam.look_x = cam.look_y = 270.0;
  cam.npx = cam.npy = 48;
  cam.gsd = 10.0;
  scene::Renderer renderer;
  const scene::RenderedScene sc = renderer.render(cam, fm.grid(), ground_T, fv);

  scene::FreParams fp;
  fp.pixel_area = cam.pixel_area();
  const double frp = scene::frp_stefan_boltzmann(sc.brightness, fp);
  EXPECT_GT(frp, 1e5);
  EXPECT_LT(frp, 1e10);
}

TEST(Integration, MorphingBeatsStandardEnKFOnDisplacedFire) {
  // The Fig. 4 comparison at test scale: same twin experiment, same seeds,
  // the morphing EnKF must end with a smaller position error than the
  // standard EnKF.
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  const auto run = [&](core::FilterKind kind) {
    core::DataPoolOptions dopt;
    dopt.noise_std = 1500.0;
    core::DataPool pool(
        [&] {
          auto m = std::make_unique<fire::FireModel>(
              g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
              fire::terrain_flat(g));
          m->ignite({levelset::Ignition{
              levelset::CircleIgnition{150.0, 120.0, 20.0, 0.0}}});
          return m;
        }(),
        dopt, util::Rng(7));

    core::CycleOptions opt;
    opt.members = 8;
    opt.threads = 2;
    opt.filter = kind;
    opt.ignition_jitter = 10.0;
    opt.morph.sigma_r = 50.0;
    opt.morph.sigma_T = 0.5;
    opt.standard_sigma_obs = 2000.0;
    core::AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                                  fire::terrain_flat(g), {}, opt, 8);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{80.0, 120.0, 20.0, 0.0}}});  // 70 m off
    const core::ObservationImage obs = pool.observe_at(15.0);
    cycle.advance_to(15.0);
    cycle.assimilate(obs);
    return cycle.mean_position_error(pool.truth().state().psi);
  };

  const double err_morph = run(core::FilterKind::kMorphingEnKF);
  const double err_std = run(core::FilterKind::kStandardEnKF);
  EXPECT_LT(err_morph, err_std);
}

TEST(Integration, MultiCycleAssimilationConvergesToTruth) {
  // Several observation cycles shrink both position error and spread —
  // the filter is actually tracking, not just nudging once.
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  core::DataPoolOptions dopt;
  dopt.noise_std = 1000.0;
  dopt.wind_u = 1.5;
  core::DataPool pool(
      [&] {
        auto m = std::make_unique<fire::FireModel>(
            g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
            fire::terrain_flat(g));
        m->ignite({levelset::Ignition{
            levelset::CircleIgnition{130.0, 130.0, 18.0, 0.0}}});
        return m;
      }(),
      dopt, util::Rng(9));

  core::CycleOptions opt;
  opt.members = 8;
  opt.threads = 2;
  opt.wind_u = 1.5;
  opt.ignition_jitter = 15.0;
  opt.morph.sigma_r = 50.0;
  opt.morph.sigma_T = 0.5;
  core::AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                                fire::terrain_flat(g), {}, opt, 10);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{90.0, 110.0, 18.0, 0.0}}});

  double pre_err = -1, last_err = -1;
  for (int c = 1; c <= 3; ++c) {
    const double t = 10.0 * c;
    const core::ObservationImage obs = pool.observe_at(t);
    cycle.advance_to(t);
    if (pre_err < 0)
      pre_err = cycle.mean_position_error(pool.truth().state().psi);
    cycle.assimilate(obs);
    last_err = cycle.mean_position_error(pool.truth().state().psi);
  }
  EXPECT_LT(last_err, 0.8 * pre_err);
  EXPECT_LT(last_err, 30.0);  // within ~5 fire cells of the truth
}

TEST(Integration, StateFilePipelineSurvivesAssimilation) {
  // File-exchange mode through a full advance + assimilate sequence.
  const grid::Grid2D g(31, 31, 6.0, 6.0);
  core::DataPool pool(
      [&] {
        auto m = std::make_unique<fire::FireModel>(
            g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
            fire::terrain_flat(g));
        m->ignite({levelset::Ignition{
            levelset::CircleIgnition{100.0, 90.0, 15.0, 0.0}}});
        return m;
      }(),
      {}, util::Rng(11));

  core::CycleOptions opt;
  opt.members = 4;
  opt.threads = 2;
  opt.file_exchange = true;
  opt.exchange_dir = "/tmp/wfire_integration_exchange";
  opt.morph.sigma_r = 50.0;
  core::AssimilationCycle cycle(g, fire::uniform_fuel(g.nx, g.ny, 0),
                                fire::terrain_flat(g), {}, opt, 12);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{80.0, 90.0, 15.0, 0.0}}});
  const core::ObservationImage obs = pool.observe_at(10.0);
  cycle.advance_to(10.0);
  EXPECT_NO_THROW(cycle.assimilate(obs));
  // The exchange directory holds one state file per member.
  int files = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(opt.exchange_dir))
    if (e.path().extension() == ".wfst") ++files;
  EXPECT_EQ(files, 4);
  std::filesystem::remove_all(opt.exchange_dir);
}

TEST(Integration, WeatherStationAgainstCoupledModel) {
  // Stations report against the coupled model's ground wind field — the
  // Sec. 3.1 data path wired to the real atmosphere.
  const grid::Grid3D g(8, 8, 6, 60.0, 60.0, 60.0);
  atmos::AmbientProfile amb;
  amb.wind_u = 4.0;
  coupling::CoupledModel model(g, amb, fire::kFuelShortGrass, {});
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{240.0, 240.0, 25.0, 0.0}}});
  for (int s = 0; s < 40; ++s) model.step(0.5);

  const fire::FireModel& fm = model.fire_model();
  scene::GroundThermalModel thermal;
  util::Array2D<double> ground_T;
  thermal.temperature_map(fm.state().tig, fm.state().time, ground_T);
  util::Array2D<double> humidity(fm.grid().nx, fm.grid().ny, 0.35);

  obs::WeatherStationOperator op(fm.grid());
  obs::StationReport rep;
  rep.x = 250.0;
  rep.y = 250.0;  // inside the burned area
  rep.temperature = 400.0;
  const obs::StationComparison cmp =
      op.compare(rep, ground_T, model.fire_wind_u(), model.fire_wind_v(),
                 humidity, fm.state().psi);
  EXPECT_TRUE(cmp.inside);
  EXPECT_TRUE(cmp.fireline_nearby);
  EXPECT_GT(cmp.model_temperature, 310.0);  // the model knows it is hot there
}
