// The observation function (paper Fig. 2): maps a model state to the
// synthetic data that can be compared against real data. Two observables
// are provided:
//
//  - the instantaneous sensible heat flux image computed from (tig, time)
//    and the fuel map — the field shown in the paper's Figs. 1 and 4 and
//    the one the morphing EnKF registers on;
//  - the full infrared rendering path (scene module) for camera-grade
//    synthetic data (Fig. 3).
//
// The file-based variant mirrors the paper's pipeline: it reads a member
// state file, evaluates the observable, and writes a synthetic-data file.
#pragma once

#include <string>

#include "fire/model.h"
#include "obs/statefile.h"
#include "util/array2d.h"

namespace wfire::obs {

// Instantaneous sensible heat flux [W/m^2] from the assimilable state.
[[nodiscard]] util::Array2D<double> heat_flux_image(
    const fire::FuelMap& fuel, const util::Array2D<double>& tig, double time);

// 3x3 median filter: removes isolated noise pixels from observed images
// before thresholding (salt noise above the threshold would punch false
// wells into the distance transform below).
[[nodiscard]] util::Array2D<double> median3x3(const util::Array2D<double>& f);

// Signed distance [m] to the actively burning band {flux > threshold}
// (negative inside the band), built by fast sweeping after a median3x3
// denoise. Heat-flux images are thin rings that alias away in registration
// pyramids; their distance transform is the smooth, large-scale field the
// morphing EnKF registers on — the role the level set function plays for
// the model state. Returns +`far` everywhere when nothing exceeds the
// threshold.
[[nodiscard]] util::Array2D<double> front_distance_field(
    const util::Array2D<double>& flux, const grid::Grid2D& g,
    double threshold, bool denoise = true);

// --- state <-> file packing (sections "psi", "tig", "time") ---

void write_fire_state(const std::string& path, const fire::FireState& s);

[[nodiscard]] fire::FireState read_fire_state(const std::string& path,
                                              int nx, int ny);

// File-based observation function: state file in, synthetic-data file out
// (section "heat_flux" plus the grid dims). Returns the image as well.
util::Array2D<double> observation_function_file(const std::string& state_path,
                                                const std::string& synth_path,
                                                const fire::FuelMap& fuel,
                                                int nx, int ny);

}  // namespace wfire::obs
