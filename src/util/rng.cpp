#include "util/rng.h"

#include <cmath>

namespace wfire::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits mapped to [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  if (n == 0) return 0;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * f;
  have_cached_ = true;
  return u * f;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  for (auto& x : out) x = normal();
  return out;
}

Rng Rng::spawn() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Two SplitMix64 rounds mix the counter into the seed; distinct ids give
  // well-separated sub-seeds without any shared sequencing state.
  std::uint64_t a = seed;
  std::uint64_t b = splitmix64(a) ^ stream_id;
  return Rng(splitmix64(b));
}

}  // namespace wfire::util
