// Synthetic scene tests: Planck radiometry round trips, the paper's
// double-exponential ground thermal model (75 s / 250 s, 1075 K peak),
// flame voxelization (Byram length, wind tilt), rendering term structure,
// and FRE magnitudes against the published satellite-derived range.
#include <gtest/gtest.h>

#include <cmath>

#include "scene/camera.h"
#include "scene/flame.h"
#include "scene/fre.h"
#include "scene/planck.h"
#include "scene/render.h"
#include "scene/thermal.h"

using namespace wfire::scene;
using namespace wfire;

TEST(Planck, SpectralRadianceBasics) {
  // Hotter is brighter at every wavelength.
  EXPECT_GT(planck_spectral_radiance(4e-6, 1000.0),
            planck_spectral_radiance(4e-6, 500.0));
  // Wien: at 1000 K the peak (~2.9 um) lies below 4 um, so radiance at 3 um
  // exceeds radiance at 5 um... check monotonicity across our band edges.
  EXPECT_GT(planck_spectral_radiance(3.0e-6, 1000.0),
            planck_spectral_radiance(5.0e-6, 1000.0) * 0.5);
  EXPECT_EQ(planck_spectral_radiance(4e-6, 0.0), 0.0);
  EXPECT_THROW((void)planck_spectral_radiance(-1.0, 300.0),
               std::invalid_argument);
}

TEST(Planck, BandRadianceMonotoneInTemperature) {
  double prev = 0;
  for (double T = 250; T <= 1400; T += 50) {
    const double L = band_radiance(T);
    EXPECT_GT(L, prev);
    prev = L;
  }
}

class BrightnessParam : public ::testing::TestWithParam<double> {};

TEST_P(BrightnessParam, BrightnessTemperatureRoundTrip) {
  const double T = GetParam();
  const double L = band_radiance(T);
  EXPECT_NEAR(brightness_temperature(L), T, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Temps, BrightnessParam,
                         ::testing::Values(280.0, 300.0, 500.0, 800.0, 1075.0,
                                           1500.0));

TEST(Planck, StefanBoltzmannValue) {
  // sigma * 300^4 ~ 459 W/m^2.
  EXPECT_NEAR(stefan_boltzmann_exitance(300.0), 459.3, 0.5);
}

TEST(Thermal, PaperConstantsPeakAtExactly1075K) {
  GroundThermalModel model;  // defaults = paper values
  const double tp = model.peak_time();
  // Analytic peak of the double exponential with tau 75/250.
  const double expected =
      std::log(250.0 / 75.0) / (1.0 / 75.0 - 1.0 / 250.0);
  EXPECT_NEAR(tp, expected, 1e-9);
  EXPECT_NEAR(model.temperature(tp), 1075.0, 1e-9);
}

TEST(Thermal, AmbientBeforeArrivalAndCoolingAfterPeak) {
  GroundThermalModel model;
  EXPECT_DOUBLE_EQ(model.temperature(-5.0), 300.0);
  EXPECT_DOUBLE_EQ(model.temperature(0.0), 300.0);
  const double tp = model.peak_time();
  EXPECT_GT(model.temperature(tp / 2), model.temperature(tp / 10));
  EXPECT_GT(model.temperature(tp), model.temperature(tp * 3));
  // Cooling tail: e-folding on the 250 s scale.
  const double late1 = model.temperature(1000.0) - 300.0;
  const double late2 = model.temperature(1250.0) - 300.0;
  EXPECT_NEAR(late2 / late1, std::exp(-250.0 / 250.0), 0.02);
}

TEST(Thermal, RejectsBadTimeConstants) {
  GroundThermalParams p;
  p.tau_rise = 300.0;  // must be < tau_cool
  EXPECT_THROW(GroundThermalModel{p}, std::invalid_argument);
}

TEST(Thermal, TemperatureMapUsesIgnitionTimes) {
  GroundThermalModel model;
  util::Array2D<double> tig(4, 4, fire::kNotIgnited);
  tig(1, 1) = 0.0;    // burned at t=0
  tig(2, 2) = 100.0;  // burned at t=100
  util::Array2D<double> T;
  model.temperature_map(tig, 129.0, T);
  EXPECT_DOUBLE_EQ(T(0, 0), 300.0);                       // never burned
  EXPECT_NEAR(T(2, 2), model.temperature(29.0), 1e-12);   // young burn
  EXPECT_NEAR(T(1, 1), model.temperature(129.0), 1e-12);  // older burn
  EXPECT_GT(T(1, 1), T(2, 2));  // 129 s is just past peak; 29 s still rising
}

TEST(Flame, ByramLengthScalesWithIntensity) {
  EXPECT_DOUBLE_EQ(byram_flame_length(0.0), 0.0);
  const double l100 = byram_flame_length(100.0);
  const double l1000 = byram_flame_length(1000.0);
  EXPECT_NEAR(l100, 0.0775 * std::pow(100.0, 0.46), 1e-12);
  EXPECT_GT(l1000, l100);
  // Grass-fire range: I ~ 1000 kW/m -> L ~ 1.8 m. Sanity check magnitude.
  EXPECT_GT(l1000, 1.0);
  EXPECT_LT(l1000, 4.0);
}

namespace {

// A small burning fire model for voxelization tests.
fire::FireModel burning_model() {
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{120.0, 120.0, 30.0, 0.0}}});
  for (int s = 0; s < 20; ++s) model.step_uniform_wind(0.5, 3.0, 0.0);
  return model;
}

}  // namespace

TEST(Flame, VoxelsExistOverBurningCellsOnly) {
  fire::FireModel model = burning_model();
  util::Array2D<double> wu(41, 41, 3.0), wv(41, 41, 0.0);
  const FlameVoxels fv = build_flame_voxels(model, wu, wv);
  EXPECT_GT(fv.max_flame_length, 0.1);
  EXPECT_GT(fv.temperature.nz(), 0);

  // Some voxel is hot; corners (never burned) have no flame column.
  EXPECT_GT(util::max_abs(fv.temperature), 500.0);
  for (int k = 0; k < fv.temperature.nz(); ++k) {
    EXPECT_DOUBLE_EQ(fv.temperature(0, 0, k), 0.0);
    EXPECT_DOUBLE_EQ(fv.temperature(40, 40, k), 0.0);
  }
}

TEST(Flame, WindTiltsColumnsDownwind) {
  fire::FireModel model = burning_model();
  util::Array2D<double> wu(41, 41, 12.0), wv(41, 41, 0.0);  // strong wind
  FlameParams p;
  p.voxel_dz = 0.5;
  const FlameVoxels fv = build_flame_voxels(model, wu, wv, p);
  // Center of mass of flame voxels shifts +x with height.
  double x_low = 0, n_low = 0, x_high = 0, n_high = 0;
  const int nz = fv.temperature.nz();
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < fv.temperature.ny(); ++j)
      for (int i = 0; i < fv.temperature.nx(); ++i) {
        if (fv.temperature(i, j, k) <= 0) continue;
        if (k < nz / 3) {
          x_low += i;
          n_low += 1;
        } else if (k > nz / 2) {
          x_high += i;
          n_high += 1;
        }
      }
  ASSERT_GT(n_low, 0);
  ASSERT_GT(n_high, 0);
  EXPECT_GT(x_high / n_high, x_low / n_low);
}

TEST(Camera, NadirPixelRaysHitTheirFootprints) {
  Camera cam;
  cam.look_x = 500.0;
  cam.look_y = 500.0;
  cam.altitude = 3000.0;
  cam.npx = cam.npy = 64;
  cam.gsd = 4.0;
  // Center pixel ray points nearly straight down at the look-at point.
  const Ray center = cam.pixel_ray(31, 31);
  const double t = -center.oz / center.dz;
  EXPECT_NEAR(center.ox + t * center.dx, 500.0, 4.0);
  EXPECT_NEAR(center.oy + t * center.dy, 500.0, 4.0);
  // Corner pixel lands half a footprint away from the center.
  const Ray corner = cam.pixel_ray(0, 0);
  const double tc = -corner.oz / corner.dz;
  EXPECT_NEAR(corner.ox + tc * corner.dx, 500.0 - 31.5 * 4.0, 1e-9);
  EXPECT_THROW((void)cam.pixel_ray(-1, 0), std::out_of_range);
}

TEST(Render, ColdSceneIsAmbientBrightness) {
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  util::Array2D<double> ground_T(41, 41, 300.0);
  FlameVoxels no_flames;
  no_flames.dx = no_flames.dy = 6.0;
  no_flames.dz = 1.0;
  no_flames.temperature = util::Array3D<double>(41, 41, 1, 0.0);

  Camera cam;
  cam.look_x = cam.look_y = 120.0;
  cam.npx = cam.npy = 32;
  cam.gsd = 8.0;
  Renderer renderer;
  const RenderedScene scene = renderer.render(cam, g, ground_T, no_flames);
  // Brightness below ambient (emissivity + transmittance < 1), positive.
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 32; ++i) {
      EXPECT_GT(scene.brightness(i, j), 250.0);
      EXPECT_LT(scene.brightness(i, j), 300.0);
    }
}

TEST(Render, FireSceneShowsAllThreeRadianceTerms) {
  fire::FireModel model = burning_model();
  util::Array2D<double> wu(41, 41, 3.0), wv(41, 41, 0.0);
  const FlameVoxels fv = build_flame_voxels(model, wu, wv);
  GroundThermalModel thermal;
  util::Array2D<double> ground_T;
  thermal.temperature_map(model.state().tig, model.state().time, ground_T);

  Camera cam;
  cam.look_x = cam.look_y = 120.0;
  cam.altitude = 3000.0;
  cam.npx = cam.npy = 64;
  cam.gsd = 4.0;
  Renderer renderer;
  const RenderedScene scene = renderer.render(cam, model.grid(), ground_T, fv);

  // Fire pixels are far brighter than background.
  const double maxB = util::max_value(scene.brightness);
  EXPECT_GT(maxB, 600.0);
  // Reflection term: irradiance map positive near the fire.
  const util::Array2D<double> irr =
      renderer.flame_irradiance(model.grid(), fv);
  EXPECT_GT(util::max_value(irr), 0.0);
  // And zero far away (beyond the cutoff).
  EXPECT_DOUBLE_EQ(irr(0, 0), 0.0);
}

TEST(Fre, GrassfireFrpInPublishedRange) {
  // Wooster et al. 2003 report wildfire FRP from ~1 MW (small fires) to
  // ~1 GW (large events). A ~0.5 ha burning grass patch should land well
  // inside that bracket with both estimators.
  fire::FireModel model = burning_model();
  util::Array2D<double> wu(41, 41, 3.0), wv(41, 41, 0.0);
  const FlameVoxels fv = build_flame_voxels(model, wu, wv);
  GroundThermalModel thermal;
  util::Array2D<double> ground_T;
  thermal.temperature_map(model.state().tig, model.state().time, ground_T);

  Camera cam;
  cam.look_x = cam.look_y = 120.0;
  cam.npx = cam.npy = 96;
  cam.gsd = 3.0;
  Renderer renderer;
  const RenderedScene scene = renderer.render(cam, model.grid(), ground_T, fv);

  FreParams fp;
  fp.pixel_area = cam.pixel_area();
  const double frp_sb = frp_stefan_boltzmann(scene.brightness, fp);
  const double frp_mir = frp_mir_radiance(scene.radiance, scene.brightness, fp);
  EXPECT_GT(fire_pixel_count(scene.brightness, fp), 10);
  EXPECT_GT(frp_sb, 1e6);    // > 1 MW
  EXPECT_LT(frp_sb, 1e9);    // < 1 GW
  EXPECT_GT(frp_mir, 1e5);
  EXPECT_LT(frp_mir, 1e9);
  // The two estimators agree within an order of magnitude.
  EXPECT_LT(std::abs(std::log10(frp_sb / frp_mir)), 1.0);
}

TEST(Fre, ColdImageHasZeroFrp) {
  util::Array2D<double> cold(16, 16, 300.0);
  EXPECT_DOUBLE_EQ(frp_stefan_boltzmann(cold), 0.0);
  EXPECT_EQ(fire_pixel_count(cold), 0);
}
