// Atmosphere -> fire forcing: the fire model needs the horizontal wind on
// its fine mesh (paper Sec. 2.3: "the fire model takes as input the
// horizontal wind velocity components"). The near-ground wind is destaggered
// from the lowest atmosphere level onto the atmosphere's horizontal node
// mesh, then interpolated bilinearly to the fire nodes.
#pragma once

#include "atmos/state.h"
#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::coupling {

// Geometry tying the fire mesh to the atmosphere mesh: fire node (0,0)
// coincides with atmosphere cell center (0,0); refine = atmos dx / fire dx
// (the paper's reference pairing is 60 m / 6 m -> refine = 10).
struct MeshPairing {
  grid::Grid2D fire;       // fine fire mesh
  grid::Grid2D atmos_hor;  // atmos cell-center mesh: (nx, ny), spacing dx, dy
  int refine = 10;
};

// Builds the pairing for an atmosphere grid, placing fire node (0,0) at the
// atmos cell-center origin and covering `cells_x` x `cells_y` atmos cells.
[[nodiscard]] MeshPairing make_pairing(const grid::Grid3D& atmos, int refine);

// Samples the lowest-level horizontal wind onto the fire mesh.
void sample_ground_wind(const grid::Grid3D& g, const atmos::AtmosState& s,
                        const MeshPairing& pair, util::Array2D<double>& fire_u,
                        util::Array2D<double>& fire_v);

// Aggregates fire-mesh flux densities (W/m^2 at fire nodes) onto the atmos
// horizontal mesh by block averaging (conserves mean flux density, hence
// total power).
void aggregate_flux(const MeshPairing& pair,
                    const util::Array2D<double>& fire_flux,
                    util::Array2D<double>& atmos_flux);

}  // namespace wfire::coupling
