// Figure 3 reproduction: synthetic mid-wave (3-5 um) infrared scene of a
// modeled grassfire as observed by a WASP-class airborne camera from about
// 3000 m above ground, rendered by the DIRSIG-substitute ray marcher.
//
// The paper validates the rendering "by calculation of the fire radiated
// energy and comparing those results to published values derived from
// satellite remote sensing data over wildland fires" (Wooster et al. 2003).
// The harness prints the scene statistics and both FRP estimators and
// checks they land in the published 1 MW - 1 GW wildfire bracket; the
// timed benchmarks sweep the image resolution (cost ~ pixels).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "scene/fre.h"
#include "scene/render.h"

using namespace wfire;

namespace {

// A developed grassfire to image: ~10 min of wind-driven spread on a
// 960 m domain at 6 m.
std::unique_ptr<fire::FireModel> grassfire() {
  static std::unique_ptr<fire::FireModel> cached;
  if (!cached) {
    const grid::Grid2D g(161, 161, 6.0, 6.0);
    cached = std::make_unique<fire::FireModel>(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g));
    cached->ignite({levelset::Ignition{
        levelset::CircleIgnition{300.0, 480.0, 30.0, 0.0}}});
    for (int s = 0; s < 600; ++s) cached->step_uniform_wind(1.0, 4.0, 0.5);
  }
  return std::make_unique<fire::FireModel>(*cached);
}

struct SceneInputs {
  util::Array2D<double> ground_T;
  scene::FlameVoxels flames;
};

SceneInputs scene_inputs(const fire::FireModel& fm) {
  SceneInputs in;
  scene::GroundThermalModel thermal;
  thermal.temperature_map(fm.state().tig, fm.state().time, in.ground_T);
  util::Array2D<double> wu(fm.grid().nx, fm.grid().ny, 4.0);
  util::Array2D<double> wv(fm.grid().nx, fm.grid().ny, 0.5);
  in.flames = scene::build_flame_voxels(fm, wu, wv);
  return in;
}

scene::Camera wasp_camera(int npx, double gsd) {
  scene::Camera cam;
  cam.look_x = cam.look_y = 480.0;
  cam.altitude = 3000.0;  // the paper's "about 3000 m above ground"
  cam.npx = cam.npy = npx;
  cam.gsd = gsd;
  return cam;
}

void print_fig3_summary() {
  static bool done = false;
  if (done) return;
  done = true;

  auto fm = grassfire();
  const SceneInputs in = scene_inputs(*fm);
  const scene::Camera cam = wasp_camera(256, 4.0);
  scene::Renderer renderer;
  const scene::RenderedScene sc =
      renderer.render(cam, fm->grid(), in.ground_T, in.flames);

  scene::FreParams fp;
  fp.pixel_area = cam.pixel_area();
  const double frp_sb = scene::frp_stefan_boltzmann(sc.brightness, fp);
  const double frp_mir =
      scene::frp_mir_radiance(sc.radiance, sc.brightness, fp);
  const int npix = scene::fire_pixel_count(sc.brightness, fp);

  std::printf("\n=== Fig. 3: synthetic MWIR scene (WASP @3000 m AGL) ===\n");
  std::printf("image: %dx%d px @ %.1f m GSD; flame voxels up to %.2f m\n",
              cam.npx, cam.npy, cam.gsd, in.flames.max_flame_length);
  std::printf("brightness: background %.0f K, max %.0f K; fire pixels %d\n",
              util::min_value(sc.brightness), util::max_value(sc.brightness),
              npix);
  std::printf("FRP (Stefan-Boltzmann): %.1f MW\n", frp_sb / 1e6);
  std::printf("FRP (Wooster MIR):      %.1f MW\n", frp_mir / 1e6);
  const bool ok = frp_sb > 1e6 && frp_sb < 1e9 && frp_mir > 1e5 &&
                  frp_mir < 1e9;
  std::printf("published satellite-derived wildfire range 1 MW-1 GW: %s\n\n",
              ok ? "WITHIN RANGE (validated as in the paper)"
                 : "OUT OF RANGE");
}

}  // namespace

static void BM_Fig3_RenderScene(benchmark::State& state) {
  print_fig3_summary();
  const int npx = static_cast<int>(state.range(0));
  auto fm = grassfire();
  const SceneInputs in = scene_inputs(*fm);
  // Keep the footprint constant as resolution grows (GSD shrinks).
  const scene::Camera cam = wasp_camera(npx, 1024.0 / npx);
  scene::Renderer renderer;
  for (auto _ : state) {
    const scene::RenderedScene sc =
        renderer.render(cam, fm->grid(), in.ground_T, in.flames);
    benchmark::DoNotOptimize(sc.radiance.data());
  }
  state.counters["pixels"] = static_cast<double>(npx) * npx;
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(npx) *
                          npx);
}
BENCHMARK(BM_Fig3_RenderScene)
    ->Unit(benchmark::kMillisecond)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256);

static void BM_Fig3_FlameVoxelization(benchmark::State& state) {
  auto fm = grassfire();
  util::Array2D<double> wu(fm->grid().nx, fm->grid().ny, 4.0);
  util::Array2D<double> wv(fm->grid().nx, fm->grid().ny, 0.5);
  for (auto _ : state) {
    const scene::FlameVoxels fv = scene::build_flame_voxels(*fm, wu, wv);
    benchmark::DoNotOptimize(fv.max_flame_length);
  }
}
BENCHMARK(BM_Fig3_FlameVoxelization)->Unit(benchmark::kMillisecond);

static void BM_Fig3_GroundThermalMap(benchmark::State& state) {
  auto fm = grassfire();
  scene::GroundThermalModel thermal;
  util::Array2D<double> T;
  for (auto _ : state) {
    thermal.temperature_map(fm->state().tig, fm->state().time, T);
    benchmark::DoNotOptimize(T.data());
  }
}
BENCHMARK(BM_Fig3_GroundThermalMap)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
