#include "enkf/localization.h"

#include <cmath>

namespace wfire::enkf {

double gaspari_cohn(double r, double c) {
  if (c <= 0) return r == 0 ? 1.0 : 0.0;
  const double z = std::abs(r) / c;
  if (z >= 2.0) return 0.0;
  if (z <= 1.0) {
    // -z^5/4 + z^4/2 + 5z^3/8 - 5z^2/3 + 1
    return ((((-0.25 * z + 0.5) * z + 0.625) * z - 5.0 / 3.0) * z * z) + 1.0;
  }
  // z^5/12 - z^4/2 + 5z^3/8 + 5z^2/3 - 5z + 4 - (2/3)/z
  return ((((z / 12.0 - 0.5) * z + 0.625) * z + 5.0 / 3.0) * z - 5.0) * z +
         4.0 - (2.0 / 3.0) / z;
}

double gaspari_cohn_2d(double x1, double y1, double x2, double y2, double c) {
  return gaspari_cohn(std::hypot(x2 - x1, y2 - y1), c);
}

}  // namespace wfire::enkf
