#include "core/data_pool.h"

#include <stdexcept>

#include "obs/obs_function.h"

namespace wfire::core {

DataPool::DataPool(std::unique_ptr<fire::FireModel> truth, DataPoolOptions opt,
                   util::Rng rng)
    : truth_(std::move(truth)), opt_(opt), rng_(rng) {
  if (!truth_) throw std::invalid_argument("DataPool: null truth model");
}

ObservationImage DataPool::observe_at(double time) {
  while (truth_->state().time < time - 1e-9) {
    const double remaining = time - truth_->state().time;
    truth_->step_uniform_wind(std::min(opt_.dt, remaining), opt_.wind_u,
                              opt_.wind_v);
  }
  ObservationImage obs;
  obs.time = truth_->state().time;
  obs.noise_std = opt_.noise_std;
  obs.image = obs::heat_flux_image(truth_->fuel(), truth_->state().tig,
                                   truth_->state().time);
  for (double& v : obs.image) v += opt_.noise_std * rng_.normal();
  return obs;
}

}  // namespace wfire::core
