// Uniform node-centered 2-D grid geometry. Fields live on nodes (i, j) at
// positions (x0 + i*dx, y0 + j*dy). The fire mesh of the paper is such a
// grid with dx = dy = 6 m.
#pragma once

#include <cmath>
#include <stdexcept>

namespace wfire::grid {

struct Grid2D {
  int nx = 0, ny = 0;      // number of nodes in x and y
  double x0 = 0, y0 = 0;   // position of node (0, 0)
  double dx = 1, dy = 1;   // node spacing [m]

  Grid2D() = default;
  Grid2D(int nx_, int ny_, double dx_, double dy_, double x0_ = 0,
         double y0_ = 0)
      : nx(nx_), ny(ny_), x0(x0_), y0(y0_), dx(dx_), dy(dy_) {
    if (nx_ < 2 || ny_ < 2 || dx_ <= 0 || dy_ <= 0)
      throw std::invalid_argument("Grid2D: need >= 2 nodes, positive spacing");
  }

  [[nodiscard]] double x(int i) const { return x0 + i * dx; }
  [[nodiscard]] double y(int j) const { return y0 + j * dy; }

  [[nodiscard]] double width() const { return (nx - 1) * dx; }
  [[nodiscard]] double height() const { return (ny - 1) * dy; }

  [[nodiscard]] bool contains_point(double px, double py) const {
    return px >= x0 && px <= x0 + width() && py >= y0 && py <= y0 + height();
  }

  // Fractional index of a physical point; callers clamp as needed.
  [[nodiscard]] double fx(double px) const { return (px - x0) / dx; }
  [[nodiscard]] double fy(double py) const { return (py - y0) / dy; }

  [[nodiscard]] bool same_geometry(const Grid2D& o, double tol = 1e-12) const {
    return nx == o.nx && ny == o.ny && std::abs(x0 - o.x0) < tol &&
           std::abs(y0 - o.y0) < tol && std::abs(dx - o.dx) < tol &&
           std::abs(dy - o.dy) < tol;
  }
};

}  // namespace wfire::grid
