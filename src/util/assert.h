// Lightweight assertion macro used in hot loops. Unlike <cassert> it stays
// active in RelWithDebInfo builds unless WFIRE_DISABLE_ASSERT is defined, so
// index errors surface during benchmarking as well as in tests.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(WFIRE_DISABLE_ASSERT)
#define WFIRE_ASSERT(cond, msg) ((void)0)
#else
#define WFIRE_ASSERT(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "WFIRE_ASSERT failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, #cond, msg);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
#endif
