// Substrate benchmark: the reaction-diffusion-convection fire model (the
// paper's ref [12], used by its earlier regularized-EnKF work) against the
// level set model of Sec. 2 — the two fire representations this project
// line assimilates into.
//
// Expected shapes: the RD front speed grows with the heating strength A and
// with wind; per-step cost is comparable to a level set step at equal
// resolution, but the RD model needs a much smaller dt (explicit diffusion
// bound dt <= h^2/4k), which is why the level set formulation wins for
// real-time use — the tradeoff the project's evolution reflects.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fire/model.h"
#include "fire/reaction_diffusion.h"

using namespace wfire;
using namespace wfire::fire;

namespace {

grid::Grid2D strip_grid() { return grid::Grid2D(121, 41, 2.0, 2.0); }

double rd_front_speed(double A, double wind) {
  const grid::Grid2D g = strip_grid();
  RdFireParams p;
  p.A = A;
  RdFireModel model(g, p);
  model.ignite(30.0, 40.0, 10.0);
  const double dt = 0.45 * model.stable_dt();
  for (int s = 0; s < static_cast<int>(20.0 / dt); ++s)
    model.step(dt, wind, 0.0);
  const double x0 = model.front_position_x();
  const double t0 = model.state().time;
  for (int s = 0; s < static_cast<int>(40.0 / dt); ++s)
    model.step(dt, wind, 0.0);
  return (model.front_position_x() - x0) / (model.state().time - t0);
}

void print_rd_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Substrate: reaction-diffusion fire model (ref [12]) "
              "===\n");
  std::printf("%10s %10s %14s\n", "A[K/s]", "wind[m/s]", "front[m/s]");
  for (const double A : {120.0, 180.0, 260.0})
    std::printf("%10.0f %10.1f %14.3f\n", A, 0.0, rd_front_speed(A, 0.0));
  std::printf("%10.0f %10.1f %14.3f   (wind advection)\n", 180.0, 0.5,
              rd_front_speed(180.0, 0.5));

  const grid::Grid2D g = strip_grid();
  RdFireModel rd(g);
  const fire::FuelCategory& grass = fuel_catalog()[kFuelShortGrass];
  std::printf("stability: RD dt <= %.3f s at h = 2 m, level set dt <= "
              "%.3f s (CFL 0.9, Smax = %.1f m/s)\n\n",
              rd.stable_dt(), 0.9 * 2.0 / grass.Smax, grass.Smax);
}

}  // namespace

static void BM_RdFire_Step(benchmark::State& state) {
  print_rd_table();
  const grid::Grid2D g = strip_grid();
  RdFireModel model(g);
  model.ignite(30.0, 40.0, 10.0);
  const double dt = 0.45 * model.stable_dt();
  for (auto _ : state) {
    model.step(dt, 0.5, 0.0);
    benchmark::DoNotOptimize(model.state().T.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.nx) * g.ny);
}
BENCHMARK(BM_RdFire_Step)->Unit(benchmark::kMicrosecond);

static void BM_RdFire_LevelSetStepSameGrid(benchmark::State& state) {
  const grid::Grid2D g = strip_grid();
  FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                  terrain_flat(g));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{30.0, 40.0, 10.0, 0.0}}});
  for (auto _ : state) {
    const FireOutputs out = model.step_uniform_wind(0.25, 0.5, 0.0);
    benchmark::DoNotOptimize(out.total_sensible_power);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.nx) * g.ny);
}
BENCHMARK(BM_RdFire_LevelSetStepSameGrid)->Unit(benchmark::kMicrosecond);

// Simulated-minute cost at each model's stable step: the real-time metric.
static void BM_RdFire_SimulatedMinute(benchmark::State& state) {
  const grid::Grid2D g = strip_grid();
  for (auto _ : state) {
    RdFireModel model(g);
    model.ignite(30.0, 40.0, 10.0);
    const double dt = 0.45 * model.stable_dt();
    for (int s = 0; s < static_cast<int>(60.0 / dt); ++s)
      model.step(dt, 0.5, 0.0);
    benchmark::DoNotOptimize(model.mean_fuel());
  }
}
BENCHMARK(BM_RdFire_SimulatedMinute)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_RdFire_LevelSetSimulatedMinute(benchmark::State& state) {
  const grid::Grid2D g = strip_grid();
  for (auto _ : state) {
    FireModel model(g, uniform_fuel(g.nx, g.ny, kFuelShortGrass),
                    terrain_flat(g));
    model.ignite({levelset::Ignition{
        levelset::CircleIgnition{30.0, 40.0, 10.0, 0.0}}});
    const double dt = 0.5;  // CFL-stable at h = 2 m for grass
    for (int s = 0; s < static_cast<int>(60.0 / dt); ++s)
      model.step_uniform_wind(dt, 0.5, 0.0);
    benchmark::DoNotOptimize(model.burned_area());
  }
}
BENCHMARK(BM_RdFire_LevelSetSimulatedMinute)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
