// Section 2.3 configuration table: "We have used time step 0.5 s with the
// 60 m finest atmospheric mesh step and 6 m fire mesh step, which satisfied
// the CFL stability conditions in the fire and in the atmosphere."
//
// The harness sweeps the time step at the paper's meshes and reports the
// fire CFL (Smax * dt / h_fire), the atmospheric advective CFL, and an
// empirical stability verdict from a short coupled run. Expected shape:
// dt = 0.5 s comfortably stable (the paper's choice); large dt first breaks
// the fire CFL at the 6 m mesh.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "coupling/coupled.h"

using namespace wfire;

namespace {

constexpr double kAtmosDx = 60.0;
constexpr int kRefine = 10;  // 6 m fire mesh

std::unique_ptr<coupling::CoupledModel> make_model() {
  const grid::Grid3D g(12, 12, 8, kAtmosDx, kAtmosDx, kAtmosDx);
  atmos::AmbientProfile amb;
  amb.wind_u = 5.0;
  coupling::CoupledOptions opt;
  opt.refine = kRefine;
  auto model = std::make_unique<coupling::CoupledModel>(
      g, amb, fire::kFuelShortGrass, opt);
  model->ignite({levelset::Ignition{
      levelset::CircleIgnition{360.0, 360.0, 30.0, 0.0}}});
  return model;
}

struct CflRow {
  double dt;
  double fire_cfl;
  double atmos_cfl;
  bool cfl_ok;     // both CFL numbers below 1 (the paper's criterion)
  bool blew_up;    // empirical divergence within the test window
};

CflRow run_at_dt(double dt) {
  CflRow row{dt, 0, 0, true, false};
  auto model = make_model();
  const int steps = static_cast<int>(std::min(120.0 / dt, 240.0));
  for (int s = 0; s < steps; ++s) {
    const coupling::CoupledStepInfo info = model->step(dt);
    row.fire_cfl = std::max(row.fire_cfl, info.fire_cfl);
    row.atmos_cfl = std::max(row.atmos_cfl, info.atmos.cfl);
    if (!std::isfinite(info.atmos.max_w) || info.atmos.max_w > 50.0 ||
        !std::isfinite(info.fire.total_sensible_power)) {
      row.blew_up = true;
      break;
    }
  }
  row.cfl_ok = row.fire_cfl <= 1.0 && row.atmos_cfl <= 1.0;
  return row;
}

void print_cfl_table() {
  static bool done = false;
  if (done) return;
  done = true;

  std::printf("\n=== Sec. 2.3 table: CFL at the 60 m / 6 m meshes ===\n");
  std::printf("(the diffusive upwind schemes fail gracefully above CFL 1 —\n"
              " the front stalls or smears instead of producing NaNs, so the\n"
              " paper's criterion is the CFL bound itself)\n");
  std::printf("%8s %12s %12s %10s %10s %8s\n", "dt[s]", "fire_CFL",
              "atmos_CFL", "CFL_ok", "blew_up", "note");
  for (const double dt : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const CflRow row = run_at_dt(dt);
    std::printf("%8.2f %12.3f %12.3f %10s %10s %8s\n", row.dt, row.fire_cfl,
                row.atmos_cfl, row.cfl_ok ? "yes" : "NO",
                row.blew_up ? "yes" : "no", dt == 0.5 ? "paper" : "");
  }
  const fire::FuelCategory& grass = fire::fuel_catalog()[fire::kFuelShortGrass];
  std::printf("analytic fire CFL bound at dt=0.5: Smax*dt/h = %.3f\n\n",
              grass.Smax * 0.5 / (kAtmosDx / kRefine));
}

}  // namespace

static void BM_Cfl_CoupledStepAtDt(benchmark::State& state) {
  print_cfl_table();
  const double dt = static_cast<double>(state.range(0)) / 100.0;
  auto model = make_model();
  for (auto _ : state) {
    const coupling::CoupledStepInfo info = model->step(dt);
    benchmark::DoNotOptimize(info.fire_cfl);
  }
  state.counters["dt_s"] = dt;
}
BENCHMARK(BM_Cfl_CoupledStepAtDt)
    ->Unit(benchmark::kMillisecond)
    ->Arg(25)    // 0.25 s
    ->Arg(50)    // 0.50 s (paper)
    ->Arg(100);  // 1.00 s

// Cost of meeting a fixed simulated horizon vs dt: halving dt doubles the
// work, which is the real-time budget tradeoff behind the paper's choice.
static void BM_Cfl_SimulatedMinutePerDt(benchmark::State& state) {
  const double dt = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto model = make_model();
    const int steps = static_cast<int>(60.0 / dt);
    for (int s = 0; s < steps; ++s) model->step(dt);
    benchmark::DoNotOptimize(model->fire_model().burned_area());
  }
  state.counters["dt_s"] = dt;
}
BENCHMARK(BM_Cfl_SimulatedMinutePerDt)
    ->Unit(benchmark::kMillisecond)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1);

BENCHMARK_MAIN();
