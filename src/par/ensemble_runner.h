// Member-parallel execution with phase timing — the "advancing the ensemble
// in time" half of the paper's Fig. 2, where each ensemble member runs
// independently on its subset of processors and the EnKF is the global
// synchronization point. The timing breakdown feeds the Fig. 2 scaling
// bench.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "par/thread_pool.h"

namespace wfire::par {

struct PhaseTiming {
  std::string name;
  double seconds = 0;
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(int threads = 0) : pool_(threads) {}

  [[nodiscard]] int threads() const { return pool_.size(); }

  // Runs task(k) for each member k in parallel; records the phase wall time
  // under `name`. Each member task's nested OpenMP regions are narrowed to
  // pool_size / min(members, pool_size) threads so member-level and
  // cell-level parallelism compose instead of oversubscribing.
  void run_phase(const std::string& name, int members,
                 const std::function<void(int)>& task);

  // Runs a serial (all-processors) phase, e.g. the EnKF analysis.
  void run_serial_phase(const std::string& name,
                        const std::function<void()>& task);

  // Runs a fused batched phase (e.g. the SoA ensemble advance) on the
  // calling thread with cell-level OpenMP widened to the pool width — the
  // inverse decomposition of run_phase.
  void run_batch_phase(const std::string& name,
                       const std::function<void()>& task);

  [[nodiscard]] const std::vector<PhaseTiming>& timings() const {
    return timings_;
  }
  void clear_timings() { timings_.clear(); }

  // Total wall seconds across recorded phases.
  [[nodiscard]] double total_seconds() const;

 private:
  ThreadPool pool_;
  std::vector<PhaseTiming> timings_;
};

}  // namespace wfire::par
