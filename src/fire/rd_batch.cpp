#include "fire/rd_batch.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::fire {

namespace {
int round_up(int n, int pad) { return ((n + pad - 1) / pad) * pad; }
}  // namespace

RdFireBatch::RdFireBatch(const grid::Grid2D& g, RdFireParams p, int members,
                         int simd_pad)
    : grid_(g), p_(p), members_(members) {
  if (members_ < 1) throw std::invalid_argument("RdFireBatch: members < 1");
  if (p_.k <= 0 || p_.A < 0 || p_.B <= 0 || p_.C < 0 || p_.Cs < 0)
    throw std::invalid_argument("RdFireBatch: invalid parameters");
  const int pad = std::max(1, simd_pad);
  lay_ = levelset::BatchLayout{g.nx, g.ny, round_up(members_, pad)};
  T_.assign(lay_.size(), p_.Ta);
  beta_.assign(lay_.size(), 0.0);
  T_new_ = T_;
  beta_new_ = beta_;
  wind_u_.assign(lay_.stride, 0.0);
  wind_v_.assign(lay_.stride, 0.0);
  // Real lanes start with fresh fuel (RdFireModel ctor semantics); padding
  // lanes keep beta = 0 so they never react.
  const std::size_t cells = lay_.cells();
  for (std::size_t c = 0; c < cells; ++c)
    for (int k = 0; k < members_; ++k) beta_[c * lay_.stride + k] = 1.0;
}

double RdFireBatch::stable_dt() const {
  const double h2 = std::min(grid_.dx * grid_.dx, grid_.dy * grid_.dy);
  return h2 / (4.0 * p_.k);
}

void RdFireBatch::ignite_member(int k, double cx, double cy, double radius,
                                double T_hot) {
  if (k < 0 || k >= members_)
    throw std::invalid_argument("RdFireBatch: ignite member out of range");
  for (int j = 0; j < grid_.ny; ++j)
    for (int i = 0; i < grid_.nx; ++i) {
      const double d = std::hypot(grid_.x(i) - cx, grid_.y(j) - cy);
      if (d <= radius)
        T_[(static_cast<std::size_t>(j) * grid_.nx + i) * lay_.stride + k] =
            T_hot;
    }
}

void RdFireBatch::set_member_wind(int k, double vx, double vy) {
  if (k < 0 || k >= members_)
    throw std::invalid_argument("RdFireBatch: wind member out of range");
  wind_u_[k] = vx;
  wind_v_[k] = vy;
}

void RdFireBatch::step(double dt) {
  if (dt <= 0) throw std::invalid_argument("RdFireBatch::step: dt <= 0");
  if (dt > stable_dt() * (1.0 + 1e-9))
    throw std::invalid_argument(
        "RdFireBatch::step: dt exceeds the diffusive stability bound");
  const int nx = grid_.nx, ny = grid_.ny, stride = lay_.stride;
  const double ihx = 1.0 / grid_.dx, ihy = 1.0 / grid_.dy;
  const double ihx2 = ihx * ihx, ihy2 = ihy * ihy;
  const double kd = p_.k, A = p_.A, B = p_.B, C = p_.C, Cs = p_.Cs,
               Ta = p_.Ta;
  const double* wu = wind_u_.data();
  const double* wv = wind_v_.data();
  const double* T = T_.data();
  const double* beta = beta_.data();
  double* Tn = T_new_.data();
  double* bn = beta_new_.data();

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int cell = j * nx + i;
      // Clamped neighbours, exactly Array2D::at_clamped semantics.
      const int xm = i > 0 ? cell - 1 : cell;
      const int xp = i < nx - 1 ? cell + 1 : cell;
      const int ym = j > 0 ? cell - nx : cell;
      const int yp = j < ny - 1 ? cell + nx : cell;
      const double* Tc = T + static_cast<std::size_t>(cell) * stride;
      const double* Txm = T + static_cast<std::size_t>(xm) * stride;
      const double* Txp = T + static_cast<std::size_t>(xp) * stride;
      const double* Tym = T + static_cast<std::size_t>(ym) * stride;
      const double* Typ = T + static_cast<std::size_t>(yp) * stride;
      const double* bc = beta + static_cast<std::size_t>(cell) * stride;
      double* To = Tn + static_cast<std::size_t>(cell) * stride;
      double* bo = bn + static_cast<std::size_t>(cell) * stride;
      WFIRE_PRAGMA_OMP(omp simd)
      for (int k = 0; k < stride; ++k) {
        const double diff = kd * ((Txm[k] - 2 * Tc[k] + Txp[k]) * ihx2 +
                                  (Tym[k] - 2 * Tc[k] + Typ[k]) * ihy2);
        const double adv = (wu[k] > 0 ? wu[k] * (Tc[k] - Txm[k]) * ihx
                                      : wu[k] * (Txp[k] - Tc[k]) * ihx) +
                           (wv[k] > 0 ? wv[k] * (Tc[k] - Tym[k]) * ihy
                                      : wv[k] * (Typ[k] - Tc[k]) * ihy);
        const double dT = Tc[k] - Ta;
        const double r = dT <= 0 ? 0.0 : std::exp(-B / dT);
        const double dTdt = diff - adv + A * bc[k] * r - C * (Tc[k] - Ta);
        To[k] = std::max(Tc[k] + dt * dTdt, Ta * 0.5);
        bo[k] = std::clamp(bc[k] - dt * Cs * bc[k] * r, 0.0, 1.0);
      }
    }
  }
  std::swap(T_, T_new_);
  std::swap(beta_, beta_new_);
  time_ += dt;
}

util::Array2D<double> RdFireBatch::T_of(int k) const {
  util::Array2D<double> out(grid_.nx, grid_.ny);
  const std::size_t cells = lay_.cells();
  for (std::size_t c = 0; c < cells; ++c)
    out.data()[c] = T_[c * lay_.stride + k];
  return out;
}

util::Array2D<double> RdFireBatch::beta_of(int k) const {
  util::Array2D<double> out(grid_.nx, grid_.ny);
  const std::size_t cells = lay_.cells();
  for (std::size_t c = 0; c < cells; ++c)
    out.data()[c] = beta_[c * lay_.stride + k];
  return out;
}

}  // namespace wfire::fire
