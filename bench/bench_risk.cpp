// Monte Carlo burn-probability products end to end: a K-member sweep
// through one scenario-server fleet reduced into a probability grid, and
// the product-cache hit path that serves repeat fetches of the finished
// grid without re-simulation.
//
// Expected shape: sweep throughput (member runs/s, fleet cell-steps/s)
// scales with pool threads until the members' stencil work saturates the
// cores; the reduction itself is a per-member O(cells) fold and never
// shows. Cache hits are a key hash plus an LRU splice — nanoseconds,
// independent of K and grid size — which is the entire point of serving
// products instead of simulations.
//
// BM_Risk_Sweep arguments: (members, threads).
#include <benchmark/benchmark.h>

#include "risk/product_cache.h"
#include "risk/sweep.h"

using namespace wfire;

namespace {

serve::ScenarioSpec bench_base() {
  serve::ScenarioSpec spec;
  spec.nx = spec.ny = 41;
  spec.wind_u = 2.0;
  spec.wind_v = 0.5;
  spec.wind_jitter = 0.5;
  spec.seed = 9000;
  const double cx = 0.4 * (spec.nx - 1) * spec.dx;
  const double cy = 0.5 * (spec.ny - 1) * spec.dy;
  spec.ignitions = {
      levelset::Ignition{levelset::CircleIgnition{cx, cy, 15.0, 0.0}}};
  return spec;
}

risk::PerturbationSpec bench_pert() {
  risk::PerturbationSpec pert;
  pert.wind_speed_sigma = 0.5;
  pert.wind_dir_sigma = 0.2;
  pert.moisture_sigma = 0.15;
  pert.burn_time_sigma = 0.15;
  pert.ignition_jitter = 6.0;
  pert.seed = 77;
  return pert;
}

}  // namespace

static void BM_Risk_Sweep(benchmark::State& state) {
  const serve::ScenarioSpec base = bench_base();
  risk::SweepOptions opt;
  opt.members = static_cast<int>(state.range(0));
  opt.threads = static_cast<int>(state.range(1));
  opt.horizon = 30.0;
  // Force every member through the pool: each member's advance is small
  // enough for default admission to serve it inline on the caller thread,
  // which would serialize the sweep and hide the pool-width axis.
  opt.inline_cell_steps = 0;

  long long runs = 0;
  for (auto _ : state) {
    risk::SweepDriver driver(base, bench_pert(), opt);
    const risk::BurnProbabilityGrid grid = driver.run();
    benchmark::DoNotOptimize(grid.probability.data());
    runs += opt.members;
    state.counters["inline_members"] =
        static_cast<double>(driver.last_inline());
    state.counters["pooled_members"] =
        static_cast<double>(driver.last_pooled());
  }
  const double cell_steps_per_run =
      (opt.horizon / base.dt) * base.nx * base.ny;
  state.counters["runs_per_s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["cell_steps_per_s"] = benchmark::Counter(
      static_cast<double>(runs) * cell_steps_per_run,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Risk_Sweep)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({64, 4})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_Risk_CacheFetch(benchmark::State& state) {
  const serve::ScenarioSpec base = bench_base();
  const risk::PerturbationSpec pert = bench_pert();
  risk::SweepOptions opt;
  opt.members = 8;
  opt.horizon = 10.0;

  risk::ProductCache cache(4);
  (void)cache.fetch(base, pert, opt);  // warm: the one sweep happens here

  long long cells = 0;
  for (auto _ : state) {
    const auto grid = cache.fetch(base, pert, opt);
    benchmark::DoNotOptimize(grid.get());
    cells += static_cast<long long>(grid->nx) * grid->ny;
  }
  state.counters["fetches_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cells_per_s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
  state.counters["sweeps_run"] = static_cast<double>(cache.sweeps_run());
}
BENCHMARK(BM_Risk_CacheFetch)->Unit(benchmark::kMicrosecond);
