// Blackbody radiometry for the synthetic infrared scene (paper Sec. 3.2).
// The WASP camera the paper renders for is a mid-wave (3-5 micrometer)
// imager; band radiance is integrated from the Planck function and inverted
// to brightness temperature for diagnostics.
#pragma once

namespace wfire::scene {

inline constexpr double kStefanBoltzmann = 5.670374419e-8;  // [W m^-2 K^-4]
inline constexpr double kMidwaveLo = 3.0e-6;                // [m]
inline constexpr double kMidwaveHi = 5.0e-6;                // [m]

// Spectral radiance B(lambda, T) [W m^-2 sr^-1 m^-1].
[[nodiscard]] double planck_spectral_radiance(double lambda_m, double T);

// Band-integrated radiance over [lo, hi] meters via midpoint quadrature
// with n panels [W m^-2 sr^-1].
[[nodiscard]] double band_radiance(double T, double lo = kMidwaveLo,
                                   double hi = kMidwaveHi, int n = 64);

// Inverts band_radiance by bisection; returns 0 for non-positive radiance.
[[nodiscard]] double brightness_temperature(double radiance,
                                            double lo = kMidwaveLo,
                                            double hi = kMidwaveHi);

// Total hemispheric exitance sigma T^4 [W m^-2].
[[nodiscard]] double stefan_boltzmann_exitance(double T);

}  // namespace wfire::scene
