// WrfLite: the atmospheric dynamical core standing in for WRF (DESIGN.md
// lists the substitution). Anelastic/Boussinesq equations, RK2 (Heun) time
// stepping over the advection/buoyancy/diffusion tendencies, and a pressure
// projection after each stage enforcing the discrete anelastic constraint
// div(u) = 0 with a geometric multigrid Poisson solver.
//
// The paper's reference configuration (Sec. 2.3) — dt = 0.5 s with a 60 m
// horizontal step — is the default the benches use.
#pragma once

#include <memory>

#include "atmos/dynamics.h"
#include "atmos/multigrid.h"

namespace wfire::atmos {

struct WrfLiteOptions {
  DynamicsParams dynamics;
  MultigridOptions mg;
  bool use_rk2 = true;          // false = forward Euler (substrate ablation)
  double projection_tol = 1e-6; // overrides mg.tol
};

struct WrfLiteStepInfo {
  double cfl = 0;               // advective CFL of the step taken
  double max_div_after = 0;     // residual divergence after projection
  int mg_cycles = 0;            // V-cycles used by the final projection
  double max_w = 0;             // updraft diagnostic [m/s]
};

class WrfLite {
 public:
  WrfLite(const grid::Grid3D& g, const AmbientProfile& amb,
          WrfLiteOptions opt = {});

  // Fire forcing for subsequent steps: potential-temperature and vapor
  // tendencies per cell [K/s], [kg/kg/s]. Pass nullptr to clear. The arrays
  // must outlive the next step() call (the coupler owns them).
  void set_forcing(const util::Array3D<double>* theta_src,
                   const util::Array3D<double>* qv_src);

  WrfLiteStepInfo step(double dt);

  [[nodiscard]] const grid::Grid3D& grid() const { return grid_; }
  [[nodiscard]] const AmbientProfile& ambient() const { return amb_; }
  [[nodiscard]] const AtmosState& state() const { return state_; }
  [[nodiscard]] AtmosState& state() { return state_; }
  [[nodiscard]] double time() const { return time_; }

  // Projects the current velocity onto the divergence-free subspace
  // (also called internally after each RK stage).
  SolveStats project();

  // Projection warm start: phi of the last solve seeds the next one, and is
  // part of the reproducible solver state. Exposed so the batched coupled
  // ensemble (coupling/coupled_batch) can round-trip it — and the clock —
  // bitwise across load/store.
  [[nodiscard]] const Field3& projection_potential() const { return phi_; }
  void set_projection_potential(const Field3& phi) { phi_ = phi; }
  void set_time(double t) { time_ = t; }

 private:
  grid::Grid3D grid_;
  AmbientProfile amb_;
  WrfLiteOptions opt_;
  AtmosState state_;
  double time_ = 0;
  std::unique_ptr<Multigrid> mg_;
  const util::Array3D<double>* theta_src_ = nullptr;
  const util::Array3D<double>* qv_src_ = nullptr;
  // Scratch.
  Tendencies tend1_, tend2_;
  AtmosState predictor_;
  Field3 rhs_, phi_;
  SolveStats last_proj_;
};

}  // namespace wfire::atmos
