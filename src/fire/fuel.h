// Fuel categories for the semi-empirical spread model (paper Sec. 2.1,
// after Clark et al. 2004 / Rothermel 1972). Each category carries the
// spread-law coefficients (R0, a, b, d, Smax), the fuel load and the
// post-frontal mass-loss e-folding time ("rapid mass loss in grass, slow
// mass loss in larger fuel particles"), plus heat content and moisture for
// the sensible/latent flux split.
//
// Values are representative of the 13 Anderson (1982) fire-behavior
// categories; laboratory-exact coefficients are proprietary to the original
// experiments, so these are chosen to reproduce realistic spread rates
// (grass head fire ~ 1 m/s in strong wind, timber litter ~ cm/s).
#pragma once

#include <string>
#include <vector>

#include "util/array2d.h"

namespace wfire::fire {

struct FuelCategory {
  std::string name;
  // Spread law S = R0 + a * (v . n)^b + d * (grad z . n), clipped to
  // [0, Smax]. Units: R0, Smax [m/s]; a [ (m/s)^(1-b) ]; b, d dimensionless.
  double R0 = 0.02;
  double a = 0.30;
  double b = 1.20;
  double d = 0.10;
  double Smax = 2.0;
  // Fuel bed: load w0 [kg/m^2], mass-loss e-folding time tau [s], heat of
  // combustion h [J/kg], fuel moisture fraction M (mass water / dry mass),
  // and the fraction of released heat carried as latent flux.
  double w0 = 0.5;
  double tau = 20.0;
  double h = 1.74e7;
  double M = 0.08;
  double latent_fraction = 0.15;
};

// The built-in 13-category catalog (index 0..12). Index 0 ("short grass")
// matches the paper's grassfire experiments.
[[nodiscard]] const std::vector<FuelCategory>& fuel_catalog();

// Look up by name; throws std::invalid_argument for unknown names.
[[nodiscard]] const FuelCategory& fuel_by_name(const std::string& name);

enum : int {
  kFuelShortGrass = 0,
  kFuelTimberGrass = 1,
  kFuelTallGrass = 2,
  kFuelChaparral = 3,
  kFuelBrush = 4,
  kFuelDormantBrush = 5,
  kFuelSouthernRough = 6,
  kFuelClosedTimberLitter = 7,
  kFuelHardwoodLitter = 8,
  kFuelTimberUnderstory = 9,
  kFuelLightSlash = 10,
  kFuelMediumSlash = 11,
  kFuelHeavySlash = 12,
};

// A map of fuel category indices over a grid, with the catalog it refers to.
struct FuelMap {
  util::Array2D<int> index;              // per node, -1 = no fuel (firebreak)
  std::vector<FuelCategory> catalog = fuel_catalog();

  [[nodiscard]] const FuelCategory* at(int i, int j) const {
    const int c = index(i, j);
    if (c < 0) return nullptr;
    return &catalog[static_cast<std::size_t>(c)];
  }
};

// Uniform fuel map covering the whole grid with one category.
[[nodiscard]] FuelMap uniform_fuel(int nx, int ny, int category);

}  // namespace wfire::fire
