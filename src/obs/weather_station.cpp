#include "obs/weather_station.h"

#include <algorithm>
#include <cmath>

namespace wfire::obs {

WeatherStationOperator::WeatherStationOperator(const grid::Grid2D& g,
                                               StationOperatorOptions opt)
    : grid_(g), opt_(opt) {}

StationComparison WeatherStationOperator::compare(
    const StationReport& rep, const util::Array2D<double>& temperature,
    const util::Array2D<double>& wind_u, const util::Array2D<double>& wind_v,
    const util::Array2D<double>& humidity,
    const util::Array2D<double>& psi) const {
  StationComparison cmp;
  cmp.cell = grid::locate(grid_, rep.x, rep.y);
  cmp.inside = cmp.cell.inside;
  if (!cmp.inside) return cmp;

  cmp.model_temperature = grid::biquadratic(grid_, temperature, rep.x, rep.y);
  cmp.model_wind_u = grid::biquadratic(grid_, wind_u, rep.x, rep.y);
  cmp.model_wind_v = grid::biquadratic(grid_, wind_v, rep.x, rep.y);
  cmp.model_humidity = grid::biquadratic(grid_, humidity, rep.x, rep.y);

  // Fireline proximity: any burning node in the (2r+1)^2 neighborhood of
  // the containing cell.
  const int r = opt_.fireline_check_radius;
  for (int dj = -r; dj <= r + 1 && !cmp.fireline_nearby; ++dj)
    for (int di = -r; di <= r + 1; ++di) {
      const int i = std::clamp(cmp.cell.i + di, 0, grid_.nx - 1);
      const int j = std::clamp(cmp.cell.j + dj, 0, grid_.ny - 1);
      if (psi(i, j) < 0) {
        cmp.fireline_nearby = true;
        break;
      }
    }

  cmp.d_temperature = rep.temperature - cmp.model_temperature;
  cmp.d_wind_u = rep.wind_u - cmp.model_wind_u;
  cmp.d_wind_v = rep.wind_v - cmp.model_wind_v;
  cmp.d_humidity = rep.humidity - cmp.model_humidity;
  return cmp;
}

void WeatherStationOperator::nudge_temperature(
    const StationReport& rep, const StationComparison& cmp, double weight,
    util::Array2D<double>& temperature) const {
  if (!cmp.inside || weight == 0.0) return;
  // Reconstruct the biquadratic stencil around the nearest node and spread
  // the innovation with the squared-weight profile (adjoint nudging).
  const double fi =
      std::clamp(grid_.fx(rep.x), 0.0, static_cast<double>(grid_.nx - 1));
  const double fj =
      std::clamp(grid_.fy(rep.y), 0.0, static_cast<double>(grid_.ny - 1));
  const int ic = std::clamp(static_cast<int>(std::lround(fi)), 1, grid_.nx - 2);
  const int jc = std::clamp(static_cast<int>(std::lround(fj)), 1, grid_.ny - 2);
  const double tx = fi - ic, ty = fj - jc;
  const double wx[3] = {0.5 * tx * (tx - 1.0), 1.0 - tx * tx,
                        0.5 * tx * (tx + 1.0)};
  const double wy[3] = {0.5 * ty * (ty - 1.0), 1.0 - ty * ty,
                        0.5 * ty * (ty + 1.0)};
  double wsum = 0;
  for (int b = 0; b < 3; ++b)
    for (int a = 0; a < 3; ++a) {
      const double w = wx[a] * wy[b];
      wsum += w * w;
    }
  if (wsum <= 0) return;
  const double alpha = weight * cmp.d_temperature / wsum;
  for (int b = -1; b <= 1; ++b)
    for (int a = -1; a <= 1; ++a)
      temperature(ic + a, jc + b) += alpha * wx[a + 1] * wy[b + 1];
}

}  // namespace wfire::obs
