// Minimal leveled logger. Single global sink (stderr), printf-style
// formatting, thread-safe. Components log sparingly; the default level is
// kWarn so tests and benches stay quiet unless something is wrong.
#pragma once

#include <cstdarg>

namespace wfire::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

void log(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#define WFIRE_LOG_DEBUG(...) \
  ::wfire::util::log(::wfire::util::LogLevel::kDebug, __VA_ARGS__)
#define WFIRE_LOG_INFO(...) \
  ::wfire::util::log(::wfire::util::LogLevel::kInfo, __VA_ARGS__)
#define WFIRE_LOG_WARN(...) \
  ::wfire::util::log(::wfire::util::LogLevel::kWarn, __VA_ARGS__)
#define WFIRE_LOG_ERROR(...) \
  ::wfire::util::log(::wfire::util::LogLevel::kError, __VA_ARGS__)

}  // namespace wfire::util
