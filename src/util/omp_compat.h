// OpenMP pragma shim: WFIRE_PRAGMA_OMP(omp parallel for ...) expands to the
// real pragma when the build enables OpenMP (WFIRE_HAVE_OPENMP) and to
// nothing otherwise, so serial builds compile warning-clean without
// -Wunknown-pragmas noise.
#pragma once

#if defined(WFIRE_HAVE_OPENMP)
#define WFIRE_OMP_STRINGIFY(...) #__VA_ARGS__
#define WFIRE_PRAGMA_OMP(...) _Pragma(WFIRE_OMP_STRINGIFY(__VA_ARGS__))
#include <omp.h>
#else
#define WFIRE_PRAGMA_OMP(...)
#endif

namespace wfire::util {

// RAII override of the calling thread's OpenMP team width (the nthreads ICV
// is per-thread, so pool workers can be narrowed independently). Lets
// member-level pool parallelism and cell-level OpenMP parallelism compose:
// member phases narrow each worker's nested regions, fused batched phases
// widen the caller to the full pool width. No-op in serial builds and for
// n <= 0.
class ScopedOmpNumThreads {
 public:
#if defined(WFIRE_HAVE_OPENMP)
  explicit ScopedOmpNumThreads(int n) : prev_(omp_get_max_threads()) {
    if (n > 0) omp_set_num_threads(n);
  }
  ~ScopedOmpNumThreads() { omp_set_num_threads(prev_); }
#else
  explicit ScopedOmpNumThreads(int) {}
  ~ScopedOmpNumThreads() = default;
#endif
  ScopedOmpNumThreads(const ScopedOmpNumThreads&) = delete;
  ScopedOmpNumThreads& operator=(const ScopedOmpNumThreads&) = delete;

 private:
#if defined(WFIRE_HAVE_OPENMP)
  int prev_;
#endif
};

}  // namespace wfire::util
