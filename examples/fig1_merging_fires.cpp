// The paper's Fig. 1 scenario: a coupled fire-atmosphere simulation where
// fire propagates from two line ignitions and one circle ignition that
// merge. Writes a series of false-color heat flux frames with the
// near-ground wind sampled on a coarse arrow grid printed to stdout.
//
// Run:  ./fig1_merging_fires [minutes=6] [wind=3] [frames=6]
#include <cstdio>

#include "coupling/coupled.h"
#include "obs/obs_function.h"
#include "util/config.h"
#include "util/image_io.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const double minutes = cfg.get_double("minutes", 6.0);
  const double wind = cfg.get_double("wind", 3.0);
  const int frames = cfg.get_int("frames", 6);

  // 16 x 16 atmosphere cells at 60 m (~1 km), 6 m fire mesh.
  const grid::Grid3D atmos_grid(16, 16, 8, 60.0, 60.0, 60.0);
  atmos::AmbientProfile ambient;
  ambient.wind_u = wind;
  coupling::CoupledOptions opt;
  opt.refine = 10;
  coupling::CoupledModel model(atmos_grid, ambient, fire::kFuelShortGrass,
                               opt);

  const double domain = atmos_grid.nx * atmos_grid.dx;
  const double cx = 0.35 * domain;
  model.ignite({
      levelset::Ignition{levelset::LineIgnition{cx - 80, 0.38 * domain,
                                                cx + 40, 0.38 * domain, 8.0,
                                                0.0}},
      levelset::Ignition{levelset::LineIgnition{cx - 80, 0.62 * domain,
                                                cx + 40, 0.62 * domain, 8.0,
                                                0.0}},
      levelset::Ignition{
          levelset::CircleIgnition{cx, 0.5 * domain, 25.0, 0.0}},
  });

  const double dt = 0.5;
  const int steps = static_cast<int>(minutes * 60.0 / dt);
  const int frame_every = steps / frames;
  int frame = 0;
  for (int s = 1; s <= steps; ++s) {
    const coupling::CoupledStepInfo info = model.step(dt);
    if (s % frame_every == 0) {
      ++frame;
      const fire::FireModel& fm = model.fire_model();
      const util::Array2D<double> flux = obs::heat_flux_image(
          fm.fuel(), fm.state().tig, fm.state().time);
      char name[64];
      std::snprintf(name, sizeof name, "fig1_frame%02d.ppm", frame);
      util::write_false_color(name, flux, 0.0, 60000.0);

      std::printf("t=%5.0f s  frame %s  burned %.2f ha  max updraft %.2f "
                  "m/s\n", s * dt, name, fm.burned_area() / 1e4,
                  info.atmos.max_w);
      // Ground wind arrows on an 8x8 grid (the Fig. 1 arrows).
      std::printf("  ground wind (u,v) [m/s] on coarse grid:\n");
      const auto& wu = model.fire_wind_u();
      const auto& wv = model.fire_wind_v();
      const int stride = wu.nx() / 8;
      for (int j = 7; j >= 0; --j) {
        std::printf("   ");
        for (int i = 0; i < 8; ++i)
          std::printf(" (%5.1f,%5.1f)", wu(i * stride, j * stride),
                      wv(i * stride, j * stride));
        std::printf("\n");
      }
    }
  }
  std::printf("done: %d frames written\n", frame);

  // Machine-readable summary for the golden-value smoke check.
  const fire::FireModel& fm = model.fire_model();
  std::printf("SMOKE burned_area_ha=%.6f\n", fm.burned_area() / 1e4);
  std::printf("SMOKE front_length_m=%.6f\n", fm.front_length());
  return 0;
}
