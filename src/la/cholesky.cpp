#include "la/cholesky.h"

#include "util/omp_compat.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wfire::la {

namespace {

// Reference path: the original unblocked factorization. Returns false on a
// non-positive pivot.
bool try_factor_reference(const Matrix& A, Matrix& L) {
  const int n = A.rows();
  L.resize(n, n);
  L.fill(0.0);
  for (int j = 0; j < n; ++j) {
    double d = A(j, j);
    for (int p = 0; p < j; ++p) d -= L(j, p) * L(j, p);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    L(j, j) = std::sqrt(d);
    const double inv = 1.0 / L(j, j);
    for (int i = j + 1; i < n; ++i) {
      double s = A(i, j);
      for (int p = 0; p < j; ++p) s -= L(i, p) * L(j, p);
      L(i, j) = s * inv;
    }
  }
  return true;
}

// Blocked right-looking factorization: for each panel of nb columns, factor
// the diagonal block unblocked, solve the sub-diagonal panel against it
// (column-oriented, unit stride), then subtract the rank-nb outer product
// from the trailing lower triangle, tiled and threaded. All column accesses
// run down contiguous memory, unlike the reference's strided row walks.
bool try_factor_blocked(const Matrix& A, Matrix& L) {
  const int n = A.rows();
  const int nb = block_size();
  L.resize(n, n);
  double* Ld = L.data();
  const double* Ad = A.data();
  const std::size_t ld = static_cast<std::size_t>(n);

  // Seed L with the lower triangle of A; zero the strict upper triangle.
  for (int j = 0; j < n; ++j) {
    double* cj = Ld + static_cast<std::size_t>(j) * ld;
    std::memset(cj, 0, sizeof(double) * j);
    std::memcpy(cj + j, Ad + static_cast<std::size_t>(j) * ld + j,
                sizeof(double) * (n - j));
  }

  std::vector<std::pair<int, int>> tiles;
  for (int k0 = 0; k0 < n; k0 += nb) {
    const int kb = std::min(nb, n - k0);
    const int rest = k0 + kb;  // first row/col of the trailing matrix

    // 1) Diagonal block, unblocked (updates from previous panels are
    //    already applied, right-looking invariant).
    for (int j = k0; j < rest; ++j) {
      double* cj = Ld + static_cast<std::size_t>(j) * ld;
      double d = cj[j];
      for (int p = k0; p < j; ++p) {
        const double ljp = Ld[static_cast<std::size_t>(p) * ld + j];
        d -= ljp * ljp;
      }
      if (d <= 0.0 || !std::isfinite(d)) return false;
      cj[j] = std::sqrt(d);
      const double inv = 1.0 / cj[j];
      for (int i = j + 1; i < rest; ++i) {
        double s = cj[i];
        for (int p = k0; p < j; ++p)
          s -= Ld[static_cast<std::size_t>(p) * ld + i] *
               Ld[static_cast<std::size_t>(p) * ld + j];
        cj[i] = s * inv;
      }
      // 2) Panel solve for the rows below the block (part of the trsm
      //    L21 <- L21 L11^{-T}, done column by column as the pivots appear).
      for (int p = k0; p < j; ++p) {
        const double ljp = Ld[static_cast<std::size_t>(p) * ld + j];
        if (ljp == 0.0) continue;
        const double* cp = Ld + static_cast<std::size_t>(p) * ld;
        for (int r = rest; r < n; ++r) cj[r] -= cp[r] * ljp;
      }
      for (int r = rest; r < n; ++r) cj[r] *= inv;
    }

    if (rest >= n) break;

    // 3) Trailing update: lower triangle of L(rest:, rest:) minus the
    //    rank-kb product of the freshly solved panel, tiled + threaded.
    tiles.clear();
    for (int j0 = rest; j0 < n; j0 += nb)
      for (int i0 = j0; i0 < n; i0 += nb) tiles.emplace_back(i0, j0);
    const int ntiles = static_cast<int>(tiles.size());
WFIRE_PRAGMA_OMP(omp parallel for schedule(dynamic) if (ntiles > 1))
    for (int t = 0; t < ntiles; ++t) {
      const auto [i0, j0] = tiles[t];
      const int mb = std::min(nb, n - i0);
      const int nbj = std::min(nb, n - j0);
      const bool diag = i0 == j0;
      for (int j = 0; j < nbj; ++j) {
        double* cj = Ld + (static_cast<std::size_t>(j0) + j) * ld + i0;
        const int istart = diag ? j : 0;
        for (int p = k0; p < rest; ++p) {
          const double* cp = Ld + static_cast<std::size_t>(p) * ld;
          const double v = cp[j0 + j];
          if (v == 0.0) continue;
          const double* a = cp + i0;
          for (int i = istart; i < mb; ++i) cj[i] -= a[i] * v;
        }
      }
    }
  }
  return true;
}

bool try_factor(const Matrix& A, Matrix& L) {
  return backend() == Backend::kReference ? try_factor_reference(A, L)
                                          : try_factor_blocked(A, L);
}

}  // namespace

int cholesky_factor(const Matrix& A, Matrix& L, int max_jitter_tries) {
  if (A.rows() != A.cols())
    throw std::invalid_argument("cholesky: matrix not square");
  const int n = A.rows();
  double trace = 0;
  for (int i = 0; i < n; ++i) trace += A(i, i);
  const double base =
      std::numeric_limits<double>::epsilon() * std::max(trace / n, 1.0);

  if (try_factor(A, L)) return 0;
  Matrix Aj = A;
  double shift = base;
  for (int t = 1; t <= max_jitter_tries; ++t) {
    shift *= 100.0;
    for (int i = 0; i < n; ++i) Aj(i, i) = A(i, i) + shift;
    if (try_factor(Aj, L)) return t;
  }
  throw std::runtime_error("cholesky: matrix not SPD (jitter exhausted)");
}

CholeskyResult cholesky(const Matrix& A, int max_jitter_tries) {
  CholeskyResult out;
  out.jitter_tries = cholesky_factor(A, out.L, max_jitter_tries);
  return out;
}

void cholesky_solve(const Matrix& L, Vector& b) {
  const int n = L.rows();
  if (static_cast<int>(b.size()) != n)
    throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward substitution L y = b.
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int p = 0; p < i; ++p) s -= L(i, p) * b[p];
    b[i] = s / L(i, i);
  }
  // Back substitution L^T x = y.
  for (int i = n - 1; i >= 0; --i) {
    double s = b[i];
    for (int p = i + 1; p < n; ++p) s -= L(p, i) * b[p];
    b[i] = s / L(i, i);
  }
}

void cholesky_solve_in_place(const Matrix& L, Matrix& B) {
  const int n = L.rows();
  if (B.rows() != n)
    throw std::invalid_argument("cholesky_solve_in_place: size mismatch");
  const int nrhs = B.cols();
  const double* Ld = L.data();
  const std::size_t ld = static_cast<std::size_t>(n);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) if (nrhs > 1))
  for (int c = 0; c < nrhs; ++c) {
    double* b = B.data() + static_cast<std::size_t>(c) * n;
    // Forward substitution, column-oriented: once b[j] is final, subtract
    // its multiple of column j from the remainder (unit-stride walks).
    for (int j = 0; j < n; ++j) {
      const double* lj = Ld + static_cast<std::size_t>(j) * ld;
      const double yj = b[j] / lj[j];
      b[j] = yj;
      for (int i = j + 1; i < n; ++i) b[i] -= lj[i] * yj;
    }
    // Back substitution with L^T: column i of L is row i of L^T, so the
    // inner dot product also runs down contiguous memory.
    for (int i = n - 1; i >= 0; --i) {
      const double* li = Ld + static_cast<std::size_t>(i) * ld;
      double s = b[i];
      for (int p = i + 1; p < n; ++p) s -= li[p] * b[p];
      b[i] = s / li[i];
    }
  }
}

Matrix cholesky_solve(const Matrix& L, const Matrix& B) {
  Matrix X = B;
  cholesky_solve_in_place(L, X);
  return X;
}

double cholesky_logdet(const Matrix& L) {
  double s = 0;
  for (int i = 0; i < L.rows(); ++i) s += std::log(L(i, i));
  return 2.0 * s;
}

}  // namespace wfire::la
