#include "fire/fuel.h"

#include <stdexcept>

namespace wfire::fire {

const std::vector<FuelCategory>& fuel_catalog() {
  //                     name                    R0      a     b     d    Smax   w0    tau     h       M     latent
  static const std::vector<FuelCategory> catalog = {
      {"short_grass",          0.030, 0.800, 1.20, 0.30, 3.00, 0.35,   20.0, 1.74e7, 0.06, 0.12},
      {"timber_grass",         0.025, 0.600, 1.20, 0.30, 2.20, 0.90,   35.0, 1.74e7, 0.08, 0.14},
      {"tall_grass",           0.035, 0.900, 1.25, 0.30, 3.50, 0.70,   25.0, 1.74e7, 0.07, 0.13},
      {"chaparral",            0.020, 0.450, 1.30, 0.35, 1.80, 3.50,  120.0, 1.86e7, 0.10, 0.18},
      {"brush",                0.015, 0.350, 1.25, 0.30, 1.20, 1.20,   90.0, 1.80e7, 0.10, 0.17},
      {"dormant_brush",        0.015, 0.380, 1.25, 0.30, 1.30, 1.60,  110.0, 1.80e7, 0.10, 0.17},
      {"southern_rough",       0.018, 0.400, 1.25, 0.30, 1.40, 1.10,  100.0, 1.80e7, 0.12, 0.20},
      {"closed_timber_litter", 0.005, 0.120, 1.15, 0.20, 0.35, 0.80,  400.0, 1.90e7, 0.12, 0.20},
      {"hardwood_litter",      0.006, 0.140, 1.15, 0.20, 0.40, 0.90,  350.0, 1.90e7, 0.14, 0.22},
      {"timber_understory",    0.010, 0.250, 1.20, 0.25, 0.90, 2.50,  300.0, 1.90e7, 0.12, 0.20},
      {"light_slash",          0.012, 0.220, 1.20, 0.25, 0.80, 4.00,  500.0, 1.95e7, 0.15, 0.22},
      {"medium_slash",         0.010, 0.200, 1.20, 0.25, 0.70, 7.00,  700.0, 1.95e7, 0.15, 0.22},
      {"heavy_slash",          0.008, 0.180, 1.20, 0.25, 0.60, 13.0, 1000.0, 1.95e7, 0.15, 0.22},
  };
  return catalog;
}

const FuelCategory& fuel_by_name(const std::string& name) {
  for (const auto& f : fuel_catalog())
    if (f.name == name) return f;
  throw std::invalid_argument("fuel_by_name: unknown fuel " + name);
}

FuelMap uniform_fuel(int nx, int ny, int category) {
  if (category < 0 ||
      category >= static_cast<int>(fuel_catalog().size()))
    throw std::invalid_argument("uniform_fuel: bad category index");
  FuelMap map;
  map.index = util::Array2D<int>(nx, ny, category);
  return map;
}

}  // namespace wfire::fire
