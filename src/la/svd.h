// One-sided Jacobi SVD. Used by the EnKF ensemble-space solver (pseudo-
// inverse of H A when observations outnumber members) and by morphing
// diagnostics. Accurate for the small/skinny matrices wfire produces.
#pragma once

#include "la/matrix.h"

namespace wfire::la {

struct SvdResult {
  Matrix U;      // m x r with orthonormal columns
  Vector sigma;  // r singular values, descending
  Matrix V;      // n x r with orthonormal columns, A = U diag(sigma) V^T
};

// Computes the thin SVD of A (any shape); r = min(m, n).
[[nodiscard]] SvdResult svd(const Matrix& A, int max_sweeps = 60);

// Minimum-norm least-squares solve via the pseudo-inverse: x = V S^+ U^T b.
// Singular values below rcond * sigma_max are treated as zero.
[[nodiscard]] Vector svd_solve(const SvdResult& s, const Vector& b,
                               double rcond = 1e-12);

}  // namespace wfire::la
