// Synthetic terrain generators and terrain gradients. The spread law's
// d * (grad z . n) term needs a height field; the paper's experiments use
// idealized terrain, reproduced here (flat, uniform slope, hill, ridge,
// random smooth hills for property tests).
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"
#include "util/rng.h"

namespace wfire::fire {

[[nodiscard]] util::Array2D<double> terrain_flat(const grid::Grid2D& g);

// z = sx * x + sy * y (sx, sy are rise/run slopes).
[[nodiscard]] util::Array2D<double> terrain_slope(const grid::Grid2D& g,
                                                  double sx, double sy);

// Gaussian hill of given peak height and e-folding radius.
[[nodiscard]] util::Array2D<double> terrain_hill(const grid::Grid2D& g,
                                                 double cx, double cy,
                                                 double height, double radius);

// Ridge along y at x = cx with Gaussian cross-section.
[[nodiscard]] util::Array2D<double> terrain_ridge(const grid::Grid2D& g,
                                                  double cx, double height,
                                                  double halfwidth);

// Smooth random terrain: sum of `n` random Gaussian bumps.
[[nodiscard]] util::Array2D<double> terrain_random(const grid::Grid2D& g,
                                                   int n, double height,
                                                   double radius,
                                                   util::Rng& rng);

// Central-difference terrain gradient components.
void terrain_gradient(const grid::Grid2D& g, const util::Array2D<double>& z,
                      util::Array2D<double>& dzdx, util::Array2D<double>& dzdy);

}  // namespace wfire::fire
