// Batched (structure-of-arrays) Poisson smoother/residual/solver for
// ensembles of pressure problems: M independent right-hand sides (one per
// ensemble member) relaxed in one fused sweep with a unit-stride inner
// member loop. Layout: value(i, j, k, m) = data[cell * stride + m] with
// cell = (k * ny + j) * nx + i and stride >= members (padding lanes must be
// zero-filled; the all-zero problem is a fixed point of the sweep).
//
// Per member the red-black update order and arithmetic are exactly
// poisson.cpp's, so a fixed number of batched sweeps is bitwise-equal to
// the same number of scalar sweeps per member.
#pragma once

#include <vector>

#include "atmos/poisson.h"

namespace wfire::atmos {

// One red-black Gauss-Seidel sweep with relaxation omega over all members.
// With freeze_mask != nullptr (length >= stride, entries 1.0 or 0.0) the
// update becomes p[m] += mask[m] * (omega * (gs - p[m])): lanes with mask
// 0.0 are left bitwise untouched, lanes with mask 1.0 get exactly the
// unmasked update (multiplication by 1.0 is exact in IEEE arithmetic).
// MultigridBatch uses this to freeze members that converged at an earlier
// V-cycle count than their batch-mates.
void rbgs_sweep_batch(const grid::Grid3D& g, int stride, const double* rhs,
                      double* phi, double omega,
                      const double* freeze_mask = nullptr);

// r = rhs - Laplacian(phi) per member; writes each member's max-norm into
// max_r (length >= stride; padding lanes get 0).
void residual_batch(const grid::Grid3D& g, int stride, const double* phi,
                    const double* rhs, double* r, double* max_r);

// Red-black SOR for all members at once; phi holds the initial guesses and
// the solutions. Sweeps continue until every member's residual meets
// opt.tol (converged members keep relaxing — harmless, they only contract
// further). Returns per-member stats; `iterations` records the sweep count
// at which that member first measured converged.
std::vector<SolveStats> solve_sor_batch(const grid::Grid3D& g, int members,
                                        int stride, const double* rhs,
                                        double* phi, const SorOptions& opt = {});

}  // namespace wfire::atmos
