// Golden-value checker for the example smoke tests: the examples print
// machine-readable "SMOKE key=value" summary lines (burned area, front
// position RMS, ...), and this tool compares them against committed golden
// values with per-key tolerances, so `ctest -L smoke` verifies results
// rather than exit codes.
//
// Usage: smoke_check <golden_file> <log_file>
//
// Golden file lines:  key value rtol atol   ('#' starts a comment)
// Pass when |got - want| <= max(atol, rtol * |want|) for every golden key.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: smoke_check <golden_file> <log_file>\n");
    return 2;
  }

  std::ifstream golden(argv[1]);
  if (!golden) {
    std::fprintf(stderr, "smoke_check: cannot open golden file %s\n", argv[1]);
    return 2;
  }
  std::ifstream log(argv[2]);
  if (!log) {
    std::fprintf(stderr, "smoke_check: cannot open log file %s\n", argv[2]);
    return 2;
  }

  // Collect SMOKE lines from the run log.
  std::map<std::string, double> got;
  for (std::string line; std::getline(log, line);) {
    const std::string prefix = "SMOKE ";
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t eq = line.find('=', prefix.size());
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(prefix.size(), eq - prefix.size());
    try {
      got[key] = std::stod(line.substr(eq + 1));
    } catch (const std::exception&) {
      std::fprintf(stderr, "smoke_check: unparsable SMOKE line: %s\n",
                   line.c_str());
      return 2;
    }
  }

  int failures = 0;
  int checked = 0;
  for (std::string line; std::getline(golden, line);) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string key;
    double want, rtol, atol;
    if (!(is >> key >> want >> rtol >> atol)) continue;  // blank/comment
    ++checked;
    const auto it = got.find(key);
    if (it == got.end()) {
      std::fprintf(stderr, "FAIL %s: no SMOKE line in log\n", key.c_str());
      ++failures;
      continue;
    }
    const double tol = std::max(atol, rtol * std::abs(want));
    const double err = std::abs(it->second - want);
    if (!(err <= tol) || !std::isfinite(it->second)) {
      std::fprintf(stderr,
                   "FAIL %s: got %.8g, want %.8g +- %.3g (|err| = %.3g)\n",
                   key.c_str(), it->second, want, tol, err);
      ++failures;
    } else {
      std::printf("ok   %s: %.8g (want %.8g +- %.3g)\n", key.c_str(),
                  it->second, want, tol);
    }
  }

  if (checked == 0) {
    std::fprintf(stderr, "smoke_check: golden file %s has no entries\n",
                 argv[1]);
    return 2;
  }
  if (failures > 0) {
    std::fprintf(stderr, "smoke_check: %d/%d golden values out of tolerance\n",
                 failures, checked);
    return 1;
  }
  std::printf("smoke_check: %d golden values within tolerance\n", checked);
  return 0;
}
