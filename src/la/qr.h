// Householder QR with least-squares solve and the square-root kernels of the
// QR-based EnKF ensemble-space analysis. The EnKF replaces the ensemble by
// linear combinations "with the coefficients obtained by solving a least
// squares problem" (paper Sec. 3.3); this is that solver, also used by the
// registration smoothness fits and tested against the normal equations.
//
// The factorization dispatches on la::backend() (see la/backend.h):
//  - blocked: compact-WY panel QR — each panel is factored unblocked (with
//    the reflector application across panel columns OpenMP-threaded when
//    tall), then the trailing matrix is updated with three gemm calls
//    through the blocked kernel backend;
//  - reference: the original serial column-by-column loop, kept as the
//    ground truth the blocked path is property-tested against.
// Scratch for the blocked path is drawn from a caller-supplied la::Workspace
// (keys "qr.*") so repeated factorizations are allocation-free in steady
// state; a local arena is used when none is given.
//
// For the tall-skinny panels of the image-scale analysis (m >> n), a second
// *scheme* is available on top of the backend split: communication-avoiding
// TSQR (tsqr_factor_in_place below). The panel is cut into row blocks, each
// factored independently (OpenMP across blocks), and the stacked n x n R
// factors are reduced pairwise in a binary tree; apply-Q / apply-Q^T are
// reconstructed from the stored leaf and tree reflectors. Selection is
// runtime: WFIRE_QR_SCHEME=tsqr|blocked (see la/backend.h), with the kAuto
// default picking tsqr once m >= 8 n and the split yields >= 2 blocks. The
// blocking depends only on the shape, so results are identical for every
// thread count.
#pragma once

#include "la/backend.h"
#include "la/matrix.h"
#include "la/workspace.h"

namespace wfire::la {

struct QrFactor {
  // Householder vectors stored below the diagonal of `qr`, R on/above it.
  Matrix qr;
  Vector beta;  // Householder scalars
};

// Factors A (m x n, m >= n) in place: R on/above the diagonal, Householder
// vectors (scaled so v[j] = 1) below it, scalars in `beta` (resized to n).
// Throws on m < n.
void qr_factor_in_place(Matrix& A, Vector& beta, Workspace* ws = nullptr);

// Factors A (m x n, m >= n). Throws on m < n.
[[nodiscard]] QrFactor qr_factor(const Matrix& A);

// Applies Q^T to a vector (in place, size m) given the factor.
void apply_qt(const QrFactor& f, Vector& v);

// Applies Q^T to every column of C (in place, C has m rows) given the
// packed factor + scalars. Blocked backend: compact-WY panels and gemm;
// reference backend: one reflector at a time.
void apply_qt_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                       Workspace* ws = nullptr);

// Applies Q (not Q^T) to every column of C (in place), reflectors in
// reverse order. Same backend split as apply_qt_in_place.
void apply_q_in_place(const Matrix& qr, const Vector& beta, Matrix& C,
                      Workspace* ws = nullptr);

// Triangular solves with the n x n upper-triangular R stored in the top of
// the packed factor `qr` (n = qr.cols()); B has n rows and is overwritten
// column by column (OpenMP-parallel across right-hand sides). Throws
// std::runtime_error on a zero diagonal (rank-deficient R).
void r_solve_in_place(const Matrix& qr, Matrix& B);   // R X = B
void rt_solve_in_place(const Matrix& qr, Matrix& B);  // R^T X = B

// Minimizes ||A x - b||_2; returns x (size n). Rank deficiency is reported
// via std::runtime_error (zero diagonal in R).
[[nodiscard]] Vector least_squares(const Matrix& A, const Vector& b);

// Multi-RHS variant: returns X with columns solving each column of B.
[[nodiscard]] Matrix least_squares(const Matrix& A, const Matrix& B);

// Extracts the economy Q (m x n) by applying Householder reflectors to the
// first n columns of the identity.
[[nodiscard]] Matrix economy_q(const QrFactor& f);

// Extracts the n x n upper-triangular R.
[[nodiscard]] Matrix economy_r(const QrFactor& f);

// --- TSQR: communication-avoiding tall-skinny QR ---

// Resolves scheme `s` for an m x n panel: true iff the TSQR path would be
// used (kBlocked never; kTsqr whenever the row-block split is feasible, i.e.
// m >= n and at least two blocks; kAuto additionally requires m >= 8 n).
[[nodiscard]] bool tsqr_selected(QrScheme s, int m, int n);

// TSQR factor bookkeeping. The leaf reflectors stay inside the factored
// matrix itself (below each row block's local diagonal — the caller keeps
// that matrix to apply Q); this struct records the block layout, the leaf
// Householder scalars, and the packed 2n x n reduction-tree node factors.
// Reusing one TsqrFactor across factorizations is allocation-free once warm
// (Matrix/Vector resize retains capacity).
struct TsqrFactor {
  int m = 0, n = 0;
  std::vector<int> row0;         // nblocks + 1 row offsets of the blocks
  Vector leaf_beta;              // nblocks * n Householder scalars
  Matrix tree;                   // 2n x (n * nnodes) packed node factors
  Vector tree_beta;              // n scalars per node
  std::vector<int> level_count;  // R count entering each reduction level
  std::vector<int> level_off;    // first node index of each level
  [[nodiscard]] int nblocks() const {
    return static_cast<int>(row0.size()) - 1;
  }
};

// Factors A (m x n, m >= n) with the TSQR scheme: on return the leading
// n x n upper triangle of A is R, the leaf reflectors sit below each block
// diagonal of A, and `f` holds the reduction tree. A degenerate split into
// one block (panel too short) reduces to a serial factorization with an
// empty tree. Scratch from `ws` (keys "qr.tsqr.*").
void tsqr_factor_in_place(Matrix& A, TsqrFactor& f, Workspace* ws = nullptr);

// R-only variant for square-root consumers (the EnKF analysis reads just
// the triangle via r/rt_solve_in_place): same R in the top of A, but all
// reflector bookkeeping stays in `ws` scratch — with a warm workspace the
// factorization allocates nothing.
void tsqr_factor_r_in_place(Matrix& A, Workspace* ws = nullptr);

// Economy applications through the stored block reflectors. `A` must be the
// matrix factored by tsqr_factor_in_place (it holds the leaf reflectors).
//   Y (n x k) <- Q^T C  with C m x k (economy Q; C is not modified);
//   C (m x k) <- Q Y    with Y n x k.
void tsqr_apply_qt(const Matrix& A, const TsqrFactor& f, const Matrix& C,
                   Matrix& Y, Workspace* ws = nullptr);
void tsqr_apply_q(const Matrix& A, const TsqrFactor& f, const Matrix& Y,
                  Matrix& C, Workspace* ws = nullptr);

}  // namespace wfire::la
