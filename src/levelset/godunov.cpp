#include "levelset/godunov.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

namespace wfire::levelset {

namespace {

// One axis of the paper's rule: select the upwind one-sided difference.
//   dm: left (backward) difference, dp: right (forward) difference,
//   dc: central difference.
inline double paper_rule(double dm, double dp, double dc) {
  if (dm >= 0.0 && dc >= 0.0) return dm;
  if (dp <= 0.0 && dc <= 0.0) return dp;
  return 0.0;
}

// Standard Godunov (expanding front, S >= 0): squared upwind derivative.
inline double godunov_sq(double dm, double dp) {
  const double a = std::max(dm, 0.0);
  const double b = std::min(dp, 0.0);
  return std::max(a * a, b * b);
}

}  // namespace

void gradient_magnitude(const grid::Grid2D& g,
                        const util::Array2D<double>& psi, UpwindScheme scheme,
                        util::Array2D<double>& gradmag) {
  const int nx = g.nx, ny = g.ny;
  if (!gradmag.same_shape(psi)) gradmag = util::Array2D<double>(nx, ny);
  const double ihx = 1.0 / g.dx, ihy = 1.0 / g.dy;

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      // One-sided differences with clamped (copy-out) boundary values: the
      // clamp makes the boundary difference zero, which lets the front exit
      // the domain without reflecting.
      const double c = psi(i, j);
      const double xl = psi.at_clamped(i - 1, j);
      const double xr = psi.at_clamped(i + 1, j);
      const double yl = psi.at_clamped(i, j - 1);
      const double yr = psi.at_clamped(i, j + 1);
      const double dxm = (c - xl) * ihx;
      const double dxp = (xr - c) * ihx;
      const double dxc = 0.5 * (xr - xl) * ihx;
      const double dym = (c - yl) * ihy;
      const double dyp = (yr - c) * ihy;
      const double dyc = 0.5 * (yr - yl) * ihy;

      double gx2, gy2;
      switch (scheme) {
        case UpwindScheme::kPaperRule: {
          const double gx = paper_rule(dxm, dxp, dxc);
          const double gy = paper_rule(dym, dyp, dyc);
          gx2 = gx * gx;
          gy2 = gy * gy;
          break;
        }
        case UpwindScheme::kStandardGodunov:
          gx2 = godunov_sq(dxm, dxp);
          gy2 = godunov_sq(dym, dyp);
          break;
        case UpwindScheme::kCentral:
        default:
          gx2 = dxc * dxc;
          gy2 = dyc * dyc;
          break;
      }
      gradmag(i, j) = std::sqrt(gx2 + gy2);
    }
  }
}

void normals(const grid::Grid2D& g, const util::Array2D<double>& psi,
             util::Array2D<double>& nx_out, util::Array2D<double>& ny_out) {
  const int nx = g.nx, ny = g.ny;
  if (!nx_out.same_shape(psi)) nx_out = util::Array2D<double>(nx, ny);
  if (!ny_out.same_shape(psi)) ny_out = util::Array2D<double>(nx, ny);
  const double ihx = 0.5 / g.dx, ihy = 0.5 / g.dy;

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double gx = (psi.at_clamped(i + 1, j) - psi.at_clamped(i - 1, j)) * ihx;
      const double gy = (psi.at_clamped(i, j + 1) - psi.at_clamped(i, j - 1)) * ihy;
      const double mag = std::hypot(gx, gy);
      if (mag > 1e-12) {
        nx_out(i, j) = gx / mag;
        ny_out(i, j) = gy / mag;
      } else {
        nx_out(i, j) = 0.0;
        ny_out(i, j) = 0.0;
      }
    }
  }
}

}  // namespace wfire::levelset
