// Randomized property-test harness for the dual-backend dense LA layer and
// the EnKF analysis factorizations. A seeded shape generator draws
// degenerate (size-1), small-odd, tile-straddling and tall m >> N shapes —
// plus rank-deficient contents (zero / duplicated columns, low-rank
// products) — and pins
//   - blocked vs reference agreement <= 1e-10 for gemm, syrk, Cholesky and
//     the blocked Householder QR, across random block sizes, and
//   - qr vs svd ensemble-space analysis increments <= 1e-8 end to end.
// This replaces the hand-enumerated shape lists that used to live in
// la_backend_test.cpp. Every case logs its index and derived seed, so a
// failure reproduces by construction (the master seeds below are fixed).
//
// The TSQR scheme and the fused-scaling kernels (PR 5) are pinned here too:
//   - tsqr vs blocked vs reference R agreement (row signs normalized) and
//     apply-Q/Q^T round trips over the same generator,
//   - gemm_scaled / syrk_scaled vs explicitly materialized diagonal
//     scalings, and
//   - EnKF increments per scheme (tsqr and blocked, both backends) vs the
//     svd reference <= 1e-8.
//
// The PackedPanelRegression case at the bottom reproduces the PR 3 bug
// class (thread_local packed-panel buffers read as empty by OMP workers);
// tests/CMakeLists.txt runs it again under OMP_NUM_THREADS=4 so single-core
// containers cannot hide the race. TsqrTreeRegression gets the same
// treatment for the TSQR row-block reduction tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "enkf/enkf.h"
#include "la/backend.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/qr.h"
#include "la/svd.h"
#include "la/workspace.h"
#include "util/rng.h"

using namespace wfire::la;
using wfire::enkf::EnKFOptions;
using wfire::enkf::Factorization;
using wfire::enkf::SolverPath;
using wfire::util::Rng;

namespace {

// Relative max-abs error against the Frobenius scale of the reference.
double rel_err(const Matrix& got, const Matrix& want) {
  const double scale = std::max(frobenius_norm(want), 1.0);
  return max_abs_diff(got, want) / scale;
}

// Extracts the n x n upper triangle from the top of a factored panel
// (blocked/reference packed form and the TSQR in-place form both leave R
// there), zeros below.
Matrix top_r(const Matrix& A) {
  const int n = A.cols();
  Matrix R(n, n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) R(i, j) = A(i, j);
  return R;
}

// QR factors are unique only up to the sign of each R row (the matching
// column of Q); the TSQR reduction tree picks different signs than the
// single Householder chain, so agreement is checked on the normalized form
// with every diagonal made non-negative.
void normalize_r_signs(Matrix& R) {
  for (int i = 0; i < R.rows(); ++i)
    if (R(i, i) < 0)
      for (int j = i; j < R.cols(); ++j) R(i, j) = -R(i, j);
}

// Seeded generator of stress shapes and matrix contents. Categories mirror
// what broke (or could break) the tiled kernels: degenerate dimensions,
// small odd sizes, sizes straddling the tile edge, and the tall-skinny
// m >> N regime of image-scale EnKF systems.
class CaseGen {
 public:
  explicit CaseGen(std::uint64_t seed) : rng_(seed) {}

  int dim(int nb) {
    switch (rng_.uniform_int(4)) {
      case 0:
        return 1;  // degenerate
      case 1:
        return 2 + static_cast<int>(rng_.uniform_int(15));  // small / odd
      case 2: {
        // Straddle the tile edge: {nb-1, nb, nb+1} and {2nb-1, 2nb, 2nb+1}.
        const int mult = 1 + static_cast<int>(rng_.uniform_int(2));
        const int off = static_cast<int>(rng_.uniform_int(3)) - 1;
        return std::max(1, mult * nb + off);
      }
      default:
        return 100 + static_cast<int>(rng_.uniform_int(160));  // multi-tile
    }
  }

  int tall() { return 200 + static_cast<int>(rng_.uniform_int(1100)); }
  int skinny() { return 2 + static_cast<int>(rng_.uniform_int(30)); }
  int block() {
    constexpr int kSizes[] = {8, 16, 64};
    return kSizes[rng_.uniform_int(3)];
  }
  bool coin() { return rng_.uniform_int(2) == 1; }
  double scalar() { return rng_.uniform(-2.0, 2.0); }

  Matrix dense(int m, int n) { return Matrix::random_normal(m, n, rng_); }

  // Rank-deficient contents: zero columns, duplicated columns, or a
  // low-rank product — all shapes the svd path handles via its rcond
  // cutoff and the qr square-root must handle without one.
  Matrix deficient(int m, int n) {
    Matrix A = dense(m, n);
    switch (rng_.uniform_int(3)) {
      case 0: {  // zero out a few columns
        const int nz = 1 + static_cast<int>(rng_.uniform_int(std::max(n / 2, 1)));
        for (int z = 0; z < nz; ++z) {
          auto col = A.col(static_cast<int>(rng_.uniform_int(n)));
          std::fill(col.begin(), col.end(), 0.0);
        }
        break;
      }
      case 1: {  // duplicate columns
        if (n >= 2) {
          const int src = static_cast<int>(rng_.uniform_int(n));
          const int dst = static_cast<int>(rng_.uniform_int(n));
          const auto s = A.col(src);
          auto d = A.col(dst);
          std::copy(s.begin(), s.end(), d.begin());
        }
        break;
      }
      default: {  // rank r < min(m, n) outer product
        const int r = 1 + static_cast<int>(
                              rng_.uniform_int(std::max(std::min(m, n) / 2, 1)));
        const Matrix L = dense(m, r);
        const Matrix R = dense(r, n);
        gemm(false, false, 1.0, L, R, 0.0, A);
        break;
      }
    }
    return A;
  }

  Matrix spd(int n) {
    const Matrix A = dense(n, n);
    Matrix S(n, n);
    syrk(false, 1.0, A, 0.0, S);
    for (int i = 0; i < n; ++i) S(i, i) += n;  // well-conditioned
    return S;
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace

TEST(PropertyGemm, BlockedMatchesReferenceAcrossRandomShapes) {
  CaseGen gen(0xA11CE5EEDULL);
  for (int c = 0; c < 48; ++c) {
    const int nb = gen.block();
    ScopedBackend scope(Backend::kBlocked, nb);
    const int m = gen.dim(nb), n = gen.dim(nb), k = gen.dim(nb);
    const bool tA = gen.coin(), tB = gen.coin();
    const double alpha = gen.scalar();
    const double beta = gen.coin() ? gen.scalar() : 0.0;
    const bool rank_def = c % 5 == 4;
    const Matrix A = rank_def ? gen.deficient(tA ? k : m, tA ? m : k)
                              : gen.dense(tA ? k : m, tA ? m : k);
    const Matrix B = gen.dense(tB ? n : k, tB ? k : n);
    Matrix C0 = gen.dense(m, n);
    Matrix C1 = C0;
    {
      ScopedBackend ref(Backend::kReference);
      gemm(tA, tB, alpha, A, B, beta, C0);
    }
    gemm(tA, tB, alpha, A, B, beta, C1);
    ASSERT_LE(rel_err(C1, C0), 1e-10)
        << "case " << c << ": " << m << "x" << n << "x" << k << " tA " << tA
        << " tB " << tB << " alpha " << alpha << " beta " << beta << " nb "
        << nb << (rank_def ? " (rank-deficient A)" : "");
  }
}

TEST(PropertySyrk, BlockedMatchesReferenceAndGemm) {
  CaseGen gen(0x5E1F0CAFEULL);
  for (int c = 0; c < 32; ++c) {
    const int nb = gen.block();
    ScopedBackend scope(Backend::kBlocked, nb);
    const int m = gen.dim(nb), k = gen.dim(nb);
    const bool tA = gen.coin();
    const double alpha = gen.scalar();
    const Matrix A = c % 4 == 3 ? gen.deficient(tA ? k : m, tA ? m : k)
                                : gen.dense(tA ? k : m, tA ? m : k);
    // beta != 0 requires a symmetric C by contract.
    const bool accumulate = gen.coin();
    Matrix C0 = accumulate ? gen.spd(m) : Matrix(m, m);
    Matrix C1 = C0;
    const double beta = accumulate ? gen.scalar() : 0.0;
    {
      ScopedBackend ref(Backend::kReference);
      syrk(tA, alpha, A, beta, C0);
    }
    syrk(tA, alpha, A, beta, C1);
    ASSERT_LE(rel_err(C1, C0), 1e-10)
        << "case " << c << ": m " << m << " k " << k << " tA " << tA
        << " beta " << beta << " nb " << nb;
    // Exact symmetry (mirrored, not recomputed).
    for (int j = 0; j < m; ++j)
      for (int i = 0; i < j; ++i) ASSERT_EQ(C1(i, j), C1(j, i));
    // And, when not accumulating, both equal the gemm formulation.
    if (beta == 0.0) {
      Matrix G(m, m);
      gemm(tA, !tA, alpha, A, A, 0.0, G);
      ASSERT_LE(rel_err(C1, G), 1e-10) << "case " << c << " vs gemm";
    }
  }
}

TEST(PropertyCholesky, BlockedFactorMatchesReference) {
  CaseGen gen(0xC401E5C1ULL);
  for (int c = 0; c < 24; ++c) {
    const int nb = gen.block();
    ScopedBackend scope(Backend::kBlocked, nb);
    const int n = gen.dim(nb);
    const Matrix S = gen.spd(n);
    Matrix L_ref, L_blk;
    int jit_ref, jit_blk;
    {
      ScopedBackend ref(Backend::kReference);
      jit_ref = cholesky_factor(S, L_ref);
    }
    jit_blk = cholesky_factor(S, L_blk);
    ASSERT_EQ(jit_ref, 0) << "case " << c << " n " << n;
    ASSERT_EQ(jit_blk, 0) << "case " << c << " n " << n;
    ASSERT_LE(rel_err(L_blk, L_ref), 1e-10) << "case " << c << " n " << n
                                            << " nb " << nb;
    // Reconstructs A; strict upper triangle exactly zero.
    const Matrix R = matmul(L_blk, L_blk, false, true);
    ASSERT_LE(rel_err(R, S), 1e-10) << "case " << c;
    for (int j = 1; j < n; ++j)
      for (int i = 0; i < j; ++i) ASSERT_EQ(L_blk(i, j), 0.0);
  }
}

TEST(PropertyQr, BlockedMatchesReferenceOnFullRank) {
  // Full-rank random matrices: the Householder sequence is numerically
  // stable, so the blocked (compact-WY) path must reproduce the reference
  // factor — R, the packed reflectors and the scalars — to tight tolerance.
  CaseGen gen(0x9A7B0537ULL);
  for (int c = 0; c < 28; ++c) {
    const int nb = gen.block();
    ScopedBackend scope(Backend::kBlocked, nb);
    const int n = c % 3 == 0 ? gen.skinny() : gen.dim(nb);
    const int m = c % 3 == 0 ? gen.tall() : n + static_cast<int>(
                                                    gen.rng().uniform_int(40));
    const Matrix A = gen.dense(m, n);
    Matrix qr_ref = A, qr_blk = A;
    Vector beta_ref, beta_blk;
    Workspace ws;
    {
      ScopedBackend ref(Backend::kReference);
      qr_factor_in_place(qr_ref, beta_ref);
    }
    qr_factor_in_place(qr_blk, beta_blk, &ws);
    ASSERT_LE(rel_err(qr_blk, qr_ref), 1e-10)
        << "case " << c << ": " << m << "x" << n << " nb " << nb;
    for (int j = 0; j < n; ++j)
      ASSERT_NEAR(beta_blk[j], beta_ref[j], 1e-10)
          << "case " << c << " beta[" << j << "]";
  }
}

TEST(PropertyQr, EachBackendReconstructsRankDeficient) {
  // Rank-deficient inputs admit many valid QR factorizations (a numerically
  // zero pivot column makes the reflector direction arbitrary), so blocked
  // and reference are each pinned to the defining property Q R = A with
  // orthonormal Q instead of to each other.
  CaseGen gen(0xDEF1C1E47ULL);
  for (int c = 0; c < 16; ++c) {
    const int nb = gen.block();
    const int n = 2 + static_cast<int>(gen.rng().uniform_int(24));
    const int m = n + static_cast<int>(gen.rng().uniform_int(120));
    const Matrix A = gen.deficient(m, n);
    for (const Backend be : {Backend::kReference, Backend::kBlocked}) {
      ScopedBackend scope(be, nb);
      const QrFactor f = qr_factor(A);
      const Matrix Q = economy_q(f);
      const Matrix R = economy_r(f);
      ASSERT_LE(rel_err(matmul(Q, R), A), 1e-10)
          << "case " << c << ": " << m << "x" << n << " backend "
          << (be == Backend::kBlocked ? "blocked" : "reference");
      ASSERT_LE(rel_err(matmul(Q, Q, true, false), Matrix::identity(n)), 1e-10)
          << "case " << c << " Q^T Q";
    }
  }
}

TEST(PropertyQr, ApplyQtAndTriangularSolvesRoundTrip) {
  CaseGen gen(0xAB5013DULL);
  for (int c = 0; c < 16; ++c) {
    const int nb = gen.block();
    ScopedBackend scope(Backend::kBlocked, nb);
    const int n = 2 + static_cast<int>(gen.rng().uniform_int(60));
    const int m = n + static_cast<int>(gen.rng().uniform_int(300));
    const int nrhs = 1 + static_cast<int>(gen.rng().uniform_int(20));
    const Matrix A = gen.dense(m, n);
    const Matrix B = gen.dense(m, nrhs);
    Workspace ws;
    Matrix QR = A;
    Vector beta;
    qr_factor_in_place(QR, beta, &ws);

    // Blocked apply-Q^T equals the per-column reflector loop.
    Matrix C_blk = B;
    apply_qt_in_place(QR, beta, C_blk, &ws);
    const QrFactor f{QR, beta};
    Matrix C_col(m, nrhs);
    for (int j = 0; j < nrhs; ++j) {
      Vector v(B.col(j).begin(), B.col(j).end());
      apply_qt(f, v);
      auto dst = C_col.col(j);
      std::copy(v.begin(), v.end(), dst.begin());
    }
    ASSERT_LE(rel_err(C_blk, C_col), 1e-10) << "case " << c;

    // Q (Q^T B) = B.
    Matrix C_round = C_blk;
    apply_q_in_place(QR, beta, C_round, &ws);
    ASSERT_LE(rel_err(C_round, B), 1e-10) << "case " << c;

    // R^T (R x) round trip through the triangular solves.
    Matrix Z = gen.dense(n, nrhs);
    Matrix Y(n, nrhs);
    gemm(false, false, 1.0, economy_r(f), Z, 0.0, Y);  // Y = R Z
    r_solve_in_place(QR, Y);
    ASSERT_LE(rel_err(Y, Z), 1e-8) << "case " << c << " r_solve";
    gemm(true, false, 1.0, economy_r(f), Z, 0.0, Y);  // Y = R^T Z
    rt_solve_in_place(QR, Y);
    ASSERT_LE(rel_err(Y, Z), 1e-8) << "case " << c << " rt_solve";
  }
}

TEST(PropertyTsqr, RAgreesWithBlockedAndReference) {
  // The TSQR reduction tree must produce the same R (up to row signs) as
  // the blocked compact-WY chain and the serial reference, across tall
  // full-rank shapes including block-straddling row counts (the 128-row
  // leaf split) and odd block counts (the pass-through tree edge).
  CaseGen gen(0x75A21D0ULL);
  for (int c = 0; c < 24; ++c) {
    const int nb = gen.block();
    const int n = gen.skinny();
    // Mix generic tall shapes with ones straddling the leaf split: exact
    // multiples of the 128-row block +/- 1, and odd block counts.
    int m;
    switch (c % 3) {
      case 0:
        m = gen.tall();
        break;
      case 1:
        m = 128 * (2 + static_cast<int>(gen.rng().uniform_int(6))) +
            static_cast<int>(gen.rng().uniform_int(3)) - 1;
        break;
      default:
        m = 128 * (3 + 2 * static_cast<int>(gen.rng().uniform_int(3)));
        break;
    }
    m = std::max(m, n);
    const Matrix A = gen.dense(m, n);
    Matrix qr_ref = A, qr_blk = A, qr_tsqr = A;
    Vector beta_ref, beta_blk;
    Workspace ws;
    TsqrFactor f;
    {
      ScopedBackend ref(Backend::kReference);
      qr_factor_in_place(qr_ref, beta_ref);
    }
    {
      ScopedBackend blk(Backend::kBlocked, nb);
      qr_factor_in_place(qr_blk, beta_blk, &ws);
      tsqr_factor_in_place(qr_tsqr, f, &ws);
    }
    Matrix R_ref = top_r(qr_ref), R_blk = top_r(qr_blk),
           R_tsqr = top_r(qr_tsqr);
    normalize_r_signs(R_ref);
    normalize_r_signs(R_blk);
    normalize_r_signs(R_tsqr);
    ASSERT_LE(rel_err(R_tsqr, R_ref), 1e-10)
        << "case " << c << ": " << m << "x" << n << " tsqr vs reference";
    ASSERT_LE(rel_err(R_tsqr, R_blk), 1e-10)
        << "case " << c << ": " << m << "x" << n << " tsqr vs blocked";

    // R-only variant: identical triangle from the workspace-resident path.
    Matrix qr_ronly = A;
    tsqr_factor_r_in_place(qr_ronly, &ws);
    Matrix R_ronly = top_r(qr_ronly);
    normalize_r_signs(R_ronly);
    ASSERT_LE(rel_err(R_ronly, R_tsqr), 1e-10) << "case " << c << " r-only";
  }
}

TEST(PropertyTsqr, AppliesReconstructAndRoundTrip) {
  // Q reconstructed from the stored leaf/tree reflectors must satisfy the
  // defining properties — Q R = A and Q^T Q = I — including on
  // rank-deficient inputs, where R's row signs (and the reflector
  // directions) are arbitrary but the products are not.
  CaseGen gen(0x7509AB31ULL);
  for (int c = 0; c < 16; ++c) {
    const int n = 2 + static_cast<int>(gen.rng().uniform_int(24));
    const int m = n + static_cast<int>(gen.rng().uniform_int(900));
    const int k = 1 + static_cast<int>(gen.rng().uniform_int(12));
    const Matrix A = c % 4 == 3 ? gen.deficient(m, n) : gen.dense(m, n);
    Workspace ws;
    Matrix QR = A;
    TsqrFactor f;
    tsqr_factor_in_place(QR, f, &ws);

    // Q R = A.
    Matrix QRprod;
    tsqr_apply_q(QR, f, top_r(QR), QRprod, &ws);
    ASSERT_LE(rel_err(QRprod, A), 1e-10)
        << "case " << c << ": " << m << "x" << n << " QR = A";

    // Q^T A = R (economy).
    Matrix Y;
    tsqr_apply_qt(QR, f, A, Y, &ws);
    ASSERT_LE(rel_err(Y, top_r(QR)), 1e-10) << "case " << c << " Q^T A = R";

    // Q^T (Q Z) = Z for arbitrary coefficients: orthonormality of the
    // reconstructed economy Q.
    const Matrix Z = gen.dense(n, k);
    Matrix C;
    tsqr_apply_q(QR, f, Z, C, &ws);
    Matrix Z2;
    tsqr_apply_qt(QR, f, C, Z2, &ws);
    ASSERT_LE(rel_err(Z2, Z), 1e-10) << "case " << c << " round trip";
  }
}

TEST(PropertyGemmScaled, MatchesMaterializedScaling) {
  // gemm_scaled must equal the plain gemm on an explicitly scaled operand
  // (diag(w) folded into op(B)'s contraction dimension), on both backends.
  CaseGen gen(0x5CA1EDULL);
  for (int c = 0; c < 24; ++c) {
    const int nb = gen.block();
    const int m = gen.dim(nb), n = gen.dim(nb), k = gen.dim(nb);
    const bool tA = gen.coin(), tB = gen.coin();
    const double alpha = gen.scalar();
    const double beta = gen.coin() ? gen.scalar() : 0.0;
    const Matrix A = gen.dense(tA ? k : m, tA ? m : k);
    const Matrix B = gen.dense(tB ? n : k, tB ? k : n);
    Vector w(static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) w[p] = gen.rng().uniform(0.1, 3.0);
    // Materialize diag(w) op(B): scale row p of op(B), i.e. row p of B or
    // column p of B under transpose.
    Matrix Bs = B;
    if (!tB)
      for (int j = 0; j < B.cols(); ++j)
        for (int p = 0; p < k; ++p) Bs(p, j) *= w[p];
    else
      for (int p = 0; p < k; ++p)
        for (int j = 0; j < B.rows(); ++j) Bs(j, p) *= w[p];
    Matrix C0 = gen.dense(m, n);
    Matrix C1 = C0;
    Matrix C2 = C0;
    {
      ScopedBackend ref(Backend::kReference);
      gemm(tA, tB, alpha, A, Bs, beta, C0);
      gemm_scaled(tA, tB, alpha, A, w, B, beta, C1);
    }
    ASSERT_LE(rel_err(C1, C0), 1e-10)
        << "case " << c << " reference backend";
    {
      ScopedBackend blk(Backend::kBlocked, nb);
      gemm_scaled(tA, tB, alpha, A, w, B, beta, C2);
    }
    ASSERT_LE(rel_err(C2, C0), 1e-10)
        << "case " << c << ": " << m << "x" << n << "x" << k << " tA " << tA
        << " tB " << tB << " nb " << nb;
  }
}

TEST(PropertySyrkScaled, MatchesMaterializedScaling) {
  CaseGen gen(0x5E1F5CA1EULL);
  for (int c = 0; c < 20; ++c) {
    const int nb = gen.block();
    const int m = gen.dim(nb), k = gen.dim(nb);
    const bool tA = gen.coin();
    const double alpha = gen.scalar();
    const Matrix A = gen.dense(tA ? k : m, tA ? m : k);
    Vector w(static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) w[p] = gen.rng().uniform(0.1, 3.0);
    // op(A) diag(w) op(A)^T as a gemm against the materialized scaling.
    Matrix As = A;
    if (tA)
      for (int p = 0; p < k; ++p)
        for (int j = 0; j < A.cols(); ++j) As(p, j) *= w[p];
    else
      for (int j = 0; j < A.cols(); ++j)
        for (int i = 0; i < A.rows(); ++i) As(i, j) *= w[j];
    Matrix C0(m, m), C1(m, m), C2(m, m);
    {
      ScopedBackend ref(Backend::kReference);
      gemm(tA, !tA, alpha, A, As, 0.0, C0);
      syrk_scaled(tA, alpha, A, w, 0.0, C1);
    }
    ASSERT_LE(rel_err(C1, C0), 1e-10) << "case " << c << " reference";
    {
      ScopedBackend blk(Backend::kBlocked, nb);
      syrk_scaled(tA, alpha, A, w, 0.0, C2);
    }
    ASSERT_LE(rel_err(C2, C0), 1e-10)
        << "case " << c << ": m " << m << " k " << k << " tA " << tA << " nb "
        << nb;
    for (int j = 0; j < m; ++j)
      for (int i = 0; i < j; ++i) ASSERT_EQ(C2(i, j), C2(j, i));
  }
}

TEST(PropertyEnkf, QrAndSvdAnalysisIncrementsAgree) {
  // End-to-end pin of the tentpole: the QR square-root ensemble-space
  // analysis must match the SVD path on the same problem (same innovation
  // draws) to <= 1e-8 relative increment error, across shapes including
  // m >> N image scale and rank-deficient ensembles, on both kernel
  // backends.
  CaseGen gen(0xE2DF4C70ULL);
  for (int c = 0; c < 12; ++c) {
    const int N = 4 + static_cast<int>(gen.rng().uniform_int(24));
    // Mostly the m >> N image regime; every third case forces m < N, where
    // the qr path must factor the m x m (not N x N) square-root system.
    const int m = c % 3 == 2
                      ? 2 + static_cast<int>(gen.rng().uniform_int(N - 2))
                      : 2 * N + 1 + static_cast<int>(gen.rng().uniform_int(700));
    const int n = 20 + static_cast<int>(gen.rng().uniform_int(100));
    Matrix X(n, N);
    for (int k = 0; k < N; ++k)
      for (int i = 0; i < n; ++i) X(i, k) = gen.rng().normal();
    Matrix HX(m, N);
    for (int k = 0; k < N; ++k)
      for (int i = 0; i < m; ++i)
        HX(i, k) = X(i % n, k) + 0.1 * gen.rng().normal();
    if (c % 4 == 3 && N >= 3) {
      // Duplicated member (state and observed): exactly rank-deficient
      // anomalies, the regime where the svd path leans on its rcond cutoff.
      std::copy(X.col(0).begin(), X.col(0).end(), X.col(1).begin());
      std::copy(HX.col(0).begin(), HX.col(0).end(), HX.col(1).begin());
    }
    Vector d(static_cast<std::size_t>(m));
    Vector r_std(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      d[i] = gen.rng().normal();
      r_std[i] = gen.rng().uniform(0.3, 2.0);
    }

    for (const Backend be : {Backend::kReference, Backend::kBlocked}) {
      ScopedBackend scope(be);
      EnKFOptions opt;
      opt.path = SolverPath::kEnsembleSpace;
      const std::uint64_t rng_seed = 1000 + c;

      Matrix Xs = X;
      opt.factorization = Factorization::kSvd;
      Rng rs(rng_seed);
      const auto ss = wfire::enkf::enkf_analysis(Xs, HX, d, r_std, rs, opt);
      EXPECT_EQ(ss.factorization_used, Factorization::kSvd);

      // Relative to the size of the svd-path increment, not of X.
      Matrix inc(n, N);
      for (int k = 0; k < N; ++k)
        for (int i = 0; i < n; ++i) inc(i, k) = Xs(i, k) - X(i, k);
      const double scale = std::max(frobenius_norm(inc), 1e-12);

      // Both panel schemes of the qr square-root path must match the svd
      // reference (same innovation draws) — and must report the scheme
      // they actually ran, with kTsqr honored whenever the stacked panel
      // splits into row blocks.
      for (const QrScheme scheme : {QrScheme::kBlocked, QrScheme::kTsqr}) {
        Matrix Xq = X;
        opt.factorization = Factorization::kQr;
        opt.qr_scheme = scheme;
        Rng rq(rng_seed);
        const auto sq = wfire::enkf::enkf_analysis(Xq, HX, d, r_std, rq, opt);
        EXPECT_EQ(sq.factorization_used, Factorization::kQr);
        const int rdim = std::min(m, N);
        const bool want_tsqr =
            scheme == QrScheme::kTsqr && tsqr_selected(scheme, m + N, rdim);
        EXPECT_EQ(sq.qr_scheme_used,
                  want_tsqr ? QrScheme::kTsqr : QrScheme::kBlocked)
            << "case " << c << " scheme resolution";
        ASSERT_LE(max_abs_diff(Xq, Xs) / scale, 1e-8)
            << "case " << c << ": n " << n << " m " << m << " N " << N
            << " backend "
            << (be == Backend::kBlocked ? "blocked" : "reference")
            << " scheme "
            << (scheme == QrScheme::kTsqr ? "tsqr" : "blocked");
      }
    }
  }
}

// Regression for the PR 3 bug class: gemm/syrk pack shared panels into
// thread_local buffers; capturing the buffer (instead of its raw pointer)
// in the OpenMP region made every worker read its own empty instance. The
// bug is invisible with one thread, so tests/CMakeLists.txt re-runs this
// suite with OMP_NUM_THREADS=4; tiles (8) far smaller than the packed
// panels (KC/NC/MC) force multiple workers through one shared panel.
TEST(PackedPanelRegression, BlockedKernelsWithTilesSmallerThanPanels) {
  Rng rng(0xF00DF00DULL);
  ScopedBackend scope(Backend::kBlocked, 8);
  const int m = 130, n = 120, k = 96;
  const Matrix A = Matrix::random_normal(m, k, rng);
  const Matrix B = Matrix::random_normal(k, n, rng);

  Matrix C0(m, n), C1(m, n);
  {
    ScopedBackend ref(Backend::kReference);
    gemm(false, false, 1.0, A, B, 0.0, C0);
  }
  gemm(false, false, 1.0, A, B, 0.0, C1);
  ASSERT_LE(rel_err(C1, C0), 1e-10) << "gemm";

  Matrix S0(m, m), S1(m, m);
  {
    ScopedBackend ref(Backend::kReference);
    syrk(false, 1.0, A, 0.0, S0);
  }
  syrk(false, 1.0, A, 0.0, S1);
  ASSERT_LE(rel_err(S1, S0), 1e-10) << "syrk";

  for (int i = 0; i < m; ++i) S0(i, i) += m;
  Matrix L0, L1;
  {
    ScopedBackend ref(Backend::kReference);
    cholesky_factor(S0, L0);
  }
  cholesky_factor(S0, L1);
  ASSERT_LE(rel_err(L1, L0), 1e-10) << "cholesky";

  // The blocked QR drives its trailing updates through the same gemm.
  Matrix Q0 = Matrix::random_normal(140, 90, rng);
  Matrix Q1 = Q0;
  Vector b0, b1;
  {
    ScopedBackend ref(Backend::kReference);
    qr_factor_in_place(Q0, b0);
  }
  Workspace ws;
  qr_factor_in_place(Q1, b1, &ws);
  ASSERT_LE(rel_err(Q1, Q0), 1e-10) << "qr";
}

// Regression for the TSQR row-block reduction tree under real OpenMP
// concurrency (the PR 3/PR 4 bug class: worker-visible state that a 1-core
// container cannot distinguish from correct). The leaf stage and every tree
// level run `omp parallel for` over blocks/pairs; shapes are chosen so the
// tree has several levels *and* odd pass-through nodes, and the whole
// factor-apply pipeline plus an end-to-end tsqr-scheme analysis are checked
// against serial ground truth. tests/CMakeLists.txt re-runs this suite with
// OMP_NUM_THREADS=4.
TEST(TsqrTreeRegression, RowBlockTreeWithFourThreads) {
  Rng rng(0x7C4EEULL);
  // 11 blocks of 128 rows (odd count at multiple levels: 11 -> 6 -> 3 -> 2
  // -> 1) with a ragged last block.
  const int m = 128 * 11 + 37, n = 24, k = 9;
  const Matrix A = Matrix::random_normal(m, n, rng);
  Matrix qr_ref = A, qr_tsqr = A;
  Vector beta_ref;
  {
    ScopedBackend ref(Backend::kReference);
    qr_factor_in_place(qr_ref, beta_ref);
  }
  Workspace ws;
  TsqrFactor f;
  tsqr_factor_in_place(qr_tsqr, f, &ws);
  ASSERT_GE(f.nblocks(), 11);
  Matrix R_ref = top_r(qr_ref), R_tsqr = top_r(qr_tsqr);
  normalize_r_signs(R_ref);
  normalize_r_signs(R_tsqr);
  ASSERT_LE(rel_err(R_tsqr, R_ref), 1e-10) << "tree R";

  // Apply pipeline under the same thread count.
  Matrix QRprod;
  tsqr_apply_q(qr_tsqr, f, top_r(qr_tsqr), QRprod, &ws);
  ASSERT_LE(rel_err(QRprod, A), 1e-10) << "QR = A";
  const Matrix Z = Matrix::random_normal(n, k, rng);
  Matrix C, Z2;
  tsqr_apply_q(qr_tsqr, f, Z, C, &ws);
  tsqr_apply_qt(qr_tsqr, f, C, Z2, &ws);
  ASSERT_LE(rel_err(Z2, Z), 1e-10) << "round trip";

  // End-to-end: a forced-tsqr ensemble-space analysis against the blocked
  // scheme on the same draws (the tree feeds the triangular solves).
  const int nstate = 96, N = 16, mobs = 1500;
  Matrix X(nstate, N), HX(mobs, N);
  for (int c = 0; c < N; ++c) {
    for (int i = 0; i < nstate; ++i) X(i, c) = rng.normal();
    for (int i = 0; i < mobs; ++i)
      HX(i, c) = X(i % nstate, c) + 0.1 * rng.normal();
  }
  Vector d(static_cast<std::size_t>(mobs)), r_std(static_cast<std::size_t>(mobs));
  for (int i = 0; i < mobs; ++i) {
    d[i] = rng.normal();
    r_std[i] = 0.7;
  }
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  opt.factorization = Factorization::kQr;
  opt.qr_scheme = QrScheme::kTsqr;
  Matrix Xt = X;
  Rng r1(77);
  const auto st = wfire::enkf::enkf_analysis(Xt, HX, d, r_std, r1, opt);
  EXPECT_EQ(st.qr_scheme_used, QrScheme::kTsqr);
  opt.qr_scheme = QrScheme::kBlocked;
  Matrix Xb = X;
  Rng r2(77);
  const auto sb = wfire::enkf::enkf_analysis(Xb, HX, d, r_std, r2, opt);
  EXPECT_EQ(sb.qr_scheme_used, QrScheme::kBlocked);
  Matrix inc(nstate, N);
  for (int c = 0; c < N; ++c)
    for (int i = 0; i < nstate; ++i) inc(i, c) = Xb(i, c) - X(i, c);
  const double scale = std::max(frobenius_norm(inc), 1e-12);
  ASSERT_LE(max_abs_diff(Xt, Xb) / scale, 1e-8) << "tsqr vs blocked analysis";
}

TEST(TsqrScheme, ProcessDefaultDrivesAutoResolution) {
  // EnKFOptions::kAuto follows the process default (itself WFIRE_QR_SCHEME
  // at startup): forcing it via ScopedQrScheme must flip the scheme the
  // analysis resolves, without touching the options.
  Rng rng(0x5C4E3EULL);
  const int nstate = 40, N = 8, mobs = 700;
  Matrix X(nstate, N), HX(mobs, N);
  for (int c = 0; c < N; ++c) {
    for (int i = 0; i < nstate; ++i) X(i, c) = rng.normal();
    for (int i = 0; i < mobs; ++i)
      HX(i, c) = X(i % nstate, c) + 0.1 * rng.normal();
  }
  Vector d(static_cast<std::size_t>(mobs), 0.5);
  Vector r_std(static_cast<std::size_t>(mobs), 0.8);
  EnKFOptions opt;
  opt.path = SolverPath::kEnsembleSpace;
  opt.factorization = Factorization::kQr;
  for (const QrScheme forced : {QrScheme::kBlocked, QrScheme::kTsqr}) {
    ScopedQrScheme scope(forced);
    Matrix Xa = X;
    Rng r(3);
    const auto s = wfire::enkf::enkf_analysis(Xa, HX, d, r_std, r, opt);
    EXPECT_EQ(s.qr_scheme_used, forced) << "process default not honored";
  }
}
