// Tendency evaluation for WrfLite: upwind advection (flux form for scalars,
// advective form for momentum), buoyancy on w from the potential-temperature
// and moisture perturbations, constant eddy diffusion, surface drag, a
// Rayleigh sponge under the rigid lid, and lateral nudging of the mean state
// toward the ambient profile (the periodic-domain stand-in for inflow BCs).
//
// The fire enters through `theta_src` / `qv_src` (K/s and kg/kg/s per cell),
// which is exactly how the paper inserts heat: "the flux is inserted by
// modifying the temperature and water vapor concentration over a depth of
// many cells, with exponential decay away from the boundary" — the decay
// profile is built by coupling/flux_insertion.
#pragma once

#include "atmos/state.h"

namespace wfire::atmos {

struct DynamicsParams {
  double eddy_viscosity = 5.0;    // nu [m^2/s]
  double eddy_diffusivity = 5.0;  // kappa [m^2/s]
  double drag_coeff = 0.01;       // surface drag Cd (bulk, dimensionless)
  double sponge_start_frac = 0.75; // sponge occupies the top quarter
  double sponge_coeff = 0.05;     // max damping rate [1/s]
  double nudge_coeff = 0.002;     // relaxation of horizontal-mean wind [1/s]
  double gravity = 9.81;          // [m/s^2]
  bool moisture_buoyancy = true;  // include 0.61 qv' in buoyancy
};

struct Tendencies {
  util::Array3D<double> du, dv, dw, dtheta, dqv;

  Tendencies() = default;
  explicit Tendencies(const grid::Grid3D& g)
      : du(g.nx, g.ny, g.nz, 0.0),
        dv(g.nx, g.ny, g.nz, 0.0),
        dw(g.nx, g.ny, g.nz + 1, 0.0),
        dtheta(g.nx, g.ny, g.nz, 0.0),
        dqv(g.nx, g.ny, g.nz, 0.0) {}
};

// Strided read-only view of a per-cell source field, so one member's lane
// of a batched structure-of-arrays forcing buffer can feed the scalar
// tendency evaluation without a copy: value(i, j, k) =
// base[((k * ny + j) * nx + i) * stride]. A stride-1 view over
// Array3D::data() reads the exact same doubles as the Array3D itself.
struct ForcingView {
  const double* base = nullptr;  // nullptr = no forcing
  std::ptrdiff_t stride = 1;
};

// Computes all tendencies. `theta_src`/`qv_src` may be null (no fire).
void compute_tendencies(const grid::Grid3D& g, const AmbientProfile& amb,
                        const DynamicsParams& p, const AtmosState& s,
                        const util::Array3D<double>* theta_src,
                        const util::Array3D<double>* qv_src, Tendencies& t);

// Same evaluation with strided forcing views (batched-ensemble lanes).
void compute_tendencies(const grid::Grid3D& g, const AmbientProfile& amb,
                        const DynamicsParams& p, const AtmosState& s,
                        ForcingView theta_src, ForcingView qv_src,
                        Tendencies& t);

// state += dt * tendencies (w boundary faces stay pinned at 0).
void apply_tendencies(const grid::Grid3D& g, const Tendencies& t, double dt,
                      AtmosState& s);

}  // namespace wfire::atmos
