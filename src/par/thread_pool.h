// Fixed-size thread pool. The paper's parallel structure (Fig. 2) assigns
// ensemble members to subsets of processors; at laptop scale the same
// decomposition is expressed as member tasks on a pool. Stencil-level
// parallelism inside each member uses OpenMP instead (see DESIGN.md).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wfire::par {

class ThreadPool {
 public:
  // n <= 0 selects hardware_concurrency().
  explicit ThreadPool(int n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace wfire::par
