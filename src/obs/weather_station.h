// Weather-station data path (paper Sec. 3.1): a station reports "its
// location, a timestamp, temperature, wind velocity, and humidity". The
// operator (a) locates the containing grid cell from the location by linear
// interpolation, (b) samples the model fields at the station by biquadratic
// interpolation, (c) checks whether a fireline is in the cell or neighboring
// ones (is the station's reading a fire signal?), and (d) can update the
// model temperature field directly, which is the paper's current state
// ("the state vector is updated for the temperature and returned"),
// pending full synthetic-data assimilation.
#pragma once

#include "grid/interp.h"
#include "util/array2d.h"

namespace wfire::obs {

struct StationReport {
  double x = 0, y = 0;       // location [m]
  double time = 0;           // timestamp [s]
  double temperature = 300;  // [K]
  double wind_u = 0;         // [m/s]
  double wind_v = 0;
  double humidity = 0.3;     // relative [0,1]
};

struct StationComparison {
  bool inside = false;        // station inside the model domain?
  grid::CellLocation cell;    // containing cell
  double model_temperature = 0;
  double model_wind_u = 0;
  double model_wind_v = 0;
  double model_humidity = 0;
  bool fireline_nearby = false;  // psi < 0 within the check radius
  // Innovations (observed - model).
  double d_temperature = 0, d_wind_u = 0, d_wind_v = 0, d_humidity = 0;
};

struct StationOperatorOptions {
  int fireline_check_radius = 1;  // cells around the station to scan
};

class WeatherStationOperator {
 public:
  WeatherStationOperator(const grid::Grid2D& g,
                         StationOperatorOptions opt = {});

  // Compares a report against model fields (all node fields on the grid).
  [[nodiscard]] StationComparison compare(
      const StationReport& rep, const util::Array2D<double>& temperature,
      const util::Array2D<double>& wind_u, const util::Array2D<double>& wind_v,
      const util::Array2D<double>& humidity,
      const util::Array2D<double>& psi) const;

  // Direct insertion: nudges the model temperature toward the observation
  // with weight in [0, 1], distributed over the 3x3 biquadratic stencil with
  // the interpolation weights (the adjoint of the sampling).
  void nudge_temperature(const StationReport& rep,
                         const StationComparison& cmp, double weight,
                         util::Array2D<double>& temperature) const;

  [[nodiscard]] const grid::Grid2D& grid() const { return grid_; }

 private:
  grid::Grid2D grid_;
  StationOperatorOptions opt_;
};

}  // namespace wfire::obs
