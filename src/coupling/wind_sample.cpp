#include "coupling/wind_sample.h"

#include "util/omp_compat.h"

#include <stdexcept>

#include "grid/interp.h"
#include "grid/transfer.h"

namespace wfire::coupling {

MeshPairing make_pairing(const grid::Grid3D& atmos, int refine) {
  if (refine < 1) throw std::invalid_argument("make_pairing: refine < 1");
  MeshPairing pair;
  pair.refine = refine;
  // Atmos cell-center mesh: nodes at (i+0.5)*dx.
  pair.atmos_hor = grid::Grid2D(atmos.nx, atmos.ny, atmos.dx, atmos.dy,
                                0.5 * atmos.dx, 0.5 * atmos.dy);
  // Fire mesh: `refine` nodes per atmos cell, node (0,0) at the first cell
  // center, spacing dx/refine.
  pair.fire = grid::Grid2D(atmos.nx * refine, atmos.ny * refine,
                           atmos.dx / refine, atmos.dy / refine,
                           0.5 * atmos.dx, 0.5 * atmos.dy);
  return pair;
}

void sample_ground_wind(const grid::Grid3D& g, const atmos::AtmosState& s,
                        const MeshPairing& pair, util::Array2D<double>& fire_u,
                        util::Array2D<double>& fire_v) {
  // Destagger the lowest level to cell centers.
  util::Array2D<double> uc(g.nx, g.ny), vc(g.nx, g.ny);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      double u0, v0;
      atmos::cell_center_wind(g, s, i, j, 0, u0, v0);
      uc(i, j) = u0;
      vc(i, j) = v0;
    }
  if (!fire_u.same_shape(fire_v) || fire_u.nx() != pair.fire.nx) {
    fire_u = util::Array2D<double>(pair.fire.nx, pair.fire.ny);
    fire_v = util::Array2D<double>(pair.fire.nx, pair.fire.ny);
  }
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < pair.fire.ny; ++j) {
    for (int i = 0; i < pair.fire.nx; ++i) {
      const double px = pair.fire.x(i);
      const double py = pair.fire.y(j);
      fire_u(i, j) = grid::bilinear(pair.atmos_hor, uc, px, py);
      fire_v(i, j) = grid::bilinear(pair.atmos_hor, vc, px, py);
    }
  }
}

void aggregate_flux(const MeshPairing& pair,
                    const util::Array2D<double>& fire_flux,
                    util::Array2D<double>& atmos_flux) {
  if (fire_flux.nx() != pair.fire.nx || fire_flux.ny() != pair.fire.ny)
    throw std::invalid_argument("aggregate_flux: fire flux shape mismatch");
  if (atmos_flux.nx() != pair.atmos_hor.nx ||
      atmos_flux.ny() != pair.atmos_hor.ny)
    atmos_flux = util::Array2D<double>(pair.atmos_hor.nx, pair.atmos_hor.ny);
  grid::restrict_average(fire_flux, pair.refine, atmos_flux);
}

}  // namespace wfire::coupling
