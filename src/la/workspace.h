// Scratch-matrix arena for the analysis pipeline. The EnKF used to allocate
// S, Z, W, anomaly and innovation matrices afresh on every analysis call;
// at image-observation sizes that is tens of MB of churn per cycle. A
// Workspace hands out named buffers that are reshaped (never shrunk in
// capacity) on each request, so a cycling driver reaches an allocation-free
// steady state after the first analysis.
//
// Buffers are identified by string key; contents are unspecified on return
// (callers overwrite). A Workspace is not thread-safe — one per analysis
// pipeline, used from its serial phase.
#pragma once

#include <string>
#include <unordered_map>

#include "la/matrix.h"

namespace wfire::la {

class Workspace {
 public:
  // Returns the buffer for `key`, reshaped to rows x cols. Contents are
  // unspecified (previous values or garbage) — the caller must fill them.
  Matrix& mat(const std::string& key, int rows, int cols);

  // Returns the vector for `key`, resized to n. Contents unspecified.
  Vector& vec(const std::string& key, std::size_t n);

  // Drops all buffers (frees memory).
  void clear();

  // Total doubles currently held across all buffers (diagnostics/tests).
  [[nodiscard]] std::size_t held_doubles() const;

 private:
  std::unordered_map<std::string, Matrix> mats_;
  std::unordered_map<std::string, Vector> vecs_;
};

}  // namespace wfire::la
