#include "atmos/state.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

namespace wfire::atmos {

namespace {
inline int wrap(int i, int n) { return (i + n) % n; }
}  // namespace

double AmbientProfile::wind_profile(double z) const {
  constexpr double kRefHeight = 100.0;
  if (z <= roughness_z0) return 0.0;
  if (z >= kRefHeight) return 1.0;
  return std::log(z / roughness_z0) / std::log(kRefHeight / roughness_z0);
}

void initialize_ambient(const grid::Grid3D& g, const AmbientProfile& amb,
                        AtmosState& s) {
  s = AtmosState(g);
  for (int k = 0; k < g.nz; ++k) {
    const double prof = amb.wind_profile(g.zc(k));
    const double uz = amb.wind_u * prof;
    const double vz = amb.wind_v * prof;
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i) {
        s.u(i, j, k) = uz;
        s.v(i, j, k) = vz;
      }
  }
}

double cell_divergence(const grid::Grid3D& g, const AtmosState& s, int i,
                       int j, int k) {
  return (s.u(wrap(i + 1, g.nx), j, k) - s.u(i, j, k)) / g.dx +
         (s.v(i, wrap(j + 1, g.ny), k) - s.v(i, j, k)) / g.dy +
         (s.w(i, j, k + 1) - s.w(i, j, k)) / g.dz;
}

double max_divergence(const grid::Grid3D& g, const AtmosState& s) {
  double worst = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(max : worst))
  for (int k = 0; k < g.nz; ++k)
    for (int j = 0; j < g.ny; ++j)
      for (int i = 0; i < g.nx; ++i)
        worst = std::max(worst, std::abs(cell_divergence(g, s, i, j, k)));
  return worst;
}

double advective_cfl(const grid::Grid3D& g, const AtmosState& s, double dt) {
  const double umax = util::max_abs(s.u);
  const double vmax = util::max_abs(s.v);
  const double wmax = util::max_abs(s.w);
  return dt * (umax / g.dx + vmax / g.dy + wmax / g.dz);
}

void cell_center_wind(const grid::Grid3D& g, const AtmosState& s, int i,
                      int j, int k, double& uc, double& vc) {
  uc = 0.5 * (s.u(i, j, k) + s.u(wrap(i + 1, g.nx), j, k));
  vc = 0.5 * (s.v(i, j, k) + s.v(i, wrap(j + 1, g.ny), k));
}

}  // namespace wfire::atmos
