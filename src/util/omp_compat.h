// OpenMP pragma shim: WFIRE_PRAGMA_OMP(omp parallel for ...) expands to the
// real pragma when the build enables OpenMP (WFIRE_HAVE_OPENMP) and to
// nothing otherwise, so serial builds compile warning-clean without
// -Wunknown-pragmas noise.
#pragma once

#if defined(WFIRE_HAVE_OPENMP)
#define WFIRE_OMP_STRINGIFY(...) #__VA_ARGS__
#define WFIRE_PRAGMA_OMP(...) _Pragma(WFIRE_OMP_STRINGIFY(__VA_ARGS__))
#else
#define WFIRE_PRAGMA_OMP(...)
#endif
