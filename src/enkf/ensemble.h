// Ensemble containers and statistics. An ensemble of model states is stored
// as an n x N matrix (one member per column, contiguous), mirroring the
// paper's Fig. 2 where members live in separate files/processors and the
// EnKF operates on the collection.
#pragma once

#include "la/blas.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace wfire::enkf {

// Column-wise mean of X (length n).
[[nodiscard]] la::Vector ensemble_mean(const la::Matrix& X);

// Same, into a caller-owned buffer (resized; allocation-free when reused).
void ensemble_mean(const la::Matrix& X, la::Vector& mean);

// A = X - mean * 1^T (anomaly matrix).
[[nodiscard]] la::Matrix anomalies(const la::Matrix& X);

// Same, into a caller-owned matrix (reshaped in place).
void anomalies(const la::Matrix& X, la::Matrix& A);

// Same, with the column mean already computed (fully allocation-free).
void anomalies(const la::Matrix& X, const la::Vector& mean, la::Matrix& A);

// Multiplicative inflation about the mean: X <- mean + factor * (X - mean).
void inflate(la::Matrix& X, double factor);

// Mean ensemble spread: sqrt( mean_i( var_i ) ) with the unbiased 1/(N-1)
// variance per coordinate. The scalar "uncertainty in the simulation,
// computed from the spread of the whole ensemble" (paper Fig. 2 caption).
[[nodiscard]] double spread(const la::Matrix& X);

// Sample covariance action: C v = A (A^T v) / (N-1) without forming C.
[[nodiscard]] la::Vector covariance_action(const la::Matrix& A,
                                           const la::Vector& v);

// Builds an initial ensemble by perturbing a base state with iid N(0, std^2)
// noise (the simplest prior; smooth field perturbations live in core/).
[[nodiscard]] la::Matrix perturbed_ensemble(const la::Vector& base, int N,
                                            double stddev, util::Rng& rng);

}  // namespace wfire::enkf
