// Householder QR with least-squares solve. The EnKF replaces the ensemble by
// linear combinations "with the coefficients obtained by solving a least
// squares problem" (paper Sec. 3.3); this is that solver, also used by the
// registration smoothness fits and tested against the normal equations.
#pragma once

#include "la/matrix.h"

namespace wfire::la {

struct QrFactor {
  // Householder vectors stored below the diagonal of `qr`, R on/above it.
  Matrix qr;
  Vector beta;  // Householder scalars
};

// Factors A (m x n, m >= n). Throws on m < n.
[[nodiscard]] QrFactor qr_factor(const Matrix& A);

// Minimizes ||A x - b||_2; returns x (size n). Rank deficiency is reported
// via std::runtime_error (zero diagonal in R).
[[nodiscard]] Vector least_squares(const Matrix& A, const Vector& b);

// Multi-RHS variant: returns X with columns solving each column of B.
[[nodiscard]] Matrix least_squares(const Matrix& A, const Matrix& B);

// Applies Q^T to a vector (in place, size m) given the factor.
void apply_qt(const QrFactor& f, Vector& v);

// Extracts the economy Q (m x n) by applying Householder reflectors to the
// first n columns of the identity.
[[nodiscard]] Matrix economy_q(const QrFactor& f);

// Extracts the n x n upper-triangular R.
[[nodiscard]] Matrix economy_r(const QrFactor& f);

}  // namespace wfire::la
