#include "scene/render.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>

#include "grid/interp.h"

namespace wfire::scene {

Renderer::Renderer(RenderParams p) : p_(p) {}

util::Array2D<double> Renderer::flame_irradiance(
    const grid::Grid2D& fire_grid, const FlameVoxels& flames) const {
  util::Array2D<double> E(fire_grid.nx, fire_grid.ny, 0.0);
  const auto& T = flames.temperature;
  if (flames.max_flame_length <= 0) return E;

  // Collect emitting voxels (subsampled) once; each acts as a small
  // Lambertian source of area dx*dy radiating B_band * (1 - exp(-kappa dz)).
  struct Source {
    double x, y, z, power;  // power = radiance * area [W/sr]
  };
  std::vector<Source> sources;
  const int stride = std::max(1, p_.irradiance_stride);
  const double emit_frac = 1.0 - std::exp(-flames.absorption * flames.dz);
  for (int k = 0; k < T.nz(); k += stride)
    for (int j = 0; j < T.ny(); j += stride)
      for (int i = 0; i < T.nx(); i += stride) {
        const double tv = T(i, j, k);
        if (tv <= 0) continue;
        const double rad = band_radiance(tv, p_.band_lo, p_.band_hi);
        sources.push_back({flames.x0 + i * flames.dx,
                           flames.y0 + j * flames.dy, (k + 0.5) * flames.dz,
                           rad * emit_frac * flames.dx * flames.dy *
                               stride * stride * stride});
      }
  if (sources.empty()) return E;

  // Source-major accumulation restricted to a cutoff radius: beyond ~100 m
  // the inverse-square contribution of a single flame voxel is negligible,
  // and the restriction keeps the cost O(sources * cutoff^2) instead of
  // O(sources * ground nodes).
  constexpr double kCutoff = 100.0;  // [m]
  const int bx = static_cast<int>(kCutoff / fire_grid.dx) + 1;
  const int by = static_cast<int>(kCutoff / fire_grid.dy) + 1;
  for (const Source& s : sources) {
    const int ic = static_cast<int>((s.x - fire_grid.x0) / fire_grid.dx + 0.5);
    const int jc = static_cast<int>((s.y - fire_grid.y0) / fire_grid.dy + 0.5);
    const int j0 = std::max(jc - by, 0), j1 = std::min(jc + by, fire_grid.ny - 1);
    const int i0 = std::max(ic - bx, 0), i1 = std::min(ic + bx, fire_grid.nx - 1);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        const double dx = s.x - fire_grid.x(i), dy = s.y - fire_grid.y(j);
        const double dz = s.z;
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < 1.0 || r2 > kCutoff * kCutoff) continue;
        // cos(incidence at ground) = dz / r; inverse-square falloff.
        E(i, j) += s.power * dz / (r2 * std::sqrt(r2));
      }
    }
  }
  return E;
}

RenderedScene Renderer::render(const Camera& cam,
                               const grid::Grid2D& fire_grid,
                               const util::Array2D<double>& ground_T,
                               const FlameVoxels& flames) const {
  RenderedScene out;
  out.radiance = util::Array2D<double>(cam.npx, cam.npy, 0.0);
  out.brightness = util::Array2D<double>(cam.npx, cam.npy, 0.0);

  const util::Array2D<double> irr = flame_irradiance(fire_grid, flames);
  const double flame_top =
      flames.max_flame_length > 0
          ? flames.temperature.nz() * flames.dz
          : 0.0;
  const double eps = p_.ground_emissivity;

WFIRE_PRAGMA_OMP(omp parallel for schedule(dynamic))
  for (int pj = 0; pj < cam.npy; ++pj) {
    for (int pi = 0; pi < cam.npx; ++pi) {
      const Ray ray = cam.pixel_ray(pi, pj);

      // 1 & 2: march the ray through the flame slab [0, flame_top].
      double radiance = 0;
      double transmit = 1.0;
      if (flame_top > 0 && ray.dz < 0) {
        const double t_enter = (flame_top - ray.oz) / ray.dz;
        const double t_exit = (0.0 - ray.oz) / ray.dz;
        const double step = p_.march_step;
        for (double t = t_enter; t < t_exit; t += step) {
          const double px = ray.ox + t * ray.dx;
          const double py = ray.oy + t * ray.dy;
          const double pz = ray.oz + t * ray.dz;
          const int vi = static_cast<int>((px - flames.x0) / flames.dx + 0.5);
          const int vj = static_cast<int>((py - flames.y0) / flames.dy + 0.5);
          const int vk = static_cast<int>(pz / flames.dz);
          if (!flames.temperature.contains(vi, vj, vk)) continue;
          const double tv = flames.temperature(vi, vj, vk);
          if (tv <= 0) continue;
          const double absorbed = 1.0 - std::exp(-flames.absorption * step);
          radiance += transmit * absorbed *
                      band_radiance(tv, p_.band_lo, p_.band_hi);
          transmit *= 1.0 - absorbed;
          if (transmit < 1e-4) break;
        }
      }

      // Ground intersection; outside the fire grid the terrain radiates at
      // the ambient background temperature.
      const double tg = -ray.oz / ray.dz;
      const double gx = ray.ox + tg * ray.dx;
      const double gy = ray.oy + tg * ray.dy;
      double Tg = p_.background_temperature;
      double Eflame = 0;
      if (fire_grid.contains_point(gx, gy)) {
        Tg = grid::bilinear(fire_grid, ground_T, gx, gy);
        Eflame = grid::bilinear(fire_grid, irr, gx, gy);
      }
      if (Tg > 0) {
        // 1: ground emission;  3: reflected flame irradiance (Lambertian).
        const double ground = eps * band_radiance(Tg, p_.band_lo, p_.band_hi) +
                              (1.0 - eps) * Eflame / M_PI;
        radiance += transmit * ground;
      }

      radiance *= p_.atmos_transmittance;
      out.radiance(pi, pj) = radiance;
      out.brightness(pi, pj) =
          brightness_temperature(radiance, p_.band_lo, p_.band_hi);
    }
  }
  return out;
}

}  // namespace wfire::scene
