#include "fire/model.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::fire {

FireModel::FireModel(const grid::Grid2D& g, FuelMap fuel,
                     util::Array2D<double> terrain, FireModelOptions opt)
    : grid_(g),
      fuel_(std::move(fuel)),
      terrain_(std::move(terrain)),
      opt_(opt) {
  if (fuel_.index.nx() != g.nx || fuel_.index.ny() != g.ny)
    throw std::invalid_argument("FireModel: fuel map does not match grid");
  if (terrain_.nx() != g.nx || terrain_.ny() != g.ny)
    throw std::invalid_argument("FireModel: terrain does not match grid");
  terrain_gradient(grid_, terrain_, dzdx_, dzdy_);
  const double far = g.width() + g.height();
  state_.psi = util::Array2D<double>(g.nx, g.ny, far);
  state_.tig = util::Array2D<double>(g.nx, g.ny, kNotIgnited);
  fuel_frac_ = util::Array2D<double>(g.nx, g.ny, 1.0);
}

void FireModel::ignite(const std::vector<levelset::Ignition>& ignitions) {
  std::vector<levelset::Ignition> now;
  pending_.clear();
  for (const auto& ign : ignitions) {
    if (levelset::ignition_time(ign) <= state_.time)
      now.push_back(ign);
    else
      pending_.push_back(ign);
  }
  if (!now.empty()) {
    levelset::initialize_signed_distance(grid_, now, state_.psi);
    for (int j = 0; j < grid_.ny; ++j)
      for (int i = 0; i < grid_.nx; ++i)
        if (state_.psi(i, j) < 0 && state_.tig(i, j) == kNotIgnited)
          state_.tig(i, j) = state_.time;
  }
}

void FireModel::apply_pending_ignitions() {
  std::vector<levelset::Ignition> due;
  std::vector<levelset::Ignition> later;
  for (const auto& ign : pending_) {
    if (levelset::ignition_time(ign) <= state_.time)
      due.push_back(ign);
    else
      later.push_back(ign);
  }
  pending_ = std::move(later);
  if (due.empty()) return;
  util::Array2D<double> psi_new;
  levelset::initialize_signed_distance(grid_, due, psi_new);
  for (int j = 0; j < grid_.ny; ++j)
    for (int i = 0; i < grid_.nx; ++i) {
      if (psi_new(i, j) < state_.psi(i, j)) state_.psi(i, j) = psi_new(i, j);
      if (state_.psi(i, j) < 0 && state_.tig(i, j) == kNotIgnited)
        state_.tig(i, j) = state_.time;
    }
}

void FireModel::update_ignition_times(const util::Array2D<double>& psi_before,
                                      double t_before, double dt) {
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < grid_.ny; ++j) {
    for (int i = 0; i < grid_.nx; ++i) {
      if (state_.tig(i, j) != kNotIgnited) continue;
      if (state_.psi(i, j) >= 0) continue;
      // The node ignited during this step; linear-in-time crossing estimate.
      const double before = psi_before(i, j);
      const double after = state_.psi(i, j);
      const double denom = before - after;
      const double frac =
          denom > 1e-300 ? std::clamp(before / denom, 0.0, 1.0) : 1.0;
      state_.tig(i, j) = t_before + frac * dt;
    }
  }
}

FireOutputs FireModel::step(double dt,
                            const util::Array2D<double>& wind_u,
                            const util::Array2D<double>& wind_v) {
  FireOutputs out;
  step_into(dt, wind_u, wind_v, out);
  return out;
}

void FireModel::step_into(double dt, const util::Array2D<double>& wind_u,
                          const util::Array2D<double>& wind_v,
                          FireOutputs& out) {
  if (dt <= 0) throw std::invalid_argument("FireModel::step: dt <= 0");
  apply_pending_ignitions();

  SpreadInputs in;
  in.wind_u = &wind_u;
  in.wind_v = &wind_v;
  in.dzdx = &dzdx_;
  in.dzdy = &dzdy_;
  spread_field(grid_, state_.psi, fuel_, in, fuel_frac_, opt_.min_fuel_frac,
               speed_, spread_scratch_);

  if (!psi_before_.same_shape(state_.psi))
    psi_before_ = util::Array2D<double>(grid_.nx, grid_.ny);
  std::copy(state_.psi.begin(), state_.psi.end(), psi_before_.begin());
  const double t_before = state_.time;
  out.step = opt_.use_heun
                 ? levelset::step_heun(grid_, speed_, dt, opt_.scheme,
                                       state_.psi, step_scratch_)
                 : levelset::step_euler(grid_, speed_, dt, opt_.scheme,
                                        state_.psi, step_scratch_);
  state_.time += dt;
  update_ignition_times(psi_before_, t_before, dt);

  if (opt_.reinit_interval > 0 &&
      ++steps_since_reinit_ >= opt_.reinit_interval) {
    levelset::reinitialize(grid_, state_.psi, 2, reinit_scratch_);
    steps_since_reinit_ = 0;
  }

  // Post-frontal heat release: fuel fraction decays as exp(-(t - tig)/tau);
  // the heat flux is proportional to the mass consumed this step.
  if (!out.sensible_flux.same_shape(state_.psi)) {
    out.sensible_flux = util::Array2D<double>(grid_.nx, grid_.ny);
    out.latent_flux = util::Array2D<double>(grid_.nx, grid_.ny);
  }
  out.sensible_flux.fill(0.0);
  out.latent_flux.fill(0.0);
  double total_sens = 0, total_lat = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(+ : total_sens, total_lat))
  for (int j = 0; j < grid_.ny; ++j) {
    for (int i = 0; i < grid_.nx; ++i) {
      const double ti = state_.tig(i, j);
      if (ti == kNotIgnited || ti > state_.time) continue;
      const FuelCategory* cat = fuel_.at(i, j);
      if (cat == nullptr) continue;
      const double age_now = state_.time - ti;
      const double age_before = std::max(t_before - ti, 0.0);
      const double f_before = std::exp(-age_before / cat->tau);
      const double f_now = std::exp(-age_now / cat->tau);
      fuel_frac_(i, j) = f_now;
      const double burned_mass = cat->w0 * (f_before - f_now);  // [kg/m^2]
      const double heat = burned_mass * cat->h / dt;            // [W/m^2]
      const double sens = heat * (1.0 - cat->latent_fraction);
      const double lat = heat * cat->latent_fraction;
      out.sensible_flux(i, j) = sens;
      out.latent_flux(i, j) = lat;
      total_sens += sens;
      total_lat += lat;
    }
  }
  out.total_sensible_power = total_sens * grid_.dx * grid_.dy;
  out.total_latent_power = total_lat * grid_.dx * grid_.dy;
}

FireOutputs FireModel::step_uniform_wind(double dt, double u, double v) {
  FireOutputs out;
  step_uniform_wind_into(dt, u, v, out);
  return out;
}

void FireModel::step_uniform_wind_into(double dt, double u, double v,
                                       FireOutputs& out) {
  if (!uniform_u_.same_shape(state_.psi)) {
    uniform_u_ = util::Array2D<double>(grid_.nx, grid_.ny);
    uniform_v_ = util::Array2D<double>(grid_.nx, grid_.ny);
  }
  uniform_u_.fill(u);
  uniform_v_.fill(v);
  step_into(dt, uniform_u_, uniform_v_, out);
}

void FireModel::set_state(FireState s) {
  if (!s.psi.same_shape(state_.psi) || !s.tig.same_shape(state_.tig))
    throw std::invalid_argument("FireModel::set_state: shape mismatch");
  state_ = std::move(s);
  refresh_fuel_fraction();
}

void FireModel::refresh_fuel_fraction() {
  for (int j = 0; j < grid_.ny; ++j)
    for (int i = 0; i < grid_.nx; ++i) {
      const double ti = state_.tig(i, j);
      const FuelCategory* cat = fuel_.at(i, j);
      if (ti == kNotIgnited || ti > state_.time || cat == nullptr)
        fuel_frac_(i, j) = 1.0;
      else
        fuel_frac_(i, j) = std::exp(-(state_.time - ti) / cat->tau);
    }
}

double FireModel::burned_area() const {
  return levelset::burned_area(grid_, state_.psi);
}

double FireModel::front_length() const {
  return levelset::front_length(levelset::extract_front(grid_, state_.psi));
}

}  // namespace wfire::fire
