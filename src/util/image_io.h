// PGM/PPM image output. Used to dump false-color heat flux maps (paper
// Fig. 1) and synthetic infrared scenes (paper Fig. 3) without any external
// imaging dependency.
#pragma once

#include <array>
#include <string>

#include "util/array2d.h"

namespace wfire::util {

struct Rgb {
  unsigned char r = 0, g = 0, b = 0;
};

// Grayscale 8-bit PGM; values are linearly mapped from [lo, hi] to [0, 255].
// Row 0 of the array is written at the bottom of the image (y up).
void write_pgm(const std::string& path, const Array2D<double>& img, double lo,
               double hi);

// Color PPM from an RGB buffer.
void write_ppm(const std::string& path, const Array2D<Rgb>& img);

// "Hot iron" false-color map (black->red->yellow->white), t in [0,1].
[[nodiscard]] Rgb colormap_hot(double t);

// Blue->green->red map for signed/diverging fields, t in [0,1].
[[nodiscard]] Rgb colormap_jet(double t);

// Renders a scalar field to PPM through a colormap with range [lo, hi].
void write_false_color(const std::string& path, const Array2D<double>& field,
                       double lo, double hi, Rgb (*cmap)(double) = colormap_hot);

}  // namespace wfire::util
