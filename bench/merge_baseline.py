#!/usr/bin/env python3
"""Merges the per-binary Google-Benchmark JSON outputs produced by
bench/capture_baseline.sh into one BENCH_<tag>.json in the same shape as
BENCH_seed.json: for every benchmark, the OpenMP-on and serial real times
plus their ratio, and the benchmark's label (the LA backend) when set.

Usage: merge_baseline.py <capture_dir> <out_json> [--note "..."]
"""
import json
import platform
import subprocess
import sys
from datetime import date
from pathlib import Path

BENCHES = ["bench_fig1_coupled", "bench_fig2_scaling", "bench_risk",
           "bench_serve", "bench_sub_enkf", "bench_sub_la", "bench_sub_qr"]


def load_times(path: Path) -> dict:
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = {
            "real_time": b["real_time"],
            "time_unit": b["time_unit"],
            "label": b.get("label", ""),
        }
    return out


def main() -> int:
    capture_dir = Path(sys.argv[1])
    out_path = Path(sys.argv[2])
    note = ""
    if len(sys.argv) > 4 and sys.argv[3] == "--note":
        note = sys.argv[4]

    nproc = subprocess.run(["nproc"], capture_output=True, text=True)
    merged = {
        "meta": {
            "captured": date.today().isoformat(),
            "machine": f"{platform.node() or 'container'}, "
                       f"{nproc.stdout.strip() or '?'} CPU core(s) visible",
            "note": note,
            "command": "bench/capture_baseline.sh <omp_build> <serial_build> "
                       "<dir> && bench/merge_baseline.py <dir> <out>",
        },
        "benchmarks": {},
    }

    for bench in BENCHES:
        omp = load_times(capture_dir / f"{bench}_omp.json")
        serial = load_times(capture_dir / f"{bench}_serial.json")
        for name, o in omp.items():
            entry = {
                "bench": bench,
                "time_unit": o["time_unit"],
                "real_time_omp": round(o["real_time"], 3),
            }
            if o["label"]:
                entry["backend"] = o["label"]
            s = serial.get(name)
            if s:
                entry["real_time_serial"] = round(s["real_time"], 3)
                if o["real_time"] > 0:
                    entry["serial_over_omp_ratio"] = round(
                        s["real_time"] / o["real_time"], 3)
            merged["benchmarks"][name] = entry

    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
