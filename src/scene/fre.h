// Fire radiated energy / fire radiative power (paper Sec. 3.2): the
// synthetic scenes were "validated by calculation of the fire radiated
// energy and comparing those results to published values derived from
// satellite remote sensing data over wildland fires" (Wooster et al. 2003,
// BIRD/MODIS). Two standard estimators are provided:
//
//  - Stefan-Boltzmann:  FRP = sum_pixels eps * sigma * (T^4 - T_amb^4) * A
//  - Wooster MIR-radiance: FRP ~ A * sigma / a * (L_mir - L_mir_bg), with
//    a the MIR-band power-law coefficient (~3.0e-9 W m^-2 sr^-1 K^-4 for
//    3.9 um class sensors); valid for fire temperatures 600-1500 K.
#pragma once

#include "util/array2d.h"

namespace wfire::scene {

struct FreParams {
  double emissivity = 0.95;
  double T_ambient = 300.0;     // [K]
  double pixel_area = 16.0;     // [m^2]
  double wooster_a = 3.0e-9;    // [W m^-2 sr^-1 um^-1 K^-4]
  double band_width_um = 2.0;   // 3-5 um band: converts band radiance to
                                // per-micron MIR radiance for the a-constant
  double min_fire_T = 400.0;    // pixels cooler than this are background [K]
};

// Stefan-Boltzmann FRP [W] from a brightness-temperature image.
[[nodiscard]] double frp_stefan_boltzmann(
    const util::Array2D<double>& brightness_K, const FreParams& p = {});

// Wooster MIR-radiance FRP [W] from a band-radiance image; the background
// radiance is estimated as the median of non-fire pixels.
[[nodiscard]] double frp_mir_radiance(const util::Array2D<double>& radiance,
                                      const util::Array2D<double>& brightness_K,
                                      const FreParams& p = {});

// Count of fire pixels (brightness above min_fire_T).
[[nodiscard]] int fire_pixel_count(const util::Array2D<double>& brightness_K,
                                   const FreParams& p = {});

}  // namespace wfire::scene
