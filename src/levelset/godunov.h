// Upwinded approximations of ||grad psi|| for the level set equation
// d(psi)/dt + S ||grad psi|| = 0 with S >= 0.
//
// `kPaperRule` implements the scheme exactly as the paper states it:
// "each partial derivative is approximated by the left difference if both
// the left and the central differences are nonnegative, by the right
// difference if both the right and the central differences are nonpositive,
// and taken as zero otherwise."
//
// `kStandardGodunov` is the classical Godunov Hamiltonian for expanding
// fronts: per axis, max(max(D-,0)^2, min(D+,0)^2). Both are exposed so the
// ablation bench can compare them; they agree away from kinks.
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::levelset {

enum class UpwindScheme { kPaperRule, kStandardGodunov, kCentral };

// Computes |grad psi| at every node into `gradmag`. One-sided differences
// fall back to the interior difference on the boundary ring.
void gradient_magnitude(const grid::Grid2D& g,
                        const util::Array2D<double>& psi, UpwindScheme scheme,
                        util::Array2D<double>& gradmag);

// Outward normal n = grad(psi)/|grad(psi)| from central differences; where
// |grad psi| is tiny the normal defaults to (0, 0). Used by the spread-rate
// evaluation (wind and slope are dotted with n).
void normals(const grid::Grid2D& g, const util::Array2D<double>& psi,
             util::Array2D<double>& nx_out, util::Array2D<double>& ny_out);

}  // namespace wfire::levelset
