// Observation framework tests: state-file round trips and in-place
// subvector replacement (the paper's disk-file exchange), the weather
// station operator (biquadratic sampling, fireline check, temperature
// nudge), image observation vectors, and the file-based observation
// function.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "obs/image_obs.h"
#include "obs/obs_function.h"
#include "obs/statefile.h"
#include "obs/weather_station.h"

using namespace wfire;
using namespace wfire::obs;

namespace {
const char* kTmp = "/tmp/wfire_obs_test";

struct TmpDir {
  TmpDir() { std::filesystem::create_directories(kTmp); }
  ~TmpDir() { std::filesystem::remove_all(kTmp); }
};
}  // namespace

TEST(StateFile, RoundTripsSections) {
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/state.wfst";
  Sections in;
  in["psi"] = {1.0, -2.0, 3.5};
  in["tig"] = {0.5, 1e30};
  in["time"] = {42.0};
  StateFile::write(path, in);

  const Sections out = StateFile::read(path);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.at("psi"), in["psi"]);
  EXPECT_EQ(out.at("tig"), in["tig"]);
  EXPECT_EQ(out.at("time"), in["time"]);
}

TEST(StateFile, ListSectionsWithoutPayload) {
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/state.wfst";
  StateFile::write(path, {{"a", {1, 2, 3}}, {"bb", {4}}});
  const auto sections = StateFile::list_sections(path);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "a");
  EXPECT_EQ(sections[0].second, 3u);
  EXPECT_EQ(sections[1].first, "bb");
  EXPECT_EQ(sections[1].second, 1u);
}

TEST(StateFile, ExtractAndReplaceSubvectorInPlace) {
  // The paper: "individual subvectors corresponding to the most common
  // variables are extracted or replaced in the files."
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/state.wfst";
  StateFile::write(path, {{"psi", {1, 2, 3}}, {"tig", {7, 8, 9}}});

  const auto psi = StateFile::extract(path, "psi");
  EXPECT_EQ(psi, (std::vector<double>{1, 2, 3}));

  const std::vector<double> new_tig{70, 80, 90};
  StateFile::replace(path, "tig", new_tig);
  EXPECT_EQ(StateFile::extract(path, "tig"), new_tig);
  // Other sections untouched.
  EXPECT_EQ(StateFile::extract(path, "psi"), (std::vector<double>{1, 2, 3}));
}

TEST(StateFile, ErrorsAreDiagnosed) {
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/state.wfst";
  StateFile::write(path, {{"psi", {1, 2}}});
  EXPECT_THROW(StateFile::extract(path, "missing"), std::runtime_error);
  EXPECT_THROW(StateFile::replace(path, "psi", std::vector<double>{1, 2, 3}),
               std::runtime_error);
  EXPECT_THROW(StateFile::read("/nonexistent/file"), std::runtime_error);
  // Corrupt magic.
  const std::string bad = std::string(kTmp) + "/bad.wfst";
  { std::ofstream out(bad, std::ios::binary); out << "NOPE data"; }
  EXPECT_THROW(StateFile::read(bad), std::runtime_error);
}

TEST(StateFile, WriteLeavesNoTempFile) {
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/atomic.wfst";
  StateFile::write(path, {{"psi", {1, 2, 3}}});
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(StateFile, WriteReplacesStaleTempFromCrashedWriter) {
  // A process killed between opening the temp and the rename leaves
  // path+".tmp" behind; the next successful write must simply overwrite it
  // and still publish atomically.
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/stale.wfst";
  {
    std::ofstream garbage(path + ".tmp", std::ios::binary);
    garbage << "half a checkpoint";
  }
  StateFile::write(path, {{"tig", {4, 5}}});
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(StateFile::extract(path, "tig"), (std::vector<double>{4, 5}));
}

TEST(StateFile, TruncatedFileFailsCleanly) {
  // Simulated torn write at several offsets: the reader must throw a clean
  // runtime_error at every cut, never return short data or crash.
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/torn.wfst";
  StateFile::write(path, {{"psi", {1, 2, 3, 4}}, {"tig", {5, 6}}});
  const auto full = std::filesystem::file_size(path);
  for (const double frac : {0.1, 0.4, 0.7, 0.95}) {
    const auto cut = static_cast<std::uintmax_t>(frac * full);
    const std::string torn = std::string(kTmp) + "/cut.wfst";
    std::filesystem::copy_file(path, torn,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(torn, cut);
    EXPECT_THROW(StateFile::read(torn), std::runtime_error)
        << "truncated at " << cut << " of " << full << " bytes";
  }
  // The untouched original still reads.
  EXPECT_EQ(StateFile::read(path).size(), 2u);
}

TEST(StateFile, TempPathPredicate) {
  EXPECT_TRUE(StateFile::is_temp_path("/a/b/state.wfst.tmp"));
  EXPECT_FALSE(StateFile::is_temp_path("/a/b/state.wfst"));
  EXPECT_FALSE(StateFile::is_temp_path("tmp"));
}

TEST(StateFile, FireStateRoundTrip) {
  TmpDir tmp;
  const std::string path = std::string(kTmp) + "/fire.wfst";
  fire::FireState s;
  s.psi = util::Array2D<double>(5, 4, 2.0);
  s.tig = util::Array2D<double>(5, 4, fire::kNotIgnited);
  s.psi(2, 2) = -1.0;
  s.tig(2, 2) = 33.0;
  s.time = 50.0;
  write_fire_state(path, s);
  const fire::FireState r = read_fire_state(path, 5, 4);
  EXPECT_TRUE(r.psi == s.psi);
  EXPECT_DOUBLE_EQ(r.time, 50.0);
  EXPECT_DOUBLE_EQ(r.tig(2, 2), 33.0);
  EXPECT_THROW(read_fire_state(path, 4, 4), std::runtime_error);
}

TEST(WeatherStation, SamplesFieldsBiquadratically) {
  const grid::Grid2D g(21, 21, 10.0, 10.0);
  // Quadratic temperature field: biquadratic sampling is exact.
  util::Array2D<double> T(21, 21), u(21, 21, 2.0), v(21, 21, -1.0),
      h(21, 21, 0.4), psi(21, 21, 5.0);
  for (int j = 0; j < 21; ++j)
    for (int i = 0; i < 21; ++i) {
      const double x = g.x(i), y = g.y(j);
      T(i, j) = 280.0 + 0.01 * x + 0.002 * x * y / 100.0;
    }
  WeatherStationOperator op(g);
  StationReport rep;
  rep.x = 57.0;
  rep.y = 123.0;
  rep.temperature = 290.0;
  const StationComparison cmp = op.compare(rep, T, u, v, h, psi);
  EXPECT_TRUE(cmp.inside);
  const double exact = 280.0 + 0.01 * 57.0 + 0.002 * 57.0 * 123.0 / 100.0;
  EXPECT_NEAR(cmp.model_temperature, exact, 1e-9);
  EXPECT_NEAR(cmp.d_temperature, 290.0 - exact, 1e-9);
  EXPECT_DOUBLE_EQ(cmp.model_wind_u, 2.0);
  EXPECT_FALSE(cmp.fireline_nearby);
}

TEST(WeatherStation, DetectsFirelineNearby) {
  const grid::Grid2D g(21, 21, 10.0, 10.0);
  util::Array2D<double> T(21, 21, 300.0), u(21, 21, 0.0), v(21, 21, 0.0),
      h(21, 21, 0.3), psi(21, 21, 5.0);
  psi(11, 11) = -1.0;  // burning node
  WeatherStationOperator op(g);
  StationReport near_fire;
  near_fire.x = 105.0;  // cell (10, ...) neighboring the burning node
  near_fire.y = 105.0;
  EXPECT_TRUE(op.compare(near_fire, T, u, v, h, psi).fireline_nearby);
  StationReport far;
  far.x = 15.0;
  far.y = 15.0;
  EXPECT_FALSE(op.compare(far, T, u, v, h, psi).fireline_nearby);
}

TEST(WeatherStation, OutsideDomainIsFlagged) {
  const grid::Grid2D g(11, 11, 10.0, 10.0);
  util::Array2D<double> f(11, 11, 0.0);
  WeatherStationOperator op(g);
  StationReport rep;
  rep.x = -50.0;
  rep.y = 5.0;
  const StationComparison cmp = op.compare(rep, f, f, f, f, f);
  EXPECT_FALSE(cmp.inside);
}

TEST(WeatherStation, NudgeMovesModelTowardObservation) {
  const grid::Grid2D g(21, 21, 10.0, 10.0);
  util::Array2D<double> T(21, 21, 300.0), zero(21, 21, 0.0),
      psi(21, 21, 5.0);
  WeatherStationOperator op(g);
  StationReport rep;
  rep.x = 103.0;
  rep.y = 98.0;
  rep.temperature = 320.0;
  const StationComparison before = op.compare(rep, T, zero, zero, zero, psi);
  op.nudge_temperature(rep, before, 1.0, T);
  const StationComparison after = op.compare(rep, T, zero, zero, zero, psi);
  // Full-weight nudge reproduces the observation at the station.
  EXPECT_NEAR(after.model_temperature, 320.0, 1e-6);
  // Distant nodes untouched.
  EXPECT_DOUBLE_EQ(T(0, 0), 300.0);
  EXPECT_DOUBLE_EQ(T(20, 20), 300.0);
}

TEST(ImageObs, StrideSubsamplesAndErrorsScale) {
  util::Array2D<double> img(8, 8, 0.0);
  img(0, 0) = 100.0;
  ImageObsOptions opt;
  opt.stride = 2;
  opt.error_floor = 1.0;
  opt.rel_error = 0.1;
  const ImageObsVector obs = image_to_obs(img, opt);
  EXPECT_EQ(obs.values.size(), 16u);
  EXPECT_DOUBLE_EQ(obs.values[0], 100.0);
  EXPECT_DOUBLE_EQ(obs.errors[0], 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(obs.errors[1], 1.0);
  EXPECT_THROW(image_to_obs(img, ImageObsOptions{.stride = 0}),
               std::invalid_argument);
}

TEST(ImageObs, SampleLikeExtractsSamePixels) {
  util::Array2D<double> a(6, 6, 0.0), b(6, 6, 0.0);
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 6; ++i) b(i, j) = i + 10 * j;
  ImageObsOptions opt;
  opt.stride = 3;
  const ImageObsVector pattern = image_to_obs(a, opt);
  const std::vector<double> synth = sample_like(b, pattern);
  ASSERT_EQ(synth.size(), pattern.values.size());
  EXPECT_DOUBLE_EQ(synth[0], 0.0);
  EXPECT_DOUBLE_EQ(synth[1], 3.0);
  util::Array2D<double> small(3, 3, 0.0);
  EXPECT_THROW(sample_like(small, pattern), std::invalid_argument);
}

TEST(ObsFunction, HeatFluxImageMatchesFuelDecay) {
  const fire::FuelMap fuel = fire::uniform_fuel(4, 4, fire::kFuelShortGrass);
  const fire::FuelCategory& cat = fire::fuel_catalog()[fire::kFuelShortGrass];
  util::Array2D<double> tig(4, 4, fire::kNotIgnited);
  tig(1, 1) = 0.0;
  tig(2, 2) = 10.0;
  const util::Array2D<double> img = heat_flux_image(fuel, tig, 20.0);
  const auto expected = [&](double age) {
    return cat.w0 * cat.h * (1.0 - cat.latent_fraction) *
           std::exp(-age / cat.tau) / cat.tau;
  };
  EXPECT_NEAR(img(1, 1), expected(20.0), 1e-9);
  EXPECT_NEAR(img(2, 2), expected(10.0), 1e-9);
  EXPECT_DOUBLE_EQ(img(0, 0), 0.0);
  // Younger burn is hotter.
  EXPECT_GT(img(2, 2), img(1, 1));
}

TEST(ObsFunction, Median3x3RemovesSaltNoise) {
  util::Array2D<double> img(9, 9, 0.0);
  img(4, 4) = 1e6;  // isolated hot pixel
  const util::Array2D<double> clean = median3x3(img);
  EXPECT_DOUBLE_EQ(clean(4, 4), 0.0);
  // A solid 3x3 block survives (its center has 9 hot neighbors).
  util::Array2D<double> block(9, 9, 0.0);
  for (int j = 3; j <= 5; ++j)
    for (int i = 3; i <= 5; ++i) block(i, j) = 1e6;
  EXPECT_DOUBLE_EQ(median3x3(block)(4, 4), 1e6);
}

TEST(ObsFunction, FrontDistanceFieldSignsAndFar) {
  const grid::Grid2D g(21, 21, 6.0, 6.0);
  util::Array2D<double> flux(21, 21, 0.0);
  // A 5x5 hot block around (10, 10).
  for (int j = 8; j <= 12; ++j)
    for (int i = 8; i <= 12; ++i) flux(i, j) = 1e5;
  const util::Array2D<double> dist = front_distance_field(flux, g, 5000.0);
  EXPECT_LT(dist(10, 10), 0.0);   // inside the band
  EXPECT_GT(dist(0, 0), 30.0);    // far corner is far
  // Distance grows monotonically moving away from the band along a row.
  EXPECT_LT(dist(13, 10), dist(16, 10));
  EXPECT_LT(dist(16, 10), dist(19, 10));

  // No burning anywhere: the +far sentinel everywhere.
  util::Array2D<double> cold(21, 21, 0.0);
  const util::Array2D<double> far = front_distance_field(cold, g, 5000.0);
  EXPECT_GT(wfire::util::min_value(far), 100.0);
}

TEST(ObsFunction, FrontDistanceRobustToSaltNoise) {
  // Scattered single-pixel noise above the threshold must not punch wells
  // into the distance transform (the denoise step).
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  util::Array2D<double> flux(41, 41, 0.0);
  for (int j = 18; j <= 22; ++j)
    for (int i = 18; i <= 22; ++i) flux(i, j) = 1e5;
  util::Array2D<double> noisy = flux;
  wfire::util::Rng rng(5);
  for (int s = 0; s < 12; ++s)
    noisy(static_cast<int>(rng.uniform_int(41)),
          static_cast<int>(rng.uniform_int(41))) += 5.0e4;
  const util::Array2D<double> clean_d = front_distance_field(flux, g, 5000.0);
  const util::Array2D<double> noisy_d = front_distance_field(noisy, g, 5000.0);
  double max_diff = 0;
  for (int j = 0; j < 41; ++j)
    for (int i = 0; i < 41; ++i)
      max_diff = std::max(max_diff, std::abs(clean_d(i, j) - noisy_d(i, j)));
  EXPECT_LT(max_diff, 1.0);  // transform essentially unchanged
}

TEST(ObsFunction, FileBasedPipelineMatchesInMemory) {
  TmpDir tmp;
  const grid::Grid2D g(11, 11, 6.0, 6.0);
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{30.0, 30.0, 12.0, 0.0}}});
  for (int s = 0; s < 20; ++s) model.step_uniform_wind(0.5, 2.0, 0.0);

  const std::string state_path = std::string(kTmp) + "/m0.wfst";
  const std::string synth_path = std::string(kTmp) + "/m0_synth.wfst";
  write_fire_state(state_path, model.state());
  const util::Array2D<double> from_file = observation_function_file(
      state_path, synth_path, model.fuel(), g.nx, g.ny);
  const util::Array2D<double> in_memory =
      heat_flux_image(model.fuel(), model.state().tig, model.state().time);
  EXPECT_TRUE(from_file == in_memory);

  // The synthetic-data file holds the same image.
  const auto synth = StateFile::extract(synth_path, "heat_flux");
  ASSERT_EQ(synth.size(), in_memory.size());
  for (std::size_t i = 0; i < synth.size(); ++i)
    EXPECT_DOUBLE_EQ(synth[i], in_memory.data()[i]);
}
