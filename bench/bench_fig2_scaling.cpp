// Figure 2 reproduction: the parallel structure of one assimilation cycle.
// Ensemble members are advanced independently (member-parallel), the
// observation function runs per member, and the (morphing) EnKF is the
// global phase "on all processors"; the ensemble optionally lives in disk
// files between stages.
//
// Expected shape: the member-parallel phases (advance, obs function) speed
// up with thread count; the EnKF phase is the serial fraction; the
// file-based exchange adds a roughly constant per-cycle cost.
//
// Benchmark arguments: (members, threads, file_exchange).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/cycle.h"
#include "obs/obs_function.h"

using namespace wfire;

namespace {

constexpr int kGridN = 101;   // 600 m fire domain at 6 m
constexpr double kCycleLen = 10.0;

core::CycleOptions cycle_options(int members, int threads,
                                 bool file_exchange) {
  core::CycleOptions opt;
  opt.members = members;
  opt.threads = threads;
  opt.file_exchange = file_exchange;
  opt.exchange_dir = "/tmp/wfire_bench_fig2";
  opt.ignition_jitter = 20.0;
  opt.morph.sigma_r = 50.0;
  opt.morph.sigma_T = 0.5;
  return opt;
}

core::ObservationImage make_observation(double t) {
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  auto truth = std::make_unique<fire::FireModel>(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g));
  truth->ignite({levelset::Ignition{
      levelset::CircleIgnition{320.0, 300.0, 25.0, 0.0}}});
  core::DataPool pool(std::move(truth), {}, util::Rng(99));
  return pool.observe_at(t);
}

}  // namespace

static void BM_Fig2_AssimilationCycle(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool file_exchange = state.range(2) != 0;

  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  double advance_s = 0, obs_s = 0, enkf_s = 0, file_s = 0;
  int cycles = 0;

  for (auto _ : state) {
    state.PauseTiming();
    core::AssimilationCycle cycle(
        g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
        fire::terrain_flat(g), {}, cycle_options(members, threads,
                                                 file_exchange),
        7);
    cycle.initialize({levelset::Ignition{
        levelset::CircleIgnition{280.0, 300.0, 25.0, 0.0}}});
    const core::ObservationImage obs = make_observation(kCycleLen);
    state.ResumeTiming();

    cycle.advance_to(kCycleLen);
    cycle.assimilate(obs);

    state.PauseTiming();
    for (const auto& t : cycle.runner().timings()) {
      if (t.name == "advance") advance_s += t.seconds;
      else if (t.name == "obs_function") obs_s += t.seconds;
      else if (t.name == "enkf") enkf_s += t.seconds;
      else if (t.name.rfind("file", 0) == 0) file_s += t.seconds;
    }
    ++cycles;
    state.ResumeTiming();
  }
  state.counters["advance_s"] = advance_s / cycles;
  state.counters["obsfn_s"] = obs_s / cycles;
  state.counters["enkf_s"] = enkf_s / cycles;
  state.counters["file_s"] = file_s / cycles;
  state.counters["members"] = members;
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Fig2_AssimilationCycle)
    ->Unit(benchmark::kMillisecond)
    ->Args({8, 1, 0})
    ->Args({8, 2, 0})
    ->Args({16, 1, 0})
    ->Args({16, 2, 0})
    ->Args({25, 1, 0})
    ->Args({25, 2, 0})
    ->Args({16, 2, 1})  // the paper's disk-file pipeline
    ->Iterations(1);

// Member-advance phase in isolation: the embarrassingly parallel part.
// Second argument selects the forward-model path: 0 = per-member reference,
// 1 = batched SoA sweeps (the PR-7 tentpole).
static void BM_Fig2_MemberAdvance(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool batched = state.range(1) != 0;
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  core::CycleOptions opt = cycle_options(16, threads, false);
  opt.advance =
      batched ? core::AdvanceMode::kBatched : core::AdvanceMode::kReference;
  core::AssimilationCycle cycle(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g), {}, opt, 8);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{280.0, 300.0, 25.0, 0.0}}});
  double t = 0;
  for (auto _ : state) {
    t += kCycleLen;
    cycle.advance_to(t);
  }
  state.counters["threads"] = threads;
  state.counters["batched"] = batched ? 1 : 0;
}
BENCHMARK(BM_Fig2_MemberAdvance)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({1, 1})
    ->Args({2, 1});

// The batched SoA advance in isolation: EnsembleBatch loaded once, then
// advanced without the cycle's load/store round trip. Arguments:
// (members, band_cells); band_cells = 0 is the full-grid sweep.
static void BM_Batch_Advance(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const int band_cells = static_cast<int>(state.range(1));
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  const fire::FuelMap fuel =
      fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass);
  const util::Array2D<double> terrain = fire::terrain_flat(g);

  std::vector<std::unique_ptr<fire::FireModel>> models;
  util::Rng rng(9);
  for (int k = 0; k < members; ++k) {
    auto m = std::make_unique<fire::FireModel>(g, fuel, terrain,
                                               fire::FireModelOptions{});
    m->ignite({levelset::Ignition{levelset::CircleIgnition{
        280.0 + rng.normal(0.0, 20.0), 300.0 + rng.normal(0.0, 20.0), 25.0,
        0.0}}});
    models.push_back(std::move(m));
  }
  core::EnsembleBatchOptions bopt;
  bopt.band_cells = band_cells;
  core::EnsembleBatch batch(g, fuel, terrain, fire::FireModelOptions{},
                            members, bopt);
  for (int k = 0; k < members; ++k) {
    util::Rng wrng = util::Rng::stream(9, 100 + k);
    batch.set_member_wind(k, 3.0 + wrng.normal(0.0, 0.5),
                          wrng.normal(0.0, 0.5));
  }
  batch.load(models);
  double t = 0;
  for (auto _ : state) {
    t += kCycleLen;
    batch.advance_to(t, 0.5);
  }
  state.counters["members"] = members;
  state.counters["band_cells"] = band_cells;
  state.counters["band_size"] = batch.band_size();
}
BENCHMARK(BM_Batch_Advance)
    ->Unit(benchmark::kMillisecond)
    ->Args({16, 0})
    ->Args({16, 8})
    ->Args({25, 8});

static void BM_Fig2_FileRoundTrip(benchmark::State& state) {
  // Cost of one member's state round trip through a disk file.
  const grid::Grid2D g(kGridN, kGridN, 6.0, 6.0);
  fire::FireModel model(g, fire::uniform_fuel(g.nx, g.ny,
                                              fire::kFuelShortGrass),
                        fire::terrain_flat(g));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{280.0, 300.0, 25.0, 0.0}}});
  std::filesystem::create_directories("/tmp/wfire_bench_fig2");
  const std::string path = "/tmp/wfire_bench_fig2/member.wfst";
  for (auto _ : state) {
    obs::write_fire_state(path, model.state());
    const fire::FireState s = obs::read_fire_state(path, g.nx, g.ny);
    benchmark::DoNotOptimize(s.time);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(g.nx) * g.ny *
                          static_cast<int64_t>(sizeof(double)) * 2);
}
BENCHMARK(BM_Fig2_FileRoundTrip)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
