// Batched (structure-of-arrays) ensemble of reaction-diffusion fire models —
// the RD analogue of core/ensemble_batch for the level set model. All
// members' temperature/fuel fields live member-contiguous per grid node
// (levelset/batch.h layout contract), so the diffusion/advection/reaction
// update is one fused grid sweep with a unit-stride inner member loop. The
// per-node arithmetic is exactly RdFireModel::step order, so a batch of N
// members is bitwise-equal to N independent scalar models.
#pragma once

#include <vector>

#include "fire/reaction_diffusion.h"
#include "levelset/batch.h"

namespace wfire::fire {

class RdFireBatch {
 public:
  // Shared grid and PDE parameters; `members` is fixed for the batch
  // lifetime. `simd_pad` rounds the member stride up (4 doubles = one AVX2
  // vector); padding lanes sit at ambient temperature with no fuel, which is
  // a fixed point of the update.
  RdFireBatch(const grid::Grid2D& g, RdFireParams p, int members,
              int simd_pad = 4);

  [[nodiscard]] int members() const { return members_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] const RdFireParams& params() const { return p_; }
  [[nodiscard]] double stable_dt() const;

  // Member k's hot spot (RdFireModel::ignite semantics).
  void ignite_member(int k, double cx, double cy, double radius,
                     double T_hot = 800.0);

  // Member k's uniform wind [m/s].
  void set_member_wind(int k, double vx, double vy);

  // One explicit step for all members; throws if dt violates the diffusive
  // stability bound (shared by all members — the bound depends only on grid
  // and diffusivity).
  void step(double dt);

  // Test access: copies member k's field out of the SoA storage.
  [[nodiscard]] util::Array2D<double> T_of(int k) const;
  [[nodiscard]] util::Array2D<double> beta_of(int k) const;

 private:
  grid::Grid2D grid_;
  RdFireParams p_;
  levelset::BatchLayout lay_;
  int members_ = 0;
  double time_ = 0;
  std::vector<double> T_, beta_, T_new_, beta_new_;
  std::vector<double> wind_u_, wind_v_;  // member rows, length stride
};

}  // namespace wfire::fire
