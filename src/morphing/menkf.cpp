#include "morphing/menkf.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfire::morphing {

namespace {

// Ensemble mean of one field index across members.
util::Array2D<double> field_mean(const std::vector<MorphMember>& members,
                                 std::size_t f) {
  const auto& first = members.front().fields[f];
  util::Array2D<double> mean(first.nx(), first.ny(), 0.0);
  for (const auto& m : members)
    for (int j = 0; j < mean.ny(); ++j)
      for (int i = 0; i < mean.nx(); ++i) mean(i, j) += m.fields[f](i, j);
  const double inv = 1.0 / static_cast<double>(members.size());
  for (double& v : mean) v *= inv;
  return mean;
}

}  // namespace

MorphingStats MorphingEnKF::analyze(std::vector<MorphMember>& members,
                                    const util::Array2D<double>& data,
                                    util::Rng& rng, la::Workspace* ws) {
  la::Workspace& arena = ws ? *ws : ws_;
  if (members.empty()) throw std::invalid_argument("MorphingEnKF: no members");
  const std::size_t nfields = members.front().fields.size();
  for (const auto& m : members)
    if (m.fields.size() != nfields)
      throw std::invalid_argument("MorphingEnKF: ragged members");
  const int N = static_cast<int>(members.size());
  const int nx = data.nx(), ny = data.ny();
  if (!members.front().fields[0].same_shape(data))
    throw std::invalid_argument("MorphingEnKF: data shape mismatch");
  const int npix = nx * ny;

  MorphingStats stats;

  // References: per-field ensemble means.
  std::vector<util::Array2D<double>> u0(nfields);
  for (std::size_t f = 0; f < nfields; ++f) u0[f] = field_mean(members, f);

  // Encode members: register field 0, compute residuals for all fields with
  // the member's mapping.
  std::vector<Mapping> T(static_cast<std::size_t>(N));
  std::vector<std::vector<util::Array2D<double>>> R(
      static_cast<std::size_t>(N));
  double reg_res = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(dynamic) reduction(+ : reg_res))
  for (int k = 0; k < N; ++k) {
    RegistrationResult reg =
        register_fields(members[k].fields[0], u0[0], opt_.reg);
    reg_res += reg.data_term;
    T[k] = std::move(reg.T);
    R[k].resize(nfields);
    for (std::size_t f = 0; f < nfields; ++f)
      R[k][f] = morph_residual(members[k].fields[f], u0[f], T[k]);
  }
  stats.mean_registration_residual = reg_res / N;
  for (int k = 0; k < N; ++k)
    stats.max_mapping_norm = std::max(stats.max_mapping_norm, T[k].max_norm());

  // Data image in the same representation.
  RegistrationResult dreg = register_fields(data, u0[0], opt_.reg);
  stats.data_registration_residual = dreg.data_term;
  const util::Array2D<double> rd = morph_residual(data, u0[0], dreg.T);

  // Extended state: [r_f0, r_f1, ..., w*Tx, w*Ty], observation selects
  // [r_f0, w*Tx, w*Ty].
  const int n_state = static_cast<int>(nfields) * npix + 2 * npix;
  const int m_obs = 3 * npix;
  const double w = opt_.t_weight;

  la::Matrix& X = arena.mat("menkf.X", n_state, N);
  la::Matrix& HX = arena.mat("menkf.HX", m_obs, N);
  for (int k = 0; k < N; ++k) {
    auto xc = X.col(k);
    std::size_t pos = 0;
    for (std::size_t f = 0; f < nfields; ++f)
      for (const double v : R[k][f]) xc[pos++] = v;
    for (const double v : T[k].tx) xc[pos++] = w * v;
    for (const double v : T[k].ty) xc[pos++] = w * v;

    auto hc = HX.col(k);
    pos = 0;
    for (const double v : R[k][0]) hc[pos++] = v;
    for (const double v : T[k].tx) hc[pos++] = w * v;
    for (const double v : T[k].ty) hc[pos++] = w * v;
  }

  la::Vector& d = arena.vec("menkf.d", static_cast<std::size_t>(m_obs));
  la::Vector& r_std = arena.vec("menkf.r", static_cast<std::size_t>(m_obs));
  {
    std::size_t pos = 0;
    for (const double v : rd) {
      d[pos] = v;
      r_std[pos] = opt_.sigma_r;
      ++pos;
    }
    for (const double v : dreg.T.tx) {
      d[pos] = w * v;
      r_std[pos] = w * opt_.sigma_T;
      ++pos;
    }
    for (const double v : dreg.T.ty) {
      d[pos] = w * v;
      r_std[pos] = w * opt_.sigma_T;
      ++pos;
    }
  }

  enkf::EnKFOptions eopt;
  eopt.inflation = opt_.inflation;
  eopt.path = opt_.path;
  eopt.factorization = opt_.factorization;
  eopt.qr_scheme = opt_.qr_scheme;
  eopt.workspace = &arena;
  stats.enkf = enkf::enkf_analysis(X, HX, d, r_std, rng, eopt);

  // Decode members back to field form.
WFIRE_PRAGMA_OMP(omp parallel for schedule(dynamic))
  for (int k = 0; k < N; ++k) {
    const auto xc = X.col(k);
    std::size_t pos = 0;
    MorphRep rep;
    rep.r = util::Array2D<double>(nx, ny);
    rep.T = Mapping(nx, ny);
    std::vector<util::Array2D<double>> residuals(nfields);
    for (std::size_t f = 0; f < nfields; ++f) {
      residuals[f] = util::Array2D<double>(nx, ny);
      for (double& v : residuals[f]) v = xc[pos++];
    }
    for (double& v : rep.T.tx) v = xc[pos++] / w;
    for (double& v : rep.T.ty) v = xc[pos++] / w;
    for (std::size_t f = 0; f < nfields; ++f) {
      rep.r = residuals[f];
      members[k].fields[f] = morph_decode(u0[f], rep);
    }
  }
  return stats;
}

enkf::EnKFStats standard_enkf_on_fields(std::vector<MorphMember>& members,
                                        const util::Array2D<double>& data,
                                        double sigma_obs, double inflation,
                                        util::Rng& rng, la::Workspace* ws) {
  if (members.empty())
    throw std::invalid_argument("standard_enkf_on_fields: no members");
  const std::size_t nfields = members.front().fields.size();
  const int N = static_cast<int>(members.size());
  const int npix = data.nx() * data.ny();
  const int n_state = static_cast<int>(nfields) * npix;

  la::Workspace local_ws;
  la::Workspace& arena = ws ? *ws : local_ws;
  la::Matrix& X = arena.mat("std.X", n_state, N);
  la::Matrix& HX = arena.mat("std.HX", npix, N);
  for (int k = 0; k < N; ++k) {
    auto xc = X.col(k);
    std::size_t pos = 0;
    for (std::size_t f = 0; f < nfields; ++f)
      for (const double v : members[k].fields[f]) xc[pos++] = v;
    auto hc = HX.col(k);
    pos = 0;
    for (const double v : members[k].fields[0]) hc[pos++] = v;
  }
  la::Vector& d = arena.vec("std.d", static_cast<std::size_t>(npix));
  la::Vector& r_std = arena.vec("std.r", static_cast<std::size_t>(npix));
  {
    std::size_t pos = 0;
    for (const double v : data) d[pos++] = v;
    std::fill(r_std.begin(), r_std.end(), sigma_obs);
  }
  enkf::EnKFOptions opt;
  opt.inflation = inflation;
  opt.workspace = &arena;
  const enkf::EnKFStats stats = enkf::enkf_analysis(X, HX, d, r_std, rng, opt);

  for (int k = 0; k < N; ++k) {
    const auto xc = X.col(k);
    std::size_t pos = 0;
    for (std::size_t f = 0; f < nfields; ++f)
      for (double& v : members[k].fields[f]) v = xc[pos++];
  }
  return stats;
}

}  // namespace wfire::morphing
