#include "la/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/blas.h"

namespace wfire::la {

EigenSymResult eigen_sym(const Matrix& A, int max_sweeps) {
  const int n = A.rows();
  if (A.cols() != n) throw std::invalid_argument("eigen_sym: not square");
  double asym = 0, scale = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      asym = std::max(asym, std::abs(A(i, j) - A(j, i)));
      scale = std::max(scale, std::abs(A(i, j)));
    }
  if (asym > 1e-10 * std::max(scale, 1.0))
    throw std::invalid_argument("eigen_sym: matrix not symmetric");

  Matrix D = A;
  Matrix V = Matrix::identity(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (int p = 0; p < n - 1; ++p)
      for (int q = p + 1; q < n; ++q) off += D(p, q) * D(p, q);
    if (std::sqrt(off) < 1e-14 * std::max(scale, 1.0)) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::abs(D(p, q)) < 1e-300) continue;
        const double tau = (D(q, q) - D(p, p)) / (2.0 * D(p, q));
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int i = 0; i < n; ++i) {
          const double dip = D(i, p), diq = D(i, q);
          D(i, p) = c * dip - s * diq;
          D(i, q) = s * dip + c * diq;
        }
        for (int i = 0; i < n; ++i) {
          const double dpi = D(p, i), dqi = D(q, i);
          D(p, i) = c * dpi - s * dqi;
          D(q, i) = s * dpi + c * dqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = V(i, p), viq = V(i, q);
          V(i, p) = c * vip - s * viq;
          V(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  EigenSymResult r{Vector(static_cast<std::size_t>(n)), Matrix(n, n)};
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return D(a, a) < D(b, b); });
  for (int jj = 0; jj < n; ++jj) {
    const int j = order[jj];
    r.values[jj] = D(j, j);
    for (int i = 0; i < n; ++i) r.vectors(i, jj) = V(i, j);
  }
  return r;
}

Matrix matrix_function(const EigenSymResult& e, double (*f)(double),
                       double floor) {
  const int n = e.vectors.rows();
  Matrix scaled = e.vectors;  // columns scaled by f(lambda)
  for (int j = 0; j < n; ++j) {
    const double fl = f(std::max(e.values[j], floor));
    for (int i = 0; i < n; ++i) scaled(i, j) *= fl;
  }
  return matmul(scaled, e.vectors, false, true);
}

}  // namespace wfire::la
