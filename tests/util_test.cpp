// Unit tests for the util module: containers, RNG statistics, config
// parsing, CSV/image output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/array2d.h"
#include "util/array3d.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/image_io.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace wu = wfire::util;

TEST(Array2D, IndexingIsRowMajorInX) {
  wu::Array2D<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(Array2D, FillAndReductions) {
  wu::Array2D<double> a(4, 4, 2.5);
  EXPECT_DOUBLE_EQ(wu::sum(a), 40.0);
  a(3, 3) = -1.0;
  EXPECT_DOUBLE_EQ(wu::min_value(a), -1.0);
  EXPECT_DOUBLE_EQ(wu::max_value(a), 2.5);
}

TEST(Array2D, ClampedAccessExtendsEdges) {
  wu::Array2D<double> a(2, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(0, 1) = 3;
  a(1, 1) = 4;
  EXPECT_EQ(a.at_clamped(-1, 0), 1);
  EXPECT_EQ(a.at_clamped(5, 0), 2);
  EXPECT_EQ(a.at_clamped(0, -3), 1);
  EXPECT_EQ(a.at_clamped(1, 9), 4);
}

TEST(Array2D, EqualityAndShape) {
  wu::Array2D<double> a(3, 2, 1.0), b(3, 2, 1.0), c(2, 3, 1.0);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  b(1, 1) = 2.0;
  EXPECT_FALSE(a == b);
}

TEST(Array2D, ThrowsOnNegativeDims) {
  EXPECT_THROW(wu::Array2D<double>(-1, 3), std::invalid_argument);
}

TEST(Array3D, IndexingOrder) {
  wu::Array3D<double> a(2, 2, 2);
  a(0, 0, 0) = 1;
  a(1, 0, 0) = 2;
  a(0, 1, 0) = 3;
  a(0, 0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[4], 4);
}

TEST(Array3D, MaxAbs) {
  wu::Array3D<double> a(2, 2, 2, 0.0);
  a(1, 1, 1) = -7.0;
  EXPECT_DOUBLE_EQ(wu::max_abs(a), 7.0);
}

TEST(Rng, DeterministicGivenSeed) {
  wu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  wu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  wu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  wu::Rng rng(11);
  int counts[5] = {0};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_int(5)];
  for (const int c : counts) {
    EXPECT_GT(c, draws / 5 - 600);
    EXPECT_LT(c, draws / 5 + 600);
  }
}

TEST(Rng, NormalMomentsMatch) {
  wu::Rng rng(3);
  const int n = 200000;
  double mean = 0, var = 0;
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.normal();
    mean += x;
  }
  mean /= n;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= n - 1;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, SpawnGivesIndependentStream) {
  wu::Rng rng(5);
  wu::Rng child = rng.spawn();
  // The child stream should not reproduce the parent's next outputs.
  EXPECT_NE(rng.next_u64(), child.next_u64());
}

TEST(Config, ParsesArgsAndTypes) {
  const char* argv[] = {"prog", "nx=64", "dt=0.25", "name=fire",
                        "coupled=true"};
  const wu::Config cfg = wu::Config::from_args(5, argv);
  EXPECT_EQ(cfg.get_int("nx", 0), 64);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt", 0), 0.25);
  EXPECT_EQ(cfg.get_string("name", ""), "fire");
  EXPECT_TRUE(cfg.get_bool("coupled", false));
  EXPECT_EQ(cfg.get_int("missing", 17), 17);
}

TEST(Config, ThrowsOnBadValue) {
  const char* argv[] = {"prog", "nx=abc"};
  const wu::Config cfg = wu::Config::from_args(2, argv);
  EXPECT_THROW((void)cfg.get_int("nx", 0), std::invalid_argument);
  const char* bad[] = {"p", "noeq"};
  EXPECT_THROW((void)wu::Config::from_args(2, bad), std::invalid_argument);
}

TEST(Config, ParsesFileWithComments) {
  const std::string path = "/tmp/wfire_cfg_test.cfg";
  {
    std::ofstream out(path);
    out << "# comment\n nx = 10 \n dt=0.5 # trailing\n\n";
  }
  const wu::Config cfg = wu::Config::from_file(path);
  EXPECT_EQ(cfg.get_int("nx", 0), 10);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt", 0), 0.5);
  std::filesystem::remove(path);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/wfire_csv_test.csv";
  {
    wu::CsvWriter csv(path, {"t", "x"});
    csv.row({0.0, 1.0});
    csv.row({1.0, 2.5});
    EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,x");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1");
  std::filesystem::remove(path);
}

TEST(ImageIo, WritesPgmAndPpm) {
  wu::Array2D<double> img(8, 4, 0.5);
  const std::string pgm = "/tmp/wfire_test.pgm";
  const std::string ppm = "/tmp/wfire_test.ppm";
  wu::write_pgm(pgm, img, 0.0, 1.0);
  wu::write_false_color(ppm, img, 0.0, 1.0);
  EXPECT_GT(std::filesystem::file_size(pgm), 8u * 4u);
  EXPECT_GT(std::filesystem::file_size(ppm), 3u * 8u * 4u);
  std::filesystem::remove(pgm);
  std::filesystem::remove(ppm);
}

TEST(ImageIo, ColormapEndpoints) {
  const wu::Rgb lo = wu::colormap_hot(0.0);
  const wu::Rgb hi = wu::colormap_hot(1.0);
  EXPECT_EQ(lo.r, 0);
  EXPECT_EQ(lo.g, 0);
  EXPECT_EQ(lo.b, 0);
  EXPECT_EQ(hi.r, 255);
  EXPECT_EQ(hi.g, 255);
  EXPECT_EQ(hi.b, 255);
}

TEST(Log, LevelGatesOutput) {
  const wu::LogLevel before = wu::log_level();
  wu::set_log_level(wu::LogLevel::kError);
  EXPECT_EQ(wu::log_level(), wu::LogLevel::kError);
  // Suppressed and emitted calls must both be safe.
  WFIRE_LOG_DEBUG("suppressed %d", 1);
  WFIRE_LOG_ERROR("emitted %s", "ok");
  wu::set_log_level(before);
}

TEST(Stopwatch, MeasuresElapsed) {
  wu::Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_TRUE(std::isfinite(sink));  // keep the busy loop alive
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}
