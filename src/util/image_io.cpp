#include "util/image_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace wfire::util {

namespace {
unsigned char to_byte(double t) {
  return static_cast<unsigned char>(std::clamp(t, 0.0, 1.0) * 255.0 + 0.5);
}
}  // namespace

void write_pgm(const std::string& path, const Array2D<double>& img, double lo,
               double hi) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << img.nx() << ' ' << img.ny() << "\n255\n";
  const double scale = hi > lo ? 1.0 / (hi - lo) : 0.0;
  for (int j = img.ny() - 1; j >= 0; --j)
    for (int i = 0; i < img.nx(); ++i)
      out.put(static_cast<char>(to_byte((img(i, j) - lo) * scale)));
}

void write_ppm(const std::string& path, const Array2D<Rgb>& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << img.nx() << ' ' << img.ny() << "\n255\n";
  for (int j = img.ny() - 1; j >= 0; --j)
    for (int i = 0; i < img.nx(); ++i) {
      const Rgb& p = img(i, j);
      out.put(static_cast<char>(p.r));
      out.put(static_cast<char>(p.g));
      out.put(static_cast<char>(p.b));
    }
}

Rgb colormap_hot(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Three ramps: red rises on [0,1/3], green on [1/3,2/3], blue on [2/3,1].
  return Rgb{to_byte(3.0 * t), to_byte(3.0 * t - 1.0), to_byte(3.0 * t - 2.0)};
}

Rgb colormap_jet(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const double r = std::clamp(1.5 - std::abs(4.0 * t - 3.0), 0.0, 1.0);
  const double g = std::clamp(1.5 - std::abs(4.0 * t - 2.0), 0.0, 1.0);
  const double b = std::clamp(1.5 - std::abs(4.0 * t - 1.0), 0.0, 1.0);
  return Rgb{to_byte(r), to_byte(g), to_byte(b)};
}

void write_false_color(const std::string& path, const Array2D<double>& field,
                       double lo, double hi, Rgb (*cmap)(double)) {
  Array2D<Rgb> img(field.nx(), field.ny());
  const double scale = hi > lo ? 1.0 / (hi - lo) : 0.0;
  for (int j = 0; j < field.ny(); ++j)
    for (int i = 0; i < field.nx(); ++i)
      img(i, j) = cmap((field(i, j) - lo) * scale);
  write_ppm(path, img);
}

}  // namespace wfire::util
