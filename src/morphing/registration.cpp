#include "morphing/registration.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "grid/interp.h"

namespace wfire::morphing {

namespace {

// Objective evaluation (for reporting and the acceptance test).
double objective(const util::Array2D<double>& u,
                 const util::Array2D<double>& u0, const Mapping& T, double c1,
                 double c2, util::Array2D<double>& warped) {
  const int nx = u.nx(), ny = u.ny();
  warp(u0, T, warped);
  double data = 0, reg1 = 0, reg2 = 0;
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) reduction(+ : data, reg1, reg2))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double e = warped(i, j) - u(i, j);
      data += e * e;
      const double tx = T.tx(i, j), ty = T.ty(i, j);
      reg1 += tx * tx + ty * ty;
      if (i + 1 < nx) {
        const double dx1 = T.tx(i + 1, j) - tx, dy1 = T.ty(i + 1, j) - ty;
        reg2 += dx1 * dx1 + dy1 * dy1;
      }
      if (j + 1 < ny) {
        const double dx2 = T.tx(i, j + 1) - tx, dy2 = T.ty(i, j + 1) - ty;
        reg2 += dx2 * dx2 + dy2 * dy2;
      }
    }
  }
  return (data + c1 * reg1 + c2 * reg2) /
         (static_cast<double>(nx) * ny);
}

// One Gauss-Newton / iterative-warping sweep: linearize
// u0(x + T + dT) ~ u0(x + T) + grad(u0w) . dT and solve pointwise for the
// increment that cancels the residual, with Tikhonov damping alpha.
void gauss_newton_sweep(const util::Array2D<double>& u,
                        const util::Array2D<double>& warped, double alpha,
                        double max_step, Mapping& T) {
  const int nx = u.nx(), ny = u.ny();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double e = warped(i, j) - u(i, j);
      const double gx =
          0.5 * (warped.at_clamped(i + 1, j) - warped.at_clamped(i - 1, j));
      const double gy =
          0.5 * (warped.at_clamped(i, j + 1) - warped.at_clamped(i, j - 1));
      const double denom = gx * gx + gy * gy + alpha;
      double dx = -e * gx / denom;
      double dy = -e * gy / denom;
      // The linearization is only valid within about a pixel.
      dx = std::clamp(dx, -max_step, max_step);
      dy = std::clamp(dy, -max_step, max_step);
      T.tx(i, j) += dx;
      T.ty(i, j) += dy;
    }
  }
}

// Diffusion smoothing of the mapping (the ||grad T||^2 term): a weighted
// Jacobi step toward the 4-neighbor average.
void smooth_mapping(double lambda, Mapping& T, Mapping& scratch) {
  const int nx = T.nx(), ny = T.ny();
  if (!scratch.same_shape(T)) scratch = Mapping(nx, ny);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double ax = 0.25 * (T.tx.at_clamped(i - 1, j) +
                                T.tx.at_clamped(i + 1, j) +
                                T.tx.at_clamped(i, j - 1) +
                                T.tx.at_clamped(i, j + 1));
      const double ay = 0.25 * (T.ty.at_clamped(i - 1, j) +
                                T.ty.at_clamped(i + 1, j) +
                                T.ty.at_clamped(i, j - 1) +
                                T.ty.at_clamped(i, j + 1));
      scratch.tx(i, j) = (1.0 - lambda) * T.tx(i, j) + lambda * ax;
      scratch.ty(i, j) = (1.0 - lambda) * T.ty(i, j) + lambda * ay;
    }
  }
  std::swap(T.tx, scratch.tx);
  std::swap(T.ty, scratch.ty);
}

// Shrinkage toward zero displacement (the ||T||^2 term).
void shrink_mapping(double factor, Mapping& T) {
  if (factor >= 1.0) return;
  for (double& v : T.tx) v *= factor;
  for (double& v : T.ty) v *= factor;
}

// Exhaustive integer-shift search at the coarsest level: returns the
// constant translation minimizing the SSD between u and shifted u0. This
// anchors the multiscale refinement so large displacements cannot strand
// the Gauss-Newton iteration in a local minimum.
void global_shift_search(const util::Array2D<double>& u,
                         const util::Array2D<double>& u0, Mapping& T) {
  const int nx = u.nx(), ny = u.ny();
  const int range_x = nx / 3, range_y = ny / 3;
  double best = 1e300;
  int best_dx = 0, best_dy = 0;
  for (int dy = -range_y; dy <= range_y; ++dy) {
    for (int dx = -range_x; dx <= range_x; ++dx) {
      double ssd = 0;
      for (int j = 0; j < ny; ++j)
        for (int i = 0; i < nx; ++i) {
          const double e = u0.at_clamped(i + dx, j + dy) - u(i, j);
          ssd += e * e;
        }
      if (ssd < best) {
        best = ssd;
        best_dx = dx;
        best_dy = dy;
      }
    }
  }
  T.tx.fill(static_cast<double>(best_dx));
  T.ty.fill(static_cast<double>(best_dy));
}

// Upsample a mapping to (nx, ny), scaling displacements with the resolution.
Mapping upsample(const Mapping& coarse, int nx, int ny) {
  Mapping fine(nx, ny);
  const double sx = static_cast<double>(coarse.nx() - 1) / std::max(nx - 1, 1);
  const double sy = static_cast<double>(coarse.ny() - 1) / std::max(ny - 1, 1);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const double ci = i * sx, cj = j * sy;
      fine.tx(i, j) = grid::bilinear_frac(coarse.tx, ci, cj) / sx;
      fine.ty(i, j) = grid::bilinear_frac(coarse.ty, ci, cj) / sy;
    }
  return fine;
}

}  // namespace

util::Array2D<double> downsample2(const util::Array2D<double>& u) {
  const int nx = std::max(u.nx() / 2, 1), ny = std::max(u.ny() / 2, 1);
  util::Array2D<double> out(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      out(i, j) = 0.25 * (u.at_clamped(2 * i, 2 * j) +
                          u.at_clamped(2 * i + 1, 2 * j) +
                          u.at_clamped(2 * i, 2 * j + 1) +
                          u.at_clamped(2 * i + 1, 2 * j + 1));
  return out;
}

util::Array2D<double> gaussian_smooth(const util::Array2D<double>& u,
                                      double sigma) {
  if (sigma <= 0) return u;
  const int radius = std::max(1, static_cast<int>(std::ceil(2.0 * sigma)));
  std::vector<double> k(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0;
  for (int i = -radius; i <= radius; ++i) {
    k[i + radius] = std::exp(-0.5 * (i * i) / (sigma * sigma));
    sum += k[i + radius];
  }
  for (double& v : k) v /= sum;

  util::Array2D<double> tmp(u.nx(), u.ny()), out(u.nx(), u.ny());
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < u.ny(); ++j)
    for (int i = 0; i < u.nx(); ++i) {
      double s = 0;
      for (int a = -radius; a <= radius; ++a)
        s += k[a + radius] * u.at_clamped(i + a, j);
      tmp(i, j) = s;
    }
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < u.ny(); ++j)
    for (int i = 0; i < u.nx(); ++i) {
      double s = 0;
      for (int a = -radius; a <= radius; ++a)
        s += k[a + radius] * tmp.at_clamped(i, j + a);
      out(i, j) = s;
    }
  return out;
}

RegistrationResult register_fields(const util::Array2D<double>& u,
                                   const util::Array2D<double>& u0,
                                   const RegistrationOptions& opt) {
  if (!u.same_shape(u0))
    throw std::invalid_argument("register_fields: shape mismatch");

  // Build pyramids (level 0 = finest); the coarsest level keeps >= 16 px so
  // compact features are not aliased away.
  std::vector<util::Array2D<double>> pu{u}, pu0{u0};
  while (static_cast<int>(pu.size()) < opt.max_levels &&
         pu.back().nx() >= 32 && pu.back().ny() >= 32) {
    pu.push_back(downsample2(pu.back()));
    pu0.push_back(downsample2(pu0.back()));
  }

  RegistrationResult res;
  res.levels = static_cast<int>(pu.size());
  Mapping T;

  for (int level = res.levels - 1; level >= 0; --level) {
    const util::Array2D<double> ul =
        gaussian_smooth(pu[level], opt.presmooth_sigma);
    const util::Array2D<double> u0l =
        gaussian_smooth(pu0[level], opt.presmooth_sigma);
    const int nx = ul.nx(), ny = ul.ny();
    if (level == res.levels - 1) {
      T = Mapping(nx, ny);
      global_shift_search(ul, u0l, T);
    } else {
      T = upsample(T, nx, ny);
    }

    // Gauss-Newton damping: scaled by the image dynamic range so the
    // behavior is amplitude-invariant.
    double range = 0;
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) range = std::max(range, std::abs(ul(i, j)));
    const double alpha = std::max(1e-12, 1e-4 * range * range);
    const double lambda = std::min(0.45, opt.c2);
    const double shrink = 1.0 / (1.0 + opt.c1);

    util::Array2D<double> warped(nx, ny);
    Mapping scratch(nx, ny);
    double prev = objective(ul, u0l, T, opt.c1, opt.c2, warped);
    for (int it = 0; it < opt.iters_per_level; ++it) {
      gauss_newton_sweep(ul, warped, alpha, opt.initial_step, T);
      smooth_mapping(lambda, T, scratch);
      smooth_mapping(lambda, T, scratch);
      shrink_mapping(shrink, T);
      const double J = objective(ul, u0l, T, opt.c1, opt.c2, warped);
      ++res.iterations;
      if (prev - J < opt.tol * std::max(prev, 1e-300) && it > 4) break;
      prev = J;
    }
  }

  // Final metrics on the unsmoothed finest level.
  util::Array2D<double> warped(u.nx(), u.ny());
  res.objective = objective(u, u0, T, opt.c1, opt.c2, warped);
  double data = 0;
  for (int j = 0; j < u.ny(); ++j)
    for (int i = 0; i < u.nx(); ++i) {
      const double e = warped(i, j) - u(i, j);
      data += e * e;
    }
  res.data_term = data / (static_cast<double>(u.nx()) * u.ny());
  res.T = std::move(T);
  return res;
}

}  // namespace wfire::morphing
