#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace wfire::util {

namespace {
std::string trim(const std::string& s) {
  auto b = s.begin();
  auto e = s.end();
  while (b != e && std::isspace(static_cast<unsigned char>(*b))) ++b;
  while (e != b && std::isspace(static_cast<unsigned char>(*(e - 1)))) --e;
  return {b, e};
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("Config: expected key=value, got " + tok);
    cfg.set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  Config cfg;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("Config: bad line in " + path + ": " + line);
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key " + key + " not a double: " +
                                it->second);
  }
}

int Config::get_int(const std::string& key, int def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const int v = std::stoi(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key " + key + " not an int: " +
                                it->second);
  }
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Config: key " + key + " not a bool: " +
                              it->second);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace wfire::util
