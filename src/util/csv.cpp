#include "util/csv.h"

#include <stdexcept>

namespace wfire::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::vector<double>(values));
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace wfire::util
