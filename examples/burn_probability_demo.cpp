// Monte Carlo burn-probability products end to end: a twin-experiment
// "truth" fire supplies the reference burn; a K-member sweep of Gaussian
// perturbations around a deliberately wind-biased analyst spec runs through
// one scenario-server fleet and reduces into a per-cell burn-probability
// grid; the product cache serves a repeat fetch of the same product without
// re-simulating; and the thresholded surface is validated against the
// reference burn with precision / recall / F1.
//
// The product is bitwise-reproducible: the same (base spec, perturbation)
// on any pool width or admission routing yields the identical grid, which
// the demo verifies by re-running the sweep with opposite execution knobs.
//
// Run:  ./burn_probability_demo [members=64] [minutes=4] [threads=4]
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/data_pool.h"
#include "fire/terrain.h"
#include "risk/product_cache.h"
#include "risk/sweep.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int members = cfg.get_int("members", 64);
  const double horizon = cfg.get_double("minutes", 4.0) * 60.0;
  const int threads = cfg.get_int("threads", 4);

  // --- The hidden truth (paper Fig. 2 twin-experiment regime): a grass
  // fire under a steady wind the analyst does not know exactly.
  const grid::Grid2D g(41, 41, 6.0, 6.0);
  auto truth_model = std::make_unique<fire::FireModel>(
      g, fire::uniform_fuel(g.nx, g.ny, fire::kFuelShortGrass),
      fire::terrain_flat(g));
  truth_model->ignite(
      {levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}});
  core::DataPoolOptions dopt;
  dopt.wind_u = 2.0;
  dopt.wind_v = 0.5;
  core::DataPool pool(std::move(truth_model), dopt, util::Rng(3));
  (void)pool.observe_at(horizon);
  const util::Array2D<double>& ref_tig = *pool.truth_tig();

  // --- The analyst's base spec: same ignition, wind biased by ~0.35 m/s.
  serve::ScenarioSpec base;
  base.nx = 41;
  base.ny = 41;
  base.dx = base.dy = 6.0;
  base.dt = 0.5;
  base.wind_u = 2.3;
  base.wind_v = 0.3;
  base.ignitions = {
      levelset::Ignition{levelset::CircleIgnition{120.0, 120.0, 20.0, 0.0}}};

  risk::PerturbationSpec pert;
  pert.wind_speed_sigma = 0.4;   // [m/s]
  pert.wind_dir_sigma = 0.15;    // [rad]
  pert.moisture_sigma = 0.1;     // lognormal
  pert.burn_time_sigma = 0.1;    // lognormal
  pert.ignition_jitter = 3.0;    // [m]
  pert.seed = 2026;

  risk::SweepOptions opt;
  opt.members = members;
  opt.horizon = horizon;
  opt.threads = threads;

  // --- First fetch computes (one sweep through a private server fleet);
  // the second is served from the cache without touching a fire model.
  risk::ProductCache cache;
  const auto product = cache.fetch(base, pert, opt);
  const auto again = cache.fetch(base, pert, opt);
  std::printf(
      "product %016llx: K=%d members to t=%.0f s on %d threads "
      "(cache: %ld sweep, %ld hit; repeat fetch %s)\n",
      static_cast<unsigned long long>(product->key), members, horizon,
      threads, cache.sweeps_run(), cache.hits(),
      again.get() == product.get() ? "returned the same grid" : "MISMATCH");

  // --- The probability surface vs the reference burn.
  const risk::Scores s = risk::score(*product, 0.5, ref_tig, horizon);
  const double expected_ha = product->expected_burned_area() / 1e4;
  const util::Array2D<double> median_arrival = product->arrival_quantile(0.5);
  double truth_ha = 0;
  for (const double t : ref_tig)
    if (t <= horizon) truth_ha += g.dx * g.dy / 1e4;
  std::printf(
      "expected burned area %.3f ha (truth %.3f ha); at threshold 0.5: "
      "precision %.3f recall %.3f F1 %.3f (tp %ld fp %ld fn %ld)\n",
      expected_ha, truth_ha, s.precision, s.recall, s.f1, s.tp, s.fp, s.fn);
  const double t_med = median_arrival(g.nx / 2, g.ny / 2);
  if (std::isfinite(t_med))
    std::printf("median arrival at domain center: %.1f s\n", t_med);

  // --- The reproducibility contract, demonstrated: the identical product
  // from the opposite execution regime (one thread, everything inline).
  risk::SweepOptions solo = opt;
  solo.threads = 1;
  solo.inline_cell_steps = 1L << 40;
  risk::SweepDriver driver(base, pert, solo);
  const risk::BurnProbabilityGrid alt = driver.run();
  const bool invariant = alt.probability == product->probability &&
                         alt.arrivals == product->arrivals &&
                         alt.key == product->key;
  std::printf("pool-width invariance (inline x1 vs pooled x%d): %s\n",
              threads, invariant ? "bitwise identical" : "DIVERGED");

  // Machine-readable summary for the golden-value smoke check. Every key is
  // deterministic: the sweep is a pure function of (base, perturbation).
  std::printf("SMOKE f1=%.6f\n", s.f1);
  std::printf("SMOKE precision=%.6f\n", s.precision);
  std::printf("SMOKE recall=%.6f\n", s.recall);
  std::printf("SMOKE expected_burned_ha=%.6f\n", expected_ha);
  std::printf("SMOKE cache_hits=%ld\n", cache.hits());
  std::printf("SMOKE cache_sweeps=%ld\n", cache.sweeps_run());
  std::printf("SMOKE pool_invariant=%d\n", invariant ? 1 : 0);
  return 0;
}
