#include "la/workspace.h"

namespace wfire::la {

Matrix& Workspace::mat(const std::string& key, int rows, int cols) {
  Matrix& m = mats_[key];
  m.resize(rows, cols);
  return m;
}

Vector& Workspace::vec(const std::string& key, std::size_t n) {
  Vector& v = vecs_[key];
  v.resize(n);
  return v;
}

void Workspace::clear() {
  mats_.clear();
  vecs_.clear();
}

std::size_t Workspace::held_doubles() const {
  std::size_t total = 0;
  for (const auto& [k, m] : mats_) total += m.size();
  for (const auto& [k, v] : vecs_) total += v.size();
  return total;
}

}  // namespace wfire::la
