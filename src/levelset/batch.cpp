#include "levelset/batch.h"

#include "util/omp_compat.h"

#include <cmath>

namespace wfire::levelset {

namespace {

// Mirrors paper_rule / godunov_sq in godunov.cpp — the per-axis arithmetic
// must stay identical so the batched sweep is bitwise-equal to the scalar
// path.
inline double paper_rule(double dm, double dp, double dc) {
  if (dm >= 0.0 && dc >= 0.0) return dm;
  if (dp <= 0.0 && dc <= 0.0) return dp;
  return 0.0;
}

inline double godunov_sq(double dm, double dp) {
  const double a = std::max(dm, 0.0);
  const double b = std::min(dp, 0.0);
  return std::max(a * a, b * b);
}

// Clamped neighbour cell indices (Array2D::at_clamped semantics: the
// boundary ring reads itself, which zeroes the one-sided difference there).
struct Stencil {
  int xl, xr, yl, yr;
};

inline Stencil stencil_for(int cell, int nx, int ny) {
  const int i = cell % nx;
  const int j = cell / nx;
  Stencil s;
  s.xl = i > 0 ? cell - 1 : cell;
  s.xr = i < nx - 1 ? cell + 1 : cell;
  s.yl = j > 0 ? cell - nx : cell;
  s.yr = j < ny - 1 ? cell + nx : cell;
  return s;
}

// Core gradient sweep, generic over how a cell's member row is fetched
// (full-grid SoA vs compact band field with frozen fallback).
template <typename RowFn>
void gradient_core(const grid::Grid2D& g, const BatchLayout& lay, RowFn row,
                   UpwindScheme scheme, const int* band, int nband,
                   double* grad) {
  const int nx = lay.nx, ny = lay.ny, stride = lay.stride;
  const double ihx = 1.0 / g.dx, ihy = 1.0 / g.dy;

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int b = 0; b < nband; ++b) {
    const int cell = band[b];
    const Stencil st = stencil_for(cell, nx, ny);
    const double* c = row(cell);
    const double* xl = row(st.xl);
    const double* xr = row(st.xr);
    const double* yl = row(st.yl);
    const double* yr = row(st.yr);
    double* out = grad + static_cast<std::size_t>(b) * stride;
    WFIRE_PRAGMA_OMP(omp simd)
    for (int k = 0; k < stride; ++k) {
      const double dxm = (c[k] - xl[k]) * ihx;
      const double dxp = (xr[k] - c[k]) * ihx;
      const double dxc = 0.5 * (xr[k] - xl[k]) * ihx;
      const double dym = (c[k] - yl[k]) * ihy;
      const double dyp = (yr[k] - c[k]) * ihy;
      const double dyc = 0.5 * (yr[k] - yl[k]) * ihy;

      double gx2, gy2;
      switch (scheme) {
        case UpwindScheme::kPaperRule: {
          const double gx = paper_rule(dxm, dxp, dxc);
          const double gy = paper_rule(dym, dyp, dyc);
          gx2 = gx * gx;
          gy2 = gy * gy;
          break;
        }
        case UpwindScheme::kStandardGodunov:
          gx2 = godunov_sq(dxm, dxp);
          gy2 = godunov_sq(dym, dyp);
          break;
        case UpwindScheme::kCentral:
        default:
          gx2 = dxc * dxc;
          gy2 = dyc * dyc;
          break;
      }
      out[k] = std::sqrt(gx2 + gy2);
    }
  }
}

}  // namespace

void gradient_magnitude_batch(const grid::Grid2D& g, const BatchLayout& lay,
                              const double* psi, UpwindScheme scheme,
                              const int* band, int nband, double* grad) {
  const int stride = lay.stride;
  gradient_core(
      g, lay,
      [psi, stride](int cell) {
        return psi + static_cast<std::size_t>(cell) * stride;
      },
      scheme, band, nband, grad);
}

void gradient_magnitude_compact(const grid::Grid2D& g, const BatchLayout& lay,
                                const double* compact, const int* band_pos,
                                const double* fallback, UpwindScheme scheme,
                                const int* band, int nband, double* grad) {
  const int stride = lay.stride;
  gradient_core(
      g, lay,
      [compact, band_pos, fallback, stride](int cell) {
        const int b = band_pos[cell];
        return b >= 0 ? compact + static_cast<std::size_t>(b) * stride
                      : fallback + static_cast<std::size_t>(cell) * stride;
      },
      scheme, band, nband, grad);
}

void step_euler_batch(const grid::Grid2D& g, const BatchLayout& lay,
                      const double* speed, double dt, UpwindScheme scheme,
                      const int* band, int nband, double* psi, double* k1) {
  const int stride = lay.stride;
  gradient_magnitude_batch(g, lay, psi, scheme, band, nband, k1);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int b = 0; b < nband; ++b) {
    double* p = psi + static_cast<std::size_t>(band[b]) * stride;
    const double* s = speed + static_cast<std::size_t>(b) * stride;
    const double* g1 = k1 + static_cast<std::size_t>(b) * stride;
    WFIRE_PRAGMA_OMP(omp simd)
    for (int k = 0; k < stride; ++k) p[k] -= dt * s[k] * g1[k];
  }
}

void step_heun_batch(const grid::Grid2D& g, const BatchLayout& lay,
                     const double* speed, double dt, UpwindScheme scheme,
                     const int* band, int nband, const int* band_pos,
                     double* psi, double* pred, double* k1, double* k2) {
  const int stride = lay.stride;
  gradient_magnitude_batch(g, lay, psi, scheme, band, nband, k1);

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int b = 0; b < nband; ++b) {
    const double* p = psi + static_cast<std::size_t>(band[b]) * stride;
    const double* s = speed + static_cast<std::size_t>(b) * stride;
    const double* g1 = k1 + static_cast<std::size_t>(b) * stride;
    double* pr = pred + static_cast<std::size_t>(b) * stride;
    WFIRE_PRAGMA_OMP(omp simd)
    for (int k = 0; k < stride; ++k) pr[k] = p[k] - dt * s[k] * g1[k];
  }

  gradient_magnitude_compact(g, lay, pred, band_pos, psi, scheme, band, nband,
                             k2);

WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int b = 0; b < nband; ++b) {
    double* p = psi + static_cast<std::size_t>(band[b]) * stride;
    const double* s = speed + static_cast<std::size_t>(b) * stride;
    const double* g1 = k1 + static_cast<std::size_t>(b) * stride;
    const double* g2 = k2 + static_cast<std::size_t>(b) * stride;
    WFIRE_PRAGMA_OMP(omp simd)
    for (int k = 0; k < stride; ++k)
      p[k] -= 0.5 * dt * s[k] * (g1[k] + g2[k]);
  }
}

}  // namespace wfire::levelset
