// Fast sweeping reinitialization: rebuilds psi as a signed distance function
// while preserving the zero contour. Long integrations flatten |grad psi|
// away from 1 near merged fronts; periodic redistancing keeps the Godunov
// gradient well-conditioned. (Zhao's fast sweeping method for |grad d| = 1.)
#pragma once

#include "grid/grid2d.h"
#include "util/array2d.h"

namespace wfire::levelset {

// Replaces psi by the signed distance with the same zero contour.
// `sweeps` Gauss-Seidel passes over the 4 diagonal orderings (2 is usually
// enough; distances converge monotonically from the front outward).
void reinitialize(const grid::Grid2D& g, util::Array2D<double>& psi,
                  int sweeps = 2);

// Same, drawing the distance work array from caller-held scratch so periodic
// redistancing inside a stepping loop stays allocation-free.
void reinitialize(const grid::Grid2D& g, util::Array2D<double>& psi,
                  int sweeps, util::Array2D<double>& dist_scratch);

// Measures the deviation of |grad psi| from 1 in a band around the front
// (|psi| < band). Diagnostic used by tests and the reinit policy.
[[nodiscard]] double eikonal_residual(const grid::Grid2D& g,
                                      const util::Array2D<double>& psi,
                                      double band);

}  // namespace wfire::levelset
