#include "scene/fre.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "scene/planck.h"

namespace wfire::scene {

double frp_stefan_boltzmann(const util::Array2D<double>& brightness_K,
                            const FreParams& p) {
  const double amb4 = std::pow(p.T_ambient, 4);
  double total = 0;
  for (const double T : brightness_K) {
    if (T < p.min_fire_T) continue;
    total += p.emissivity * kStefanBoltzmann * (std::pow(T, 4) - amb4) *
             p.pixel_area;
  }
  return total;
}

double frp_mir_radiance(const util::Array2D<double>& radiance,
                        const util::Array2D<double>& brightness_K,
                        const FreParams& p) {
  // Background radiance: median over non-fire pixels.
  std::vector<double> bg;
  bg.reserve(radiance.size());
  for (int j = 0; j < radiance.ny(); ++j)
    for (int i = 0; i < radiance.nx(); ++i)
      if (brightness_K(i, j) < p.min_fire_T) bg.push_back(radiance(i, j));
  double lbg = 0;
  if (!bg.empty()) {
    const std::size_t mid = bg.size() / 2;
    std::nth_element(bg.begin(), bg.begin() + mid, bg.end());
    lbg = bg[mid];
  }
  double total = 0;
  for (int j = 0; j < radiance.ny(); ++j)
    for (int i = 0; i < radiance.nx(); ++i) {
      if (brightness_K(i, j) < p.min_fire_T) continue;
      // The Wooster a-constant expects per-micron MIR radiance.
      const double dl = (radiance(i, j) - lbg) / p.band_width_um;
      if (dl <= 0) continue;
      total += p.pixel_area * kStefanBoltzmann / p.wooster_a * dl;
    }
  return total;
}

int fire_pixel_count(const util::Array2D<double>& brightness_K,
                     const FreParams& p) {
  int count = 0;
  for (const double T : brightness_K)
    if (T >= p.min_fire_T) ++count;
  return count;
}

}  // namespace wfire::scene
