// Quickstart: the minimal wfire happy path.
//
//   1. build a fire grid with uniform grass fuel and flat terrain,
//   2. ignite a circle,
//   3. run 10 simulated minutes of wind-driven spread,
//   4. print diagnostics and write a false-color heat flux image.
//
// Run:  ./quickstart [wind=3.0] [minutes=10]  (key=value overrides)
#include <cstdio>

#include "fire/model.h"
#include "obs/obs_function.h"
#include "util/config.h"
#include "util/image_io.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  const double wind = cfg.get_double("wind", 3.0);
  const double minutes = cfg.get_double("minutes", 10.0);

  // 720 m x 720 m domain at the paper's 6 m fire mesh.
  const grid::Grid2D grid(121, 121, 6.0, 6.0);
  fire::FireModel model(grid,
                        fire::uniform_fuel(grid.nx, grid.ny,
                                           fire::kFuelShortGrass),
                        fire::terrain_flat(grid));
  model.ignite({levelset::Ignition{
      levelset::CircleIgnition{240.0, 360.0, 25.0, 0.0}}});

  const double dt = 0.5;  // the paper's time step
  const int steps = static_cast<int>(minutes * 60.0 / dt);
  double peak_power = 0;
  for (int s = 0; s < steps; ++s) {
    const fire::FireOutputs out = model.step_uniform_wind(dt, wind, 0.0);
    peak_power = std::max(peak_power, out.total_sensible_power);
  }

  std::printf("simulated %.0f min of grass fire under %.1f m/s wind\n",
              minutes, wind);
  std::printf("burned area:       %.2f ha\n", model.burned_area() / 1e4);
  std::printf("fireline length:   %.0f m\n", model.front_length());
  std::printf("peak fire power:   %.1f MW\n", peak_power / 1e6);

  const util::Array2D<double> flux = obs::heat_flux_image(
      model.fuel(), model.state().tig, model.state().time);
  util::write_false_color("quickstart_heatflux.ppm", flux, 0.0,
                          util::max_value(flux));
  std::printf("wrote quickstart_heatflux.ppm\n");

  // Machine-readable summary for the golden-value smoke check.
  std::printf("SMOKE burned_area_ha=%.6f\n", model.burned_area() / 1e4);
  std::printf("SMOKE front_length_m=%.6f\n", model.front_length());
  return 0;
}
