// Morphing tests: warp algebra (composition, inversion), registration
// recovery of known displacements across magnitudes, morphing transform
// endpoint identities (the corrected Eq. (1)), and the morphing EnKF moving
// a displaced fire toward the data — the paper's core Sec. 3.3 machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "morphing/menkf.h"
#include "morphing/morph.h"
#include "morphing/registration.h"
#include "morphing/warp.h"

using namespace wfire::morphing;
using wfire::util::Array2D;
using wfire::util::Rng;

namespace {

// Smooth blob centered at (cx, cy) in grid units.
Array2D<double> blob(int nx, int ny, double cx, double cy, double radius,
                     double amp = 1.0) {
  Array2D<double> u(nx, ny);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      const double r2 = (i - cx) * (i - cx) + (j - cy) * (j - cy);
      u(i, j) = amp * std::exp(-r2 / (2.0 * radius * radius));
    }
  return u;
}

Mapping constant_mapping(int nx, int ny, double tx, double ty) {
  Mapping T(nx, ny);
  T.tx.fill(tx);
  T.ty.fill(ty);
  return T;
}

double max_field_diff(const Array2D<double>& a, const Array2D<double>& b,
                      int margin) {
  double m = 0;
  for (int j = margin; j < a.ny() - margin; ++j)
    for (int i = margin; i < a.nx() - margin; ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace

TEST(Warp, IdentityMappingIsNoop) {
  const Array2D<double> u = blob(32, 32, 16, 16, 5);
  Mapping T(32, 32);
  Array2D<double> out;
  warp(u, T, out);
  EXPECT_LT(max_field_diff(u, out, 0), 1e-14);
}

TEST(Warp, ConstantShiftSamplesUpstream) {
  const Array2D<double> u = blob(64, 64, 32, 32, 6);
  // (I + T)(x) = x + (8, 0): out(i,j) = u(i+8, j) — the blob appears
  // shifted left by 8.
  const Mapping T = constant_mapping(64, 64, 8.0, 0.0);
  Array2D<double> out;
  warp(u, T, out);
  const Array2D<double> expected = blob(64, 64, 24, 32, 6);
  EXPECT_LT(max_field_diff(out, expected, 10), 1e-10);
}

TEST(Warp, CompositionMatchesSequentialWarp) {
  const Array2D<double> u = blob(64, 64, 36, 30, 6);
  const Mapping T1 = constant_mapping(64, 64, 4.0, -2.0);
  const Mapping T2 = constant_mapping(64, 64, -1.0, 3.0);
  // u o (I+T1) o (I+T2) == u o (I + compose(T1, T2)).
  Array2D<double> step1, step2, direct;
  warp(u, T1, step1);
  warp(step1, T2, step2);
  warp(u, compose(T1, T2), direct);
  EXPECT_LT(max_field_diff(step2, direct, 8), 1e-9);
}

TEST(Warp, InverseComposesToIdentity) {
  // Smooth non-constant mapping, well within the invertibility regime.
  Mapping T(48, 48);
  for (int j = 0; j < 48; ++j)
    for (int i = 0; i < 48; ++i) {
      T.tx(i, j) = 2.0 * std::sin(2 * M_PI * j / 48.0);
      T.ty(i, j) = 1.5 * std::cos(2 * M_PI * i / 48.0);
    }
  const Mapping Tinv = invert(T);
  const Mapping round = compose(T, Tinv);  // (I+T) o (I+Tinv) ~ I
  EXPECT_LT(round.max_norm(), 0.05);
}

TEST(Warp, InverseErrorDiagnostic) {
  Mapping T(32, 32);
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 32; ++i) {
      T.tx(i, j) = 1.5 * std::sin(2 * M_PI * j / 32.0);
      T.ty(i, j) = 1.0 * std::cos(2 * M_PI * i / 32.0);
    }
  const Mapping good = invert(T, 40);
  const Mapping bad = invert(T, 1);
  EXPECT_LT(inverse_error(T, good), inverse_error(T, bad));
  EXPECT_LT(inverse_error(T, good), 0.02);
  // The identity mapping inverts to (numerically) zero error.
  const Mapping id(16, 16);
  EXPECT_NEAR(inverse_error(id, invert(id)), 0.0, 1e-12);
}

TEST(Warp, MaxNormReportsLargestDisplacement) {
  Mapping T(8, 8);
  T.tx(3, 3) = 3.0;
  T.ty(3, 3) = 4.0;
  EXPECT_DOUBLE_EQ(T.max_norm(), 5.0);
}

TEST(Registration, PyramidHelpers) {
  const Array2D<double> u = blob(32, 32, 16, 16, 5);
  const Array2D<double> down = downsample2(u);
  EXPECT_EQ(down.nx(), 16);
  EXPECT_EQ(down.ny(), 16);
  // Downsampling preserves the mean.
  EXPECT_NEAR(wfire::util::sum(down) * 4, wfire::util::sum(u), 1e-6);

  const Array2D<double> smooth = gaussian_smooth(u, 1.5);
  EXPECT_LT(wfire::util::max_value(smooth), wfire::util::max_value(u));
  // Mass conserved up to the clamped-boundary leakage (blob is interior).
  EXPECT_NEAR(wfire::util::sum(smooth), wfire::util::sum(u),
              1e-3 * wfire::util::sum(u));
}

class RegistrationShift
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RegistrationShift, RecoversKnownTranslation) {
  const auto [sx, sy] = GetParam();
  const int n = 64;
  const Array2D<double> u0 = blob(n, n, 32, 32, 7, 100.0);
  const Array2D<double> u = blob(n, n, 32 - sx, 32 - sy, 7, 100.0);
  // u(x) = u0(x + s): registration u ~ u0 o (I+T) should find T ~ s.

  RegistrationOptions opt;
  const RegistrationResult res = register_fields(u, u0, opt);

  // Check the recovered displacement where the blob actually is.
  const int ci = static_cast<int>(32 - sx), cj = static_cast<int>(32 - sy);
  EXPECT_NEAR(res.T.tx(ci, cj), sx, 1.0);
  EXPECT_NEAR(res.T.ty(ci, cj), sy, 1.0);
  // And the data term dropped far below the unregistered mismatch.
  double raw = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      const double e = u(i, j) - u0(i, j);
      raw += e * e;
    }
  raw /= n * n;
  EXPECT_LT(res.data_term, 0.2 * raw);
}

INSTANTIATE_TEST_SUITE_P(Shifts, RegistrationShift,
                         ::testing::Values(std::pair{3.0, 0.0},
                                           std::pair{0.0, 4.0},
                                           std::pair{6.0, -5.0},
                                           std::pair{12.0, 9.0}));

TEST(Registration, IdenticalImagesGiveNearZeroMapping) {
  const Array2D<double> u0 = blob(48, 48, 24, 24, 6, 10.0);
  const RegistrationResult res = register_fields(u0, u0, {});
  EXPECT_LT(res.T.max_norm(), 0.3);
  EXPECT_LT(res.data_term, 1e-6);
}

TEST(Registration, RejectsShapeMismatch) {
  const Array2D<double> a = blob(32, 32, 16, 16, 4);
  const Array2D<double> b = blob(16, 16, 8, 8, 2);
  EXPECT_THROW(register_fields(a, b, {}), std::invalid_argument);
}

TEST(Morph, EndpointIdentities) {
  // u_0 = u0 and u_1 = u (up to interpolation error) for the corrected
  // Eq. (1): u_lambda = (u0 + lambda r) o (I + lambda T).
  const int n = 64;
  const Array2D<double> u0 = blob(n, n, 30, 32, 7, 50.0);
  const Array2D<double> u = blob(n, n, 38, 33, 8, 60.0);
  const MorphRep rep = morph_encode(u, u0, {});

  const Array2D<double> at0 = morph_lambda(u0, rep, 0.0);
  EXPECT_LT(max_field_diff(at0, u0, 2), 1e-10);

  const Array2D<double> at1 = morph_decode(u0, rep);
  // The lambda = 1 endpoint is exact only up to the approximate inverse
  // composed with the forward mapping (first-order in the inversion
  // residual times the image gradient): bound the max pointwise error by
  // 30% of the amplitude and the mean error much tighter.
  EXPECT_LT(max_field_diff(at1, u, 6), 0.3 * 60.0);
  double mean_err = 0;
  for (int j = 6; j < n - 6; ++j)
    for (int i = 6; i < n - 6; ++i) mean_err += std::abs(at1(i, j) - u(i, j));
  mean_err /= (n - 12.0) * (n - 12.0);
  EXPECT_LT(mean_err, 0.03 * 60.0);
}

TEST(Morph, IntermediateStatesMoveMonotonically) {
  // The blob's peak location along the morphing path moves from the u0
  // center toward the u center as lambda goes 0 -> 1.
  const int n = 64;
  const Array2D<double> u0 = blob(n, n, 24, 32, 6, 10.0);
  const Array2D<double> u = blob(n, n, 40, 32, 6, 10.0);
  const MorphRep rep = morph_encode(u, u0, {});

  double prev_peak_x = -1;
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Array2D<double> ul = morph_lambda(u0, rep, lambda);
    int pi = 0, pj = 0;
    double best = -1;
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        if (ul(i, j) > best) {
          best = ul(i, j);
          pi = i;
          pj = j;
        }
    (void)pj;
    EXPECT_GE(pi, prev_peak_x);  // monotone rightward motion
    prev_peak_x = pi;
  }
  EXPECT_GT(prev_peak_x, 34);  // ended near the data location
}

TEST(Morph, ResidualSmallWhenOnlyPositionDiffers) {
  // Position-only error: after registration the amplitude residual is small
  // — exactly why the morphing representation suits misplaced fires.
  const int n = 64;
  const Array2D<double> u0 = blob(n, n, 26, 30, 6, 10.0);
  const Array2D<double> u = blob(n, n, 36, 34, 6, 10.0);
  const MorphRep rep = morph_encode(u, u0, {});
  EXPECT_LT(wfire::util::max_value(rep.r), 3.0);  // << amplitude 10
  EXPECT_GT(rep.T.max_norm(), 5.0);               // position carried by T
}

TEST(MorphingEnKF, PullsDisplacedEnsembleTowardData) {
  // Miniature Fig. 4: ensemble of blobs at a wrong location, data at the
  // truth location. The morphing analysis must move the ensemble toward the
  // data; a standard pixelwise EnKF cannot move it nearly as far.
  const int n = 48;
  Rng rng(21);
  const double true_x = 30, wrong_x = 18, cy = 24;
  const Array2D<double> data = blob(n, n, true_x, cy, 5, 10.0);

  const auto make_members = [&](Rng& r) {
    std::vector<MorphMember> members;
    for (int k = 0; k < 12; ++k) {
      MorphMember m;
      m.fields.push_back(blob(n, n, wrong_x + r.normal() * 1.5,
                              cy + r.normal() * 1.5, 5, 10.0));
      members.push_back(std::move(m));
    }
    return members;
  };

  const auto centroid_x = [&](const Array2D<double>& f) {
    double sx = 0, sw = 0;
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        if (f(i, j) > 1.0) {
          sx += i * f(i, j);
          sw += f(i, j);
        }
    return sw > 0 ? sx / sw : 0.0;
  };

  // Morphing EnKF.
  Rng rng_m(22);
  std::vector<MorphMember> morph_members = make_members(rng_m);
  MorphingEnKFOptions mopt;
  mopt.sigma_r = 0.5;
  mopt.sigma_T = 0.5;
  MorphingEnKF filter(mopt);
  filter.analyze(morph_members, data, rng_m);
  double morph_mean_x = 0;
  for (const auto& m : morph_members) morph_mean_x += centroid_x(m.fields[0]);
  morph_mean_x /= morph_members.size();

  // Standard EnKF baseline.
  Rng rng_s(22);
  std::vector<MorphMember> std_members = make_members(rng_s);
  standard_enkf_on_fields(std_members, data, 0.5, 1.0, rng_s);
  double std_mean_x = 0;
  for (const auto& m : std_members) std_mean_x += centroid_x(m.fields[0]);
  std_mean_x /= std_members.size();

  // Morphing moved the fire most of the way to the truth.
  EXPECT_GT(morph_mean_x, wrong_x + 0.6 * (true_x - wrong_x));
  // And clearly beats the standard filter's position correction.
  EXPECT_GT(morph_mean_x, std_mean_x + 2.0);
}

TEST(MorphingEnKF, CompanionFieldsMoveWithTheObservable) {
  // Members carry a companion field; the analysis must move it coherently
  // with the registration field (shared mapping T).
  const int n = 48;
  Rng rng(31);
  const Array2D<double> data = blob(n, n, 30, 24, 5, 10.0);
  std::vector<MorphMember> members;
  for (int k = 0; k < 10; ++k) {
    MorphMember m;
    const double cx = 18 + rng.normal();
    m.fields.push_back(blob(n, n, cx, 24, 5, 10.0));      // observable
    m.fields.push_back(blob(n, n, cx, 24, 8, -20.0));     // companion (psi-ish)
    members.push_back(std::move(m));
  }
  MorphingEnKFOptions mopt;
  mopt.sigma_r = 0.5;
  mopt.sigma_T = 0.5;
  MorphingEnKF filter(mopt);
  filter.analyze(members, data, rng);

  // Companion minimum follows the observable peak.
  for (const auto& m : members) {
    int pi = 0, qi = 0;
    double best = -1, worst = 1;
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        if (m.fields[0](i, j) > best) { best = m.fields[0](i, j); pi = i; }
        if (m.fields[1](i, j) < worst) { worst = m.fields[1](i, j); qi = i; }
      }
    EXPECT_NEAR(pi, qi, 4);
  }
}

TEST(MorphingEnKF, ValidatesInputs) {
  MorphingEnKF filter;
  std::vector<MorphMember> empty;
  Rng rng(1);
  Array2D<double> data(8, 8, 0.0);
  EXPECT_THROW(filter.analyze(empty, data, rng), std::invalid_argument);

  std::vector<MorphMember> ragged(2);
  ragged[0].fields.push_back(Array2D<double>(8, 8, 0.0));
  ragged[1].fields.push_back(Array2D<double>(8, 8, 0.0));
  ragged[1].fields.push_back(Array2D<double>(8, 8, 0.0));
  EXPECT_THROW(filter.analyze(ragged, data, rng), std::invalid_argument);
}
