#!/usr/bin/env bash
# Captures the Fig. 1 coupled / Fig. 2 / EnKF / LA-kernel benchmark baseline
# into JSON files
# for an OpenMP-on Release build and a serial (-DWFIRE_OPENMP=OFF) Release
# build. Merge the four outputs into BENCH_<tag>.json with merge_baseline.py.
#
# Usage: bench/capture_baseline.sh <omp_build_dir> <serial_build_dir> <outdir>
set -euo pipefail
omp_dir=$1
serial_dir=$2
outdir=$3
mkdir -p "$outdir"

for bench in bench_fig1_coupled bench_fig2_scaling bench_risk bench_serve bench_sub_enkf bench_sub_la bench_sub_qr; do
  "$omp_dir/bench/$bench" \
    --benchmark_out="$outdir/${bench}_omp.json" \
    --benchmark_out_format=json >/dev/null
  "$serial_dir/bench/$bench" \
    --benchmark_out="$outdir/${bench}_serial.json" \
    --benchmark_out_format=json >/dev/null
done
echo "captured into $outdir"
