// Image observations: thermal images of the fire "will provide the
// observations and will be compared to a synthetic image from the model
// state" (paper abstract). This module flattens images into observation
// vectors with per-pixel error bounds, optionally subsampled (full-frame
// IR images are highly redundant; assimilating every k-th pixel keeps the
// EnKF solve tractable without losing the front position).
#pragma once

#include <vector>

#include "util/array2d.h"

namespace wfire::obs {

struct ImageObsOptions {
  int stride = 1;           // take every stride-th pixel in x and y
  double error_floor = 1.0; // minimum obs error std (data units)
  double rel_error = 0.05;  // fractional error added on the magnitude
};

struct ImageObsVector {
  std::vector<double> values;  // observations d
  std::vector<double> errors;  // r_std, same length
  std::vector<int> pixel_i, pixel_j;  // source pixel of each entry
};

// Flattens an image into an observation vector.
[[nodiscard]] ImageObsVector image_to_obs(const util::Array2D<double>& img,
                                          const ImageObsOptions& opt = {});

// Extracts the same pixels from a (synthetic) image — the observation
// function applied to a member's rendered scene. The layout matches
// image_to_obs with identical options and image shape.
[[nodiscard]] std::vector<double> sample_like(
    const util::Array2D<double>& synthetic, const ImageObsVector& pattern);

}  // namespace wfire::obs
