#include "morphing/morph.h"

#include <stdexcept>

namespace wfire::morphing {

util::Array2D<double> morph_residual(const util::Array2D<double>& u,
                                     const util::Array2D<double>& u0,
                                     const Mapping& T) {
  if (!u.same_shape(u0))
    throw std::invalid_argument("morph_residual: shape mismatch");
  const Mapping Tinv = invert(T);
  util::Array2D<double> warped;
  warp(u, Tinv, warped);  // u o (I+T)^{-1}
  for (int j = 0; j < u.ny(); ++j)
    for (int i = 0; i < u.nx(); ++i) warped(i, j) -= u0(i, j);
  return warped;
}

MorphRep morph_encode(const util::Array2D<double>& u,
                      const util::Array2D<double>& u0,
                      const RegistrationOptions& opt) {
  RegistrationResult reg = register_fields(u, u0, opt);
  MorphRep rep;
  rep.r = morph_residual(u, u0, reg.T);
  rep.T = std::move(reg.T);
  return rep;
}

util::Array2D<double> morph_decode(const util::Array2D<double>& u0,
                                   const MorphRep& rep) {
  return morph_lambda(u0, rep, 1.0);
}

util::Array2D<double> morph_lambda(const util::Array2D<double>& u0,
                                   const MorphRep& rep, double lambda) {
  if (!u0.same_shape(rep.r))
    throw std::invalid_argument("morph_lambda: shape mismatch");
  util::Array2D<double> base(u0.nx(), u0.ny());
  for (int j = 0; j < u0.ny(); ++j)
    for (int i = 0; i < u0.nx(); ++i)
      base(i, j) = u0(i, j) + lambda * rep.r(i, j);
  Mapping lt = rep.T;
  lt.scale(lambda);
  util::Array2D<double> out;
  warp(base, lt, out);
  return out;
}

}  // namespace wfire::morphing
