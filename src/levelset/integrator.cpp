#include "levelset/integrator.h"

#include "util/omp_compat.h"

#include <algorithm>
#include <stdexcept>

namespace wfire::levelset {

namespace {
StepStats stats_for(const grid::Grid2D& g, const util::Array2D<double>& speed,
                    double dt) {
  StepStats st;
  st.max_speed = util::max_value(speed);
  st.cfl = st.max_speed * dt / std::min(g.dx, g.dy);
  return st;
}
}  // namespace

StepStats step_euler(const grid::Grid2D& g, const util::Array2D<double>& speed,
                     double dt, UpwindScheme scheme,
                     util::Array2D<double>& psi) {
  StepScratch scratch;
  return step_euler(g, speed, dt, scheme, psi, scratch);
}

StepStats step_euler(const grid::Grid2D& g, const util::Array2D<double>& speed,
                     double dt, UpwindScheme scheme, util::Array2D<double>& psi,
                     StepScratch& scratch) {
  if (!speed.same_shape(psi))
    throw std::invalid_argument("step_euler: speed/psi shape mismatch");
  gradient_magnitude(g, psi, scheme, scratch.k1);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      psi(i, j) -= dt * speed(i, j) * scratch.k1(i, j);
  return stats_for(g, speed, dt);
}

StepStats step_heun(const grid::Grid2D& g, const util::Array2D<double>& speed,
                    double dt, UpwindScheme scheme,
                    util::Array2D<double>& psi) {
  StepScratch scratch;
  return step_heun(g, speed, dt, scheme, psi, scratch);
}

StepStats step_heun(const grid::Grid2D& g, const util::Array2D<double>& speed,
                    double dt, UpwindScheme scheme, util::Array2D<double>& psi,
                    StepScratch& scratch) {
  if (!speed.same_shape(psi))
    throw std::invalid_argument("step_heun: speed/psi shape mismatch");
  util::Array2D<double>& k1 = scratch.k1;
  util::Array2D<double>& k2 = scratch.k2;
  util::Array2D<double>& predictor = scratch.predictor;
  gradient_magnitude(g, psi, scheme, k1);

  if (!predictor.same_shape(psi))
    predictor = util::Array2D<double>(g.nx, g.ny);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      predictor(i, j) = psi(i, j) - dt * speed(i, j) * k1(i, j);

  gradient_magnitude(g, predictor, scheme, k2);
WFIRE_PRAGMA_OMP(omp parallel for schedule(static))
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      psi(i, j) -= 0.5 * dt * speed(i, j) * (k1(i, j) + k2(i, j));
  return stats_for(g, speed, dt);
}

double stable_dt(const grid::Grid2D& g, const util::Array2D<double>& speed,
                 double cfl) {
  const double smax = util::max_value(speed);
  if (smax <= 0) return 1e9;
  return cfl * std::min(g.dx, g.dy) / smax;
}

}  // namespace wfire::levelset
