#include "levelset/fast_sweep.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "levelset/godunov.h"

namespace wfire::levelset {

namespace {

// Local Eikonal update at a node given the smallest neighbor distances a
// (x-direction) and b (y-direction): solve (d-a)+^2/hx^2 + (d-b)+^2/hy^2 = 1.
double eikonal_update(double a, double b, double hx, double hy) {
  if (a > b) {
    std::swap(a, b);
    std::swap(hx, hy);
  }
  // Try the one-sided solution first.
  double d = a + hx;
  if (d <= b) return d;
  // Two-sided quadratic solution.
  const double hx2 = hx * hx, hy2 = hy * hy;
  const double sum = a * hy2 + b * hx2;
  const double disc = sum * sum - (hy2 + hx2) * (a * a * hy2 + b * b * hx2 -
                                                 hx2 * hy2);
  if (disc < 0) return d;
  return (sum + std::sqrt(disc)) / (hx2 + hy2);
}

}  // namespace

void reinitialize(const grid::Grid2D& g, util::Array2D<double>& psi,
                  int sweeps) {
  util::Array2D<double> dist;
  reinitialize(g, psi, sweeps, dist);
}

void reinitialize(const grid::Grid2D& g, util::Array2D<double>& psi,
                  int sweeps, util::Array2D<double>& dist_scratch) {
  const int nx = g.nx, ny = g.ny;
  const double inf = std::numeric_limits<double>::infinity();
  if (!dist_scratch.same_shape(psi))
    dist_scratch = util::Array2D<double>(nx, ny);
  util::Array2D<double>& dist = dist_scratch;
  dist.fill(inf);

  // Freeze first-order-accurate distances on nodes adjacent to the front:
  // for each sign-changing edge, the distance to the crossing point.
  bool any_interface = false;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double c = psi(i, j);
      auto consider = [&](int ii, int jj, double h) {
        if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) return;
        const double n = psi(ii, jj);
        if ((c < 0) != (n < 0) || c == 0.0) {
          const double frac = c == n ? 0.5 : std::abs(c) / std::abs(c - n);
          dist(i, j) = std::min(dist(i, j), frac * h);
          any_interface = true;
        }
      };
      consider(i - 1, j, g.dx);
      consider(i + 1, j, g.dx);
      consider(i, j - 1, g.dy);
      consider(i, j + 1, g.dy);
    }
  }
  if (!any_interface) return;  // nothing to do: uniform sign field

  // Four diagonal sweep orderings propagate distances from the frozen band.
  auto sweep = [&](int i0, int i1, int istep, int j0, int j1, int jstep) {
    for (int j = j0; j != j1; j += jstep) {
      for (int i = i0; i != i1; i += istep) {
        const double a = std::min(i > 0 ? dist(i - 1, j) : inf,
                                  i < nx - 1 ? dist(i + 1, j) : inf);
        const double b = std::min(j > 0 ? dist(i, j - 1) : inf,
                                  j < ny - 1 ? dist(i, j + 1) : inf);
        if (!std::isfinite(a) && !std::isfinite(b)) continue;
        double d;
        if (!std::isfinite(b)) d = a + g.dx;
        else if (!std::isfinite(a)) d = b + g.dy;
        else d = eikonal_update(a, b, g.dx, g.dy);
        dist(i, j) = std::min(dist(i, j), d);
      }
    }
  };
  for (int s = 0; s < sweeps; ++s) {
    sweep(0, nx, 1, 0, ny, 1);
    sweep(nx - 1, -1, -1, 0, ny, 1);
    sweep(0, nx, 1, ny - 1, -1, -1);
    sweep(nx - 1, -1, -1, ny - 1, -1, -1);
  }

  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      psi(i, j) = psi(i, j) < 0 ? -dist(i, j) : dist(i, j);
}

double eikonal_residual(const grid::Grid2D& g,
                        const util::Array2D<double>& psi, double band) {
  util::Array2D<double> grad;
  gradient_magnitude(g, psi, UpwindScheme::kCentral, grad);
  double worst = 0;
  int count = 0;
  // Skip the outermost ring where one-sided clamping biases the gradient.
  for (int j = 1; j < g.ny - 1; ++j) {
    for (int i = 1; i < g.nx - 1; ++i) {
      if (std::abs(psi(i, j)) >= band) continue;
      worst = std::max(worst, std::abs(grad(i, j) - 1.0));
      ++count;
    }
  }
  return count > 0 ? worst : 0.0;
}

}  // namespace wfire::levelset
