#include "enkf/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "enkf/ensemble.h"

namespace wfire::enkf {

double rmse_mean_vs_truth(const la::Matrix& X, const la::Vector& truth) {
  return rmse(ensemble_mean(X), truth);
}

double rmse(const la::Vector& a, const la::Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

std::vector<int> rank_histogram(const la::Matrix& X, const la::Vector& truth,
                                int stride) {
  const int n = X.rows(), N = X.cols();
  if (static_cast<int>(truth.size()) != n)
    throw std::invalid_argument("rank_histogram: truth size mismatch");
  if (stride < 1) throw std::invalid_argument("rank_histogram: stride < 1");
  std::vector<int> hist(static_cast<std::size_t>(N) + 1, 0);
  std::vector<double> vals(static_cast<std::size_t>(N));
  for (int i = 0; i < n; i += stride) {
    for (int k = 0; k < N; ++k) vals[k] = X(i, k);
    const int rank = static_cast<int>(
        std::count_if(vals.begin(), vals.end(),
                      [&](double v) { return v < truth[i]; }));
    ++hist[static_cast<std::size_t>(rank)];
  }
  return hist;
}

double histogram_chi2(const std::vector<int>& hist) {
  const double total =
      static_cast<double>(std::accumulate(hist.begin(), hist.end(), 0));
  if (total == 0 || hist.empty()) return 0.0;
  const double expected = total / static_cast<double>(hist.size());
  double chi2 = 0;
  for (const int h : hist) {
    const double d = h - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double crps(const la::Matrix& X, const la::Vector& truth, int stride) {
  const int n = X.rows(), N = X.cols();
  if (static_cast<int>(truth.size()) != n)
    throw std::invalid_argument("crps: truth size mismatch");
  double total = 0;
  int count = 0;
  std::vector<double> vals(static_cast<std::size_t>(N));
  for (int i = 0; i < n; i += stride) {
    for (int k = 0; k < N; ++k) vals[k] = X(i, k);
    double t1 = 0;
    for (int k = 0; k < N; ++k) t1 += std::abs(vals[k] - truth[i]);
    t1 /= N;
    std::sort(vals.begin(), vals.end());
    // Pairwise mean |x_k - x_l| in O(N log N) using the sorted prefix sums.
    double t2 = 0, prefix = 0;
    for (int k = 0; k < N; ++k) {
      t2 += vals[k] * k - prefix;
      prefix += vals[k];
    }
    t2 = 2.0 * t2 / (static_cast<double>(N) * N);
    total += t1 - 0.5 * t2;
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace wfire::enkf
