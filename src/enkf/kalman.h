// Exact Kalman filter update for linear-Gaussian problems. Not used by the
// fire system itself; it is the ground truth the EnKF tests converge to as
// the ensemble size grows (a property the paper's method inherits from
// Evensen's formulation).
#pragma once

#include "la/matrix.h"

namespace wfire::enkf {

struct KalmanState {
  la::Vector mean;  // n
  la::Matrix cov;   // n x n
};

// Analysis update with observation operator H (m x n) and R = diag(r_std^2):
//   K = P H^T (H P H^T + R)^{-1},  mean += K (d - H mean),  P = (I - K H) P.
[[nodiscard]] KalmanState kalman_update(const KalmanState& prior,
                                        const la::Matrix& H,
                                        const la::Vector& d,
                                        const la::Vector& r_std);

// Forecast through linear dynamics x <- M x (+ model noise Q):
//   mean = M mean,  P = M P M^T + Q.
[[nodiscard]] KalmanState kalman_forecast(const KalmanState& state,
                                          const la::Matrix& M,
                                          const la::Matrix& Q);

}  // namespace wfire::enkf
