// The "towards real-time" loop (paper title): wall-clock-paced assimilation
// cycles consuming a timestamped observation stream. Reports per cycle
// whether the computation met the real-time deadline implied by the
// requested speedup factor.
//
// Run:  ./realtime_driver [cycles=5] [interval=30] [speedup=10]
//                         [members=12]
#include <cstdio>
#include <memory>

#include "core/realtime.h"
#include "util/config.h"

int main(int argc, char** argv) {
  using namespace wfire;
  const util::Config cfg = util::Config::from_args(argc, argv);
  core::RealTimeOptions ropt;
  ropt.cycles = cfg.get_int("cycles", 5);
  ropt.cycle_interval = cfg.get_double("interval", 30.0);
  ropt.speedup = cfg.get_double("speedup", 10.0);
  ropt.pace = false;
  const int members = cfg.get_int("members", 12);

  const grid::Grid2D grid(101, 101, 6.0, 6.0);
  auto truth = std::make_unique<fire::FireModel>(
      grid, fire::uniform_fuel(grid.nx, grid.ny, fire::kFuelShortGrass),
      fire::terrain_flat(grid));
  truth->ignite({levelset::Ignition{
      levelset::CircleIgnition{330.0, 300.0, 25.0, 0.0}}});
  core::DataPoolOptions dopt;
  dopt.noise_std = 1500.0;
  dopt.wind_u = 2.0;
  core::DataPool pool(std::move(truth), dopt, util::Rng(7));

  core::CycleOptions copt;
  copt.members = members;
  copt.wind_u = 2.0;
  copt.ignition_jitter = 20.0;
  copt.morph.sigma_r = 50.0;
  copt.morph.sigma_T = 0.5;
  core::AssimilationCycle cycle(
      grid, fire::uniform_fuel(grid.nx, grid.ny, fire::kFuelShortGrass),
      fire::terrain_flat(grid), {}, copt, 22);
  cycle.initialize({levelset::Ignition{
      levelset::CircleIgnition{270.0, 300.0, 25.0, 0.0}}});

  std::printf("real-time drive: %d members, obs every %.0f s sim time, "
              "speedup target %.0fx\n",
              members, ropt.cycle_interval, ropt.speedup);
  core::RealTimeDriver driver(cycle, pool, ropt);
  const std::vector<core::CycleRecord> records = driver.run();

  std::printf("%8s %10s %12s %10s %12s\n", "t[s]", "wall[s]", "deadline[s]",
              "on time?", "pos_err[m]");
  int met = 0;
  for (const auto& r : records) {
    std::printf("%8.0f %10.2f %12.2f %10s %12.1f\n", r.sim_time,
                r.wall_seconds, r.deadline_seconds,
                r.met_deadline ? "yes" : "LATE", r.position_error);
    if (r.met_deadline) ++met;
  }
  std::printf("met %d/%zu deadlines at %.0fx real time\n", met,
              records.size(), ropt.speedup);

  // Machine-readable summary for the golden-value smoke check (wall-clock
  // deadline hits are machine-dependent, so only simulation results are
  // checked).
  if (!records.empty())
    std::printf("SMOKE front_position_rms_m=%.6f\n",
                records.back().position_error);
  std::printf("SMOKE burned_area_ha=%.6f\n",
              cycle.member(0).burned_area() / 1e4);
  return 0;
}
