// Substrate benchmark: the blocked Householder QR kernels that carry the
// EnKF ensemble-space square-root analysis. Three questions, matching how
// the factorization is used in src/enkf/enkf.cpp:
//  - blocked vs reference factorization cost across the shapes the filter
//    produces (tall-skinny stacked [B; I] at image scale, wider panels from
//    the registration least-squares fits);
//  - blocked vs reference apply-Q^T cost for multi-RHS least squares;
//  - the headline replacement: QR of [B; I] vs the one-sided Jacobi SVD of
//    B it displaced (the PR 3 serial bottleneck) at m = 10000, N = 25.
//  - the PR 5 scheme question: TSQR (row-block tree) vs the blocked
//    compact-WY chain vs the Jacobi SVD on the stacked image-scale panel,
//    across observation counts (BM_QR_Scheme; thread count is recorded so
//    multi-core captures are self-describing).
#include <benchmark/benchmark.h>

#include "backend_args.h"
#include "la/backend.h"
#include "la/blas.h"
#include "la/qr.h"
#include "la/svd.h"
#include "la/workspace.h"
#include "util/rng.h"

#if defined(WFIRE_HAVE_OPENMP)
#include <omp.h>
#endif

using namespace wfire::la;
using wfire::bench::arg_backend;
using wfire::bench::backend_name;

namespace {

struct QrShape {
  int m, n;
  const char* tag;
};

// 10025 x 25: the stacked [B; I] of an image-scale ensemble analysis
// (m = 10000 pixels, N = 25 members). 2000 x 64 and 400 x 200 exercise the
// multi-panel compact-WY path and the trailing-update gemms.
const QrShape kShapes[] = {
    {10025, 25, "stacked-ens"}, {2000, 64, "tall"}, {400, 200, "blocky"}};

}  // namespace

static void BM_QrFactor(benchmark::State& state) {
  const QrShape shape = kShapes[state.range(0)];
  const std::int64_t be = state.range(1);
  wfire::util::Rng rng(11);
  const Matrix base = Matrix::random_normal(shape.m, shape.n, rng);
  ScopedBackend scope(arg_backend(be));
  Workspace ws;
  Matrix A = base;
  Vector beta;
  for (auto _ : state) {
    A = base;  // the factorization is in place; restore per iteration
    qr_factor_in_place(A, beta, &ws);
    benchmark::DoNotOptimize(A.data());
  }
  state.SetLabel(std::string(shape.tag) + "/" + backend_name(be));
  state.counters["m"] = shape.m;
  state.counters["n"] = shape.n;
}
BENCHMARK(BM_QrFactor)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1});

static void BM_QrApplyQt(benchmark::State& state) {
  // Multi-RHS apply-Q^T (the least-squares workhorse): 2000 x 64 factor
  // against 25 right-hand sides.
  const std::int64_t be = state.range(0);
  wfire::util::Rng rng(13);
  const int m = 2000, n = 64, nrhs = 25;
  Matrix A = Matrix::random_normal(m, n, rng);
  const Matrix B = Matrix::random_normal(m, nrhs, rng);
  ScopedBackend scope(arg_backend(be));
  Workspace ws;
  Vector beta;
  qr_factor_in_place(A, beta, &ws);
  Matrix C = B;
  for (auto _ : state) {
    C = B;
    apply_qt_in_place(A, beta, C, &ws);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetLabel(backend_name(be));
}
BENCHMARK(BM_QrApplyQt)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1);

static void BM_QrVsSvd_EnsembleFactor(benchmark::State& state) {
  // The factorization swap in isolation: what the ensemble-space analysis
  // pays per cycle to factor its N x N square-root system. arg 0: 0 = QR of
  // the stacked (m+N) x N matrix (blocked backend), 1 = Jacobi SVD of the
  // m x N matrix (backend-independent, allocates internally).
  const bool use_svd = state.range(0) != 0;
  const int m = 10000, N = 25;
  wfire::util::Rng rng(17);
  const Matrix B = Matrix::random_normal(m, N, rng);
  Workspace ws;
  Matrix M(m + N, N);
  Vector beta;
  for (auto _ : state) {
    if (use_svd) {
      const SvdResult s = svd(B);
      benchmark::DoNotOptimize(s.sigma.data());
    } else {
      for (int k = 0; k < N; ++k) {
        const auto src = B.col(k);
        auto dst = M.col(k);
        for (int i = 0; i < m; ++i) dst[i] = src[i];
        for (int i = 0; i < N; ++i) dst[m + i] = i == k ? 1.0 : 0.0;
      }
      qr_factor_in_place(M, beta, &ws);
      benchmark::DoNotOptimize(M.data());
    }
  }
  state.SetLabel(use_svd ? "svd" : "qr");
  state.counters["m"] = m;
  state.counters["N"] = N;
}
BENCHMARK(BM_QrVsSvd_EnsembleFactor)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1);

namespace {

int omp_threads() {
#if defined(WFIRE_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace

// The PR 5 scheme comparison on the analysis panel: factor the stacked
// [B; I_N] of an ensemble analysis with the TSQR row-block tree (arg 1 = 0)
// or the blocked compact-WY chain (1), against the Jacobi SVD of B (2) as
// the historical reference, at N = 25 and image-scale observation counts.
// On one core tsqr and blocked should be comparable (same flops, the tree
// is noise); the tsqr case is the one expected to scale with cores — the
// "threads" counter records what the capture machine actually exposed.
static void BM_QR_Scheme(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int which = static_cast<int>(state.range(1));
  const int N = 25;
  wfire::util::Rng rng(31);
  const Matrix B = Matrix::random_normal(m, N, rng);
  Workspace ws;
  Matrix M(m + N, N);
  Vector beta;
  for (auto _ : state) {
    if (which == 2) {
      const SvdResult s = svd(B);
      benchmark::DoNotOptimize(s.sigma.data());
      continue;
    }
    for (int k = 0; k < N; ++k) {
      const auto src = B.col(k);
      auto dst = M.col(k);
      for (int i = 0; i < m; ++i) dst[i] = src[i];
      for (int i = 0; i < N; ++i) dst[m + i] = i == k ? 1.0 : 0.0;
    }
    if (which == 0)
      tsqr_factor_r_in_place(M, &ws);
    else
      qr_factor_in_place(M, beta, &ws);
    benchmark::DoNotOptimize(M.data());
  }
  state.SetLabel(which == 0 ? "tsqr" : which == 1 ? "blocked" : "svd");
  state.counters["m"] = m;
  state.counters["N"] = N;
  state.counters["threads"] = omp_threads();
}
BENCHMARK(BM_QR_Scheme)
    ->Unit(benchmark::kMillisecond)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({40000, 0})
    ->Args({40000, 1})
    ->Args({40000, 2});

BENCHMARK_MAIN();
