// Substrate benchmark: the dense-LA kernel backends head to head. The EnKF
// analysis cost decomposes into gemm (anomaly products), syrk (S = HA HA^T),
// and Cholesky (solve of S); these measure each kernel at analysis-relevant
// shapes for the blocked and reference backends, so BENCH_*.json tracks
// where a regression comes from.
#include <benchmark/benchmark.h>

#include "backend_args.h"
#include "la/backend.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "util/rng.h"

using namespace wfire::la;
using wfire::bench::arg_backend;
using wfire::bench::backend_name;
using wfire::util::Rng;

namespace {

Matrix random_spd(int n, Rng& rng) {
  const Matrix A = Matrix::random_normal(n, n, rng);
  Matrix S = matmul(A, A, false, true);
  for (int i = 0; i < n; ++i) S(i, i) += n;
  return S;
}

}  // namespace

static void BM_LA_GemmSquare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t be = state.range(1);
  Rng rng(1);
  const Matrix A = Matrix::random_normal(n, n, rng);
  const Matrix B = Matrix::random_normal(n, n, rng);
  Matrix C(n, n, 0.0);
  ScopedBackend scope(arg_backend(be));
  for (auto _ : state) {
    gemm(false, false, 1.0, A, B, 0.0, C);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetLabel(backend_name(be));
  state.counters["n"] = n;
}
BENCHMARK(BM_LA_GemmSquare)
    ->Unit(benchmark::kMillisecond)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1});

static void BM_LA_GemmTallSkinny(benchmark::State& state) {
  // A W update shape: n x N times N x N (state times member weights).
  const int n = static_cast<int>(state.range(0));
  const std::int64_t be = state.range(1);
  const int N = 25;
  Rng rng(2);
  const Matrix A = Matrix::random_normal(n, N, rng);
  const Matrix W = Matrix::random_normal(N, N, rng);
  Matrix X = Matrix::random_normal(n, N, rng);
  ScopedBackend scope(arg_backend(be));
  for (auto _ : state) {
    gemm(false, false, 1.0, A, W, 1.0, X);
    benchmark::DoNotOptimize(X.data());
  }
  state.SetLabel(backend_name(be));
  state.counters["n"] = n;
}
BENCHMARK(BM_LA_GemmTallSkinny)
    ->Unit(benchmark::kMillisecond)
    ->Args({20000, 0})
    ->Args({20000, 1});

static void BM_LA_Syrk(benchmark::State& state) {
  // S = HA HA^T shape: m x N anomalies, m x m output.
  const int m = static_cast<int>(state.range(0));
  const std::int64_t be = state.range(1);
  const int N = 25;
  Rng rng(3);
  const Matrix HA = Matrix::random_normal(m, N, rng);
  Matrix S(m, m, 0.0);
  ScopedBackend scope(arg_backend(be));
  for (auto _ : state) {
    syrk(false, 1.0 / (N - 1), HA, 0.0, S);
    benchmark::DoNotOptimize(S.data());
  }
  state.SetLabel(backend_name(be));
  state.counters["m"] = m;
}
BENCHMARK(BM_LA_Syrk)
    ->Unit(benchmark::kMillisecond)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

static void BM_LA_Cholesky(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::int64_t be = state.range(1);
  Rng rng(4);
  const Matrix S = random_spd(n, rng);
  Matrix L;
  ScopedBackend scope(arg_backend(be));
  for (auto _ : state) {
    const int jitter = cholesky_factor(S, L);
    benchmark::DoNotOptimize(jitter);
    benchmark::DoNotOptimize(L.data());
  }
  state.SetLabel(backend_name(be));
  state.counters["n"] = n;
}
BENCHMARK(BM_LA_Cholesky)
    ->Unit(benchmark::kMillisecond)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

static void BM_LA_CholeskySolveMultiRhs(benchmark::State& state) {
  // The analysis solve: m x m factor against N = 25 innovation columns.
  const int n = static_cast<int>(state.range(0));
  const std::int64_t be = state.range(1);
  const int N = 25;
  Rng rng(5);
  const Matrix S = random_spd(n, rng);
  const CholeskyResult f = cholesky(S);
  const Matrix B = Matrix::random_normal(n, N, rng);
  Matrix X = B;
  ScopedBackend scope(arg_backend(be));
  for (auto _ : state) {
    X = B;
    cholesky_solve_in_place(f.L, X);
    benchmark::DoNotOptimize(X.data());
  }
  state.SetLabel(backend_name(be));
  state.counters["n"] = n;
}
BENCHMARK(BM_LA_CholeskySolveMultiRhs)
    ->Unit(benchmark::kMillisecond)
    ->Args({1000, 0})
    ->Args({1000, 1});
