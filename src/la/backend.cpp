#include "la/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wfire::la {

namespace {

int clamp_block(int nb) { return nb < 8 ? 8 : (nb > 1024 ? 1024 : nb); }

Backend backend_from_env() {
  const char* s = std::getenv("WFIRE_LA_BACKEND");
  if (!s || std::strcmp(s, "blocked") == 0) return Backend::kBlocked;
  if (std::strcmp(s, "reference") == 0 || std::strcmp(s, "naive") == 0)
    return Backend::kReference;
  // A typo here would silently invalidate backend comparisons — say so.
  std::fprintf(stderr,
               "wfire: unrecognized WFIRE_LA_BACKEND='%s' "
               "(expected 'blocked' or 'reference'); using blocked\n",
               s);
  return Backend::kBlocked;
}

int block_from_env() {
  const char* s = std::getenv("WFIRE_LA_BLOCK");
  if (s) {
    const int nb = std::atoi(s);
    if (nb > 0) return clamp_block(nb);
  }
  return 64;
}

QrScheme qr_scheme_from_env() {
  const char* s = std::getenv("WFIRE_QR_SCHEME");
  if (!s) return QrScheme::kAuto;
  if (std::strcmp(s, "tsqr") == 0) return QrScheme::kTsqr;
  if (std::strcmp(s, "blocked") == 0) return QrScheme::kBlocked;
  // A typo here would silently invalidate scheme comparisons — say so.
  std::fprintf(stderr,
               "wfire: unrecognized WFIRE_QR_SCHEME='%s' "
               "(expected 'tsqr' or 'blocked'); using auto\n",
               s);
  return QrScheme::kAuto;
}

// Relaxed atomics: the backend is set during startup or between test cases,
// never concurrently with kernel calls, but TSan-instrumented suites flip it
// while worker threads from earlier phases may still be parked in the pool.
std::atomic<Backend>& backend_flag() {
  static std::atomic<Backend> b{backend_from_env()};
  return b;
}

std::atomic<int>& block_flag() {
  static std::atomic<int> nb{block_from_env()};
  return nb;
}

std::atomic<QrScheme>& qr_scheme_flag() {
  static std::atomic<QrScheme> s{qr_scheme_from_env()};
  return s;
}

}  // namespace

Backend backend() { return backend_flag().load(std::memory_order_relaxed); }

void set_backend(Backend b) {
  backend_flag().store(b, std::memory_order_relaxed);
}

int block_size() { return block_flag().load(std::memory_order_relaxed); }

void set_block_size(int nb) {
  block_flag().store(clamp_block(nb), std::memory_order_relaxed);
}

QrScheme default_qr_scheme() {
  return qr_scheme_flag().load(std::memory_order_relaxed);
}

void set_default_qr_scheme(QrScheme s) {
  qr_scheme_flag().store(s, std::memory_order_relaxed);
}

}  // namespace wfire::la
