// The coupled fire-atmosphere model (paper Sec. 2): WrfLite supplies
// near-ground winds to the FireModel; the fire's sensible/latent heat fluxes
// are aggregated to the atmosphere mesh and inserted as exponentially
// decaying volumetric tendencies. Both components advance with the same time
// step (the paper's reference: dt = 0.5 s, 60 m atmosphere mesh, 6 m fire
// mesh, which satisfies both CFL conditions).
//
// `two_way = false` turns off the fire -> atmosphere feedback. The Fig. 1
// bench uses this to demonstrate the paper's headline coupling effect: the
// downwind front is slowed by air being pulled in and up by the fire's own
// convection ("this kind of fire behavior cannot be modeled by empirical
// spread models alone").
#pragma once

#include "atmos/model.h"
#include "coupling/flux_insertion.h"
#include "coupling/wind_sample.h"
#include "fire/model.h"

namespace wfire::coupling {

struct CoupledOptions {
  int refine = 10;                   // atmos dx / fire dx
  bool two_way = true;               // fire heat feeds back into atmosphere
  FluxInsertionParams flux;
  fire::FireModelOptions fire_opt;
  atmos::WrfLiteOptions atmos_opt;
};

struct CoupledStepInfo {
  fire::FireOutputs fire;
  atmos::WrfLiteStepInfo atmos;
  double fire_cfl = 0;
};

class CoupledModel {
 public:
  // The fire grid/fuel/terrain are derived from the atmosphere grid and the
  // refinement ratio; `fuel_category` fills the whole fire mesh.
  CoupledModel(const grid::Grid3D& atmos_grid,
               const atmos::AmbientProfile& ambient, int fuel_category,
               CoupledOptions opt = {});

  // Full construction with explicit fuel map and terrain on the fire mesh.
  CoupledModel(const grid::Grid3D& atmos_grid,
               const atmos::AmbientProfile& ambient, fire::FuelMap fuel,
               util::Array2D<double> terrain, CoupledOptions opt = {});

  void ignite(const std::vector<levelset::Ignition>& ignitions);

  CoupledStepInfo step(double dt);

  // Same step, writing into `info` so a driver stepping in a loop reuses
  // the fire-flux arrays instead of allocating them every step.
  void step(double dt, CoupledStepInfo& info);

  [[nodiscard]] const fire::FireModel& fire_model() const { return fire_; }
  [[nodiscard]] fire::FireModel& fire_model() { return fire_; }
  [[nodiscard]] const atmos::WrfLite& atmosphere() const { return atmos_; }
  [[nodiscard]] atmos::WrfLite& atmosphere() { return atmos_; }
  [[nodiscard]] const MeshPairing& pairing() const { return pair_; }
  [[nodiscard]] double time() const { return fire_.state().time; }

  // Last sampled fire-mesh winds (diagnostics / Fig. 1 arrows).
  [[nodiscard]] const util::Array2D<double>& fire_wind_u() const {
    return wind_u_;
  }
  [[nodiscard]] const util::Array2D<double>& fire_wind_v() const {
    return wind_v_;
  }

 private:
  MeshPairing pair_;
  atmos::WrfLite atmos_;
  fire::FireModel fire_;
  FluxInserter inserter_;
  bool two_way_;
  util::Array2D<double> wind_u_, wind_v_;
  util::Array2D<double> sens_coarse_, lat_coarse_;
  util::Array3D<double> theta_src_, qv_src_;
};

}  // namespace wfire::coupling
