// The "towards real-time" driver (paper title and Sec. 1): runs assimilation
// cycles against the wall clock. Each cycle advances the ensemble to the
// next observation time and assimilates; the driver records whether the
// computation kept up with the (scaled) real-time clock — the operational
// requirement the paper's project is building toward.
//
// Accounting contract: only the *assimilation computation* — advance_to plus
// assimilate — is charged against the deadline. Generating the observation
// (advancing the hidden truth, synthesizing noise, or in operation: waiting
// on a data feed) is the data source's time; it is measured separately in
// obs_seconds and never counts toward met_deadline or pacing.
#pragma once

#include <vector>

#include "core/cycle.h"

namespace wfire::core {

struct RealTimeOptions {
  double cycle_interval = 60.0;  // simulated seconds between observations
  double speedup = 60.0;         // sim seconds per wall second (>= 1)
  int cycles = 5;
  bool pace = false;  // sleep to hold the schedule when running ahead
};

struct CycleRecord {
  double sim_time = 0;        // time at the end of the cycle [s]
  double wall_seconds = 0;    // compute time: advance_to + assimilate only
  double obs_seconds = 0;     // data-source time (not charged to the deadline)
  double deadline_seconds = 0;// wall budget implied by the speedup
  bool met_deadline = false;
  AnalysisResult analysis;
  double position_error = 0;  // vs truth after analysis [m]; 0 if no truth
};

class RealTimeDriver {
 public:
  // The driver consumes observations from any source; the twin-experiment
  // DataPool is the usual one. position_error stays 0 when the source has
  // no noise-free truth to score against.
  RealTimeDriver(AssimilationCycle& cycle, ObservationSource& source,
                 RealTimeOptions opt);

  // Runs the configured number of cycles and returns one record per cycle.
  [[nodiscard]] std::vector<CycleRecord> run();

 private:
  AssimilationCycle& cycle_;
  ObservationSource& source_;
  RealTimeOptions opt_;
};

}  // namespace wfire::core
