// Batched structure-of-arrays ensemble propagation — the forward-model half
// of the paper's Fig. 2 as one fused computation instead of N independent
// model runs. All members' level set / ignition-time / fuel-fraction fields
// are stored member-contiguous per grid node (layout contract in
// levelset/batch.h), so the spread evaluation, the Godunov/Heun update, the
// ignition-time crossing and the post-frontal fuel decay each become one
// grid sweep with a unit-stride inner member loop the compiler vectorizes.
//
// Narrow band: only nodes within `band_cells` cells of *any* member's front
// are swept. The front moves at most max-S per second, so the band stays
// valid until the accumulated front travel eats the safety margin; it is
// then rebuilt from the current psi (and after every fast-sweep
// redistancing, which also repairs the frozen far field — see
// levelset/fast_sweep.h). With the band disabled (band_cells = 0, full-grid
// sweeps) the batched advance is bitwise-identical to stepping each
// FireModel; with the band on, the zero contour and ignition times agree to
// rounding while the far field lags between redistancing calls.
//
// Redistancing cadence: with the band on, reinitialization also fires when
// the accumulated front travel since the last redistancing reaches
// reinit_travel_frac * band width — at the latest every reinit_interval
// steps like the reference, earlier when the front outruns that. The
// band/reference agreement therefore no longer depends on picking
// reinit_interval conservatively for the spread rate. At band_cells = 0
// only the step-count cadence runs, keeping the sweep bitwise-equal to the
// reference.
//
// Steady state allocates nothing: the SoA fields are sized at construction
// and the compact band scratch reuses its high-water capacity across
// rebuilds (the same arena discipline as la::Workspace in the analysis).
#pragma once

#include <memory>
#include <vector>

#include "fire/model.h"
#include "fire/spread_batch.h"
#include "levelset/batch.h"

namespace wfire::core {

// How AssimilationCycle::advance_to propagates the ensemble (env knob
// WFIRE_ADVANCE=batched|reference at first use; kAuto follows the process
// default). The per-member scalar path stays as the property-tested
// reference.
enum class AdvanceMode { kAuto, kBatched, kReference };

[[nodiscard]] AdvanceMode default_advance_mode();
void set_default_advance_mode(AdvanceMode m);

// RAII override for tests.
class ScopedAdvanceMode {
 public:
  explicit ScopedAdvanceMode(AdvanceMode m) : prev_(default_advance_mode()) {
    set_default_advance_mode(m);
  }
  ~ScopedAdvanceMode() { set_default_advance_mode(prev_); }
  ScopedAdvanceMode(const ScopedAdvanceMode&) = delete;
  ScopedAdvanceMode& operator=(const ScopedAdvanceMode&) = delete;

 private:
  AdvanceMode prev_;
};

struct EnsembleBatchOptions {
  // Narrow-band half width in cells (distance from the nearest member
  // front); 0 disables the band (full-grid sweeps, bitwise-equal to the
  // reference path). Values 1..3 are clamped to 4: the band needs room for
  // the 2-cell rebuild slack plus the stencil. Env default: WFIRE_BAND_CELLS.
  int band_cells = 8;
  // Member-lane padding: the stride is members rounded up to a multiple of
  // this (4 doubles = one AVX2 vector). Padding lanes carry benign values
  // through the same arithmetic.
  int simd_pad = 4;
  // With the band on, additionally redistance psi once the front has
  // traveled this fraction of the band width since the last
  // reinitialization — a safety trigger on top of the reference's
  // reinit_interval step cadence (<= 0 disables it). At the default 1.0 it
  // fires only when the front outruns the step cadence entirely (a full
  // band width between redistancings), so a well-chosen reinit_interval
  // behaves exactly as in the reference. Ignored at band_cells = 0, where
  // the step-count cadence alone keeps the sweep bitwise-equal to the
  // reference.
  double reinit_travel_frac = 1.0;
};

// Band-cell default from the environment (WFIRE_BAND_CELLS, >= 0; unset =
// 8). Exposed so benches/tests can report the effective width.
[[nodiscard]] int default_band_cells();

class EnsembleBatch {
 public:
  // Shared grid/fuel/terrain and stepping options; `members` is fixed for
  // the batch lifetime (load() expects exactly that many models).
  EnsembleBatch(const grid::Grid2D& g, const fire::FuelMap& fuel,
                const util::Array2D<double>& terrain,
                fire::FireModelOptions opt, int members,
                EnsembleBatchOptions bopt = {});

  [[nodiscard]] int members() const { return members_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] int band_size() const { return static_cast<int>(band_.size()); }
  [[nodiscard]] const EnsembleBatchOptions& options() const { return bopt_; }
  [[nodiscard]] const levelset::BatchLayout& layout() const { return lay_; }

  // Per-member uniform wind forcing [m/s] (the assimilation-cycle regime).
  void set_member_wind(int k, double u, double v);

  // Packs the models' states into the SoA fields. All members must share
  // the model time and the reinitialization phase (they do when advanced in
  // lockstep); throws otherwise. Delayed (pending) ignitions are carried
  // in-batch: each member's queue is applied inside step() when its time
  // arrives, with the reference path's min-merge arithmetic.
  void load(const std::vector<std::unique_ptr<fire::FireModel>>& models);
  void load(const std::vector<fire::FireModel*>& models);

  // Advances all members to `time` in steps of `dt` (the last step is
  // shortened to land exactly). Matches FireModel::step semantics: spread
  // from current psi and fuel fraction, Heun/Euler Godunov update, linear
  // ignition-time crossing, post-frontal fuel decay, periodic fast-sweep
  // redistancing.
  void advance_to(double time, double dt);

  // One coupled step: per-member wind *fields* in the SoA layout
  // (cell * stride + member, fire-mesh node winds sampled from each
  // member's atmosphere) instead of uniform member rows, plus a full-grid
  // heat-flux pass that writes each member's sensible/latent flux [W/m^2]
  // into the SoA outputs (cell * stride + member, zero where not burning —
  // FireModel::step_into's flux arithmetic per lane). The caller owns the
  // stepping loop, interleaving atmosphere advances between fire steps
  // (coupling/coupled_batch).
  void coupled_step(double dt, const double* wind_u_field,
                    const double* wind_v_field, double* sensible_flux,
                    double* latent_flux);

  // Writes the advanced states back through FireModel::set_state (which
  // refreshes each model's fuel fraction from tig) and restores any
  // still-pending delayed ignitions.
  void store(std::vector<std::unique_ptr<fire::FireModel>>& models) const;
  void store(const std::vector<fire::FireModel*>& models) const;

  // Test access: copies member k's field out of the SoA storage.
  [[nodiscard]] util::Array2D<double> psi_of(int k) const;
  [[nodiscard]] util::Array2D<double> tig_of(int k) const;

 private:
  void step(double dt);
  void advance_fields(double dt, const double* wind_u, const double* wind_v,
                      bool field_wind);
  bool apply_due_ignitions();
  void accumulate_fluxes(double t_before, double dt, double* sensible,
                         double* latent);
  void maybe_reinit();
  void rebuild_band();
  void reinitialize_members();

  grid::Grid2D grid_;
  fire::FireModelOptions opt_;
  EnsembleBatchOptions bopt_;
  levelset::BatchLayout lay_;
  int members_ = 0;
  double time_ = 0;
  int steps_since_reinit_ = 0;
  double travel_since_reinit_ = 0;  // front travel [m] for the band cadence
  double step_travel_ = 0;          // travel of the last step

  fire::SpreadTables tables_;
  util::Array2D<double> dzdx_, dzdy_;

  // Full-grid SoA fields.
  std::vector<double> psi_, tig_, fuel_;
  // Per-member forcing rows (length stride; padding lanes 0).
  std::vector<double> wind_u_, wind_v_;
  // Per-member delayed-ignition queues, applied in-batch as they come due.
  std::vector<std::vector<levelset::Ignition>> pending_;
  util::Array2D<double> ignite_scratch_;

  // Narrow band: sorted cell list, cell -> band position (-1 outside), and
  // the accumulated front travel [m] since the last rebuild.
  std::vector<int> band_;
  std::vector<int> band_pos_;
  double travel_ = 0;
  double band_width_m_ = 0;   // 0 = full grid
  double rebuild_margin_m_ = 0;

  // Compact band-major scratch (speed, gradients, predictor, pre-step psi).
  std::vector<double> speed_, k1_, k2_, pred_, before_;

  // Per-member scratch for the fast-sweep redistancing.
  mutable std::vector<util::Array2D<double>> member_scratch_;
};

}  // namespace wfire::core
