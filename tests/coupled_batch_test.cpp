// Batched coupled fire-atmosphere tests: MultigridBatch against N scalar
// Multigrid solves (bitwise, including members converging at different
// cycle counts and the warm-start sequence), the batched restriction /
// prolongation kernels against their scalar counterparts, and
// CoupledEnsembleBatch against per-member CoupledModel stepping (bitwise at
// band_cells = 0, delayed ignitions carried in-batch, one-way and single
// member configurations).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "atmos/multigrid.h"
#include "atmos/multigrid_batch.h"
#include "coupling/coupled.h"
#include "coupling/coupled_batch.h"
#include "fire/fuel.h"
#include "util/rng.h"

using namespace wfire;

namespace {

grid::Grid3D atmos_grid() { return grid::Grid3D(8, 8, 6, 60.0, 60.0, 60.0); }

// Zero-mean random cell field, deterministic per member id.
atmos::Field3 random_rhs(const grid::Grid3D& g, std::uint64_t id,
                         double scale) {
  atmos::Field3 f(g.nx, g.ny, g.nz, 0.0);
  util::Rng rng = util::Rng::stream(1234, id);
  for (double& v : f) v = scale * rng.normal();
  atmos::remove_mean(f);
  return f;
}

// Packs member fields into an SoA buffer (padding lanes stay zero).
std::vector<double> pack_soa(const std::vector<atmos::Field3>& fields,
                             int stride) {
  const std::size_t cells = fields.front().size();
  std::vector<double> soa(cells * stride, 0.0);
  for (std::size_t m = 0; m < fields.size(); ++m)
    for (std::size_t c = 0; c < cells; ++c)
      soa[c * stride + m] = fields[m].data()[c];
  return soa;
}

}  // namespace

// --- batched multigrid vs N scalar V-cycle solves ---

TEST(MultigridBatch, SolveBitwiseMatchesScalarPerMember) {
  const grid::Grid3D g = atmos_grid();
  const int members = 3, stride = 4;
  atmos::MultigridOptions opt;
  opt.tol = 1e-6;

  // Spread the rhs magnitudes so the members converge at different cycle
  // counts — the freeze-mask path, not just the lockstep one.
  const double scales[] = {1.0, 1e-6, 3.0};
  std::vector<atmos::Field3> rhs, phi;
  std::vector<atmos::SolveStats> ref_stats(members);
  for (int m = 0; m < members; ++m) {
    rhs.push_back(random_rhs(g, static_cast<std::uint64_t>(m) + 1, scales[m]));
    phi.emplace_back(g.nx, g.ny, g.nz, 0.0);
    atmos::Multigrid mg(g, opt);
    ref_stats[m] = mg.solve(rhs[m], phi[m]);
    EXPECT_TRUE(ref_stats[m].converged);
  }
  ASSERT_NE(ref_stats[0].iterations, ref_stats[1].iterations);

  std::vector<double> rhs_soa = pack_soa(rhs, stride);
  std::vector<double> phi_soa(rhs_soa.size(), 0.0);
  std::vector<atmos::SolveStats> stats(members);
  atmos::MultigridBatch mgb(g, members, stride, opt);
  EXPECT_GT(mgb.levels(), 1);
  mgb.solve(rhs_soa.data(), phi_soa.data(), stats.data());

  const std::size_t cells = g.cell_count();
  for (int m = 0; m < members; ++m) {
    EXPECT_EQ(stats[m].iterations, ref_stats[m].iterations) << "member " << m;
    EXPECT_EQ(stats[m].final_residual, ref_stats[m].final_residual);
    EXPECT_EQ(stats[m].converged, ref_stats[m].converged);
    for (std::size_t c = 0; c < cells; ++c)
      ASSERT_EQ(phi_soa[c * stride + m], phi[m].data()[c])
          << "member " << m << " cell " << c;
  }
  // Padding lane: the zero problem stays exactly zero.
  for (std::size_t c = 0; c < cells; ++c)
    ASSERT_EQ(phi_soa[c * stride + members], 0.0);
}

TEST(MultigridBatch, WarmStartSequenceBitwise) {
  // Two solves back to back, the second warm-started from the first — the
  // projection regime of WrfLite, where phi persists across steps.
  const grid::Grid3D g = atmos_grid();
  const int members = 2, stride = 4;
  atmos::MultigridOptions opt;
  opt.tol = 1e-6;

  std::vector<atmos::Field3> rhs1, rhs2, phi;
  for (int m = 0; m < members; ++m) {
    rhs1.push_back(
        random_rhs(g, static_cast<std::uint64_t>(m) + 10, 1.0 + m));
    rhs2.push_back(
        random_rhs(g, static_cast<std::uint64_t>(m) + 20, 0.5));
    phi.emplace_back(g.nx, g.ny, g.nz, 0.0);
  }
  std::vector<atmos::SolveStats> ref_stats(members);
  for (int m = 0; m < members; ++m) {
    atmos::Multigrid mg(g, opt);
    mg.solve(rhs1[m], phi[m]);
    ref_stats[m] = mg.solve(rhs2[m], phi[m]);
  }

  std::vector<double> rhs1_soa = pack_soa(rhs1, stride);
  std::vector<double> rhs2_soa = pack_soa(rhs2, stride);
  std::vector<double> phi_soa(rhs1_soa.size(), 0.0);
  std::vector<atmos::SolveStats> stats(members);
  atmos::MultigridBatch mgb(g, members, stride, opt);
  mgb.solve(rhs1_soa.data(), phi_soa.data(), stats.data());
  mgb.solve(rhs2_soa.data(), phi_soa.data(), stats.data());

  const std::size_t cells = g.cell_count();
  for (int m = 0; m < members; ++m) {
    EXPECT_EQ(stats[m].iterations, ref_stats[m].iterations);
    for (std::size_t c = 0; c < cells; ++c)
      ASSERT_EQ(phi_soa[c * stride + m], phi[m].data()[c]) << "member " << m;
  }
}

TEST(MultigridBatch, RestrictProlongMatchScalar) {
  const grid::Grid3D fine_g = atmos_grid();
  const grid::Grid3D coarse_g(fine_g.nx / 2, fine_g.ny / 2, fine_g.nz / 2,
                              2 * fine_g.dx, 2 * fine_g.dy, 2 * fine_g.dz);
  const int members = 3, stride = 4;

  std::vector<atmos::Field3> fine, coarse;
  for (int m = 0; m < members; ++m) {
    fine.push_back(random_rhs(fine_g, static_cast<std::uint64_t>(m) + 5, 2.0));
    coarse.emplace_back(coarse_g.nx, coarse_g.ny, coarse_g.nz, 0.0);
    atmos::mg_restrict(fine[m], coarse[m]);
  }
  std::vector<double> fine_soa = pack_soa(fine, stride);
  std::vector<double> coarse_soa(coarse_g.cell_count() * stride, 1.0);
  atmos::mg_restrict_batch(coarse_g, stride, fine_soa.data(),
                           coarse_soa.data());
  for (int m = 0; m < members; ++m)
    for (std::size_t c = 0; c < coarse_g.cell_count(); ++c)
      ASSERT_EQ(coarse_soa[c * stride + m], coarse[m].data()[c]);

  // Prolongation with a freeze mask: frozen lanes keep their fine values.
  std::vector<atmos::Field3> base;
  for (int m = 0; m < members; ++m) {
    base.push_back(random_rhs(fine_g, static_cast<std::uint64_t>(m) + 50, 1.0));
    if (m != 1) atmos::mg_prolong_add(coarse[m], base[m]);
  }
  // Pack the pre-prolongation fields (same ids -> same values).
  std::vector<atmos::Field3> packed;
  for (int m = 0; m < members; ++m)
    packed.push_back(random_rhs(fine_g, static_cast<std::uint64_t>(m) + 50,
                                1.0));
  std::vector<double> fine_out = pack_soa(packed, stride);
  const double mask[4] = {1.0, 0.0, 1.0, 0.0};
  atmos::mg_prolong_add_batch(fine_g, stride, coarse_soa.data(),
                              fine_out.data(), mask);
  for (int m = 0; m < members; ++m)
    for (std::size_t c = 0; c < fine_g.cell_count(); ++c)
      ASSERT_EQ(fine_out[c * stride + m], base[m].data()[c]) << "member " << m;
}

// --- batched coupled stepping vs per-member CoupledModel ---

namespace {

coupling::CoupledOptions coupled_options(bool two_way, bool use_rk2 = true) {
  coupling::CoupledOptions copt;
  copt.refine = 5;  // 40 x 40 fire mesh on the 8 x 8 atmos grid
  copt.two_way = two_way;
  copt.fire_opt.reinit_interval = 8;  // cover redistancing inside the window
  copt.atmos_opt.use_rk2 = use_rk2;
  return copt;
}

std::vector<std::unique_ptr<coupling::CoupledModel>> make_coupled_members(
    const grid::Grid3D& ag, const atmos::AmbientProfile& amb,
    const coupling::CoupledOptions& copt, int members, bool delayed_in_one) {
  std::vector<std::unique_ptr<coupling::CoupledModel>> models;
  const int fn = ag.nx * copt.refine;
  for (int k = 0; k < members; ++k) {
    auto m = std::make_unique<coupling::CoupledModel>(
        ag, amb, fire::uniform_fuel(fn, fn, fire::kFuelShortGrass),
        util::Array2D<double>(fn, fn, 0.0), copt);
    std::vector<levelset::Ignition> shapes = {levelset::Ignition{
        levelset::CircleIgnition{220.0 + 12.0 * k, 240.0, 30.0, 0.0}}};
    if (delayed_in_one && k == 1)
      shapes.push_back(levelset::Ignition{
          levelset::CircleIgnition{130.0, 130.0, 25.0, 3.0}});
    m->ignite(shapes);
    models.push_back(std::move(m));
  }
  return models;
}

void expect_members_bitwise(
    const std::vector<std::unique_ptr<coupling::CoupledModel>>& ref,
    const std::vector<std::unique_ptr<coupling::CoupledModel>>& bat) {
  for (std::size_t k = 0; k < ref.size(); ++k) {
    const fire::FireState& fr = ref[k]->fire_model().state();
    const fire::FireState& fb = bat[k]->fire_model().state();
    ASSERT_EQ(fr.time, fb.time);
    for (std::size_t c = 0; c < fr.psi.size(); ++c) {
      ASSERT_EQ(fr.psi.data()[c], fb.psi.data()[c]) << "psi member " << k;
      ASSERT_EQ(fr.tig.data()[c], fb.tig.data()[c]) << "tig member " << k;
      ASSERT_EQ(ref[k]->fire_model().fuel_fraction().data()[c],
                bat[k]->fire_model().fuel_fraction().data()[c]);
    }
    const atmos::AtmosState& ar = ref[k]->atmosphere().state();
    const atmos::AtmosState& ab = bat[k]->atmosphere().state();
    ASSERT_EQ(ref[k]->atmosphere().time(), bat[k]->atmosphere().time());
    for (std::size_t c = 0; c < ar.u.size(); ++c)
      ASSERT_EQ(ar.u.data()[c], ab.u.data()[c]) << "u member " << k;
    for (std::size_t c = 0; c < ar.v.size(); ++c)
      ASSERT_EQ(ar.v.data()[c], ab.v.data()[c]) << "v member " << k;
    for (std::size_t c = 0; c < ar.w.size(); ++c)
      ASSERT_EQ(ar.w.data()[c], ab.w.data()[c]) << "w member " << k;
    for (std::size_t c = 0; c < ar.theta.size(); ++c)
      ASSERT_EQ(ar.theta.data()[c], ab.theta.data()[c]) << "theta " << k;
    for (std::size_t c = 0; c < ar.qv.size(); ++c)
      ASSERT_EQ(ar.qv.data()[c], ab.qv.data()[c]) << "qv member " << k;
    // The projection warm-start state round-trips too, so the paths stay
    // interchangeable on subsequent steps.
    const atmos::Field3& pr = ref[k]->atmosphere().projection_potential();
    const atmos::Field3& pb = bat[k]->atmosphere().projection_potential();
    for (std::size_t c = 0; c < pr.size(); ++c)
      ASSERT_EQ(pr.data()[c], pb.data()[c]) << "phi member " << k;
  }
}

}  // namespace

TEST(CoupledBatch, BandZeroBitwiseTwoWayWithDelayedIgnition) {
  const grid::Grid3D ag = atmos_grid();
  atmos::AmbientProfile amb;
  amb.wind_u = 3.0;
  const coupling::CoupledOptions copt = coupled_options(/*two_way=*/true);
  const int members = 5;  // not a SIMD multiple: stride pads to 8

  auto ref = make_coupled_members(ag, amb, copt, members, true);
  auto bat = make_coupled_members(ag, amb, copt, members, true);
  ASSERT_TRUE(ref[1]->fire_model().has_pending_ignitions());

  const double T = 10.0, dt = 0.5;
  coupling::CoupledStepInfo info;
  for (auto& m : ref)
    while (m->time() < T - 1e-9) m->step(dt, info);

  coupling::CoupledBatchOptions bopt;
  bopt.coupled = copt;
  bopt.batch.band_cells = 0;
  coupling::CoupledEnsembleBatch batch(
      ag, amb, fire::uniform_fuel(ag.nx * copt.refine, ag.ny * copt.refine,
                                  fire::kFuelShortGrass),
      util::Array2D<double>(ag.nx * copt.refine, ag.ny * copt.refine, 0.0),
      members, bopt);
  batch.load(bat);
  batch.advance_to(T, dt);
  batch.store(bat);

  EXPECT_EQ(batch.time(), T);
  expect_members_bitwise(ref, bat);
  // The delayed shape came due at t = 3 on both paths.
  EXPECT_FALSE(bat[1]->fire_model().has_pending_ignitions());
  // And the fire actually forced the atmosphere (two-way heat release).
  EXPECT_GT(batch.atmos_info(0).max_w, 0.0);
}

TEST(CoupledBatch, SingleMemberOneWayEulerBitwise) {
  const grid::Grid3D ag = atmos_grid();
  atmos::AmbientProfile amb;
  amb.wind_u = 2.0;
  amb.wind_v = 1.0;
  const coupling::CoupledOptions copt =
      coupled_options(/*two_way=*/false, /*use_rk2=*/false);

  auto ref = make_coupled_members(ag, amb, copt, 1, false);
  auto bat = make_coupled_members(ag, amb, copt, 1, false);

  const double T = 6.0, dt = 0.5;
  coupling::CoupledStepInfo info;
  while (ref[0]->time() < T - 1e-9) ref[0]->step(dt, info);

  coupling::CoupledBatchOptions bopt;
  bopt.coupled = copt;
  bopt.batch.band_cells = 0;
  coupling::CoupledEnsembleBatch batch(
      ag, amb, fire::uniform_fuel(ag.nx * copt.refine, ag.ny * copt.refine,
                                  fire::kFuelShortGrass),
      util::Array2D<double>(ag.nx * copt.refine, ag.ny * copt.refine, 0.0), 1,
      bopt);
  batch.load(bat);
  batch.advance_to(T, dt);
  batch.store(bat);

  expect_members_bitwise(ref, bat);
}

TEST(CoupledBatch, NarrowBandTracksReferenceFront) {
  // With the band on the coupled trajectories are no longer bitwise, but
  // the burned sets must stay within a rounding sliver of each other.
  const grid::Grid3D ag = atmos_grid();
  atmos::AmbientProfile amb;
  amb.wind_u = 3.0;
  const coupling::CoupledOptions copt = coupled_options(/*two_way=*/true);
  const int members = 3;

  auto ref = make_coupled_members(ag, amb, copt, members, false);
  auto bat = make_coupled_members(ag, amb, copt, members, false);

  const double T = 10.0, dt = 0.5;
  coupling::CoupledStepInfo info;
  for (auto& m : ref)
    while (m->time() < T - 1e-9) m->step(dt, info);

  coupling::CoupledBatchOptions bopt;
  bopt.coupled = copt;
  bopt.batch.band_cells = 8;
  coupling::CoupledEnsembleBatch batch(
      ag, amb, fire::uniform_fuel(ag.nx * copt.refine, ag.ny * copt.refine,
                                  fire::kFuelShortGrass),
      util::Array2D<double>(ag.nx * copt.refine, ag.ny * copt.refine, 0.0),
      members, bopt);
  batch.load(bat);
  batch.advance_to(T, dt);
  batch.store(bat);

  for (int k = 0; k < members; ++k) {
    const auto& tr = ref[static_cast<std::size_t>(k)]->fire_model().state().tig;
    const auto& tb = bat[static_cast<std::size_t>(k)]->fire_model().state().tig;
    int disagree = 0;
    for (std::size_t c = 0; c < tr.size(); ++c) {
      const bool br = tr.data()[c] != fire::kNotIgnited;
      const bool bb = tb.data()[c] != fire::kNotIgnited;
      if (br != bb) ++disagree;
    }
    EXPECT_LE(disagree, 3) << "member " << k;
  }
}
