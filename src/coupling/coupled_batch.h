// Batched coupled fire-atmosphere stepping: N CoupledModel members advanced
// as fused structure-of-arrays sweeps instead of N independent step() calls.
// Per coupled step the four phases of coupling/coupled.cpp become:
//
//   1. wind sampling  — one destagger + bilinear sweep over the fire mesh
//                       with a unit-stride inner member loop (the locate()
//                       weights are shared across members; they depend only
//                       on geometry),
//   2. fire advance   — core::EnsembleBatch::coupled_step (SoA level set /
//                       ignition / fuel sweep plus the member-contiguous
//                       heat-flux pass),
//   3. flux feedback  — batched block-average aggregation onto the atmos
//                       mesh and FluxInserter::insert_batch,
//   4. atmosphere     — per-member tendencies (reading the SoA forcing
//                       through atmos::ForcingView lanes) with the pressure
//                       projections batched through atmos::MultigridBatch,
//                       so one V-cycle serves all members per level.
//
// Per member the arithmetic and operation order match CoupledModel::step
// exactly; with the fire narrow band off (band_cells = 0) the whole coupled
// trajectory is bitwise-identical to stepping each CoupledModel (tested).
// load()/store() round-trip against a vector of CoupledModels, including the
// projection warm-start potential and any delayed ignitions, so an
// assimilation driver can hop between the paths freely.
//
// Steady state allocates nothing: all SoA scratch is sized at construction.
#pragma once

#include <memory>
#include <vector>

#include "atmos/multigrid_batch.h"
#include "core/ensemble_batch.h"
#include "coupling/coupled.h"

namespace wfire::coupling {

struct CoupledBatchOptions {
  CoupledOptions coupled;
  // Fire-side batching knobs (band width, SIMD pad, reinit cadence). The
  // member count comes from the constructor argument.
  core::EnsembleBatchOptions batch;
};

class CoupledEnsembleBatch {
 public:
  // Mirrors CoupledModel's explicit-fuel constructor; `members` is fixed
  // for the batch lifetime.
  CoupledEnsembleBatch(const grid::Grid3D& atmos_grid,
                       const atmos::AmbientProfile& ambient,
                       fire::FuelMap fuel, util::Array2D<double> terrain,
                       int members, CoupledBatchOptions opt = {});

  [[nodiscard]] int members() const { return members_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] const MeshPairing& pairing() const { return pair_; }
  [[nodiscard]] const core::EnsembleBatch& fire() const { return fire_; }
  [[nodiscard]] core::EnsembleBatch& fire() { return fire_; }
  [[nodiscard]] const atmos::AtmosState& atmos_state(int k) const {
    return astate_[static_cast<std::size_t>(k)];
  }
  // Step diagnostics of member k's last atmosphere advance.
  [[nodiscard]] const atmos::WrfLiteStepInfo& atmos_info(int k) const {
    return info_[static_cast<std::size_t>(k)];
  }

  // Packs the members' coupled states (fire SoA fields via EnsembleBatch,
  // atmosphere states, projection warm-start potentials, clocks). All
  // members must share the model time and redistancing phase; delayed
  // ignitions are carried in-batch. Throws on lockstep violations.
  void load(const std::vector<std::unique_ptr<CoupledModel>>& models);

  // Writes the advanced coupled states back (inverse of load()).
  void store(const std::vector<std::unique_ptr<CoupledModel>>& models) const;

  // One coupled step for all members (phases 1-4 above).
  void step(double dt);

  // Advances to `time` in steps of `dt`, shortening the last step to land
  // exactly (same convention as EnsembleBatch::advance_to).
  void advance_to(double time, double dt);

 private:
  void sample_winds_batch();
  void aggregate_flux_batch(const std::vector<double>& fine,
                            std::vector<double>& coarse);
  void advance_atmosphere(double dt, bool forcing);
  // Projects every member's `states[m]` velocity like WrfLite::project,
  // with the Poisson solves batched; writes per-member stats.
  void project_batch(std::vector<atmos::AtmosState>& states);

  MeshPairing pair_;
  grid::Grid3D agrid_;
  atmos::AmbientProfile amb_;
  CoupledBatchOptions opt_;
  int members_ = 0;
  int stride_ = 0;
  double time_ = 0;

  core::EnsembleBatch fire_;
  FluxInserter inserter_;
  atmos::MultigridBatch mg_;

  // Per-member atmosphere (AoS: the tendency evaluation is stencil-heavy
  // and stays scalar per member; only the projection solves are batched).
  std::vector<atmos::AtmosState> astate_, pred_;
  std::vector<atmos::Tendencies> tend1_, tend2_;
  std::vector<atmos::SolveStats> proj_stats_;
  std::vector<atmos::WrfLiteStepInfo> info_;

  // SoA scratch. Layouts: 2-D fields (j * nx + i) * stride + m, 3-D fields
  // ((k * ny + j) * nx + i) * stride + m.
  std::vector<double> uc_, vc_;              // destaggered level-0 wind
  std::vector<double> wind_u_f_, wind_v_f_;  // fire-mesh winds
  std::vector<double> sens_f_, lat_f_;       // fire-mesh flux densities
  std::vector<double> sens_c_, lat_c_;       // aggregated onto atmos mesh
  std::vector<double> theta_src_, qv_src_;   // volumetric forcing
  std::vector<double> rhs_soa_;              // projection right-hand sides
  std::vector<double> phi_soa_;              // warm-started potentials
};

}  // namespace wfire::coupling
