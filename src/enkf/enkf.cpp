#include "enkf/enkf.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "enkf/ensemble.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/qr.h"
#include "la/svd.h"
#include "util/omp_compat.h"

namespace wfire::enkf {

namespace {

Factorization factorization_from_env() {
  const char* s = std::getenv("WFIRE_ENKF_FACTORIZATION");
  if (!s || std::strcmp(s, "qr") == 0) return Factorization::kQr;
  if (std::strcmp(s, "svd") == 0) return Factorization::kSvd;
  // A typo here would silently invalidate qr-vs-svd comparisons — say so.
  std::fprintf(stderr,
               "wfire: unrecognized WFIRE_ENKF_FACTORIZATION='%s' "
               "(expected 'qr' or 'svd'); using qr\n",
               s);
  return Factorization::kQr;
}

double rms(const la::Vector& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (const double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

// Observation-space path: S = HA HA^T/(N-1) + R via the symmetric rank-k
// kernel (half the flops of a full gemm, no transpose-accessor walks),
// blocked Cholesky of S, then one multi-RHS solve for all innovation
// columns at once. Y is consumed in place.
void analyze_obs_space(la::Matrix& X, const la::Matrix& A,
                       const la::Matrix& HA, la::Matrix& Y,
                       const la::Vector& r_std, la::Workspace& ws) {
  const int N = X.cols();
  const int m = HA.rows();
  la::Matrix& S = ws.mat("obs.S", m, m);
  la::syrk(false, 1.0 / (N - 1), HA, 0.0, S);
  for (int i = 0; i < m; ++i) S(i, i) += r_std[i] * r_std[i];
  la::Matrix& L = ws.mat("obs.L", m, m);
  la::cholesky_factor(S, L);
  la::cholesky_solve_in_place(L, Y);                    // Y <- S^{-1} Y
  la::Matrix& W = ws.mat("obs.W", N, N);
  la::gemm(true, false, 1.0, HA, Y, 0.0, W);            // W = HA^T S^{-1} Y
  la::gemm(false, false, 1.0 / (N - 1), A, W, 1.0, X);  // X += A W/(N-1)
}

// Ensemble-space analysis, shared head: B = R^{-1/2} HA / sqrt(N-1) and the
// R^{-1/2}-scaled innovations, both in arena buffers.
void scale_ensemble_system(const la::Matrix& HA, const la::Matrix& Y,
                           const la::Vector& r_std, double inv_sqrtn1,
                           la::Matrix& B, la::Matrix& Yt) {
  const int m = HA.rows();
  const int N = HA.cols();
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) B(i, k) = HA(i, k) * inv_sqrtn1 / r_std[i];
  for (int k = 0; k < N; ++k)
    for (int i = 0; i < m; ++i) Yt(i, k) = Y(i, k) / r_std[i];
}

// QR square-root factorization (the default): with Stilde = I + B B^T, the
// Sherman-Morrison-Woodbury identity gives the analysis coefficients as the
// solution of a system in the *smaller* of the two dimensions:
//
//   m >= N:  W = B^T Stilde^{-1} Ytilde = (I + B^T B)^{-1} B^T Ytilde,
//   m <  N:  W = B^T (I + B B^T)^{-1} Ytilde directly.
//
// Instead of forming B^T B / B B^T (which would square the condition
// number), the Householder QR of the stacked matrix [B; I_N] (resp.
// [B^T; I_m]) yields an upper-triangular Rs with Rs^T Rs = I + B^T B
// (resp. I + B B^T), so W follows from gemm and two small triangular
// solves. Since Rs^T Rs >= I, every |Rs_ii| >= 1: the solves cannot hit a
// small pivot even for rank-deficient ensembles (where the svd path relies
// on its rcond cutoff).
//
// The m-sized work is one pass: in the image regime (m >= N) the scaled
// stack B = R^{-1/2} HA / sqrt(N-1) is built directly from HA into the
// panel (no separate B buffer), the panel is factored with the selected
// scheme (TSQR splits it into row blocks factored in parallel), and
// W = B^T Ytilde is computed from the *unscaled* HA and Y with the
// R^{-1} weighting folded into the gemm's pack step (gemm_scaled) — the
// two full m x N scaling sweeps the previous pipeline made are gone.
void analyze_ensemble_space_qr(la::Matrix& X, const la::Matrix& A,
                               const la::Matrix& HA, const la::Matrix& Y,
                               const la::Vector& r_std, la::QrScheme scheme,
                               la::Workspace& ws, EnKFStats& stats) {
  const int N = X.cols();
  const int m = HA.rows();
  const double inv_sqrtn1 = 1.0 / std::sqrt(static_cast<double>(N - 1));
  const int r = std::min(m, N);  // factored system dimension
  la::Matrix& M = ws.mat("ens.M", m + N, r);
  la::Matrix& W = ws.mat("ens.W", N, N);
  const bool tsqr = la::tsqr_selected(scheme, m + N, r);
  stats.qr_scheme_used = tsqr ? la::QrScheme::kTsqr : la::QrScheme::kBlocked;

  if (m >= N) {  // stacked [B; I_N], Rs^T Rs = I + B^T B
    // Pack-time weights: winv scales rows by R^{-1/2}/sqrt(N-1) while the
    // stack is built; w2 carries the full R^{-1} (both B and Ytilde sides)
    // into the coefficient gemm below.
    la::Vector& winv = ws.vec("ens.winv", static_cast<std::size_t>(m));
    la::Vector& w2 = ws.vec("ens.w2", static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      winv[i] = inv_sqrtn1 / r_std[i];
      w2[i] = 1.0 / (r_std[i] * r_std[i]);
    }
    const double* wi = winv.data();
WFIRE_PRAGMA_OMP(omp parallel for schedule(static) \
                 if (static_cast<long>(m) * N > 65536))
    for (int k = 0; k < N; ++k) {
      const auto src = HA.col(k);
      auto dst = M.col(k);
      for (int i = 0; i < m; ++i) dst[i] = src[i] * wi[i];
      for (int i = 0; i < N; ++i) dst[m + i] = i == k ? 1.0 : 0.0;
    }
    if (tsqr) {
      la::tsqr_factor_r_in_place(M, &ws);
    } else {
      la::Vector& beta = ws.vec("ens.beta", static_cast<std::size_t>(r));
      la::qr_factor_in_place(M, beta, &ws);
    }
    // W = B^T Ytilde = HA^T R^{-1} Y / sqrt(N-1), R^{-1} applied at pack
    // time — neither B nor Ytilde is materialized.
    la::gemm_scaled(true, false, inv_sqrtn1, HA, w2, Y, 0.0, W);
    la::rt_solve_in_place(M, W);  // W <- Rs^-T W
    la::r_solve_in_place(M, W);   // W <- Rs^-1 W = (I+B^T B)^-1 B^T Yt
  } else {  // stacked [B^T; I_m], Rs^T Rs = I + B B^T; m < N is small
    la::Matrix& B = ws.mat("ens.B", m, N);
    la::Matrix& Yt = ws.mat("ens.Yt", m, N);
    scale_ensemble_system(HA, Y, r_std, inv_sqrtn1, B, Yt);
    for (int k = 0; k < m; ++k) {
      auto dst = M.col(k);
      for (int i = 0; i < N; ++i) dst[i] = B(k, i);
      for (int i = 0; i < m; ++i) dst[N + i] = i == k ? 1.0 : 0.0;
    }
    if (tsqr) {
      la::tsqr_factor_r_in_place(M, &ws);
    } else {
      la::Vector& beta = ws.vec("ens.beta", static_cast<std::size_t>(r));
      la::qr_factor_in_place(M, beta, &ws);
    }
    la::rt_solve_in_place(M, Yt);               // Yt <- Rs^-T Yt
    la::r_solve_in_place(M, Yt);                // Yt <- Stilde^-1 Ytilde
    la::gemm(true, false, 1.0, B, Yt, 0.0, W);  // W = B^T Stilde^-1 Yt
  }
  la::gemm(false, false, inv_sqrtn1, A, W, 1.0, X);  // X += A W / sqrt(N-1)
}

// SVD factorization (the property-tested reference): thin-SVD the scaled
// anomalies B = U Sigma V^T, and use
// S~^{-1} y = U (Sigma^2+I)^{-1} U^T y + (y - U U^T y). The per-column hand
// loops of the original are now three gemm calls over the whole block of
// innovation columns.
void analyze_ensemble_space_svd(la::Matrix& X, const la::Matrix& A,
                                const la::Matrix& HA, const la::Matrix& Y,
                                const la::Vector& r_std, double rcond,
                                la::Workspace& ws) {
  const int N = X.cols();
  const int m = HA.rows();
  const double inv_sqrtn1 = 1.0 / std::sqrt(static_cast<double>(N - 1));
  la::Matrix& B = ws.mat("ens.B", m, N);
  la::Matrix& Yt = ws.mat("ens.Yt", m, N);
  scale_ensemble_system(HA, Y, r_std, inv_sqrtn1, B, Yt);
  const la::SvdResult s = la::svd(B);  // Jacobi SVD allocates internally
  const int r = static_cast<int>(s.sigma.size());
  const double cutoff = s.sigma.empty() ? 0.0 : rcond * s.sigma[0];

  // P = U^T Yt, then scale mode j by (1/(sigma_j^2+1) - 1) with truncated
  // modes contributing nothing, then Yt += U P gives Stilde^{-1} ytilde.
  la::Matrix& P = ws.mat("ens.P", r, N);
  la::gemm(true, false, 1.0, s.U, Yt, 0.0, P);
  la::Vector& coef = ws.vec("ens.coef", static_cast<std::size_t>(r));
  for (int j = 0; j < r; ++j) {
    const double sig = s.sigma[j] <= cutoff ? 0.0 : s.sigma[j];
    coef[j] = 1.0 / (sig * sig + 1.0) - 1.0;
  }
  for (int k = 0; k < N; ++k)
    for (int j = 0; j < r; ++j) P(j, k) *= coef[j];
  la::gemm(false, false, 1.0, s.U, P, 1.0, Yt);

  la::Matrix& W = ws.mat("ens.W", N, N);                // W = B^T Stilde^{-1} Y~
  la::gemm(true, false, 1.0, B, Yt, 0.0, W);
  la::gemm(false, false, inv_sqrtn1, A, W, 1.0, X);     // X += A W / sqrt(N-1)
}

}  // namespace

Factorization default_factorization() {
  static const Factorization f = factorization_from_env();
  return f;
}

EnKFStats enkf_analysis(la::Matrix& X, const la::Matrix& HX,
                        const la::Vector& d, const la::Vector& r_std,
                        util::Rng& rng, const EnKFOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("enkf: HX column mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("enkf: obs size mismatch");
  if (N < 2) throw std::invalid_argument("enkf: need at least 2 members");
  for (const double r : r_std)
    if (r <= 0) throw std::invalid_argument("enkf: r_std must be positive");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;

  la::Workspace local_ws;
  la::Workspace& ws = opt.workspace ? *opt.workspace : local_ws;

  // Forecast mean, for the increment diagnostic (inflation preserves it, so
  // no copy of the full forecast ensemble is needed).
  la::Vector& mf = ws.vec("mf", static_cast<std::size_t>(n));
  ensemble_mean(X, mf);

  inflate(X, opt.inflation);
  const la::Matrix* HXi = &HX;
  if (opt.inflation != 1.0) {
    la::Matrix& HXw = ws.mat("HXi", m, N);
    for (int k = 0; k < N; ++k) {
      const auto src = HX.col(k);
      auto dst = HXw.col(k);
      for (int i = 0; i < m; ++i) dst[i] = src[i];
    }
    inflate(HXw, opt.inflation);
    HXi = &HXw;
  }

  la::Vector& xm = ws.vec("xm", static_cast<std::size_t>(n));
  ensemble_mean(X, xm);
  la::Matrix& A = ws.mat("A", n, N);
  anomalies(X, xm, A);

  la::Vector& hxm = ws.vec("hxm", static_cast<std::size_t>(m));
  ensemble_mean(*HXi, hxm);
  la::Matrix& HA = ws.mat("HA", m, N);
  anomalies(*HXi, hxm, HA);

  // Innovations with perturbed observations: Y(:,k) = d + e_k - HX(:,k).
  la::Matrix& Y = ws.mat("Y", m, N);
  for (int k = 0; k < N; ++k) {
    const auto src = HXi->col(k);
    auto dst = Y.col(k);
    for (int i = 0; i < m; ++i)
      dst[i] = d[i] + r_std[i] * rng.normal() - src[i];
  }

  {
    la::Vector& innov = ws.vec("innov", static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) innov[i] = d[i] - hxm[i];
    stats.innovation_rms = rms(innov);
  }

  SolverPath path = opt.path;
  if (path == SolverPath::kAuto)
    path = (m <= 2 * N) ? SolverPath::kObsSpace : SolverPath::kEnsembleSpace;
  stats.path_used = path;

  if (path == SolverPath::kObsSpace) {
    analyze_obs_space(X, A, HA, Y, r_std, ws);
  } else {
    const Factorization fact = opt.factorization == Factorization::kDefault
                                   ? default_factorization()
                                   : opt.factorization;
    stats.factorization_used = fact;
    if (fact == Factorization::kSvd)
      analyze_ensemble_space_svd(X, A, HA, Y, r_std, opt.svd_rcond, ws);
    else
      analyze_ensemble_space_qr(X, A, HA, Y, r_std, opt.qr_scheme, ws, stats);
  }

  {
    la::Vector& ma = ws.vec("ma", static_cast<std::size_t>(n));
    ensemble_mean(X, ma);
    for (int i = 0; i < n; ++i) ma[i] -= mf[i];
    stats.increment_rms = rms(ma);
  }
  return stats;
}

EnKFStats enkf_sequential(la::Matrix& X, la::Matrix& HX, const la::Vector& d,
                          const la::Vector& r_std, util::Rng& rng,
                          const SequentialOptions& opt) {
  const int n = X.rows();
  const int N = X.cols();
  const int m = HX.rows();
  if (HX.cols() != N) throw std::invalid_argument("enkf_seq: HX mismatch");
  if (static_cast<int>(d.size()) != m || static_cast<int>(r_std.size()) != m)
    throw std::invalid_argument("enkf_seq: obs size mismatch");
  if (N < 2) throw std::invalid_argument("enkf_seq: need >= 2 members");

  EnKFStats stats;
  stats.n = n;
  stats.m = m;
  stats.N = N;
  stats.path_used = SolverPath::kObsSpace;

  la::Workspace local_ws;
  la::Workspace& ws = opt.workspace ? *opt.workspace : local_ws;

  inflate(X, opt.inflation);
  inflate(HX, opt.inflation);

  {
    la::Vector& hxm = ws.vec("seq.hxm", static_cast<std::size_t>(m));
    ensemble_mean(HX, hxm);
    la::Vector& innov = ws.vec("seq.innov", static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) innov[i] = d[i] - hxm[i];
    stats.innovation_rms = rms(innov);
  }
  la::Vector& mean_before = ws.vec("seq.mb", static_cast<std::size_t>(n));
  ensemble_mean(X, mean_before);

  // The sweep applies, per observation, a rank-1 update X += px alpha^T (and
  // HX += ph alpha^T). Instead of streaming 2m rank-1 passes over the state,
  // the gain columns and member coefficients are accumulated for a batch of
  // observations and flushed as one blocked gemm. Observations later in a
  // batch see the pending updates through the correction terms below, so the
  // sweep stays algebraically sequential.
  const int kBatch = std::min(m, 32);
  la::Matrix& Px = ws.mat("seq.Px", n, kBatch);      // pending state gains
  la::Matrix& Ph = ws.mat("seq.Ph", m, kBatch);      // pending obs gains
  la::Matrix& AlphaT = ws.mat("seq.At", N, kBatch);  // member coefficients
  la::Vector& ha = ws.vec("seq.ha", static_cast<std::size_t>(N));
  la::Vector& hrow = ws.vec("seq.hrow", static_cast<std::size_t>(N));
  la::Vector& px = ws.vec("seq.px", static_cast<std::size_t>(n));
  la::Vector& ph = ws.vec("seq.ph", static_cast<std::size_t>(m));
  int filled = 0;

  const auto flush = [&]() {
    if (filled == 0) return;
    // Matrix::resize keeps leading columns intact, so a partial batch is a
    // plain column-prefix view of the arena buffers.
    Px.resize(n, filled);
    Ph.resize(m, filled);
    AlphaT.resize(N, filled);
    la::gemm(false, true, 1.0, Px, AlphaT, 1.0, X);   // X  += Px Alpha
    la::gemm(false, true, 1.0, Ph, AlphaT, 1.0, HX);  // HX += Ph Alpha
    Px.resize(n, kBatch);
    Ph.resize(m, kBatch);
    AlphaT.resize(N, kBatch);
    filled = 0;
  };

  const double invn1 = 1.0 / (N - 1);
  for (int o = 0; o < m; ++o) {
    // Effective row o of HX = stored row + pending batch updates.
    for (int k = 0; k < N; ++k) hrow[k] = HX(o, k);
    for (int b = 0; b < filled; ++b) {
      const double pho = Ph(o, b);
      if (pho == 0.0) continue;
      const auto ab = AlphaT.col(b);
      for (int k = 0; k < N; ++k) hrow[k] += pho * ab[k];
    }
    double hm = 0;
    for (int k = 0; k < N; ++k) hm += hrow[k];
    hm /= N;
    double var = 0;
    for (int k = 0; k < N; ++k) {
      ha[k] = hrow[k] - hm;
      var += ha[k] * ha[k];
    }
    var *= invn1;
    const double denom = var + r_std[o] * r_std[o];
    if (denom <= 0) continue;

    // Cross covariances against the effective ensemble: the stored X/HX
    // part via gemv (sum ha = 0 makes the mean term vanish), the pending
    // part via the small inner products with the batched gain columns.
    la::gemv(invn1, X, ha, 0.0, px);
    la::gemv(invn1, HX, ha, 0.0, ph);
    for (int b = 0; b < filled; ++b) {
      const auto ab = AlphaT.col(b);
      double w = 0;
      for (int k = 0; k < N; ++k) w += ab[k] * ha[k];
      w *= invn1;
      if (w == 0.0) continue;
      const auto pxb = Px.col(b);
      for (int i = 0; i < n; ++i) px[i] += w * pxb[i];
      const auto phb = Ph.col(b);
      for (int i = 0; i < m; ++i) ph[i] += w * phb[i];
    }

    if (opt.state_obs_taper)
      for (int i = 0; i < n; ++i)
        px[i] *= opt.state_obs_taper(i, o, opt.taper_ctx);
    if (opt.obs_obs_taper)
      for (int i = 0; i < m; ++i)
        ph[i] *= opt.obs_obs_taper(i, o, opt.taper_ctx);

    // Member coefficients from perturbed innovations (same draw order as
    // the original per-member update loop).
    {
      auto ab = AlphaT.col(filled);
      for (int k = 0; k < N; ++k)
        ab[k] = (d[o] + r_std[o] * rng.normal() - hrow[k]) / denom;
      auto pxb = Px.col(filled);
      for (int i = 0; i < n; ++i) pxb[i] = px[i];
      auto phb = Ph.col(filled);
      for (int i = 0; i < m; ++i) phb[i] = ph[i];
    }
    if (++filled == kBatch) flush();
  }
  flush();

  la::Vector& mean_after = ws.vec("seq.ma", static_cast<std::size_t>(n));
  ensemble_mean(X, mean_after);
  for (int i = 0; i < n; ++i) mean_after[i] -= mean_before[i];
  stats.increment_rms = rms(mean_after);
  return stats;
}

}  // namespace wfire::enkf
